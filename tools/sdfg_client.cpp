// sdfg-client: submit compile-and-run jobs to a running sdfg-serve
// daemon (src/serve/*).
//
// Usage:
//   sdfg-client [--socket PATH] [--file F] [--function NAME] [--sym K=V]
//               [--deadline-ms N] [--weight W] [--id ID] [--timeout-ms N]
//               [--retries N] [--hammer N] [--json]
//   sdfg-client [--socket PATH] --ping | --stats | --metrics
//   sdfg-client --selftest
//
// With --file the program source is read from F ("-" = stdin).  Retries
// use exponential backoff and honor the daemon's E607 retry_after_ms
// hint.  --hammer N submits the same job over N concurrent connections
// and reports the outcome distribution -- the load generator behind the
// dedup and admission-control acceptance tests.
//
// --selftest needs no daemon: it round-trips the DSRV frame protocol in
// memory, exercises every decode failure (E600..E605), the run-request
// body format (E606), and fault-plan determinism.
//
// Exit codes: 0 = ok (all jobs ok under --hammer), 1 = request or
// selftest failure, 64 = usage error.
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/protocol.hpp"

using namespace dace::serve;

namespace {

int usage() {
  std::cerr
      << "usage: sdfg-client [--socket PATH] [--file F] [--function NAME]\n"
         "                   [--sym K=V] [--deadline-ms N] [--weight W]\n"
         "                   [--id ID] [--timeout-ms N] [--retries N]\n"
         "                   [--hammer N] [--json]\n"
         "       sdfg-client [--socket PATH] --ping | --stats | --metrics\n"
         "       sdfg-client --selftest\n";
  return 64;
}

// ---------------------------------------------------------------------------
// Selftest (daemonless: protocol-layer checks)
// ---------------------------------------------------------------------------

#define ST_CHECK(cond)                                                   \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::cerr << "selftest FAILED at " << __LINE__ << ": " #cond "\n"; \
      return 1;                                                          \
    }                                                                    \
  } while (0)

int selftest() {
  const size_t kMax = 1 << 20;

  // Frame round-trip.
  std::string bytes = encode_frame(Verb::Run, "hello");
  Decoded d = decode_frame(bytes, kMax);
  ST_CHECK(d.status == Decoded::Ok);
  ST_CHECK(d.frame.verb == Verb::Run && d.frame.payload == "hello");

  // Empty input is EOF, not an error.
  ST_CHECK(decode_frame("", kMax).status == Decoded::Eof);

  // E600: bad magic.
  std::string t = bytes;
  t[0] = 'X';
  d = decode_frame(t, kMax);
  ST_CHECK(d.status == Decoded::Error && d.code == "E600");

  // E601: wrong version.
  t = bytes;
  t[4] = (char)0x7f;
  d = decode_frame(t, kMax);
  ST_CHECK(d.status == Decoded::Error && d.code == "E601");

  // E602: oversized.
  d = decode_frame(bytes, 2);
  ST_CHECK(d.status == Decoded::Error && d.code == "E602");

  // E603: truncated header and truncated payload.
  d = decode_frame(bytes.substr(0, 10), kMax);
  ST_CHECK(d.status == Decoded::Error && d.code == "E603");
  d = decode_frame(bytes.substr(0, bytes.size() - 2), kMax);
  ST_CHECK(d.status == Decoded::Error && d.code == "E603");

  // E604: corrupt payload byte.
  t = bytes;
  t[kHeaderBytes + 1] ^= 0x20;
  d = decode_frame(t, kMax);
  ST_CHECK(d.status == Decoded::Error && d.code == "E604");

  // E605: unknown verb.
  t = encode_frame((Verb)999, "x");
  d = decode_frame(t, kMax);
  ST_CHECK(d.status == Decoded::Error && d.code == "E605");

  // Run-request body round-trip, including symbols and weights.
  RunRequest rq;
  rq.source = "@dace.program\ndef f(A: dace.float64[N]):\n    A[:] = 0.0\n";
  rq.function = "f";
  rq.symbols["N"] = 64;
  rq.deadline_ms = 500;
  rq.weight = 3;
  rq.id = "job-1";
  RunRequest back;
  std::string why;
  ST_CHECK(parse_run_request(format_run_request(rq), &back, &why));
  ST_CHECK(back.source == rq.source && back.function == "f");
  ST_CHECK(back.symbols == rq.symbols && back.deadline_ms == 500);
  ST_CHECK(back.weight == 3 && back.id == "job-1");
  ST_CHECK(request_key(back) == request_key(rq));
  RunRequest other = rq;
  other.symbols["N"] = 65;
  ST_CHECK(request_key(other) != request_key(rq));

  // E606 precursors: parse failures name the defect.
  ST_CHECK(!parse_run_request("no separator at all", &back, &why));
  ST_CHECK(!parse_run_request("bogus line\n--\nsrc", &back, &why));
  ST_CHECK(!parse_run_request("deadline_ms=abc\n--\nsrc", &back, &why));
  ST_CHECK(!parse_run_request("--\n", &back, &why));  // empty source

  // Error payloads round-trip code/message/retry hint.
  std::string ep = error_payload("E607", "busy", 40);
  ST_CHECK(json_find_string(ep, "code") == "E607");
  ST_CHECK(json_find_string(ep, "message") == "busy");
  ST_CHECK(json_find_int(ep, "retry_after_ms", -1) == 40);

  // Outputs extraction finds the deterministic comparison unit.
  std::string ok =
      "{\"status\":\"ok\",\"id\":\"1\",\"outputs\":{\"A\":\"dead\"},"
      "\"exec_ms\":3}";
  ST_CHECK(extract_outputs(ok) == "{\"A\":\"dead\"}");

  // Fault plans: spec round-trip and per-seed determinism.
  ServeFaultPlan p =
      ServeFaultPlan::parse("seed=3,disconnect=0.2,corrupt=0.1,wedge=0.05");
  ST_CHECK(p.active() && p.seed == 3);
  ServeFaultPlan p2 = ServeFaultPlan::parse(p.to_string());
  for (uint64_t op = 0; op < 256; ++op)
    ST_CHECK(p.decide(op) == p2.decide(op));
  bool saw_fault = false, saw_none = false;
  for (uint64_t op = 0; op < 256; ++op) {
    if (p.decide(op) == ServeFault::None) saw_none = true;
    else saw_fault = true;
  }
  ST_CHECK(saw_fault && saw_none);
  ST_CHECK(!ServeFaultPlan().active());

  std::cout << "sdfg-client selftest ok\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ClientOptions copts;
  RunRequest req;
  std::string file;
  int hammer = 1;
  bool do_ping = false, do_stats = false, do_metrics = false,
       json_out = false;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--selftest") return selftest();
    if (a == "--ping") {
      do_ping = true;
    } else if (a == "--stats") {
      do_stats = true;
    } else if (a == "--metrics") {
      do_metrics = true;
    } else if (a == "--json") {
      json_out = true;
    } else if (a == "--socket") {
      const char* v = next();
      if (!v) return usage();
      copts.socket_path = v;
    } else if (a == "--file") {
      const char* v = next();
      if (!v) return usage();
      file = v;
    } else if (a == "--function") {
      const char* v = next();
      if (!v) return usage();
      req.function = v;
    } else if (a == "--sym") {
      const char* v = next();
      if (!v) return usage();
      const char* eq = std::strchr(v, '=');
      if (!eq || eq == v) return usage();
      req.symbols[std::string(v, eq - v)] = std::atoll(eq + 1);
    } else if (a == "--deadline-ms") {
      const char* v = next();
      if (!v) return usage();
      req.deadline_ms = std::atoll(v);
    } else if (a == "--weight") {
      const char* v = next();
      if (!v) return usage();
      req.weight = std::atoi(v);
    } else if (a == "--id") {
      const char* v = next();
      if (!v) return usage();
      req.id = v;
    } else if (a == "--timeout-ms") {
      const char* v = next();
      if (!v) return usage();
      copts.io_timeout_ms = std::atoi(v);
    } else if (a == "--retries") {
      const char* v = next();
      if (!v) return usage();
      copts.retries = std::atoi(v);
    } else if (a == "--hammer") {
      const char* v = next();
      if (!v) return usage();
      hammer = std::max(1, std::atoi(v));
    } else {
      return usage();
    }
  }

  Client cli(copts);
  if (do_ping) {
    Reply r = cli.ping();
    std::cout << (r.ok ? "pong\n" : "no daemon: " + r.message + "\n");
    return r.ok ? 0 : 1;
  }
  if (do_stats) {
    Reply r = cli.stats();
    if (!r.ok) {
      std::cerr << "sdfg-client: " << r.message << "\n";
      return 1;
    }
    std::cout << r.payload << "\n";
    return 0;
  }
  if (do_metrics) {
    // Prometheus text straight from the daemon's metrics registry.
    Reply r = cli.metrics();
    if (!r.ok) {
      std::cerr << "sdfg-client: " << r.message << "\n";
      return 1;
    }
    std::cout << r.payload;
    return 0;
  }

  if (file.empty()) return usage();
  if (file == "-") {
    std::ostringstream ss;
    ss << std::cin.rdbuf();
    req.source = ss.str();
  } else {
    std::ifstream f(file);
    if (!f) {
      std::cerr << "sdfg-client: cannot read " << file << "\n";
      return 1;
    }
    std::ostringstream ss;
    ss << f.rdbuf();
    req.source = ss.str();
  }

  if (hammer == 1) {
    Reply r = cli.run(req);
    if (json_out) {
      std::cout << (r.payload.empty()
                        ? error_payload(r.code, r.message)
                        : r.payload)
                << "\n";
    } else if (r.ok) {
      std::cout << "ok outputs=" << extract_outputs(r.payload)
                << " attempts=" << r.attempts << "\n";
    } else {
      std::cerr << "error " << r.code << ": " << r.message << "\n";
    }
    return r.ok ? 0 : 1;
  }

  // Hammer mode: N concurrent identical jobs, one connection each.
  std::atomic<int> ok_count{0};
  std::vector<std::string> codes((size_t)hammer);
  std::vector<std::thread> threads;
  threads.reserve((size_t)hammer);
  for (int t = 0; t < hammer; ++t) {
    threads.emplace_back([&, t] {
      Client c(copts);
      RunRequest r = req;
      r.id = "hammer-" + std::to_string(t);
      Reply rep = c.run(r);
      if (rep.ok) ok_count.fetch_add(1);
      else codes[(size_t)t] = rep.code.empty() ? "transport" : rep.code;
    });
  }
  for (auto& t : threads) t.join();
  std::map<std::string, int> dist;
  for (const auto& c : codes)
    if (!c.empty()) ++dist[c];
  std::cout << "hammer " << hammer << ": ok=" << ok_count.load();
  for (const auto& [code, n] : dist) std::cout << " " << code << "=" << n;
  std::cout << "\n";
  return ok_count.load() == hammer ? 0 : 1;
}
