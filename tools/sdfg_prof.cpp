// sdfg-prof: offline aggregation of obs:: traces into a hot-node report.
//
// A run recorded with DACE_INSTRUMENT=timer DACE_TRACE_FILE=t.json emits a
// Chrome/Perfetto trace with frontend, pass, JIT and per-node spans
// (docs/OBSERVABILITY.md).  This tool folds that event stream back into
// the per-SDFG-node view: which maps dominated the runtime, how many
// VM instructions they retired per iteration, which execution tier they
// reached, which optimization pass last rewrote the graph before they
// ran, and -- for maps that reached the native tier -- what the kernel
// planner chose (unroll/jam factors, WCR sinks, scheduler chunk grain).
//
//   sdfg-prof t.json            human-readable report
//   sdfg-prof --json t.json     machine-readable (DiagSink-style JSON)
//   sdfg-prof --metrics t.json  Prometheus-style counter dump
//
// Exit codes: 0 = report produced, 1 = usage error, 2 = malformed or
// empty input.  Bad input is diagnosed with stable E5xx codes:
//   E501  cannot open the trace file
//   E502  JSON syntax error (with line/col)
//   E503  well-formed JSON that is not a Chrome trace document
//   E504  malformed trace event inside traceEvents
//   E505  trace parsed but holds no events (an empty report would
//         otherwise read as a silent success)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/diag.hpp"

namespace {

using dace::diag::DiagSink;
using dace::diag::json_escape;

// ---------------------------------------------------------------------------
// Minimal JSON reader (DOM): just enough for Chrome trace documents.
// ---------------------------------------------------------------------------

struct JV {
  enum Kind { Null, Bool, Num, Str, Arr, Obj } kind = Null;
  bool b = false;
  double num = 0;
  std::string str;
  std::vector<JV> arr;
  std::vector<std::pair<std::string, JV>> obj;

  const JV* get(const std::string& key) const {
    if (kind != Obj) return nullptr;
    for (const auto& [k, v] : obj) {
      if (k == key) return &v;
    }
    return nullptr;
  }
  double as_num(double dflt = 0) const { return kind == Num ? num : dflt; }
  std::string as_str() const { return kind == Str ? str : std::string(); }
  bool as_bool() const { return kind == Bool ? b : false; }
};

struct SyntaxError {
  int line = 0, col = 0;
  std::string msg;
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  JV parse() {
    JV v = value();
    ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& msg) {
    int line = 1, col = 1;
    for (size_t i = 0; i < pos_ && i < s_.size(); ++i) {
      if (s_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw SyntaxError{line, col, msg};
  }

  void ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                                s_[pos_] == '\n' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JV value() {
    ws();
    char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return string();
    if (c == 't' || c == 'f') return boolean();
    if (c == 'n') return null();
    if (c == '-' || (c >= '0' && c <= '9')) return number();
    fail("unexpected character");
  }

  JV object() {
    expect('{');
    JV v;
    v.kind = JV::Obj;
    ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      ws();
      JV key = string();
      ws();
      expect(':');
      v.obj.emplace_back(std::move(key.str), value());
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JV array() {
    expect('[');
    JV v;
    v.kind = JV::Arr;
    ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.arr.push_back(value());
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JV string() {
    expect('"');
    JV v;
    v.kind = JV::Str;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return v;
      if (c != '\\') {
        v.str += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': v.str += '"'; break;
        case '\\': v.str += '\\'; break;
        case '/': v.str += '/'; break;
        case 'b': v.str += '\b'; break;
        case 'f': v.str += '\f'; break;
        case 'n': v.str += '\n'; break;
        case 'r': v.str += '\r'; break;
        case 't': v.str += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= (unsigned)(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= (unsigned)(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= (unsigned)(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Traces only escape control characters; keep BMP handling
          // simple (UTF-8 encode, no surrogate pairing).
          if (cp < 0x80) {
            v.str += (char)cp;
          } else if (cp < 0x800) {
            v.str += (char)(0xC0 | (cp >> 6));
            v.str += (char)(0x80 | (cp & 0x3F));
          } else {
            v.str += (char)(0xE0 | (cp >> 12));
            v.str += (char)(0x80 | ((cp >> 6) & 0x3F));
            v.str += (char)(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JV boolean() {
    JV v;
    v.kind = JV::Bool;
    if (s_.compare(pos_, 4, "true") == 0) {
      v.b = true;
      pos_ += 4;
    } else if (s_.compare(pos_, 5, "false") == 0) {
      v.b = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JV null() {
    if (s_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return JV{};
  }

  JV number() {
    size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (isdigit((unsigned char)s_[pos_]) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-')) {
      ++pos_;
    }
    JV v;
    v.kind = JV::Num;
    try {
      v.num = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      fail("bad number");
    }
    return v;
  }
};

// ---------------------------------------------------------------------------
// Aggregation
// ---------------------------------------------------------------------------

struct Malformed {
  std::string msg;  // E504 detail
};

struct NodeAgg {
  std::string name;
  std::string kind;       // "map", "tasklet", "library", "state"
  double total_ms = 0;
  int64_t calls = 0;
  int64_t iters = 0;
  uint64_t instrs = 0;
  int tier = 0;           // highest tier observed
  double first_ts = -1;   // us; for last-rewrite attribution
  std::string last_pass;  // last committed pass before this node first ran
};

struct PassAgg {
  std::string name;
  double total_ms = 0;
  int64_t runs = 0;
  int64_t applied = 0;
  int64_t committed = 0;
  int64_t rolled_back = 0;
};

// Static-analysis spans (cat "analysis"): detect_races, check_bounds,
// analyze_defuse and the absint interval framework each wrap themselves
// in OBS_SPAN("analysis", <name>).
struct AnalysisAgg {
  std::string name;
  double total_ms = 0;
  int64_t runs = 0;
};

struct RankAgg {
  int rank = 0;
  int64_t comm_ops = 0;
  int64_t retransmits = 0;
  std::map<std::string, int64_t> faults;  // kind -> count
};

// Kernel-plan instants (cat "tier", name "kernel-plan"): the executor
// emits one per program at its first native launch, describing what the
// planner chose (codegen/kernel_plan.hpp) and the measured cost model.
struct PlanAgg {
  std::string map;
  std::string plan;   // KernelPlan::describe(), e.g. "loops=3 jam=4 ..."
  int64_t jam = 1;
  int64_t unroll = 1;
  int64_t sinks = 0;
  int64_t chunks = 1;     // chunk count chosen by the cost scheduler
  double ns_per_iter = 0;  // measured per-iteration cost (EMA)
};

/// Aggregated persistent artifact-cache activity (cat "cache",
/// codegen/artifact_cache.*).
struct CacheAgg {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t commits = 0;
  int64_t corrupt_rejected = 0;
  int64_t evictions = 0;
  int64_t negative_hits = 0;
  int64_t negative_stores = 0;
  int64_t faults = 0;  // injected filesystem faults (chaos shim)
  int64_t errors = 0;  // lock timeouts, write errors, init failures
  double lookup_ms = 0;
  double commit_ms = 0;

  bool any() const {
    return hits || misses || commits || corrupt_rejected || evictions ||
           negative_hits || negative_stores || faults || errors;
  }
};

/// Aggregated sdfg-serve daemon activity (cat "serve", serve/server.*):
/// admission outcomes, job outcomes, and queue-wait percentiles.
struct ServeAgg {
  int64_t accepted = 0;
  int64_t shed = 0;             // E607 admission rejections
  int64_t deduped = 0;          // requests attached to an in-flight twin
  int64_t completed = 0;
  int64_t compile_errors = 0;   // E611 outcomes
  int64_t deadlines = 0;        // E608 cancelled outcomes
  int64_t wedged = 0;           // E608 abandoned outcomes
  int64_t crashed = 0;          // E609 outcomes
  int64_t protocol_errors = 0;  // E600..E606 replies
  int64_t drains = 0;
  int64_t faults = 0;           // injected connection/job faults (chaos shim)
  int64_t recoveries = 0;       // stale-socket recoveries at startup
  std::vector<double> queue_wait_ms;  // one sample per dequeued job
  double exec_ms = 0;
  int64_t execs = 0;

  bool any() const {
    return accepted || shed || deduped || completed || compile_errors ||
           deadlines || wedged || crashed || protocol_errors || drains ||
           faults || recoveries || execs;
  }

  /// Nearest-rank percentile over the queue-wait samples (p in [0,100]).
  double wait_pct(double p) const {
    if (queue_wait_ms.empty()) return 0;
    std::vector<double> s = queue_wait_ms;
    std::sort(s.begin(), s.end());
    size_t idx = (size_t)std::ceil(p / 100.0 * (double)s.size());
    if (idx > 0) --idx;
    return s[std::min(idx, s.size() - 1)];
  }
};

struct Report {
  size_t events = 0;
  std::vector<NodeAgg> nodes;        // sorted hottest-first
  std::vector<PassAgg> passes;       // first-seen order
  std::vector<AnalysisAgg> analyses;  // first-seen order
  double parse_ms = 0;
  double lower_ms = 0;
  int64_t lowered_functions = 0;
  int64_t jit_compiles = 0;
  double jit_compile_ms = 0;
  int64_t jit_cache_hits = 0;
  int64_t jit_negative_hits = 0;
  int64_t tier_promotions = 0;
  int64_t map_compiles = 0;          // bytecode (Tier-0) compilations
  double map_compile_ms = 0;
  std::vector<PlanAgg> plans;        // first-seen order (one per program)
  std::vector<RankAgg> ranks;        // sorted by rank
  CacheAgg cache;
  ServeAgg serve;
};

int64_t arg_int(const JV* args, const char* key) {
  if (!args) return 0;
  const JV* v = args->get(key);
  return v ? (int64_t)std::llround(v->as_num()) : 0;
}

std::string arg_str(const JV* args, const char* key) {
  if (!args) return "";
  const JV* v = args->get(key);
  return v ? v->as_str() : "";
}

Report aggregate(const JV& doc) {
  const JV* events = nullptr;
  if (doc.kind == JV::Arr) {
    events = &doc;  // bare-array Chrome trace
  } else if (doc.kind == JV::Obj) {
    events = doc.get("traceEvents");
  }
  if (!events || events->kind != JV::Arr)
    throw Malformed{"document has no traceEvents array"};

  Report r;
  std::map<std::string, NodeAgg> nodes;
  std::vector<PassAgg> passes;
  std::vector<AnalysisAgg> analyses;
  std::map<int, RankAgg> ranks;
  // (end ts, name) of every committed pass, for last-rewrite attribution.
  std::vector<std::pair<double, std::string>> committed_passes;

  size_t idx = 0;
  for (const JV& e : events->arr) {
    ++idx;
    if (e.kind != JV::Obj)
      throw Malformed{"traceEvents[" + std::to_string(idx - 1) +
                      "] is not an object"};
    const JV* phv = e.get("ph");
    const JV* namev = e.get("name");
    if (!phv || phv->kind != JV::Str || phv->str.size() != 1 || !namev ||
        namev->kind != JV::Str) {
      throw Malformed{"traceEvents[" + std::to_string(idx - 1) +
                      "] lacks string 'ph'/'name'"};
    }
    char ph = phv->str[0];
    if (ph == 'M') continue;  // metadata
    ++r.events;
    const std::string& name = namev->str;
    std::string cat = e.get("cat") ? e.get("cat")->as_str() : "";
    double ts = e.get("ts") ? e.get("ts")->as_num() : 0;
    double dur = e.get("dur") ? e.get("dur")->as_num() : 0;
    int pid = (int)(e.get("pid") ? e.get("pid")->as_num() : 0);
    int tid = (int)(e.get("tid") ? e.get("tid")->as_num() : 0);
    const JV* args = e.get("args");

    if (pid == 1) {
      // Virtual rank timeline.
      RankAgg& ra = ranks[tid];
      ra.rank = tid;
      if (cat == "fault") {
        ++ra.faults[name];
      } else if (cat == "comm") {
        if (name == "retransmit") ++ra.retransmits;
        else ++ra.comm_ops;
      }
      continue;
    }
    if (cat == "node") {
      NodeAgg& na = nodes[name];
      na.name = name;
      if (ph == 'X') {
        na.total_ms += dur / 1000.0;
        ++na.calls;
        na.iters += arg_int(args, "iters");
        na.instrs += (uint64_t)arg_int(args, "instrs");
        na.tier = std::max(na.tier, (int)arg_int(args, "tier"));
        if (na.kind.empty()) na.kind = arg_str(args, "kind");
        if (na.first_ts < 0 || ts < na.first_ts) na.first_ts = ts;
      } else if (ph == 'C') {
        // Counter mode: the value is the cumulative iteration count.
        ++na.calls;
        const JV* v = args ? args->get("value") : nullptr;
        if (v)
          na.iters = std::max(na.iters, (int64_t)std::llround(v->as_num()));
        if (na.kind.empty()) na.kind = "counter";
        if (na.first_ts < 0 || ts < na.first_ts) na.first_ts = ts;
      }
    } else if (cat == "pass" && ph == 'X') {
      PassAgg* pa = nullptr;
      for (auto& p : passes) {
        if (p.name == name) pa = &p;
      }
      if (!pa) {
        passes.push_back(PassAgg{});
        pa = &passes.back();
        pa->name = name;
      }
      pa->total_ms += dur / 1000.0;
      ++pa->runs;
      if (args && args->get("applied") && args->get("applied")->as_bool())
        ++pa->applied;
      bool committed =
          args && args->get("committed") && args->get("committed")->as_bool();
      // Pipeline::run emits applied without a commit gate; treat an
      // applied pass with no commit/rollback info as having rewritten
      // the graph.
      if (!committed && args && args->get("applied") &&
          args->get("applied")->as_bool() && !args->get("committed")) {
        committed = true;
      }
      if (committed) {
        ++pa->committed;
        committed_passes.emplace_back(ts + dur, name);
      }
      if (args && args->get("rolled_back") &&
          args->get("rolled_back")->as_bool()) {
        ++pa->rolled_back;
      }
    } else if (cat == "analysis" && ph == 'X') {
      AnalysisAgg* aa = nullptr;
      for (auto& a : analyses) {
        if (a.name == name) aa = &a;
      }
      if (!aa) {
        analyses.push_back(AnalysisAgg{});
        aa = &analyses.back();
        aa->name = name;
      }
      aa->total_ms += dur / 1000.0;
      ++aa->runs;
    } else if (cat == "frontend" && ph == 'X') {
      if (name == "parse") r.parse_ms += dur / 1000.0;
      if (name == "lower") {
        r.lower_ms += dur / 1000.0;
        ++r.lowered_functions;
      }
    } else if (cat == "jit") {
      if (name == "compile" && ph == 'X') {
        ++r.jit_compiles;
        r.jit_compile_ms += dur / 1000.0;
      } else if (name == "cache-hit") {
        ++r.jit_cache_hits;
      } else if (name == "negative-cache-hit") {
        ++r.jit_negative_hits;
      }
    } else if (cat == "tier" && name == "kernel-plan") {
      PlanAgg pl;
      pl.map = arg_str(args, "map");
      pl.plan = arg_str(args, "plan");
      pl.jam = arg_int(args, "jam");
      pl.unroll = arg_int(args, "unroll");
      pl.sinks = arg_int(args, "sinks");
      pl.chunks = arg_int(args, "chunks");
      if (args && args->get("ns_per_iter"))
        pl.ns_per_iter = args->get("ns_per_iter")->as_num();
      r.plans.push_back(std::move(pl));
    } else if (cat == "tier" && name == "promote") {
      ++r.tier_promotions;
    } else if (cat == "executor" && name == "compile-map" && ph == 'X') {
      ++r.map_compiles;
      r.map_compile_ms += dur / 1000.0;
    } else if (cat == "cache") {
      // "lookup"/"commit" are spans; everything else is an instant
      // ("commit" appears as both -- the span covers the protocol, the
      // instant marks the publish).
      if (ph == 'X') {
        if (name == "lookup") r.cache.lookup_ms += dur / 1000.0;
        if (name == "commit") r.cache.commit_ms += dur / 1000.0;
      } else if (name == "hit") {
        ++r.cache.hits;
      } else if (name == "miss") {
        ++r.cache.misses;
      } else if (name == "commit") {
        ++r.cache.commits;
      } else if (name == "corrupt-reject") {
        ++r.cache.corrupt_rejected;
      } else if (name == "evict") {
        ++r.cache.evictions;
      } else if (name == "negative-hit") {
        ++r.cache.negative_hits;
      } else if (name == "negative-store") {
        ++r.cache.negative_stores;
      } else if (name == "fault") {
        ++r.cache.faults;
      } else if (name == "lock-timeout" || name == "write-error" ||
                 name == "init-error") {
        ++r.cache.errors;
      }
    } else if (cat == "serve") {
      // "queue-wait"/"exec" are spans; admission and job outcomes are
      // instants ("deadline-fired" marks the watchdog tripping a job's
      // cancel flag; the "deadline" instant is the job's final outcome,
      // so only the latter counts to avoid double-booking).
      if (ph == 'X') {
        if (name == "queue-wait")
          r.serve.queue_wait_ms.push_back(dur / 1000.0);
        if (name == "exec") {
          r.serve.exec_ms += dur / 1000.0;
          ++r.serve.execs;
        }
      } else if (name == "accepted") {
        ++r.serve.accepted;
      } else if (name == "shed") {
        ++r.serve.shed;
      } else if (name == "dedup") {
        ++r.serve.deduped;
      } else if (name == "completed") {
        ++r.serve.completed;
      } else if (name == "compile-error") {
        ++r.serve.compile_errors;
      } else if (name == "deadline") {
        ++r.serve.deadlines;
      } else if (name == "wedged") {
        ++r.serve.wedged;
      } else if (name == "crash") {
        ++r.serve.crashed;
      } else if (name == "protocol-error") {
        ++r.serve.protocol_errors;
      } else if (name == "drain") {
        ++r.serve.drains;
      } else if (name == "fault") {
        ++r.serve.faults;
      } else if (name == "stale-socket-recovered") {
        ++r.serve.recoveries;
      }
    }
  }

  std::sort(committed_passes.begin(), committed_passes.end());
  for (auto& [name, na] : nodes) {
    (void)name;
    for (const auto& [end_ts, pname] : committed_passes) {
      if (na.first_ts >= 0 && end_ts <= na.first_ts) na.last_pass = pname;
    }
    r.nodes.push_back(na);
  }
  std::sort(r.nodes.begin(), r.nodes.end(),
            [](const NodeAgg& a, const NodeAgg& b) {
              if (a.total_ms != b.total_ms) return a.total_ms > b.total_ms;
              return a.name < b.name;
            });
  r.passes = std::move(passes);
  r.analyses = std::move(analyses);
  for (auto& [rk, ra] : ranks) {
    (void)rk;
    r.ranks.push_back(ra);
  }
  return r;
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

std::string render_text(const Report& r, int top) {
  std::ostringstream os;
  char line[320];
  os << "hot nodes (by total time):\n";
  snprintf(line, sizeof(line), "  %-24s %-8s %10s %8s %12s %12s %5s  %s\n",
           "node", "kind", "total ms", "calls", "iters", "instrs/iter",
           "tier", "last rewrite");
  os << line;
  int shown = 0;
  for (const NodeAgg& n : r.nodes) {
    if (top > 0 && shown++ >= top) break;
    double ipi = n.iters > 0 ? (double)n.instrs / (double)n.iters : 0.0;
    snprintf(line, sizeof(line),
             "  %-24s %-8s %10.3f %8lld %12lld %12.1f %5d  %s\n",
             n.name.c_str(), n.kind.c_str(), n.total_ms, (long long)n.calls,
             (long long)n.iters, ipi, n.tier,
             n.last_pass.empty() ? "-" : n.last_pass.c_str());
    os << line;
  }
  if (r.nodes.empty()) os << "  (no instrumented nodes in this trace)\n";
  if (r.parse_ms > 0 || r.lower_ms > 0) {
    snprintf(line, sizeof(line),
             "frontend: parse %.3f ms, lower %.3f ms (%lld functions)\n",
             r.parse_ms, r.lower_ms, (long long)r.lowered_functions);
    os << line;
  }
  if (!r.passes.empty()) {
    double total = 0;
    int64_t committed = 0, rolled = 0;
    for (const auto& p : r.passes) {
      total += p.total_ms;
      committed += p.committed;
      rolled += p.rolled_back;
    }
    snprintf(line, sizeof(line),
             "passes (%lld committed, %lld rolled back, %.3f ms total):\n",
             (long long)committed, (long long)rolled, total);
    os << line;
    for (const auto& p : r.passes) {
      snprintf(line, sizeof(line),
               "  %-24s %10.3f ms  runs=%lld applied=%lld committed=%lld\n",
               p.name.c_str(), p.total_ms, (long long)p.runs,
               (long long)p.applied, (long long)p.committed);
      os << line;
    }
  }
  if (!r.analyses.empty()) {
    double total = 0;
    for (const auto& a : r.analyses) total += a.total_ms;
    snprintf(line, sizeof(line), "analyses (%.3f ms total):\n", total);
    os << line;
    for (const auto& a : r.analyses) {
      snprintf(line, sizeof(line), "  %-24s %10.3f ms  runs=%lld\n",
               a.name.c_str(), a.total_ms, (long long)a.runs);
      os << line;
    }
  }
  if (r.jit_compiles || r.jit_cache_hits || r.jit_negative_hits ||
      r.tier_promotions || r.map_compiles) {
    snprintf(line, sizeof(line),
             "jit: %lld compiles (%.3f ms), %lld cache hits, %lld negative, "
             "%lld promotions; %lld bytecode compiles (%.3f ms)\n",
             (long long)r.jit_compiles, r.jit_compile_ms,
             (long long)r.jit_cache_hits, (long long)r.jit_negative_hits,
             (long long)r.tier_promotions, (long long)r.map_compiles,
             r.map_compile_ms);
    os << line;
  }
  if (r.cache.any()) {
    snprintf(line, sizeof(line),
             "artifact cache: %lld hits, %lld misses, %lld commits "
             "(%.3f ms), %lld corrupt-rejected, %lld evicted, "
             "%lld negative hits, %lld faults injected, %lld errors\n",
             (long long)r.cache.hits, (long long)r.cache.misses,
             (long long)r.cache.commits, r.cache.commit_ms,
             (long long)r.cache.corrupt_rejected,
             (long long)r.cache.evictions, (long long)r.cache.negative_hits,
             (long long)r.cache.faults, (long long)r.cache.errors);
    os << line;
  }
  if (r.serve.any()) {
    snprintf(line, sizeof(line),
             "serve: %lld accepted, %lld shed, %lld deduped, "
             "%lld completed, %lld compile errors, %lld deadlines, "
             "%lld wedged, %lld crashed, %lld protocol errors, "
             "%lld faults injected\n",
             (long long)r.serve.accepted, (long long)r.serve.shed,
             (long long)r.serve.deduped, (long long)r.serve.completed,
             (long long)r.serve.compile_errors, (long long)r.serve.deadlines,
             (long long)r.serve.wedged, (long long)r.serve.crashed,
             (long long)r.serve.protocol_errors, (long long)r.serve.faults);
    os << line;
    if (!r.serve.queue_wait_ms.empty()) {
      snprintf(line, sizeof(line),
               "  queue wait ms: p50=%.3f p90=%.3f p99=%.3f (%lld jobs); "
               "exec %.3f ms total (%lld runs)\n",
               r.serve.wait_pct(50), r.serve.wait_pct(90),
               r.serve.wait_pct(99),
               (long long)r.serve.queue_wait_ms.size(), r.serve.exec_ms,
               (long long)r.serve.execs);
      os << line;
    }
  }
  if (!r.plans.empty()) {
    os << "kernel plans (first native launch per map):\n";
    for (const PlanAgg& p : r.plans) {
      snprintf(line, sizeof(line),
               "  %-24s %-32s jam=%lld unroll=%lld sinks=%lld chunks=%lld "
               "ns/iter=%.1f\n",
               p.map.c_str(), p.plan.c_str(), (long long)p.jam,
               (long long)p.unroll, (long long)p.sinks, (long long)p.chunks,
               p.ns_per_iter);
      os << line;
    }
  }
  if (!r.ranks.empty()) {
    os << "virtual ranks:\n";
    for (const RankAgg& ra : r.ranks) {
      int64_t nfaults = 0;
      std::string detail;
      for (const auto& [k, v] : ra.faults) {
        nfaults += v;
        if (!detail.empty()) detail += ",";
        detail += k + "=" + std::to_string(v);
      }
      snprintf(line, sizeof(line),
               "  rank %d: %lld comm ops, %lld faults%s%s%s, "
               "%lld retransmits\n",
               ra.rank, (long long)ra.comm_ops, (long long)nfaults,
               detail.empty() ? "" : " [", detail.c_str(),
               detail.empty() ? "" : "]", (long long)ra.retransmits);
      os << line;
    }
  }
  return os.str();
}

std::string render_json(const Report& r, const std::string& file, int top) {
  std::ostringstream os;
  os << "{\"file\":\"" << json_escape(file) << "\",\"events\":" << r.events
     << ",\"nodes\":[";
  int shown = 0;
  bool first = true;
  for (const NodeAgg& n : r.nodes) {
    if (top > 0 && shown++ >= top) break;
    if (!first) os << ",";
    first = false;
    double ipi = n.iters > 0 ? (double)n.instrs / (double)n.iters : 0.0;
    char num[64];
    snprintf(num, sizeof(num), "%.3f", n.total_ms);
    os << "{\"name\":\"" << json_escape(n.name) << "\",\"kind\":\""
       << json_escape(n.kind) << "\",\"total_ms\":" << num
       << ",\"calls\":" << n.calls << ",\"iters\":" << n.iters
       << ",\"instrs\":" << n.instrs;
    snprintf(num, sizeof(num), "%.1f", ipi);
    os << ",\"instrs_per_iter\":" << num << ",\"tier\":" << n.tier
       << ",\"last_rewrite\":\"" << json_escape(n.last_pass) << "\"}";
  }
  os << "],\"passes\":[";
  first = true;
  for (const PassAgg& p : r.passes) {
    if (!first) os << ",";
    first = false;
    char num[64];
    snprintf(num, sizeof(num), "%.3f", p.total_ms);
    os << "{\"name\":\"" << json_escape(p.name) << "\",\"total_ms\":" << num
       << ",\"runs\":" << p.runs << ",\"applied\":" << p.applied
       << ",\"committed\":" << p.committed
       << ",\"rolled_back\":" << p.rolled_back << "}";
  }
  os << "],\"analyses\":[";
  first = true;
  for (const AnalysisAgg& a : r.analyses) {
    if (!first) os << ",";
    first = false;
    char num[64];
    snprintf(num, sizeof(num), "%.3f", a.total_ms);
    os << "{\"name\":\"" << json_escape(a.name) << "\",\"total_ms\":" << num
       << ",\"runs\":" << a.runs << "}";
  }
  char num[64];
  snprintf(num, sizeof(num), "%.3f", r.parse_ms);
  os << "],\"frontend\":{\"parse_ms\":" << num;
  snprintf(num, sizeof(num), "%.3f", r.lower_ms);
  os << ",\"lower_ms\":" << num << ",\"functions\":" << r.lowered_functions
     << "},\"jit\":{\"compiles\":" << r.jit_compiles;
  snprintf(num, sizeof(num), "%.3f", r.jit_compile_ms);
  os << ",\"compile_ms\":" << num << ",\"cache_hits\":" << r.jit_cache_hits
     << ",\"negative_hits\":" << r.jit_negative_hits
     << ",\"promotions\":" << r.tier_promotions
     << ",\"bytecode_compiles\":" << r.map_compiles
     << "},\"cache\":{\"hits\":" << r.cache.hits
     << ",\"misses\":" << r.cache.misses << ",\"commits\":" << r.cache.commits;
  snprintf(num, sizeof(num), "%.3f", r.cache.lookup_ms);
  os << ",\"lookup_ms\":" << num;
  snprintf(num, sizeof(num), "%.3f", r.cache.commit_ms);
  os << ",\"commit_ms\":" << num
     << ",\"corrupt_rejected\":" << r.cache.corrupt_rejected
     << ",\"evictions\":" << r.cache.evictions
     << ",\"negative_hits\":" << r.cache.negative_hits
     << ",\"negative_stores\":" << r.cache.negative_stores
     << ",\"faults\":" << r.cache.faults << ",\"errors\":" << r.cache.errors
     << "},\"serve\":{\"accepted\":" << r.serve.accepted
     << ",\"shed\":" << r.serve.shed << ",\"deduped\":" << r.serve.deduped
     << ",\"completed\":" << r.serve.completed
     << ",\"compile_errors\":" << r.serve.compile_errors
     << ",\"deadlines\":" << r.serve.deadlines
     << ",\"wedged\":" << r.serve.wedged << ",\"crashed\":" << r.serve.crashed
     << ",\"protocol_errors\":" << r.serve.protocol_errors
     << ",\"drains\":" << r.serve.drains << ",\"faults\":" << r.serve.faults
     << ",\"recoveries\":" << r.serve.recoveries
     << ",\"jobs_waited\":" << r.serve.queue_wait_ms.size();
  snprintf(num, sizeof(num), "%.3f", r.serve.wait_pct(50));
  os << ",\"queue_wait_p50_ms\":" << num;
  snprintf(num, sizeof(num), "%.3f", r.serve.wait_pct(90));
  os << ",\"queue_wait_p90_ms\":" << num;
  snprintf(num, sizeof(num), "%.3f", r.serve.wait_pct(99));
  os << ",\"queue_wait_p99_ms\":" << num;
  snprintf(num, sizeof(num), "%.3f", r.serve.exec_ms);
  os << ",\"exec_ms\":" << num << ",\"execs\":" << r.serve.execs
     << "},\"plans\":[";
  first = true;
  for (const PlanAgg& p : r.plans) {
    if (!first) os << ",";
    first = false;
    snprintf(num, sizeof(num), "%.1f", p.ns_per_iter);
    os << "{\"map\":\"" << json_escape(p.map) << "\",\"plan\":\""
       << json_escape(p.plan) << "\",\"jam\":" << p.jam
       << ",\"unroll\":" << p.unroll << ",\"sinks\":" << p.sinks
       << ",\"chunks\":" << p.chunks << ",\"ns_per_iter\":" << num << "}";
  }
  os << "],\"ranks\":[";
  first = true;
  for (const RankAgg& ra : r.ranks) {
    if (!first) os << ",";
    first = false;
    os << "{\"rank\":" << ra.rank << ",\"comm_ops\":" << ra.comm_ops
       << ",\"retransmits\":" << ra.retransmits << ",\"faults\":{";
    bool f2 = true;
    for (const auto& [k, v] : ra.faults) {
      if (!f2) os << ",";
      f2 = false;
      os << "\"" << json_escape(k) << "\":" << v;
    }
    os << "}}";
  }
  os << "]}\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Selftest: a synthetic trace with every event family, golden output.
// ---------------------------------------------------------------------------

const char* kSelftestTrace = R"TRACE({"traceEvents":[
{"ph":"M","pid":0,"tid":0,"name":"process_name","args":{"name":"dacepp host"}},
{"ph":"X","name":"parse","cat":"frontend","pid":0,"tid":0,"ts":0,"dur":1500},
{"ph":"X","name":"lower","cat":"frontend","pid":0,"tid":0,"ts":1500,"dur":2500,"args":{"function":"stencil"}},
{"ph":"X","name":"fuse_maps","cat":"pass","pid":0,"tid":0,"ts":4100,"dur":2000,"args":{"pipeline":"auto_optimize","applied":true,"committed":true,"rolled_back":false}},
{"ph":"X","name":"tile_maps","cat":"pass","pid":0,"tid":0,"ts":6200,"dur":1000,"args":{"pipeline":"auto_optimize","applied":false,"committed":false,"rolled_back":false}},
{"ph":"X","name":"race","cat":"analysis","pid":0,"tid":0,"ts":7200,"dur":400},
{"ph":"X","name":"absint.ranges","cat":"analysis","pid":0,"tid":0,"ts":7600,"dur":200},
{"ph":"X","name":"absint.ranges","cat":"analysis","pid":0,"tid":0,"ts":7800,"dur":100},
{"ph":"X","name":"compile-map","cat":"executor","pid":0,"tid":0,"ts":8000,"dur":300,"args":{"map":"stencil","instructions":24}},
{"ph":"X","name":"init","cat":"node","pid":0,"tid":0,"ts":9000,"dur":500,"args":{"kind":"map","state":0,"node":1,"tier":0,"iters":100,"instrs":400}},
{"ph":"X","name":"stencil","cat":"node","pid":0,"tid":0,"ts":10000,"dur":4000,"args":{"kind":"map","state":1,"node":2,"tier":0,"iters":1000,"instrs":42000}},
{"ph":"i","name":"promote","cat":"tier","pid":0,"tid":0,"ts":14200,"s":"t","args":{"map":"stencil","iterations":1000}},
{"ph":"X","name":"compile","cat":"jit","pid":0,"tid":1,"ts":14300,"dur":50000,"args":{"program":"dacepp_map_0000000000000001","ok":true}},
{"ph":"i","name":"cache-hit","cat":"jit","pid":0,"tid":0,"ts":65000,"s":"t"},
{"ph":"X","name":"lookup","cat":"cache","pid":0,"tid":1,"ts":14310,"dur":200,"args":{"key":"00112233aabbccdd"}},
{"ph":"i","name":"miss","cat":"cache","pid":0,"tid":1,"ts":14400,"s":"t","args":{"key":"00112233aabbccdd"}},
{"ph":"X","name":"commit","cat":"cache","pid":0,"tid":1,"ts":64300,"dur":500,"args":{"key":"00112233aabbccdd"}},
{"ph":"i","name":"commit","cat":"cache","pid":0,"tid":1,"ts":64700,"s":"t","args":{"key":"00112233aabbccdd","bytes":15136}},
{"ph":"X","name":"lookup","cat":"cache","pid":0,"tid":0,"ts":65100,"dur":40,"args":{"key":"00112233aabbccdd"}},
{"ph":"i","name":"hit","cat":"cache","pid":0,"tid":0,"ts":65130,"s":"t","args":{"key":"00112233aabbccdd"}},
{"ph":"i","name":"corrupt-reject","cat":"cache","pid":0,"tid":0,"ts":66000,"s":"t","args":{"key":"ffeeddcc00112233","why":"checksum mismatch"}},
{"ph":"i","name":"fault","cat":"cache","pid":0,"tid":0,"ts":66100,"s":"t","args":{"kind":"torn-write","op":3}},
{"ph":"i","name":"negative-store","cat":"cache","pid":0,"tid":0,"ts":66200,"s":"t","args":{"program":"00000000000000ff"}},
{"ph":"X","name":"stencil","cat":"node","pid":0,"tid":0,"ts":70000,"dur":1000,"args":{"kind":"map","state":1,"node":2,"tier":1,"iters":1000}},
{"ph":"i","name":"kernel-plan","cat":"tier","pid":0,"tid":0,"ts":71000,"s":"t","args":{"map":"stencil","plan":"loops=3 jam=4 unroll=4 sink=1","jam":4,"unroll":4,"sinks":1,"chunks":8,"ns_per_iter":2.5}},
{"ph":"i","name":"start","cat":"serve","pid":0,"tid":0,"ts":80000,"s":"t","args":{"socket":"/tmp/s.sock","workers":2}},
{"ph":"i","name":"accepted","cat":"serve","pid":0,"tid":0,"ts":80100,"s":"t","args":{"key":"00000000000000aa"}},
{"ph":"i","name":"dedup","cat":"serve","pid":0,"tid":0,"ts":80200,"s":"t","args":{"key":"00000000000000aa"}},
{"ph":"X","name":"queue-wait","cat":"serve","pid":0,"tid":0,"ts":80100,"dur":2000,"args":{"key":"00000000000000aa"}},
{"ph":"X","name":"exec","cat":"serve","pid":0,"tid":0,"ts":82100,"dur":5000,"args":{"outcome":"ok"}},
{"ph":"i","name":"completed","cat":"serve","pid":0,"tid":0,"ts":87100,"s":"t","args":{"key":"00000000000000aa","fanout":2}},
{"ph":"i","name":"shed","cat":"serve","pid":0,"tid":0,"ts":87200,"s":"t","args":{"key":"00000000000000bb"}},
{"ph":"i","name":"protocol-error","cat":"serve","pid":0,"tid":0,"ts":87300,"s":"t","args":{"code":"E604"}},
{"ph":"i","name":"fault","cat":"serve","pid":0,"tid":0,"ts":87400,"s":"t","args":{"kind":"corrupt","op":7}},
{"ph":"X","name":"queue-wait","cat":"serve","pid":0,"tid":0,"ts":87000,"dur":8000,"args":{"key":"00000000000000cc"}},
{"ph":"i","name":"deadline-fired","cat":"serve","pid":0,"tid":0,"ts":95100,"s":"t","args":{"key":"00000000000000cc"}},
{"ph":"i","name":"deadline","cat":"serve","pid":0,"tid":0,"ts":95200,"s":"t","args":{"key":"00000000000000cc","fanout":1}},
{"ph":"i","name":"drain","cat":"serve","pid":0,"tid":0,"ts":99000,"s":"t","args":{"accepted":2,"queue_depth":0}},
{"ph":"i","name":"send","cat":"comm","pid":1,"tid":0,"ts":0,"s":"t","args":{"peer":1,"tag":5,"n":64}},
{"ph":"i","name":"drop","cat":"fault","pid":1,"tid":0,"ts":0,"s":"t","args":{"peer":1,"tag":5,"bytes":512,"seq":0,"attempt":0}},
{"ph":"i","name":"retransmit","cat":"comm","pid":1,"tid":0,"ts":1000,"s":"t","args":{"peer":1,"tag":5,"attempt":0,"backoff_s":0.001}},
{"ph":"i","name":"recv","cat":"comm","pid":1,"tid":1,"ts":2000,"s":"t","args":{"peer":0,"tag":5,"n":64}}
],"displayTimeUnit":"ms"}
)TRACE";

const char* kSelftestGolden =
    "hot nodes (by total time):\n"
    "  node                     kind       total ms    calls        iters"
    "  instrs/iter  tier  last rewrite\n"
    "  stencil                  map           5.000        2         2000"
    "         21.0     1  fuse_maps\n"
    "  init                     map           0.500        1          100"
    "          4.0     0  fuse_maps\n"
    "frontend: parse 1.500 ms, lower 2.500 ms (1 functions)\n"
    "passes (1 committed, 0 rolled back, 3.000 ms total):\n"
    "  fuse_maps                     2.000 ms  runs=1 applied=1 committed=1\n"
    "  tile_maps                     1.000 ms  runs=1 applied=0 committed=0\n"
    "analyses (0.700 ms total):\n"
    "  race                          0.400 ms  runs=1\n"
    "  absint.ranges                 0.300 ms  runs=2\n"
    "jit: 1 compiles (50.000 ms), 1 cache hits, 0 negative, 1 promotions; "
    "1 bytecode compiles (0.300 ms)\n"
    "artifact cache: 1 hits, 1 misses, 1 commits (0.500 ms), "
    "1 corrupt-rejected, 0 evicted, 0 negative hits, 1 faults injected, "
    "0 errors\n"
    "serve: 1 accepted, 1 shed, 1 deduped, 1 completed, 0 compile errors, "
    "1 deadlines, 0 wedged, 0 crashed, 1 protocol errors, 1 faults injected\n"
    "  queue wait ms: p50=2.000 p90=8.000 p99=8.000 (2 jobs); "
    "exec 5.000 ms total (1 runs)\n"
    "kernel plans (first native launch per map):\n"
    "  stencil                  loops=3 jam=4 unroll=4 sink=1    "
    "jam=4 unroll=4 sinks=1 chunks=8 ns/iter=2.5\n"
    "virtual ranks:\n"
    "  rank 0: 1 comm ops, 1 faults [drop=1], 1 retransmits\n"
    "  rank 1: 1 comm ops, 0 faults, 0 retransmits\n";

std::string render_metrics(const Report& r);

int selftest() {
  // Golden report over the synthetic trace.
  JV doc = JsonParser(std::string(kSelftestTrace)).parse();
  Report r = aggregate(doc);
  std::string got = render_text(r, 20);
  if (got != kSelftestGolden) {
    std::fprintf(stderr,
                 "sdfg-prof selftest: report mismatch\n-- got:\n%s"
                 "-- want:\n%s",
                 got.c_str(), kSelftestGolden);
    return 1;
  }
  // The ranking must put the stencil map first with its tier recorded.
  if (r.nodes.empty() || r.nodes[0].name != "stencil" ||
      r.nodes[0].tier != 1) {
    std::fprintf(stderr, "sdfg-prof selftest: bad hot-node ranking\n");
    return 1;
  }
  // JSON output is parseable by our own reader and carries the ranking.
  std::string js = render_json(r, "selftest", 20);
  JV jdoc = JsonParser(js).parse();
  const JV* nodes = jdoc.get("nodes");
  if (!nodes || nodes->kind != JV::Arr || nodes->arr.empty() ||
      nodes->arr[0].get("name")->as_str() != "stencil") {
    std::fprintf(stderr, "sdfg-prof selftest: bad --json output\n");
    return 1;
  }
  const JV* analyses = jdoc.get("analyses");
  if (!analyses || analyses->kind != JV::Arr || analyses->arr.size() != 2 ||
      analyses->arr[0].get("name")->as_str() != "race") {
    std::fprintf(stderr, "sdfg-prof selftest: bad analyses aggregation\n");
    return 1;
  }
  const JV* cache = jdoc.get("cache");
  if (!cache || cache->kind != JV::Obj ||
      (int)cache->get("hits")->as_num() != 1 ||
      (int)cache->get("misses")->as_num() != 1 ||
      (int)cache->get("commits")->as_num() != 1 ||
      (int)cache->get("corrupt_rejected")->as_num() != 1 ||
      (int)cache->get("negative_stores")->as_num() != 1 ||
      (int)cache->get("faults")->as_num() != 1) {
    std::fprintf(stderr, "sdfg-prof selftest: bad cache aggregation\n");
    return 1;
  }
  const JV* serve = jdoc.get("serve");
  if (!serve || serve->kind != JV::Obj ||
      (int)serve->get("accepted")->as_num() != 1 ||
      (int)serve->get("shed")->as_num() != 1 ||
      (int)serve->get("deduped")->as_num() != 1 ||
      (int)serve->get("completed")->as_num() != 1 ||
      (int)serve->get("deadlines")->as_num() != 1 ||
      (int)serve->get("jobs_waited")->as_num() != 2 ||
      serve->get("queue_wait_p90_ms")->as_num() < 7.9 ||
      serve->get("queue_wait_p90_ms")->as_num() > 8.1) {
    std::fprintf(stderr, "sdfg-prof selftest: bad serve aggregation\n");
    return 1;
  }
  const JV* plans = jdoc.get("plans");
  if (!plans || plans->kind != JV::Arr || plans->arr.size() != 1 ||
      plans->arr[0].get("map")->as_str() != "stencil" ||
      (int)plans->arr[0].get("jam")->as_num() != 4 ||
      (int)plans->arr[0].get("chunks")->as_num() != 8) {
    std::fprintf(stderr, "sdfg-prof selftest: bad kernel-plan aggregation\n");
    return 1;
  }
  // Error paths: E502 (syntax), E503 (not a trace), E504 (bad event).
  bool e502 = false, e503 = false, e504 = false;
  try {
    JsonParser(std::string("{\"truncated\":")).parse();
  } catch (const SyntaxError&) {
    e502 = true;
  }
  try {
    aggregate(JsonParser(std::string("{\"foo\":1}")).parse());
  } catch (const Malformed&) {
    e503 = true;
  }
  try {
    aggregate(JsonParser(std::string("{\"traceEvents\":[42]}")).parse());
  } catch (const Malformed&) {
    e504 = true;
  }
  if (!e502 || !e503 || !e504) {
    std::fprintf(stderr, "sdfg-prof selftest: error paths not exercised\n");
    return 1;
  }
  // --metrics exposition carries the aggregates under the registry names.
  std::string mx = render_metrics(r);
  if (mx.find("dacepp_trace_events_total " + std::to_string(r.events)) ==
          std::string::npos ||
      mx.find("dacepp_cache_hits_total 1") == std::string::npos ||
      mx.find("dacepp_serve_accepted_total 1") == std::string::npos) {
    std::fprintf(stderr, "sdfg-prof selftest: bad --metrics output\n");
    return 1;
  }
  std::printf("sdfg-prof selftest OK (%zu events aggregated)\n", r.events);
  return 0;
}

/// Prometheus-style text exposition of the trace-derived aggregates --
/// the offline twin of the serve daemon's Metrics verb, using the same
/// metric names so dashboards need only one vocabulary.
std::string render_metrics(const Report& r) {
  std::ostringstream os;
  auto c = [&](const char* name, long long v) {
    os << "# TYPE " << name << " counter\n" << name << " " << v << "\n";
  };
  c("dacepp_trace_events_total", (long long)r.events);
  c("dacepp_jit_compiles_total", r.jit_compiles);
  c("dacepp_jit_cache_hits_total", r.jit_cache_hits);
  c("dacepp_jit_negative_hits_total", r.jit_negative_hits);
  c("dacepp_tier_promotions_total", r.tier_promotions);
  c("dacepp_map_compiles_total", r.map_compiles);
  c("dacepp_cache_hits_total", r.cache.hits);
  c("dacepp_cache_misses_total", r.cache.misses);
  c("dacepp_cache_commits_total", r.cache.commits);
  c("dacepp_cache_corrupt_total", r.cache.corrupt_rejected);
  c("dacepp_cache_evictions_total", r.cache.evictions);
  c("dacepp_cache_negative_hits_total", r.cache.negative_hits);
  c("dacepp_cache_negative_stores_total", r.cache.negative_stores);
  c("dacepp_cache_faults_injected_total", r.cache.faults);
  c("dacepp_serve_accepted_total", r.serve.accepted);
  c("dacepp_serve_shed_total", r.serve.shed);
  c("dacepp_serve_deduped_total", r.serve.deduped);
  c("dacepp_serve_completed_total", r.serve.completed);
  c("dacepp_serve_compile_errors_total", r.serve.compile_errors);
  c("dacepp_serve_deadline_total", r.serve.deadlines);
  c("dacepp_serve_crashed_total", r.serve.crashed);
  c("dacepp_serve_protocol_errors_total", r.serve.protocol_errors);
  return os.str();
}

void usage() {
  std::fprintf(stderr,
               "usage: sdfg-prof [--json|--metrics] [--top N] TRACE.json\n"
               "       sdfg-prof --selftest\n"
               "Aggregates an obs:: Chrome/Perfetto trace "
               "(DACE_TRACE_FILE=...) into a hot-node report.\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool metrics = false;
  int top = 20;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--selftest") return selftest();
    if (a == "--json") {
      json = true;
    } else if (a == "--metrics") {
      metrics = true;
    } else if (a == "--top") {
      if (i + 1 >= argc) {
        usage();
        return 1;
      }
      top = std::atoi(argv[++i]);
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "sdfg-prof: unknown option %s\n", a.c_str());
      usage();
      return 1;
    } else {
      path = a;
    }
  }
  if (path.empty()) {
    usage();
    return 1;
  }

  DiagSink sink;
  sink.set_source(path, "");
  std::string text;
  {
    std::ifstream f(path, std::ios::binary);
    if (!f.good()) {
      sink.error("E501", 0, 0, "cannot open trace file '" + path + "'");
    } else {
      std::ostringstream ss;
      ss << f.rdbuf();
      text = ss.str();
    }
  }
  Report report;
  if (!sink.has_errors()) {
    try {
      JV doc = JsonParser(text).parse();
      report = aggregate(doc);
    } catch (const SyntaxError& e) {
      sink.error("E502", e.line, e.col, "JSON syntax error: " + e.msg);
    } catch (const Malformed& m) {
      // E503 = document shape, E504 = individual event shape.
      bool doc_level = m.msg.find("traceEvents[") == std::string::npos;
      sink.error(doc_level ? "E503" : "E504", 0, 0,
                 "not a valid trace: " + m.msg);
    }
  }
  // A trace that parsed but recorded nothing is almost always a wiring
  // mistake (DACE_TRACE_FILE unset during the run, wrong file, empty
  // traceEvents): diagnose it instead of printing an empty report.
  if (!sink.has_errors() && report.events == 0) {
    sink.error("E505", 0, 0,
               "empty trace: '" + path + "' holds no events");
  }
  if (sink.has_errors()) {
    if (json) std::printf("%s\n", sink.to_json().c_str());
    std::fprintf(stderr, "%s", sink.render().c_str());
    return 2;
  }
  if (metrics) {
    std::printf("%s", render_metrics(report).c_str());
    return 0;
  }
  if (json) {
    std::printf("%s", render_json(report, path, top).c_str());
  } else {
    std::printf("sdfg-prof: %zu events from %s\n", report.events,
                path.c_str());
    std::printf("%s", render_text(report, top).c_str());
  }
  return 0;
}
