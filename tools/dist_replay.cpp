// dist-replay: deterministic re-execution of a simMPI communication trace.
//
// A chaos run recorded with DACE_COMM_TRACE=file (or World::enable_trace)
// captures the full per-rank message schedule.  This tool re-executes
// that schedule -- real sends, recvs and collectives over a fresh World
// -- optionally under a fault plan, so any failure found by a randomized
// chaos sweep is reproducible from the trace plus its seed:
//
//   DACE_COMM_TRACE=run.trace DACE_FAULT_PLAN=seed=7,drop=0.05 ctest ...
//   dist-replay --plan seed=7,drop=0.05 run.trace
//
// Exit codes: 0 = replay completed cleanly, 2 = rank failures were
// reproduced (details printed), 1 = usage or parse error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/obs.hpp"
#include "distributed/dist_kernels.hpp"
#include "distributed/simmpi.hpp"

namespace {

using namespace dace;
using dist::Comm;
using dist::World;

struct Op {
  std::string kind;  // "send", "recv", or a collective name
  int peer = -1, tag = -1, root = -1;
  int64_t count = 0, block = 0, stride = 0;  // p2p; collectives use count=n
  double cost = 0;                            // sync only
};

struct Trace {
  int nranks = 0;
  std::string net = "cray-mpi";
  std::vector<std::vector<Op>> per_rank;
};

dist::NetModel net_by_name(const std::string& name) {
  if (name == "gasnet") return dist::NetModel::gasnet();
  if (name == "tcp") return dist::NetModel::tcp();
  return dist::NetModel::mpi_cray();
}

Trace parse_trace(std::istream& in) {
  Trace t;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // "# dacepp-comm-trace v1 nranks=N net=NAME"
      std::istringstream hs(line);
      std::string tok;
      while (hs >> tok) {
        if (tok.rfind("nranks=", 0) == 0) t.nranks = std::stoi(tok.substr(7));
        if (tok.rfind("net=", 0) == 0) t.net = tok.substr(4);
      }
      continue;
    }
    std::istringstream is(line);
    std::string kind;
    int rank;
    Op op;
    is >> kind >> rank;
    if (kind == "send" || kind == "recv") {
      op.kind = kind;
      is >> op.peer >> op.tag >> op.count >> op.block >> op.stride;
    } else if (kind == "coll") {
      is >> op.kind >> op.count >> op.root;
      if (!(is >> op.cost)) op.cost = 0;
    } else {
      throw err("dist-replay: unrecognized op '", kind, "' at line ", lineno);
    }
    DACE_CHECK(!is.fail(), "dist-replay: malformed line ", lineno, ": ", line);
    DACE_CHECK(rank >= 0, "dist-replay: bad rank at line ", lineno);
    if (rank >= (int)t.per_rank.size()) t.per_rank.resize((size_t)rank + 1);
    t.per_rank[(size_t)rank].push_back(op);
  }
  if (t.nranks == 0) t.nranks = (int)t.per_rank.size();
  DACE_CHECK(t.nranks >= 1, "dist-replay: empty trace");
  t.per_rank.resize((size_t)t.nranks);
  return t;
}

/// Re-execute one rank's recorded schedule with synthetic payloads.
void replay_rank(Comm& c, const std::vector<Op>& ops) {
  int p = c.size();
  for (const Op& op : ops) {
    if (op.kind == "send") {
      std::vector<double> buf((size_t)(op.count * op.block), 1.0);
      c.send_vector(buf.data(), op.count, op.block, op.block, op.peer, op.tag);
    } else if (op.kind == "recv") {
      std::vector<double> buf((size_t)(op.count * op.block));
      c.recv_vector(buf.data(), op.count, op.block, op.block, op.peer, op.tag);
    } else if (op.kind == "barrier") {
      c.barrier();
    } else if (op.kind == "sync") {
      c.charge_sync(op.cost);
    } else if (op.kind == "bcast") {
      std::vector<double> buf((size_t)op.count, (double)c.rank());
      c.bcast(buf.data(), op.count, op.root);
    } else if (op.kind == "allreduce") {
      std::vector<double> buf((size_t)op.count, 1.0);
      c.allreduce_sum(buf.data(), op.count);
    } else if (op.kind == "reduce") {
      std::vector<double> sb((size_t)op.count, 1.0), rb((size_t)op.count);
      c.reduce_sum(sb.data(), rb.data(), op.count, op.root);
    } else if (op.kind == "scatter") {
      std::vector<double> sb((size_t)(op.count * p), 1.0), rb((size_t)op.count);
      c.scatter(sb.data(), rb.data(), op.count, op.root);
    } else if (op.kind == "gather") {
      std::vector<double> sb((size_t)op.count, 1.0), rb((size_t)(op.count * p));
      c.gather(sb.data(), rb.data(), op.count, op.root);
    } else if (op.kind == "allgather") {
      std::vector<double> sb((size_t)op.count, 1.0), rb((size_t)(op.count * p));
      c.allgather(sb.data(), rb.data(), op.count);
    } else {
      throw err("dist-replay: cannot replay op '", op.kind, "'");
    }
  }
}

int replay(const Trace& t, const dist::FaultPlan& plan,
           const dist::CommConfig& cfg, bool quiet) {
  World w(t.nranks, net_by_name(t.net));
  w.set_fault_plan(plan);
  w.set_comm_config(cfg);
  bool failed = false;
  try {
    w.run([&](Comm& c) { replay_rank(c, t.per_rank[(size_t)c.rank()]); });
  } catch (const dist::DistError& e) {
    failed = true;
    if (!quiet) std::printf("%s\n", e.what());
  }
  if (!quiet) {
    std::printf("replay: %d ranks, %lld messages, %lld bytes, %lld retries, "
                "virtual time %.6es\n",
                t.nranks, (long long)w.total_messages(),
                (long long)w.total_bytes(), (long long)w.total_retries(),
                w.max_clock());
    auto events = w.fault_events();
    if (!events.empty()) {
      std::printf("injected faults (%zu):\n", events.size());
      for (const auto& e : events)
        std::printf("  %s\n", e.to_string().c_str());
    }
    if (!plan.to_string().empty())
      std::printf("fault plan: %s\n", plan.to_string().c_str());
  }
  return failed ? 2 : 0;
}

int selftest() {
  // Record a small run (halo ring + collectives), then verify (a) the
  // trace replays cleanly with identical message counts and (b) a seeded
  // chaos replay is deterministic: same seed => identical fault events.
  const int P = 4;
  World rec(P);
  rec.enable_trace("");  // in-memory
  rec.run([&](Comm& c) {
    int right = (c.rank() + 1) % P, left = (c.rank() + P - 1) % P;
    std::vector<double> out(64, (double)c.rank()), in(64);
    c.send(out.data(), 64, right, 5);
    c.recv(in.data(), 64, left, 5);
    double s = in[0];
    c.allreduce_sum(&s, 1);
    c.bcast(s == 0 ? out.data() : in.data(), 8, 0);
    c.barrier();
  });
  int64_t want_msgs = rec.total_messages();

  std::ostringstream blob;
  for (const auto& line : rec.trace_lines()) blob << line << "\n";
  std::istringstream in(blob.str());
  Trace t = parse_trace(in);
  DACE_CHECK(t.nranks == P, "selftest: header nranks mismatch");

  World w1(t.nranks, net_by_name(t.net));
  w1.run([&](Comm& c) { replay_rank(c, t.per_rank[(size_t)c.rank()]); });
  DACE_CHECK(w1.total_messages() == want_msgs,
             "selftest: replay moved ", w1.total_messages(),
             " messages, recorded run moved ", want_msgs);

  dist::FaultPlan plan = dist::FaultPlan::parse("seed=7,drop=0.2,dup=0.1");
  auto run_chaos = [&] {
    World w(t.nranks, net_by_name(t.net));
    w.set_fault_plan(plan);
    w.run([&](Comm& c) { replay_rank(c, t.per_rank[(size_t)c.rank()]); });
    std::vector<std::string> ev;
    for (const auto& e : w.fault_events()) ev.push_back(e.to_string());
    std::sort(ev.begin(), ev.end());
    return ev;
  };
  auto e1 = run_chaos(), e2 = run_chaos();
  DACE_CHECK(!e1.empty(), "selftest: chaos replay injected no faults");
  DACE_CHECK(e1 == e2, "selftest: chaos replay is not deterministic");
  std::printf("dist-replay selftest OK (%lld messages, %zu chaos events)\n",
              (long long)want_msgs, e1.size());
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: dist-replay [--plan SPEC] [--seed N] [--timeout S] "
               "[--retries N] [--trace OUT.json] [--quiet] TRACE\n"
               "       dist-replay --selftest\n"
               "  --trace OUT.json  re-emit the replayed schedule as a\n"
               "                    Chrome/Perfetto timeline (per-rank\n"
               "                    virtual clocks, faults as instants)\n");
}

}  // namespace

int main(int argc, char** argv) {
  dist::FaultPlan plan;
  dist::CommConfig cfg = dist::CommConfig::from_env();
  std::string path;
  std::string trace_out;
  bool quiet = false;
  try {
    for (int i = 1; i < argc; ++i) {
      std::string a = argv[i];
      auto val = [&]() -> std::string {
        DACE_CHECK(i + 1 < argc, "dist-replay: ", a, " needs a value");
        return argv[++i];
      };
      if (a == "--selftest") return selftest();
      if (a == "--plan") plan = dist::FaultPlan::parse(val());
      else if (a == "--seed") plan.seed = (uint64_t)std::stoull(val());
      else if (a == "--timeout") cfg.timeout_s = std::stod(val());
      else if (a == "--retries") cfg.max_retries = std::stoi(val());
      else if (a == "--trace") trace_out = val();
      else if (a == "--quiet") quiet = true;
      else if (a == "--help" || a == "-h") { usage(); return 0; }
      else if (!a.empty() && a[0] == '-') throw err("unknown option ", a);
      else path = a;
    }
    if (path.empty()) { usage(); return 1; }
    std::ifstream f(path);
    DACE_CHECK(f.good(), "dist-replay: cannot open ", path);
    Trace t = parse_trace(f);
    if (!trace_out.empty()) {
      obs::set_enabled(true);
      obs::clear();
    }
    int rc = replay(t, plan, cfg, quiet);
    if (!trace_out.empty()) {
      DACE_CHECK(obs::write_trace(trace_out), "dist-replay: cannot write ",
                 trace_out);
      if (!quiet)
        std::printf("timeline written to %s (%zu events)\n",
                    trace_out.c_str(), obs::event_count());
    }
    return rc;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dist-replay: %s\n", e.what());
    return 1;
  }
}
