// sdfg-serve: long-lived compile-and-serve daemon (src/serve/*).
//
// Usage:
//   sdfg-serve [--socket PATH] [--workers N] [--queue-max N]
//              [--deadline-ms N] [--io-timeout-ms N] [--once]
//   sdfg-serve --selftest
//
// Accepts DaCeLang compile-and-run jobs over a unix-domain socket using
// the DSRV frame protocol (docs/SERVE.md).  SIGTERM/SIGINT trigger a
// graceful drain: stop accepting, answer new work with E610, finish or
// deadline-out in-flight jobs, flush obs:: counters, exit 0.  A stale
// socket left by a crashed daemon is recovered at startup; a live
// daemon on the same path, or a symlinked path, refuses to start.
//
// --once serves until the first drain signal with no extra behavior --
// it exists so scripts can read "the daemon runs until told otherwise"
// explicitly.  --selftest runs a full in-process lifecycle against a
// private socket: start, ping, run, protocol abuse, stats, drain,
// restart recovery.
//
// Exit codes: 0 = clean drain / selftest pass, 1 = startup or drain
// failure / selftest failure, 64 = usage error.
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

using namespace dace::serve;

namespace {

int usage() {
  std::cerr << "usage: sdfg-serve [--socket PATH] [--workers N] "
               "[--queue-max N] [--deadline-ms N] [--io-timeout-ms N] "
               "[--once]\n"
               "       sdfg-serve --selftest\n";
  return 64;
}

std::atomic<int> g_signal{0};

void on_signal(int sig) { g_signal.store(sig); }

void install_handlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = on_signal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
}

// ---------------------------------------------------------------------------
// Selftest
// ---------------------------------------------------------------------------

#define ST_CHECK(cond)                                                   \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::cerr << "selftest FAILED at " << __LINE__ << ": " #cond "\n"; \
      return 1;                                                          \
    }                                                                    \
  } while (0)

const char kProgram[] =
    "@dace.program\n"
    "def st_axpy(A: dace.float64[N], B: dace.float64[N]):\n"
    "    for i in dace.map[0:N]:\n"
    "        B[i] = 2.0 * A[i] + B[i]\n";

int selftest() {
  std::string sock = "/tmp/dacepp-serve-selftest-" +
                     std::to_string((long)getpid()) + ".sock";
  ::unlink(sock.c_str());

  ServeConfig cfg;
  cfg.socket_path = sock;
  cfg.workers = 2;
  cfg.queue_max = 8;
  cfg.deadline_ms = 10000;

  Server srv(cfg);
  std::string why;
  ST_CHECK(srv.start(&why));

  ClientOptions copts;
  copts.socket_path = sock;
  Client cli(copts);

  // Liveness and stats.
  ST_CHECK(cli.ping().ok);
  Reply st = cli.stats();
  ST_CHECK(st.ok);
  ST_CHECK(json_find_int(st.payload, "accepted", -1) == 0);

  // A real job round-trips with deterministic output checksums.
  RunRequest req;
  req.source = kProgram;
  req.symbols["N"] = 16;
  req.id = "st-1";
  Reply r1 = cli.run(req);
  ST_CHECK(r1.ok);
  ST_CHECK(json_find_string(r1.payload, "id") == "st-1");
  ST_CHECK(!extract_outputs(r1.payload).empty());
  Reply r2 = cli.run(req);
  ST_CHECK(r2.ok);
  ST_CHECK(extract_outputs(r2.payload) == extract_outputs(r1.payload));

  // A compile error is a structured E611, not a dead daemon.
  RunRequest bad;
  bad.source = "def broken(:\n";
  Reply rb = cli.run(bad);
  ST_CHECK(!rb.ok && rb.code == "E611");
  ST_CHECK(cli.ping().ok);

  // A second daemon refuses to shadow the live socket.
  {
    Server shadow(cfg);
    std::string w2;
    ST_CHECK(!shadow.start(&w2));
    ST_CHECK(w2.find("live daemon") != std::string::npos ||
             w2.find("lock") != std::string::npos);
  }

  // Drain: zero orphans, socket removed.
  ST_CHECK(srv.drain());
  ST_CHECK(access(sock.c_str(), F_OK) != 0);

  // Crash-only restart recovery: plant a stale socket file, then start.
  {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    struct sockaddr_un sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, sock.c_str(), sizeof(sa.sun_path) - 1);
    ST_CHECK(::bind(fd, (struct sockaddr*)&sa, sizeof(sa)) == 0);
    ::close(fd);  // no unlink: the stale file stays behind
    Server again(cfg);
    std::string w3;
    ST_CHECK(again.start(&w3));
    ClientOptions c2;
    c2.socket_path = sock;
    ST_CHECK(Client(c2).ping().ok);
    ST_CHECK(again.drain());
  }

  std::cout << "sdfg-serve selftest ok\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ServeConfig cfg = ServeConfig::from_env();
  bool once = false;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (a == "--selftest") return selftest();
    if (a == "--once") {
      once = true;
    } else if (a == "--socket") {
      const char* v = next();
      if (!v) return usage();
      cfg.socket_path = v;
    } else if (a == "--workers") {
      const char* v = next();
      if (!v) return usage();
      cfg.workers = std::atoi(v);
    } else if (a == "--queue-max") {
      const char* v = next();
      if (!v) return usage();
      cfg.queue_max = std::atoi(v);
    } else if (a == "--deadline-ms") {
      const char* v = next();
      if (!v) return usage();
      cfg.deadline_ms = std::atoll(v);
    } else if (a == "--io-timeout-ms") {
      const char* v = next();
      if (!v) return usage();
      cfg.io_timeout_ms = std::atoi(v);
    } else {
      return usage();
    }
  }
  (void)once;

  install_handlers();
  Server srv(cfg);
  std::string why;
  if (!srv.start(&why)) {
    std::cerr << "sdfg-serve: " << why << "\n";
    return 1;
  }
  std::cerr << "sdfg-serve: listening on " << srv.socket_path() << "\n";

  while (g_signal.load() == 0 && srv.running()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  int sig = g_signal.load();
  std::cerr << "sdfg-serve: "
            << (sig == SIGTERM ? "SIGTERM" : sig == SIGINT ? "SIGINT" : "stop")
            << " received, draining\n";
  bool clean = srv.drain();
  std::cerr << "sdfg-serve: drained " << (clean ? "cleanly" : "with orphans")
            << "\n";
  return clean ? 0 : 1;
}
