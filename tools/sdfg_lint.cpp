// sdfg-lint: offline static analyzer for SDFGs.
//
// Runs the analysis/ sanitizer (race detector, memlet bounds checker,
// interstate def-use) over graphs stored on disk, without executing them.
//
// Usage:
//   sdfg-lint [--werror] FILE...
//   sdfg-lint --emit-sample=race|clean
//   sdfg-lint --selftest
//
// Each FILE is either an SDFG serialization produced by SDFG::save()
// (detected by a leading '(') or a DaCeLang source, which is compiled
// through the frontend first.  --werror also fails on warnings.
// --emit-sample prints a serialized example graph (racy or clean) for
// experimentation; --selftest round-trips both samples through the
// serializer and checks the analyzer classifies them correctly.
//
// Exit codes: 0 = clean, 1 = findings, 2 = load/usage failure.
#include <cctype>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "frontend/lowering.hpp"
#include "ir/sdfg.hpp"

namespace {

using dace::analysis::AnalysisReport;
using namespace dace::ir;

/// A one-state, one-map SDFG: every iteration writes A[0] (racy) or A[i]
/// (clean).  The racy variant is the canonical write-conflict the race
/// detector must prove.
std::unique_ptr<SDFG> build_sample(bool racy) {
  using dace::sym::Expr;
  using dace::sym::Range;
  using dace::sym::S;
  using dace::sym::Subset;

  auto g = std::make_unique<SDFG>(racy ? "sample_racy" : "sample_clean");
  g->add_symbol("N");
  g->add_array("A", DType::f64, {S("N")});
  g->add_arg("A");
  State& st = g->add_state("main", true);
  int na = st.add_access("A");
  auto [me, mx] = st.add_map("m", {"i"},
                             Subset({Range(Expr(int64_t{0}), S("N"))}));
  int tl = st.add_tasklet("t", {}, CodeExpr::constant(1.0));
  Subset target = racy ? Subset::element({Expr(int64_t{0})})
                       : Subset::element({S("i")});
  st.add_edge(me, "", tl, "", Memlet());
  st.add_edge(tl, "__out", mx, "IN_A", Memlet("A", target));
  st.add_edge(mx, "OUT_A", na, "", Memlet("A", Subset::full({S("N")})));
  return g;
}

/// Load a graph from file contents: serialized SDFGs start with '(';
/// anything else is treated as DaCeLang source.
std::unique_ptr<SDFG> load_any(const std::string& text) {
  size_t i = 0;
  while (i < text.size() && std::isspace((unsigned char)text[i])) ++i;
  if (i < text.size() && text[i] == '(') return load_sdfg(text);
  return dace::fe::compile_to_sdfg(text);
}

int selftest() {
  for (bool racy : {true, false}) {
    auto g = build_sample(racy);
    g->validate();
    std::unique_ptr<SDFG> reloaded = load_sdfg(g->save());
    if (reloaded->dump() != g->dump()) {
      std::cerr << "selftest: serializer round-trip mismatch for "
                << g->name() << "\n";
      return 2;
    }
    AnalysisReport report = dace::analysis::analyze(*reloaded);
    if (racy != report.has_errors()) {
      std::cerr << "selftest: expected " << (racy ? "errors" : "no errors")
                << " for " << g->name() << ", got:\n"
                << report.to_string();
      return 2;
    }
  }
  std::cout << "selftest: ok\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool werror = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--werror") {
      werror = true;
    } else if (arg == "--selftest") {
      return selftest();
    } else if (arg.rfind("--emit-sample=", 0) == 0) {
      std::string kind = arg.substr(14);
      if (kind != "race" && kind != "clean") {
        std::cerr << "sdfg-lint: unknown sample '" << kind << "'\n";
        return 2;
      }
      std::cout << build_sample(kind == "race")->save();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: sdfg-lint [--werror] FILE...\n"
                << "       sdfg-lint --emit-sample=race|clean\n"
                << "       sdfg-lint --selftest\n";
      return 0;
    } else if (arg.rfind("-", 0) == 0) {
      std::cerr << "sdfg-lint: unknown option '" << arg << "'\n";
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "sdfg-lint: no input files (try --help)\n";
    return 2;
  }

  bool findings = false;
  for (const auto& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "sdfg-lint: cannot open '" << path << "'\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    std::unique_ptr<SDFG> g;
    try {
      g = load_any(buf.str());
      g->validate();
    } catch (const std::exception& e) {
      std::cerr << path << ": " << e.what() << "\n";
      return 2;
    }

    AnalysisReport report = dace::analysis::analyze(*g);
    if (!report.empty()) {
      std::cout << path << " (sdfg '" << g->name() << "'):\n"
                << report.to_string();
    }
    if (report.has_errors() || (werror && !report.empty())) findings = true;
  }
  return findings ? 1 : 0;
}
