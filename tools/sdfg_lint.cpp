// sdfg-lint: offline static analyzer for SDFGs.
//
// Runs the analysis/ sanitizer (race detector, memlet bounds checker,
// interstate def-use) over graphs stored on disk, without executing them.
//
// Usage:
//   sdfg-lint [--werror] [--json] FILE...
//   sdfg-lint --emit-sample=race|clean
//   sdfg-lint --selftest
//
// Each FILE is either an SDFG serialization produced by SDFG::save()
// (detected by a leading '(') or a DaCeLang source, which is compiled
// through the frontend first.  All findings are structured diagnostics
// (common/diag.hpp) with stable codes: frontend/loader errors keep their
// E1xx-E4xx codes (with source-line carets for DaCeLang inputs), and the
// analyses report A101 (race), A102 (bounds), A103 (def-use).  The
// abstract-interpretation lints (analysis/absint.hpp) add three-valued
// verdicts on top: A201 (possible/proven out-of-range access), A202
// (dead element write), A203 (read of a never-written element), A204
// (non-contiguous innermost access in a hot map).  DACE_ABSINT=0
// disables the A2xx analyses.  --json emits one machine-readable report
// per file.  --werror also fails on warnings.  --emit-sample prints a
// serialized example graph (racy or clean); --selftest round-trips both
// samples through the serializer, checks the analyzer classifies them
// correctly, and verifies every A1xx/A2xx code survives into the JSON
// rendering on a zoo of minimal trigger graphs.
//
// Exit codes: 0 = clean, 1 = findings, 2 = parse/load failure,
// 64 = usage error.
#include <cctype>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/absint.hpp"
#include "analysis/analysis.hpp"
#include "common/diag.hpp"
#include "frontend/lowering.hpp"
#include "ir/sdfg.hpp"

namespace {

using dace::analysis::AnalysisReport;
using namespace dace::ir;
namespace diag = dace::diag;

/// A one-state, one-map SDFG: every iteration writes A[0] (racy) or A[i]
/// (clean).  The racy variant is the canonical write-conflict the race
/// detector must prove.
std::unique_ptr<SDFG> build_sample(bool racy) {
  using dace::sym::Expr;
  using dace::sym::Range;
  using dace::sym::S;
  using dace::sym::Subset;

  auto g = std::make_unique<SDFG>(racy ? "sample_racy" : "sample_clean");
  g->add_symbol("N");
  g->add_array("A", DType::f64, {S("N")});
  g->add_arg("A");
  State& st = g->add_state("main", true);
  int na = st.add_access("A");
  auto [me, mx] = st.add_map("m", {"i"},
                             Subset({Range(Expr(int64_t{0}), S("N"))}));
  int tl = st.add_tasklet("t", {}, CodeExpr::constant(1.0));
  Subset target = racy ? Subset::element({Expr(int64_t{0})})
                       : Subset::element({S("i")});
  st.add_edge(me, "", tl, "", Memlet());
  st.add_edge(tl, "__out", mx, "IN_A", Memlet("A", target));
  st.add_edge(mx, "OUT_A", na, "", Memlet("A", Subset::full({S("N")})));
  return g;
}

/// Minimal trigger graphs for the stable analysis codes: each entry
/// produces at least one finding with every listed code.  Used by
/// --selftest to pin the code table and the JSON rendering.
struct ZooEntry {
  std::unique_ptr<SDFG> g;
  std::vector<const char*> codes;
};

std::vector<ZooEntry> build_code_zoo() {
  using dace::sym::Expr;
  using dace::sym::Range;
  using dace::sym::S;
  using dace::sym::Subset;
  std::vector<ZooEntry> zoo;

  // A101: every iteration writes A[0].
  zoo.push_back({build_sample(true), {"A101"}});

  // A102 + A201: map over [0, N) writes A[i+1]; the last iteration walks
  // off the end, which both the corner checker and the interval prover
  // refute.
  {
    auto g = std::make_unique<SDFG>("oob");
    g->add_symbol("N");
    g->add_array("A", DType::f64, {S("N")});
    g->add_arg("A");
    State& st = g->add_state("main", true);
    int na = st.add_access("A");
    auto [me, mx] = st.add_map("m", {"i"},
                               Subset({Range(Expr(int64_t{0}), S("N"))}));
    int tl = st.add_tasklet("t", {}, CodeExpr::constant(1.0));
    st.add_edge(me, "", tl, "", Memlet());
    st.add_edge(tl, "__out", mx, "IN_A",
                Memlet("A", Subset::element({S("i") + Expr(int64_t{1})})));
    st.add_edge(mx, "OUT_A", na, "", Memlet("A", Subset::full({S("N")})));
    zoo.push_back({std::move(g), {"A102", "A201"}});
  }

  // A202 / A203: state 0 writes tmp[0] and tmp[2:N); the consumer reads
  // one element.  Reading tmp[0] leaves [2, N) element-dead (A202);
  // reading tmp[1] hits a gap no write covers (A203).  Both are
  // invisible to the container-level A103 def-use.
  for (int read : {0, 1}) {
    auto g = std::make_unique<SDFG>(read == 0 ? "deadwrite" : "uninit_elem");
    g->add_symbol("N");
    g->add_array("out", DType::f64, {S("N")});
    g->add_arg("out");
    g->add_array("tmp", DType::f64, {S("N")}, /*transient=*/true);
    State& s0 = g->add_state("produce", true);
    int t1 = s0.add_tasklet("t1", {}, CodeExpr::constant(1.0));
    int t2 = s0.add_tasklet("t2", {}, CodeExpr::constant(2.0));
    int a0 = s0.add_access("tmp");
    s0.add_edge(t1, "__out", a0, "",
                Memlet("tmp", Subset::element({Expr(int64_t{0})})));
    s0.add_edge(t2, "__out", a0, "",
                Memlet("tmp", Subset({Range(Expr(int64_t{2}), S("N"))})));
    State& s1 = g->add_state("consume");
    int a1 = s1.add_access("tmp");
    int b1 = s1.add_access("out");
    int tc = s1.add_tasklet("c", {"x"}, CodeExpr::input("x"));
    s1.add_edge(a1, "", tc, "x",
                Memlet("tmp", Subset::element({Expr(int64_t{read})})));
    s1.add_edge(tc, "__out", b1, "",
                Memlet("out", Subset::element({Expr(int64_t{0})})));
    g->add_interstate_edge(0, 1);
    zoo.push_back({std::move(g), {read == 0 ? "A202" : "A203"}});
  }

  // A103: a transient read that no state ever writes (whole-container
  // def-use violation).
  {
    auto g = std::make_unique<SDFG>("uninit");
    g->add_symbol("N");
    g->add_array("out", DType::f64, {S("N")});
    g->add_arg("out");
    g->add_array("tmp", DType::f64, {S("N")}, /*transient=*/true);
    State& st = g->add_state("main", true);
    int a = st.add_access("tmp");
    int b = st.add_access("out");
    int tl = st.add_tasklet("c", {"x"}, CodeExpr::input("x"));
    st.add_edge(a, "", tl, "x",
                Memlet("tmp", Subset::element({Expr(int64_t{0})})));
    st.add_edge(tl, "__out", b, "",
                Memlet("out", Subset::element({Expr(int64_t{0})})));
    zoo.push_back({std::move(g), {"A103"}});
  }

  // A204: transposed read inside a parallel map -- the innermost
  // parameter strides by M instead of 1.
  {
    auto g = std::make_unique<SDFG>("transposed");
    g->add_symbol("N");
    g->add_symbol("M");
    g->add_array("A", DType::f64, {S("N"), S("M")});
    g->add_array("B", DType::f64, {S("N"), S("M")});
    g->add_arg("A");
    g->add_arg("B");
    State& st = g->add_state("main", true);
    int na = st.add_access("A");
    int nb = st.add_access("B");
    auto [me, mx] = st.add_map(
        "m", {"i", "j"},
        Subset({Range(Expr(int64_t{0}), S("N")),
                Range(Expr(int64_t{0}), S("M"))}),
        Schedule::CPUParallel);
    int tl = st.add_tasklet("t", {"x"}, CodeExpr::input("x"));
    st.add_edge(na, "", me, "IN_A", Memlet("A", Subset::full({S("N"), S("M")})));
    st.add_edge(me, "OUT_A", tl, "x",
                Memlet("A", Subset::element({S("j"), S("i")})));
    st.add_edge(tl, "__out", mx, "IN_B",
                Memlet("B", Subset::element({S("i"), S("j")})));
    st.add_edge(mx, "OUT_B", nb, "",
                Memlet("B", Subset::full({S("N"), S("M")})));
    zoo.push_back({std::move(g), {"A204"}});
  }
  return zoo;
}

/// Stable machine code of an analysis finding.
const char* analysis_code(const std::string& analysis) {
  if (analysis == "race") return "A101";
  if (analysis == "bounds") return "A102";
  if (analysis == "defuse") return "A103";
  if (analysis == "range") return "A201";
  if (analysis == "deadwrite") return "A202";
  if (analysis == "uninit-elem") return "A203";
  if (analysis == "stride") return "A204";
  return "A100";
}

/// Classic analyses plus (unless DACE_ABSINT=0) the absint lints.
AnalysisReport run_analyses(const SDFG& g) {
  AnalysisReport report = dace::analysis::analyze(g);
  if (dace::analysis::absint::mode() != dace::analysis::absint::Mode::Off)
    dace::analysis::absint::lint(g, report);
  return report;
}

/// Convert the analyzer's findings into structured diagnostics.  SDFGs
/// have no source lines, so the location is carried in notes.
void report_analysis(const AnalysisReport& report, diag::DiagSink& sink) {
  for (const auto& d : report.diagnostics()) {
    diag::Diagnostic out;
    out.code = analysis_code(d.analysis);
    out.severity = d.severity == dace::analysis::Severity::Error
                       ? diag::Severity::Error
                       : diag::Severity::Warning;
    out.message = "[" + d.analysis + "] " + d.message;
    std::string where = "in sdfg '" + d.sdfg + "'";
    if (d.state >= 0) where += ", state " + std::to_string(d.state);
    if (d.node >= 0) where += ", node " + std::to_string(d.node);
    out.notes.push_back(where);
    if (!d.container.empty()) out.notes.push_back("container '" + d.container + "'");
    if (!d.memlet.empty()) out.notes.push_back("memlet " + d.memlet);
    if (!d.hint.empty()) out.notes.push_back("hint: " + d.hint);
    sink.report(std::move(out));
  }
}

/// Load a graph from file contents: serialized SDFGs start with '(';
/// anything else is treated as DaCeLang source.  Failures land in `sink`
/// as located diagnostics; returns nullptr.
std::unique_ptr<SDFG> load_any(const std::string& text,
                               diag::DiagSink& sink) {
  size_t i = 0;
  while (i < text.size() && std::isspace((unsigned char)text[i])) ++i;
  if (i < text.size() && text[i] == '(') return load_sdfg(text, sink);
  return dace::fe::compile_to_sdfg(text, sink);
}

int selftest() {
  for (bool racy : {true, false}) {
    auto g = build_sample(racy);
    g->validate();
    std::unique_ptr<SDFG> reloaded = load_sdfg(g->save());
    if (reloaded->dump() != g->dump()) {
      std::cerr << "selftest: serializer round-trip mismatch for "
                << g->name() << "\n";
      return 2;
    }
    AnalysisReport report = dace::analysis::analyze(*reloaded);
    if (racy != report.has_errors()) {
      std::cerr << "selftest: expected " << (racy ? "errors" : "no errors")
                << " for " << g->name() << ", got:\n"
                << report.to_string();
      return 2;
    }
    // The structured rendering must carry the stable code.
    diag::DiagSink sink;
    report_analysis(report, sink);
    if (racy && sink.render().find("A101") == std::string::npos) {
      std::cerr << "selftest: race finding lost its A101 code:\n"
                << sink.render();
      return 2;
    }
    // Malformed input must produce a located E4xx diagnostic, not a
    // crash or an unlocated throw.
    diag::DiagSink bad;
    if (load_sdfg("(sdfg \"x\" (array", bad) != nullptr ||
        !bad.has_errors() || bad.diagnostics()[0].code.rfind("E4", 0) != 0) {
      std::cerr << "selftest: truncated input not diagnosed with E4xx\n";
      return 2;
    }
  }

  // Code-table golden check: every stable A1xx/A2xx code must appear in
  // the JSON rendering of its zoo graph, with the absint lints forced on
  // (the environment gate is for the CLI path, not the selftest).
  std::string all_json = "[";
  bool first = true;
  for (const auto& entry : build_code_zoo()) {
    entry.g->validate();
    AnalysisReport report = dace::analysis::analyze(*entry.g);
    dace::analysis::absint::lint(*entry.g, report);
    diag::DiagSink sink;
    report_analysis(report, sink);
    if (!first) all_json += ",";
    first = false;
    all_json += sink.to_json();
    for (const char* code : entry.codes) {
      if (sink.render().find(code) == std::string::npos) {
        std::cerr << "selftest: graph '" << entry.g->name()
                  << "' did not produce a " << code << " finding:\n"
                  << sink.render();
        return 2;
      }
    }
  }
  all_json += "]";
  for (const char* code :
       {"A101", "A102", "A103", "A201", "A202", "A203", "A204"}) {
    if (all_json.find(code) == std::string::npos) {
      std::cerr << "selftest: code " << code
                << " missing from the JSON rendering\n";
      return 2;
    }
  }

  std::cout << "selftest: ok\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool werror = false;
  bool json = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--werror") {
      werror = true;
    } else if (arg == "--json") {
      json = true;
    } else if (arg == "--selftest") {
      return selftest();
    } else if (arg.rfind("--emit-sample=", 0) == 0) {
      std::string kind = arg.substr(14);
      if (kind != "race" && kind != "clean") {
        std::cerr << "sdfg-lint: unknown sample '" << kind << "'\n";
        return 64;
      }
      std::cout << build_sample(kind == "race")->save();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: sdfg-lint [--werror] [--json] FILE...\n"
                << "       sdfg-lint --emit-sample=race|clean\n"
                << "       sdfg-lint --selftest\n"
                << "exit codes: 0 clean, 1 findings, 2 parse failure, "
                   "64 usage\n";
      return 0;
    } else if (arg.rfind("-", 0) == 0) {
      std::cerr << "sdfg-lint: unknown option '" << arg << "'\n";
      return 64;
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) {
    std::cerr << "sdfg-lint: no input files (try --help)\n";
    return 64;
  }

  bool findings = false;
  bool parse_failure = false;
  std::ostringstream json_out;
  json_out << "[";
  bool first_json = true;

  for (const auto& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "sdfg-lint: cannot open '" << path << "'\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();

    diag::DiagSink sink;
    sink.set_source(path, buf.str());

    std::unique_ptr<SDFG> g = load_any(buf.str(), sink);
    if (g) {
      try {
        g->validate();
      } catch (const dace::Error& e) {
        sink.error("E410", 0, 0,
                   std::string("graph failed validation: ") + e.what());
        g.reset();
      }
    }
    if (!g) {
      parse_failure = true;
    } else {
      report_analysis(run_analyses(*g), sink);
    }

    if (json) {
      if (!first_json) json_out << ",";
      first_json = false;
      json_out << sink.to_json();
    } else if (!sink.empty()) {
      std::cout << sink.render();
    }
    if (sink.has_errors() || (werror && !sink.empty())) findings = true;
  }
  if (json) {
    json_out << "]";
    std::cout << json_out.str() << "\n";
  }
  if (parse_failure) return 2;
  return findings ? 1 : 0;
}
