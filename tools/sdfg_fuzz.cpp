// sdfg-fuzz: differential fuzzer driver.
//
// Generates seeded random DaCeLang programs (testing/fuzzgen.hpp) and
// executes each across the eager interpreter, the Tier-0 VM, the
// optimized VM and the auto-optimized pipeline, comparing all outputs.
// Any divergence, config disagreement, generator-produced compile error
// or uncontained crash is a finding: it is minimized with the greedy
// delta-debugger and written to the reproducer corpus.
//
// Usage:
//   sdfg-fuzz [--seeds A..B | --seeds N] [--corpus DIR] [--quiet]
//             [--print SEED] [--selftest]
//
// Exit codes: 0 = all seeds clean, 1 = findings, 64 = usage error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <sys/stat.h>

#include "testing/fuzzgen.hpp"

namespace {

void usage(FILE* to) {
  std::fprintf(to,
               "usage: sdfg-fuzz [--seeds A..B | --seeds N] [--corpus DIR]\n"
               "                 [--quiet] [--print SEED] [--selftest]\n"
               "\n"
               "  --seeds A..B  run seeds A through B inclusive (default "
               "0..100)\n"
               "  --seeds N     shorthand for 0..N\n"
               "  --corpus DIR  write minimized reproducers to DIR (default "
               "fuzz-corpus)\n"
               "  --print SEED  print the generated program for SEED and "
               "exit\n"
               "  --quiet       only report findings and the final summary\n"
               "  --selftest    deterministic smoke run (small seed range)\n");
}

bool parse_seeds(const std::string& arg, uint64_t* lo, uint64_t* hi) {
  size_t dots = arg.find("..");
  try {
    if (dots == std::string::npos) {
      *lo = 0;
      *hi = std::stoull(arg);
    } else {
      *lo = std::stoull(arg.substr(0, dots));
      *hi = std::stoull(arg.substr(dots + 2));
    }
  } catch (...) {
    return false;
  }
  return *lo <= *hi;
}

void write_reproducer(const std::string& dir, uint64_t seed,
                      const dace::fuzz::DiffResult& finding,
                      const std::string& minimized) {
  ::mkdir(dir.c_str(), 0755);
  std::string path =
      dir + "/seed-" + std::to_string(seed) + "-" +
      dace::fuzz::diff_status_name(finding.status) + ".py";
  std::ofstream os(path);
  os << "# sdfg-fuzz reproducer\n"
     << "# seed: " << seed << "\n"
     << "# status: " << dace::fuzz::diff_status_name(finding.status) << "\n"
     << "# detail: " << finding.detail << "\n"
     << minimized;
  std::fprintf(stderr, "  reproducer written to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t lo = 0, hi = 100;
  std::string corpus = "fuzz-corpus";
  bool quiet = false;
  bool have_print = false;
  uint64_t print_seed = 0;

  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--help" || a == "-h") {
      usage(stdout);
      return 0;
    } else if (a == "--seeds" && i + 1 < argc) {
      if (!parse_seeds(argv[++i], &lo, &hi)) {
        std::fprintf(stderr, "sdfg-fuzz: bad --seeds range '%s'\n", argv[i]);
        return 64;
      }
    } else if (a == "--corpus" && i + 1 < argc) {
      corpus = argv[++i];
    } else if (a == "--print" && i + 1 < argc) {
      have_print = true;
      try {
        print_seed = std::stoull(argv[++i]);
      } catch (...) {
        std::fprintf(stderr, "sdfg-fuzz: bad --print seed '%s'\n", argv[i]);
        return 64;
      }
    } else if (a == "--quiet") {
      quiet = true;
    } else if (a == "--selftest") {
      lo = 0;
      hi = 40;
      quiet = true;
    } else {
      std::fprintf(stderr, "sdfg-fuzz: unknown argument '%s'\n", a.c_str());
      usage(stderr);
      return 64;
    }
  }

  if (have_print) {
    std::fputs(dace::fuzz::generate_program(print_seed).c_str(), stdout);
    return 0;
  }

  uint64_t findings = 0, ran = 0;
  for (uint64_t seed = lo; seed <= hi; ++seed, ++ran) {
    std::string program = dace::fuzz::generate_program(seed);
    dace::fuzz::DiffResult r = dace::fuzz::run_differential(program, seed);
    if (!r.failed()) {
      if (!quiet) std::fprintf(stderr, "seed %llu: ok\n",
                               (unsigned long long)seed);
      continue;
    }
    ++findings;
    std::fprintf(stderr, "seed %llu: %s -- %s\n", (unsigned long long)seed,
                 dace::fuzz::diff_status_name(r.status), r.detail.c_str());
    // Shrink to the smallest program that still fails the same way.
    dace::fuzz::DiffStatus want = r.status;
    std::string minimized = dace::fuzz::minimize(
        program, [&](const std::string& candidate) {
          dace::fuzz::DiffResult c =
              dace::fuzz::run_differential(candidate, seed);
          return c.status == want;
        });
    write_reproducer(corpus, seed, r, minimized);
  }

  std::fprintf(stderr, "sdfg-fuzz: %llu seeds, %llu finding%s\n",
               (unsigned long long)ran, (unsigned long long)findings,
               findings == 1 ? "" : "s");
  return findings ? 1 : 0;
}
