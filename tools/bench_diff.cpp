// bench-diff: compare two benchmark JSON reports and flag regressions.
//
// The bench binaries (bench/bench_common.hpp) write flat JSON reports at
// exit -- {"fig7.matmul.jit_t1": 1234.5, ...} -- with median nanoseconds
// (or dimensionless ratios for *.ref_ratio keys).  This tool diffs two
// such reports over their common keys:
//
//   bench-diff OLD.json NEW.json            full table, exit 1 on any
//                                           regression > threshold
//   bench-diff --threshold 0.10 OLD NEW     custom threshold (default 0.15)
//   bench-diff --gate OLD NEW               CI gate: advisory (always exit
//                                           0) unless DACE_PERF_STRICT=1,
//                                           because absolute ns baselines
//                                           are machine-dependent
//   bench-diff --latest DIR                 trajectory mode: find the two
//                                           highest-numbered BENCH_<n>.json
//                                           in DIR and diff them (oldest
//                                           of the pair as baseline)
//   bench-diff --selftest                   synthetic-data self check
//
// A key regresses when new > old * (1 + threshold); it improves when
// new < old * (1 - threshold).  Keys present in only one report are
// listed but never gate.  Exit codes: 0 ok, 1 regressions found (unless
// --gate without DACE_PERF_STRICT=1), 2 usage or unreadable input.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Flat-report parsing: a single JSON object mapping string keys to
// numbers.  Anything else (nesting, arrays, non-numeric values) is a
// parse error -- the bench reports never contain them.
// ---------------------------------------------------------------------------

struct ParseError {
  std::string msg;
};

class FlatParser {
 public:
  explicit FlatParser(const std::string& s) : s_(s) {}

  std::map<std::string, double> parse() {
    std::map<std::string, double> out;
    ws();
    expect('{');
    ws();
    if (peek() == '}') {
      ++pos_;
      return out;
    }
    while (true) {
      ws();
      std::string key = string();
      ws();
      expect(':');
      ws();
      out[key] = number();
      ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      ws();
      if (pos_ != s_.size()) fail("trailing characters after document");
      return out;
    }
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& msg) {
    throw ParseError{msg + " at offset " + std::to_string(pos_)};
  }

  void ws() {
    while (pos_ < s_.size() && std::isspace((unsigned char)s_[pos_])) ++pos_;
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("unterminated escape");
        char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: fail("unsupported escape in key");
        }
      } else {
        out += c;
      }
    }
  }

  double number() {
    size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit((unsigned char)s_[pos_]) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' ||
            s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a number");
    try {
      return std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      fail("bad number");
    }
  }
};

// ---------------------------------------------------------------------------
// Diffing
// ---------------------------------------------------------------------------

struct Row {
  std::string name;
  double old_v = 0, new_v = 0;
  double ratio = 0;  // new / old
};

struct Diff {
  std::vector<Row> regressions;   // ratio > 1 + threshold, worst first
  std::vector<Row> improvements;  // ratio < 1 - threshold, best first
  std::vector<Row> stable;        // within threshold
  std::vector<std::string> only_old, only_new;
};

Diff diff_reports(const std::map<std::string, double>& oldr,
                  const std::map<std::string, double>& newr,
                  double threshold) {
  Diff d;
  for (const auto& [k, ov] : oldr) {
    auto it = newr.find(k);
    if (it == newr.end()) {
      d.only_old.push_back(k);
      continue;
    }
    Row row{k, ov, it->second, ov > 0 ? it->second / ov : 1.0};
    if (row.ratio > 1.0 + threshold) {
      d.regressions.push_back(row);
    } else if (row.ratio < 1.0 - threshold) {
      d.improvements.push_back(row);
    } else {
      d.stable.push_back(row);
    }
  }
  for (const auto& [k, nv] : newr) {
    (void)nv;
    if (!oldr.count(k)) d.only_new.push_back(k);
  }
  std::sort(d.regressions.begin(), d.regressions.end(),
            [](const Row& a, const Row& b) { return a.ratio > b.ratio; });
  std::sort(d.improvements.begin(), d.improvements.end(),
            [](const Row& a, const Row& b) { return a.ratio < b.ratio; });
  return d;
}

void print_rows(const char* title, const std::vector<Row>& rows) {
  if (rows.empty()) return;
  std::printf("%s:\n", title);
  for (const Row& r : rows) {
    std::printf("  %-40s %14.1f -> %14.1f  (%+.1f%%)\n", r.name.c_str(),
                r.old_v, r.new_v, (r.ratio - 1.0) * 100.0);
  }
}

std::map<std::string, double> load(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) throw ParseError{"cannot open '" + path + "'"};
  std::ostringstream ss;
  ss << f.rdbuf();
  std::string text = ss.str();
  return FlatParser(text).parse();
}

// ---------------------------------------------------------------------------
// Trajectory mode: the bench binaries write successive BENCH_<n>.json
// snapshots at the repo root (one per PR); --latest DIR diffs the two
// most recent by number, so CI never has to name files explicitly.
// ---------------------------------------------------------------------------

/// Parse "BENCH_<n>.json" -> n, or -1 when the name doesn't match.
int bench_number(const std::string& name) {
  const char* prefix = "BENCH_";
  const char* suffix = ".json";
  if (name.rfind(prefix, 0) != 0) return -1;
  size_t dot = name.size() - std::strlen(suffix);
  if (name.size() <= std::strlen(prefix) + std::strlen(suffix) ||
      name.compare(dot, std::string::npos, suffix) != 0)
    return -1;
  int n = 0;
  for (size_t i = std::strlen(prefix); i < dot; ++i) {
    if (!std::isdigit((unsigned char)name[i])) return -1;
    n = n * 10 + (name[i] - '0');
  }
  return n;
}

/// The two highest-numbered trajectory files among `names`, as
/// {older, newer}; empty strings when fewer than two exist.
std::pair<std::string, std::string> latest_two(
    const std::vector<std::string>& names) {
  int best = -1, second = -1;
  std::string best_name, second_name;
  for (const std::string& n : names) {
    int v = bench_number(n);
    if (v < 0) continue;
    if (v > best) {
      second = best;
      second_name = best_name;
      best = v;
      best_name = n;
    } else if (v > second) {
      second = v;
      second_name = n;
    }
  }
  if (second < 0) return {"", ""};
  return {second_name, best_name};
}

// ---------------------------------------------------------------------------
// Selftest
// ---------------------------------------------------------------------------

int selftest() {
  // Parser: round-trip the exact format bench_common.hpp writes.
  const char* report =
      "{\n  \"fig7.matmul.jit_t1\": 1000.0,\n"
      "  \"fig7.matmul.ref_ratio\": 1.4,\n"
      "  \"micro.BM_TensorAdd/1024\": 250.5\n}\n";
  auto parsed = FlatParser(std::string(report)).parse();
  if (parsed.size() != 3 || parsed.at("fig7.matmul.jit_t1") != 1000.0 ||
      parsed.at("micro.BM_TensorAdd/1024") != 250.5) {
    std::fprintf(stderr, "bench-diff selftest: parser mismatch\n");
    return 1;
  }
  bool syntax = false;
  try {
    FlatParser(std::string("{\"a\": }")).parse();
  } catch (const ParseError&) {
    syntax = true;
  }
  if (!syntax) {
    std::fprintf(stderr, "bench-diff selftest: bad JSON not rejected\n");
    return 1;
  }

  // Diff semantics at the default 15% threshold: +20% regresses, -30%
  // improves, +15% exactly is stable (strict inequality), disjoint keys
  // never gate.
  std::map<std::string, double> oldr = {{"a", 1000.0},
                                        {"b", 1000.0},
                                        {"c", 1000.0},
                                        {"gone", 5.0}};
  std::map<std::string, double> newr = {{"a", 1200.0},
                                        {"b", 700.0},
                                        {"c", 1150.0},
                                        {"fresh", 7.0}};
  Diff d = diff_reports(oldr, newr, 0.15);
  if (d.regressions.size() != 1 || d.regressions[0].name != "a" ||
      d.improvements.size() != 1 || d.improvements[0].name != "b" ||
      d.stable.size() != 1 || d.stable[0].name != "c" ||
      d.only_old != std::vector<std::string>{"gone"} ||
      d.only_new != std::vector<std::string>{"fresh"}) {
    std::fprintf(stderr, "bench-diff selftest: diff classification wrong\n");
    return 1;
  }
  // Tighter threshold flips the stable row into a regression.
  Diff d2 = diff_reports(oldr, newr, 0.10);
  if (d2.regressions.size() != 2) {
    std::fprintf(stderr, "bench-diff selftest: threshold not applied\n");
    return 1;
  }
  // Worst regression sorts first.
  std::map<std::string, double> worse = {{"x", 100.0}, {"y", 100.0}};
  std::map<std::string, double> after = {{"x", 150.0}, {"y", 300.0}};
  Diff d3 = diff_reports(worse, after, 0.15);
  if (d3.regressions.size() != 2 || d3.regressions[0].name != "y") {
    std::fprintf(stderr, "bench-diff selftest: regression sort wrong\n");
    return 1;
  }
  // Trajectory-file selection: numeric order, not lexicographic (10 > 9),
  // non-matching names ignored, fewer than two files -> empty pair.
  auto pick = latest_two({"BENCH_8.json", "BENCH_10.json", "BENCH_9.json",
                          "perf_baseline.json", "BENCH_x.json", "notes.md"});
  if (pick.first != "BENCH_9.json" || pick.second != "BENCH_10.json") {
    std::fprintf(stderr, "bench-diff selftest: latest_two pick wrong\n");
    return 1;
  }
  if (!latest_two({"BENCH_3.json"}).first.empty() ||
      !latest_two({}).second.empty()) {
    std::fprintf(stderr, "bench-diff selftest: latest_two underflow wrong\n");
    return 1;
  }
  if (bench_number("BENCH_12.json") != 12 || bench_number("BENCH_.json") != -1 ||
      bench_number("BENCH_1.json.bak") != -1) {
    std::fprintf(stderr, "bench-diff selftest: bench_number wrong\n");
    return 1;
  }
  std::printf("bench-diff selftest OK\n");
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: bench-diff [--threshold FRAC] [--gate] OLD.json "
               "NEW.json\n"
               "       bench-diff [--threshold FRAC] [--gate] --latest DIR\n"
               "       bench-diff --selftest\n"
               "Diffs two flat benchmark reports ({\"name\": median_ns}).\n"
               "Exits 1 when any common key regresses by more than FRAC\n"
               "(default 0.15); --gate makes that advisory (exit 0) unless\n"
               "DACE_PERF_STRICT=1.\n");
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.15;
  bool gate = false;
  std::string latest_dir;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--selftest") return selftest();
    if (a == "--gate") {
      gate = true;
    } else if (a == "--latest") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      latest_dir = argv[++i];
    } else if (a == "--threshold") {
      if (i + 1 >= argc) {
        usage();
        return 2;
      }
      threshold = std::atof(argv[++i]);
    } else if (a == "--help" || a == "-h") {
      usage();
      return 0;
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "bench-diff: unknown option %s\n", a.c_str());
      usage();
      return 2;
    } else {
      paths.push_back(a);
    }
  }
  if (!latest_dir.empty()) {
    if (!paths.empty()) {
      usage();
      return 2;
    }
    std::vector<std::string> names;
    std::error_code ec;
    for (const auto& e :
         std::filesystem::directory_iterator(latest_dir, ec)) {
      names.push_back(e.path().filename().string());
    }
    if (ec) {
      std::fprintf(stderr, "bench-diff: cannot list '%s': %s\n",
                   latest_dir.c_str(), ec.message().c_str());
      return 2;
    }
    auto [older, newer] = latest_two(names);
    if (older.empty()) {
      std::fprintf(stderr,
                   "bench-diff: fewer than two BENCH_<n>.json files in "
                   "'%s'\n",
                   latest_dir.c_str());
      return 2;
    }
    paths = {latest_dir + "/" + older, latest_dir + "/" + newer};
    std::printf("bench-diff: trajectory %s -> %s\n", older.c_str(),
                newer.c_str());
  }
  if (paths.size() != 2) {
    usage();
    return 2;
  }

  std::map<std::string, double> oldr, newr;
  try {
    oldr = load(paths[0]);
    newr = load(paths[1]);
  } catch (const ParseError& e) {
    std::fprintf(stderr, "bench-diff: %s\n", e.msg.c_str());
    return 2;
  }

  Diff d = diff_reports(oldr, newr, threshold);
  std::printf("bench-diff: %zu common keys (%zu old-only, %zu new-only), "
              "threshold %.0f%%\n",
              d.regressions.size() + d.improvements.size() + d.stable.size(),
              d.only_old.size(), d.only_new.size(), threshold * 100.0);
  print_rows("regressions", d.regressions);
  print_rows("improvements", d.improvements);
  print_rows("stable", d.stable);
  for (const auto& k : d.only_old)
    std::printf("  %-40s (only in %s)\n", k.c_str(), paths[0].c_str());
  for (const auto& k : d.only_new)
    std::printf("  %-40s (only in %s)\n", k.c_str(), paths[1].c_str());

  if (d.regressions.empty()) return 0;
  const char* strict = std::getenv("DACE_PERF_STRICT");
  bool enforce = !gate || (strict && std::strcmp(strict, "1") == 0);
  std::fprintf(stderr, "bench-diff: %zu regression(s) beyond %.0f%%%s\n",
               d.regressions.size(), threshold * 100.0,
               enforce ? "" : " (advisory: --gate without DACE_PERF_STRICT)");
  return enforce ? 1 : 0;
}
