// sdfg-cache: inspect and maintain the persistent JIT artifact cache
// (src/codegen/artifact_cache.*).
//
// Usage:
//   sdfg-cache [--dir PATH] [--json] ls        list artifacts + negative entries
//   sdfg-cache [--dir PATH] [--json] stat      one-line store summary
//   sdfg-cache [--dir PATH] [--json] verify    checksum-verify every entry
//   sdfg-cache [--dir PATH] evict [MB]         LRU-evict to MB (default: budget)
//   sdfg-cache [--dir PATH] purge              drop artifacts, negatives, debris
//   sdfg-cache --selftest
//
// The tool operates on the same store the JIT uses: $DACE_CACHE_DIR (or
// the XDG default), overridable per-invocation with --dir.  `verify`
// re-reads every artifact and checks the versioned header, size and
// FNV-1a checksum -- the same predicate the JIT applies on load -- and
// exits 1 when any entry fails (the entries are left in place; the JIT
// deletes bad entries on sight, this tool only reports).  `purge` also
// collects build-scratch debris left behind by crashed processes, which
// is the recovery path for satellite crash-safety: debris is always
// collectable, never load-bearing.
//
// --selftest exercises the full protocol in a private temp directory
// (commit/lookup round-trip, corrupt-reject, LRU eviction order,
// negative TTL, purge) without touching the user's cache.
//
// Exit codes: 0 = ok, 1 = verify findings / selftest failure,
// 64 = usage error.
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/artifact_cache.hpp"
#include "common/metrics.hpp"

namespace fs = std::filesystem;
using dace::cg::cache::ArtifactCache;
using dace::cg::cache::CacheConfig;
using dace::cg::cache::EntryInfo;

namespace {

int usage() {
  std::cerr << "usage: sdfg-cache [--dir PATH] [--json] "
               "ls|stat|verify|evict [MB]|purge\n"
               "       sdfg-cache --selftest\n";
  return 64;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

std::string human_bytes(int64_t n) {
  char buf[32];
  if (n >= (1 << 20)) {
    snprintf(buf, sizeof(buf), "%.1fM", double(n) / (1 << 20));
  } else if (n >= (1 << 10)) {
    snprintf(buf, sizeof(buf), "%.1fK", double(n) / (1 << 10));
  } else {
    snprintf(buf, sizeof(buf), "%lldB", (long long)n);
  }
  return buf;
}

void render_entry_json(std::ostream& os, const EntryInfo& e) {
  char ph[24];
  snprintf(ph, sizeof(ph), "%016llx", (unsigned long long)e.program_hash);
  os << "{\"key\":\"" << e.key << "\",\"program\":\"" << ph
     << "\",\"compiler\":\"" << json_escape(e.compiler) << "\",\"flags\":\""
     << json_escape(e.flags) << "\",\"dtypes\":\"" << json_escape(e.dtypes)
     << "\",\"size\":" << e.size << ",\"created\":" << e.created
     << ",\"last_used\":" << e.last_used
     << ",\"valid\":" << (e.valid ? "true" : "false");
  if (!e.valid) os << ",\"detail\":\"" << json_escape(e.detail) << "\"";
  os << "}";
}

int cmd_ls(ArtifactCache& cache, bool json, bool verify) {
  std::vector<EntryInfo> entries = cache.list(verify);
  auto negatives = cache.list_negative();
  int invalid = 0;
  for (const auto& e : entries) invalid += e.valid ? 0 : 1;
  if (json) {
    std::ostringstream os;
    os << "{\"dir\":\"" << json_escape(cache.dir()) << "\",\"entries\":[";
    for (size_t i = 0; i < entries.size(); ++i) {
      if (i) os << ",";
      render_entry_json(os, entries[i]);
    }
    os << "],\"negative\":[";
    for (size_t i = 0; i < negatives.size(); ++i) {
      const auto& n = negatives[i];
      if (i) os << ",";
      os << "{\"key\":\"" << n.key << "\",\"compiler\":\""
         << json_escape(n.compiler) << "\",\"age_s\":" << n.age_s
         << ",\"expired\":" << (n.expired ? "true" : "false")
         << ",\"detail\":\"" << json_escape(n.detail) << "\"}";
    }
    os << "],\"total_bytes\":" << cache.total_bytes()
       << ",\"invalid\":" << invalid << "}";
    std::cout << os.str() << "\n";
  } else {
    std::cout << "cache dir: " << cache.dir() << "\n";
    if (entries.empty()) {
      std::cout << "(no artifacts)\n";
    } else {
      printf("%-16s  %8s  %-8s  %-30s  %s\n", "KEY", "SIZE", "COMPILER",
             "FLAGS", verify ? "VERIFY" : "DTYPES");
      for (const auto& e : entries) {
        printf("%-16s  %8s  %-8s  %-30s  %s\n", e.key.c_str(),
               human_bytes(e.size).c_str(), e.compiler.c_str(),
               e.flags.c_str(),
               verify ? (e.valid ? "ok" : ("BAD: " + e.detail).c_str())
                      : e.dtypes.c_str());
      }
    }
    if (!negatives.empty()) {
      std::cout << "negative entries (known-bad builds):\n";
      for (const auto& n : negatives) {
        printf("  %-16s  %-8s  age %llds%s  %s\n", n.key.c_str(),
               n.compiler.c_str(), (long long)n.age_s,
               n.expired ? " (expired)" : "", n.detail.c_str());
      }
    }
    std::cout << entries.size() << " artifact(s), "
              << human_bytes(cache.total_bytes()).c_str() << " total";
    if (verify && invalid) std::cout << ", " << invalid << " INVALID";
    std::cout << "\n";
  }
  return (verify && invalid) ? 1 : 0;
}

int cmd_stat(ArtifactCache& cache, bool json) {
  auto entries = cache.list(false);
  auto negatives = cache.list_negative();
  auto st = cache.stats();
  if (json) {
    std::cout << "{\"dir\":\"" << json_escape(cache.dir())
              << "\",\"enabled\":" << (cache.enabled() ? "true" : "false")
              << ",\"entries\":" << entries.size()
              << ",\"negative\":" << negatives.size()
              << ",\"total_bytes\":" << cache.total_bytes()
              << ",\"limit_bytes\":" << cache.config().size_limit_bytes
              << ",\"negative_ttl_s\":" << cache.config().negative_ttl_s
              << ",\"lock_timeout_ms\":" << cache.config().lock_timeout_ms
              << ",\"session\":{\"hits\":" << st.hits
              << ",\"misses\":" << st.misses << ",\"commits\":" << st.commits
              << ",\"corrupt_rejected\":" << st.corrupt_rejected
              << ",\"evictions\":" << st.evictions << "}"
              // Live registry counters (common/metrics.hpp): identical to
              // the session block for this process, but keyed by the same
              // names the serve Metrics verb exposes, so scripts can
              // correlate without a trace file.
              << ",\"metrics\":{\"hits\":"
              << dace::metrics::counter("dacepp_cache_hits_total").value()
              << ",\"misses\":"
              << dace::metrics::counter("dacepp_cache_misses_total").value()
              << ",\"evictions\":"
              << dace::metrics::counter("dacepp_cache_evictions_total")
                     .value()
              << "}}\n";
  } else {
    std::cout << "dir:       " << cache.dir() << "\n"
              << "enabled:   " << (cache.enabled() ? "yes" : "no") << "\n"
              << "artifacts: " << entries.size() << " ("
              << human_bytes(cache.total_bytes()) << " of "
              << human_bytes(cache.config().size_limit_bytes) << " budget)\n"
              << "negative:  " << negatives.size() << " (ttl "
              << cache.config().negative_ttl_s << "s)\n";
  }
  return 0;
}

int cmd_evict(ArtifactCache& cache, const char* mb_arg) {
  int64_t target = -1;
  if (mb_arg) target = (int64_t)(std::atof(mb_arg) * (1 << 20));
  int64_t freed = cache.evict(target);
  std::cout << "evicted " << human_bytes(freed) << "; store now "
            << human_bytes(cache.total_bytes()) << "\n";
  return 0;
}

int cmd_purge(ArtifactCache& cache) {
  int stale = cache.collect_stale_build_dirs();
  cache.purge();
  std::cout << "purged (collected " << stale << " stale build dir(s))\n";
  return 0;
}

// ---------------------------------------------------------------------------
// Selftest
// ---------------------------------------------------------------------------

#define ST_CHECK(cond)                                                        \
  do {                                                                        \
    if (!(cond)) {                                                            \
      std::cerr << "selftest FAILED at " << __LINE__ << ": " #cond "\n";      \
      return 1;                                                               \
    }                                                                         \
  } while (0)

std::string write_blob(const fs::path& p, const std::string& bytes) {
  std::ofstream f(p, std::ios::binary);
  f << bytes;
  return p.string();
}

int selftest() {
  char tmpl[] = "/tmp/sdfg-cache-selftest-XXXXXX";
  if (!mkdtemp(tmpl)) {
    std::cerr << "selftest: mkdtemp failed\n";
    return 1;
  }
  fs::path root(tmpl);
  CacheConfig cfg;
  cfg.enabled = true;
  cfg.dir = (root / "cache").string();
  cfg.size_limit_bytes = 1 << 20;
  cfg.negative_ttl_s = 3600;
  cfg.lock_timeout_ms = 1000;
  ArtifactCache cache(cfg);
  ST_CHECK(cache.enabled());

  // Commit / lookup round-trip.
  ArtifactCache::KeyInfo ki;
  ki.program_hash = 0x1234;
  ki.compiler = "c++";
  ki.flags = "-O2";
  ki.dtypes = "float64";
  std::string key = ArtifactCache::key_for("int f(){return 1;}", ki);
  ST_CHECK(key.size() == 16);
  ST_CHECK(cache.lookup(key).empty());  // cold miss
  std::string so = write_blob(root / "a.so", std::string(4096, 'x'));
  std::string committed = cache.commit(key, so, ki);
  ST_CHECK(!committed.empty());
  ST_CHECK(cache.lookup(key) == committed);
  ST_CHECK(cache.list().size() == 1);
  ST_CHECK(cache.list(true)[0].valid);

  // Same source, different flags -> different key.
  ArtifactCache::KeyInfo ki2 = ki;
  ki2.flags = "-O3";
  ST_CHECK(ArtifactCache::key_for("int f(){return 1;}", ki2) != key);

  // Corrupt-reject: flip a committed byte; the next lookup must delete
  // the entry and miss.
  {
    std::fstream f(committed, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(100);
    f.put('!');
  }
  ST_CHECK(cache.lookup(key).empty());
  ST_CHECK(cache.list().empty());
  ST_CHECK(cache.stats().corrupt_rejected >= 1);

  // LRU eviction: three 4K artifacts, budget for ~two; the touched one
  // must survive.
  std::vector<std::string> keys;
  for (int i = 0; i < 3; ++i) {
    ArtifactCache::KeyInfo k = ki;
    k.program_hash = 0x9000 + i;
    std::string kk = ArtifactCache::key_for("src" + std::to_string(i), k);
    std::string blob =
        write_blob(root / ("b" + std::to_string(i) + ".so"),
                   std::string(4096, char('a' + i)));
    ST_CHECK(!cache.commit(kk, blob, k).empty());
    keys.push_back(kk);
  }
  ST_CHECK(cache.lookup(keys[0]).empty() == false);  // touch 0: now MRU
  int64_t freed = cache.evict(2 * 4096 + 1024);
  ST_CHECK(freed > 0);
  ST_CHECK(!cache.lookup(keys[0]).empty());  // recently used: kept
  ST_CHECK(cache.total_bytes() <= 2 * 4096 + 1024);

  // Negative cache: store, hit, and expiry honors the TTL.
  ST_CHECK(!cache.negative_lookup(0xdead, "cc-broken"));
  cache.negative_store(0xdead, "cc-broken", "exit 1");
  ST_CHECK(cache.negative_lookup(0xdead, "cc-broken"));
  ST_CHECK(!cache.negative_lookup(0xdead, "cc-other"));
  ST_CHECK(cache.list_negative().size() == 1);

  // Build scratch: created under the cache, removable, gone after release.
  std::string bd = cache.make_build_dir();
  ST_CHECK(fs::exists(bd));
  cache.release_build_dir(bd);
  ST_CHECK(!fs::exists(bd));

  // Purge leaves an empty, still-functional store.
  cache.purge();
  ST_CHECK(cache.list().empty());
  ST_CHECK(cache.list_negative().empty());
  ST_CHECK(cache.total_bytes() == 0);
  ST_CHECK(!cache.commit(key, write_blob(root / "c.so", "zz"), ki).empty());

  fs::remove_all(root);
  std::cout << "sdfg-cache selftest: all checks passed\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string dir_override;
  std::string cmd;
  const char* cmd_arg = nullptr;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--selftest") return selftest();
    if (a == "--json") {
      json = true;
    } else if (a == "--dir") {
      if (++i >= argc) return usage();
      dir_override = argv[i];
    } else if (a.rfind("--dir=", 0) == 0) {
      dir_override = a.substr(6);
    } else if (cmd.empty()) {
      cmd = a;
    } else if (!cmd_arg) {
      cmd_arg = argv[i];
    } else {
      return usage();
    }
  }
  if (cmd.empty()) return usage();

  CacheConfig cfg = CacheConfig::from_env();
  cfg.enabled = true;  // the CLI inspects the store even when the JIT opts out
  if (!dir_override.empty()) cfg.dir = dir_override;
  ArtifactCache cache(cfg);
  if (!cache.enabled()) {
    std::cerr << "sdfg-cache: cannot open cache dir " << cfg.dir << "\n";
    return 1;
  }

  if (cmd == "ls") return cmd_ls(cache, json, false);
  if (cmd == "stat") return cmd_stat(cache, json);
  if (cmd == "verify") return cmd_ls(cache, json, true);
  if (cmd == "evict") return cmd_evict(cache, cmd_arg);
  if (cmd == "purge") return cmd_purge(cache);
  return usage();
}
