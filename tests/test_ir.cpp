#include "ir/sdfg.hpp"

#include <gtest/gtest.h>

namespace dace::ir {
namespace {

using sym::Expr;
using sym::Range;
using sym::S;
using sym::Subset;

// Build: out[i] = a[i] * 2 over a map, the canonical single-map state.
std::unique_ptr<SDFG> make_scale_sdfg() {
  auto sdfg = std::make_unique<SDFG>("scale");
  sdfg->add_array("a", DType::f64, {S("N")});
  sdfg->add_array("out", DType::f64, {S("N")});
  sdfg->add_arg("a");
  sdfg->add_arg("out");
  State& st = sdfg->add_state("main", true);
  int na = st.add_access("a");
  int no = st.add_access("out");
  auto [me, mx] = st.add_map("m", {"i"}, Subset({Range(Expr(0), S("N"))}));
  CodeExpr code = CodeExpr::binary(CodeOp::Mul, CodeExpr::input("x"),
                                   CodeExpr::constant(2.0));
  int tl = st.add_tasklet("t", {"x"}, code);
  st.add_edge(na, "", me, "IN_a", Memlet("a", Subset::full({S("N")})));
  st.add_edge(me, "OUT_a", tl, "x",
              Memlet("a", Subset::element({S("i")})));
  st.add_edge(tl, "__out", mx, "IN_out",
              Memlet("out", Subset::element({S("i")})));
  st.add_edge(mx, "OUT_out", no, "",
              Memlet("out", Subset::full({S("N")})));
  return sdfg;
}

TEST(IR, BuildAndValidate) {
  auto sdfg = make_scale_sdfg();
  EXPECT_NO_THROW(sdfg->validate());
  EXPECT_EQ(sdfg->num_states(), 1);
  auto fs = sdfg->free_symbols();
  EXPECT_TRUE(fs.count("N"));
  EXPECT_FALSE(fs.count("i"));  // bound by the map
}

TEST(IR, TopologicalOrder) {
  auto sdfg = make_scale_sdfg();
  const State& st = sdfg->state(0);
  auto order = st.topological_order();
  EXPECT_EQ(order.size(), 5u);
  // access(a) before entry before tasklet before exit before access(out).
  auto pos = [&](int id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(0), pos(2));
  EXPECT_LT(pos(2), pos(4));
  EXPECT_LT(pos(4), pos(3));
  EXPECT_LT(pos(3), pos(1));
}

TEST(IR, ScopeQueries) {
  auto sdfg = make_scale_sdfg();
  const State& st = sdfg->state(0);
  // Node 2 = map entry, 3 = exit, 4 = tasklet.
  auto scope = st.scope_nodes(2);
  EXPECT_EQ(scope.size(), 1u);
  EXPECT_EQ(scope[0], 4);
  EXPECT_EQ(st.scope_of(4), 2);
  EXPECT_EQ(st.scope_of(0), -1);
}

TEST(IR, CycleDetection) {
  SDFG sdfg("cyc");
  sdfg.add_array("a", DType::f64, {Expr(4)});
  State& st = sdfg.add_state("s", true);
  int t1 = st.add_tasklet("t1", {"x"}, CodeExpr::input("x"));
  int t2 = st.add_tasklet("t2", {"x"}, CodeExpr::input("x"));
  st.add_edge(t1, "__out", t2, "x", Memlet("a", Subset::element({Expr(0)})));
  st.add_edge(t2, "__out", t1, "x", Memlet("a", Subset::element({Expr(0)})));
  EXPECT_THROW(st.topological_order(), Error);
}

TEST(IR, ValidationCatchesUnknownContainer) {
  SDFG sdfg("bad");
  State& st = sdfg.add_state("s", true);
  st.add_access("ghost");
  EXPECT_THROW(sdfg.validate(), Error);
}

TEST(IR, ValidationCatchesRankMismatch) {
  SDFG sdfg("bad2");
  sdfg.add_array("a", DType::f64, {S("N"), S("N")});
  State& st = sdfg.add_state("s", true);
  int na = st.add_access("a");
  int tl = st.add_tasklet("t", {"x"}, CodeExpr::input("x"));
  int no = st.add_access("a");
  st.add_edge(na, "", tl, "x", Memlet("a", Subset::element({Expr(0)})));
  st.add_edge(tl, "__out", no, "", Memlet("a", Subset::element({Expr(0)})));
  EXPECT_THROW(sdfg.validate(), Error);
}

TEST(IR, ValidationCatchesUnboundTaskletInput) {
  SDFG sdfg("bad3");
  sdfg.add_array("a", DType::f64, {Expr(4)});
  State& st = sdfg.add_state("s", true);
  int tl = st.add_tasklet("t", {"x"}, CodeExpr::input("x"));
  int no = st.add_access("a");
  st.add_edge(tl, "__out", no, "", Memlet("a", Subset::element({Expr(0)})));
  EXPECT_THROW(sdfg.validate(), Error);
}

TEST(IR, CloneIsDeep) {
  auto sdfg = make_scale_sdfg();
  auto copy = sdfg->clone();
  copy->state(0).node_as<Tasklet>(4)->name = "renamed";
  EXPECT_EQ(sdfg->state(0).node_as<Tasklet>(4)->name, "t");
  EXPECT_EQ(copy->state(0).node_as<Tasklet>(4)->name, "renamed");
  EXPECT_NO_THROW(copy->validate());
}

TEST(IR, InterstateEdgesAndStateOrder) {
  SDFG sdfg("cfg");
  sdfg.add_state("a", true);
  sdfg.add_state("b");
  sdfg.add_state("c");
  sdfg.add_interstate_edge(0, 1);
  sdfg.add_interstate_edge(1, 2, CodeExpr::binary(CodeOp::Lt,
                                                  CodeExpr::symbol("i"),
                                                  CodeExpr::constant(5)));
  auto order = sdfg.state_order();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(sdfg.free_symbols().count("i"));
}

TEST(IR, AddStateBetweenRedirects) {
  SDFG sdfg("mid");
  sdfg.add_state("a", true);
  sdfg.add_state("b");
  sdfg.add_interstate_edge(0, 1);
  sdfg.add_state_between(0, 1, "mid");
  auto order = sdfg.state_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 1);
}

TEST(IR, AccessSets) {
  auto sdfg = make_scale_sdfg();
  auto sets = sdfg->state(0).access_sets();
  EXPECT_TRUE(sets.reads.count("a"));
  EXPECT_TRUE(sets.writes.count("out"));
  EXPECT_FALSE(sets.writes.count("a"));
}

TEST(IR, RenameArray) {
  auto sdfg = make_scale_sdfg();
  sdfg->rename_array("a", "input");
  EXPECT_TRUE(sdfg->has_array("input"));
  EXPECT_FALSE(sdfg->has_array("a"));
  EXPECT_NO_THROW(sdfg->validate());
  EXPECT_EQ(sdfg->arg_names()[0], "input");
}

TEST(IR, DumpAndDotAreStable) {
  auto sdfg = make_scale_sdfg();
  std::string d1 = sdfg->dump();
  std::string d2 = sdfg->clone()->dump();
  EXPECT_EQ(d1, d2);
  EXPECT_NE(d1.find("map_entry"), std::string::npos);
  std::string dot = sdfg->to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(IR, UniqueNames) {
  SDFG sdfg("names");
  auto& d1 = sdfg.add_temp("tmp", DType::f64, {Expr(4)});
  auto& d2 = sdfg.add_temp("tmp", DType::f64, {Expr(4)});
  EXPECT_NE(d1.name, d2.name);
}

TEST(IR, PersistentLifetimeAndStorageInDump) {
  SDFG sdfg("attrs");
  auto& d = sdfg.add_array("buf", DType::f32, {S("N")}, true);
  d.lifetime = Lifetime::Persistent;
  d.storage = Storage::GPUGlobal;
  sdfg.add_state("s", true);
  std::string dump = sdfg.dump();
  EXPECT_NE(dump.find("persistent"), std::string::npos);
  EXPECT_NE(dump.find("GPU_Global"), std::string::npos);
}

}  // namespace
}  // namespace dace::ir
