#include "ir/sdfg.hpp"

#include <gtest/gtest.h>

#include "common/diag.hpp"

namespace dace::ir {
namespace {

using sym::Expr;
using sym::Range;
using sym::S;
using sym::Subset;

// Build: out[i] = a[i] * 2 over a map, the canonical single-map state.
std::unique_ptr<SDFG> make_scale_sdfg() {
  auto sdfg = std::make_unique<SDFG>("scale");
  sdfg->add_array("a", DType::f64, {S("N")});
  sdfg->add_array("out", DType::f64, {S("N")});
  sdfg->add_arg("a");
  sdfg->add_arg("out");
  State& st = sdfg->add_state("main", true);
  int na = st.add_access("a");
  int no = st.add_access("out");
  auto [me, mx] = st.add_map("m", {"i"}, Subset({Range(Expr(0), S("N"))}));
  CodeExpr code = CodeExpr::binary(CodeOp::Mul, CodeExpr::input("x"),
                                   CodeExpr::constant(2.0));
  int tl = st.add_tasklet("t", {"x"}, code);
  st.add_edge(na, "", me, "IN_a", Memlet("a", Subset::full({S("N")})));
  st.add_edge(me, "OUT_a", tl, "x",
              Memlet("a", Subset::element({S("i")})));
  st.add_edge(tl, "__out", mx, "IN_out",
              Memlet("out", Subset::element({S("i")})));
  st.add_edge(mx, "OUT_out", no, "",
              Memlet("out", Subset::full({S("N")})));
  return sdfg;
}

TEST(IR, BuildAndValidate) {
  auto sdfg = make_scale_sdfg();
  EXPECT_NO_THROW(sdfg->validate());
  EXPECT_EQ(sdfg->num_states(), 1);
  auto fs = sdfg->free_symbols();
  EXPECT_TRUE(fs.count("N"));
  EXPECT_FALSE(fs.count("i"));  // bound by the map
}

TEST(IR, TopologicalOrder) {
  auto sdfg = make_scale_sdfg();
  const State& st = sdfg->state(0);
  auto order = st.topological_order();
  EXPECT_EQ(order.size(), 5u);
  // access(a) before entry before tasklet before exit before access(out).
  auto pos = [&](int id) {
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(pos(0), pos(2));
  EXPECT_LT(pos(2), pos(4));
  EXPECT_LT(pos(4), pos(3));
  EXPECT_LT(pos(3), pos(1));
}

TEST(IR, ScopeQueries) {
  auto sdfg = make_scale_sdfg();
  const State& st = sdfg->state(0);
  // Node 2 = map entry, 3 = exit, 4 = tasklet.
  auto scope = st.scope_nodes(2);
  EXPECT_EQ(scope.size(), 1u);
  EXPECT_EQ(scope[0], 4);
  EXPECT_EQ(st.scope_of(4), 2);
  EXPECT_EQ(st.scope_of(0), -1);
}

TEST(IR, CycleDetection) {
  SDFG sdfg("cyc");
  sdfg.add_array("a", DType::f64, {Expr(4)});
  State& st = sdfg.add_state("s", true);
  int t1 = st.add_tasklet("t1", {"x"}, CodeExpr::input("x"));
  int t2 = st.add_tasklet("t2", {"x"}, CodeExpr::input("x"));
  st.add_edge(t1, "__out", t2, "x", Memlet("a", Subset::element({Expr(0)})));
  st.add_edge(t2, "__out", t1, "x", Memlet("a", Subset::element({Expr(0)})));
  EXPECT_THROW(st.topological_order(), Error);
}

TEST(IR, ValidationCatchesUnknownContainer) {
  SDFG sdfg("bad");
  State& st = sdfg.add_state("s", true);
  st.add_access("ghost");
  EXPECT_THROW(sdfg.validate(), Error);
}

TEST(IR, ValidationCatchesRankMismatch) {
  SDFG sdfg("bad2");
  sdfg.add_array("a", DType::f64, {S("N"), S("N")});
  State& st = sdfg.add_state("s", true);
  int na = st.add_access("a");
  int tl = st.add_tasklet("t", {"x"}, CodeExpr::input("x"));
  int no = st.add_access("a");
  st.add_edge(na, "", tl, "x", Memlet("a", Subset::element({Expr(0)})));
  st.add_edge(tl, "__out", no, "", Memlet("a", Subset::element({Expr(0)})));
  EXPECT_THROW(sdfg.validate(), Error);
}

TEST(IR, ValidationCatchesUnboundTaskletInput) {
  SDFG sdfg("bad3");
  sdfg.add_array("a", DType::f64, {Expr(4)});
  State& st = sdfg.add_state("s", true);
  int tl = st.add_tasklet("t", {"x"}, CodeExpr::input("x"));
  int no = st.add_access("a");
  st.add_edge(tl, "__out", no, "", Memlet("a", Subset::element({Expr(0)})));
  EXPECT_THROW(sdfg.validate(), Error);
}

TEST(IR, CloneIsDeep) {
  auto sdfg = make_scale_sdfg();
  auto copy = sdfg->clone();
  copy->state(0).node_as<Tasklet>(4)->name = "renamed";
  EXPECT_EQ(sdfg->state(0).node_as<Tasklet>(4)->name, "t");
  EXPECT_EQ(copy->state(0).node_as<Tasklet>(4)->name, "renamed");
  EXPECT_NO_THROW(copy->validate());
}

TEST(IR, InterstateEdgesAndStateOrder) {
  SDFG sdfg("cfg");
  sdfg.add_state("a", true);
  sdfg.add_state("b");
  sdfg.add_state("c");
  sdfg.add_interstate_edge(0, 1);
  sdfg.add_interstate_edge(1, 2, CodeExpr::binary(CodeOp::Lt,
                                                  CodeExpr::symbol("i"),
                                                  CodeExpr::constant(5)));
  auto order = sdfg.state_order();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(sdfg.free_symbols().count("i"));
}

TEST(IR, AddStateBetweenRedirects) {
  SDFG sdfg("mid");
  sdfg.add_state("a", true);
  sdfg.add_state("b");
  sdfg.add_interstate_edge(0, 1);
  sdfg.add_state_between(0, 1, "mid");
  auto order = sdfg.state_order();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 2);
  EXPECT_EQ(order[2], 1);
}

TEST(IR, AccessSets) {
  auto sdfg = make_scale_sdfg();
  auto sets = sdfg->state(0).access_sets();
  EXPECT_TRUE(sets.reads.count("a"));
  EXPECT_TRUE(sets.writes.count("out"));
  EXPECT_FALSE(sets.writes.count("a"));
}

TEST(IR, RenameArray) {
  auto sdfg = make_scale_sdfg();
  sdfg->rename_array("a", "input");
  EXPECT_TRUE(sdfg->has_array("input"));
  EXPECT_FALSE(sdfg->has_array("a"));
  EXPECT_NO_THROW(sdfg->validate());
  EXPECT_EQ(sdfg->arg_names()[0], "input");
}

TEST(IR, DumpAndDotAreStable) {
  auto sdfg = make_scale_sdfg();
  std::string d1 = sdfg->dump();
  std::string d2 = sdfg->clone()->dump();
  EXPECT_EQ(d1, d2);
  EXPECT_NE(d1.find("map_entry"), std::string::npos);
  std::string dot = sdfg->to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
}

TEST(IR, UniqueNames) {
  SDFG sdfg("names");
  auto& d1 = sdfg.add_temp("tmp", DType::f64, {Expr(4)});
  auto& d2 = sdfg.add_temp("tmp", DType::f64, {Expr(4)});
  EXPECT_NE(d1.name, d2.name);
}

TEST(IR, PersistentLifetimeAndStorageInDump) {
  SDFG sdfg("attrs");
  auto& d = sdfg.add_array("buf", DType::f32, {S("N")}, true);
  d.lifetime = Lifetime::Persistent;
  d.storage = Storage::GPUGlobal;
  sdfg.add_state("s", true);
  std::string dump = sdfg.dump();
  EXPECT_NE(dump.find("persistent"), std::string::npos);
  EXPECT_NE(dump.find("GPU_Global"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Hardened loader: malformed serializations yield located E4xx
// diagnostics -- never an abort, never an unlocated throw.

/// Assert load_sdfg rejects `text` with the given code and a real
/// location, through both the throwing and the sink-based entry points.
void expect_load_error(const std::string& text, const std::string& code) {
  try {
    load_sdfg(text);
    FAIL() << "expected " << code << " for: " << text.substr(0, 60);
  } catch (const diag::DiagError& e) {
    EXPECT_EQ(e.diagnostic().code, code) << e.what();
    EXPECT_GT(e.diagnostic().line, 0);
    EXPECT_GT(e.diagnostic().col, 0);
    EXPECT_NE(std::string(e.what()).find("[" + code + "]"),
              std::string::npos);
  }
  diag::DiagSink sink;
  EXPECT_EQ(load_sdfg(text, sink), nullptr);
  ASSERT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.diagnostics()[0].code, code);
}

TEST(Serialize, TruncatedInputIsE401) {
  std::string good = make_scale_sdfg()->save();
  expect_load_error(good.substr(0, good.size() - 3), "E401");
  expect_load_error("(sdfg \"unterminated", "E401");
}

TEST(Serialize, WrongTokenIsE402WithLocation) {
  try {
    load_sdfg("(sdfg broken)");
    FAIL();
  } catch (const diag::DiagError& e) {
    EXPECT_EQ(e.diagnostic().code, "E402");
    EXPECT_EQ(e.diagnostic().line, 1);
    EXPECT_EQ(e.diagnostic().col, 7);  // the 'b'
  }
}

TEST(Serialize, OverflowingNumberIsE404) {
  std::string bad = make_scale_sdfg()->save();
  size_t at = bad.find("(c 0)");
  ASSERT_NE(at, std::string::npos);
  bad.replace(at, 5, "(c 99999999999999999999999)");
  expect_load_error(bad, "E404");
}

TEST(Serialize, RunawayNestingIsE404) {
  std::string bomb;
  for (int i = 0; i < 300; ++i) bomb += "(neg ";
  expect_load_error("(sdfg \"x\" (state 0 \"s\" (node 0 (tasklet \"t\" "
                    "\"__out\" (ins) " + bomb,
                    "E404");
}

TEST(Serialize, DuplicateArrayNameIsE405) {
  std::string bad = make_scale_sdfg()->save();
  size_t at = bad.find("(arg \"a\")");
  ASSERT_NE(at, std::string::npos);
  bad.insert(at, "(array \"a\" float64 0 Default Scope 0 0 "
                 "(shape (s \"N\")))\n  ");
  expect_load_error(bad, "E405");
}

TEST(Serialize, DanglingEdgeEndpointIsE406) {
  std::string bad = make_scale_sdfg()->save();
  size_t at = bad.find("(edge 2 ");
  ASSERT_NE(at, std::string::npos);
  bad.replace(at, 8, "(edge 9 ");
  expect_load_error(bad, "E406");
}

TEST(Serialize, DuplicateNodeIdIsE407) {
  std::string bad = make_scale_sdfg()->save();
  size_t at = bad.find("(node 2 ");
  ASSERT_NE(at, std::string::npos);
  bad.replace(at, 8, "(node 1 ");
  expect_load_error(bad, "E407");
}

TEST(Serialize, TrailingInputIsE408) {
  expect_load_error(make_scale_sdfg()->save() + "\n(sdfg \"again\")",
                    "E408");
}

TEST(Serialize, NonexistentStartStateIsE409) {
  std::string bad = make_scale_sdfg()->save();
  size_t at = bad.find("(start 0)");
  ASSERT_NE(at, std::string::npos);
  bad.replace(at, 9, "(start 7)");
  expect_load_error(bad, "E409");
}

TEST(Serialize, GoodGraphStillRoundTrips) {
  auto g = make_scale_sdfg();
  auto reloaded = load_sdfg(g->save());
  EXPECT_EQ(reloaded->dump(), g->dump());
  diag::DiagSink sink;
  auto via_sink = load_sdfg(g->save(), sink);
  ASSERT_NE(via_sink, nullptr);
  EXPECT_TRUE(sink.empty());
  EXPECT_EQ(via_sink->dump(), g->dump());
}

}  // namespace
}  // namespace dace::ir
