// Device-simulator coverage: every kernel flagged for GPU/FPGA must
// produce reference-identical results through the device executors, and
// the device cost models must respect basic monotonicity properties.
#include <gtest/gtest.h>

#include "fpga/fpga_executor.hpp"
#include "frontend/lowering.hpp"
#include "frontend/parser.hpp"
#include "gpu/cupy_like.hpp"
#include "gpu/gpu_executor.hpp"
#include "kernels/suite.hpp"
#include "transforms/auto_optimize.hpp"

namespace dace {
namespace {

using rt::Bindings;

std::vector<std::string> gpu_kernels() {
  std::vector<std::string> out;
  for (const auto& k : kernels::suite()) {
    if (k.gpu) out.push_back(k.name);
  }
  return out;
}

std::vector<std::string> fpga_kernels() {
  std::vector<std::string> out;
  for (const auto& k : kernels::suite()) {
    if (k.fpga) out.push_back(k.name);
  }
  return out;
}

class GpuKernels : public ::testing::TestWithParam<std::string> {};

TEST_P(GpuKernels, SimulatedDeviceMatchesReference) {
  const auto& k = kernels::kernel(GetParam());
  const sym::SymbolMap& sizes = k.presets.at("test");
  Bindings ref = k.init(sizes);
  k.reference(ref, sizes);
  auto sdfg = fe::compile_to_sdfg(k.source);
  xf::auto_optimize(*sdfg, ir::DeviceType::GPU);
  Bindings b = k.init(sizes);
  gpu::GpuRunResult res = gpu::run_gpu(*sdfg, b, sizes);
  for (const auto& o : k.outputs) {
    EXPECT_TRUE(rt::allclose(b.at(o), ref.at(o), 1e-9, 1e-11))
        << k.name << " output " << o;
  }
  EXPECT_GT(res.kernels, 0);
  EXPECT_GT(res.total_s(), 0.0);
}

TEST_P(GpuKernels, CupyBaselineMatchesReference) {
  const auto& k = kernels::kernel(GetParam());
  const sym::SymbolMap& sizes = k.presets.at("test");
  Bindings ref = k.init(sizes);
  k.reference(ref, sizes);
  fe::Module m = fe::parse(k.source);
  Bindings b = k.init(sizes);
  gpu::GpuRunResult res = gpu::run_cupy(m.functions[0], b, sizes);
  for (const auto& o : k.outputs) {
    EXPECT_TRUE(rt::allclose(b.at(o), ref.at(o), 1e-9, 1e-11))
        << k.name << " output " << o;
  }
  EXPECT_GT(res.kernels, 0);
}

INSTANTIATE_TEST_SUITE_P(All, GpuKernels, ::testing::ValuesIn(gpu_kernels()),
                         [](const auto& info) { return info.param; });

class FpgaKernels : public ::testing::TestWithParam<std::string> {};

TEST_P(FpgaKernels, BothShellsMatchReference) {
  const auto& k = kernels::kernel(GetParam());
  const sym::SymbolMap& sizes = k.presets.at("test");
  Bindings ref = k.init(sizes);
  k.reference(ref, sizes);
  auto sdfg = fe::compile_to_sdfg(k.source);
  xf::auto_optimize(*sdfg, ir::DeviceType::FPGA);
  for (const auto& model :
       {fpga::FpgaModel::intel(), fpga::FpgaModel::xilinx()}) {
    Bindings b = k.init(sizes);
    fpga::FpgaRunResult res = fpga::run_fpga(*sdfg, b, sizes, model);
    for (const auto& o : k.outputs) {
      EXPECT_TRUE(rt::allclose(b.at(o), ref.at(o), 1e-9, 1e-11))
          << k.name << " on " << model.name << " output " << o;
    }
    EXPECT_GT(res.units, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(All, FpgaKernels,
                         ::testing::ValuesIn(fpga_kernels()),
                         [](const auto& info) { return info.param; });

// -- cost model properties ---------------------------------------------------

TEST(GpuModel, RooflineMonotonicity) {
  gpu::GpuModel m;
  rt::VMStats small{/*flops=*/1000, /*loads=*/1000, /*stores=*/1000, 0};
  rt::VMStats big{/*flops=*/100000, /*loads=*/100000, /*stores=*/100000, 0};
  EXPECT_LT(m.kernel_time(small), m.kernel_time(big));
  // Atomics add cost on top of the same traffic.
  rt::VMStats wcr = small;
  wcr.wcr_stores = small.stores;
  wcr.stores = 0;
  EXPECT_GT(m.kernel_time(wcr), m.kernel_time(small) - m.launch_latency_s);
}

TEST(GpuModel, LaunchLatencyDominatesTinyKernels) {
  gpu::GpuModel m;
  rt::VMStats tiny{/*flops=*/8, /*loads=*/8, /*stores=*/8, 0};
  EXPECT_NEAR(m.kernel_time(tiny), m.launch_latency_s,
              m.launch_latency_s * 0.1);
}

TEST(FpgaModel, AccumulationInterleavingFlushCost) {
  // Same stats: Xilinx (interleaved accumulation) pays a flush that the
  // hardened Intel accumulator does not.
  rt::VMStats acc{/*flops=*/0, /*loads=*/4096, /*stores=*/0,
                  /*wcr_stores=*/2048};
  auto intel = fpga::FpgaModel::intel();
  auto xilinx = fpga::FpgaModel::xilinx();
  // Normalize the clock difference to isolate the accumulation effect.
  xilinx.clock_hz = intel.clock_hz;
  xilinx.dram_bandwidth = intel.dram_bandwidth;
  xilinx.stencil_reuse = intel.stencil_reuse;
  EXPECT_GT(xilinx.unit_time(acc), intel.unit_time(acc));
}

TEST(FpgaModel, StencilReuseReducesDramTime) {
  // Memory-bound unit: enough loads per store that DRAM dominates the
  // pipeline and the shift-register reuse becomes visible.
  rt::VMStats stencil{/*flops=*/0, /*loads=*/64000000, /*stores=*/1000000,
                      0};
  auto reuse = fpga::FpgaModel::intel();
  auto no_reuse = reuse;
  no_reuse.stencil_reuse = false;
  EXPECT_LT(reuse.unit_time(stencil), no_reuse.unit_time(stencil));
}

}  // namespace
}  // namespace dace
