// Abstract interpretation framework tests: interval domain, the
// environment-aware provers, the symbol-range fixpoint over the state
// machine, stride classification, map facts for codegen, and the A2xx
// lint analyses built on top.
#include "analysis/absint.hpp"

#include <gtest/gtest.h>

#include "codegen/jit.hpp"
#include "frontend/lowering.hpp"
#include "ir/sdfg.hpp"
#include "runtime/executor.hpp"

namespace dace {
namespace {

using analysis::AnalysisReport;
using analysis::Severity;
using namespace analysis::absint;
using ir::CodeExpr;
using ir::CodeOp;
using ir::DType;
using ir::Memlet;
using ir::SDFG;
using ir::State;
using sym::Expr;
using sym::Range;
using sym::S;
using sym::Subset;

// -- provers -----------------------------------------------------------------

TEST(AbsintProver, EnvUnlocksFactoredDifference) {
  // K*d - K >= 0 needs d >= 1; the global ">= 1" convention cannot see
  // the factored form after canonicalization, the interval env can.
  Expr e = S("K") * S("d") - S("K");
  EXPECT_FALSE(proves_nonneg(e, Env{{"d", Interval::top()}}));
  EXPECT_TRUE(proves_nonneg(e, Env{{"d", Interval::at_least(Expr(1))}}));
}

TEST(AbsintProver, UpperBoundDischargesAccess) {
  // i <= N-3  =>  N - i - 2 >= 0 (i.e. A[i+1] fits in shape N-1 terms).
  Env env{{"i", Interval{Expr(0), S("N") - Expr(3)}}};
  EXPECT_TRUE(proves_nonneg(S("N") - S("i") - Expr(2), env));
  EXPECT_FALSE(proves_nonneg(S("N") - S("i") - Expr(4), env));
}

TEST(AbsintProver, AssignedSymbolsDoNotInheritSizeConvention) {
  // j is env-bound with lo 0: "j - 1 >= 0" must NOT be proven via the
  // global convention fallback.
  Env env{{"j", Interval{Expr(0), S("N")}}};
  EXPECT_FALSE(proves_nonneg(S("j") - Expr(1), env));
  EXPECT_TRUE(proves_nonneg(S("j"), env));
}

TEST(AbsintProver, ProveLeIsThreeValued) {
  Env env{{"i", Interval{Expr(0), S("N") - Expr(1)}}};
  EXPECT_EQ(prove_le(S("i"), S("N") - Expr(1), env), std::optional<bool>(true));
  EXPECT_EQ(prove_le(S("N"), S("i"), env), std::optional<bool>(false));
  EXPECT_EQ(prove_le(S("i"), S("M"), env), std::nullopt);
}

// -- interval arithmetic -----------------------------------------------------

TEST(AbsintInterval, EvalAddMul) {
  Env env{{"i", Interval{Expr(2), Expr(5)}}};
  Interval r = eval_interval(S("i") + Expr(3), env);
  ASSERT_TRUE(r.lo && r.hi);
  EXPECT_TRUE(r.lo->equals(Expr(5)));
  EXPECT_TRUE(r.hi->equals(Expr(8)));
  // Constant scaling flips on negative factors.
  r = eval_interval(Expr(-2) * S("i"), env);
  ASSERT_TRUE(r.lo && r.hi);
  EXPECT_TRUE(r.lo->equals(Expr(-10)));
  EXPECT_TRUE(r.hi->equals(Expr(-4)));
}

TEST(AbsintInterval, EvalModAndFloorDiv) {
  Env env;
  Interval r = eval_interval(sym::mod(S("x"), S("N")), env);
  ASSERT_TRUE(r.lo);
  EXPECT_TRUE(r.lo->equals(Expr(0)));
  r = eval_interval(sym::floordiv(S("x"), Expr(2)), env);
  ASSERT_TRUE(r.lo);  // x >= 1 by convention, so x/2 >= 0
  EXPECT_TRUE(r.lo->equals(Expr(0)));
}

TEST(AbsintInterval, JoinAndWiden) {
  Interval a{Expr(0), Expr(0)};
  Interval b{Expr(1), Expr(1)};
  Interval j = join(a, b);
  ASSERT_TRUE(j.lo && j.hi);
  EXPECT_TRUE(j.lo->equals(Expr(0)));
  EXPECT_TRUE(j.hi->equals(Expr(1)));
  Interval w = widen(a, j);
  ASSERT_TRUE(w.lo);
  EXPECT_TRUE(w.lo->equals(Expr(0)));
  EXPECT_FALSE(w.hi.has_value());  // unstable bound dropped
}

// -- symbol ranges over the state machine ------------------------------------

/// i := 0; while (i < N) { body }; i := i + 1  -- the canonical loop the
/// frontend emits for `for i in range(N)`.
std::unique_ptr<SDFG> make_loop_sdfg() {
  auto g = std::make_unique<SDFG>("loop");
  g->add_symbol("N");
  g->add_array("A", DType::f64, {S("N")});
  g->add_arg("A");
  State& init = g->add_state("init", true);
  State& guard = g->add_state("guard");
  State& body = g->add_state("body");
  State& done = g->add_state("done");
  (void)init;
  (void)done;
  int gi = 0, gg = 1, gb = 2, gd = 3;
  CodeExpr cond = CodeExpr::binary(CodeOp::Lt, CodeExpr::symbol("i"),
                                   CodeExpr::symbol("N"));
  CodeExpr ncond = CodeExpr::unary(CodeOp::Not, cond);
  g->add_interstate_edge(gi, gg, CodeExpr(), {{"i", Expr(0)}});
  g->add_interstate_edge(gg, gb, cond);
  g->add_interstate_edge(gb, gg, CodeExpr(), {{"i", S("i") + Expr(1)}});
  g->add_interstate_edge(gg, gd, ncond);
  // Body reads/writes A[i].
  State& b = g->state(gb);
  int ra = b.add_access("A");
  int wa = b.add_access("A");
  int tl = b.add_tasklet("t", {"x"},
                         CodeExpr::input("x") + CodeExpr::constant(1.0));
  b.add_edge(ra, "", tl, "x", Memlet("A", Subset::element({S("i")})));
  b.add_edge(tl, "__out", wa, "", Memlet("A", Subset::element({S("i")})));
  (void)guard;
  (void)body;
  return g;
}

TEST(AbsintRanges, LoopVariableGetsWidenedThenRefined) {
  auto g = make_loop_sdfg();
  SymbolRanges ranges = SymbolRanges::compute(*g);
  // At the body state the guard condition i < N has been applied:
  // i is in [0, N-1].
  const Env& body = ranges.at(2);
  auto it = body.find("i");
  ASSERT_NE(it, body.end());
  ASSERT_TRUE(it->second.lo.has_value());
  EXPECT_TRUE(it->second.lo->equals(Expr(0)));
  ASSERT_TRUE(it->second.hi.has_value());
  EXPECT_TRUE(it->second.hi->equals(S("N") - Expr(1)));
  // The body access A[i] is then provably in range.
  const State& st = g->state(2);
  for (const auto& e : st.edges()) {
    if (e.memlet.empty()) continue;
    Env env = edge_env(st, e, body);
    EXPECT_EQ(subset_in_range(e.memlet.subset, {S("N")}, env),
              Verdict::Proven);
  }
}

TEST(AbsintRanges, ExitStateKnowsTheLoopRanOut) {
  auto g = make_loop_sdfg();
  SymbolRanges ranges = SymbolRanges::compute(*g);
  // After the loop, i >= 0 survives; the unstable upper bound was
  // widened away at the back-edge.
  const Env& done = ranges.at(3);
  auto it = done.find("i");
  ASSERT_NE(it, done.end());
  ASSERT_TRUE(it->second.lo.has_value());
  EXPECT_TRUE(it->second.lo->equals(Expr(0)));
}

TEST(AbsintRanges, ConditionRefinementOnPlainEdge) {
  // One edge guarded by M >= 5 refines the free symbol's interval.
  auto g = std::make_unique<SDFG>("cond");
  g->add_symbol("M");
  g->add_state("a", true);
  g->add_state("b");
  g->add_interstate_edge(0, 1,
                         CodeExpr::binary(CodeOp::Ge, CodeExpr::symbol("M"),
                                          CodeExpr::constant(5.0)));
  SymbolRanges ranges = SymbolRanges::compute(*g);
  EXPECT_TRUE(proves_nonneg(S("M") - Expr(5), ranges.at(1)));
  EXPECT_FALSE(proves_nonneg(S("M") - Expr(5), ranges.at(0)));
}

// -- verdicts ----------------------------------------------------------------

TEST(AbsintVerdicts, InRangeProvenUnknownRefuted) {
  Env env{{"i", Interval{Expr(0), S("N") - Expr(1)}}};
  std::vector<Expr> shape{S("N")};
  EXPECT_EQ(subset_in_range(Subset::element({S("i")}), shape, env),
            Verdict::Proven);
  EXPECT_EQ(subset_in_range(Subset::element({S("i") + Expr(1)}), shape, env),
            Verdict::Unknown);
  EXPECT_EQ(subset_in_range(Subset::element({S("N")}), shape, env),
            Verdict::Refuted);
  EXPECT_EQ(subset_in_range(Subset::element({Expr(-1)}), shape, env),
            Verdict::Refuted);
}

TEST(AbsintVerdicts, DisjointnessViaEnvironment) {
  // [0, K) vs [K*d, K*d + K): separated iff K*d - K >= 0, i.e. d >= 1.
  Subset a({Range(Expr(0), S("K"))});
  Subset b({Range(S("K") * S("d"), S("K") * S("d") + S("K"))});
  Env env{{"d", Interval::at_least(Expr(1))}};
  EXPECT_EQ(proves_disjoint(a, b, env), std::optional<bool>(true));
  EXPECT_EQ(proves_disjoint(a, b, Env{{"d", Interval::top()}}), std::nullopt);
}

// -- stride classification ---------------------------------------------------

TEST(AbsintStride, PerDimensionAndFlat) {
  EXPECT_EQ(stride_of(S("j"), "j").cls, StrideClass::Unit);
  EXPECT_EQ(stride_of(S("j") * Expr(4), "j").cls, StrideClass::Constant);
  EXPECT_EQ(*stride_of(S("j") * Expr(4), "j").stride, 4);
  EXPECT_EQ(stride_of(S("i"), "j").cls, StrideClass::Zero);
  EXPECT_EQ(stride_of(S("j") * S("M"), "j").cls, StrideClass::Affine);
  EXPECT_EQ(stride_of(S("j") * S("j"), "j").cls, StrideClass::Unknown);

  // A[i, j] in row-major (N, M): unit in j, affine (stride M) in i.
  std::vector<Expr> shape{S("N"), S("M")};
  Subset el = Subset::element({S("i"), S("j")});
  EXPECT_EQ(flat_stride(shape, el, "j").cls, StrideClass::Unit);
  EXPECT_EQ(flat_stride(shape, el, "i").cls, StrideClass::Affine);
  // Transposed access A[j, i]: non-unit innermost.
  Subset tr = Subset::element({S("j"), S("i")});
  EXPECT_EQ(flat_stride(shape, tr, "j").cls, StrideClass::Affine);
  // Constant shapes give constant strides.
  std::vector<Expr> cshape{S("N"), Expr(4)};
  EXPECT_EQ(flat_stride(cshape, el, "i").cls, StrideClass::Constant);
  EXPECT_EQ(*flat_stride(cshape, el, "i").stride, 4);
}

// -- map facts ---------------------------------------------------------------

/// One-state SDFG with a map over [0, N) whose tasklet copies
/// A[read] -> B[write].
std::unique_ptr<SDFG> map_copy(const Subset& read, const Subset& write) {
  auto g = std::make_unique<SDFG>("copy");
  g->add_symbol("N");
  g->add_array("A", DType::f64, {S("N")});
  g->add_array("B", DType::f64, {S("N")});
  g->add_arg("A");
  g->add_arg("B");
  State& st = g->add_state("main", true);
  int na = st.add_access("A");
  int nb = st.add_access("B");
  auto [me, mx] = st.add_map("m", {"i"}, Subset({Range(Expr(0), S("N"))}));
  int tl = st.add_tasklet("t", {"x"}, CodeExpr::input("x"));
  st.add_edge(na, "", me, "IN_A", Memlet("A", Subset::full({S("N")})));
  st.add_edge(me, "OUT_A", tl, "x", Memlet("A", read));
  st.add_edge(tl, "__out", mx, "IN_B", Memlet("B", write));
  st.add_edge(mx, "OUT_B", nb, "", Memlet("B", Subset::full({S("N")})));
  return g;
}

int find_map_entry(const State& st) {
  for (int nid : st.node_ids())
    if (st.node_as<ir::MapEntry>(nid)) return nid;
  return -1;
}

TEST(AbsintMapFacts, CleanCopyIsProvenAndVectorizable) {
  auto g = map_copy(Subset::element({S("i")}), Subset::element({S("i")}));
  const State& st = g->state(0);
  MapFacts f = analyze_map(*g, st, find_map_entry(st), Env{});
  EXPECT_TRUE(f.all_in_range);
  EXPECT_TRUE(f.innermost_contiguous);
  EXPECT_TRUE(f.vectorizable);
}

TEST(AbsintMapFacts, ShiftedReadIsNotProven) {
  // A[i+1] over i in [0, N) touches A[N]: out of range at the last
  // iteration, so the scope must keep its guard.
  auto g = map_copy(Subset::element({S("i") + Expr(1)}),
                    Subset::element({S("i")}));
  const State& st = g->state(0);
  MapFacts f = analyze_map(*g, st, find_map_entry(st), Env{});
  EXPECT_FALSE(f.all_in_range);
}

TEST(AbsintMapFacts, StridedWriteIsNotContiguous) {
  auto g = map_copy(Subset::element({S("i")}),
                    Subset::element({sym::mod(S("i") * Expr(2), S("N"))}));
  const State& st = g->state(0);
  MapFacts f = analyze_map(*g, st, find_map_entry(st), Env{});
  EXPECT_FALSE(f.innermost_contiguous);
  EXPECT_FALSE(f.vectorizable);
}

// -- lint --------------------------------------------------------------------

int count_findings(const AnalysisReport& r, const std::string& analysis,
                   Severity sev) {
  int n = 0;
  for (const auto& d : r.diagnostics())
    n += d.analysis == analysis && d.severity == sev;
  return n;
}

TEST(AbsintLint, OutOfRangeMapAccessIsRefuted) {
  auto g = map_copy(Subset::element({S("i") + Expr(1)}),
                    Subset::element({S("i")}));
  AnalysisReport report;
  lint(*g, report);
  EXPECT_GE(count_findings(report, "range", Severity::Error), 1);
}

TEST(AbsintLint, CleanMapIsSilent) {
  auto g = map_copy(Subset::element({S("i")}), Subset::element({S("i")}));
  AnalysisReport report;
  lint(*g, report);
  EXPECT_EQ(count_findings(report, "range", Severity::Error), 0);
  EXPECT_EQ(count_findings(report, "range", Severity::Warning), 0);
  EXPECT_EQ(count_findings(report, "uninit-elem", Severity::Error), 0);
  EXPECT_EQ(count_findings(report, "deadwrite", Severity::Warning), 0);
}

/// state0 writes tmp twice (t1 -> tmp[0], t2 -> tmp[2:N]); state1 reads
/// only part of it into the output.
std::unique_ptr<SDFG> two_write_sdfg(const Subset& read1) {
  auto g = std::make_unique<SDFG>("elems");
  g->add_symbol("N");
  g->add_array("out", DType::f64, {S("N")});
  g->add_arg("out");
  g->add_array("tmp", DType::f64, {S("N")}, /*transient=*/true);
  State& s0 = g->add_state("produce", true);
  int t1 = s0.add_tasklet("t1", {}, CodeExpr::constant(1.0));
  int t2 = s0.add_tasklet("t2", {}, CodeExpr::constant(2.0));
  int a0 = s0.add_access("tmp");
  s0.add_edge(t1, "__out", a0, "", Memlet("tmp", Subset::element({Expr(0)})));
  s0.add_edge(t2, "__out", a0, "",
              Memlet("tmp", Subset({Range(Expr(2), S("N"))})));
  State& s1 = g->add_state("consume");
  int a1 = s1.add_access("tmp");
  int b1 = s1.add_access("out");
  int tc = s1.add_tasklet("c", {"x"}, CodeExpr::input("x"));
  s1.add_edge(a1, "", tc, "x", Memlet("tmp", read1));
  s1.add_edge(tc, "__out", b1, "", Memlet("out", Subset::element({Expr(0)})));
  g->add_interstate_edge(0, 1);
  return g;
}

TEST(AbsintLint, DeadElementWriteIsReported) {
  // Only tmp[0] is read afterwards: the [2, N) write is element-dead
  // even though the container itself is live (no A103 finding).
  auto g = two_write_sdfg(Subset::element({Expr(0)}));
  AnalysisReport report;
  lint(*g, report);
  EXPECT_EQ(count_findings(report, "deadwrite", Severity::Warning), 1);
  AnalysisReport classic = analysis::analyze(*g);
  EXPECT_EQ(count_findings(classic, "defuse", Severity::Warning), 0);
}

TEST(AbsintLint, UninitializedElementReadIsReported) {
  // tmp[1] is read but the writes cover only {0} and [2, N).
  auto g = two_write_sdfg(Subset::element({Expr(1)}));
  AnalysisReport report;
  lint(*g, report);
  EXPECT_GE(count_findings(report, "uninit-elem", Severity::Error), 1);
  // Container-level def-use sees a written container and stays silent.
  AnalysisReport classic = analysis::analyze(*g);
  EXPECT_EQ(count_findings(classic, "defuse", Severity::Error), 0);
}

TEST(AbsintLint, CoveredElementReadIsSilent) {
  auto g = two_write_sdfg(Subset::element({Expr(3)}));
  AnalysisReport report;
  lint(*g, report);
  EXPECT_EQ(count_findings(report, "uninit-elem", Severity::Error), 0);
}

TEST(AbsintLint, TransposedHotMapAccessWarnsA204) {
  auto g = std::make_unique<SDFG>("hot");
  g->add_symbol("N");
  g->add_symbol("M");
  g->add_array("A", DType::f64, {S("N"), S("M")});
  g->add_array("B", DType::f64, {S("N"), S("M")});
  g->add_arg("A");
  g->add_arg("B");
  State& st = g->add_state("main", true);
  int na = st.add_access("A");
  int nb = st.add_access("B");
  auto [me, mx] =
      st.add_map("m", {"i", "j"},
                 Subset({Range(Expr(0), S("N")), Range(Expr(0), S("M"))}),
                 ir::Schedule::CPUParallel);
  int tl = st.add_tasklet("t", {"x"}, CodeExpr::input("x"));
  st.add_edge(na, "", me, "IN_A",
              Memlet("A", Subset::full({S("N"), S("M")})));
  // Transposed read A[j, i]: affine stride M in the innermost param j.
  st.add_edge(me, "OUT_A", tl, "x",
              Memlet("A", Subset::element({S("j"), S("i")})));
  st.add_edge(tl, "__out", mx, "IN_B",
              Memlet("B", Subset::element({S("i"), S("j")})));
  st.add_edge(mx, "OUT_B", nb, "", Memlet("B", Subset::full({S("N"), S("M")})));
  AnalysisReport report;
  lint(*g, report);
  EXPECT_EQ(count_findings(report, "stride", Severity::Warning), 1);
}

// -- code_to_sym satellite ---------------------------------------------------

TEST(AbsintCodeToSym, DivisionAndNegation) {
  CodeExpr half = CodeExpr::binary(CodeOp::Div, CodeExpr::symbol("N"),
                                   CodeExpr::constant(2.0));
  auto e = ir::code_to_sym(half);
  ASSERT_TRUE(e.has_value());
  EXPECT_TRUE(e->equals(sym::floordiv(S("N"), Expr(2))));

  auto neg = ir::code_to_sym(CodeExpr::unary(CodeOp::Neg,
                                             CodeExpr::symbol("K")));
  ASSERT_TRUE(neg.has_value());
  EXPECT_TRUE(neg->equals(-S("K")));

  // to_code round-trip: floordiv goes out as Floor(Div(...)) and comes
  // back as floordiv.
  Expr fd = sym::floordiv(S("N") + Expr(1), Expr(3));
  auto back = ir::code_to_sym(ir::to_code(fd));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->equals(fd));

  // Non-integral constants stay unrepresentable.
  EXPECT_FALSE(ir::code_to_sym(CodeExpr::constant(0.5)).has_value());
}

// -- codegen consumers -------------------------------------------------------

int find_entry(const State& st) {
  for (int nid : st.node_ids()) {
    if (st.node_as<const ir::MapEntry>(nid) && st.scope_of(nid) == -1)
      return nid;
  }
  return -1;
}

int count_guards(const rt::Program& p) {
  int n = 0;
  for (const auto& in : p.code) n += in.op == rt::Op::Guard;
  return n;
}

TEST(AbsintCodegen, ProvenMapElidesGuardsAndEmitsRestrict) {
  // A clean copy is fully proven: no Guard ops, restrict-qualified
  // pointers in the native source.
  auto g = map_copy(Subset::element({S("i")}), Subset::element({S("i")}));
  const State& st = g->state(0);
  int entry = find_entry(st);
  ASSERT_GE(entry, 0);
  rt::Program p = rt::compile_map_scope(*g, st, entry);
  EXPECT_TRUE(p.use_restrict);
  EXPECT_TRUE(p.vec_innermost);
  EXPECT_EQ(count_guards(p), 0);
  std::vector<ir::DType> dtypes(p.arrays.size(), ir::DType::f64);
  std::string src = cg::generate_map_source(p, dtypes, "absint_clean");
  EXPECT_NE(src.find("__restrict__"), std::string::npos);
}

TEST(AbsintCodegen, UnprovenAccessGetsGuarded) {
  // The shifted read cannot be proven in range, so the compiler inserts
  // a Guard and withholds the restrict/vectorize flags' guard elision.
  auto g = map_copy(Subset::element({S("i") + Expr(1)}),
                    Subset::element({S("i")}));
  const State& st = g->state(0);
  int entry = find_entry(st);
  ASSERT_GE(entry, 0);
  rt::Program p = rt::compile_map_scope(*g, st, entry);
  EXPECT_GE(count_guards(p), 1);
  // The flags feed the JIT cache key: guarded and clean programs must
  // not collide.
  auto clean = map_copy(Subset::element({S("i")}), Subset::element({S("i")}));
  rt::Program cp = rt::compile_map_scope(*clean, clean->state(0),
                                         find_entry(clean->state(0)));
  EXPECT_NE(p.hash(), cp.hash());
}

TEST(AbsintCodegen, GuardTrapsOutOfRangeExecution) {
  // Executing the shifted copy walks past the end of A on the last
  // iteration: the runtime guard must convert that into a structured
  // error instead of silently reading out of bounds.
  auto g = map_copy(Subset::element({S("i") + Expr(1)}),
                    Subset::element({S("i")}));
  rt::Bindings args;
  args.emplace("A", rt::Tensor(DType::f64, {8}));
  args.emplace("B", rt::Tensor(DType::f64, {8}));
  EXPECT_THROW(rt::execute(*g, args, {{"N", 8}}), dace::Error);
}

TEST(AbsintCodegen, StructuredInnerLoopGetsIvdep) {
  // 2-D contiguous map: the innermost bytecode loop is reconstructed as
  // a counted for-loop under #pragma GCC ivdep.
  auto g = std::make_unique<SDFG>("copy2d");
  g->add_symbol("N");
  g->add_symbol("M");
  g->add_array("A", DType::f64, {S("N"), S("M")});
  g->add_array("B", DType::f64, {S("N"), S("M")});
  g->add_arg("A");
  g->add_arg("B");
  State& st = g->add_state("main", true);
  int na = st.add_access("A");
  int nb = st.add_access("B");
  auto [me, mx] = st.add_map(
      "m", {"i", "j"},
      Subset({Range(Expr(0), S("N")), Range(Expr(0), S("M"))}));
  int tl = st.add_tasklet("t", {"x"}, CodeExpr::input("x"));
  st.add_edge(na, "", me, "IN_A", Memlet("A", Subset::full({S("N"), S("M")})));
  st.add_edge(me, "OUT_A", tl, "x",
              Memlet("A", Subset::element({S("i"), S("j")})));
  st.add_edge(tl, "__out", mx, "IN_B",
              Memlet("B", Subset::element({S("i"), S("j")})));
  st.add_edge(mx, "OUT_B", nb, "", Memlet("B", Subset::full({S("N"), S("M")})));
  int entry = find_entry(st);
  ASSERT_GE(entry, 0);
  rt::Program p = rt::compile_map_scope(*g, st, entry);
  EXPECT_TRUE(p.vec_innermost);
  std::vector<ir::DType> dtypes(p.arrays.size(), ir::DType::f64);
  std::string src = cg::generate_map_source(p, dtypes, "absint_copy2d");
  EXPECT_NE(src.find("__restrict__"), std::string::npos);
  EXPECT_NE(src.find("ivdep"), std::string::npos);
}

}  // namespace
}  // namespace dace
