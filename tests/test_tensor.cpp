#include "runtime/tensor.hpp"

#include <gtest/gtest.h>

#include "runtime/tensor_ops.hpp"
#include "runtime/thread_pool.hpp"

namespace dace::rt {
namespace {

TEST(Tensor, AllocateZeroInitialized) {
  Tensor t(DType::f64, {3, 4});
  EXPECT_EQ(t.size(), 12);
  EXPECT_TRUE(t.contiguous());
  for (int64_t i = 0; i < t.size(); ++i) EXPECT_EQ(t.get_flat(i), 0.0);
}

TEST(Tensor, ElementAccess) {
  Tensor t(DType::f64, {2, 3});
  t.at({1, 2}) = 5.0;
  EXPECT_EQ(t.at({1, 2}), 5.0);
  EXPECT_EQ(t.get_flat(5), 5.0);
  EXPECT_THROW(t.at({2, 0}), Error);
}

TEST(Tensor, DTypeCastOnStore) {
  Tensor t(DType::f32, {1});
  t.set_flat(0, 0.1);
  EXPECT_EQ(t.get_flat(0), (double)(float)0.1);
  Tensor i(DType::i32, {1});
  i.set_flat(0, 3.7);
  EXPECT_EQ(i.get_flat(0), 3.0);
}

TEST(Tensor, SliceSharesBuffer) {
  Tensor t(DType::f64, {4, 4});
  for (int64_t i = 0; i < 16; ++i) t.set_flat(i, (double)i);
  Tensor s = t.slice({1, 1}, {3, 3}, {1, 1});
  EXPECT_EQ(s.shape(), (std::vector<int64_t>{2, 2}));
  EXPECT_EQ(s.at({0, 0}), 5.0);
  s.at({0, 0}) = 99.0;
  EXPECT_EQ(t.at({1, 1}), 99.0);  // view aliases
}

TEST(Tensor, SliceWithStepAndDrop) {
  Tensor t(DType::f64, {6});
  for (int64_t i = 0; i < 6; ++i) t.set_flat(i, (double)i);
  Tensor s = t.slice({0}, {6}, {2});
  EXPECT_EQ(s.shape(), (std::vector<int64_t>{3}));
  EXPECT_EQ(s.get_flat(2), 4.0);
  Tensor row = Tensor(DType::f64, {3, 4}).slice({1, 0}, {2, 4}, {1, 1},
                                                {true, false});
  EXPECT_EQ(row.shape(), (std::vector<int64_t>{4}));
}

TEST(Tensor, TransposeView) {
  Tensor t(DType::f64, {2, 3});
  t.at({0, 2}) = 7.0;
  Tensor tt = t.transpose();
  EXPECT_EQ(tt.shape(), (std::vector<int64_t>{3, 2}));
  EXPECT_EQ(tt.at({2, 0}), 7.0);
  EXPECT_FALSE(tt.contiguous());
}

TEST(Tensor, CopyIsDeep) {
  Tensor t(DType::f64, {4});
  t.fill(3.0);
  Tensor c = t.copy();
  c.fill(1.0);
  EXPECT_EQ(t.get_flat(0), 3.0);
}

TEST(Tensor, AssignFromOverlappingViews) {
  // b[0:4] = b[1:5] with shared buffer must not corrupt (jacobi shift).
  Tensor t(DType::f64, {5});
  for (int64_t i = 0; i < 5; ++i) t.set_flat(i, (double)i);
  Tensor dst = t.slice({0}, {4}, {1});
  Tensor src = t.slice({1}, {5}, {1});
  dst.assign_from(src);
  EXPECT_EQ(t.get_flat(0), 1.0);
  EXPECT_EQ(t.get_flat(3), 4.0);
}

TEST(TensorOps, BroadcastAdd) {
  Tensor a = Tensor::from_values({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_values({3}, {10, 20, 30});
  Tensor c = ops::add(a, b);
  EXPECT_EQ(c.at({0, 0}), 11.0);
  EXPECT_EQ(c.at({1, 2}), 36.0);
}

TEST(TensorOps, ScalarBroadcast) {
  Tensor a = Tensor::from_values({3}, {1, 2, 3});
  Tensor s = Tensor::scalar(2.0);
  Tensor c = ops::mul(a, s);
  EXPECT_EQ(c.get_flat(2), 6.0);
}

TEST(TensorOps, BroadcastRejectsIncompatible) {
  Tensor a(DType::f64, {2, 3});
  Tensor b(DType::f64, {4});
  EXPECT_THROW(ops::add(a, b), Error);
}

TEST(TensorOps, MatMul2D) {
  Tensor a = Tensor::from_values({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_values({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = ops::matmul(a, b);
  EXPECT_EQ(c.shape(), (std::vector<int64_t>{2, 2}));
  EXPECT_EQ(c.at({0, 0}), 58.0);
  EXPECT_EQ(c.at({1, 1}), 154.0);
}

TEST(TensorOps, MatVecAndVecMat) {
  Tensor a = Tensor::from_values({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor x = Tensor::from_values({3}, {1, 1, 1});
  Tensor y = ops::matmul(a, x);
  EXPECT_EQ(y.shape(), (std::vector<int64_t>{2}));
  EXPECT_EQ(y.get_flat(0), 6.0);
  Tensor v = Tensor::from_values({2}, {1, 1});
  Tensor z = ops::matmul(v, a);
  EXPECT_EQ(z.shape(), (std::vector<int64_t>{3}));
  EXPECT_EQ(z.get_flat(2), 9.0);
}

TEST(TensorOps, MatMulMatchesNaive) {
  const int64_t m = 17, k = 23, n = 13;
  Tensor a(DType::f64, {m, k});
  Tensor b(DType::f64, {k, n});
  for (int64_t i = 0; i < a.size(); ++i) a.set_flat(i, std::sin((double)i));
  for (int64_t i = 0; i < b.size(); ++i) b.set_flat(i, std::cos((double)i));
  Tensor c = ops::matmul(a, b);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (int64_t l = 0; l < k; ++l) acc += a.at({i, l}) * b.at({l, j});
      EXPECT_NEAR(c.at({i, j}), acc, 1e-9);
    }
  }
}

TEST(TensorOps, OuterAndDot) {
  Tensor u = Tensor::from_values({2}, {1, 2});
  Tensor v = Tensor::from_values({3}, {3, 4, 5});
  Tensor o = ops::outer(u, v);
  EXPECT_EQ(o.at({1, 2}), 10.0);
  EXPECT_EQ(ops::dot(u, u), 5.0);
}

TEST(TensorOps, Reductions) {
  Tensor a = Tensor::from_values({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(ops::sum_all(a), 21.0);
  EXPECT_EQ(ops::max_all(a), 6.0);
  EXPECT_EQ(ops::min_all(a), 1.0);
  Tensor s0 = ops::sum_axis(a, 0);
  EXPECT_EQ(s0.shape(), (std::vector<int64_t>{3}));
  EXPECT_EQ(s0.get_flat(0), 5.0);
  Tensor s1 = ops::sum_axis(a, 1);
  EXPECT_EQ(s1.get_flat(1), 15.0);
}

TEST(TensorOps, PromotionRules) {
  EXPECT_EQ(ops::promote(DType::f32, DType::f64), DType::f64);
  EXPECT_EQ(ops::promote(DType::i64, DType::f32), DType::f32);
  EXPECT_EQ(ops::promote(DType::i32, DType::i64), DType::i64);
}

TEST(ThreadPool, ParallelForCoversDomain) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(100, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) hits[(size_t)i]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedCallsRunInline) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](int64_t lo, int64_t hi) {
    pool.parallel_for(hi - lo, [&](int64_t l2, int64_t h2) {
      total += (int)(h2 - l2);
    });
  });
  EXPECT_EQ(total.load(), 8);
}

TEST(Allclose, DetectsDifferences) {
  Tensor a = Tensor::from_values({2}, {1.0, 2.0});
  Tensor b = Tensor::from_values({2}, {1.0, 2.0 + 1e-12});
  EXPECT_TRUE(allclose(a, b));
  b.set_flat(1, 3.0);
  EXPECT_FALSE(allclose(a, b));
}

}  // namespace
}  // namespace dace::rt
