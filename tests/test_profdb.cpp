// Profile database + metrics registry + profile-guided tiering tests.
//
// Three layers:
//   Metrics*  -- registry unit tests: counter/gauge/histogram semantics,
//                Prometheus text exposition, the DACE_METRICS=0 freeze
//   ProfDb*   -- the on-disk store: merge round-trip with EMA folding,
//                corrupt/truncated entries deleted on sight and rebuilt,
//                DACE_PROFILE_DB=0 kill switch, and a fork-based
//                two-process concurrent flush on one key that must leave
//                exactly one valid entry
//   Pgo*      -- the read side: DACE_PGO=1 over an *empty* DB must be
//                bit-identical to DACE_PGO=0, and over a warm DB must
//                pre-promote a known-hot map with no warmup iterations
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/profdb.hpp"
#include "frontend/lowering.hpp"
#include "kernels/suite.hpp"
#include "runtime/executor.hpp"
#include "runtime/tiering.hpp"
#include "transforms/auto_optimize.hpp"

namespace dace {
namespace {

namespace fs = std::filesystem;
using kernels::Kernel;
using rt::Bindings;

/// Scoped environment override; restores the previous value on exit.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (had_old_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_, old_;
  bool had_old_ = false;
};

std::string make_temp_dir() {
  char tmpl[] = "/tmp/dacepp-profdb-test-XXXXXX";
  EXPECT_NE(mkdtemp(tmpl), nullptr);
  return tmpl;
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(Metrics, CounterSemantics) {
  auto& c = metrics::counter("dacepp_test_counter_semantics_total");
  c.reset();
  c.inc();
  c.inc(4);
  EXPECT_EQ(c.value(), 5u);
  // Interning: same name, same instrument.
  EXPECT_EQ(&metrics::counter("dacepp_test_counter_semantics_total"), &c);
}

TEST(Metrics, GaugeSemantics) {
  auto& g = metrics::gauge("dacepp_test_gauge_semantics");
  g.reset();
  g.set(7);
  EXPECT_EQ(g.value(), 7);
  g.add(-3);
  EXPECT_EQ(g.value(), 4);
}

TEST(Metrics, HistogramBuckets) {
  EXPECT_EQ(metrics::Histogram::bucket_of(0), 0);
  EXPECT_EQ(metrics::Histogram::bucket_of(1), 1);
  EXPECT_EQ(metrics::Histogram::bucket_of(2), 2);
  EXPECT_EQ(metrics::Histogram::bucket_of(3), 2);
  EXPECT_EQ(metrics::Histogram::bucket_of(4), 3);
  EXPECT_EQ(metrics::Histogram::bucket_of(~0ull),
            metrics::Histogram::kBuckets - 1);
  auto& h = metrics::histogram("dacepp_test_histogram_ns");
  h.reset();
  h.observe(1);
  h.observe(1000);
  h.observe(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 2001u);
  EXPECT_EQ(h.bucket(metrics::Histogram::bucket_of(1000)), 2u);
}

TEST(Metrics, ExposeTextFormat) {
  auto& c = metrics::counter("dacepp_test_expose_total");
  c.reset();
  c.inc(3);
  auto& h = metrics::histogram("dacepp_test_expose_ns");
  h.reset();
  h.observe(5);
  std::string text = metrics::expose_text();
  EXPECT_NE(text.find("# TYPE dacepp_test_expose_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("dacepp_test_expose_total 3"), std::string::npos);
  EXPECT_NE(text.find("dacepp_test_expose_ns_bucket{le="), std::string::npos);
  EXPECT_NE(text.find("dacepp_test_expose_ns_sum 5"), std::string::npos);
  EXPECT_NE(text.find("dacepp_test_expose_ns_count 1"), std::string::npos);
}

TEST(Metrics, DisabledFreezesValues) {
  auto& c = metrics::counter("dacepp_test_freeze_total");
  c.reset();
  c.inc();
  metrics::set_enabled(false);
  c.inc(100);
  metrics::set_enabled(true);
  EXPECT_EQ(c.value(), 1u);
  c.inc();
  EXPECT_EQ(c.value(), 2u);
}

// ---------------------------------------------------------------------------
// Profile DB store
// ---------------------------------------------------------------------------

class ProfDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = make_temp_dir();
    setenv("DACE_PROFILE_DB_DIR", root_.c_str(), 1);
    unsetenv("DACE_PROFILE_DB");
    unsetenv("DACE_PGO");
    prof::ProfileDB::reset_for_testing();
  }
  void TearDown() override {
    unsetenv("DACE_PROFILE_DB_DIR");
    unsetenv("DACE_PROFILE_DB");
    unsetenv("DACE_PGO");
    prof::ProfileDB::reset_for_testing();
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  static prof::MapProfile sample(uint64_t hash, double ns0) {
    prof::MapProfile mp;
    mp.program_hash = hash;
    mp.label = "jacobi";
    mp.runs = 1;
    mp.launches = 10;
    mp.iterations = 1000;
    mp.tier = 1;
    mp.ns_per_iter[0] = ns0;
    mp.ns_per_iter[1] = ns0 / 10.0;
    mp.instrs = 42;
    mp.last_pass = "map_fusion";
    return mp;
  }

  std::string root_;
};

TEST_F(ProfDbTest, EnvDirResolution) {
  auto& db = prof::ProfileDB::instance();
  EXPECT_TRUE(db.enabled());
  EXPECT_EQ(db.dir(), root_);
}

TEST_F(ProfDbTest, MergeRoundTripWithEma) {
  auto& db = prof::ProfileDB::instance();
  ASSERT_TRUE(db.merge_map(sample(0xfeed, 100.0)));
  ASSERT_TRUE(db.merge_map(sample(0xfeed, 300.0)));
  prof::MapProfile got;
  ASSERT_TRUE(db.load_map(0xfeed, &got));
  EXPECT_EQ(got.program_hash, 0xfeedu);
  EXPECT_EQ(got.label, "jacobi");
  EXPECT_EQ(got.runs, 2);
  EXPECT_EQ(got.launches, 20);
  EXPECT_EQ(got.iterations, 2000);
  EXPECT_EQ(got.tier, 1);
  // 50/50 EMA fold: (100 + 300) / 2.
  EXPECT_DOUBLE_EQ(got.ns_per_iter[0], 200.0);
  EXPECT_EQ(got.instrs, 84);
  EXPECT_EQ(got.last_pass, "map_fusion");
  EXPECT_TRUE(db.load_map(0xbeef, &got) == false);  // miss stays a miss
}

TEST_F(ProfDbTest, ListAndPurge) {
  auto& db = prof::ProfileDB::instance();
  ASSERT_TRUE(db.merge_map(sample(1, 10.0)));
  ASSERT_TRUE(db.merge_map(sample(2, 20.0)));
  EXPECT_EQ(db.list_maps().size(), 2u);
  EXPECT_GE(db.purge(), 2);
  EXPECT_EQ(db.list_maps().size(), 0u);
}

TEST_F(ProfDbTest, CorruptEntryDeletedOnSightAndRebuilt) {
  auto& db = prof::ProfileDB::instance();
  ASSERT_TRUE(db.merge_map(sample(0xc0, 50.0)));
  std::string path = db.map_path(0xc0);
  {
    std::ofstream f(path, std::ios::binary);
    f << "daceppprof 1\nkind map\ntotal garbage, wrong checksum\n";
  }
  prof::MapProfile got;
  EXPECT_FALSE(db.load_map(0xc0, &got));
  EXPECT_FALSE(fs::exists(path)) << "corrupt entry must be deleted on sight";
  EXPECT_GE(db.stats().corrupt_rejected, 1u);
  // The key is usable again immediately.
  ASSERT_TRUE(db.merge_map(sample(0xc0, 50.0)));
  ASSERT_TRUE(db.load_map(0xc0, &got));
  EXPECT_EQ(got.runs, 1);
}

TEST_F(ProfDbTest, TruncatedEntryDeletedOnSight) {
  auto& db = prof::ProfileDB::instance();
  ASSERT_TRUE(db.merge_map(sample(0xdead, 50.0)));
  std::string path = db.map_path(0xdead);
  std::string text;
  {
    std::ifstream f(path, std::ios::binary);
    text.assign(std::istreambuf_iterator<char>(f),
                std::istreambuf_iterator<char>());
  }
  ASSERT_GT(text.size(), 10u);
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << text.substr(0, text.size() / 2);  // tear the record
  }
  prof::MapProfile got;
  EXPECT_FALSE(db.load_map(0xdead, &got));
  EXPECT_FALSE(fs::exists(path));
}

TEST_F(ProfDbTest, DisabledViaEnv) {
  EnvGuard off("DACE_PROFILE_DB", "0");
  prof::ProfileDB::reset_for_testing();
  auto& db = prof::ProfileDB::instance();
  EXPECT_FALSE(db.enabled());
  EXPECT_FALSE(db.merge_map(sample(1, 10.0)));
  prof::MapProfile got;
  EXPECT_FALSE(db.load_map(1, &got));
}

TEST_F(ProfDbTest, PipelineRoundTrip) {
  auto& db = prof::ProfileDB::instance();
  std::vector<prof::PassStat> delta(1);
  delta[0].name = "strict_fusion";
  delta[0].runs = 1;
  delta[0].applied = 1;
  delta[0].rolled_back = 1;
  ASSERT_TRUE(db.merge_pipeline(0x51, delta));
  ASSERT_TRUE(db.merge_pipeline(0x51, delta));
  prof::PipelineProfile got;
  ASSERT_TRUE(db.load_pipeline(0x51, &got));
  EXPECT_EQ(got.runs, 2);
  ASSERT_EQ(got.passes.size(), 1u);
  EXPECT_EQ(got.passes[0].name, "strict_fusion");
  EXPECT_EQ(got.passes[0].rolled_back, 2);
  EXPECT_EQ(got.passes[0].committed, 0);
}

// Two processes flushing the same key concurrently: the per-key flock
// serializes read-merge-write, so the final entry must verify and hold
// the sum of both contributions -- not a torn mix.
TEST_F(ProfDbTest, ConcurrentForkFlushOneValidEntry) {
  const int kWriters = 4;
  prof::DbConfig cfg;
  cfg.enabled = true;
  cfg.dir = root_;
  cfg.lock_timeout_ms = 10000;
  std::vector<pid_t> kids;
  for (int i = 0; i < kWriters; ++i) {
    pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      prof::ProfileDB db(cfg);
      bool ok = db.merge_map(sample(0xabba, 100.0 * (i + 1)));
      _exit(ok ? 0 : 1);
    }
    kids.push_back(pid);
  }
  for (pid_t pid : kids) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "child writer failed";
  }
  prof::ProfileDB db(cfg);
  prof::MapProfile got;
  ASSERT_TRUE(db.load_map(0xabba, &got)) << "entry must verify after race";
  EXPECT_EQ(got.runs, kWriters);
  EXPECT_EQ(got.launches, 10 * kWriters);
  EXPECT_EQ(got.iterations, 1000 * kWriters);
  // Exactly one entry file for the key (plus its lock sibling).
  int entries = 0;
  for (const auto& e : fs::directory_iterator(root_))
    if (e.path().extension() == ".prof") ++entries;
  EXPECT_EQ(entries, 1);
}

TEST(ProfDbMisc, LastRewriteNote) {
  prof::note_last_rewrite("greedy_fusion");
  EXPECT_EQ(prof::last_rewrite(), "greedy_fusion");
  prof::note_last_rewrite("");
  EXPECT_EQ(prof::last_rewrite(), "");
}

// ---------------------------------------------------------------------------
// Profile-guided tiering
// ---------------------------------------------------------------------------

class PgoTest : public ProfDbTest {
 protected:
  const Kernel& k() const { return kernels::kernel("jacobi_2d"); }
  const sym::SymbolMap& sizes() const { return k().presets.at("test"); }

  std::unique_ptr<ir::SDFG> build() const {
    auto sdfg = fe::compile_to_sdfg(k().source);
    xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
    return sdfg;
  }
};

// DACE_PGO=1 over an empty DB must be bit-identical to DACE_PGO=0:
// every lookup misses, so nothing is seeded and nothing pre-promotes.
TEST_F(PgoTest, EmptyDbIsByteIdenticalToOff) {
  EnvGuard thr("DACEPP_JIT_THRESHOLD", "1000000000000");
  auto sdfg = build();

  Bindings off = k().init(sizes());
  int64_t off_native = 0;
  {
    rt::Executor ex(*sdfg);
    ex.run(off, sizes());
    off_native = ex.native_launches();
  }

  prof::ProfileDB::instance().purge();  // drop the teardown flush above
  Bindings on = k().init(sizes());
  int64_t on_native = 0;
  {
    EnvGuard pgo("DACE_PGO", "1");
    rt::Executor ex(*sdfg);
    ex.run(on, sizes());
    on_native = ex.native_launches();
  }

  EXPECT_EQ(off_native, 0);
  EXPECT_EQ(on_native, 0) << "empty DB must not pre-promote";
  for (const auto& out : k().outputs)
    EXPECT_EQ(rt::max_abs_diff(off.at(out), on.at(out)), 0.0)
        << "output '" << out << "' perturbed by DACE_PGO=1 over an empty DB";
}

// A warm DB plus DACE_PGO=1 must pre-promote the hot map straight to
// Tier 1 even though the promotion threshold is unreachably high.
TEST_F(PgoTest, WarmDbPrePromotesHotMap) {
  auto sdfg = build();

  {
    // Recording run: promote by threshold, flush tier=1 at teardown.
    EnvGuard thr("DACEPP_JIT_THRESHOLD", "1");
    EnvGuard sync("DACEPP_JIT_SYNC", "1");
    rt::Executor ex(*sdfg);
    Bindings b = k().init(sizes());
    ex.run(b, sizes());
    if (ex.native_launches() == 0)
      GTEST_SKIP() << "native tier unavailable (no host compiler)";
  }
  ASSERT_FALSE(prof::ProfileDB::instance().list_maps().empty())
      << "teardown must have flushed a profile";

  uint64_t pre0 =
      metrics::counter("dacepp_pgo_prepromotions_total").value();
  EnvGuard thr("DACEPP_JIT_THRESHOLD", "1000000000000");
  EnvGuard sync("DACEPP_JIT_SYNC", "1");

  {
    // Control: without DACE_PGO the huge threshold keeps the VM tier.
    rt::Executor ex(*sdfg);
    Bindings b = k().init(sizes());
    ex.run(b, sizes());
    EXPECT_EQ(ex.native_launches(), 0);
  }
  {
    EnvGuard pgo("DACE_PGO", "1");
    rt::Executor ex(*sdfg);
    Bindings b = k().init(sizes());
    ex.run(b, sizes());
    EXPECT_GT(ex.native_launches(), 0)
        << "warm DB + DACE_PGO=1 must pre-promote with no warmup";
    EXPECT_GT(ex.native_promotions(), 0);

    Bindings ref = k().init(sizes());
    k().reference(ref, sizes());
    for (const auto& out : k().outputs)
      EXPECT_TRUE(rt::allclose(b.at(out), ref.at(out), 1e-9, 1e-11))
          << "pre-promoted run diverges on '" << out << "'";
  }
  EXPECT_GT(metrics::counter("dacepp_pgo_prepromotions_total").value(), pre0);
}

}  // namespace
}  // namespace dace
