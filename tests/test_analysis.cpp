// Semantic analysis tests: race detector, bounds checker, interstate
// def-use, Pipeline verify mode, and the save/load serializer that feeds
// the sdfg-lint tool.
#include "analysis/analysis.hpp"

#include <gtest/gtest.h>

#include "frontend/lowering.hpp"
#include "kernels/suite.hpp"
#include "transforms/auto_optimize.hpp"
#include "transforms/pass.hpp"

namespace dace {
namespace {

using analysis::AnalysisReport;
using analysis::Severity;
using ir::CodeExpr;
using ir::DType;
using ir::Memlet;
using ir::SDFG;
using ir::State;
using ir::WCR;
using sym::Expr;
using sym::Range;
using sym::S;
using sym::Subset;

/// Map over i in [0, N) whose tasklet writes A[target] with the given
/// WCR -- the minimal graph the race detector reasons about.
std::unique_ptr<SDFG> map_writing(const Subset& target, WCR wcr) {
  auto g = std::make_unique<SDFG>("prog");
  g->add_symbol("N");
  g->add_array("A", DType::f64, {S("N")});
  g->add_arg("A");
  State& st = g->add_state("main", true);
  int na = st.add_access("A");
  auto [me, mx] = st.add_map("m", {"i"}, Subset({Range(Expr(0), S("N"))}));
  int tl = st.add_tasklet("t", {}, CodeExpr::constant(1.0));
  st.add_edge(me, "", tl, "", Memlet());
  st.add_edge(tl, "__out", mx, "IN_A", Memlet("A", target, wcr));
  st.add_edge(mx, "OUT_A", na, "", Memlet("A", Subset::full({S("N")})));
  return g;
}

int count(const AnalysisReport& r, const std::string& analysis, Severity sev) {
  int n = 0;
  for (const auto& d : r.diagnostics()) {
    n += d.analysis == analysis && d.severity == sev;
  }
  return n;
}

// -- race detector -----------------------------------------------------------

TEST(RaceDetector, EveryIterationWritesSameElement) {
  auto g = map_writing(Subset::element({Expr(0)}), WCR::None);
  AnalysisReport r = analysis::analyze(*g);
  EXPECT_EQ(count(r, "race", Severity::Error), 1) << r.to_string();
  EXPECT_TRUE(r.has_errors());
}

TEST(RaceDetector, WcrResolvesTheConflict) {
  auto g = map_writing(Subset::element({Expr(0)}), WCR::Sum);
  AnalysisReport r = analysis::analyze(*g);
  EXPECT_EQ(count(r, "race", Severity::Error), 0) << r.to_string();
  EXPECT_EQ(count(r, "race", Severity::Warning), 0) << r.to_string();
}

TEST(RaceDetector, DisjointWritesAreSilent) {
  auto g = map_writing(Subset::element({S("i")}), WCR::None);
  AnalysisReport r = analysis::analyze(*g);
  EXPECT_TRUE(r.empty()) << r.to_string();
}

TEST(RaceDetector, StridedWritesAreSilent) {
  // A[2i] over i in [0, N): lattice writes, pairwise disjoint.
  auto g = map_writing(Subset::element({S("i") * Expr(2)}), WCR::None);
  g->array("A").shape = {S("N") * Expr(2)};
  AnalysisReport r = analysis::analyze(*g);
  EXPECT_EQ(count(r, "race", Severity::Error), 0) << r.to_string();
  EXPECT_EQ(count(r, "race", Severity::Warning), 0) << r.to_string();
}

TEST(RaceDetector, UnprovableDisjointnessWarns) {
  // A[i mod 7]: neither a provable race nor provably disjoint.
  auto g = map_writing(Subset::element({mod(S("i"), Expr(7))}), WCR::None);
  AnalysisReport r = analysis::analyze(*g);
  EXPECT_EQ(count(r, "race", Severity::Error), 0) << r.to_string();
  EXPECT_EQ(count(r, "race", Severity::Warning), 1) << r.to_string();
}

TEST(RaceDetector, MixedWcrAndPlainWriteIsFlagged) {
  // Two writes to the same element, one resolved, one not: still a race.
  auto g = map_writing(Subset::element({Expr(0)}), WCR::Sum);
  State& st = g->state(0);
  int tl2 = st.add_tasklet("t2", {}, CodeExpr::constant(2.0));
  st.add_edge(1, "", tl2, "", Memlet());  // node 1 is the map entry
  st.add_edge(tl2, "__out", 2, "IN_A",
              Memlet("A", Subset::element({Expr(0)}), WCR::None));
  AnalysisReport r = analysis::analyze(*g);
  EXPECT_EQ(count(r, "race", Severity::Error), 1) << r.to_string();
}

// -- bounds checker ----------------------------------------------------------

TEST(BoundsChecker, ProvableOutOfBoundsIsError) {
  // A[i+1] with i up to N-1 accesses A[N]: provably out of bounds.
  auto g = map_writing(Subset::element({S("i") + Expr(1)}), WCR::None);
  AnalysisReport r = analysis::analyze(*g);
  EXPECT_EQ(count(r, "bounds", Severity::Error), 1) << r.to_string();
}

TEST(BoundsChecker, NegativeIndexIsError) {
  auto g = map_writing(Subset::element({S("i") - Expr(1)}), WCR::None);
  AnalysisReport r = analysis::analyze(*g);
  EXPECT_EQ(count(r, "bounds", Severity::Error), 1) << r.to_string();
}

TEST(BoundsChecker, InBoundsIsSilent) {
  auto g = map_writing(Subset::element({S("i")}), WCR::None);
  AnalysisReport r = analysis::analyze(*g);
  EXPECT_EQ(count(r, "bounds", Severity::Error), 0) << r.to_string();
  EXPECT_EQ(count(r, "bounds", Severity::Warning), 0) << r.to_string();
}

TEST(BoundsChecker, UnprovableBoundWarns) {
  // A[i+M-1] with a free symbol M (>= 1 by the engine's assumption):
  // neither provably out of bounds nor provably inside without a
  // relation between M and N.
  auto g = map_writing(Subset::element({S("i") + S("M") - Expr(1)}),
                       WCR::None);
  g->add_symbol("M");
  AnalysisReport r = analysis::analyze(*g);
  EXPECT_EQ(count(r, "bounds", Severity::Error), 0) << r.to_string();
  EXPECT_GE(count(r, "bounds", Severity::Warning), 1) << r.to_string();
}

// -- interstate def-use ------------------------------------------------------

/// Two-state SDFG: state 0 (start) optionally writes transient `t`,
/// state 1 copies t into the output.
std::unique_ptr<SDFG> transient_read(bool written_before) {
  auto g = std::make_unique<SDFG>("prog");
  g->add_symbol("N");
  g->add_array("out", DType::f64, {S("N")});
  g->add_arg("out");
  g->add_array("t", DType::f64, {S("N")}, /*transient=*/true);
  State& s0 = g->add_state("init", true);
  if (written_before) {
    int src = s0.add_access("out");
    int dst = s0.add_access("t");
    s0.add_edge(src, "", dst, "", Memlet("t", Subset::full({S("N")})));
  }
  State& s1 = g->add_state("use");
  int src = s1.add_access("t");
  int dst = s1.add_access("out");
  s1.add_edge(src, "", dst, "", Memlet("out", Subset::full({S("N")})));
  g->add_interstate_edge(0, 1);
  return g;
}

TEST(DefUse, ReadOfNeverWrittenTransientIsError) {
  auto g = transient_read(false);
  AnalysisReport r = analysis::analyze(*g);
  EXPECT_EQ(count(r, "defuse", Severity::Error), 1) << r.to_string();
}

TEST(DefUse, InitializedTransientIsSilent) {
  auto g = transient_read(true);
  AnalysisReport r = analysis::analyze(*g);
  EXPECT_EQ(count(r, "defuse", Severity::Error), 0) << r.to_string();
}

TEST(DefUse, SomePathInitializationWarns) {
  // Diamond: start -> {writes t | empty} -> read t.
  auto g = transient_read(false);
  State& s2 = g->add_state("maybe_init");
  int src = s2.add_access("out");
  int dst = s2.add_access("t");
  s2.add_edge(src, "", dst, "", Memlet("t", Subset::full({S("N")})));
  // start(0) branches to maybe_init(2) and directly to use(1).
  g->add_interstate_edge(0, 2);
  g->add_interstate_edge(2, 1);
  AnalysisReport r = analysis::analyze(*g);
  EXPECT_EQ(count(r, "defuse", Severity::Error), 0) << r.to_string();
  EXPECT_EQ(count(r, "defuse", Severity::Warning), 1) << r.to_string();
}

TEST(DefUse, DeadWriteWarns) {
  auto g = std::make_unique<SDFG>("prog");
  g->add_symbol("N");
  g->add_array("out", DType::f64, {S("N")});
  g->add_arg("out");
  g->add_array("t", DType::f64, {S("N")}, /*transient=*/true);
  State& st = g->add_state("main", true);
  int src = st.add_access("out");
  int dst = st.add_access("t");
  st.add_edge(src, "", dst, "", Memlet("t", Subset::full({S("N")})));
  AnalysisReport r = analysis::analyze(*g);
  EXPECT_EQ(count(r, "defuse", Severity::Warning), 1) << r.to_string();
}

// -- pipeline verify mode ----------------------------------------------------

TEST(PipelineVerify, PassIntroducingRaceAborts) {
  auto g = map_writing(Subset::element({S("i")}), WCR::None);
  xf::Pipeline pipe("test");
  pipe.add("break-it", [](ir::SDFG& sdfg) {
    // Rewrite the store index to a constant: every iteration now
    // collides -- exactly the class of bug verify mode must catch.
    for (auto& e : sdfg.state(0).edges()) {
      if (!e.memlet.empty() && e.memlet.wcr == ir::WCR::None &&
          e.memlet.subset.is_element()) {
        e.memlet.subset = Subset::element({Expr(0)});
      }
    }
    return true;
  });
  pipe.set_verify(true);
  EXPECT_THROW(pipe.run(*g), Error);
}

TEST(PipelineVerify, PreexistingFindingsAreBaseline) {
  // The input graph already races; a pass that does not make things
  // worse must not be blamed for it.
  auto g = map_writing(Subset::element({Expr(0)}), WCR::None);
  xf::Pipeline pipe("test");
  pipe.add("noop-change", [](ir::SDFG& sdfg) {
    sdfg.state(0).set_label("renamed");
    return true;
  });
  pipe.set_verify(true);
  EXPECT_NO_THROW(pipe.run(*g));
}

TEST(PipelineVerify, CleanPipelineReportsNoErrors) {
  auto g = map_writing(Subset::element({S("i")}), WCR::None);
  xf::Pipeline pipe("test");
  pipe.add("noop", [](ir::SDFG&) { return false; });
  pipe.set_verify(true);
  EXPECT_NO_THROW(pipe.run(*g));
  EXPECT_FALSE(pipe.last_report().has_errors());
}

// -- whole-suite integration -------------------------------------------------

class AnalysisSuite : public ::testing::TestWithParam<std::string> {};

TEST_P(AnalysisSuite, FrontendOutputHasNoErrors) {
  const kernels::Kernel& k = kernels::kernel(GetParam());
  auto sdfg = fe::compile_to_sdfg(k.source);
  AnalysisReport r = analysis::analyze(*sdfg);
  EXPECT_FALSE(r.has_errors()) << k.name << ":\n" << r.to_string();
}

TEST_P(AnalysisSuite, VerifiedAutoOptimizeSucceeds) {
  const kernels::Kernel& k = kernels::kernel(GetParam());
  auto sdfg = fe::compile_to_sdfg(k.source);
  xf::AutoOptOptions opts;
  opts.verify = true;  // analyzer runs after every pass
  EXPECT_NO_THROW(xf::auto_optimize(*sdfg, ir::DeviceType::CPU, opts))
      << k.name;
}

TEST_P(AnalysisSuite, SerializerRoundTrips) {
  const kernels::Kernel& k = kernels::kernel(GetParam());
  auto sdfg = fe::compile_to_sdfg(k.source);
  EXPECT_EQ(ir::load_sdfg(sdfg->save())->dump(), sdfg->dump()) << k.name;
  // Optimized graphs exercise strided/tiled subsets and library nodes.
  xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
  EXPECT_EQ(ir::load_sdfg(sdfg->save())->dump(), sdfg->dump()) << k.name;
}

std::vector<std::string> kernel_names() {
  std::vector<std::string> names;
  for (const auto& k : kernels::suite()) names.push_back(k.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(All, AnalysisSuite,
                         ::testing::ValuesIn(kernel_names()),
                         [](const auto& info) { return info.param; });

// -- structural validation additions -----------------------------------------

TEST(Validate, WcrOnReadMemletRejected) {
  auto g = map_writing(Subset::element({S("i")}), WCR::None);
  State& st = g->state(0);
  // Forge a read edge out of the map entry that carries WCR.
  int na2 = st.add_access("A");
  st.add_edge(na2, "", 1, "IN_r", Memlet("A", Subset::full({S("N")})));
  st.add_edge(1, "OUT_r", 3, "x",
              Memlet("A", Subset::element({S("i")}), WCR::Sum));
  EXPECT_THROW(g->validate(), Error);
}

TEST(Validate, MapExitConnectorPairingEnforced) {
  auto g = map_writing(Subset::element({S("i")}), WCR::None);
  State& st = g->state(0);
  // An IN_B arriving at the exit with no matching OUT_B leaving it.
  int tl2 = st.add_tasklet("t2", {}, ir::CodeExpr::constant(0.0));
  st.add_edge(1, "", tl2, "", Memlet());
  st.add_edge(tl2, "__out", 2, "IN_B",
              Memlet("A", Subset::element({S("i")})));
  EXPECT_THROW(g->validate(), Error);
}

}  // namespace
}  // namespace dace
