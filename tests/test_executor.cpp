// End-to-end: DaCeLang -> SDFG -> executor, validated against directly
// computed references.
#include <gtest/gtest.h>

#include <atomic>
#include <random>

#include "common/common.hpp"
#include "frontend/lowering.hpp"
#include "runtime/executor.hpp"
#include "runtime/tensor_ops.hpp"

namespace dace {
namespace {

using fe::compile_to_sdfg;
using rt::Bindings;
using rt::Tensor;

Tensor random_tensor(std::vector<int64_t> shape, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Tensor t(ir::DType::f64, std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) t.set_flat(i, dist(gen));
  return t;
}

TEST(Executor, Axpy) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def axpy(alpha: dace.float64, x: dace.float64[N], y: dace.float64[N]):
    y[:] = alpha * x + y
)");
  const int64_t n = 100;
  Tensor x = random_tensor({n}, 1);
  Tensor y = random_tensor({n}, 2);
  Tensor y0 = y.copy();
  Bindings args{{"alpha", Tensor::scalar(2.5)}, {"x", x}, {"y", y}};
  rt::execute(*sdfg, args, {{"N", n}});
  for (int64_t i = 0; i < n; ++i)
    EXPECT_NEAR(y.get_flat(i), 2.5 * x.get_flat(i) + y0.get_flat(i), 1e-12);
}

TEST(Executor, PostStateHookObservesEveryState) {
  // The hook fires once per executed state with the live symbol values --
  // the fuzz sentinel checks build on this contract.
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N]):
    for i in range(N):
        A[i] += 1.0
)");
  const int64_t n = 4;
  Tensor A = random_tensor({n}, 5);
  Bindings args{{"A", A}};
  rt::ExecutorOptions opts;
  int states = 0;
  int body_visits = 0;
  opts.post_state_hook = [&](const ir::State& st, const sym::SymbolMap& syms) {
    ++states;
    if (st.label().rfind("for_body", 0) == 0) {
      ++body_visits;
      auto it = syms.find("i");
      ASSERT_NE(it, syms.end());
      EXPECT_EQ(it->second, body_visits - 1);
    }
  };
  rt::execute(*sdfg, args, {{"N", n}}, opts);
  EXPECT_EQ(body_visits, n);
  EXPECT_GT(states, body_visits);
}

TEST(Executor, GemmMatchesReference) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def gemm(alpha: dace.float64, beta: dace.float64, C: dace.float64[NI, NJ],
         A: dace.float64[NI, NK], B: dace.float64[NK, NJ]):
    C[:] = alpha * A @ B + beta * C
)");
  const int64_t ni = 13, nj = 17, nk = 11;
  Tensor A = random_tensor({ni, nk}, 3);
  Tensor B = random_tensor({nk, nj}, 4);
  Tensor C = random_tensor({ni, nj}, 5);
  Tensor ref = rt::ops::add(
      rt::ops::mul(Tensor::scalar(1.5), rt::ops::matmul(A, B)),
      rt::ops::mul(Tensor::scalar(0.5), C));
  Bindings args{{"alpha", Tensor::scalar(1.5)},
                {"beta", Tensor::scalar(0.5)},
                {"C", C},
                {"A", A},
                {"B", B}};
  rt::execute(*sdfg, args, {{"NI", ni}, {"NJ", nj}, {"NK", nk}});
  EXPECT_TRUE(rt::allclose(C, ref, 1e-9, 1e-9));
}

TEST(Executor, Jacobi1DTimeLoop) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def jacobi_1d(TSTEPS: dace.int32, A: dace.float64[N], B: dace.float64[N]):
    for t in range(1, TSTEPS):
        B[1:-1] = 0.33333 * (A[:-2] + A[1:-1] + A[2:])
        A[1:-1] = 0.33333 * (B[:-2] + B[1:-1] + B[2:])
)");
  const int64_t n = 64, tsteps = 5;
  Tensor A = random_tensor({n}, 7);
  Tensor B = random_tensor({n}, 8);
  Tensor Ar = A.copy(), Br = B.copy();
  // Reference.
  for (int64_t t = 1; t < tsteps; ++t) {
    for (int64_t i = 1; i < n - 1; ++i)
      Br.at({i}) = 0.33333 * (Ar.at({i - 1}) + Ar.at({i}) + Ar.at({i + 1}));
    for (int64_t i = 1; i < n - 1; ++i)
      Ar.at({i}) = 0.33333 * (Br.at({i - 1}) + Br.at({i}) + Br.at({i + 1}));
  }
  Bindings args{{"A", A}, {"B", B}};
  rt::execute(*sdfg, args, {{"N", n}, {"TSTEPS", tsteps}});
  EXPECT_TRUE(rt::allclose(A, Ar, 1e-9, 1e-12));
  EXPECT_TRUE(rt::allclose(B, Br, 1e-9, 1e-12));
}

TEST(Executor, DaceMapTranspose) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def transpose(A: dace.float64[M, N], B: dace.float64[N, M]):
    for i, j in dace.map[0:M, 0:N]:
        A[i, j] = B[j, i]
)");
  const int64_t m = 9, n = 12;
  Tensor A(ir::DType::f64, {m, n});
  Tensor B = random_tensor({n, m}, 9);
  Bindings args{{"A", A}, {"B", B}};
  rt::execute(*sdfg, args, {{"M", m}, {"N", n}});
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j)
      EXPECT_EQ(A.at({i, j}), B.at({j, i}));
  }
}

TEST(Executor, WcrSumReduction) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def red(alpha: dace.float64, C: dace.float64[NI, NJ]):
    for i, j in dace.map[0:NI, 0:NJ]:
        alpha += C[i, j]
)");
  const int64_t ni = 21, nj = 17;
  Tensor C = random_tensor({ni, nj}, 10);
  Tensor alpha = Tensor::scalar(1.0);
  Bindings args{{"alpha", alpha}, {"C", C}};
  rt::execute(*sdfg, args, {{"NI", ni}, {"NJ", nj}});
  EXPECT_NEAR(alpha.value(), 1.0 + rt::ops::sum_all(C), 1e-9);
}

TEST(Executor, IfBranchesOnSymbols) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N]):
    if N > 10:
        A[:] = A * 2.0
    else:
        A[:] = A * 3.0
)");
  Tensor A1 = Tensor::from_values({20}, std::vector<double>(20, 1.0));
  Bindings a1{{"A", A1}};
  rt::execute(*sdfg, a1, {{"N", 20}});
  EXPECT_EQ(A1.get_flat(0), 2.0);
  Tensor A2 = Tensor::from_values({5}, std::vector<double>(5, 1.0));
  Bindings a2{{"A", A2}};
  rt::execute(*sdfg, a2, {{"N", 5}});
  EXPECT_EQ(A2.get_flat(0), 3.0);
}

TEST(Executor, ReduceLibraryNode) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N, M], out: dace.float64[M]):
    out[:] = np.sum(A, axis=0) / N
)");
  const int64_t n = 8, m = 6;
  Tensor A = random_tensor({n, m}, 11);
  Tensor out(ir::DType::f64, {m});
  Bindings args{{"A", A}, {"out", out}};
  rt::execute(*sdfg, args, {{"N", n}, {"M", m}});
  Tensor ref = rt::ops::div(rt::ops::sum_axis(A, 0),
                            Tensor::scalar((double)n));
  EXPECT_TRUE(rt::allclose(out, ref));
}

TEST(Executor, MatVecViews) {
  // doitgen-style: 1D view of a 3D array times a matrix.
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[NR, NQ, NP], C4: dace.float64[NP, NP]):
    for r in range(NR):
        for q in range(NQ):
            tmp = np.zeros((NP,), dtype=A.dtype)
            tmp[:] = A[r, q, :] @ C4
            A[r, q, :] = tmp
)");
  const int64_t nr = 3, nq = 4, np_ = 5;
  Tensor A = random_tensor({nr, nq, np_}, 12);
  Tensor C4 = random_tensor({np_, np_}, 13);
  Tensor Ar = A.copy();
  Bindings args{{"A", A}, {"C4", C4}};
  rt::execute(*sdfg, args, {{"NR", nr}, {"NQ", nq}, {"NP", np_}});
  for (int64_t r = 0; r < nr; ++r) {
    for (int64_t q = 0; q < nq; ++q) {
      for (int64_t p = 0; p < np_; ++p) {
        double acc = 0;
        for (int64_t s = 0; s < np_; ++s)
          acc += Ar.at({r, q, s}) * C4.at({s, p});
        EXPECT_NEAR(A.at({r, q, p}), acc, 1e-9);
      }
    }
  }
}

TEST(Executor, OuterProductGemver) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N, N], u1: dace.float64[N], v1: dace.float64[N]):
    A[:] = A + np.outer(u1, v1)
)");
  const int64_t n = 10;
  Tensor A = random_tensor({n, n}, 14);
  Tensor u1 = random_tensor({n}, 15);
  Tensor v1 = random_tensor({n}, 16);
  Tensor ref = rt::ops::add(A, rt::ops::outer(u1, v1));
  Bindings args{{"A", A}, {"u1", u1}, {"v1", v1}};
  rt::execute(*sdfg, args, {{"N", n}});
  EXPECT_TRUE(rt::allclose(A, ref));
}

TEST(Executor, SymbolsInTaskletExpressions) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N]):
    for i in dace.map[0:N]:
        A[i] = 2.0 * i + 1.0
)");
  const int64_t n = 12;
  Tensor A(ir::DType::f64, {n});
  Bindings args{{"A", A}};
  rt::execute(*sdfg, args, {{"N", n}});
  for (int64_t i = 0; i < n; ++i) EXPECT_EQ(A.get_flat(i), 2.0 * i + 1.0);
}

TEST(Executor, MissingSymbolIsAnError) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N]):
    A[:] = A + 1.0
)");
  Tensor A(ir::DType::f64, {4});
  Bindings args{{"A", A}};
  EXPECT_THROW(rt::execute(*sdfg, args, {}), Error);
}

TEST(Executor, MissingArgumentIsAnError) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N]):
    A[:] = A + 1.0
)");
  Bindings args;
  EXPECT_THROW(rt::execute(*sdfg, args, {{"N", 4}}), Error);
}

TEST(Executor, StatsAreCollected) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N]):
    A[:] = A + 1.0
)");
  Tensor A(ir::DType::f64, {32});
  Bindings args{{"A", A}};
  rt::Executor ex(*sdfg);
  ex.run(args, {{"N", 32}});
  EXPECT_GE(ex.stats().flops, 32u);
  EXPECT_GE(ex.stats().loads, 32u);
  EXPECT_GE(ex.stats().stores, 32u);
  EXPECT_GE(ex.map_launches(), 1);
}

TEST(Executor, CancelCheckAbortsAndExecutorStaysReusable) {
  // Cooperative cancellation (sdfg-serve deadlines): a cancel_check that
  // trips mid-run aborts with a "cancelled" error, and the *same*
  // executor, tensors, and thread pool run cleanly once it clears.
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N], B: dace.float64[N]):
    for i in dace.map[0:N]:
        B[i] = 2.0 * A[i] + B[i]
)");
  const int64_t n = 1 << 16;
  Tensor A = random_tensor({n}, 11);
  Tensor B(ir::DType::f64, {n});
  Bindings args{{"A", A}, {"B", B}};

  std::atomic<bool> cancel{true};
  rt::ExecutorOptions opts;
  opts.cancel_check = [&] { return cancel.load(); };
  rt::Executor ex(*sdfg, opts);
  try {
    ex.run(args, {{"N", n}});
    FAIL() << "run must abort when cancel_check is armed";
  } catch (const dace::Error& e) {
    EXPECT_NE(std::string(e.what()).find("cancelled"), std::string::npos)
        << e.what();
  }

  // Disarm and rerun on the same executor: full, correct output.
  cancel.store(false);
  for (int64_t i = 0; i < n; ++i) B.set_flat(i, 0.0);
  ex.run(args, {{"N", n}});
  for (int64_t i = 0; i < n; i += 997)
    EXPECT_EQ(B.get_flat(i), 2.0 * A.get_flat(i));

  // A check that arms only after the first poll (so the run is already
  // past its first state boundary) must also abort -- and again leave
  // everything reusable.
  std::atomic<int> polls{0};
  opts.cancel_check = [&] { return polls.fetch_add(1) > 0; };
  rt::Executor ex2(*sdfg, opts);
  EXPECT_THROW(ex2.run(args, {{"N", n}}), dace::Error);
  opts.cancel_check = nullptr;
  rt::Executor ex3(*sdfg, opts);
  for (int64_t i = 0; i < n; ++i) B.set_flat(i, 0.0);
  ex3.run(args, {{"N", n}});
  for (int64_t i = 0; i < n; i += 997)
    EXPECT_EQ(B.get_flat(i), 2.0 * A.get_flat(i));
}

// Parameterized sweep: the same program over many sizes (symbolic shape
// reuse, the AOT motivation from Section 2.2).
class ExecutorSizeSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(ExecutorSizeSweep, ScaleByTwo) {
  static auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N], B: dace.float64[N]):
    B[:] = A * 2.0
)");
  int64_t n = GetParam();
  Tensor A = random_tensor({n}, (unsigned)n);
  Tensor B(ir::DType::f64, {n});
  Bindings args{{"A", A}, {"B", B}};
  rt::execute(*sdfg, args, {{"N", n}});
  for (int64_t i = 0; i < n; ++i)
    EXPECT_EQ(B.get_flat(i), 2.0 * A.get_flat(i));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ExecutorSizeSweep,
                         ::testing::Values(1, 2, 3, 7, 64, 1000));

}  // namespace
}  // namespace dace
