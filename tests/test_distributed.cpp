// Distributed substrate tests: simMPI semantics, PBLAS, the Table-2
// distributed kernels vs. the shared-memory reference, the explicit
// local-view DSL path (Section 4.3), and the implicit distribution
// transformations (Sections 4.1-4.2).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>

#include "distributed/dasklike.hpp"
#include "distributed/dist_executor.hpp"
#include "distributed/dist_kernels.hpp"
#include "distributed/dist_transforms.hpp"
#include "distributed/pblas.hpp"
#include "frontend/lowering.hpp"
#include "frontend/parser.hpp"
#include "kernels/suite.hpp"
#include "runtime/tensor_ops.hpp"
#include "transforms/map_fusion.hpp"
#include "transforms/simplify.hpp"

namespace dace {
namespace {

using dist::Comm;
using dist::NetModel;
using dist::World;
using rt::Bindings;
using rt::Tensor;

TEST(SimMpi, PointToPointMovesData) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      double data[3] = {1, 2, 3};
      c.send(data, 3, 1, 7);
    } else {
      double buf[3] = {0, 0, 0};
      c.recv(buf, 3, 0, 7);
      EXPECT_EQ(buf[2], 3.0);
    }
  });
  EXPECT_EQ(w.total_messages(), 1);
  EXPECT_EQ(w.total_bytes(), 24);
  EXPECT_GT(w.max_clock(), 0.0);
}

TEST(SimMpi, VectorDatatypeStrides) {
  World w(2);
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      // 3 blocks of 2, stride 4: elements 0,1, 4,5, 8,9.
      double data[12];
      for (int i = 0; i < 12; ++i) data[i] = i;
      c.send_vector(data, 3, 2, 4, 1, 1);
    } else {
      double buf[12] = {0};
      c.recv_vector(buf, 3, 2, 4, 0, 1);
      EXPECT_EQ(buf[0], 0.0);
      EXPECT_EQ(buf[4], 4.0);
      EXPECT_EQ(buf[9], 9.0);
    }
  });
}

TEST(SimMpi, CollectivesComputeAndAdvanceClocks) {
  const int P = 4;
  World w(P);
  std::vector<double> gathered(P, 0);
  w.run([&](Comm& c) {
    double v = 1.0 + c.rank();
    double sum = v;
    c.allreduce_sum(&sum, 1);
    EXPECT_DOUBLE_EQ(sum, 10.0);
    double root_buf[P];
    c.gather(&v, root_buf, 1, 0);
    if (c.rank() == 0) {
      for (int i = 0; i < P; ++i) EXPECT_DOUBLE_EQ(root_buf[i], 1.0 + i);
    }
    double bc = c.rank() == 2 ? 42.0 : 0.0;
    c.bcast(&bc, 1, 2);
    EXPECT_DOUBLE_EQ(bc, 42.0);
  });
  EXPECT_GT(w.max_clock(), 0.0);
}

TEST(SimMpi, ScatterDistributesBlocks) {
  const int P = 4;
  World w(P);
  std::vector<double> src(P * 2);
  for (size_t i = 0; i < src.size(); ++i) src[i] = (double)i;
  w.run([&](Comm& c) {
    double mine[2] = {-1, -1};
    c.scatter(src.data(), mine, 2, 0);
    EXPECT_DOUBLE_EQ(mine[0], 2.0 * c.rank());
    EXPECT_DOUBLE_EQ(mine[1], 2.0 * c.rank() + 1);
  });
}

TEST(Pblas, RingGemmMatchesLocal) {
  const int P = 3;
  const int64_t m = 9, k = 7, n = 6;
  Tensor A(ir::DType::f64, {m, k});
  Tensor B(ir::DType::f64, {k, n});
  kernels::fill_pattern(A, 1);
  kernels::fill_pattern(B, 2);
  Tensor ref = rt::ops::matmul(A, B);
  Tensor C(ir::DType::f64, {m, n});
  World w(P);
  dist::NodeModel node;
  w.run([&](Comm& c) {
    Tensor a_rows = dist::local_rows(A, P, c.rank());
    int64_t nb = dist::block_size(n, P);
    Tensor b_col(ir::DType::f64, {k, nb});
    for (int64_t i = 0; i < k; ++i) {
      for (int64_t j = 0; j < nb; ++j) {
        int64_t gj = c.rank() * nb + j;
        if (gj < n) b_col.at({i, j}) = B.at({i, gj});
      }
    }
    int64_t mb = dist::block_size(m, P);
    Tensor c_rows(ir::DType::f64, {mb, nb * P});
    dist::pgemm(c, dist::Grid2D::square(P), node, a_rows, b_col, c_rows);
    for (int64_t i = 0; i < mb; ++i) {
      int64_t gi = c.rank() * mb + i;
      if (gi >= m) break;
      for (int64_t j = 0; j < n; ++j) C.at({gi, j}) = c_rows.at({i, j});
    }
  });
  EXPECT_TRUE(rt::allclose(C, ref, 1e-9, 1e-12));
}

// Every Table-2 kernel, distributed, must reproduce the shared-memory
// reference at several rank counts.
class DistKernels
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(DistKernels, MatchesReference) {
  const auto& [name, P] = GetParam();
  const kernels::Kernel& k = kernels::kernel(name);
  const sym::SymbolMap& sizes = k.presets.at("test");
  Bindings ref = k.init(sizes);
  k.reference(ref, sizes);

  World w(P);
  Bindings out;
  dist::DistResult res = dist::run_dist_kernel(name, w, sizes,
                                               dist::NodeModel(), &out);
  for (const auto& o : k.outputs) {
    EXPECT_TRUE(rt::allclose(out.at(o), ref.at(o), 1e-9, 1e-11))
        << name << " P=" << P << " output " << o << " max diff "
        << rt::max_abs_diff(out.at(o), ref.at(o));
  }
  EXPECT_GT(res.time_s, 0.0);
  if (P > 1 && name != "doitgen") EXPECT_GT(res.bytes, 0);
}

INSTANTIATE_TEST_SUITE_P(
    All, DistKernels,
    ::testing::Combine(::testing::ValuesIn(dist::distributed_kernels()),
                       ::testing::Values(1, 2, 4)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_p" +
             std::to_string(std::get<1>(info.param));
    });

TEST(DistKernels, WeakScalingBeatsTaskingBaselines) {
  // gesummv at 4 ranks: DaCe-style MPI should be far faster than the
  // dask-like baseline (TCP + central scheduler).
  const auto& k = kernels::kernel("gesummv");
  sym::SymbolMap sizes{{"N", 64}};
  World w(4);
  dist::DistResult dace_res =
      dist::run_dist_kernel("gesummv", w, sizes, dist::NodeModel(), nullptr);
  Bindings args = k.init(sizes);
  fe::Module m = fe::parse(k.source);
  dist::TaskingResult dask = dist::run_tasking(
      m.functions[0], args, sizes, 4, dist::TaskingModel::dask());
  EXPECT_LT(dace_res.time_s, dask.time_s);
}

TEST(Tasking, BaselinesComputeCorrectValues) {
  const auto& k = kernels::kernel("gemm");
  const sym::SymbolMap& sizes = k.presets.at("test");
  Bindings ref = k.init(sizes);
  k.reference(ref, sizes);
  for (auto model : {dist::TaskingModel::dask(), dist::TaskingModel::legate()}) {
    Bindings args = k.init(sizes);
    fe::Module m = fe::parse(k.source);
    auto res = dist::run_tasking(m.functions[0], args, sizes, 4, model);
    EXPECT_TRUE(rt::allclose(args.at("C"), ref.at("C"), 1e-9, 1e-11));
    EXPECT_GT(res.tasks, 0);
  }
}

TEST(Tasking, DaskSchedulerSerializesWithWorkers) {
  const auto& k = kernels::kernel("jacobi_1d");
  sym::SymbolMap sizes{{"N", 512}, {"TSTEPS", 4}};
  fe::Module m = fe::parse(k.source);
  double t4, t16;
  {
    Bindings args = k.init(sizes);
    t4 = dist::run_tasking(m.functions[0], args, sizes, 4,
                           dist::TaskingModel::dask())
             .time_s;
  }
  {
    Bindings args = k.init(sizes);
    t16 = dist::run_tasking(m.functions[0], args, sizes, 16,
                            dist::TaskingModel::dask())
              .time_s;
  }
  // More workers => more scheduler work: no speedup on this size.
  EXPECT_GE(t16, t4 * 0.9);
}

// ---------------------------------------------------------------------------
// Explicit local-view programming (Section 4.3)
// ---------------------------------------------------------------------------

constexpr const char* kJacobiDistSrc = R"(
@dace.program
def half_step(inpbuf: dace.float64[lNx + 2, lNy + 2],
              outbuf: dace.float64[lNx + 2, lNy + 2]):
    req = np.empty((8,), dtype=MPI_Request)
    dace.comm.Isend(inpbuf[1, 1:-1], nn, 0, req[0])
    dace.comm.Isend(inpbuf[lNx, 1:-1], ns, 1, req[1])
    dace.comm.Isend(inpbuf[1:-1, 1], nw, 2, req[2])
    dace.comm.Isend(inpbuf[1:-1, lNy], ne, 3, req[3])
    dace.comm.Irecv(inpbuf[0, 1:-1], nn, 1, req[4])
    dace.comm.Irecv(inpbuf[lNx + 1, 1:-1], ns, 0, req[5])
    dace.comm.Irecv(inpbuf[1:-1, 0], nw, 3, req[6])
    dace.comm.Irecv(inpbuf[1:-1, lNy + 1], ne, 2, req[7])
    dace.comm.Waitall(req)
    outbuf[1+noff:lNx+1-soff, 1+woff:lNy+1-eoff] = 0.2 * (
        inpbuf[1+noff:lNx+1-soff, 1+woff:lNy+1-eoff] +
        inpbuf[noff:lNx-soff, 1+woff:lNy+1-eoff] +
        inpbuf[2+noff:lNx+2-soff, 1+woff:lNy+1-eoff] +
        inpbuf[1+noff:lNx+1-soff, woff:lNy-eoff] +
        inpbuf[1+noff:lNx+1-soff, 2+woff:lNy+2-eoff])

@dace.program
def j2d_dist(TSTEPS: dace.int32, A: dace.float64[N, N],
             B: dace.float64[N, N]):
    lA = np.zeros((lNx + 2, lNy + 2), dtype=A.dtype)
    lB = np.zeros((lNx + 2, lNy + 2), dtype=B.dtype)
    lA[1:-1, 1:-1] = dace.comm.BlockScatter(A)
    lB[1:-1, 1:-1] = dace.comm.BlockScatter(B)
    for t in range(1, TSTEPS):
        half_step(lA, lB)
        half_step(lB, lA)
    A[:] = dace.comm.BlockGather(lA[1:-1, 1:-1])
    B[:] = dace.comm.BlockGather(lB[1:-1, 1:-1])
)";

TEST(LocalView, ExplicitJacobi2dMatchesReference) {
  const int64_t n = 16, tsteps = 4;
  const int P = 4;  // 2x2 grid
  auto sdfg = fe::compile_to_sdfg(kJacobiDistSrc, "j2d_dist");

  // Reference.
  Bindings ref;
  ref.emplace("A", Tensor(ir::DType::f64, {n, n}));
  ref.emplace("B", Tensor(ir::DType::f64, {n, n}));
  kernels::fill_pattern(ref.at("A"), 1);
  kernels::fill_pattern(ref.at("B"), 2);
  Bindings shared;
  shared.emplace("A", ref.at("A").copy());
  shared.emplace("B", ref.at("B").copy());
  kernels::kernel("jacobi_2d")
      .reference(ref, {{"N", n}, {"TSTEPS", tsteps}});

  World w(P);
  dist::Grid2D grid = dist::Grid2D::square(P);
  auto rank_syms = [&](int rank, int world_p) {
    (void)world_p;
    int px = grid.row_of(rank), py = grid.col_of(rank);
    sym::SymbolMap s;
    s["N"] = n;
    s["TSTEPS"] = tsteps;
    s["lNx"] = n / grid.Pr;
    s["lNy"] = n / grid.Pc;
    s["nn"] = px > 0 ? grid.rank_of(px - 1, py) : -1;
    s["ns"] = px + 1 < grid.Pr ? grid.rank_of(px + 1, py) : -1;
    s["nw"] = py > 0 ? grid.rank_of(px, py - 1) : -1;
    s["ne"] = py + 1 < grid.Pc ? grid.rank_of(px, py + 1) : -1;
    s["noff"] = px == 0 ? 1 : 0;
    s["soff"] = px + 1 == grid.Pr ? 1 : 0;
    s["woff"] = py == 0 ? 1 : 0;
    s["eoff"] = py + 1 == grid.Pc ? 1 : 0;
    return s;
  };
  auto res = dist::run_distributed_sdfg(w, *sdfg, shared, rank_syms);
  EXPECT_TRUE(rt::allclose(shared.at("A"), ref.at("A"), 1e-9, 1e-11))
      << rt::max_abs_diff(shared.at("A"), ref.at("A"));
  EXPECT_TRUE(rt::allclose(shared.at("B"), ref.at("B"), 1e-9, 1e-11));
  EXPECT_GT(res.messages, 0);
  EXPECT_GT(res.time_s, 0.0);
}

// ---------------------------------------------------------------------------
// Implicit distribution transformations (Sections 4.1-4.2)
// ---------------------------------------------------------------------------

TEST(DistTransforms, ElementwiseScatterComputeGather) {
  auto sdfg = fe::compile_to_sdfg(R"(
@dace.program
def f(x: dace.float64[N], y: dace.float64[N], out: dace.float64[N]):
    out[:] = 2.0 * x + y
)");
  xf::simplify(*sdfg);
  // Fuse into a single elementwise map first.
  while (xf::map_fusion(*sdfg)) {
  }
  xf::simplify(*sdfg);
  int applied = xf::apply_repeated(*sdfg, dist::distribute_elementwise);
  EXPECT_GE(applied, 1);
  int scatters = 0, gathers = 0;
  for (int sid : sdfg->state_ids()) {
    for (int nid : sdfg->state(sid).node_ids()) {
      if (const auto* l =
              sdfg->state(sid).node_as<const ir::LibraryNode>(nid)) {
        scatters += l->op == "comm::Scatter1D";
        gathers += l->op == "comm::Gather1D";
      }
    }
  }
  EXPECT_GE(scatters, 2);
  EXPECT_EQ(gathers, 1);

  // Execute distributed and compare.
  const int64_t n = 37;
  Bindings shared;
  shared.emplace("x", Tensor(ir::DType::f64, {n}));
  shared.emplace("y", Tensor(ir::DType::f64, {n}));
  shared.emplace("out", Tensor(ir::DType::f64, {n}));
  kernels::fill_pattern(shared.at("x"), 3);
  kernels::fill_pattern(shared.at("y"), 4);
  Tensor expect = rt::ops::add(
      rt::ops::mul(Tensor::scalar(2.0), shared.at("x")), shared.at("y"));
  World w(3);
  dist::run_distributed_sdfg(w, *sdfg, shared, [&](int, int P) {
    return sym::SymbolMap{{"N", n}, {"__P", P}};
  });
  EXPECT_TRUE(rt::allclose(shared.at("out"), expect, 1e-12, 1e-12));
}

TEST(DistTransforms, RedundantCommElimination) {
  // Two chained elementwise ops: distributing both leaves a gather
  // immediately followed by a scatter on the transient (Fig. 11); the
  // elimination removes the pair.
  auto sdfg = fe::compile_to_sdfg(R"(
@dace.program
def f(x: dace.float64[N], out: dace.float64[N]):
    t = np.zeros((N,), dtype=x.dtype)
    t[:] = x * 3.0
    out[:] = t + 1.0
)");
  // Operate on the -O0 translation: one state per operation, so the
  // per-op distributions produce the redundant gather/scatter pairs.
  int applied = xf::apply_repeated(*sdfg, dist::distribute_elementwise);
  EXPECT_GE(applied, 2);
  int removed = xf::apply_repeated(*sdfg, dist::remove_redundant_comm);
  EXPECT_GE(removed, 1);
  sdfg->validate();

  const int64_t n = 20;
  Bindings shared;
  shared.emplace("x", Tensor(ir::DType::f64, {n}));
  shared.emplace("out", Tensor(ir::DType::f64, {n}));
  kernels::fill_pattern(shared.at("x"), 5);
  World w(4);
  dist::run_distributed_sdfg(w, *sdfg, shared, [&](int, int P) {
    return sym::SymbolMap{{"N", n}, {"__P", P}};
  });
  for (int64_t i = 0; i < n; ++i) {
    EXPECT_NEAR(shared.at("out").get_flat(i),
                shared.at("x").get_flat(i) * 3.0 + 1.0, 1e-12);
  }
}

// ---------------------------------------------------------------------------
// Chaos: seeded fault injection, timeouts, degradation, replay
// (distributed/faults.hpp).  The whole suite runs under several seeds via
// `ctest -L chaos` (DACE_FAULT_SEED), so assertions must hold for ANY
// seed, not just the default.
// ---------------------------------------------------------------------------

uint64_t chaos_seed() {
  if (const char* e = std::getenv("DACE_FAULT_SEED")) {
    return std::strtoull(e, nullptr, 10);
  }
  return 42;
}

TEST(ChaosPlan, ParseRoundTrip) {
  dist::FaultPlan p = dist::FaultPlan::parse(
      "seed=9,drop=0.25,dup=0.1,reorder=0.05,delay=0.2,delay_s=0.001,"
      "stall_rank=1,stall_at=3,stall_s=0.5,crash_rank=2,crash_at=7");
  EXPECT_EQ(p.seed, 9u);
  EXPECT_DOUBLE_EQ(p.drop_prob, 0.25);
  EXPECT_DOUBLE_EQ(p.dup_prob, 0.1);
  EXPECT_DOUBLE_EQ(p.reorder_prob, 0.05);
  EXPECT_DOUBLE_EQ(p.delay_prob, 0.2);
  EXPECT_DOUBLE_EQ(p.delay_s, 0.001);
  EXPECT_EQ(p.stall_rank, 1);
  EXPECT_EQ(p.stall_at_op, 3);
  EXPECT_DOUBLE_EQ(p.stall_s, 0.5);
  EXPECT_EQ(p.crash_rank, 2);
  EXPECT_EQ(p.crash_at_op, 7);
  EXPECT_TRUE(p.active());

  dist::FaultPlan q = dist::FaultPlan::parse(p.to_string());
  EXPECT_EQ(q.to_string(), p.to_string());

  EXPECT_FALSE(dist::FaultPlan().active());
  EXPECT_THROW(dist::FaultPlan::parse("drop"), Error);
  EXPECT_THROW(dist::FaultPlan::parse("bogus=1"), Error);
  EXPECT_THROW(dist::FaultPlan::parse("drop=x"), Error);
}

TEST(ChaosPlan, DecisionsAreDeterministicInSeed) {
  dist::FaultPlan p;
  p.seed = chaos_seed();
  p.drop_prob = 0.3;
  p.dup_prob = 0.2;
  // Same coordinates, same verdict -- and across the channel the verdicts
  // are not all identical (the draw actually depends on the coordinates).
  bool saw_fault = false, saw_none = false;
  for (uint64_t seq = 0; seq < 200; ++seq) {
    dist::FaultKind a = p.decide_message(0, 1, 5, seq, 0);
    dist::FaultKind b = p.decide_message(0, 1, 5, seq, 0);
    EXPECT_EQ(a, b);
    (a == dist::FaultKind::None ? saw_none : saw_fault) = true;
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(saw_none);
}

TEST(ChaosDrop, JacobiRetriesStayBitIdentical) {
  // ~1300 halo messages at 1% drop: retransmissions are all but certain
  // for any seed, results must not change by a single bit, and the
  // backoff must show up in the modeled time (the Fig. 12 penalty).
  sym::SymbolMap sizes{{"N", 400}, {"TSTEPS", 160}};
  const kernels::Kernel& k = kernels::kernel("jacobi_1d");

  World clean(4);
  Bindings clean_out;
  dist::DistResult clean_res =
      dist::run_dist_kernel("jacobi_1d", clean, sizes, dist::NodeModel(),
                            &clean_out);
  ASSERT_EQ(clean.total_retries(), 0);
  ASSERT_TRUE(clean.fault_events().empty());

  World chaos(4);
  dist::FaultPlan plan;
  plan.seed = chaos_seed();
  plan.drop_prob = 0.01;
  chaos.set_fault_plan(plan);
  Bindings chaos_out;
  dist::DistResult chaos_res =
      dist::run_dist_kernel("jacobi_1d", chaos, sizes, dist::NodeModel(),
                            &chaos_out);

  EXPECT_GT(chaos.total_retries(), 0);
  for (const auto& o : k.outputs) {
    EXPECT_TRUE(rt::allclose(chaos_out.at(o), clean_out.at(o), 0, 0))
        << "output '" << o << "' not bit-identical under drops";
  }
  EXPECT_GT(chaos_res.time_s, clean_res.time_s)
      << "retry backoff must be charged to the virtual clock";
  // Every retransmission stems from a recorded drop.
  int64_t drops = 0;
  for (const auto& e : chaos.fault_events()) {
    if (e.kind == dist::FaultKind::Drop) ++drops;
  }
  EXPECT_GE(drops, chaos.total_retries());
}

TEST(ChaosDrop, GemmRingSurvivesDrops) {
  const kernels::Kernel& k = kernels::kernel("gemm");
  const sym::SymbolMap& sizes = k.presets.at("test");

  World clean(4);
  Bindings clean_out;
  dist::run_dist_kernel("gemm", clean, sizes, dist::NodeModel(), &clean_out);

  World chaos(4);
  dist::FaultPlan plan;
  plan.seed = chaos_seed();
  plan.drop_prob = 0.05;
  chaos.set_fault_plan(plan);
  Bindings chaos_out;
  dist::run_dist_kernel("gemm", chaos, sizes, dist::NodeModel(), &chaos_out);

  for (const auto& o : k.outputs) {
    EXPECT_TRUE(rt::allclose(chaos_out.at(o), clean_out.at(o), 0, 0))
        << "output '" << o << "' not bit-identical under drops";
  }
}

TEST(ChaosDupReorder, NoCorruptionOnStencil) {
  // Duplicated, reordered and delayed halo messages must be absorbed by
  // the sequence-numbered channels without corrupting the stencil.
  const kernels::Kernel& k = kernels::kernel("jacobi_2d");
  const sym::SymbolMap& sizes = k.presets.at("test");

  World clean(4);
  Bindings clean_out;
  dist::run_dist_kernel("jacobi_2d", clean, sizes, dist::NodeModel(),
                        &clean_out);

  World chaos(4);
  dist::FaultPlan plan;
  plan.seed = chaos_seed();
  plan.dup_prob = 0.2;
  plan.reorder_prob = 0.2;
  plan.delay_prob = 0.2;
  chaos.set_fault_plan(plan);
  Bindings chaos_out;
  dist::run_dist_kernel("jacobi_2d", chaos, sizes, dist::NodeModel(),
                        &chaos_out);

  EXPECT_FALSE(chaos.fault_events().empty());
  EXPECT_EQ(chaos.total_retries(), 0);  // nothing was dropped
  for (const auto& o : k.outputs) {
    EXPECT_TRUE(rt::allclose(chaos_out.at(o), clean_out.at(o), 0, 0))
        << "output '" << o << "' corrupted by duplicate/reorder/delay";
  }
}

TEST(ChaosStall, TimeoutNamesStalledPeer) {
  // Rank 1 goes silent before its first send; rank 0's recv deadline
  // turns the would-be hang into a CommTimeout naming rank, peer and tag.
  World w(2);
  dist::CommConfig cfg;
  cfg.timeout_s = 0.05;
  w.set_comm_config(cfg);
  dist::FaultPlan plan;
  plan.seed = chaos_seed();
  plan.stall_rank = 1;
  plan.stall_at_op = 0;
  plan.stall_s = 0.5;
  w.set_fault_plan(plan);

  try {
    w.run([](Comm& c) {
      if (c.rank() == 0) {
        double buf[4];
        c.recv(buf, 4, 1, 3);
      } else {
        double data[4] = {1, 2, 3, 4};
        c.send(data, 4, 0, 3);
      }
    });
    FAIL() << "expected DistError";
  } catch (const dist::DistError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("timed out"), std::string::npos) << msg;
    EXPECT_NE(msg.find("rank 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("peer 1"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tag 3"), std::string::npos) << msg;
    ASSERT_EQ(e.failures().size(), 1u);
    EXPECT_EQ(e.failures()[0].rank, 0);
  }
  std::vector<int> failed = w.failed_ranks();
  EXPECT_NE(std::find(failed.begin(), failed.end(), 0), failed.end());
  // The stall itself is in the fault log.
  bool stalled = false;
  for (const auto& e : w.fault_events()) {
    if (e.kind == dist::FaultKind::Stall && e.rank == 1) stalled = true;
  }
  EXPECT_TRUE(stalled);
}

TEST(ChaosCrash, TolerantAllreduceReformsOverSurvivors) {
  // Rank 2 crashes before contributing; allreduce is algebraically
  // tolerant, so the survivors' sum completes over {0, 1, 3}.
  const int P = 4;
  World w(P);
  dist::FaultPlan plan;
  plan.seed = chaos_seed();
  plan.crash_rank = 2;
  plan.crash_at_op = 0;
  w.set_fault_plan(plan);

  std::vector<double> sums(P, 0.0);
  try {
    w.run([&](Comm& c) {
      double v = 1.0 + c.rank();
      c.allreduce_sum(&v, 1);
      sums[(size_t)c.rank()] = v;
    });
    FAIL() << "expected DistError";
  } catch (const dist::DistError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("injected crash on rank 2"), std::string::npos) << msg;
    ASSERT_EQ(e.failures().size(), 1u);
    EXPECT_EQ(e.failures()[0].rank, 2);
  }
  EXPECT_EQ(w.failed_ranks(), std::vector<int>{2});
  for (int r : {0, 1, 3}) {
    EXPECT_DOUBLE_EQ(sums[(size_t)r], 1.0 + 2.0 + 4.0)
        << "rank " << r << " did not re-form over the survivors";
  }
}

TEST(ChaosCrash, IntolerantBcastFailsFast) {
  // The bcast root crashes before publishing: the survivors cannot get
  // complete data, so they must fail fast with a PeerFailed diagnosis
  // instead of hanging or broadcasting garbage.
  const int P = 4;
  World w(P);
  dist::FaultPlan plan;
  plan.seed = chaos_seed();
  plan.crash_rank = 0;
  plan.crash_at_op = 0;
  w.set_fault_plan(plan);

  try {
    w.run([](Comm& c) {
      double buf[4] = {0, 0, 0, 0};
      if (c.rank() == 0) {
        for (int i = 0; i < 4; ++i) buf[i] = 10.0 + i;
      }
      c.bcast(buf, 4, 0);
    });
    FAIL() << "expected DistError";
  } catch (const dist::DistError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("injected crash on rank 0"), std::string::npos) << msg;
    EXPECT_NE(msg.find("cannot complete"), std::string::npos) << msg;
    EXPECT_EQ(e.failures().size(), (size_t)P)
        << "all survivors must diagnose the dead root";
  }
}

TEST(ChaosCrash, PointToPointDetectsDeadPeer) {
  // A recv posted to a crashed rank reports PeerFailed instead of waiting
  // out the full timeout.
  World w(2);
  dist::FaultPlan plan;
  plan.seed = chaos_seed();
  plan.crash_rank = 1;
  plan.crash_at_op = 0;
  w.set_fault_plan(plan);

  try {
    w.run([](Comm& c) {
      if (c.rank() == 0) {
        double buf[2];
        c.recv(buf, 2, 1, 9);
      } else {
        double data[2] = {1, 2};
        c.send(data, 2, 0, 9);
      }
    });
    FAIL() << "expected DistError";
  } catch (const dist::DistError& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("peer 1 has failed"), std::string::npos) << msg;
    EXPECT_NE(msg.find("tag 9"), std::string::npos) << msg;
  }
}

TEST(ChaosReplay, SameSeedSameFaults) {
  // The whole point of the seeded plan: a chaos run is reproducible.
  sym::SymbolMap sizes{{"N", 200}, {"TSTEPS", 40}};
  dist::FaultPlan plan;
  plan.seed = chaos_seed();
  plan.drop_prob = 0.02;
  plan.dup_prob = 0.05;

  auto run_once = [&] {
    World w(4);
    w.set_fault_plan(plan);
    dist::run_dist_kernel("jacobi_1d", w, sizes, dist::NodeModel(), nullptr);
    std::vector<std::string> ev;
    for (const auto& e : w.fault_events()) ev.push_back(e.to_string());
    // Injection interleaving across rank threads is nondeterministic;
    // the per-channel decisions are not.
    std::sort(ev.begin(), ev.end());
    return ev;
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(ChaosTrace, RecordsMessageSchedule) {
  World w(2);
  w.enable_trace("");  // in-memory
  w.run([](Comm& c) {
    if (c.rank() == 0) {
      double d[3] = {1, 2, 3};
      c.send(d, 3, 1, 7);
    } else {
      double b[3];
      c.recv(b, 3, 0, 7);
    }
    c.barrier();
  });
  const auto& lines = w.trace_lines();
  // Header + send + recv + one barrier line per rank.
  ASSERT_EQ(lines.size(), 5u);
  EXPECT_EQ(lines[0].rfind("# dacepp-comm-trace v1", 0), 0u) << lines[0];
  EXPECT_NE(lines[0].find("nranks=2"), std::string::npos);
  int sends = 0, recvs = 0, colls = 0;
  std::string send_line;
  for (size_t i = 1; i < lines.size(); ++i) {
    if (lines[i].rfind("send ", 0) == 0) ++sends, send_line = lines[i];
    if (lines[i].rfind("recv ", 0) == 0) ++recvs;
    if (lines[i].rfind("coll ", 0) == 0) ++colls;
  }
  EXPECT_EQ(sends, 1);
  EXPECT_EQ(recvs, 1);
  EXPECT_EQ(colls, 2);
  // send <rank> <peer> <tag> <count> <block> <stride>; Comm::send maps to
  // one block of n contiguous elements.
  EXPECT_EQ(send_line, "send 0 1 7 1 3 3") << send_line;
}

TEST(ChaosExecutor, LocalViewHaloSurvivesDropsAndReportsRetries) {
  // The SDFG-level entry point plumbs the fault plan through to the
  // explicit local-view halo exchange (real Isend/Waitall traffic) and
  // surfaces retry/fault counts in its result (Fig. 12-style sweeps).
  const int64_t n = 16, tsteps = 4;
  const int P = 4;
  auto sdfg = fe::compile_to_sdfg(kJacobiDistSrc, "j2d_dist");
  dist::Grid2D grid = dist::Grid2D::square(P);
  auto rank_syms = [&](int rank, int world_p) {
    (void)world_p;
    int px = grid.row_of(rank), py = grid.col_of(rank);
    sym::SymbolMap s;
    s["N"] = n;
    s["TSTEPS"] = tsteps;
    s["lNx"] = n / grid.Pr;
    s["lNy"] = n / grid.Pc;
    s["nn"] = px > 0 ? grid.rank_of(px - 1, py) : -1;
    s["ns"] = px + 1 < grid.Pr ? grid.rank_of(px + 1, py) : -1;
    s["nw"] = py > 0 ? grid.rank_of(px, py - 1) : -1;
    s["ne"] = py + 1 < grid.Pc ? grid.rank_of(px, py + 1) : -1;
    s["noff"] = px == 0 ? 1 : 0;
    s["soff"] = px + 1 == grid.Pr ? 1 : 0;
    s["woff"] = py == 0 ? 1 : 0;
    s["eoff"] = py + 1 == grid.Pc ? 1 : 0;
    return s;
  };
  auto make_inputs = [&] {
    Bindings b;
    b.emplace("A", Tensor(ir::DType::f64, {n, n}));
    b.emplace("B", Tensor(ir::DType::f64, {n, n}));
    kernels::fill_pattern(b.at("A"), 1);
    kernels::fill_pattern(b.at("B"), 2);
    return b;
  };

  Bindings clean_b = make_inputs();
  World clean(P);
  dist::DistRunResult clean_res =
      dist::run_distributed_sdfg(clean, *sdfg, clean_b, rank_syms);
  EXPECT_EQ(clean_res.retries, 0);
  EXPECT_EQ(clean_res.faults, 0);

  dist::FaultPlan plan;
  plan.seed = chaos_seed();
  plan.drop_prob = 0.15;
  Bindings chaos_b = make_inputs();
  World chaos(P);
  dist::CommConfig cfg;
  cfg.max_retries = 8;  // 15% loss per hop: keep permanent loss negligible
  chaos.set_comm_config(cfg);
  dist::DistRunResult chaos_res =
      dist::run_distributed_sdfg(chaos, *sdfg, chaos_b, rank_syms,
                                 dist::NodeModel(), &plan);

  EXPECT_GT(chaos_res.faults, 0);
  EXPECT_GT(chaos_res.retries, 0);
  EXPECT_GT(chaos_res.time_s, clean_res.time_s);
  EXPECT_TRUE(rt::allclose(chaos_b.at("A"), clean_b.at("A"), 0, 0));
  EXPECT_TRUE(rt::allclose(chaos_b.at("B"), clean_b.at("B"), 0, 0));
}

}  // namespace
}  // namespace dace
