// Transformation tests: each transformation must (a) fire on its pattern,
// (b) refuse unsafe cases, and (c) preserve program semantics -- checked
// by executing before/after and comparing results.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <optional>
#include <random>
#include <thread>

#include "frontend/lowering.hpp"
#include "runtime/executor.hpp"
#include "runtime/tensor_ops.hpp"
#include "transforms/auto_optimize.hpp"
#include "transforms/loop_to_map.hpp"
#include "transforms/map_fusion.hpp"
#include "transforms/map_transforms.hpp"
#include "transforms/memory.hpp"
#include "transforms/simplify.hpp"

namespace dace {
namespace {

using fe::compile_to_sdfg;
using rt::Bindings;
using rt::Tensor;

Tensor random_tensor(std::vector<int64_t> shape, unsigned seed) {
  std::mt19937 gen(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  Tensor t(ir::DType::f64, std::move(shape));
  for (int64_t i = 0; i < t.size(); ++i) t.set_flat(i, dist(gen));
  return t;
}

int count_nodes(const ir::SDFG& sdfg, ir::NodeKind kind) {
  int n = 0;
  for (int sid : sdfg.state_ids()) {
    for (int nid : sdfg.state(sid).node_ids())
      n += sdfg.state(sid).node(nid)->kind == kind;
  }
  return n;
}

int count_toplevel_maps(const ir::SDFG& sdfg) {
  int n = 0;
  for (int sid : sdfg.state_ids()) {
    const auto& st = sdfg.state(sid);
    for (int nid : st.node_ids()) {
      n += st.node(nid)->kind == ir::NodeKind::MapEntry &&
           st.scope_of(nid) == -1;
    }
  }
  return n;
}

/// Run both graphs on identical inputs; expect identical outputs.
void expect_equivalent(const ir::SDFG& a, const ir::SDFG& b,
                       const std::vector<std::pair<std::string,
                                                   std::vector<int64_t>>>&
                           args_spec,
                       const sym::SymbolMap& syms,
                       const std::vector<std::string>& outputs) {
  Bindings args_a, args_b;
  unsigned seed = 42;
  for (const auto& [name, shape] : args_spec) {
    Tensor t = random_tensor(shape, seed++);
    args_a.emplace(name, t.copy());
    args_b.emplace(name, t.copy());
  }
  rt::execute(a, args_a, syms);
  rt::execute(b, args_b, syms);
  for (const auto& out : outputs) {
    EXPECT_TRUE(rt::allclose(args_a.at(out), args_b.at(out), 1e-9, 1e-12))
        << "mismatch in output '" << out << "'";
  }
}

constexpr const char* kGemmSrc = R"(
@dace.program
def gemm(alpha: dace.float64, beta: dace.float64, C: dace.float64[NI, NJ],
         A: dace.float64[NI, NK], B: dace.float64[NK, NJ]):
    C[:] = alpha * A @ B + beta * C
)";

TEST(StateFusion, MergesOpChain) {
  auto sdfg = compile_to_sdfg(kGemmSrc);
  int before = sdfg->num_states();
  int fused = xf::apply_repeated(*sdfg, xf::state_fusion);
  EXPECT_GT(fused, 0);
  EXPECT_LT(sdfg->num_states(), before);
  EXPECT_NO_THROW(sdfg->validate());
}

TEST(StateFusion, PreservesSemantics) {
  auto base = compile_to_sdfg(kGemmSrc);
  auto fused = base->clone();
  xf::apply_repeated(*fused, xf::state_fusion);
  expect_equivalent(
      *base, *fused,
      {{"alpha", {}}, {"beta", {}}, {"C", {9, 11}}, {"A", {9, 7}},
       {"B", {7, 11}}},
      {{"NI", 9}, {"NJ", 11}, {"NK", 7}}, {"C"});
}

TEST(StateFusion, RejectsWarHazardAcrossStates) {
  // State 1 reads A into B; state 2 overwrites A: the two may not merge
  // without ordering (s1 has no write of A to serialize through).
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N], B: dace.float64[N]):
    B[:] = A + 1.0
    A[:] = 7.0
)");
  xf::apply_repeated(*sdfg, xf::state_fusion);
  // The two compute states must not have merged into one: check that no
  // single state both reads and overwrites A unorderedly -- semantics.
  auto base = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N], B: dace.float64[N]):
    B[:] = A + 1.0
    A[:] = 7.0
)");
  expect_equivalent(*base, *sdfg, {{"A", {33}}, {"B", {33}}}, {{"N", 33}},
                    {"A", "B"});
}

TEST(RedundantCopy, RemovesMaterializeThenCopy) {
  auto sdfg = compile_to_sdfg(kGemmSrc);
  xf::apply_repeated(*sdfg, xf::state_fusion);
  int before = count_toplevel_maps(*sdfg);
  int removed = xf::apply_repeated(*sdfg, xf::redundant_copy_removal);
  EXPECT_GT(removed, 0);
  EXPECT_LT(count_toplevel_maps(*sdfg), before);
  EXPECT_NO_THROW(sdfg->validate());
  auto base = compile_to_sdfg(kGemmSrc);
  expect_equivalent(
      *base, *sdfg,
      {{"alpha", {}}, {"beta", {}}, {"C", {9, 11}}, {"A", {9, 7}},
       {"B", {7, 11}}},
      {{"NI", 9}, {"NJ", 11}, {"NK", 7}}, {"C"});
}

TEST(MapFusion, FusesElementwiseChain) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N], B: dace.float64[N], out: dace.float64[N]):
    out[:] = (A + B) * (A - B) + 2.0
)");
  xf::simplify(*sdfg);
  int before = count_toplevel_maps(*sdfg);
  int fused = xf::apply_repeated(*sdfg, xf::map_fusion);
  EXPECT_GT(fused, 0);
  EXPECT_LT(count_toplevel_maps(*sdfg), before);
  auto base = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N], B: dace.float64[N], out: dace.float64[N]):
    out[:] = (A + B) * (A - B) + 2.0
)");
  expect_equivalent(*base, *sdfg, {{"A", {40}}, {"B", {40}}, {"out", {40}}},
                    {{"N", 40}}, {"out"});
}

TEST(MapFusion, FusesDownToSingleMapForElementwise) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(x: dace.float64[N], y: dace.float64[N]):
    y[:] = 2.0 * x + y * x - 3.0
)");
  xf::simplify(*sdfg);
  xf::apply_repeated(*sdfg, xf::map_fusion);
  xf::simplify(*sdfg);
  EXPECT_EQ(count_toplevel_maps(*sdfg), 1);
}

TEST(MapFusion, RefusesStencilNeighborReads) {
  // Consumer reads tmp at i-1, i, i+1: not a per-iteration element match.
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N], B: dace.float64[N]):
    tmp = np.zeros((N,), dtype=A.dtype)
    tmp[:] = A * 2.0
    B[1:-1] = tmp[:-2] + tmp[1:-1] + tmp[2:]
)");
  xf::simplify(*sdfg);
  auto base = sdfg->clone();
  (void)xf::apply_repeated(*sdfg, xf::map_fusion);
  // Whether or not some maps fused, semantics must hold and the stencil
  // read must not be fused into the producer of tmp.
  expect_equivalent(*base, *sdfg, {{"A", {24}}, {"B", {24}}}, {{"N", 24}},
                    {"B"});
}

TEST(LoopToMap, ConvertsParallelLoop) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(C: dace.float64[NI]):
    for i in range(NI):
        C[i] += 1.0
)");
  xf::simplify(*sdfg);
  int converted = xf::apply_repeated(*sdfg, xf::loop_to_map);
  EXPECT_EQ(converted, 1);
  EXPECT_GE(count_toplevel_maps(*sdfg), 1);
  Tensor C = random_tensor({17}, 3);
  Tensor ref = rt::ops::add(C, Tensor::scalar(1.0));
  Bindings args{{"C", C}};
  rt::execute(*sdfg, args, {{"NI", 17}});
  EXPECT_TRUE(rt::allclose(C, ref));
}

TEST(LoopToMap, RefusesSequentialDependence) {
  // B[i] depends on B[i-1]: the loop carries a dependence.
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(B: dace.float64[N]):
    for i in range(1, N):
        B[i] = B[i-1] + 1.0
)");
  xf::simplify(*sdfg);
  EXPECT_EQ(xf::apply_repeated(*sdfg, xf::loop_to_map), 0);
}

TEST(LoopToMap, RefusesTimeSteppedStencil) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(TSTEPS: dace.int32, A: dace.float64[N], B: dace.float64[N]):
    for t in range(1, TSTEPS):
        B[1:-1] = 0.5 * (A[:-2] + A[2:])
        A[1:-1] = 0.5 * (B[:-2] + B[2:])
)");
  xf::simplify(*sdfg);
  EXPECT_EQ(xf::apply_repeated(*sdfg, xf::loop_to_map), 0);
}

TEST(LoopToMap, AccumulationBecomesWcr) {
  // resnet-style accumulation: every iteration adds into the same
  // elements -> WCR map (Section 3.4.2).
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(out: dace.float64[M], inp: dace.float64[M + K], w: dace.float64[K]):
    for k in range(K):
        out[:] += inp[k:M+k] * w[k]
)");
  xf::simplify(*sdfg);
  xf::apply_repeated(*sdfg, xf::map_fusion);
  auto base = sdfg->clone();
  int converted = xf::apply_repeated(*sdfg, xf::loop_to_map);
  EXPECT_EQ(converted, 1);
  bool has_wcr = false;
  for (int sid : sdfg->state_ids()) {
    for (const auto& e : sdfg->state(sid).edges())
      has_wcr |= e.memlet.wcr == ir::WCR::Sum;
  }
  EXPECT_TRUE(has_wcr);
  expect_equivalent(*base, *sdfg,
                    {{"out", {20}}, {"inp", {25}}, {"w", {5}}},
                    {{"M", 20}, {"K", 5}}, {"out"});
}

TEST(LoopToMap, ConvertsDivBoundedLoop) {
  // `range(N // 2)` puts Floor(Div(N, 2)) into the guard condition:
  // code_to_sym must lower Div/Floor to floor division for detect_loop
  // to recognize the trip count (regression: Div used to be
  // unsupported, silently pinning such loops to Tier 0).
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N]):
    for i in range(N // 2):
        A[i] += 1.0
)");
  xf::simplify(*sdfg);
  auto base = sdfg->clone();
  EXPECT_EQ(xf::apply_repeated(*sdfg, xf::loop_to_map), 1);
  EXPECT_GE(count_toplevel_maps(*sdfg), 1);
  // N = 11: exactly A[0..4] gets incremented (11 // 2 = 5).
  expect_equivalent(*base, *sdfg, {{"A", {11}}}, {{"N", 11}}, {"A"});
}

TEST(LoopToMap, FactoredDisjointWritesConvert) {
  // Each iteration writes the block A[i*K : i*K+K].  The syntactic
  // Subset::disjoint test cannot separate consecutive blocks (the
  // distance K*d only exceeds the block length K given d >= 1), so the
  // seed refused this loop; the absint interval prover discharges it.
  using ir::CodeExpr;
  using ir::CodeOp;
  using sym::Expr;
  using sym::Range;
  using sym::S;
  auto g = std::make_unique<ir::SDFG>("blocked");
  g->add_symbol("D");
  g->add_symbol("K");
  g->add_array("A", ir::DType::f64, {S("D") * S("K")});
  g->add_array("B", ir::DType::f64, {S("D") * S("K")});
  g->add_arg("A");
  g->add_arg("B");
  g->add_state("init", true);
  g->add_state("guard");
  g->add_state("body");
  g->add_state("done");
  CodeExpr cond = CodeExpr::binary(CodeOp::Lt, CodeExpr::symbol("i"),
                                   CodeExpr::symbol("D"));
  g->add_interstate_edge(0, 1, CodeExpr(), {{"i", Expr(0)}});
  g->add_interstate_edge(1, 2, cond);
  g->add_interstate_edge(2, 1, CodeExpr(), {{"i", S("i") + Expr(1)}});
  g->add_interstate_edge(1, 3, CodeExpr::unary(CodeOp::Not, cond));
  // Body: inner map over j copies B[i*K+j]*2 into A[i*K+j]; the outer
  // memlets carry the per-iteration block [i*K, i*K+K).
  ir::State& b = g->state(2);
  int na = b.add_access("A");
  int nb = b.add_access("B");
  auto [me, mx] = b.add_map("blk", {"j"}, sym::Subset({Range(Expr(0), S("K"))}));
  int tl = b.add_tasklet("t", {"x"},
                         CodeExpr::input("x") * CodeExpr::constant(2.0));
  sym::Subset block({Range(S("i") * S("K"), S("i") * S("K") + S("K"))});
  b.add_edge(nb, "", me, "IN_B", ir::Memlet("B", block));
  b.add_edge(me, "OUT_B", tl, "x",
             ir::Memlet("B", sym::Subset::element({S("i") * S("K") + S("j")})));
  b.add_edge(tl, "__out", mx, "IN_A",
             ir::Memlet("A", sym::Subset::element({S("i") * S("K") + S("j")})));
  b.add_edge(mx, "OUT_A", na, "", ir::Memlet("A", block));
  auto base = g->clone();
  EXPECT_EQ(xf::apply_repeated(*g, xf::loop_to_map), 1);
  EXPECT_GE(count_toplevel_maps(*g), 1);
  expect_equivalent(*base, *g, {{"A", {12}}, {"B", {12}}},
                    {{"D", 3}, {"K", 4}}, {"A"});
}

TEST(MapCollapse, MergesNestedMaps) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[M, N]):
    for i in range(M):
        A[i, :] = A[i, :] * 2.0
)");
  xf::simplify(*sdfg);
  xf::apply_repeated(*sdfg, xf::loop_to_map);
  int collapsed = xf::apply_repeated(*sdfg, xf::map_collapse);
  EXPECT_GE(collapsed, 1);
  // The collapsed map is 2-D.
  bool found2d = false;
  for (int sid : sdfg->state_ids()) {
    const auto& st = sdfg->state(sid);
    for (int nid : st.node_ids()) {
      if (const auto* me = st.node_as<const ir::MapEntry>(nid))
        found2d |= me->params.size() == 2;
    }
  }
  EXPECT_TRUE(found2d);
  Tensor A = random_tensor({6, 7}, 4);
  Tensor ref = rt::ops::mul(A, Tensor::scalar(2.0));
  Bindings args{{"A", A}};
  rt::execute(*sdfg, args, {{"M", 6}, {"N", 7}});
  EXPECT_TRUE(rt::allclose(A, ref));
}

TEST(TileWcr, ReducesAtomicUpdates) {
  auto src = R"(
@dace.program
def f(alpha: dace.float64, C: dace.float64[NI, NJ]):
    for i, j in dace.map[0:NI, 0:NJ]:
        alpha += C[i, j]
)";
  auto base = compile_to_sdfg(src);
  auto tiled = base->clone();
  xf::set_toplevel_schedules(*tiled, ir::Schedule::CPUParallel, true);
  int applied = xf::apply_repeated(*tiled, [&](ir::SDFG& g) {
    return xf::tile_wcr_map(g, 16);
  });
  EXPECT_EQ(applied, 1);
  EXPECT_NO_THROW(tiled->validate());

  const int64_t ni = 37, nj = 23;
  Tensor C = random_tensor({ni, nj}, 5);
  Tensor a1 = Tensor::scalar(0.5), a2 = Tensor::scalar(0.5);
  Bindings args1{{"alpha", a1}, {"C", C}};
  Bindings args2{{"alpha", a2}, {"C", C}};
  rt::Executor e1(*base), e2(*tiled);
  e1.run(args1, {{"NI", ni}, {"NJ", nj}});
  e2.run(args2, {{"NI", ni}, {"NJ", nj}});
  EXPECT_NEAR(a1.value(), a2.value(), 1e-9);
  // The tiled version commits once per tile instead of once per element.
  EXPECT_LT(e2.stats().wcr_stores, e1.stats().wcr_stores);
  EXPECT_EQ(e1.stats().wcr_stores, (uint64_t)(ni * nj));
}

TEST(TransientMitigation, SetsStorageAndLifetime) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N]):
    small = np.zeros((8,), dtype=A.dtype)
    big = np.zeros((N,), dtype=A.dtype)
    small[:] = A[0:8] * 2.0
    big[:] = A + 1.0
    A[:] = big
    A[0:8] = small
)");
  EXPECT_TRUE(xf::mitigate_transient_allocation(*sdfg));
  EXPECT_EQ(sdfg->array("small").storage, ir::Storage::CPUStack);
  EXPECT_EQ(sdfg->array("big").lifetime, ir::Lifetime::Persistent);
}

TEST(AutoOptimize, GemmEndToEnd) {
  auto base = compile_to_sdfg(kGemmSrc);
  auto opt = base->clone();
  xf::auto_optimize(*opt, ir::DeviceType::CPU);
  // Far fewer states and maps than the -O0 translation.
  EXPECT_LE(opt->num_states(), 2);
  expect_equivalent(
      *base, *opt,
      {{"alpha", {}}, {"beta", {}}, {"C", {19, 23}}, {"A", {19, 15}},
       {"B", {15, 23}}},
      {{"NI", 19}, {"NJ", 23}, {"NK", 15}}, {"C"});
}

TEST(AutoOptimize, Jacobi1dEndToEnd) {
  constexpr const char* src = R"(
@dace.program
def jacobi_1d(TSTEPS: dace.int32, A: dace.float64[N], B: dace.float64[N]):
    for t in range(1, TSTEPS):
        B[1:-1] = 0.33333 * (A[:-2] + A[1:-1] + A[2:])
        A[1:-1] = 0.33333 * (B[:-2] + B[1:-1] + B[2:])
)";
  auto base = compile_to_sdfg(src);
  auto opt = base->clone();
  xf::auto_optimize(*opt, ir::DeviceType::CPU);
  expect_equivalent(*base, *opt, {{"A", {50}}, {"B", {50}}},
                    {{"N", 50}, {"TSTEPS", 6}}, {"A", "B"});
  // Fusion must have reduced per-half-step maps (4 element-wise ops) to 1.
  rt::Executor ex(*opt);
  Bindings args{{"A", random_tensor({50}, 1)}, {"B", random_tensor({50}, 2)}};
  ex.run(args, {{"N", 50}, {"TSTEPS", 6}});
  EXPECT_LE(ex.map_launches(), 2 * 5 + 2);
}

TEST(AutoOptimize, SchedulesAreParallelOnCpu) {
  auto sdfg = compile_to_sdfg(kGemmSrc);
  xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
  for (int sid : sdfg->state_ids()) {
    const auto& st = sdfg->state(sid);
    for (int nid : st.node_ids()) {
      const auto* me = st.node_as<const ir::MapEntry>(nid);
      if (me && st.scope_of(nid) == -1)
        EXPECT_EQ(me->schedule, ir::Schedule::CPUParallel);
    }
  }
}

TEST(AutoOptimize, DoitgenWithLibraryNodesStaysCorrect) {
  constexpr const char* src = R"(
@dace.program
def doitgen(A: dace.float64[NR, NQ, NP], C4: dace.float64[NP, NP]):
    for r in range(NR):
        for q in range(NQ):
            tmp = np.zeros((NP,), dtype=A.dtype)
            tmp[:] = A[r, q, :] @ C4
            A[r, q, :] = tmp
)";
  auto base = compile_to_sdfg(src);
  auto opt = base->clone();
  xf::auto_optimize(*opt, ir::DeviceType::CPU);
  expect_equivalent(*base, *opt, {{"A", {4, 5, 6}}, {"C4", {6, 6}}},
                    {{"NR", 4}, {"NQ", 5}, {"NP", 6}}, {"A"});
}

// ---------------------------------------------------------------------------
// Transactional pipeline: broken passes roll back, the pipeline degrades
// instead of crashing, and bisection names the culprit.

/// Scoped environment override (mirrors the pattern in test_tiered.cpp).
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    const char* old = getenv(name);
    if (old) saved_ = old;
    setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (saved_) setenv(name_, saved_->c_str(), 1);
    else unsetenv(name_);
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

/// A pass that silently corrupts semantics: appends a state whose map
/// writes A[0] from every iteration (a provable write-write race) while
/// remaining structurally valid and round-trippable.
bool inject_race(ir::SDFG& g) {
  using sym::Expr;
  using sym::Range;
  using sym::S;
  using sym::Subset;
  int prev = g.state_order().back();
  ir::State& st = g.add_state("__injected_racy");
  g.add_interstate_edge(prev, g.state_id(&st));
  int na = st.add_access("A");
  auto [me, mx] = st.add_map("racy_m", {"i"},
                             Subset({Range(Expr(int64_t{0}), S("N"))}));
  int tl = st.add_tasklet("racy_t", {}, ir::CodeExpr::constant(1.0));
  st.add_edge(me, "", tl, "", ir::Memlet());
  st.add_edge(tl, "__out", mx, "IN_A",
              ir::Memlet("A", Subset::element({Expr(int64_t{0})})));
  st.add_edge(mx, "OUT_A", na, "", ir::Memlet("A", Subset::full({S("N")})));
  return true;
}

std::unique_ptr<ir::SDFG> simple_vector_sdfg() {
  return compile_to_sdfg(R"(
@dace.program
def base(A: dace.float64[N]):
    A[:] = A[:] * 2.0
)");
}

TEST(TransactionalPipeline, ThrowingPassRollsBackAndPipelineContinues) {
  auto g = simple_vector_sdfg();
  std::string before = g->dump();
  bool later_ran = false;
  xf::Pipeline pipe("test");
  pipe.add("explodes", [](ir::SDFG&) -> bool {
    throw Error("pass blew up");
  });
  pipe.add("survivor", [&](ir::SDFG&) {
    later_ran = true;
    return false;
  });
  xf::PassReport report = pipe.run_transactional(*g);
  EXPECT_TRUE(later_ran);
  ASSERT_EQ(report.outcomes.size(), 2u);
  EXPECT_TRUE(report.outcomes[0].rolled_back);
  EXPECT_NE(report.outcomes[0].error.find("blew up"), std::string::npos);
  EXPECT_EQ(report.first_broken_pass, "explodes");
  EXPECT_EQ(report.rolled_back, 1);
  EXPECT_EQ(g->dump(), before);  // graph untouched by the failed pass
  EXPECT_NE(report.summary().find("ROLLBACK"), std::string::npos);
}

TEST(TransactionalPipeline, StructuralCorruptionIsRolledBack) {
  auto g = simple_vector_sdfg();
  std::string before = g->dump();
  xf::Pipeline pipe("test");
  pipe.add("corrupts", [](ir::SDFG& s) {
    s.set_start_state(99);  // dangling start state
    return true;
  });
  xf::PassReport report = pipe.run_transactional(*g);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_TRUE(report.outcomes[0].rolled_back);
  EXPECT_FALSE(report.outcomes[0].committed);
  EXPECT_EQ(report.first_broken_pass, "corrupts");
  EXPECT_EQ(g->dump(), before);
  EXPECT_NO_THROW(g->validate());
}

TEST(TransactionalPipeline, HungPassTimesOutAndRollsBack) {
  EnvGuard timeout("DACE_XF_PASS_TIMEOUT", "50");
  auto g = simple_vector_sdfg();
  std::string before = g->dump();
  xf::Pipeline pipe("test");
  pipe.add("hangs", [](ir::SDFG& s) {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    s.add_symbol("__should_never_commit");
    return true;
  });
  pipe.add("after", [](ir::SDFG& s) {
    s.add_symbol("__committed_after_timeout");
    return true;
  });
  xf::PassReport report = pipe.run_transactional(*g);
  ASSERT_EQ(report.outcomes.size(), 2u);
  EXPECT_TRUE(report.outcomes[0].timed_out);
  EXPECT_TRUE(report.outcomes[0].rolled_back);
  EXPECT_NE(report.outcomes[0].error.find("timed out"), std::string::npos);
  // The orphaned worker's mutation never reaches the committed graph,
  // and the pipeline kept going.
  EXPECT_FALSE(g->has_symbol("__should_never_commit"));
  EXPECT_TRUE(g->has_symbol("__committed_after_timeout"));
  EXPECT_TRUE(report.outcomes[1].committed);
  EXPECT_NE(report.summary().find("TIMEOUT"), std::string::npos);
  // Let the orphaned worker finish before its captures are torn down.
  std::this_thread::sleep_for(std::chrono::milliseconds(450));
  (void)before;
}

TEST(TransactionalPipeline, BisectNamesSilentSemanticCorruptor) {
  EnvGuard bisect("DACE_XF_BISECT", "1");
  auto g = simple_vector_sdfg();
  std::string before = g->dump();
  xf::Pipeline pipe("test");
  pipe.set_verify(false);  // per-pass gate won't see the semantic break
  pipe.add("benign", [](ir::SDFG&) { return false; });
  pipe.add("inject-race", inject_race);
  pipe.add("benign2", [](ir::SDFG&) { return false; });
  xf::PassReport report = pipe.run_transactional(*g);
  EXPECT_TRUE(report.bisected);
  EXPECT_EQ(report.first_broken_pass, "inject-race");
  // The verified repair run rolled the culprit back: best verified graph.
  EXPECT_EQ(g->dump(), before);
  EXPECT_NO_THROW(g->validate());
}

TEST(TransactionalPipeline, VerifyModeCatchesSemanticBreakImmediately) {
  auto g = simple_vector_sdfg();
  std::string before = g->dump();
  xf::Pipeline pipe("test");
  pipe.set_verify(true);
  pipe.add("inject-race", inject_race);
  xf::PassReport report = pipe.run_transactional(*g);
  ASSERT_EQ(report.outcomes.size(), 1u);
  EXPECT_TRUE(report.outcomes[0].rolled_back);
  EXPECT_FALSE(report.bisected);  // no bisection needed: caught at commit
  EXPECT_NE(report.outcomes[0].error.find("semantic"), std::string::npos);
  EXPECT_EQ(g->dump(), before);
}

TEST(AutoOptimize, BrokenPassNamedWhileResultStaysCorrect) {
  EnvGuard bisect("DACE_XF_BISECT", "1");
  constexpr const char* src = R"(
@dace.program
def f(A: dace.float64[N], B: dace.float64[N]):
    B[:] = A[:] * 2.0 + 1.0
)";
  auto base = compile_to_sdfg(src);
  auto opt = base->clone();
  xf::PassReport report;
  xf::AutoOptOptions opts;
  opts.extra_passes.push_back({"inject-race", inject_race});
  opts.report = &report;
  xf::auto_optimize(*opt, ir::DeviceType::CPU, opts);
  // The sabotaged pass is named in the report...
  EXPECT_EQ(report.first_broken_pass, "inject-race");
  // ...while auto_optimize still returns a verified, runnable graph.
  EXPECT_NO_THROW(opt->validate());
  expect_equivalent(*base, *opt, {{"A", {25}}, {"B", {25}}}, {{"N", 25}},
                    {"B"});
}

TEST(TransactionalPipeline, InvalidInputGraphReportedNotThrown) {
  auto g = simple_vector_sdfg();
  g->set_start_state(99);
  xf::Pipeline pipe("test");
  pipe.add("never-runs", [](ir::SDFG&) { return true; });
  xf::PassReport report;
  EXPECT_NO_THROW(report = pipe.run_transactional(*g));
  EXPECT_EQ(report.first_broken_pass, "<input>");
  EXPECT_FALSE(report.all_committed());
}

}  // namespace
}  // namespace dace
