// Kernel-planner tests: loop-nest reconstruction from optimized bytecode,
// WCR sinking and unroll-and-jam legality, the DACE_KERNEL_PLAN escape
// hatch and its Program::hash keying, tiling edge cases (non-divisible
// trip counts, zero/one-trip loops, epilogue correctness), and the
// cost-driven chunked ThreadPool::parallel_for.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "codegen/jit.hpp"
#include "codegen/kernel_plan.hpp"
#include "frontend/lowering.hpp"
#include "kernels/suite.hpp"
#include "runtime/bytecode_opt.hpp"
#include "runtime/executor.hpp"
#include "runtime/thread_pool.hpp"
#include "transforms/auto_optimize.hpp"

namespace dace {
namespace {

using rt::Bindings;
using rt::Instr;
using rt::Op;
using rt::Program;

/// Scoped environment override; restores the previous value on exit.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (had_old_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_, old_;
  bool had_old_ = false;
};

const char* kMatmulSource = R"(
@dace.program
def matmul(A: dace.float64[NI, NK], B: dace.float64[NK, NJ],
           C: dace.float64[NI, NJ]):
    for i, j, k in dace.map[0:NI, 0:NJ, 0:NK]:
        C[i, j] += A[i, k] * B[k, j]
)";

/// Compile the first top-level map of `source` to an optimized program,
/// mirroring the executor's Tier-0/Tier-1 pipeline.
Program compile_first_map(const std::string& source) {
  auto sdfg = fe::compile_to_sdfg(source);
  xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
  for (int s = 0; s < sdfg->num_states(); ++s) {
    const ir::State& st = sdfg->state(s);
    for (int id : st.node_ids()) {
      if (st.node(id)->kind == ir::NodeKind::MapEntry &&
          st.scope_of(id) == -1) {
        Program p = rt::compile_map_scope(*sdfg, st, id);
        rt::optimize_program(p);
        return p;
      }
    }
  }
  ADD_FAILURE() << "no top-level map in source";
  return {};
}

// ---------------------------------------------------------------------------
// Plan reconstruction and decisions
// ---------------------------------------------------------------------------

TEST(KernelPlan, MatmulNestGetsJamAndSink) {
  Program p = compile_first_map(kMatmulSource);
  ASSERT_TRUE(p.kernel_plan);
  cg::KernelPlan plan = cg::plan_kernel(p);
  ASSERT_TRUE(plan.valid);
  ASSERT_EQ(plan.loops.size(), 3u);
  // The innermost (k) loop accumulates into an invariant C[i,j] slot: its
  // StoreWcr sinks, and the enclosing (j) loop unroll-and-jams.
  int jammed = 0, sunk = 0;
  for (const auto& l : plan.loops) {
    if (l.jam > 1) ++jammed;
    if (l.innermost()) sunk += (int)l.sinks.size();
  }
  EXPECT_EQ(jammed, 1);
  EXPECT_EQ(sunk, 1);
  EXPECT_TRUE(plan.any_transform());
  EXPECT_NE(plan.describe().find("jam=4"), std::string::npos)
      << plan.describe();
}

TEST(KernelPlan, MatmulSourceIsStructuredWithAccumulators) {
  Program p = compile_first_map(kMatmulSource);
  ASSERT_TRUE(p.kernel_plan);
  std::vector<ir::DType> dts(p.arrays.size(), ir::DType::f64);
  std::string src = cg::generate_map_source(p, dts, "kern");
  EXPECT_EQ(src.find("goto"), std::string::npos);
  EXPECT_NE(src.find("for (;"), std::string::npos);
  EXPECT_NE(src.find("acc"), std::string::npos);
  // One atomic combine per (i, j) element per lane, not one per k step:
  // the accumulator, not a register, feeds dacepp_wcr_atomic.
  EXPECT_NE(src.find("dacepp_wcr_atomic(A2 + "), std::string::npos);
}

TEST(KernelPlan, PlanOffRestoresGotoPipeline) {
  EnvGuard off("DACE_KERNEL_PLAN", "0");
  Program p = compile_first_map(kMatmulSource);
  EXPECT_FALSE(p.kernel_plan);
  std::vector<ir::DType> dts(p.arrays.size(), ir::DType::f64);
  std::string src = cg::generate_map_source(p, dts, "kern");
  EXPECT_NE(src.find("goto"), std::string::npos);
  EXPECT_EQ(src.find("acc"), std::string::npos);
}

TEST(KernelPlan, HashIsKeyedOnPlanFlag) {
  Program p = compile_first_map(kMatmulSource);
  Program q = p;
  q.kernel_plan = !p.kernel_plan;
  EXPECT_NE(p.hash(), q.hash());
}

// A splittable WCR loop whose store address is the loop variable: the
// address is not invariant, so no sink and no jam -- and the structured
// emission must still be exact.
Program varying_addr_wcr_program() {
  Program p;
  p.splittable = true;
  p.kernel_plan = true;
  p.n_iregs = 5;  // i0/i1 bounds, i2 var, i3 zero, i4 step
  p.n_fregs = 1;
  p.arrays = {"A", "B"};
  p.code = {
      Instr{.op = Op::IConst, .a = 3, .imm = 0},
      Instr{.op = Op::IConst, .a = 4, .imm = 1},
      Instr{.op = Op::IMov, .a = 2, .b = 0},
      Instr{.op = Op::JGe, .a = 2, .b = 1, .imm = 8},
      Instr{.op = Op::Load, .a = 0, .b = 2, .imm = 0},
      Instr{.op = Op::StoreWcr, .a = 0, .b = 2, .c = 1, .flag = 1, .imm = 1},
      Instr{.op = Op::IAdd, .a = 2, .b = 2, .c = 4},
      Instr{.op = Op::Jmp, .imm = 3},
      Instr{.op = Op::Halt},
  };
  return p;
}

TEST(KernelPlan, VaryingWcrAddressExcludedFromSinkAndJam) {
  Program p = varying_addr_wcr_program();
  cg::KernelPlan plan = cg::plan_kernel(p);
  ASSERT_TRUE(plan.valid);
  ASSERT_EQ(plan.loops.size(), 1u);
  EXPECT_TRUE(plan.loops[0].sinks.empty());
  EXPECT_EQ(plan.loops[0].jam, 1);
  // Unrolling the innermost loop is still fine (sequential replication).
  EXPECT_EQ(plan.loops[0].unroll, 4);
}

TEST(KernelPlan, GuardedLoopExcludedFromSinking) {
  Program p = varying_addr_wcr_program();
  // Make the address invariant but insert a Guard: a trap mid-loop must
  // leave the partial WCR updates of preceding iterations in memory,
  // which a sunk accumulator cannot reproduce.
  p.code[5].b = 3;
  p.code.insert(p.code.begin() + 4,
                Instr{.op = Op::Guard, .a = 2, .b = 1, .imm = 0});
  p.code[3].imm = 9;  // JGe exit past the shifted latch
  p.code[8].imm = 3;  // latch Jmp back to the header
  cg::KernelPlan plan = cg::plan_kernel(p);
  ASSERT_TRUE(plan.valid);
  ASSERT_EQ(plan.loops.size(), 1u);
  EXPECT_TRUE(plan.loops[0].has_guard);
  EXPECT_TRUE(plan.loops[0].sinks.empty());
}

TEST(KernelPlan, IrreducibleFlowFallsBackToGotos) {
  Program p = varying_addr_wcr_program();
  p.code[7].imm = 8;  // forward jump: no longer a canonical latch
  cg::KernelPlan plan = cg::plan_kernel(p);
  EXPECT_FALSE(plan.valid);
  std::vector<ir::DType> dts(p.arrays.size(), ir::DType::f64);
  std::string src = cg::generate_map_source(p, dts, "kern");
  EXPECT_NE(src.find("goto"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Tiling edge cases: trip counts 0/1, non-divisible trips, epilogues.
// The native tier (plan codegen) must agree with the VM bit-for-bit
// within the usual tolerance for every shape.
// ---------------------------------------------------------------------------

class PlanTripCounts
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PlanTripCounts, MatmulAgreesWithVmOnEdgeShapes) {
  auto [ni, nj, nk] = GetParam();
  sym::SymbolMap sizes{{"NI", ni}, {"NJ", nj}, {"NK", nk}};
  const kernels::Kernel& k = kernels::kernel("matmul");
  Bindings vm = k.init(sizes);
  {
    EnvGuard jit("DACEPP_JIT", "0");
    auto sdfg = fe::compile_to_sdfg(k.source);
    xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
    rt::execute(*sdfg, vm, sizes);
  }
  Bindings native = k.init(sizes);
  {
    EnvGuard thr("DACEPP_JIT_THRESHOLD", "1");
    EnvGuard sync("DACEPP_JIT_SYNC", "1");
    auto sdfg = fe::compile_to_sdfg(k.source);
    xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
    rt::execute(*sdfg, native, sizes);
  }
  EXPECT_TRUE(rt::allclose(native.at("C"), vm.at("C"), 1e-9, 1e-11))
      << "NI=" << ni << " NJ=" << nj << " NK=" << nk << " max diff "
      << rt::max_abs_diff(native.at("C"), vm.at("C"));
}

INSTANTIATE_TEST_SUITE_P(
    EdgeShapes, PlanTripCounts,
    ::testing::Values(std::make_tuple(1, 1, 1),    // single iteration
                      std::make_tuple(1, 4, 3),    // jam exactly once
                      std::make_tuple(3, 5, 4),    // jam + epilogue
                      std::make_tuple(4, 4, 4),    // divisible everywhere
                      std::make_tuple(5, 7, 9),    // nothing divisible
                      std::make_tuple(17, 3, 8),   // jam never fires (nj<4)
                      std::make_tuple(2, 13, 1))); // one-trip inner loop

TEST(PlanTripCounts, ZeroTripInnerLoopLeavesOutputUntouched) {
  // k ranges over [0, NK-1) with NK = 1: zero inner trips, so C must
  // keep its initial pattern exactly (the sunk-combine guard).
  const char* src = R"(
@dace.program
def mm_edge(A: dace.float64[NI, NK], B: dace.float64[NK, NJ],
            C: dace.float64[NI, NJ]):
    for i, j, k in dace.map[0:NI, 0:NJ, 0:NK-1]:
        C[i, j] += A[i, k] * B[k, j]
)";
  sym::SymbolMap sizes{{"NI", 3}, {"NJ", 6}, {"NK", 1}};
  const kernels::Kernel& k = kernels::kernel("matmul");
  Bindings ref = k.init(sizes);
  Bindings got = k.init(sizes);
  {
    EnvGuard thr("DACEPP_JIT_THRESHOLD", "1");
    EnvGuard sync("DACEPP_JIT_SYNC", "1");
    auto sdfg = fe::compile_to_sdfg(src);
    xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
    rt::execute(*sdfg, got, sizes);
  }
  EXPECT_TRUE(rt::allclose(got.at("C"), ref.at("C"), 0.0, 0.0))
      << "zero-trip inner loop modified C, max diff "
      << rt::max_abs_diff(got.at("C"), ref.at("C"));
}

class PlanUnrollEpilogue : public ::testing::TestWithParam<int> {};

TEST_P(PlanUnrollEpilogue, ElementwiseAgreesWithVmAtEveryTripCount) {
  int n = GetParam();
  const char* src = R"(
@dace.program
def axpy_edge(x: dace.float64[N], y: dace.float64[N]):
    for i in dace.map[0:N-1]:
        y[i] = y[i] + x[i] * 3.0
)";
  sym::SymbolMap sizes{{"N", n}};
  auto init = [&] {
    Bindings b;
    rt::Tensor x(ir::DType::f64, {n}), y(ir::DType::f64, {n});
    for (int i = 0; i < n; ++i) {
      x.set_flat(i, 0.25 * i - 1.0);
      y.set_flat(i, 1.5 - 0.125 * i);
    }
    b.emplace("x", std::move(x));
    b.emplace("y", std::move(y));
    return b;
  };
  Bindings vm = init();
  {
    EnvGuard jit("DACEPP_JIT", "0");
    auto sdfg = fe::compile_to_sdfg(src);
    xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
    rt::execute(*sdfg, vm, sizes);
  }
  Bindings native = init();
  {
    EnvGuard thr("DACEPP_JIT_THRESHOLD", "1");
    EnvGuard sync("DACEPP_JIT_SYNC", "1");
    auto sdfg = fe::compile_to_sdfg(src);
    xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
    rt::execute(*sdfg, native, sizes);
  }
  EXPECT_TRUE(rt::allclose(native.at("y"), vm.at("y"), 0.0, 0.0))
      << "N=" << n << " max diff "
      << rt::max_abs_diff(native.at("y"), vm.at("y"));
}

// Trip counts 0, 1, just below/at/above the unroll width, and larger
// non-divisible counts (the map runs [0, N-1) iterations).
INSTANTIATE_TEST_SUITE_P(TripCounts, PlanUnrollEpilogue,
                         ::testing::Values(1, 2, 4, 5, 6, 9, 18));

// ---------------------------------------------------------------------------
// Chunked thread pool
// ---------------------------------------------------------------------------

struct RangeLog {
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> ranges;
  std::atomic<int> empties{0};

  void record(int64_t lo, int64_t hi) {
    if (lo >= hi) ++empties;
    std::lock_guard<std::mutex> lk(mu);
    ranges.push_back({lo, hi});
  }

  int64_t covered() {
    std::lock_guard<std::mutex> lk(mu);
    int64_t total = 0;
    for (auto [lo, hi] : ranges) total += hi - lo;
    return total;
  }
};

TEST(ThreadPoolChunks, FewerItersThanWorkersWakesNoEmptyRanges) {
  rt::ThreadPool pool(8);
  RangeLog log;
  pool.parallel_for(3, 8,
                    [&](int64_t lo, int64_t hi) { log.record(lo, hi); });
  EXPECT_EQ(log.empties.load(), 0);
  EXPECT_EQ(log.ranges.size(), 3u);  // clamped to n, not the worker count
  EXPECT_EQ(log.covered(), 3);
}

TEST(ThreadPoolChunks, BalancedSplitSizesDifferByAtMostOne) {
  rt::ThreadPool pool(8);
  RangeLog log;
  pool.parallel_for(9, 4,
                    [&](int64_t lo, int64_t hi) { log.record(lo, hi); });
  EXPECT_EQ(log.empties.load(), 0);
  ASSERT_EQ(log.ranges.size(), 4u);
  EXPECT_EQ(log.covered(), 9);
  int64_t min_sz = 9, max_sz = 0;
  for (auto [lo, hi] : log.ranges) {
    min_sz = std::min(min_sz, hi - lo);
    max_sz = std::max(max_sz, hi - lo);
  }
  EXPECT_EQ(min_sz, 2);
  EXPECT_EQ(max_sz, 3);
}

TEST(ThreadPoolChunks, SingleChunkRunsInline) {
  rt::ThreadPool pool(8);
  RangeLog log;
  pool.parallel_for(100, 1,
                    [&](int64_t lo, int64_t hi) { log.record(lo, hi); });
  ASSERT_EQ(log.ranges.size(), 1u);
  EXPECT_EQ(log.ranges[0], (std::pair<int64_t, int64_t>{0, 100}));
}

TEST(ThreadPoolChunks, LegacyOverloadNeverCallsEmptyRanges) {
  // The old static split woke every worker even when iters < workers,
  // handing trailing workers empty [lo, hi) ranges.
  for (int64_t n : {1, 3, 7, 16, 17, 31, 100}) {
    rt::ThreadPool pool(8);
    RangeLog log;
    pool.parallel_for(n, [&](int64_t lo, int64_t hi) { log.record(lo, hi); });
    EXPECT_EQ(log.empties.load(), 0) << "n=" << n;
    EXPECT_EQ(log.covered(), n) << "n=" << n;
  }
}

TEST(ThreadPoolChunks, ChunkedReductionMatchesSerial) {
  const int64_t n = 10000;
  std::vector<double> xs(n);
  for (int64_t i = 0; i < n; ++i) xs[(size_t)i] = 0.5 * (i % 17) - 2.0;
  double serial = 0;
  for (double v : xs) serial += v;
  rt::ThreadPool pool(6);
  std::mutex mu;
  double sum = 0;
  pool.parallel_for(n, 5, [&](int64_t lo, int64_t hi) {
    double local = 0;
    for (int64_t i = lo; i < hi; ++i) local += xs[(size_t)i];
    std::lock_guard<std::mutex> lk(mu);
    sum += local;
  });
  EXPECT_NEAR(sum, serial, 1e-9);
}

}  // namespace
}  // namespace dace
