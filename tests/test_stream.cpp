// FIFO stream tests (the StreamingComposition substrate).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "fpga/stream.hpp"

namespace dace::fpga {
namespace {

TEST(Stream, PreservesOrder) {
  Stream s(8);
  for (int i = 0; i < 8; ++i) s.push((double)i);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(s.pop(), (double)i);
}

TEST(Stream, TryPopOnEmpty) {
  Stream s(4);
  double v;
  EXPECT_FALSE(s.try_pop(&v));
  s.push(3.5);
  EXPECT_TRUE(s.try_pop(&v));
  EXPECT_EQ(v, 3.5);
}

TEST(Stream, BoundedCapacityBackpressure) {
  Stream s(2);
  std::atomic<int> pushed{0};
  std::thread producer([&] {
    for (int i = 0; i < 10; ++i) {
      s.push((double)i);
      pushed++;
    }
  });
  // Give the producer time to fill the FIFO; it must stall at depth 2.
  while (pushed.load() < 2) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_LE(pushed.load(), 3);  // 2 in the FIFO + possibly 1 in flight
  double sum = 0;
  for (int i = 0; i < 10; ++i) sum += s.pop();
  producer.join();
  EXPECT_EQ(sum, 45.0);
  EXPECT_EQ(s.total_pushes(), 10);
  EXPECT_EQ(s.size(), 0);
}

TEST(Stream, PipelineOfThreeStages) {
  // reader -> square -> writer, like a StreamingComposition chain.
  Stream a(4), b(4);
  const int n = 100;
  std::thread reader([&] {
    for (int i = 0; i < n; ++i) a.push((double)i);
  });
  std::thread pe([&] {
    for (int i = 0; i < n; ++i) {
      double v = a.pop();
      b.push(v * v);
    }
  });
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += b.pop();
  reader.join();
  pe.join();
  double expect = 0;
  for (int i = 0; i < n; ++i) expect += (double)i * i;
  EXPECT_EQ(sum, expect);
}

TEST(Stream, RejectsNonPositiveDepth) {
  EXPECT_THROW(Stream(0), Error);
}

}  // namespace
}  // namespace dace::fpga
