#include "symbolic/symbolic.hpp"

#include <gtest/gtest.h>

namespace dace::sym {
namespace {

TEST(Symbolic, ConstantsFold) {
  Expr e = Expr(2) + Expr(3) * Expr(4);
  EXPECT_TRUE(e.is_constant());
  EXPECT_EQ(e.constant(), 14);
}

TEST(Symbolic, PolynomialCanonicalization) {
  Expr N = S("N");
  Expr M = S("M");
  // (N + M)^2-style expansion through multiplication.
  Expr a = (N + M) * (N + M);
  Expr b = N * N + Expr(2) * N * M + M * M;
  EXPECT_TRUE(a.equals(b));
}

TEST(Symbolic, AdditionCommutes) {
  Expr N = S("N");
  Expr M = S("M");
  EXPECT_TRUE((N + M).equals(M + N));
  EXPECT_TRUE((N * M).equals(M * N));
}

TEST(Symbolic, SubtractionCancels) {
  Expr N = S("N");
  EXPECT_TRUE((N - N).is_zero());
  EXPECT_TRUE((N + Expr(1) - Expr(1)).equals(N));
}

TEST(Symbolic, Evaluation) {
  Expr N = S("N");
  Expr e = N * Expr(2) + Expr(5);
  EXPECT_EQ(e.eval({{"N", 10}}), 25);
  EXPECT_FALSE(e.try_eval({}).has_value());
  EXPECT_THROW(e.eval({}), Error);
}

TEST(Symbolic, FloorDivMod) {
  Expr N = S("N");
  Expr d = floordiv(N, Expr(4));
  EXPECT_EQ(d.eval({{"N", 10}}), 2);
  EXPECT_EQ(d.eval({{"N", -1}}), -1);  // Python-style floor division
  Expr m = mod(N, Expr(4));
  EXPECT_EQ(m.eval({{"N", 10}}), 2);
  EXPECT_EQ(m.eval({{"N", -1}}), 3);  // Python-style modulo
}

TEST(Symbolic, FloorDivModIdentities) {
  Expr N = S("N");
  EXPECT_TRUE(floordiv(N, Expr(1)).equals(N));
  EXPECT_TRUE(mod(N, Expr(1)).is_zero());
  EXPECT_EQ(floordiv(Expr(7), Expr(2)).constant(), 3);
  EXPECT_EQ(mod(Expr(7), Expr(2)).constant(), 1);
}

TEST(Symbolic, MinMax) {
  Expr N = S("N");
  EXPECT_TRUE(min(N, N).equals(N));
  EXPECT_EQ(min(Expr(3), Expr(5)).constant(), 3);
  EXPECT_EQ(max(Expr(3), Expr(5)).constant(), 5);
  Expr m = min(N, Expr(5));
  EXPECT_EQ(m.eval({{"N", 3}}), 3);
  EXPECT_EQ(m.eval({{"N", 9}}), 5);
}

TEST(Symbolic, Substitution) {
  Expr N = S("N");
  Expr M = S("M");
  Expr e = N * M + Expr(1);
  Expr sub = e.subs({{"N", M + Expr(2)}});
  EXPECT_TRUE(sub.equals(M * M + Expr(2) * M + Expr(1)));
  // Simultaneous substitution does not chain.
  Expr swap = (N + M).subs({{"N", M}, {"M", N}});
  EXPECT_TRUE(swap.equals(N + M));
}

TEST(Symbolic, FreeSymbols) {
  Expr e = S("N") * S("M") + floordiv(S("K"), Expr(2));
  auto fs = e.free_symbols();
  EXPECT_EQ(fs.size(), 3u);
  EXPECT_TRUE(fs.count("N"));
  EXPECT_TRUE(fs.count("M"));
  EXPECT_TRUE(fs.count("K"));
}

TEST(Symbolic, SignQueriesUnderPositivityAssumption) {
  Expr N = S("N");
  // Symbols are assumed >= 1.
  EXPECT_TRUE(N.provably_positive());
  EXPECT_TRUE((N - Expr(1)).provably_nonnegative());
  EXPECT_FALSE((N - Expr(2)).provably_nonnegative());  // unknown
  EXPECT_TRUE((Expr(0) - N).provably_nonpositive());
  EXPECT_TRUE((N * S("M")).provably_positive());
  EXPECT_FALSE((N - S("M")).provably_nonnegative());
  // mod is bounded by a constant divisor.
  EXPECT_TRUE((Expr(3) - mod(N, Expr(4))).provably_nonnegative());
  EXPECT_TRUE(mod(N, Expr(4)).provably_nonnegative());
}

TEST(Symbolic, CeilDiv) {
  Expr N = S("N");
  Expr c = ceildiv(N, Expr(4));
  EXPECT_EQ(c.eval({{"N", 8}}), 2);
  EXPECT_EQ(c.eval({{"N", 9}}), 3);
  EXPECT_EQ(c.eval({{"N", 1}}), 1);
}

TEST(Symbolic, ToString) {
  Expr N = S("N");
  EXPECT_EQ((N - Expr(1)).to_string(), "N - 1");
  EXPECT_EQ((N * Expr(2)).to_string(), "2*N");
  EXPECT_EQ(Expr(0).to_string(), "0");
}

TEST(Symbolic, OperandsExposeCanonicalChildren) {
  Expr e = S("N") + Expr(2) * S("M");
  ASSERT_EQ(e.kind(), ExprKind::Add);
  auto ops = e.operands();
  EXPECT_EQ(ops.size(), 2u);
}

// Property-style sweep: canonicalization must preserve evaluation.
class SymbolicEvalProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(SymbolicEvalProperty, CanonFormPreservesValue) {
  int64_t n = GetParam();
  Expr N = S("N");
  SymbolMap env{{"N", n}, {"M", 7}};
  Expr exprs[] = {
      (N + Expr(3)) * (N - Expr(3)),
      floordiv(N * N + Expr(5), N),
      mod(N * Expr(3) + Expr(1), Expr(7)),
      min(N, S("M")) + max(N, S("M")),
      ceildiv(N + S("M"), Expr(3)),
  };
  int64_t expected[] = {
      n * n - 9,
      (n * n + 5) / n,
      ((n * 3 + 1) % 7 + 7) % 7,
      std::min(n, int64_t{7}) + std::max(n, int64_t{7}),
      (n + 7 + 2) / 3,
  };
  for (size_t i = 0; i < std::size(exprs); ++i) {
    EXPECT_EQ(exprs[i].eval(env), expected[i]) << exprs[i].to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(Values, SymbolicEvalProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 100));

}  // namespace
}  // namespace dace::sym
