// Tiered map execution tests: the Tier-0 bytecode optimizer and the
// Tier-1 native promotion must be invisible except for speed.  Every
// kernel in the suite runs through three configurations -- unoptimized
// VM, optimized VM, and native -- and all must match the hand-written
// reference bit-for-bit within the usual tolerances.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "frontend/lowering.hpp"
#include "kernels/suite.hpp"
#include "runtime/bytecode_opt.hpp"
#include "runtime/executor.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/tiering.hpp"
#include "transforms/auto_optimize.hpp"

namespace dace {
namespace {

using kernels::Kernel;
using rt::Bindings;
using rt::Instr;
using rt::Op;
using rt::Program;

/// Scoped environment override; restores the previous value on exit.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (had_old_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_, old_;
  bool had_old_ = false;
};

/// First top-level map entry of the SDFG, or -1.
int find_top_map(const ir::SDFG& sdfg, int* state_id) {
  for (int s = 0; s < sdfg.num_states(); ++s) {
    const ir::State& st = sdfg.state(s);
    for (int id : st.node_ids()) {
      if (st.node(id)->kind == ir::NodeKind::MapEntry &&
          st.scope_of(id) == -1) {
        *state_id = s;
        return id;
      }
    }
  }
  return -1;
}

// ---------------------------------------------------------------------------
// Differential suite: unoptimized VM vs optimized VM vs native tier.
// ---------------------------------------------------------------------------

class TieredDifferential : public ::testing::TestWithParam<std::string> {
 protected:
  const Kernel& k() const { return kernels::kernel(GetParam()); }
  const sym::SymbolMap& sizes() const { return k().presets.at("test"); }

  Bindings run_current_config() const {
    Bindings b = k().init(sizes());
    auto sdfg = fe::compile_to_sdfg(k().source);
    xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
    rt::execute(*sdfg, b, sizes());
    return b;
  }

  void expect_matches_reference(Bindings& got, const char* config) const {
    Bindings ref = k().init(sizes());
    k().reference(ref, sizes());
    for (const auto& out : k().outputs) {
      EXPECT_TRUE(rt::allclose(got.at(out), ref.at(out), 1e-9, 1e-11))
          << k().name << " [" << config << "]: output '" << out
          << "' diverges, max diff "
          << rt::max_abs_diff(got.at(out), ref.at(out));
    }
  }
};

TEST_P(TieredDifferential, Tier0UnoptimizedMatchesReference) {
  EnvGuard opt("DACEPP_BC_OPT", "0");
  EnvGuard jit("DACEPP_JIT", "0");
  Bindings b = run_current_config();
  expect_matches_reference(b, "tier0-unopt");
}

TEST_P(TieredDifferential, Tier0OptimizedMatchesReference) {
  EnvGuard jit("DACEPP_JIT", "0");
  Bindings b = run_current_config();
  expect_matches_reference(b, "tier0-opt");
}

TEST_P(TieredDifferential, Tier1NativeMatchesReference) {
  EnvGuard thr("DACEPP_JIT_THRESHOLD", "1");
  EnvGuard sync("DACEPP_JIT_SYNC", "1");
  Bindings b = run_current_config();
  expect_matches_reference(b, "tier1-native");
}

std::vector<std::string> kernel_names() {
  std::vector<std::string> names;
  for (const auto& k : kernels::suite()) names.push_back(k.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(All, TieredDifferential,
                         ::testing::ValuesIn(kernel_names()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Tier-1 policy
// ---------------------------------------------------------------------------

TEST(Tiering, NativeTierPromotesAndMatches) {
  EnvGuard thr("DACEPP_JIT_THRESHOLD", "1");
  EnvGuard sync("DACEPP_JIT_SYNC", "1");
  const Kernel& k = kernels::kernel("jacobi_2d");
  const sym::SymbolMap& sizes = k.presets.at("test");
  Bindings ref = k.init(sizes);
  k.reference(ref, sizes);

  Bindings b = k.init(sizes);
  auto sdfg = fe::compile_to_sdfg(k.source);
  xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
  rt::Executor ex(*sdfg);
  ex.run(b, sizes);
  EXPECT_GT(ex.native_promotions(), 0);
  EXPECT_GT(ex.native_launches(), 0);
  for (const auto& out : k.outputs) {
    EXPECT_TRUE(rt::allclose(b.at(out), ref.at(out), 1e-9, 1e-11))
        << "output '" << out << "' diverges under the native tier";
  }
}

TEST(Tiering, JitDisabledStaysOnTier0) {
  EnvGuard jit("DACEPP_JIT", "0");
  EnvGuard thr("DACEPP_JIT_THRESHOLD", "1");
  EnvGuard sync("DACEPP_JIT_SYNC", "1");
  const Kernel& k = kernels::kernel("jacobi_2d");
  const sym::SymbolMap& sizes = k.presets.at("test");
  Bindings ref = k.init(sizes);
  k.reference(ref, sizes);

  Bindings b = k.init(sizes);
  auto sdfg = fe::compile_to_sdfg(k.source);
  rt::Executor ex(*sdfg);
  ex.run(b, sizes);
  EXPECT_EQ(ex.native_promotions(), 0);
  EXPECT_EQ(ex.native_launches(), 0);
  for (const auto& out : k.outputs) {
    EXPECT_TRUE(rt::allclose(b.at(out), ref.at(out), 1e-9, 1e-11));
  }
}

TEST(Tiering, MissingCompilerFallsBackToTier0) {
  EnvGuard cc("DACEPP_JIT_CC", "/nonexistent/compiler");
  EnvGuard thr("DACEPP_JIT_THRESHOLD", "1");
  EnvGuard sync("DACEPP_JIT_SYNC", "1");
  const Kernel& k = kernels::kernel("jacobi_2d");
  const sym::SymbolMap& sizes = k.presets.at("test");
  Bindings ref = k.init(sizes);
  k.reference(ref, sizes);

  Bindings b = k.init(sizes);
  auto sdfg = fe::compile_to_sdfg(k.source);
  rt::Executor ex(*sdfg);
  ex.run(b, sizes);
  // The build was attempted but failed; execution must quietly pin the
  // programs to Tier 0 and still be correct.
  EXPECT_GT(ex.native_promotions(), 0);
  EXPECT_EQ(ex.native_launches(), 0);
  for (const auto& out : k.outputs) {
    EXPECT_TRUE(rt::allclose(b.at(out), ref.at(out), 1e-9, 1e-11));
  }
}

TEST(Tiering, BrokenCompilerIsProbedOnce) {
  // Once a build of a program fails, the failure is negative-cached on
  // (program hash, compiler): other dtype specializations must come back
  // immediately failed instead of probing the broken compiler again.
  Program p;
  p.n_iregs = 2;
  p.n_fregs = 1;
  p.arrays = {"out"};
  p.code = {
      Instr{.op = Op::IConst, .a = 0, .imm = 77443},  // unique hash
      Instr{.op = Op::IConst, .a = 1, .imm = 0},
      Instr{.op = Op::FFromI, .a = 0, .b = 0},
      Instr{.op = Op::Store, .a = 0, .b = 1, .imm = 0},
      Instr{.op = Op::Halt},
  };
  rt::TierConfig cfg;
  cfg.compiler = "/nonexistent/compiler";
  cfg.sync = true;
  auto h1 = rt::request_native(p, {ir::DType::f64}, cfg);
  ASSERT_EQ(h1->state.load(), rt::NativeProgram::kFailed);

  // Async request for a different specialization: without the negative
  // cache this would spawn another doomed build and report kCompiling.
  cfg.sync = false;
  auto h2 = rt::request_native(p, {ir::DType::f32}, cfg);
  EXPECT_EQ(h2->state.load(), rt::NativeProgram::kFailed);
  // And the handle is cached: asking again returns the same dead handle.
  EXPECT_EQ(rt::request_native(p, {ir::DType::f32}, cfg).get(), h2.get());
}

// ---------------------------------------------------------------------------
// Bytecode optimizer
// ---------------------------------------------------------------------------

TEST(BytecodeOpt, ReducesExecutedInstructionsOnFusedStencil) {
  const Kernel& k = kernels::kernel("jacobi_2d");
  const sym::SymbolMap& sizes = k.presets.at("test");
  auto sdfg = fe::compile_to_sdfg(k.source);
  xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
  int sid = -1;
  int entry = find_top_map(*sdfg, &sid);
  ASSERT_GE(entry, 0) << "no top-level map after auto-optimize";
  const ir::State& st = sdfg->state(sid);

  Program unopt = rt::compile_map_scope(*sdfg, st, entry);
  Program opt = unopt;
  rt::OptStats os = rt::optimize_program(opt);
  EXPECT_GT(os.eliminated + os.folded + os.strength_reduced, 0);

  // Bind both programs to identically initialized fresh tensors.
  auto make_arrays = [&](const Program& p, Bindings& store) {
    std::vector<rt::ArrayRef> refs;
    unsigned seed = 7;
    for (const std::string& name : p.arrays) {
      const auto& desc = sdfg->arrays().at(name);
      std::vector<int64_t> shape;
      for (const auto& e : desc.shape) shape.push_back(e.eval(sizes));
      rt::Tensor t(desc.dtype, shape);
      kernels::fill_pattern(t, seed++);
      auto [it, ok] = store.emplace(name, t);
      (void)ok;
      refs.push_back(rt::ArrayRef{it->second.data(), desc.dtype});
    }
    return refs;
  };
  Bindings store0, store1;
  std::vector<rt::ArrayRef> arr0 = make_arrays(unopt, store0);
  std::vector<rt::ArrayRef> arr1 = make_arrays(opt, store1);
  std::vector<int64_t> syms;
  for (const std::string& s : unopt.symbols) syms.push_back(sizes.at(s));
  ASSERT_EQ(opt.symbols, unopt.symbols);

  const auto* me = st.node_as<const ir::MapEntry>(entry);
  int64_t begin = me->range.range(0).begin.eval(sizes);
  int64_t end = me->range.range(0).end.eval(sizes);

  rt::VMStats s0, s1;
  rt::vm_run(unopt, arr0, syms, begin, end, &s0);
  rt::vm_run(opt, arr1, syms, begin, end, &s1);

  // Same work, same memory traffic, same numbers...
  EXPECT_EQ(s0.loads, s1.loads);
  EXPECT_EQ(s0.stores, s1.stores);
  EXPECT_EQ(s0.flops, s1.flops);
  for (const std::string& name : unopt.arrays) {
    EXPECT_TRUE(rt::allclose(store0.at(name), store1.at(name), 0, 0))
        << "array '" << name << "' diverges after optimization";
  }
  // ...but at least 30% fewer dispatched instructions.
  EXPECT_LE(s1.instrs * 10, s0.instrs * 7)
      << "optimized " << s1.instrs << " vs unoptimized " << s0.instrs;
}

TEST(BytecodeOpt, IMovSemantics) {
  Program p;
  p.n_iregs = 3;
  p.n_fregs = 1;
  p.arrays.push_back("out");
  p.code = {
      Instr{.op = Op::IConst, .a = 0, .imm = 41},
      Instr{.op = Op::IMov, .a = 1, .b = 0},
      Instr{.op = Op::IConst, .a = 2, .imm = 0},
      Instr{.op = Op::FFromI, .a = 0, .b = 1},
      Instr{.op = Op::Store, .a = 0, .b = 2, .imm = 0},
      Instr{.op = Op::Halt},
  };
  rt::Tensor t(ir::DType::f64, {1});
  std::vector<rt::ArrayRef> arrays{rt::ArrayRef{t.data(), ir::DType::f64}};
  rt::vm_run(p, arrays, {}, 0, 0, nullptr);
  EXPECT_EQ(t.get_flat(0), 41.0);
}

TEST(BytecodeOpt, DisassembleGolden) {
  Program p;
  p.n_iregs = 3;
  p.n_fregs = 1;
  p.code = {
      Instr{.op = Op::IConst, .a = 2, .imm = 5},
      Instr{.op = Op::IMov, .a = 1, .b = 2},
      Instr{.op = Op::IAdd, .a = 1, .b = 1, .c = 2},
      Instr{.op = Op::FConst, .a = 0, .fimm = 1.5},
      Instr{.op = Op::JGe, .a = 1, .b = 2, .imm = 5},
      Instr{.op = Op::Halt},
  };
  const char* want =
      "0: iconst a=2 b=0 c=0 imm=5\n"
      "1: imov a=1 b=2 c=0 imm=0\n"
      "2: iadd a=1 b=1 c=2 imm=0\n"
      "3: fconst a=0 b=0 c=0 imm=0 f=1.5\n"
      "4: jge a=1 b=2 c=0 imm=5\n"
      "5: halt a=0 b=0 c=0 imm=0\n";
  EXPECT_EQ(p.disassemble(), want);
}

TEST(BytecodeOpt, OptimizerIsIdempotent) {
  const Kernel& k = kernels::kernel("jacobi_1d");
  auto sdfg = fe::compile_to_sdfg(k.source);
  xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
  int sid = -1;
  int entry = find_top_map(*sdfg, &sid);
  ASSERT_GE(entry, 0);
  Program p = rt::compile_map_scope(*sdfg, sdfg->state(sid), entry);
  rt::optimize_program(p);
  Program once = p;
  rt::OptStats second = rt::optimize_program(p);
  EXPECT_EQ(second.folded, 0);
  EXPECT_EQ(second.hoisted, 0);
  EXPECT_EQ(second.strength_reduced, 0);
  EXPECT_EQ(second.eliminated, 0);
  EXPECT_EQ(p.code.size(), once.code.size());
}

// ---------------------------------------------------------------------------
// Thread pool
// ---------------------------------------------------------------------------

// Splittable atomic-WCR sum over A[0..n) into B[0]; the i0/i1 chunk
// protocol means any worker count must produce the same reduction.
Program wcr_sum_program() {
  Program p;
  p.splittable = true;
  p.n_iregs = 5;  // i0/i1 chunk bounds, i2 loop var, i3 zero, i4 step
  p.n_fregs = 1;
  p.arrays = {"A", "B"};
  p.code = {
      Instr{.op = Op::IConst, .a = 3, .imm = 0},
      Instr{.op = Op::IConst, .a = 4, .imm = 1},
      Instr{.op = Op::IMov, .a = 2, .b = 0},
      Instr{.op = Op::JGe, .a = 2, .b = 1, .imm = 8},
      Instr{.op = Op::Load, .a = 0, .b = 2, .imm = 0},
      Instr{.op = Op::StoreWcr, .a = 0, .b = 3, .c = 1, .flag = 1, .imm = 1},
      Instr{.op = Op::IAdd, .a = 2, .b = 2, .c = 4},
      Instr{.op = Op::Jmp, .imm = 3},
      Instr{.op = Op::Halt},
  };
  return p;
}

TEST(ThreadPoolWcr, ReductionAgreesAcrossWorkerCounts) {
  const int64_t n = 100000;
  rt::Tensor a(ir::DType::f64, {n});
  for (int64_t i = 0; i < n; ++i) a.set_flat(i, 0.25 * (i % 31) - 1.0);
  Program p = wcr_sum_program();

  auto run_with = [&](int workers) {
    rt::Tensor out(ir::DType::f64, {1});
    out.set_flat(0, 0.0);
    std::vector<rt::ArrayRef> arrays{
        rt::ArrayRef{a.data(), ir::DType::f64},
        rt::ArrayRef{out.data(), ir::DType::f64}};
    rt::ThreadPool pool(workers);
    pool.parallel_for(n, [&](int64_t lo, int64_t hi) {
      rt::vm_run(p, arrays, {}, lo, hi, nullptr);
    });
    return out.get_flat(0);
  };

  double serial = run_with(1);
  double parallel = run_with(8);
  // Atomic FP adds commute up to rounding; the chunk sums themselves are
  // deterministic, so the tolerance only covers association order.
  EXPECT_NEAR(serial, parallel, 1e-9 * std::abs(serial) + 1e-12);
}

}  // namespace
}  // namespace dace
