// Differential fuzzer harness tests: the generator must be deterministic
// and produce valid programs, the harness must agree across configs on a
// deterministic smoke range, and the minimizer must shrink failing
// programs while preserving the failure.
#include <gtest/gtest.h>

#include "analysis/absint.hpp"
#include "frontend/lowering.hpp"
#include "runtime/tensor_ops.hpp"
#include "testing/fuzzgen.hpp"

namespace dace::fuzz {
namespace {

TEST(FuzzGen, SameSeedSameProgram) {
  for (uint64_t seed : {0ull, 1ull, 17ull, 123456789ull}) {
    EXPECT_EQ(generate_program(seed), generate_program(seed));
    EXPECT_EQ(symbol_values(seed), symbol_values(seed));
  }
}

TEST(FuzzGen, DifferentSeedsDiverge) {
  // Not guaranteed for any single pair, but across a handful of seeds at
  // least two programs must differ -- otherwise the generator is constant.
  std::string first = generate_program(0);
  bool any_different = false;
  for (uint64_t seed = 1; seed <= 8; ++seed)
    any_different |= generate_program(seed) != first;
  EXPECT_TRUE(any_different);
}

TEST(FuzzGen, GeneratedProgramsCompile) {
  for (uint64_t seed = 0; seed < 25; ++seed) {
    std::string src = generate_program(seed);
    std::unique_ptr<ir::SDFG> g;
    ASSERT_NO_THROW(g = fe::compile_to_sdfg(src))
        << "seed " << seed << ":\n" << src;
    EXPECT_NO_THROW(g->validate()) << "seed " << seed;
  }
}

TEST(FuzzGen, SymbolSizesSmallAndPositive) {
  for (uint64_t seed = 0; seed < 50; ++seed) {
    for (const auto& [name, value] : symbol_values(seed)) {
      EXPECT_GE(value, 3) << name;
      EXPECT_LE(value, 7) << name;
    }
  }
}

TEST(FuzzGen, CloneBindingsIsDeep) {
  rt::Bindings a = make_inputs(3);
  rt::Bindings b = clone_bindings(a);
  ASSERT_FALSE(a.empty());
  const std::string& name = a.begin()->first;
  double before = b.at(name).get_flat(0);
  a.at(name).set_flat(0, before + 100.0);
  EXPECT_DOUBLE_EQ(b.at(name).get_flat(0), before);
}

TEST(FuzzDifferential, SmokeRangeAgrees) {
  // A small deterministic slice of the acceptance sweep (0..500 runs in
  // the sdfg-fuzz tool); any finding here is a real compiler bug.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    DiffResult r = run_differential(generate_program(seed), seed);
    EXPECT_FALSE(r.failed())
        << "seed " << seed << ": " << diff_status_name(r.status) << " -- "
        << r.detail;
  }
}

TEST(FuzzAbsint, NoErrorFindingsOnValidPrograms) {
  // Generated programs are well-formed by construction: the three-valued
  // absint lints may warn (Unknown) but must never *refute* an access or
  // report an uninitialized element read.  A single Error here is a
  // soundness bug in the interval framework, not in the program.
  for (uint64_t seed = 0; seed < 50; ++seed) {
    std::string src = generate_program(seed);
    auto g = fe::compile_to_sdfg(src);
    analysis::AnalysisReport report;
    analysis::absint::lint(*g, report);
    for (const auto& d : report.diagnostics()) {
      EXPECT_NE(d.severity, analysis::Severity::Error)
          << "seed " << seed << ": [" << d.analysis << "] " << d.message
          << "\n" << src;
    }
  }
}

TEST(FuzzDifferential, BrokenProgramIsContained) {
  // A program that does not compile must be reported as CompileError,
  // never as an uncontained crash.
  DiffResult r = run_differential(
      "@dace.program\ndef f(A: dace.float64[N, M]):\n    A[:] = nope\n", 0);
  EXPECT_EQ(r.status, DiffStatus::CompileError) << r.detail;
}

TEST(FuzzMinimize, ShrinksWhilePreservingPredicate) {
  std::string src = generate_program(2);
  // Predicate: program still contains the out-array assignment marker.
  auto pred = [](const std::string& s) {
    return fe::compile_to_sdfg(s) != nullptr &&
           s.find("out") != std::string::npos;
  };
  ASSERT_TRUE(pred(src));
  std::string small = minimize(src, pred);
  EXPECT_TRUE(pred(small));
  EXPECT_LE(small.size(), src.size());
  // The signature survives minimization.
  EXPECT_NE(small.find("def fuzz("), std::string::npos);
}

TEST(FuzzMinimize, KeepsHeaderAndAtLeastOneBodyLine) {
  std::string src = generate_program(5);
  std::string small = minimize(src, [](const std::string&) {
    return true;  // everything "fails": minimizer must not empty the body
  });
  // The function header survives and at least one body line remains.
  size_t header_end = small.find("):");
  ASSERT_NE(header_end, std::string::npos);
  EXPECT_NE(small.find_first_not_of(" \t\r\n", header_end + 2),
            std::string::npos);
}

}  // namespace
}  // namespace dace::fuzz
