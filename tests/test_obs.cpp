// Observability layer tests: the obs:: event substrate, per-node SDFG
// instrumentation, the tiering non-perturbation guarantee, the simMPI
// virtual timeline, and trace determinism.  These back the guarantees
// documented in docs/OBSERVABILITY.md.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <tuple>
#include <vector>

#include "common/obs.hpp"
#include "distributed/simmpi.hpp"
#include "frontend/lowering.hpp"
#include "kernels/suite.hpp"
#include "runtime/executor.hpp"
#include "runtime/instrumentation.hpp"
#include "transforms/auto_optimize.hpp"

namespace dace {
namespace {

using kernels::Kernel;
using rt::Bindings;

/// Scoped environment override; restores the previous value on exit.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (had_old_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_, old_;
  bool had_old_ = false;
};

/// First top-level map entry of the SDFG, or -1.
int find_top_map(const ir::SDFG& sdfg, int* state_id) {
  for (int s = 0; s < sdfg.num_states(); ++s) {
    const ir::State& st = sdfg.state(s);
    for (int id : st.node_ids()) {
      if (st.node(id)->kind == ir::NodeKind::MapEntry &&
          st.scope_of(id) == -1) {
        *state_id = s;
        return id;
      }
    }
  }
  return -1;
}

/// Tracing on with a clean buffer for the test body; off (and clean)
/// afterwards so the global switch never leaks into other suites.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_enabled(true);
    obs::clear();
  }
  void TearDown() override {
    obs::clear();
    obs::set_enabled(false);
  }
};

std::vector<obs::TraceEvent> events_in(const char* cat) {
  std::vector<obs::TraceEvent> out;
  for (auto& e : obs::snapshot())
    if (std::string(e.cat) == cat) out.push_back(e);
  return out;
}

// ---------------------------------------------------------------------------
// Core substrate.
// ---------------------------------------------------------------------------

TEST(ObsCore, DisabledPathRecordsNothing) {
  obs::set_enabled(false);
  obs::clear();
  size_t before = obs::event_count();
  obs::complete("t", "span", obs::now_ns(), 10);
  obs::instant("t", "instant");
  obs::counter("t", "ctr", 1.0);
  OBS_INSTANT("t", "macro");
  OBS_COUNTER("t", "macro-ctr", 2);
  {
    obs::Span s("t", "raii");
    EXPECT_FALSE(s.active());
    OBS_SPAN("t", "macro-span");
  }
  EXPECT_EQ(obs::event_count(), before);
}

TEST_F(ObsTest, SnapshotIsSortedByPidTidTs) {
  // Emit out of order across both timelines.
  obs::instant_at("t", "v-late", 500.0, 1, 2);
  obs::instant_at("t", "v-early", 10.0, 1, 0);
  obs::instant("t", "host");
  auto evs = obs::snapshot();
  ASSERT_EQ(evs.size(), 3u);
  auto key = [](const obs::TraceEvent& e) {
    return std::make_tuple(e.pid, e.tid, e.ts_us);
  };
  EXPECT_TRUE(std::is_sorted(evs.begin(), evs.end(),
                             [&](const obs::TraceEvent& a,
                                 const obs::TraceEvent& b) {
                               return key(a) < key(b);
                             }));
  EXPECT_EQ(evs.front().pid, 0);  // host timeline first
  EXPECT_EQ(evs.back().name, "v-late");
}

TEST_F(ObsTest, ChromeJsonShape) {
  obs::complete("cat", "work", obs::now_ns(), 1000, "{\"k\":1}");
  obs::instant_at("fault", "drop", 42.0, 1, 3);
  std::string doc = obs::to_chrome_json();
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(doc.find("process_name"), std::string::npos);
  EXPECT_NE(doc.find("simMPI virtual time"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Per-node SDFG instrumentation.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, EnvTimerProfilesEveryLaunchNode) {
  EnvGuard inst("DACE_INSTRUMENT", "timer");
  const Kernel& k = kernels::kernel("jacobi_2d");
  const sym::SymbolMap& sizes = k.presets.at("test");
  Bindings b = k.init(sizes);
  auto sdfg = fe::compile_to_sdfg(k.source);
  xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
  rt::Executor ex(*sdfg);
  ex.run(b, sizes);

  const auto& prof = ex.instrumentation().profiles();
  ASSERT_FALSE(prof.empty());
  bool saw_map = false;
  for (const auto& [key, p] : prof) {
    EXPECT_GT(p.invocations, 0) << p.label;
    EXPECT_GT(p.total_ns, 0) << p.label;
    if (p.kind == "map") {
      saw_map = true;
      EXPECT_GT(p.iterations, 0) << p.label;
      if (p.tier == 0) {
        EXPECT_GT(p.vm.instrs, 0u) << p.label;
      }
    }
  }
  EXPECT_TRUE(saw_map);

  // Each profiled execution is also a "node" span on the host timeline.
  auto node_evs = events_in("node");
  ASSERT_FALSE(node_evs.empty());
  for (auto& e : node_evs) {
    EXPECT_EQ(e.phase, obs::Phase::Complete);
    EXPECT_NE(e.args.find("\"tier\""), std::string::npos);
  }
}

TEST_F(ObsTest, AttributeCounterInstrumentsOnlyThatNode) {
  // No DACE_INSTRUMENT: only the explicitly tagged map is measured.
  EnvGuard inst("DACE_INSTRUMENT", "");
  const Kernel& k = kernels::kernel("jacobi_2d");
  const sym::SymbolMap& sizes = k.presets.at("test");
  auto sdfg = fe::compile_to_sdfg(k.source);
  xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
  int state_id = -1;
  int map_id = find_top_map(*sdfg, &state_id);
  ASSERT_GE(map_id, 0);
  sdfg->state(state_id).node(map_id)->instrument = ir::Instrument::Counter;

  Bindings b = k.init(sizes);
  rt::Executor ex(*sdfg);
  ex.run(b, sizes);

  const auto& prof = ex.instrumentation().profiles();
  ASSERT_EQ(prof.size(), 1u);
  const auto& p = prof.begin()->second;
  EXPECT_EQ(prof.begin()->first, std::make_pair(state_id, map_id));
  EXPECT_EQ(p.kind, "map");
  EXPECT_GT(p.iterations, 0);

  // Counter mode emits cumulative-iteration counter samples, not spans.
  auto node_evs = events_in("node");
  ASSERT_FALSE(node_evs.empty());
  for (auto& e : node_evs) EXPECT_EQ(e.phase, obs::Phase::Counter);
  EXPECT_DOUBLE_EQ(node_evs.back().value, (double)p.iterations);
}

TEST_F(ObsTest, StateTimerNeedsExplicitAttribute) {
  // DACE_INSTRUMENT applies at launch granularity; states opt in per
  // attribute so a process-wide default cannot double-count everything.
  EnvGuard inst("DACE_INSTRUMENT", "");
  const Kernel& k = kernels::kernel("jacobi_2d");
  const sym::SymbolMap& sizes = k.presets.at("test");
  auto sdfg = fe::compile_to_sdfg(k.source);
  xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
  sdfg->state(0).instrument = ir::Instrument::Timer;

  Bindings b = k.init(sizes);
  rt::Executor ex(*sdfg);
  ex.run(b, sizes);

  const auto& prof = ex.instrumentation().profiles();
  auto it = prof.find({0, -1});
  ASSERT_NE(it, prof.end());
  EXPECT_EQ(it->second.kind, "state");
  EXPECT_GT(it->second.invocations, 0);
  EXPECT_GT(it->second.total_ns, 0);
}

// ---------------------------------------------------------------------------
// Regression: instrumentation must not perturb tier promotion.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, InstrumentationDoesNotPerturbTiering) {
  EnvGuard thr("DACEPP_JIT_THRESHOLD", "1");
  EnvGuard sync("DACEPP_JIT_SYNC", "1");
  const Kernel& k = kernels::kernel("jacobi_2d");
  const sym::SymbolMap& sizes = k.presets.at("test");

  int64_t promos_plain = 0, promos_instrumented = 0;
  {
    EnvGuard inst("DACE_INSTRUMENT", "");
    Bindings b = k.init(sizes);
    auto sdfg = fe::compile_to_sdfg(k.source);
    xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
    rt::Executor ex(*sdfg);
    ex.run(b, sizes);
    promos_plain = ex.native_promotions();
    EXPECT_FALSE(ex.instrumentation().active());
  }
  {
    EnvGuard inst("DACE_INSTRUMENT", "timer");
    Bindings b = k.init(sizes);
    auto sdfg = fe::compile_to_sdfg(k.source);
    xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
    rt::Executor ex(*sdfg);
    ex.run(b, sizes);
    promos_instrumented = ex.native_promotions();

    // The profiles must see the native tier, proving measurement
    // continued across the promotion rather than pinning Tier 0.
    bool saw_tier1 = false;
    for (const auto& [key, p] : ex.instrumentation().profiles())
      if (p.kind == "map" && p.tier >= 1) saw_tier1 = true;
    EXPECT_TRUE(saw_tier1);
  }
  EXPECT_GT(promos_plain, 0);
  EXPECT_EQ(promos_plain, promos_instrumented)
      << "instrumented run promoted differently from the plain run";
}

// ---------------------------------------------------------------------------
// Distributed virtual timeline.
// ---------------------------------------------------------------------------

void ring_exchange(dist::Comm& c) {
  double buf[16] = {0};
  int next = (c.rank() + 1) % c.size();
  int prev = (c.rank() + c.size() - 1) % c.size();
  if (c.rank() % 2 == 0) {
    c.send(buf, 16, next, 7);
    c.recv(buf, 16, prev, 7);
  } else {
    c.recv(buf, 16, prev, 7);
    c.send(buf, 16, next, 7);
  }
}

TEST_F(ObsTest, SimMpiEventsLandOnVirtualTimeline) {
  dist::World w(4);
  w.run(ring_exchange);
  auto comm = events_in("comm");
  ASSERT_FALSE(comm.empty());
  for (auto& e : comm) {
    EXPECT_EQ(e.pid, 1) << e.name;
    EXPECT_GE(e.tid, 0);
    EXPECT_LT(e.tid, 4);
    EXPECT_GE(e.ts_us, 0.0);  // virtual clock * 1e6
  }
  // Every rank communicated, so every rank has timeline events.
  for (int r = 0; r < 4; ++r) {
    EXPECT_TRUE(std::any_of(comm.begin(), comm.end(),
                            [&](const obs::TraceEvent& e) {
                              return e.tid == r;
                            }))
        << "no events for rank " << r;
  }
}

TEST_F(ObsTest, FaultInjectionsAppearAsInstants) {
  dist::FaultPlan fp;
  fp.seed = 11;
  fp.drop_prob = 0.5;
  fp.dup_prob = 0.2;
  dist::World w(4);
  w.set_fault_plan(fp);
  w.run(ring_exchange);
  auto faults = events_in("fault");
  ASSERT_FALSE(faults.empty());
  for (auto& e : faults) {
    EXPECT_EQ(e.phase, obs::Phase::Instant);
    EXPECT_EQ(e.pid, 1);
    EXPECT_NE(e.args.find("\"peer\""), std::string::npos);
  }
  // Dropped sends are retried; the retransmissions are on the timeline.
  auto comm = events_in("comm");
  EXPECT_TRUE(std::any_of(comm.begin(), comm.end(),
                          [](const obs::TraceEvent& e) {
                            return e.name == "retransmit";
                          }));
}

// ---------------------------------------------------------------------------
// Determinism: same deterministic workload -> same event sequence.
// ---------------------------------------------------------------------------

using Sig = std::vector<std::tuple<int, int, char, std::string, std::string>>;

Sig signature() {
  Sig sig;
  for (auto& e : obs::snapshot())
    sig.emplace_back(e.pid, e.tid, (char)e.phase, std::string(e.cat), e.name);
  return sig;
}

TEST_F(ObsTest, ExecutorTraceIsDeterministicAfterWarmup) {
  EnvGuard inst("DACE_INSTRUMENT", "timer");
  EnvGuard thr("DACEPP_JIT_THRESHOLD", "1");
  EnvGuard sync("DACEPP_JIT_SYNC", "1");
  const Kernel& k = kernels::kernel("jacobi_2d");
  const sym::SymbolMap& sizes = k.presets.at("test");
  auto sdfg = fe::compile_to_sdfg(k.source);
  xf::auto_optimize(*sdfg, ir::DeviceType::CPU);

  // Run 1 warms the process-wide JIT cache (emits the jit.compile span);
  // runs 2 and 3 hit the cache and must trace identically.
  auto one_run = [&] {
    Bindings b = k.init(sizes);
    rt::Executor ex(*sdfg);
    ex.run(b, sizes);
  };
  one_run();
  obs::clear();
  one_run();
  Sig second = signature();
  obs::clear();
  one_run();
  Sig third = signature();
  ASSERT_FALSE(second.empty());
  EXPECT_EQ(second, third);
}

TEST_F(ObsTest, FaultTimelineIsDeterministicForFixedSeed) {
  dist::FaultPlan fp;
  fp.seed = 11;
  fp.drop_prob = 0.5;
  fp.dup_prob = 0.2;
  auto one_world = [&] {
    dist::World w(4);
    w.set_fault_plan(fp);
    w.run(ring_exchange);
  };
  one_world();
  Sig first = signature();
  // Virtual timestamps must also repeat, not just the sequence.
  std::vector<double> ts1;
  for (auto& e : obs::snapshot()) ts1.push_back(e.ts_us);
  obs::clear();
  one_world();
  Sig second = signature();
  std::vector<double> ts2;
  for (auto& e : obs::snapshot()) ts2.push_back(e.ts_us);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_EQ(ts1, ts2);
}

}  // namespace
}  // namespace dace
