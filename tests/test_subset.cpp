#include "symbolic/subset.hpp"

#include <gtest/gtest.h>

namespace dace::sym {
namespace {

TEST(Range, SizeAndIndex) {
  Expr N = S("N");
  Range r(Expr(1), N - Expr(1));
  EXPECT_TRUE(r.size().equals(N - Expr(2)));
  Range idx = Range::index(Expr(5));
  EXPECT_TRUE(idx.is_index());
  EXPECT_TRUE(idx.size().is_one());
  Range stepped(Expr(0), Expr(10), Expr(3));
  EXPECT_EQ(stepped.size().constant(), 4);
}

TEST(Subset, FullAndElement) {
  Expr N = S("N");
  Subset full = Subset::full({N, Expr(4)});
  EXPECT_EQ(full.dims(), 2u);
  EXPECT_TRUE(full.num_elements().equals(N * Expr(4)));
  Subset el = Subset::element({Expr(2), S("i")});
  EXPECT_TRUE(el.is_element());
  EXPECT_TRUE(el.num_elements().is_one());
}

TEST(Subset, DisjointProvable) {
  Expr N = S("N");
  // [0, N) vs [N, 2N) -- provably disjoint.
  Subset a({Range(Expr(0), N)});
  Subset b({Range(N, N * Expr(2))});
  auto d = Subset::disjoint(a, b);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(*d);
}

TEST(Subset, OverlapProvable) {
  Expr N = S("N");
  Subset a({Range(Expr(0), N)});
  Subset b({Range(Expr(0), N)});
  auto d = Subset::disjoint(a, b);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(*d);
}

TEST(Subset, UnknownDisjointness) {
  // [i, i+1) vs [j, j+1): cannot be decided without knowing i, j.
  Subset a({Range::index(S("i"))});
  Subset b({Range::index(S("j"))});
  EXPECT_FALSE(Subset::disjoint(a, b).has_value());
}

TEST(Subset, DisjointInOneDimensionSuffices) {
  Expr N = S("N");
  Subset a({Range(Expr(0), N), Range(Expr(0), Expr(1))});
  Subset b({Range(Expr(0), N), Range(Expr(1), Expr(2))});
  auto d = Subset::disjoint(a, b);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(*d);
}

TEST(Subset, Covers) {
  Expr N = S("N");
  Subset whole({Range(Expr(0), N)});
  Subset interior({Range(Expr(1), N - Expr(1))});
  EXPECT_TRUE(whole.covers(interior));
  EXPECT_FALSE(interior.covers(whole));
  EXPECT_TRUE(whole.covers(whole));
}

TEST(Subset, CoversElement) {
  Expr N = S("N");
  Subset whole({Range(Expr(0), N), Range(Expr(0), N)});
  Subset el = Subset::element({S("i"), S("j")});
  // i, j >= 1 by assumption but also < N is not provable; element coverage
  // needs i <= N-1 which is unknown -> conservative false.
  EXPECT_FALSE(whole.covers(el));
  Subset el2 = Subset::element({Expr(0), Expr(0)});
  EXPECT_TRUE(whole.covers(el2));
}

TEST(Subset, OffsetBy) {
  Expr N = S("N");
  Subset a({Range(Expr(1), N)});
  Subset b = a.offset_by({Expr(-1)});
  EXPECT_TRUE(b.range(0).begin.is_zero());
  EXPECT_TRUE(b.range(0).end.equals(N - Expr(1)));
}

TEST(Subset, Substitution) {
  Subset a({Range(S("i"), S("i") + Expr(1))});
  Subset b = a.subs({{"i", Expr(3)}});
  EXPECT_EQ(b.range(0).begin.constant(), 3);
  EXPECT_TRUE(b.is_element());
}

TEST(Subset, ToString) {
  Subset s({Range(Expr(0), S("N")), Range::index(S("i"))});
  EXPECT_EQ(s.to_string(), "[0:N, i]");
}

TEST(Subset, StridedDisjointResidueClasses) {
  Expr N = S("N");
  // Even vs odd lattice: 0:2N:2 vs 1:2N:2 never meet although their
  // covering intervals overlap.
  Subset even({Range(Expr(0), N * Expr(2), Expr(2))});
  Subset odd({Range(Expr(1), N * Expr(2), Expr(2))});
  auto d = Subset::disjoint(even, odd);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(*d);
}

TEST(Subset, StridedOverlapSameLattice) {
  Expr N = S("N");
  // Same lattice, same interval: provable overlap.
  Subset a({Range(Expr(0), N * Expr(2), Expr(2))});
  Subset b({Range(Expr(0), N * Expr(2), Expr(2))});
  auto d = Subset::disjoint(a, b);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(*d);
  // Offset by a multiple of the step: begins differ but 2 is a shared
  // lattice point of both progressions.
  Subset e({Range(Expr(0), Expr(100), Expr(2))});
  Subset f({Range(Expr(2), Expr(100), Expr(2))});
  d = Subset::disjoint(e, f);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(*d);
}

TEST(Subset, NonPositiveStepDrawsNoConclusion) {
  Expr N = S("N");
  // A step of unknown sign inverts the covering interval; the analysis
  // must not claim anything.
  Subset a({Range(Expr(0), N, S("s") - S("t"))});
  Subset b({Range(N, N * Expr(2))});
  EXPECT_FALSE(Subset::disjoint(a, b).has_value());
}

TEST(Subset, CoversIdenticalStridedSymbolic) {
  Expr N = S("N");
  // Identical strided ranges with symbolic bounds cover each other.
  Subset a({Range(Expr(0), N, Expr(2))});
  Subset b({Range(Expr(0), N, Expr(2))});
  EXPECT_TRUE(a.covers(b));
  EXPECT_TRUE(b.covers(a));
}

TEST(Subset, CoversSubLattice) {
  // 0:100:4 is inside 0:100:2 (same residue class, coarser begin/end),
  // but 1:100:2 is not (misaligned).
  Subset coarse({Range(Expr(0), Expr(100), Expr(2))});
  Subset fine({Range(Expr(0), Expr(100), Expr(4))});
  EXPECT_FALSE(coarse.covers(fine));  // different steps: conservative
  Subset shifted({Range(Expr(2), Expr(100), Expr(2))});
  EXPECT_TRUE(coarse.covers(shifted));
  Subset odd({Range(Expr(1), Expr(100), Expr(2))});
  EXPECT_FALSE(coarse.covers(odd));
}

}  // namespace
}  // namespace dace::sym
