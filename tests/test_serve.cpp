// sdfg-serve daemon tests (src/serve/*).
//
// Four layers:
//   ServeProto*  -- frame protocol units: encode/decode round-trip, every
//                   E600..E605 decode failure, run-request body format,
//                   request keys, fault-plan determinism
//   FairQueue*   -- weighted fair queueing units: FIFO within a flow,
//                   weight-proportional interleave, admission bound,
//                   burst isolation
//   Serve*       -- daemon lifecycle against private sockets: ping/stats,
//                   differential run correctness, compile-error isolation
//                   + persisted negative cache, overload shedding,
//                   in-flight dedup (the 32-clients-one-compile
//                   acceptance), deadlines, wedged-job abandonment,
//                   malformed-frame isolation, drain, restart recovery,
//                   symlink refusal
//   ServeChaos*  -- the robustness core: a seeded connection-level fault
//                   plan (mid-frame disconnect, slow-loris, corrupt
//                   frames, executor crashes, wedged jobs, deadline
//                   storms) driven against a live daemon; every plan must
//                   leave the daemon alive and every surviving job's
//                   outputs bit-identical to an unfaulted run.
//                   `ctest -L chaos` sweeps this suite across seeds via
//                   DACE_SERVE_FAULT_SEED.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "codegen/artifact_cache.hpp"
#include "codegen/jit.hpp"
#include "common/common.hpp"
#include "common/diag.hpp"
#include "frontend/lowering.hpp"
#include "runtime/executor.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "transforms/auto_optimize.hpp"

namespace dace {
namespace {

namespace fs = std::filesystem;
using namespace dace::serve;

/// Scoped environment override; restores the previous value on exit.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (had_old_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_, old_;
  bool had_old_ = false;
};

std::string make_temp_dir() {
  char tmpl[] = "/tmp/dacepp-serve-test-XXXXXX";
  EXPECT_NE(mkdtemp(tmpl), nullptr);
  return tmpl;
}

/// Fresh socket path per test (unix socket paths are capped at ~107
/// bytes, so these live directly under /tmp).
std::string test_socket() {
  static std::atomic<int> counter{0};
  return "/tmp/dacepp-st-" + std::to_string((long)getpid()) + "-" +
         std::to_string(counter.fetch_add(1)) + ".sock";
}

ServeConfig test_config(const std::string& sock) {
  ServeConfig cfg;
  cfg.socket_path = sock;
  cfg.workers = 2;
  cfg.queue_max = 32;
  cfg.deadline_ms = 20000;
  return cfg;
}

Client make_client(const std::string& sock, int retries = 3) {
  ClientOptions o;
  o.socket_path = sock;
  o.retries = retries;
  return Client(o);
}

/// An axpy-shaped kernel; `coeff` varies the program (and its request
/// key) between tests and clients.
std::string axpy_src(const std::string& name, const std::string& coeff) {
  return "@dace.program\ndef " + name + "(A: dace.float64[N], B: dace.float64["
         "N]):\n    for i in dace.map[0:N]:\n        B[i] = " + coeff +
         " * A[i] + B[i]\n";
}

/// Local reference for the differential tests: same deterministic
/// argument synthesis as Server::run_job (the two must stay in sync),
/// same per-argument FNV-1a output checksums.
std::string local_outputs(const std::string& source, const std::string& fn,
                          const std::map<std::string, int64_t>& symbols) {
  diag::DiagSink sink;
  auto sdfg = fe::compile_to_sdfg(source, sink, fn);
  if (!sdfg) return "";
  xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
  sym::SymbolMap syms;
  for (const auto& [k, v] : symbols) syms[k] = v;
  rt::Bindings args;
  for (const auto& an : sdfg->arg_names()) {
    const auto& desc = sdfg->arrays().at(an);
    uint64_t h = cg::cache::fnv1a(an.data(), an.size());
    if (desc.is_scalar()) {
      args.emplace(an, rt::Tensor::scalar((double)(h % 97) / 7.0, desc.dtype));
    } else {
      std::vector<int64_t> shape;
      for (const auto& e : desc.shape) shape.push_back(e.eval(syms));
      rt::Tensor t(desc.dtype, shape);
      double* d = t.data();
      for (int64_t i = 0; i < t.size(); ++i)
        d[i] = (double)((h + (uint64_t)i * 2654435761ull) % 1024) / 64.0;
      args.emplace(an, std::move(t));
    }
  }
  rt::Executor ex(*sdfg);
  ex.run(args, syms);
  std::string out = "{";
  bool first = true;
  for (const auto& an : sdfg->arg_names()) {
    const rt::Tensor& t = args.at(an);
    uint64_t sum =
        cg::cache::fnv1a(t.data(), (size_t)t.size() * sizeof(double));
    char buf[17];
    snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)sum);
    out += std::string(first ? "" : ",") + "\"" + an + "\":\"" + buf + "\"";
    first = false;
  }
  return out + "}";
}

/// Raw unix-socket connect for protocol-abuse tests.
int connect_raw(const std::string& path) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  struct sockaddr_un sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sun_family = AF_UNIX;
  std::strncpy(sa.sun_path, path.c_str(), sizeof(sa.sun_path) - 1);
  EXPECT_EQ(::connect(fd, (struct sockaddr*)&sa, sizeof(sa)), 0);
  return fd;
}

// ---------------------------------------------------------------------------
// ServeProto: frame protocol units
// ---------------------------------------------------------------------------

TEST(ServeProto, FrameRoundTrip) {
  std::string bytes = encode_frame(Verb::Run, "payload bytes");
  EXPECT_EQ(bytes.size(), kHeaderBytes + 13);
  Decoded d = decode_frame(bytes, 1 << 20);
  ASSERT_EQ(d.status, Decoded::Ok);
  EXPECT_EQ(d.frame.verb, Verb::Run);
  EXPECT_EQ(d.frame.payload, "payload bytes");
  EXPECT_EQ(decode_frame("", 1 << 20).status, Decoded::Eof);
}

TEST(ServeProto, DecodeFailuresAreStructured) {
  std::string good = encode_frame(Verb::Ping, "x");
  auto expect_code = [&](std::string bytes, const char* code) {
    Decoded d = decode_frame(bytes, 64);
    EXPECT_EQ(d.status, Decoded::Error);
    EXPECT_EQ(d.code, code) << d.message;
    EXPECT_FALSE(d.message.empty());
  };
  std::string t = good;
  t[0] = 'Z';
  expect_code(t, "E600");
  t = good;
  t[4] = (char)0x09;
  expect_code(t, "E601");
  t = good;
  t[8] = (char)0xff;  // payload length 255 > 64 cap
  expect_code(t, "E602");
  expect_code(good.substr(0, 7), "E603");
  expect_code(good.substr(0, good.size() - 1), "E603");
  t = good;
  t[kHeaderBytes] ^= 0x01;
  expect_code(t, "E604");
  expect_code(encode_frame((Verb)4242, ""), "E605");
}

TEST(ServeProto, RunRequestRoundTrip) {
  RunRequest r;
  r.source = axpy_src("f", "2.0");
  r.function = "f";
  r.symbols = {{"N", 64}, {"M", 3}};
  r.deadline_ms = 750;
  r.weight = 4;
  r.id = "req-9";
  RunRequest back;
  std::string why;
  ASSERT_TRUE(parse_run_request(format_run_request(r), &back, &why)) << why;
  EXPECT_EQ(back.source, r.source);
  EXPECT_EQ(back.function, "f");
  EXPECT_EQ(back.symbols, r.symbols);
  EXPECT_EQ(back.deadline_ms, 750);
  EXPECT_EQ(back.weight, 4);
  EXPECT_EQ(back.id, "req-9");
}

TEST(ServeProto, MalformedBodiesAreRejected) {
  RunRequest out;
  std::string why;
  EXPECT_FALSE(parse_run_request("no separator", &out, &why));
  EXPECT_FALSE(parse_run_request("not-a-header\n--\nsrc", &out, &why));
  EXPECT_FALSE(parse_run_request("weight=heavy\n--\nsrc", &out, &why));
  EXPECT_FALSE(parse_run_request("sym.=3\n--\nsrc", &out, &why));
  EXPECT_FALSE(parse_run_request("--\n", &out, &why));
  EXPECT_FALSE(why.empty());
}

TEST(ServeProto, RequestKeyCoversResultInputs) {
  RunRequest a;
  a.source = axpy_src("f", "2.0");
  a.symbols = {{"N", 64}};
  RunRequest b = a;
  EXPECT_EQ(request_key(a), request_key(b));
  b.id = "different-id";  // correlation id does not change the result
  b.weight = 9;           // neither does scheduling weight
  b.deadline_ms = 1;      // nor the deadline
  EXPECT_EQ(request_key(a), request_key(b));
  b = a;
  b.symbols["N"] = 65;
  EXPECT_NE(request_key(a), request_key(b));
  b = a;
  b.source += "# trailing comment\n";
  EXPECT_NE(request_key(a), request_key(b));
  b = a;
  b.function = "g";
  EXPECT_NE(request_key(a), request_key(b));
}

TEST(ServeProto, FaultPlanIsDeterministicAndParsesItsOwnSpec) {
  ServeFaultPlan p = ServeFaultPlan::parse(
      "seed=7,disconnect=0.2,slow=0.1,corrupt=0.2,crash=0.1,wedge=0.05,"
      "storm=0.1");
  EXPECT_TRUE(p.active());
  EXPECT_EQ(p.seed, 7u);
  ServeFaultPlan q = ServeFaultPlan::parse(p.to_string());
  int faults = 0;
  for (uint64_t op = 0; op < 512; ++op) {
    EXPECT_EQ(p.decide(op), q.decide(op));
    if (p.decide(op) != ServeFault::None) ++faults;
  }
  EXPECT_GT(faults, 0);
  EXPECT_LT(faults, 512);
  ServeFaultPlan other = p;
  other.seed = 8;
  int diff = 0;
  for (uint64_t op = 0; op < 512; ++op)
    if (p.decide(op) != other.decide(op)) ++diff;
  EXPECT_GT(diff, 0);
  EXPECT_FALSE(ServeFaultPlan().active());
  EXPECT_EQ(ServeFaultPlan().decide(3), ServeFault::None);
}

// ---------------------------------------------------------------------------
// FairQueue units
// ---------------------------------------------------------------------------

TEST(FairQueue, FifoWithinOneFlow) {
  FairQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i, /*flow=*/1, /*weight=*/1));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(*q.pop(), i);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(FairQueue, AdmissionBound) {
  FairQueue<int> q(2);
  EXPECT_TRUE(q.push(1, 1, 1));
  EXPECT_TRUE(q.push(2, 2, 1));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.push(3, 3, 1));
  q.pop();
  EXPECT_TRUE(q.push(3, 3, 1));
}

TEST(FairQueue, WeightProportionalShare) {
  // Flow B (weight 2) should be served ~twice as often as flow A
  // (weight 1) while both are backlogged.
  FairQueue<char> q(64);
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.push('A', 1, 1));
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.push('B', 2, 2));
  int b_in_first_9 = 0;
  for (int i = 0; i < 9; ++i)
    if (*q.pop() == 'B') ++b_in_first_9;
  EXPECT_GE(b_in_first_9, 5);
  EXPECT_LE(b_in_first_9, 7);
}

TEST(FairQueue, LightFlowIsNotStarvedByABurst) {
  // A bursts 6 items; B's single item, arriving after two A dequeues,
  // must not wait behind the whole remaining burst.
  FairQueue<char> q(64);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(q.push('A', 1, 1));
  EXPECT_EQ(*q.pop(), 'A');
  EXPECT_EQ(*q.pop(), 'A');
  ASSERT_TRUE(q.push('B', 2, 1));
  int pops_until_b = 0;
  for (;;) {
    ++pops_until_b;
    if (*q.pop() == 'B') break;
  }
  EXPECT_LE(pops_until_b, 2) << "B waited behind the A burst";
}

// ---------------------------------------------------------------------------
// Serve: daemon lifecycle
// ---------------------------------------------------------------------------

TEST(Serve, PingAndStats) {
  std::string sock = test_socket();
  Server srv(test_config(sock));
  std::string why;
  ASSERT_TRUE(srv.start(&why)) << why;
  Client cli = make_client(sock);
  EXPECT_TRUE(cli.ping().ok);
  Reply st = cli.stats();
  ASSERT_TRUE(st.ok);
  EXPECT_EQ(json_find_int(st.payload, "accepted", -1), 0);
  EXPECT_EQ(json_find_int(st.payload, "completed", -1), 0);
  EXPECT_GE(json_find_int(st.payload, "connections", -1), 1);
  EXPECT_TRUE(srv.drain());
}

TEST(Serve, RunMatchesLocalExecutor) {
  std::string sock = test_socket();
  Server srv(test_config(sock));
  std::string why;
  ASSERT_TRUE(srv.start(&why)) << why;
  Client cli = make_client(sock);

  RunRequest req;
  req.source = axpy_src("axpy", "2.0");
  req.symbols["N"] = 256;
  req.id = "diff-1";
  Reply r = cli.run(req);
  ASSERT_TRUE(r.ok) << r.code << ": " << r.message;
  EXPECT_EQ(json_find_string(r.payload, "id"), "diff-1");
  EXPECT_EQ(json_find_string(r.payload, "status"), "ok");

  std::string expected = local_outputs(req.source, "", {{"N", 256}});
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(extract_outputs(r.payload), expected);

  // Determinism: the same request yields bit-identical outputs.
  Reply r2 = cli.run(req);
  ASSERT_TRUE(r2.ok);
  EXPECT_EQ(extract_outputs(r2.payload), extract_outputs(r.payload));
  EXPECT_TRUE(srv.drain());
}

TEST(Serve, CompileErrorIsIsolatedAndLandsInNegativeCache) {
  std::string cache_dir = make_temp_dir();
  EnvGuard g1("DACE_CACHE", "1");
  EnvGuard g2("DACE_CACHE_DIR", cache_dir.c_str());
  cg::cache::ArtifactCache::reset_for_testing();

  std::string sock = test_socket();
  Server srv(test_config(sock));
  std::string why;
  ASSERT_TRUE(srv.start(&why)) << why;
  Client cli = make_client(sock);

  RunRequest bad;
  bad.source = "@dace.program\ndef broken(A: dace.float64[N]):\n    A[i\n";
  bad.id = "bad-1";
  Reply r = cli.run(bad);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, "E611");

  // The failure persisted into the PR-8 negative cache...
  uint64_t neg_before = cg::cache::ArtifactCache::instance().stats().neg_hits;
  Reply r2 = cli.run(bad);
  EXPECT_FALSE(r2.ok);
  EXPECT_EQ(r2.code, "E611");
  EXPECT_NE(r2.message.find("negative cache"), std::string::npos);
  EXPECT_GT(cg::cache::ArtifactCache::instance().stats().neg_hits,
            neg_before);

  // ...and the daemon is fine.
  EXPECT_TRUE(cli.ping().ok);
  RunRequest good;
  good.source = axpy_src("still_fine", "1.5");
  good.symbols["N"] = 32;
  EXPECT_TRUE(cli.run(good).ok);
  EXPECT_TRUE(srv.drain());
  cg::cache::ArtifactCache::reset_for_testing();
  fs::remove_all(cache_dir);
}

TEST(Serve, OverloadShedsWithRetryAfter) {
  std::string sock = test_socket();
  ServeConfig cfg = test_config(sock);
  cfg.workers = 1;
  cfg.queue_max = 1;
  Server srv(cfg);
  std::string why;
  ASSERT_TRUE(srv.start(&why)) << why;

  // 8 near-simultaneous *distinct* jobs (distinct coefficients: no
  // dedup) against one worker and a one-slot queue: most must shed.
  const int kJobs = 8;
  std::atomic<int> ok{0}, shed{0}, other{0};
  std::atomic<int64_t> retry_hint{-1};
  std::vector<std::thread> threads;
  for (int t = 0; t < kJobs; ++t) {
    threads.emplace_back([&, t] {
      Client cli = make_client(sock, /*retries=*/0);
      RunRequest req;
      req.source = axpy_src("shed", std::to_string(t) + ".25");
      req.symbols["N"] = 4000000;
      Reply r = cli.run(req);
      if (r.ok) {
        ok.fetch_add(1);
      } else if (r.code == "E607") {
        shed.fetch_add(1);
        retry_hint.store(json_find_int(r.payload, "retry_after_ms", -1));
      } else {
        other.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_GE(ok.load(), 1);
  EXPECT_GE(shed.load(), 1) << "ok=" << ok << " other=" << other;
  EXPECT_GT(retry_hint.load(), 0) << "E607 must carry retry_after_ms";
  EXPECT_EQ(ok + shed + other, kJobs);
  EXPECT_EQ(srv.stats().shed, (uint64_t)shed.load());
  EXPECT_TRUE(srv.drain());
}

TEST(Serve, ThirtyTwoClientsOneCompile) {
  // The dedup acceptance: 32 concurrent identical jobs produce exactly
  // one compile (31 dedup hits) and one committed cache artifact.
  std::string cache_dir = make_temp_dir();
  EnvGuard g1("DACE_CACHE", "1");
  EnvGuard g2("DACE_CACHE_DIR", cache_dir.c_str());
  EnvGuard g3("DACEPP_JIT_SYNC", "1");
  EnvGuard g4("DACEPP_JIT_THRESHOLD", "1");
  cg::cache::ArtifactCache::reset_for_testing();

  std::string sock = test_socket();
  ServeConfig cfg = test_config(sock);
  cfg.workers = 4;
  cfg.queue_max = 64;
  Server srv(cfg);
  std::string why;
  ASSERT_TRUE(srv.start(&why)) << why;

  uint64_t jit_before = cg::jit_compile_count();
  RunRequest req;
  req.source = axpy_src("dedup32", "3.0");
  req.symbols["N"] = 4096;

  const int kClients = 32;
  std::vector<std::string> outputs(kClients);
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      ClientOptions o;
      o.socket_path = sock;
      o.retries = 0;
      o.io_timeout_ms = 60000;
      Client cli(o);
      RunRequest r = req;
      r.id = "c" + std::to_string(t);
      Reply rep = cli.run(r);
      if (rep.ok) outputs[(size_t)t] = extract_outputs(rep.payload);
      else errors[(size_t)t] = rep.code + ": " + rep.message;
    });
  }
  for (auto& t : threads) t.join();

  for (int t = 0; t < kClients; ++t) {
    ASSERT_FALSE(outputs[(size_t)t].empty()) << "client " << t << " failed: "
                                             << errors[(size_t)t];
    EXPECT_EQ(outputs[(size_t)t], outputs[0]);
  }
  ServeStats st = srv.stats();
  EXPECT_EQ(st.accepted, 1u);
  EXPECT_EQ(st.deduped, (uint64_t)(kClients - 1));
  EXPECT_EQ(st.completed, 1u);
  // Exactly one host-compiler invocation and one committed artifact.
  EXPECT_EQ(cg::jit_compile_count() - jit_before, 1u);
  EXPECT_EQ(cg::cache::ArtifactCache::instance().stats().commits, 1u);
  EXPECT_EQ(cg::cache::ArtifactCache::instance().list().size(), 1u);
  EXPECT_TRUE(srv.drain());
  cg::cache::ArtifactCache::reset_for_testing();
  fs::remove_all(cache_dir);
}

TEST(Serve, DeadlineCancelsJobAndDaemonSurvives) {
  std::string sock = test_socket();
  ServeConfig cfg = test_config(sock);
  cfg.wedge_grace_ms = 2000;  // cooperative cancel must win, not abandon
  Server srv(cfg);
  std::string why;
  ASSERT_TRUE(srv.start(&why)) << why;
  Client cli = make_client(sock, /*retries=*/0);

  RunRequest slow;
  slow.source = axpy_src("slow", "1.125");
  slow.symbols["N"] = 64000000;
  slow.deadline_ms = 40;
  Reply r = cli.run(slow);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, "E608") << r.message;
  EXPECT_GE(srv.stats().deadline_exceeded, 1u);

  // The pool and daemon are reusable immediately.
  RunRequest quick;
  quick.source = axpy_src("quick", "1.5");
  quick.symbols["N"] = 64;
  Reply r2 = cli.run(quick);
  EXPECT_TRUE(r2.ok) << r2.code << ": " << r2.message;
  EXPECT_TRUE(srv.drain());
}

TEST(Serve, WedgedJobIsAbandonedNotFatal) {
  std::string sock = test_socket();
  ServeConfig cfg = test_config(sock);
  cfg.deadline_ms = 100;
  cfg.wedge_grace_ms = 100;
  cfg.faults = ServeFaultPlan::parse("seed=1,wedge=1");  // every job wedges
  Server srv(cfg);
  std::string why;
  ASSERT_TRUE(srv.start(&why)) << why;
  Client cli = make_client(sock, /*retries=*/0);

  RunRequest req;
  req.source = axpy_src("wedge", "2.0");
  req.symbols["N"] = 64;
  Reply r = cli.run(req);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.code, "E608");
  EXPECT_NE(r.message.find("wedged"), std::string::npos);
  EXPECT_GE(srv.stats().wedged, 1u);
  EXPECT_TRUE(cli.ping().ok) << "a wedged job must not kill the daemon";
  EXPECT_TRUE(srv.drain());
}

TEST(Serve, MalformedFramesGetStructuredRepliesAndTheStreamCloses) {
  std::string sock = test_socket();
  Server srv(test_config(sock));
  std::string why;
  ASSERT_TRUE(srv.start(&why)) << why;

  // Garbage bytes: E600 reply, then the server closes the stream.
  {
    int fd = connect_raw(sock);
    std::string junk(64, 'Z');
    ASSERT_EQ(::send(fd, junk.data(), junk.size(), MSG_NOSIGNAL),
              (ssize_t)junk.size());
    Decoded d = read_frame(fd, 2000, 1 << 20);
    ASSERT_EQ(d.status, Decoded::Ok);
    EXPECT_EQ(d.frame.verb, Verb::ReplyError);
    EXPECT_EQ(json_find_string(d.frame.payload, "code"), "E600");
    EXPECT_EQ(read_frame(fd, 2000, 1 << 20).status, Decoded::Eof);
    ::close(fd);
  }

  // Corrupt payload: E604.
  {
    int fd = connect_raw(sock);
    std::string bytes = encode_frame(Verb::Ping, "abcdef");
    bytes[kHeaderBytes + 2] ^= 0x40;
    ASSERT_EQ(::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              (ssize_t)bytes.size());
    Decoded d = read_frame(fd, 2000, 1 << 20);
    ASSERT_EQ(d.status, Decoded::Ok);
    EXPECT_EQ(json_find_string(d.frame.payload, "code"), "E604");
    ::close(fd);
  }

  // Malformed run body: E606, and the *connection survives* (body
  // errors are per-request, the stream is still framed).
  {
    int fd = connect_raw(sock);
    std::string w;
    ASSERT_TRUE(write_frame(fd, Verb::Run, "not a run request", &w));
    Decoded d = read_frame(fd, 2000, 1 << 20);
    ASSERT_EQ(d.status, Decoded::Ok);
    EXPECT_EQ(json_find_string(d.frame.payload, "code"), "E606");
    ASSERT_TRUE(write_frame(fd, Verb::Ping, "", &w));
    d = read_frame(fd, 2000, 1 << 20);
    ASSERT_EQ(d.status, Decoded::Ok);
    EXPECT_EQ(d.frame.verb, Verb::ReplyOk);
    ::close(fd);
  }

  // Mid-frame disconnect: no reply possible, daemon unharmed.
  {
    int fd = connect_raw(sock);
    std::string bytes = encode_frame(Verb::Run, std::string(512, 'p'));
    ASSERT_GT(::send(fd, bytes.data(), bytes.size() / 2, MSG_NOSIGNAL), 0);
    ::close(fd);
  }
  EXPECT_GE(srv.stats().protocol_errors, 2u);
  Client cli = make_client(sock);
  EXPECT_TRUE(cli.ping().ok);
  EXPECT_TRUE(srv.drain());
}

TEST(Serve, DrainFinishesInFlightWorkAndExitsClean) {
  std::string sock = test_socket();
  Server srv(test_config(sock));
  std::string why;
  ASSERT_TRUE(srv.start(&why)) << why;

  // Put a moderately slow job in flight, then drain concurrently.
  std::string out;
  std::thread job([&] {
    Client cli = make_client(sock, 0);
    RunRequest req;
    req.source = axpy_src("draining", "2.5");
    req.symbols["N"] = 2000000;
    Reply r = cli.run(req);
    if (r.ok) out = extract_outputs(r.payload);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(srv.drain()) << "drain must not orphan the in-flight job";
  job.join();
  EXPECT_FALSE(out.empty()) << "the in-flight job must finish during drain";

  // After drain: socket gone, new daemon starts cleanly on the path.
  EXPECT_NE(access(sock.c_str(), F_OK), 0);
  Server again(test_config(sock));
  ASSERT_TRUE(again.start(&why)) << why;
  EXPECT_TRUE(make_client(sock).ping().ok);
  EXPECT_TRUE(again.drain());
}

TEST(Serve, DrainingDaemonRejectsNewWorkWithE610) {
  std::string sock = test_socket();
  Server srv(test_config(sock));
  std::string why;
  ASSERT_TRUE(srv.start(&why)) << why;

  // Hold a connection open, drain in the background, then submit on the
  // held connection: the reader is alive but must answer E610.
  int fd = connect_raw(sock);
  std::thread drainer([&] { srv.drain(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  RunRequest req;
  req.source = axpy_src("late", "2.0");
  req.symbols["N"] = 64;
  std::string w;
  if (write_frame(fd, Verb::Run, format_run_request(req), &w)) {
    Decoded d = read_frame(fd, 2000, 1 << 20);
    if (d.status == Decoded::Ok) {
      EXPECT_EQ(json_find_string(d.frame.payload, "code"), "E610");
    }
  }
  ::close(fd);
  drainer.join();
}

TEST(Serve, StaleSocketIsRecoveredLiveAndSymlinkRefused) {
  std::string sock = test_socket();

  // Plant a stale socket file (bind, close, no unlink: a crashed daemon).
  {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    struct sockaddr_un sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sun_family = AF_UNIX;
    std::strncpy(sa.sun_path, sock.c_str(), sizeof(sa.sun_path) - 1);
    ASSERT_EQ(::bind(fd, (struct sockaddr*)&sa, sizeof(sa)), 0);
    ::close(fd);
  }
  ASSERT_EQ(access(sock.c_str(), F_OK), 0);
  Server srv(test_config(sock));
  std::string why;
  ASSERT_TRUE(srv.start(&why)) << why;  // recovery: unlink + rebind
  EXPECT_TRUE(make_client(sock).ping().ok);

  // A second daemon must refuse to shadow the live one.
  Server shadow(test_config(sock));
  EXPECT_FALSE(shadow.start(&why));
  EXPECT_TRUE(srv.drain());

  // A symlinked socket path refuses to start at all.
  std::string target = sock + ".target";
  std::string link = sock + ".link";
  ASSERT_EQ(symlink(target.c_str(), link.c_str()), 0);
  ServeConfig cfg = test_config(link);
  Server lsrv(cfg);
  EXPECT_FALSE(lsrv.start(&why));
  EXPECT_NE(why.find("symlink"), std::string::npos);
  ::unlink(link.c_str());
}

// ---------------------------------------------------------------------------
// ServeChaos: the seeded connection-level fault sweep
// ---------------------------------------------------------------------------

TEST(ServeChaos, DaemonSurvivesFaultPlanWithBitIdenticalSurvivors) {
  uint64_t seed = 1;
  if (const char* e = std::getenv("DACE_SERVE_FAULT_SEED")) {
    if (*e) seed = (uint64_t)std::atoll(e);
  }
  ServeFaultPlan plan;
  plan.seed = seed;
  plan.disconnect_prob = 0.12;
  plan.slow_prob = 0.08;
  plan.corrupt_prob = 0.12;
  plan.crash_prob = 0.10;
  plan.wedge_prob = 0.05;
  plan.storm_prob = 0.10;

  const int kPrograms = 4;
  std::vector<RunRequest> reqs;
  for (int p = 0; p < kPrograms; ++p) {
    RunRequest r;
    r.source = axpy_src("chaos", std::to_string(p) + ".5");
    r.symbols["N"] = 512;
    reqs.push_back(r);
  }

  // Unfaulted baseline: the bit-exact outputs every surviving chaos job
  // must reproduce.
  std::vector<std::string> baseline(kPrograms);
  {
    std::string sock = test_socket();
    Server srv(test_config(sock));
    std::string why;
    ASSERT_TRUE(srv.start(&why)) << why;
    Client cli = make_client(sock);
    for (int p = 0; p < kPrograms; ++p) {
      Reply r = cli.run(reqs[(size_t)p]);
      ASSERT_TRUE(r.ok) << r.code << ": " << r.message;
      baseline[(size_t)p] = extract_outputs(r.payload);
      ASSERT_FALSE(baseline[(size_t)p].empty());
    }
    ASSERT_TRUE(srv.drain());
  }

  // Chaos run: server-side job faults + client-side connection faults,
  // both driven from the same seeded plan.
  std::string sock = test_socket();
  ServeConfig cfg = test_config(sock);
  cfg.deadline_ms = 2000;
  cfg.wedge_grace_ms = 150;
  cfg.io_timeout_ms = 250;  // slow-loris dribble can trip E603
  cfg.faults = plan;
  Server srv(cfg);
  std::string why;
  ASSERT_TRUE(srv.start(&why)) << why;

  uint64_t injected_before = faults_injected();
  const int kRounds = 3;
  std::atomic<int> survivors{0}, casualties{0}, mismatches{0};
  std::vector<std::thread> threads;
  for (int round = 0; round < kRounds; ++round) {
    for (int p = 0; p < kPrograms; ++p) {
      threads.emplace_back([&, p] {
        ClientOptions o;
        o.socket_path = sock;
        o.retries = 2;
        o.io_timeout_ms = 5000;
        o.faults = plan;  // chaos writes
        Client cli(o);
        Reply r = cli.run(reqs[(size_t)p]);
        if (!r.ok) {
          casualties.fetch_add(1);
          return;
        }
        survivors.fetch_add(1);
        if (extract_outputs(r.payload) != baseline[(size_t)p])
          mismatches.fetch_add(1);
      });
    }
  }
  for (auto& t : threads) t.join();

  // The differential oracle: no surviving job may differ from the
  // unfaulted baseline, and the daemon must still be alive.
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(faults_injected(), injected_before)
      << "the plan must actually inject faults";
  Client clean = make_client(sock);  // fault-free probe client
  EXPECT_TRUE(clean.ping().ok) << "daemon died under the fault plan";
  Reply st = clean.stats();
  ASSERT_TRUE(st.ok);
  EXPECT_TRUE(srv.drain()) << "drain must stay clean after chaos";
  // Sanity: the sweep did real work (some jobs survive under retries).
  EXPECT_GT(survivors.load() + casualties.load(), 0);
}

}  // namespace
}  // namespace dace
