// Persistent JIT artifact cache tests (codegen/artifact_cache.*).
//
// Three layers:
//   Cache*       -- protocol unit tests against a private store: key
//                   derivation, commit/lookup round-trip, corrupt-reject,
//                   LRU eviction, negative TTL, scratch lifecycle,
//                   writer-lock fallback
//   CacheRace*   -- concurrency: two threads and two forked processes
//                   racing on one key must produce exactly one committed
//                   artifact that both sides load; a crashed writer's
//                   stale lock file must not wedge the key
//   CacheChaos*  -- the robustness core: seeded filesystem faults (torn
//                   write, rename failure, bit rot, ENOSPC, crash between
//                   object and metadata publish) injected under a real
//                   tiered jacobi_2d run; every fault must degrade to a
//                   correct result, never to a wrong answer or a crash.
//                   `ctest -L chaos` sweeps this suite across seeds via
//                   DACE_CACHE_FAULT_SEED.
#include <gtest/gtest.h>
#include <sys/file.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "codegen/artifact_cache.hpp"
#include "codegen/jit.hpp"
#include "frontend/lowering.hpp"
#include "kernels/suite.hpp"
#include "runtime/executor.hpp"
#include "runtime/tiering.hpp"
#include "transforms/auto_optimize.hpp"

namespace dace {
namespace {

namespace fs = std::filesystem;
using cg::cache::ArtifactCache;
using cg::cache::CacheConfig;
using cg::cache::FsFaultPlan;
using kernels::Kernel;
using rt::Bindings;

/// Scoped environment override; restores the previous value on exit.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) {
      had_old_ = true;
      old_ = old;
    }
    setenv(name, value, 1);
  }
  ~EnvGuard() {
    if (had_old_) {
      setenv(name_.c_str(), old_.c_str(), 1);
    } else {
      unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_, old_;
  bool had_old_ = false;
};

std::string make_temp_dir() {
  char tmpl[] = "/tmp/dacepp-cache-test-XXXXXX";
  EXPECT_NE(mkdtemp(tmpl), nullptr);
  return tmpl;
}

std::string write_blob(const fs::path& p, const std::string& bytes) {
  std::ofstream f(p, std::ios::binary);
  f << bytes;
  return p.string();
}

/// A private store with small, deterministic limits.
class CacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = make_temp_dir();
    cfg_.enabled = true;
    cfg_.dir = root_ + "/store";
    cfg_.size_limit_bytes = 1 << 20;
    cfg_.negative_ttl_s = 3600;
    cfg_.lock_timeout_ms = 500;
    cache_ = std::make_unique<ArtifactCache>(cfg_);
  }
  void TearDown() override {
    cache_.reset();
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  ArtifactCache::KeyInfo key_info(uint64_t hash = 0xabc) {
    ArtifactCache::KeyInfo ki;
    ki.program_hash = hash;
    ki.compiler = "c++";
    ki.flags = "-O2";
    ki.dtypes = "float64";
    return ki;
  }

  /// Commit a synthetic artifact; returns its key.
  std::string commit_blob(const std::string& source, uint64_t hash,
                          const std::string& bytes) {
    auto ki = key_info(hash);
    std::string key = ArtifactCache::key_for(source, ki);
    std::string so = write_blob(root_ + "/blob-" + key + ".so", bytes);
    EXPECT_FALSE(cache_->commit(key, so, ki).empty());
    return key;
  }

  std::string root_;
  CacheConfig cfg_;
  std::unique_ptr<ArtifactCache> cache_;
};

// ---------------------------------------------------------------------------
// Protocol unit tests
// ---------------------------------------------------------------------------

TEST_F(CacheTest, KeyDependsOnEveryInput) {
  auto ki = key_info();
  std::string base = ArtifactCache::key_for("src", ki);
  EXPECT_EQ(base.size(), 16u);
  EXPECT_EQ(ArtifactCache::key_for("src", ki), base);  // deterministic

  EXPECT_NE(ArtifactCache::key_for("src2", ki), base);
  auto k2 = ki;
  k2.compiler = "clang++";
  EXPECT_NE(ArtifactCache::key_for("src", k2), base);
  k2 = ki;
  k2.flags = "-O3";
  EXPECT_NE(ArtifactCache::key_for("src", k2), base);
  k2 = ki;
  k2.dtypes = "float32";
  EXPECT_NE(ArtifactCache::key_for("src", k2), base);
  k2 = ki;
  k2.program_hash ^= 1;
  EXPECT_NE(ArtifactCache::key_for("src", k2), base);
}

TEST_F(CacheTest, CommitLookupRoundTrip) {
  auto ki = key_info();
  std::string key = ArtifactCache::key_for("src", ki);
  EXPECT_TRUE(cache_->lookup(key).empty());
  EXPECT_EQ(cache_->stats().misses, 1u);

  std::string so = write_blob(root_ + "/a.so", std::string(2048, 'x'));
  std::string committed = cache_->commit(key, so, ki);
  ASSERT_FALSE(committed.empty());
  EXPECT_NE(committed, so);  // lives in the store, not the scratch file

  EXPECT_EQ(cache_->lookup(key), committed);
  EXPECT_EQ(cache_->stats().hits, 1u);
  auto entries = cache_->list(true);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].valid);
  EXPECT_EQ(entries[0].key, key);
  EXPECT_EQ(entries[0].size, 2048);
  EXPECT_EQ(entries[0].compiler, "c++");
  // Committing the same key again is idempotent.
  EXPECT_EQ(cache_->commit(key, so, ki), committed);
  EXPECT_EQ(cache_->list().size(), 1u);
}

TEST_F(CacheTest, CorruptArtifactRejectedAndDeleted) {
  std::string key = commit_blob("src", 0x1, std::string(2048, 'x'));
  std::string path = cache_->lookup(key);
  ASSERT_FALSE(path.empty());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(77);
    f.put('!');
  }
  // The read-side defense: checksum mismatch -> delete-on-sight -> miss.
  EXPECT_TRUE(cache_->lookup(key).empty());
  EXPECT_GE(cache_->stats().corrupt_rejected, 1u);
  EXPECT_TRUE(cache_->list().empty());
}

TEST_F(CacheTest, TruncatedObjectRejected) {
  std::string key = commit_blob("src", 0x2, std::string(4096, 'y'));
  std::string path = cache_->lookup(key);
  fs::resize_file(path, 100);  // simulate a torn write that survived
  EXPECT_TRUE(cache_->lookup(key).empty());
  EXPECT_TRUE(cache_->list().empty());
}

TEST_F(CacheTest, MetaVersionMismatchRejected) {
  std::string key = commit_blob("src", 0x3, "artifact-bytes");
  // Rewrite the sidecar with a bumped format version: a future (or
  // corrupted) cache generation must read as a miss, not as garbage.
  std::string meta = cfg_.dir + "/objects/" + key + ".meta";
  ASSERT_TRUE(fs::exists(meta));
  write_blob(meta, "daceppcache 99\nkey " + key + "\n");
  EXPECT_TRUE(cache_->lookup(key).empty());
  EXPECT_TRUE(cache_->list().empty());
}

TEST_F(CacheTest, OrphanObjectWithoutMetaIsAMiss) {
  auto ki = key_info(0x4);
  std::string key = ArtifactCache::key_for("src", ki);
  // An object published without its sidecar (crash between the two
  // renames) must never be trusted.
  write_blob(cfg_.dir + "/objects/" + key + ".so", "half-published");
  EXPECT_TRUE(cache_->lookup(key).empty());
}

TEST_F(CacheTest, LruEvictionKeepsRecentlyUsed) {
  std::vector<std::string> keys;
  for (int i = 0; i < 4; ++i) {
    keys.push_back(commit_blob("src" + std::to_string(i), 0x100 + i,
                               std::string(4096, char('a' + i))));
  }
  // Touch entry 0 so it becomes most-recently-used.
  ASSERT_FALSE(cache_->lookup(keys[0]).empty());
  int64_t freed = cache_->evict(2 * 4096 + 512);
  EXPECT_GT(freed, 0);
  EXPECT_LE(cache_->total_bytes(), 2 * 4096 + 512);
  EXPECT_FALSE(cache_->lookup(keys[0]).empty()) << "MRU entry was evicted";
  EXPECT_GE(cache_->stats().evictions, 2u);
}

TEST_F(CacheTest, StaleOrphanMetaIsSwept) {
  // A kill between an eviction's object unlink and meta unlink leaves a
  // meta with no object.  lookup never probes that key again, so only
  // the debris sweep inside evict() can reclaim it -- once it is older
  // than the one-hour crash-debris horizon.
  std::string key = commit_blob("src", 0x9, std::string(4096, 'm'));
  fs::remove(cfg_.dir + "/objects/" + key + ".so");
  std::string meta = cfg_.dir + "/objects/" + key + ".meta";
  fs::last_write_time(meta,
                      fs::file_time_type::clock::now() - std::chrono::hours(2));

  cache_->evict(cfg_.size_limit_bytes);
  EXPECT_FALSE(fs::exists(meta)) << "stale orphan meta survived the sweep";

  // A fresh orphan (a live writer could still be mid-flight) is kept.
  std::string key2 = commit_blob("src2", 0xa, std::string(4096, 'n'));
  fs::remove(cfg_.dir + "/objects/" + key2 + ".so");
  cache_->evict(cfg_.size_limit_bytes);
  EXPECT_TRUE(fs::exists(cfg_.dir + "/objects/" + key2 + ".meta"));
}

TEST_F(CacheTest, CommitEnforcesSizeBudget) {
  cfg_.size_limit_bytes = 3 * 4096;
  cache_ = std::make_unique<ArtifactCache>(cfg_);
  for (int i = 0; i < 6; ++i) {
    commit_blob("src" + std::to_string(i), 0x200 + i, std::string(4096, 'z'));
  }
  EXPECT_LE(cache_->total_bytes(), 3 * 4096);
}

TEST_F(CacheTest, NegativeCacheStoresAndExpires) {
  EXPECT_FALSE(cache_->negative_lookup(0xdead, "cc"));
  cache_->negative_store(0xdead, "cc", "exit 1");
  EXPECT_TRUE(cache_->negative_lookup(0xdead, "cc"));
  EXPECT_FALSE(cache_->negative_lookup(0xdead, "other-cc"));
  EXPECT_FALSE(cache_->negative_lookup(0xbeef, "cc"));
  ASSERT_EQ(cache_->list_negative().size(), 1u);
  EXPECT_EQ(cache_->list_negative()[0].compiler, "cc");

  // TTL < 0 makes every entry instantly stale: the next probe must
  // expire it (and remove the file, so the one after misses cheaply).
  cfg_.negative_ttl_s = -1;
  cache_ = std::make_unique<ArtifactCache>(cfg_);
  EXPECT_FALSE(cache_->negative_lookup(0xdead, "cc"));
  EXPECT_TRUE(cache_->list_negative().empty());
}

TEST_F(CacheTest, BuildScratchLifecycle) {
  std::string bd = cache_->make_build_dir();
  ASSERT_FALSE(bd.empty());
  EXPECT_TRUE(fs::exists(bd));
  EXPECT_EQ(bd.rfind(cfg_.dir, 0), 0u) << "scratch must live inside the store";
  write_blob(fs::path(bd) / "x.cpp", "int x;");
  cache_->release_build_dir(bd);
  EXPECT_FALSE(fs::exists(bd));

  // Debris from a dead process (pid 999999 does not exist) is stale and
  // collectable; our own live dirs are not.
  std::string mine = cache_->make_build_dir();
  fs::create_directories(cfg_.dir + "/build/999999.0");
  EXPECT_EQ(cache_->collect_stale_build_dirs(), 1);
  EXPECT_TRUE(fs::exists(mine));
  cache_->release_build_dir(mine);
}

TEST_F(CacheTest, PurgeLeavesWorkingStore) {
  commit_blob("src", 0x5, "bytes");
  cache_->negative_store(0x6, "cc", "x");
  fs::create_directories(cfg_.dir + "/build/999999.1");
  cache_->purge();
  EXPECT_TRUE(cache_->list().empty());
  EXPECT_TRUE(cache_->list_negative().empty());
  EXPECT_EQ(cache_->total_bytes(), 0);
  // And the store still accepts commits afterwards.
  EXPECT_FALSE(commit_blob("src2", 0x7, "bytes2").empty());
}

TEST_F(CacheTest, HeldWriterLockTimesOutGracefully) {
  auto ki = key_info(0x8);
  std::string key = ArtifactCache::key_for("src", ki);
  std::string lock = cfg_.dir + "/objects/" + key + ".lock";
  fs::create_directories(cfg_.dir + "/objects");
  int fd = open(lock.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_EQ(flock(fd, LOCK_EX), 0);
  // Another writer holds the key: commit must give up within the bound
  // and return "" -- the caller keeps its scratch object, nothing hangs.
  std::string so = write_blob(root_ + "/h.so", "bytes");
  EXPECT_TRUE(cache_->commit(key, so, ki).empty());
  EXPECT_GE(cache_->stats().fallbacks, 1u);
  flock(fd, LOCK_UN);
  close(fd);
  // Lock released: the same commit now succeeds.
  EXPECT_FALSE(cache_->commit(key, so, ki).empty());
}

TEST_F(CacheTest, DisabledCacheIsInert) {
  cfg_.enabled = false;
  cache_ = std::make_unique<ArtifactCache>(cfg_);
  EXPECT_FALSE(cache_->enabled());
  auto ki = key_info(0x9);
  std::string key = ArtifactCache::key_for("src", ki);
  std::string so = write_blob(root_ + "/d.so", "bytes");
  EXPECT_TRUE(cache_->commit(key, so, ki).empty());
  EXPECT_TRUE(cache_->lookup(key).empty());
  cache_->negative_store(0x9, "cc", "x");
  EXPECT_FALSE(cache_->negative_lookup(0x9, "cc"));
  // Scratch dirs still work (the JIT always needs somewhere to build).
  std::string bd = cache_->make_build_dir();
  ASSERT_FALSE(bd.empty());
  cache_->release_build_dir(bd);
}

TEST(CacheFaultPlan, ParseRoundTripAndDeterminism) {
  FsFaultPlan p = FsFaultPlan::parse("seed=7,torn=0.5,rename=0.25,crash=1");
  EXPECT_EQ(p.seed, 7u);
  EXPECT_DOUBLE_EQ(p.torn_prob, 0.5);
  EXPECT_DOUBLE_EQ(p.rename_prob, 0.25);
  EXPECT_DOUBLE_EQ(p.crash_prob, 1.0);
  EXPECT_TRUE(p.active());
  EXPECT_FALSE(FsFaultPlan{}.active());
  // decide() is a pure function of (seed, op index).
  FsFaultPlan q = FsFaultPlan::parse(p.to_string());
  for (uint64_t i = 0; i < 200; ++i) EXPECT_EQ(p.decide(i), q.decide(i));
  // A different seed reshuffles the schedule.
  q.seed = 8;
  bool any_diff = false;
  for (uint64_t i = 0; i < 200 && !any_diff; ++i) {
    any_diff = p.decide(i) != q.decide(i);
  }
  EXPECT_TRUE(any_diff);
}

// ---------------------------------------------------------------------------
// Concurrency
// ---------------------------------------------------------------------------

TEST_F(CacheTest, TwoThreadsRaceToOneArtifact) {
  auto ki = key_info(0x10);
  std::string key = ArtifactCache::key_for("src", ki);
  std::string bytes(8192, 'r');
  std::string soA = write_blob(root_ + "/ta.so", bytes);
  std::string soB = write_blob(root_ + "/tb.so", bytes);
  std::string gotA, gotB;
  std::thread a([&] { gotA = cache_->commit(key, soA, ki); });
  std::thread b([&] { gotB = cache_->commit(key, soB, ki); });
  a.join();
  b.join();
  ASSERT_FALSE(gotA.empty());
  ASSERT_FALSE(gotB.empty());
  EXPECT_EQ(gotA, gotB);  // both land on the single committed artifact
  EXPECT_EQ(cache_->list(true).size(), 1u);
  EXPECT_TRUE(cache_->list(true)[0].valid);
  EXPECT_EQ(cache_->lookup(key), gotA);
}

TEST_F(CacheTest, TwoProcessesRaceToOneArtifact) {
  auto ki = key_info(0x11);
  std::string key = ArtifactCache::key_for("src", ki);
  std::string bytes(8192, 'p');
  auto child = [&](const char* tag) {
    pid_t pid = fork();
    if (pid != 0) return pid;
    // Child: a fresh cache handle on the shared store, its own scratch
    // object, one commit + verified load.  Exit 0 only on full success.
    ArtifactCache c(cfg_);
    std::string so = write_blob(root_ + "/" + tag + ".so", bytes);
    std::string committed = c.commit(key, so, ki);
    bool ok = !committed.empty() && c.lookup(key) == committed;
    _exit(ok ? 0 : 1);
  };
  pid_t p1 = child("c1");
  pid_t p2 = child("c2");
  int st1 = -1, st2 = -1;
  ASSERT_EQ(waitpid(p1, &st1, 0), p1);
  ASSERT_EQ(waitpid(p2, &st2, 0), p2);
  EXPECT_EQ(st1, 0) << "child 1 failed to commit+load";
  EXPECT_EQ(st2, 0) << "child 2 failed to commit+load";
  EXPECT_EQ(cache_->list(true).size(), 1u);
  EXPECT_TRUE(cache_->list(true)[0].valid);
}

TEST_F(CacheTest, NegativeEntryPersistsAcrossProcesses) {
  pid_t pid = fork();
  if (pid == 0) {
    ArtifactCache c(cfg_);
    c.negative_store(0x12, "broken-cc", "probe failed");
    _exit(c.negative_lookup(0x12, "broken-cc") ? 0 : 1);
  }
  int st = -1;
  ASSERT_EQ(waitpid(pid, &st, 0), pid);
  ASSERT_EQ(st, 0);
  // A different process (us) sees the verdict without re-probing.
  EXPECT_TRUE(cache_->negative_lookup(0x12, "broken-cc"));
}

TEST_F(CacheTest, StaleLockFromCrashedWriterIsRecovered) {
  auto ki = key_info(0x13);
  std::string key = ArtifactCache::key_for("src", ki);
  // A writer that died mid-commit leaves its lock file (flock dies with
  // the process) and possibly a half-published object.  Simulate both.
  fs::create_directories(cfg_.dir + "/objects");
  write_blob(cfg_.dir + "/objects/" + key + ".lock", "");
  write_blob(cfg_.dir + "/objects/" + key + ".so", "orphan");
  // The next writer must take the lock immediately and publish cleanly.
  std::string so = write_blob(root_ + "/s.so", std::string(1024, 's'));
  std::string committed = cache_->commit(key, so, ki);
  ASSERT_FALSE(committed.empty());
  EXPECT_EQ(cache_->lookup(key), committed);
  auto entries = cache_->list(true);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].valid);
  EXPECT_EQ(entries[0].size, 1024);
}

// ---------------------------------------------------------------------------
// End-to-end through the JIT
// ---------------------------------------------------------------------------

/// Singleton-backed fixture: points the process-wide cache at a private
/// store, and restores the ambient configuration afterwards.
class CacheJitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = make_temp_dir();
    guards_.push_back(std::make_unique<EnvGuard>("DACE_CACHE", "1"));
    guards_.push_back(std::make_unique<EnvGuard>(
        "DACE_CACHE_DIR", (root_ + "/store").c_str()));
    ArtifactCache::reset_for_testing();
  }
  void TearDown() override {
    cg::cache::set_fault_plan(FsFaultPlan{});
    guards_.clear();
    ArtifactCache::reset_for_testing();
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  std::string root_;
  std::vector<std::unique_ptr<EnvGuard>> guards_;
};

TEST_F(CacheJitTest, BuildAndLoadCommitsThenHits) {
  const std::string src =
      "extern \"C\" double dacepp_cache_fn(double x) { return x * 3.0; }\n";
  auto cold = cg::detail::build_and_load(src, "t", "dacepp_cache_fn", "c++");
  if (!cold.sym) GTEST_SKIP() << "no host compiler available";
  EXPECT_FALSE(cold.cache_hit);
  auto& cache = ArtifactCache::instance();
  EXPECT_EQ(cache.stats().commits, 1u);
  EXPECT_EQ(cache.list(true).size(), 1u);

  auto warm = cg::detail::build_and_load(src, "t", "dacepp_cache_fn", "c++");
  ASSERT_NE(warm.sym, nullptr);
  EXPECT_TRUE(warm.cache_hit);
  EXPECT_GT(warm.compile_seconds, 0.0);  // load latency, not compiler time
  EXPECT_EQ(cache.stats().commits, 1u);  // no second publish
  using Fn = double (*)(double);
  EXPECT_EQ(reinterpret_cast<Fn>(warm.sym)(2.0), 6.0);
  // No scratch debris: the store's build/ area is empty again.
  int files = 0;
  for (auto it = fs::recursive_directory_iterator(root_ + "/store/build");
       it != fs::recursive_directory_iterator(); ++it) {
    ++files;
  }
  EXPECT_EQ(files, 0);
}

TEST_F(CacheJitTest, DisabledCacheStillBuilds) {
  guards_.push_back(std::make_unique<EnvGuard>("DACE_CACHE", "0"));
  ArtifactCache::reset_for_testing();
  const std::string src =
      "extern \"C\" double dacepp_cache_off(double x) { return x + 1.0; }\n";
  auto obj = cg::detail::build_and_load(src, "t", "dacepp_cache_off", "c++");
  if (!obj.sym) GTEST_SKIP() << "no host compiler available";
  EXPECT_FALSE(obj.cache_hit);
  // The store (created while the cache was briefly enabled in SetUp)
  // must not have gained any artifact.
  int entries = 0;
  if (fs::exists(root_ + "/store/objects")) {
    for (auto it = fs::directory_iterator(root_ + "/store/objects");
         it != fs::directory_iterator(); ++it) {
      ++entries;
    }
  }
  EXPECT_EQ(entries, 0) << "disabled cache must not commit artifacts";
}

// ---------------------------------------------------------------------------
// Chaos: injected filesystem faults under a real tiered run
// ---------------------------------------------------------------------------

/// Every fault spec runs jacobi_2d through synchronous Tier-1 promotion
/// with the shim armed.  The acceptance bar (ISSUE 8): zero wrong
/// answers, zero crashes -- every fault degrades to the scratch build or
/// a rebuild.  DACE_CACHE_FAULT_SEED (set by the ctest chaos sweep)
/// reshuffles each schedule.
class CacheChaos : public CacheJitTest,
                   public ::testing::WithParamInterface<const char*> {};

TEST_P(CacheChaos, InjectedFaultDegradesToCorrectRun) {
  uint64_t seed = 1;
  if (const char* e = std::getenv("DACE_CACHE_FAULT_SEED")) {
    seed = std::strtoull(e, nullptr, 10);
  }
  FsFaultPlan plan = FsFaultPlan::parse(GetParam());
  plan.seed = seed;
  cg::cache::set_fault_plan(plan);
  uint64_t faults_before = cg::cache::faults_injected();

  EnvGuard thr("DACEPP_JIT_THRESHOLD", "1");
  EnvGuard sync("DACEPP_JIT_SYNC", "1");
  const Kernel& k = kernels::kernel("jacobi_2d");
  const sym::SymbolMap& sizes = k.presets.at("test");
  Bindings ref = k.init(sizes);
  k.reference(ref, sizes);

  Bindings b = k.init(sizes);
  auto sdfg = fe::compile_to_sdfg(k.source);
  xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
  rt::Executor ex(*sdfg);
  ex.run(b, sizes);
  for (const auto& out : k.outputs) {
    EXPECT_TRUE(rt::allclose(b.at(out), ref.at(out), 1e-9, 1e-11))
        << "output '" << out << "' diverges under fault plan '" << GetParam()
        << "' seed " << seed;
  }

  // Drive the build pipeline directly on a fresh key as well: when every
  // chaos param runs in one gtest process, the in-memory tier cache
  // already holds jacobi_2d after the first param and the executor run
  // above never reaches the JIT.  A unique source per (param, seed)
  // guarantees cache traffic under the armed shim.
  std::string fn = "chaos_probe";
  for (char c : std::string(GetParam()) + std::to_string(seed)) {
    if (isalnum(static_cast<unsigned char>(c))) fn += c;
  }
  std::string src = "extern \"C\" double " + fn + "(double x) { return x; }\n";
  auto obj = cg::detail::build_and_load(src, fn, fn, "c++");
  EXPECT_NE(obj.sym, nullptr)
      << "injected cache fault broke the build pipeline itself";

  // With probability-1 plans the shim provably fired; mixed plans may
  // legitimately draw no fault on a short schedule.
  if (std::string(GetParam()).find("=1") != std::string::npos) {
    EXPECT_GT(cg::cache::faults_injected(), faults_before)
        << "fault shim never engaged -- the chaos run tested nothing";
  }

  // Heal the filesystem: a fresh run must still be correct (and may now
  // commit/load cleanly).
  cg::cache::set_fault_plan(FsFaultPlan{});
  Bindings b2 = k.init(sizes);
  rt::Executor ex2(*sdfg);
  ex2.run(b2, sizes);
  for (const auto& out : k.outputs) {
    EXPECT_TRUE(rt::allclose(b2.at(out), ref.at(out), 1e-9, 1e-11));
  }

  // Whatever the fault left behind, maintenance must cope: verification
  // never crashes, purge leaves an empty store.
  auto& cache = ArtifactCache::instance();
  cache.list(true);
  cache.collect_stale_build_dirs();
  cache.purge();
  EXPECT_TRUE(cache.list().empty());
}

INSTANTIATE_TEST_SUITE_P(
    Faults, CacheChaos,
    ::testing::Values("torn=1", "rename=1", "corrupt=1", "enospc=1", "crash=1",
                      "torn=0.4,rename=0.3,corrupt=0.3,enospc=0.3,crash=0.2"),
    [](const auto& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (!isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace dace
