#include <gtest/gtest.h>

#include "frontend/lexer.hpp"
#include "frontend/lowering.hpp"
#include "frontend/parser.hpp"

namespace dace::fe {
namespace {

TEST(Lexer, BasicTokens) {
  auto toks = tokenize("x = a + 3.5\n");
  ASSERT_GE(toks.size(), 6u);
  EXPECT_EQ(toks[0].kind, Tok::Name);
  EXPECT_EQ(toks[0].text, "x");
  EXPECT_EQ(toks[1].text, "=");
  EXPECT_EQ(toks[4].kind, Tok::Number);
  EXPECT_DOUBLE_EQ(toks[4].num, 3.5);
}

TEST(Lexer, IndentationBlocks) {
  auto toks = tokenize("a\n  b\n  c\nd\n");
  int indents = 0, dedents = 0;
  for (const auto& t : toks) {
    indents += (t.kind == Tok::Indent);
    dedents += (t.kind == Tok::Dedent);
  }
  EXPECT_EQ(indents, 1);
  EXPECT_EQ(dedents, 1);
}

TEST(Lexer, BracketsSuppressNewlines) {
  auto toks = tokenize("f(a,\n  b)\n");
  int newlines = 0;
  for (const auto& t : toks) newlines += (t.kind == Tok::Newline);
  EXPECT_EQ(newlines, 1);
}

TEST(Lexer, CommentsSkipped) {
  auto toks = tokenize("# header\nx = 1  # trailing\n");
  EXPECT_EQ(toks[0].text, "x");
}

TEST(Parser, FunctionWithAnnotations) {
  Module m = parse(R"(
@dace.program
def axpy(alpha: dace.float64, x: dace.float64[N], y: dace.float64[N]):
    y[:] = alpha * x + y
)");
  ASSERT_EQ(m.functions.size(), 1u);
  const Function& f = m.functions[0];
  EXPECT_EQ(f.name, "axpy");
  ASSERT_EQ(f.params.size(), 3u);
  EXPECT_TRUE(f.params[0].shape.empty());
  ASSERT_EQ(f.params[1].shape.size(), 1u);
  EXPECT_EQ(f.params[1].shape[0].to_string(), "N");
  ASSERT_EQ(f.body.size(), 1u);
  EXPECT_EQ(f.body[0]->kind, StKind::Assign);
}

TEST(Parser, DecoratorKeywords) {
  Module m = parse(R"(
@dace.program(auto_optimize=True, device=DeviceType.GPU)
def f(x: dace.float64[N]):
    x[:] = x + 1.0
)");
  EXPECT_TRUE(m.functions[0].auto_optimize);
  ASSERT_TRUE(m.functions[0].device.has_value());
  EXPECT_EQ(*m.functions[0].device, ir::DeviceType::GPU);
}

TEST(Parser, OperatorPrecedence) {
  ExprPtr e = parse_expression("a + b * c");
  ASSERT_EQ(e->kind, ExKind::BinOp);
  EXPECT_EQ(e->name, "+");
  EXPECT_EQ(e->args[1]->name, "*");
  ExprPtr m = parse_expression("alpha * A @ B");
  // '*' and '@' share precedence, left-assoc: (alpha * A) @ B.
  EXPECT_EQ(m->name, "@");
  EXPECT_EQ(m->args[0]->name, "*");
}

TEST(Parser, PowerIsRightAssociative) {
  ExprPtr e = parse_expression("a ** b ** c");
  EXPECT_EQ(e->name, "**");
  EXPECT_EQ(e->args[1]->name, "**");
}

TEST(Parser, Slices) {
  ExprPtr e = parse_expression("A[1:-1, i, :]");
  ASSERT_EQ(e->kind, ExKind::Subscript);
  ASSERT_EQ(e->slices.size(), 3u);
  EXPECT_FALSE(e->slices[0].is_index);
  EXPECT_TRUE(e->slices[1].is_index);
  EXPECT_FALSE(e->slices[2].is_index);
  EXPECT_EQ(e->slices[2].begin, nullptr);
  EXPECT_EQ(e->slices[2].end, nullptr);
}

TEST(Parser, DottedNamesAndCalls) {
  ExprPtr e = parse_expression("np.sum(A, axis=0)");
  ASSERT_EQ(e->kind, ExKind::Call);
  EXPECT_EQ(e->base->name, "np.sum");
  ASSERT_EQ(e->kwargs.size(), 1u);
  EXPECT_EQ(e->kwargs[0].first, "axis");
}

TEST(Parser, ForLoopAndIf) {
  Module m = parse(R"(
@dace.program
def f(A: dace.float64[N], TSTEPS: dace.int32):
    for t in range(1, TSTEPS):
        A[:] = A + 1.0
    if N > 4:
        A[:] = A * 2.0
    else:
        A[:] = A * 3.0
)");
  const auto& body = m.functions[0].body;
  ASSERT_EQ(body.size(), 2u);
  EXPECT_EQ(body[0]->kind, StKind::For);
  EXPECT_EQ(body[1]->kind, StKind::If);
  EXPECT_EQ(body[1]->orelse.size(), 1u);
}

TEST(Parser, DaceMapLoop) {
  Module m = parse(R"(
@dace.program
def f(A: dace.float64[M, N], B: dace.float64[N, M]):
    for i, j in dace.map[0:M, 0:N]:
        A[i, j] = B[j, i]
)");
  const auto& st = m.functions[0].body[0];
  EXPECT_EQ(st->kind, StKind::For);
  EXPECT_EQ(st->loop_vars, (std::vector<std::string>{"i", "j"}));
  EXPECT_EQ(st->iter->kind, ExKind::Subscript);
}

TEST(Parser, RejectsReturn) {
  EXPECT_THROW(parse(R"(
@dace.program
def f(A: dace.float64[N]):
    return A
)"),
               Error);
}

TEST(Parser, ReportsLineNumbers) {
  try {
    parse("@dace.program\ndef f(A: dace.badtype):\n    pass\n");
    FAIL() << "expected parse error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("dace.badtype"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

TEST(Lowering, GemmProducesLibraryAndMaps) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def gemm(alpha: dace.float64, beta: dace.float64, C: dace.float64[NI, NJ],
         A: dace.float64[NI, NK], B: dace.float64[NK, NJ]):
    C[:] = alpha * A @ B + beta * C
)");
  EXPECT_NO_THROW(sdfg->validate());
  // Direct translation: one state per operation (alpha*A, @, beta*C, +,
  // assignment) plus init.
  EXPECT_GE(sdfg->num_states(), 5);
  int libs = 0, maps = 0;
  for (int sid : sdfg->state_ids()) {
    for (int nid : sdfg->state(sid).node_ids()) {
      libs += sdfg->state(sid).node(nid)->kind == ir::NodeKind::Library;
      maps += sdfg->state(sid).node(nid)->kind == ir::NodeKind::MapEntry;
    }
  }
  EXPECT_EQ(libs, 1);
  EXPECT_GE(maps, 4);
  // Integer scalar argument is absent; float scalars are containers.
  EXPECT_TRUE(sdfg->has_array("alpha"));
  EXPECT_TRUE(sdfg->free_symbols().count("NI"));
}

TEST(Lowering, RangeLoopBecomesGuardedStates) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N], TSTEPS: dace.int32):
    for t in range(1, TSTEPS):
        A[:] = A + 1.0
)");
  EXPECT_NO_THROW(sdfg->validate());
  EXPECT_TRUE(sdfg->symbols().count("t"));
  // At least one conditional interstate edge exists (the guard).
  int conditional = 0;
  for (const auto& e : sdfg->interstate_edges())
    conditional += e.condition.valid();
  EXPECT_GE(conditional, 2);  // enter and exit conditions
  // TSTEPS is a symbol, not a container.
  EXPECT_FALSE(sdfg->has_array("TSTEPS"));
  EXPECT_TRUE(sdfg->free_symbols().count("TSTEPS"));
}

TEST(Lowering, WcrDetectionInMapBody) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(alpha: dace.float64, C: dace.float64[NI, NJ]):
    for i, j in dace.map[0:NI, 0:NJ]:
        alpha += C[i, j]
)");
  EXPECT_NO_THROW(sdfg->validate());
  bool found_wcr = false;
  for (int sid : sdfg->state_ids()) {
    for (const auto& e : sdfg->state(sid).edges())
      found_wcr |= e.memlet.wcr == ir::WCR::Sum;
  }
  EXPECT_TRUE(found_wcr);
}

TEST(Lowering, NoWcrWhenIndicesCoverParams) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[M, N]):
    for i, j in dace.map[0:M, 0:N]:
        A[i, j] += 1.0
)");
  EXPECT_NO_THROW(sdfg->validate());
  for (int sid : sdfg->state_ids()) {
    for (const auto& e : sdfg->state(sid).edges())
      EXPECT_EQ(e.memlet.wcr, ir::WCR::None);
  }
}

TEST(Lowering, NegativeSliceBoundsUseSymbolicSizes) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N], B: dace.float64[N]):
    B[1:-1] = A[1:-1] * 2.0
)");
  EXPECT_NO_THROW(sdfg->validate());
  // Find a memlet with end N-1.
  bool found = false;
  for (int sid : sdfg->state_ids()) {
    for (const auto& e : sdfg->state(sid).edges()) {
      if (e.memlet.empty() || e.memlet.subset.dims() != 1) continue;
      if (e.memlet.subset.range(0).end.to_string() == "N - 1") found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(Lowering, AllocationCallsCreateTransients) {
  auto sdfg = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N, M]):
    tmp = np.zeros((N, M), dtype=A.dtype)
    A[:] = tmp
)");
  EXPECT_NO_THROW(sdfg->validate());
  ASSERT_TRUE(sdfg->has_array("tmp"));
  EXPECT_TRUE(sdfg->array("tmp").transient);
  EXPECT_EQ(sdfg->array("tmp").dtype, ir::DType::f64);
}

TEST(Lowering, UnknownNameFailsWithLocation) {
  try {
    compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N]):
    A[:] = bogus + 1.0
)");
    FAIL() << "expected lowering error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("bogus"), std::string::npos);
  }
}

TEST(Lowering, PythonRestrictionControlDependentVariables) {
  // Section 2.5 restriction (3): control-dependent variable state.
  EXPECT_THROW(compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N]):
    if N > 5:
        y = np.zeros((5,), dtype=np.float64)
    A[0:5] = y
)"),
               Error);
}

// ---------------------------------------------------------------------------
// Golden diagnostics: the recovering entry points must surface *every*
// finding in one run, with accurate codes and line:col, and never abort.

TEST(Diagnostics, MultipleErrorsReportedInOneRun) {
  diag::DiagSink sink;
  Module m = parse(R"(
@dace.program
def f(A: dace.badtype[N], B: dace.mystery[N]):
    A[:] = B[:]
)",
                   sink);
  // Both bad annotations are reported; parsing recovered past each.
  ASSERT_EQ(sink.size(), 2u);
  EXPECT_EQ(sink.diagnostics()[0].code, "E206");
  EXPECT_EQ(sink.diagnostics()[1].code, "E206");
  EXPECT_EQ(sink.diagnostics()[0].line, 3);
  EXPECT_EQ(sink.diagnostics()[1].line, 3);
  EXPECT_LT(sink.diagnostics()[0].col, sink.diagnostics()[1].col);
  // Recovery assumed float64 and kept the function.
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_EQ(m.functions[0].params.size(), 2u);
}

TEST(Diagnostics, CaretPointsAtOffendingColumn) {
  diag::DiagSink sink;
  sink.set_source("test.py", "x = a $ b\n");
  tokenize("x = a $ b\n", sink);
  ASSERT_TRUE(sink.has_errors());
  const auto& d = sink.diagnostics()[0];
  EXPECT_EQ(d.code, "E101");
  EXPECT_EQ(d.line, 1);
  EXPECT_EQ(d.col, 7);  // the '$'
  // Rendered caret sits under column 7: 4-space gutter + 6 pad + '^'.
  EXPECT_NE(sink.render().find("\n          ^"), std::string::npos);
}

TEST(Diagnostics, InconsistentIndentRecovered) {
  diag::DiagSink sink;
  Module m = parse(R"(
@dace.program
def f(A: dace.float64[N]):
    if N > 2:
        A[0] = 1.0
      A[1] = 2.0
    A[2] = 3.0
)",
                   sink);
  ASSERT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.diagnostics()[0].code, "E102");
  EXPECT_EQ(sink.diagnostics()[0].line, 6);
  // The lexer recovered: the function survived with a parsed body.
  ASSERT_EQ(m.functions.size(), 1u);
  EXPECT_FALSE(m.functions[0].body.empty());
}

TEST(Diagnostics, UnterminatedSliceHasCodeAndLocation) {
  diag::DiagSink sink;
  parse(R"(
@dace.program
def f(A: dace.float64[N]):
    A[0:
)",
        sink);
  ASSERT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.diagnostics()[0].code, "E210");
  // Points at the end of input, just past the open slice on line 4.
  EXPECT_GE(sink.diagnostics()[0].line, 4);
  EXPECT_NE(sink.diagnostics()[0].message.find("slice"), std::string::npos);
}

TEST(Diagnostics, ShapeMismatchThroughSinkNeverThrows) {
  diag::DiagSink sink;
  auto g = compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N, M], B: dace.float64[N]):
    A[:] = B[:]
)",
                           sink);
  EXPECT_EQ(g, nullptr);
  ASSERT_TRUE(sink.has_errors());
  EXPECT_EQ(sink.diagnostics()[0].code, "E303");
  EXPECT_EQ(sink.diagnostics()[0].line, 4);
}

TEST(Diagnostics, JsonOutputIsStructured) {
  diag::DiagSink sink;
  sink.set_source("prog.py", "x ? y\n");
  tokenize("x ? y\n", sink);
  ASSERT_TRUE(sink.has_errors());
  std::string js = sink.to_json();
  EXPECT_NE(js.find("\"source\": \"prog.py\""), std::string::npos);
  EXPECT_NE(js.find("\"code\": \"E101\""), std::string::npos);
  EXPECT_NE(js.find("\"line\": 1"), std::string::npos);
  EXPECT_NE(js.find("\"severity\": \"error\""), std::string::npos);
}

TEST(Diagnostics, ThrowingPathCarriesRenderedReport) {
  try {
    compile_to_sdfg(R"(
@dace.program
def f(A: dace.float64[N]):
    A[:] = missing_name * 2.0
)");
    FAIL() << "expected diagnostic error";
  } catch (const Error& e) {
    std::string msg = e.what();
    EXPECT_NE(msg.find("[E301]"), std::string::npos);
    EXPECT_NE(msg.find("missing_name"), std::string::npos);
    EXPECT_NE(msg.find("4:"), std::string::npos);  // line 4
  }
}

}  // namespace
}  // namespace dace::fe
