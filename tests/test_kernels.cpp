// Kernel-suite integration tests: every kernel, written once in DaCeLang,
// must produce identical results through (a) the eager NumPy-style
// interpreter, (b) the direct -O0 SDFG translation, and (c) the
// auto-optimized CPU pipeline -- all validated against the hand-written
// C++ reference.
#include <gtest/gtest.h>

#include "frontend/lowering.hpp"
#include "frontend/parser.hpp"
#include "kernels/suite.hpp"
#include "runtime/eager_interpreter.hpp"
#include "runtime/executor.hpp"
#include "transforms/auto_optimize.hpp"

namespace dace {
namespace {

using kernels::Kernel;
using rt::Bindings;

class KernelSuite : public ::testing::TestWithParam<std::string> {
 protected:
  const Kernel& k() const { return kernels::kernel(GetParam()); }
  const sym::SymbolMap& sizes() const { return k().presets.at("test"); }

  Bindings run_reference() const {
    Bindings b = k().init(sizes());
    k().reference(b, sizes());
    return b;
  }

  void compare(Bindings& got, Bindings& want) const {
    for (const auto& out : k().outputs) {
      EXPECT_TRUE(rt::allclose(got.at(out), want.at(out), 1e-9, 1e-11))
          << k().name << ": output '" << out << "' diverges, max diff "
          << rt::max_abs_diff(got.at(out), want.at(out));
    }
  }
};

TEST_P(KernelSuite, EagerInterpreterMatchesReference) {
  Bindings ref = run_reference();
  Bindings b = k().init(sizes());
  fe::Module mod = fe::parse(k().source);
  rt::EagerInterpreter interp(mod.functions[0]);
  interp.run(b, sizes());
  compare(b, ref);
  EXPECT_GT(interp.op_count(), 0);
}

TEST_P(KernelSuite, UnoptimizedSdfgMatchesReference) {
  Bindings ref = run_reference();
  Bindings b = k().init(sizes());
  auto sdfg = fe::compile_to_sdfg(k().source);
  rt::execute(*sdfg, b, sizes());
  compare(b, ref);
}

TEST_P(KernelSuite, AutoOptimizedMatchesReference) {
  Bindings ref = run_reference();
  Bindings b = k().init(sizes());
  auto sdfg = fe::compile_to_sdfg(k().source);
  xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
  rt::execute(*sdfg, b, sizes());
  compare(b, ref);
}

TEST_P(KernelSuite, AutoOptimizeReducesOrKeepsMapLaunches) {
  auto o0 = fe::compile_to_sdfg(k().source);
  auto opt = o0->clone();
  xf::auto_optimize(*opt, ir::DeviceType::CPU);
  Bindings b0 = k().init(sizes());
  Bindings b1 = k().init(sizes());
  rt::Executor e0(*o0), e1(*opt);
  e0.run(b0, sizes());
  e1.run(b1, sizes());
  EXPECT_LE(e1.map_launches(), e0.map_launches()) << k().name;
}

std::vector<std::string> kernel_names() {
  std::vector<std::string> names;
  for (const auto& k : kernels::suite()) names.push_back(k.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(All, KernelSuite, ::testing::ValuesIn(kernel_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace dace
