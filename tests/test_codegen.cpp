// Code generation tests: structural checks on all flavors, and (when a
// host compiler is available) compile-and-execute equivalence of the
// generated CPU code against the interpreter for several kernels.
#include <gtest/gtest.h>

#include "codegen/codegen.hpp"
#include "codegen/jit.hpp"
#include "frontend/lowering.hpp"
#include "frontend/parser.hpp"
#include "gpu/cupy_like.hpp"
#include "gpu/gpu_executor.hpp"
#include "fpga/fpga_executor.hpp"
#include "kernels/suite.hpp"
#include "runtime/executor.hpp"
#include "transforms/auto_optimize.hpp"

namespace dace {
namespace {

using rt::Bindings;
using rt::Tensor;

TEST(Codegen, CpuSourceHasStructure) {
  auto sdfg = fe::compile_to_sdfg(kernels::kernel("gemm").source);
  xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
  std::string src = cg::generate(*sdfg, cg::Flavor::CPU);
  EXPECT_NE(src.find("extern \"C\" void gemm"), std::string::npos);
  EXPECT_NE(src.find("#pragma omp parallel for"), std::string::npos);
  EXPECT_NE(src.find("MatMul library node"), std::string::npos);
}

TEST(Codegen, CudaAndHlsFlavors) {
  auto sdfg = fe::compile_to_sdfg(kernels::kernel("jacobi_1d").source);
  auto gpu_sdfg = sdfg->clone();
  xf::auto_optimize(*gpu_sdfg, ir::DeviceType::GPU);
  std::string cuda = cg::generate(*gpu_sdfg, cg::Flavor::CUDA);
  EXPECT_NE(cuda.find("CUDA kernel"), std::string::npos);
  auto fpga_sdfg = sdfg->clone();
  xf::auto_optimize(*fpga_sdfg, ir::DeviceType::FPGA);
  std::string hls = cg::generate(*fpga_sdfg, cg::Flavor::HLS);
  EXPECT_NE(hls.find("#pragma HLS PIPELINE II=1"), std::string::npos);
}

class CodegenExec : public ::testing::TestWithParam<std::string> {};

TEST_P(CodegenExec, CompiledCodeMatchesInterpreter) {
  const auto& k = kernels::kernel(GetParam());
  const sym::SymbolMap& sizes = k.presets.at("test");
  auto sdfg = fe::compile_to_sdfg(k.source);
  xf::auto_optimize(*sdfg, ir::DeviceType::CPU);

  cg::CompiledProgram prog = cg::compile(*sdfg);
  if (!prog.valid()) GTEST_SKIP() << "no host compiler available";
  EXPECT_GT(prog.compile_seconds(), 0.0);

  // Interpreter result.
  Bindings ref = k.init(sizes);
  rt::execute(*sdfg, ref, sizes);

  // Compiled result.
  Bindings b = k.init(sizes);
  std::vector<double*> args;
  for (const auto& an : sdfg->arg_names()) args.push_back(b.at(an).data());
  std::vector<long long> syms;
  for (const auto& s : cg::symbol_order(*sdfg)) syms.push_back(sizes.at(s));
  prog.fn()(args.data(), syms.data());

  for (const auto& o : k.outputs) {
    EXPECT_TRUE(rt::allclose(b.at(o), ref.at(o), 1e-9, 1e-11))
        << k.name << " output " << o;
  }
}

std::vector<std::string> all_kernel_names() {
  std::vector<std::string> names;
  for (const auto& k : kernels::suite()) names.push_back(k.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Kernels, CodegenExec,
                         ::testing::ValuesIn(all_kernel_names()),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Device simulators
// ---------------------------------------------------------------------------

TEST(GpuSim, DaceBeatsEagerCupyOnStencil) {
  const auto& k = kernels::kernel("jacobi_1d");
  sym::SymbolMap sizes{{"N", 256}, {"TSTEPS", 12}};
  Bindings ref = k.init(sizes);
  k.reference(ref, sizes);

  auto sdfg = fe::compile_to_sdfg(k.source);
  xf::auto_optimize(*sdfg, ir::DeviceType::GPU);
  Bindings b1 = k.init(sizes);
  gpu::GpuRunResult dace_res = gpu::run_gpu(*sdfg, b1, sizes);
  EXPECT_TRUE(rt::allclose(b1.at("A"), ref.at("A"), 1e-9, 1e-11));

  fe::Module m = fe::parse(k.source);
  Bindings b2 = k.init(sizes);
  gpu::GpuRunResult cupy_res = gpu::run_cupy(m.functions[0], b2, sizes);
  EXPECT_TRUE(rt::allclose(b2.at("A"), ref.at("A"), 1e-9, 1e-11));

  // Fusion: far fewer kernel launches, and faster simulated time.
  EXPECT_LT(dace_res.kernels, cupy_res.kernels);
  EXPECT_LT(dace_res.kernel_time_s, cupy_res.kernel_time_s);
}

TEST(GpuSim, ResnetAnomalyCupyWins) {
  // The WCR-atomics convolution (Section 3.4.2): CuPy's eager kernels
  // beat the auto-optimized WCR map on the device model.
  const auto& k = kernels::kernel("resnet");
  const sym::SymbolMap sizes = k.presets.at("paper");
  auto sdfg = fe::compile_to_sdfg(k.source);
  xf::auto_optimize(*sdfg, ir::DeviceType::GPU);
  Bindings b1 = k.init(sizes);
  gpu::GpuRunResult dace_res = gpu::run_gpu(*sdfg, b1, sizes);
  EXPECT_GT(dace_res.stats.wcr_stores, 0u);  // atomics present
  fe::Module m = fe::parse(k.source);
  Bindings b2 = k.init(sizes);
  gpu::GpuRunResult cupy_res = gpu::run_cupy(m.functions[0], b2, sizes);
  EXPECT_TRUE(rt::allclose(b1.at("out"), b2.at("out"), 1e-9, 1e-11));
  EXPECT_GT(dace_res.kernel_time_s, cupy_res.kernel_time_s);
}

TEST(FpgaSim, BothShellsComputeIdenticalResults) {
  const auto& k = kernels::kernel("jacobi_2d");
  const sym::SymbolMap sizes = k.presets.at("test");
  Bindings ref = k.init(sizes);
  k.reference(ref, sizes);
  auto sdfg = fe::compile_to_sdfg(k.source);
  xf::auto_optimize(*sdfg, ir::DeviceType::FPGA);
  for (const auto& model : {fpga::FpgaModel::intel(), fpga::FpgaModel::xilinx()}) {
    Bindings b = k.init(sizes);
    fpga::FpgaRunResult res = fpga::run_fpga(*sdfg, b, sizes, model);
    EXPECT_TRUE(rt::allclose(b.at("A"), ref.at("A"), 1e-9, 1e-11))
        << model.name;
    EXPECT_GT(res.time_s, 0.0);
    EXPECT_GT(res.units, 0);
  }
}

TEST(FpgaSim, IntelFasterOnStencils) {
  // Shift-register reuse: the Intel shell wins stencil kernels (Fig. 9).
  const auto& k = kernels::kernel("jacobi_2d");
  const sym::SymbolMap sizes = k.presets.at("fpga");
  auto sdfg = fe::compile_to_sdfg(k.source);
  xf::auto_optimize(*sdfg, ir::DeviceType::FPGA);
  Bindings b1 = k.init(sizes);
  double t_intel =
      fpga::run_fpga(*sdfg, b1, sizes, fpga::FpgaModel::intel()).time_s;
  Bindings b2 = k.init(sizes);
  double t_xilinx =
      fpga::run_fpga(*sdfg, b2, sizes, fpga::FpgaModel::xilinx()).time_s;
  EXPECT_LT(t_intel, t_xilinx);
}

}  // namespace
}  // namespace dace
