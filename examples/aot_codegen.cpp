// Ahead-of-time compilation (Section 3.3): generate backend source code
// for all three targets from one annotated program; if a host compiler is
// present, build and execute the CPU code (the sdfgcc workflow).
#include <cstdio>

#include "codegen/codegen.hpp"
#include "codegen/jit.hpp"
#include "frontend/lowering.hpp"
#include "kernels/suite.hpp"
#include "transforms/auto_optimize.hpp"

int main() {
  using namespace dace;
  const auto& k = kernels::kernel("jacobi_1d");

  for (auto [dev, flavor, label] :
       {std::tuple{ir::DeviceType::CPU, cg::Flavor::CPU, "CPU (C++/OpenMP)"},
        std::tuple{ir::DeviceType::GPU, cg::Flavor::CUDA, "GPU (CUDA)"},
        std::tuple{ir::DeviceType::FPGA, cg::Flavor::HLS, "FPGA (HLS)"}}) {
    auto sdfg = fe::compile_to_sdfg(k.source);
    xf::auto_optimize(*sdfg, dev);
    std::string src = cg::generate(*sdfg, flavor);
    printf("=== %s: %zu lines ===\n", label,
           (size_t)std::count(src.begin(), src.end(), '\n'));
    if (flavor == cg::Flavor::CPU) {
      printf("%s\n", src.c_str());
    } else {
      // Print the first 20 lines of the device flavors.
      size_t pos = 0;
      for (int i = 0; i < 20 && pos != std::string::npos; ++i) {
        size_t next = src.find('\n', pos);
        printf("%s\n", src.substr(pos, next - pos).c_str());
        pos = next == std::string::npos ? next : next + 1;
      }
      printf("...\n");
    }
  }

  // AOT compile and execute the CPU backend.
  auto sdfg = fe::compile_to_sdfg(k.source);
  xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
  cg::CompiledProgram prog = cg::compile(*sdfg);
  if (!prog.valid()) {
    printf("no host compiler found; skipping JIT execution\n");
    return 0;
  }
  printf("host compiler took %.2f s\n", prog.compile_seconds());
  const sym::SymbolMap sizes = k.presets.at("test");
  rt::Bindings b = k.init(sizes);
  rt::Bindings ref = k.init(sizes);
  k.reference(ref, sizes);
  std::vector<double*> args;
  for (const auto& an : sdfg->arg_names()) args.push_back(b.at(an).data());
  std::vector<long long> syms;
  for (const auto& s : cg::symbol_order(*sdfg)) syms.push_back(sizes.at(s));
  prog.fn()(args.data(), syms.data());
  double err = rt::max_abs_diff(b.at("A"), ref.at("A"));
  printf("compiled result max error vs reference: %.3e %s\n", err,
         err < 1e-9 ? "[OK]" : "[MISMATCH]");
  return err < 1e-9 ? 0 : 1;
}
