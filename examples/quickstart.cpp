// Quickstart: write a NumPy-style program in DaCeLang, compile it to an
// SDFG, auto-optimize for the CPU, and run it.
//
//   $ ./quickstart
#include <cstdio>

#include "frontend/lowering.hpp"
#include "runtime/executor.hpp"
#include "runtime/tensor_ops.hpp"
#include "transforms/auto_optimize.hpp"

int main() {
  using namespace dace;

  // 1. A data-centric program: the paper's gemm example (Section 2.3).
  const char* source = R"(
@dace.program
def gemm(alpha: dace.float64, beta: dace.float64, C: dace.float64[NI, NJ],
         A: dace.float64[NI, NK], B: dace.float64[NK, NJ]):
    C[:] = alpha * A @ B + beta * C
)";

  // 2. Parse and lower to the SDFG intermediate representation.
  auto sdfg = fe::compile_to_sdfg(source);
  printf("direct translation: %d states\n", sdfg->num_states());

  // 3. Auto-optimize (Section 3.1): dataflow coarsening, subgraph fusion,
  //    WCR tiling, transient mitigation, CPU scheduling.
  xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
  printf("after auto-optimization: %d states\n\n%s\n", sdfg->num_states(),
         sdfg->dump().c_str());

  // 4. Bind arguments (NumPy-like tensors) and symbol values, and run.
  const int64_t ni = 64, nj = 48, nk = 32;
  rt::Tensor A(ir::DType::f64, {ni, nk});
  rt::Tensor B(ir::DType::f64, {nk, nj});
  rt::Tensor C(ir::DType::f64, {ni, nj});
  A.fill(1.0);
  B.fill(0.5);
  C.fill(2.0);
  rt::Bindings args{{"alpha", rt::Tensor::scalar(2.0)},
                    {"beta", rt::Tensor::scalar(1.0)},
                    {"A", A},
                    {"B", B},
                    {"C", C}};
  rt::execute(*sdfg, args, {{"NI", ni}, {"NJ", nj}, {"NK", nk}});

  // C = 2*A@B + C = 2*(nk*0.5) + 2 = nk + 2.
  printf("C[0,0] = %.1f (expected %.1f)\n", C.at({0, 0}), (double)nk + 2.0);
  return C.at({0, 0}) == (double)nk + 2.0 ? 0 : 1;
}
