// The explicit local-view program of Section 4.3: a distributed Jacobi-2D
// stencil with per-timestep halo exchanges written in DaCeLang using
// dace.comm.{Isend, Irecv, Waitall, BlockScatter, BlockGather}, run over
// a simulated MPI world and validated against the shared-memory kernel.
#include <cstdio>

#include "distributed/dist_executor.hpp"
#include "distributed/process_grid.hpp"
#include "frontend/lowering.hpp"
#include "kernels/suite.hpp"
#include "runtime/tensor_ops.hpp"

static const char* kSource = R"(
@dace.program
def half_step(inpbuf: dace.float64[lNx + 2, lNy + 2],
              outbuf: dace.float64[lNx + 2, lNy + 2]):
    req = np.empty((8,), dtype=MPI_Request)
    dace.comm.Isend(inpbuf[1, 1:-1], nn, 0, req[0])
    dace.comm.Isend(inpbuf[lNx, 1:-1], ns, 1, req[1])
    dace.comm.Isend(inpbuf[1:-1, 1], nw, 2, req[2])
    dace.comm.Isend(inpbuf[1:-1, lNy], ne, 3, req[3])
    dace.comm.Irecv(inpbuf[0, 1:-1], nn, 1, req[4])
    dace.comm.Irecv(inpbuf[lNx + 1, 1:-1], ns, 0, req[5])
    dace.comm.Irecv(inpbuf[1:-1, 0], nw, 3, req[6])
    dace.comm.Irecv(inpbuf[1:-1, lNy + 1], ne, 2, req[7])
    dace.comm.Waitall(req)
    outbuf[1+noff:lNx+1-soff, 1+woff:lNy+1-eoff] = 0.2 * (
        inpbuf[1+noff:lNx+1-soff, 1+woff:lNy+1-eoff] +
        inpbuf[noff:lNx-soff, 1+woff:lNy+1-eoff] +
        inpbuf[2+noff:lNx+2-soff, 1+woff:lNy+1-eoff] +
        inpbuf[1+noff:lNx+1-soff, woff:lNy-eoff] +
        inpbuf[1+noff:lNx+1-soff, 2+woff:lNy+2-eoff])

@dace.program
def j2d_dist(TSTEPS: dace.int32, A: dace.float64[N, N],
             B: dace.float64[N, N]):
    lA = np.zeros((lNx + 2, lNy + 2), dtype=A.dtype)
    lB = np.zeros((lNx + 2, lNy + 2), dtype=B.dtype)
    lA[1:-1, 1:-1] = dace.comm.BlockScatter(A)
    lB[1:-1, 1:-1] = dace.comm.BlockScatter(B)
    for t in range(1, TSTEPS):
        half_step(lA, lB)
        half_step(lB, lA)
    A[:] = dace.comm.BlockGather(lA[1:-1, 1:-1])
    B[:] = dace.comm.BlockGather(lB[1:-1, 1:-1])
)";

int main(int argc, char** argv) {
  using namespace dace;
  const int P = argc > 1 ? std::atoi(argv[1]) : 4;
  const int64_t n = 64, tsteps = 10;

  auto sdfg = fe::compile_to_sdfg(kSource, "j2d_dist");
  printf("lowered explicit local-view SDFG: %d states\n",
         sdfg->num_states());

  rt::Bindings shared;
  shared.emplace("A", rt::Tensor(ir::DType::f64, {n, n}));
  shared.emplace("B", rt::Tensor(ir::DType::f64, {n, n}));
  kernels::fill_pattern(shared.at("A"), 1);
  kernels::fill_pattern(shared.at("B"), 2);
  rt::Bindings ref;
  ref.emplace("A", shared.at("A").copy());
  ref.emplace("B", shared.at("B").copy());
  kernels::kernel("jacobi_2d").reference(ref, {{"N", n}, {"TSTEPS", tsteps}});

  dist::World world(P, dist::NetModel::mpi_cray());
  dist::Grid2D grid = dist::Grid2D::square(P);
  printf("running on %d simulated ranks (%dx%d grid)\n", P, grid.Pr, grid.Pc);
  auto res = dist::run_distributed_sdfg(
      world, *sdfg, shared, [&](int rank, int) {
        int px = grid.row_of(rank), py = grid.col_of(rank);
        sym::SymbolMap s{{"N", n},
                         {"TSTEPS", tsteps},
                         {"lNx", n / grid.Pr},
                         {"lNy", n / grid.Pc}};
        s["nn"] = px > 0 ? grid.rank_of(px - 1, py) : -1;
        s["ns"] = px + 1 < grid.Pr ? grid.rank_of(px + 1, py) : -1;
        s["nw"] = py > 0 ? grid.rank_of(px, py - 1) : -1;
        s["ne"] = py + 1 < grid.Pc ? grid.rank_of(px, py + 1) : -1;
        s["noff"] = px == 0 ? 1 : 0;
        s["soff"] = px + 1 == grid.Pr ? 1 : 0;
        s["woff"] = py == 0 ? 1 : 0;
        s["eoff"] = py + 1 == grid.Pc ? 1 : 0;
        return s;
      });

  double err = rt::max_abs_diff(shared.at("A"), ref.at("A"));
  printf("halo-exchange messages: %lld, bytes: %lld\n",
         (long long)res.messages, (long long)res.bytes);
  printf("simulated cluster time: %.3f ms\n", res.time_s * 1e3);
  printf("max |distributed - shared-memory| = %.3e  %s\n", err,
         err < 1e-12 ? "[OK]" : "[MISMATCH]");
  return err < 1e-12 ? 0 : 1;
}
