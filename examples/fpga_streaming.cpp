// FPGA portability (Sections 3.1/3.4): the same annotated program runs
// on both simulated vendor shells, and the FIFO-stream substrate behind
// StreamingComposition is demonstrated directly.
#include <cstdio>
#include <thread>

#include "fpga/fpga_executor.hpp"
#include "fpga/stream.hpp"
#include "frontend/lowering.hpp"
#include "kernels/suite.hpp"
#include "transforms/auto_optimize.hpp"

int main() {
  using namespace dace;

  // 1. Streams: a burst reader feeding a processing element through a
  //    bounded FIFO (the StreamingComposition execution substrate).
  fpga::Stream fifo(/*depth=*/16);
  const int n = 1000;
  double sum = 0;
  std::thread reader([&] {
    for (int i = 0; i < n; ++i) fifo.push((double)i);  // DRAM burst reader
  });
  for (int i = 0; i < n; ++i) sum += fifo.pop();  // pipelined PE
  reader.join();
  printf("stream pipeline moved %lld elements, sum=%.0f (expect %.0f)\n",
         (long long)fifo.total_pushes(), sum, (double)n * (n - 1) / 2);

  // 2. The same annotated Python program on both vendor shells.
  const auto& k = kernels::kernel("jacobi_2d");
  const sym::SymbolMap sizes = k.presets.at("fpga");
  auto sdfg = fe::compile_to_sdfg(k.source);
  xf::auto_optimize(*sdfg, ir::DeviceType::FPGA);
  printf("\njacobi_2d on both FPGA shells (single precision):\n");
  for (const auto& model :
       {fpga::FpgaModel::intel(), fpga::FpgaModel::xilinx()}) {
    rt::Bindings b = k.init(sizes);
    auto res = fpga::run_fpga(*sdfg, b, sizes, model);
    printf("  %-14s %8.3f ms  (%lld pipelined units)\n", model.name.c_str(),
           res.time_s * 1e3, (long long)res.units);
  }
  return 0;
}
