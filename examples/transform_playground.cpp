// Performance-engineering workflow (Sections 2.4 and 3.1): apply the
// data-centric transformations one by one, *without changing the source
// program*, and watch the IR evolve -- the C++ analogue of the paper's
//   sdfg = gemm.to_sdfg(); sdfg.apply(StateFusion); ...
#include <cstdio>

#include "frontend/lowering.hpp"
#include "transforms/loop_to_map.hpp"
#include "transforms/map_fusion.hpp"
#include "transforms/map_transforms.hpp"
#include "transforms/memory.hpp"
#include "transforms/simplify.hpp"

int main() {
  using namespace dace;
  auto sdfg = fe::compile_to_sdfg(R"(
@dace.program
def kernel(A: dace.float64[N], B: dace.float64[N], out: dace.float64[N]):
    tmp = np.zeros((N,), dtype=A.dtype)
    tmp[:] = 2.0 * A + B
    for i in range(N):
        out[i] = tmp[i] * tmp[i]
)");

  auto stats = [&](const char* stage) {
    int maps = 0, tasklets = 0;
    for (int sid : sdfg->state_ids()) {
      for (int nid : sdfg->state(sid).node_ids()) {
        maps += sdfg->state(sid).node(nid)->kind == ir::NodeKind::MapEntry;
        tasklets += sdfg->state(sid).node(nid)->kind == ir::NodeKind::Tasklet;
      }
    }
    printf("%-28s states=%2d maps=%2d tasklets=%2d transients=%zu\n", stage,
           sdfg->num_states(), maps, tasklets,
           [&] {
             size_t n = 0;
             for (const auto& [name, d] : sdfg->arrays()) n += d.transient;
             return n;
           }());
  };

  stats("direct translation (-O0):");
  int fused = xf::apply_repeated(*sdfg, xf::state_fusion);
  printf("  StateFusion applied %d times\n", fused);
  stats("after StateFusion:");
  int copies = xf::apply_repeated(*sdfg, xf::redundant_copy_removal);
  printf("  RedundantCopyRemoval applied %d times\n", copies);
  xf::dead_dataflow_elimination(*sdfg);
  stats("after copy removal:");
  int l2m = xf::apply_repeated(*sdfg, xf::loop_to_map);
  printf("  LoopToMap applied %d times\n", l2m);
  xf::simplify(*sdfg);
  stats("after LoopToMap:");
  int mf = xf::apply_repeated(*sdfg, xf::map_fusion);
  printf("  MapFusion applied %d times\n", mf);
  xf::simplify(*sdfg);
  stats("after MapFusion:");
  xf::mitigate_transient_allocation(*sdfg);
  xf::set_toplevel_schedules(*sdfg, ir::Schedule::CPUParallel, true);
  stats("after memory + schedules:");
  printf("\nfinal IR:\n%s", sdfg->dump().c_str());
  printf("\nGraphviz available via SDFG::to_dot(); pipe to `dot -Tpdf`.\n");
  return 0;
}
