file(REMOVE_RECURSE
  "CMakeFiles/transform_playground.dir/transform_playground.cpp.o"
  "CMakeFiles/transform_playground.dir/transform_playground.cpp.o.d"
  "transform_playground"
  "transform_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transform_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
