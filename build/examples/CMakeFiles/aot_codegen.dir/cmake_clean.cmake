file(REMOVE_RECURSE
  "CMakeFiles/aot_codegen.dir/aot_codegen.cpp.o"
  "CMakeFiles/aot_codegen.dir/aot_codegen.cpp.o.d"
  "aot_codegen"
  "aot_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aot_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
