# Empty dependencies file for aot_codegen.
# This may be replaced when dependencies are built.
