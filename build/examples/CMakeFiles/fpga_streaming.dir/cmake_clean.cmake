file(REMOVE_RECURSE
  "CMakeFiles/fpga_streaming.dir/fpga_streaming.cpp.o"
  "CMakeFiles/fpga_streaming.dir/fpga_streaming.cpp.o.d"
  "fpga_streaming"
  "fpga_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
