# Empty compiler generated dependencies file for fpga_streaming.
# This may be replaced when dependencies are built.
