# Empty dependencies file for jacobi2d_distributed.
# This may be replaced when dependencies are built.
