file(REMOVE_RECURSE
  "CMakeFiles/jacobi2d_distributed.dir/jacobi2d_distributed.cpp.o"
  "CMakeFiles/jacobi2d_distributed.dir/jacobi2d_distributed.cpp.o.d"
  "jacobi2d_distributed"
  "jacobi2d_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jacobi2d_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
