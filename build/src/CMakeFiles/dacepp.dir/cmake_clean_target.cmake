file(REMOVE_RECURSE
  "libdacepp.a"
)
