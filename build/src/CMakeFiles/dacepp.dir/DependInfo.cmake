
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/cpp_codegen.cpp" "src/CMakeFiles/dacepp.dir/codegen/cpp_codegen.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/codegen/cpp_codegen.cpp.o.d"
  "/root/repo/src/codegen/jit.cpp" "src/CMakeFiles/dacepp.dir/codegen/jit.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/codegen/jit.cpp.o.d"
  "/root/repo/src/distributed/comm_ops.cpp" "src/CMakeFiles/dacepp.dir/distributed/comm_ops.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/distributed/comm_ops.cpp.o.d"
  "/root/repo/src/distributed/dasklike.cpp" "src/CMakeFiles/dacepp.dir/distributed/dasklike.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/distributed/dasklike.cpp.o.d"
  "/root/repo/src/distributed/dist_executor.cpp" "src/CMakeFiles/dacepp.dir/distributed/dist_executor.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/distributed/dist_executor.cpp.o.d"
  "/root/repo/src/distributed/dist_kernels.cpp" "src/CMakeFiles/dacepp.dir/distributed/dist_kernels.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/distributed/dist_kernels.cpp.o.d"
  "/root/repo/src/distributed/dist_transforms.cpp" "src/CMakeFiles/dacepp.dir/distributed/dist_transforms.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/distributed/dist_transforms.cpp.o.d"
  "/root/repo/src/distributed/pblas.cpp" "src/CMakeFiles/dacepp.dir/distributed/pblas.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/distributed/pblas.cpp.o.d"
  "/root/repo/src/distributed/process_grid.cpp" "src/CMakeFiles/dacepp.dir/distributed/process_grid.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/distributed/process_grid.cpp.o.d"
  "/root/repo/src/distributed/simmpi.cpp" "src/CMakeFiles/dacepp.dir/distributed/simmpi.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/distributed/simmpi.cpp.o.d"
  "/root/repo/src/fpga/fpga_executor.cpp" "src/CMakeFiles/dacepp.dir/fpga/fpga_executor.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/fpga/fpga_executor.cpp.o.d"
  "/root/repo/src/frontend/ast.cpp" "src/CMakeFiles/dacepp.dir/frontend/ast.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/frontend/ast.cpp.o.d"
  "/root/repo/src/frontend/lexer.cpp" "src/CMakeFiles/dacepp.dir/frontend/lexer.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/frontend/lexer.cpp.o.d"
  "/root/repo/src/frontend/lowering.cpp" "src/CMakeFiles/dacepp.dir/frontend/lowering.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/frontend/lowering.cpp.o.d"
  "/root/repo/src/frontend/parser.cpp" "src/CMakeFiles/dacepp.dir/frontend/parser.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/frontend/parser.cpp.o.d"
  "/root/repo/src/gpu/cupy_like.cpp" "src/CMakeFiles/dacepp.dir/gpu/cupy_like.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/gpu/cupy_like.cpp.o.d"
  "/root/repo/src/gpu/gpu_executor.cpp" "src/CMakeFiles/dacepp.dir/gpu/gpu_executor.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/gpu/gpu_executor.cpp.o.d"
  "/root/repo/src/ir/code_expr.cpp" "src/CMakeFiles/dacepp.dir/ir/code_expr.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/ir/code_expr.cpp.o.d"
  "/root/repo/src/ir/sdfg.cpp" "src/CMakeFiles/dacepp.dir/ir/sdfg.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/ir/sdfg.cpp.o.d"
  "/root/repo/src/ir/serialize.cpp" "src/CMakeFiles/dacepp.dir/ir/serialize.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/ir/serialize.cpp.o.d"
  "/root/repo/src/ir/state.cpp" "src/CMakeFiles/dacepp.dir/ir/state.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/ir/state.cpp.o.d"
  "/root/repo/src/ir/validate.cpp" "src/CMakeFiles/dacepp.dir/ir/validate.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/ir/validate.cpp.o.d"
  "/root/repo/src/kernels/reference.cpp" "src/CMakeFiles/dacepp.dir/kernels/reference.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/kernels/reference.cpp.o.d"
  "/root/repo/src/kernels/suite.cpp" "src/CMakeFiles/dacepp.dir/kernels/suite.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/kernels/suite.cpp.o.d"
  "/root/repo/src/runtime/bytecode.cpp" "src/CMakeFiles/dacepp.dir/runtime/bytecode.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/runtime/bytecode.cpp.o.d"
  "/root/repo/src/runtime/eager_interpreter.cpp" "src/CMakeFiles/dacepp.dir/runtime/eager_interpreter.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/runtime/eager_interpreter.cpp.o.d"
  "/root/repo/src/runtime/executor.cpp" "src/CMakeFiles/dacepp.dir/runtime/executor.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/runtime/executor.cpp.o.d"
  "/root/repo/src/runtime/library_kernels.cpp" "src/CMakeFiles/dacepp.dir/runtime/library_kernels.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/runtime/library_kernels.cpp.o.d"
  "/root/repo/src/runtime/map_compiler.cpp" "src/CMakeFiles/dacepp.dir/runtime/map_compiler.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/runtime/map_compiler.cpp.o.d"
  "/root/repo/src/runtime/tensor.cpp" "src/CMakeFiles/dacepp.dir/runtime/tensor.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/runtime/tensor.cpp.o.d"
  "/root/repo/src/runtime/tensor_ops.cpp" "src/CMakeFiles/dacepp.dir/runtime/tensor_ops.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/runtime/tensor_ops.cpp.o.d"
  "/root/repo/src/runtime/thread_pool.cpp" "src/CMakeFiles/dacepp.dir/runtime/thread_pool.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/runtime/thread_pool.cpp.o.d"
  "/root/repo/src/symbolic/subset.cpp" "src/CMakeFiles/dacepp.dir/symbolic/subset.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/symbolic/subset.cpp.o.d"
  "/root/repo/src/symbolic/symbolic.cpp" "src/CMakeFiles/dacepp.dir/symbolic/symbolic.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/symbolic/symbolic.cpp.o.d"
  "/root/repo/src/transforms/auto_optimize.cpp" "src/CMakeFiles/dacepp.dir/transforms/auto_optimize.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/transforms/auto_optimize.cpp.o.d"
  "/root/repo/src/transforms/fpga_transform.cpp" "src/CMakeFiles/dacepp.dir/transforms/fpga_transform.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/transforms/fpga_transform.cpp.o.d"
  "/root/repo/src/transforms/gpu_transform.cpp" "src/CMakeFiles/dacepp.dir/transforms/gpu_transform.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/transforms/gpu_transform.cpp.o.d"
  "/root/repo/src/transforms/loop_to_map.cpp" "src/CMakeFiles/dacepp.dir/transforms/loop_to_map.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/transforms/loop_to_map.cpp.o.d"
  "/root/repo/src/transforms/map_fusion.cpp" "src/CMakeFiles/dacepp.dir/transforms/map_fusion.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/transforms/map_fusion.cpp.o.d"
  "/root/repo/src/transforms/map_transforms.cpp" "src/CMakeFiles/dacepp.dir/transforms/map_transforms.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/transforms/map_transforms.cpp.o.d"
  "/root/repo/src/transforms/memory.cpp" "src/CMakeFiles/dacepp.dir/transforms/memory.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/transforms/memory.cpp.o.d"
  "/root/repo/src/transforms/pass.cpp" "src/CMakeFiles/dacepp.dir/transforms/pass.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/transforms/pass.cpp.o.d"
  "/root/repo/src/transforms/simplify.cpp" "src/CMakeFiles/dacepp.dir/transforms/simplify.cpp.o" "gcc" "src/CMakeFiles/dacepp.dir/transforms/simplify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
