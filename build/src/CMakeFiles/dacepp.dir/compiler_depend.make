# Empty compiler generated dependencies file for dacepp.
# This may be replaced when dependencies are built.
