file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_compile.dir/bench_fig6_compile.cpp.o"
  "CMakeFiles/bench_fig6_compile.dir/bench_fig6_compile.cpp.o.d"
  "bench_fig6_compile"
  "bench_fig6_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
