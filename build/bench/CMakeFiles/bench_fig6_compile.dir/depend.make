# Empty dependencies file for bench_fig6_compile.
# This may be replaced when dependencies are built.
