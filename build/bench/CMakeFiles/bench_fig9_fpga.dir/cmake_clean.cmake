file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_fpga.dir/bench_fig9_fpga.cpp.o"
  "CMakeFiles/bench_fig9_fpga.dir/bench_fig9_fpga.cpp.o.d"
  "bench_fig9_fpga"
  "bench_fig9_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
