# Empty dependencies file for bench_fig9_fpga.
# This may be replaced when dependencies are built.
