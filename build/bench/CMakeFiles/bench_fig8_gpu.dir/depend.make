# Empty dependencies file for bench_fig8_gpu.
# This may be replaced when dependencies are built.
