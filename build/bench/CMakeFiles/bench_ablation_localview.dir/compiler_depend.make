# Empty compiler generated dependencies file for bench_ablation_localview.
# This may be replaced when dependencies are built.
