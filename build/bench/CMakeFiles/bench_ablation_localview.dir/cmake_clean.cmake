file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_localview.dir/bench_ablation_localview.cpp.o"
  "CMakeFiles/bench_ablation_localview.dir/bench_ablation_localview.cpp.o.d"
  "bench_ablation_localview"
  "bench_ablation_localview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_localview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
