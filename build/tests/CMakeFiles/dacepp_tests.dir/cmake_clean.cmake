file(REMOVE_RECURSE
  "CMakeFiles/dacepp_tests.dir/test_codegen.cpp.o"
  "CMakeFiles/dacepp_tests.dir/test_codegen.cpp.o.d"
  "CMakeFiles/dacepp_tests.dir/test_devices.cpp.o"
  "CMakeFiles/dacepp_tests.dir/test_devices.cpp.o.d"
  "CMakeFiles/dacepp_tests.dir/test_distributed.cpp.o"
  "CMakeFiles/dacepp_tests.dir/test_distributed.cpp.o.d"
  "CMakeFiles/dacepp_tests.dir/test_executor.cpp.o"
  "CMakeFiles/dacepp_tests.dir/test_executor.cpp.o.d"
  "CMakeFiles/dacepp_tests.dir/test_frontend.cpp.o"
  "CMakeFiles/dacepp_tests.dir/test_frontend.cpp.o.d"
  "CMakeFiles/dacepp_tests.dir/test_ir.cpp.o"
  "CMakeFiles/dacepp_tests.dir/test_ir.cpp.o.d"
  "CMakeFiles/dacepp_tests.dir/test_kernels.cpp.o"
  "CMakeFiles/dacepp_tests.dir/test_kernels.cpp.o.d"
  "CMakeFiles/dacepp_tests.dir/test_stream.cpp.o"
  "CMakeFiles/dacepp_tests.dir/test_stream.cpp.o.d"
  "CMakeFiles/dacepp_tests.dir/test_subset.cpp.o"
  "CMakeFiles/dacepp_tests.dir/test_subset.cpp.o.d"
  "CMakeFiles/dacepp_tests.dir/test_symbolic.cpp.o"
  "CMakeFiles/dacepp_tests.dir/test_symbolic.cpp.o.d"
  "CMakeFiles/dacepp_tests.dir/test_tensor.cpp.o"
  "CMakeFiles/dacepp_tests.dir/test_tensor.cpp.o.d"
  "CMakeFiles/dacepp_tests.dir/test_transforms.cpp.o"
  "CMakeFiles/dacepp_tests.dir/test_transforms.cpp.o.d"
  "dacepp_tests"
  "dacepp_tests.pdb"
  "dacepp_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dacepp_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
