# Empty dependencies file for dacepp_tests.
# This may be replaced when dependencies are built.
