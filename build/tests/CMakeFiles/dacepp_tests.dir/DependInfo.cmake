
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_codegen.cpp" "tests/CMakeFiles/dacepp_tests.dir/test_codegen.cpp.o" "gcc" "tests/CMakeFiles/dacepp_tests.dir/test_codegen.cpp.o.d"
  "/root/repo/tests/test_devices.cpp" "tests/CMakeFiles/dacepp_tests.dir/test_devices.cpp.o" "gcc" "tests/CMakeFiles/dacepp_tests.dir/test_devices.cpp.o.d"
  "/root/repo/tests/test_distributed.cpp" "tests/CMakeFiles/dacepp_tests.dir/test_distributed.cpp.o" "gcc" "tests/CMakeFiles/dacepp_tests.dir/test_distributed.cpp.o.d"
  "/root/repo/tests/test_executor.cpp" "tests/CMakeFiles/dacepp_tests.dir/test_executor.cpp.o" "gcc" "tests/CMakeFiles/dacepp_tests.dir/test_executor.cpp.o.d"
  "/root/repo/tests/test_frontend.cpp" "tests/CMakeFiles/dacepp_tests.dir/test_frontend.cpp.o" "gcc" "tests/CMakeFiles/dacepp_tests.dir/test_frontend.cpp.o.d"
  "/root/repo/tests/test_ir.cpp" "tests/CMakeFiles/dacepp_tests.dir/test_ir.cpp.o" "gcc" "tests/CMakeFiles/dacepp_tests.dir/test_ir.cpp.o.d"
  "/root/repo/tests/test_kernels.cpp" "tests/CMakeFiles/dacepp_tests.dir/test_kernels.cpp.o" "gcc" "tests/CMakeFiles/dacepp_tests.dir/test_kernels.cpp.o.d"
  "/root/repo/tests/test_stream.cpp" "tests/CMakeFiles/dacepp_tests.dir/test_stream.cpp.o" "gcc" "tests/CMakeFiles/dacepp_tests.dir/test_stream.cpp.o.d"
  "/root/repo/tests/test_subset.cpp" "tests/CMakeFiles/dacepp_tests.dir/test_subset.cpp.o" "gcc" "tests/CMakeFiles/dacepp_tests.dir/test_subset.cpp.o.d"
  "/root/repo/tests/test_symbolic.cpp" "tests/CMakeFiles/dacepp_tests.dir/test_symbolic.cpp.o" "gcc" "tests/CMakeFiles/dacepp_tests.dir/test_symbolic.cpp.o.d"
  "/root/repo/tests/test_tensor.cpp" "tests/CMakeFiles/dacepp_tests.dir/test_tensor.cpp.o" "gcc" "tests/CMakeFiles/dacepp_tests.dir/test_tensor.cpp.o.d"
  "/root/repo/tests/test_transforms.cpp" "tests/CMakeFiles/dacepp_tests.dir/test_transforms.cpp.o" "gcc" "tests/CMakeFiles/dacepp_tests.dir/test_transforms.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/dacepp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
