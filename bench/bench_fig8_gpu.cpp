// Figure 8: CuPy and DaCe GPU runtime on the simulated V100
// (lower is better). Both columns execute real values; the device model
// charges launches, HBM roofline time, atomics and transfers.
#include <cstdio>

#include "bench_common.hpp"
#include "frontend/lowering.hpp"
#include "frontend/parser.hpp"
#include "gpu/cupy_like.hpp"
#include "gpu/gpu_executor.hpp"
#include "kernels/suite.hpp"
#include "transforms/auto_optimize.hpp"

using namespace dace;

int main() {
  printf("=== Figure 8: GPU runtime, CuPy vs DaCe (simulated V100) ===\n");
  printf("%-12s %12s %12s %10s %9s %9s\n", "kernel", "CuPy", "DaCe",
         "speedup", "launches", "launches");
  std::vector<double> speedups;
  for (const auto& k : kernels::suite()) {
    if (!k.gpu) continue;
    const sym::SymbolMap& sizes = k.presets.at("paper");

    fe::Module mod = fe::parse(k.source);
    rt::Bindings b1 = k.init(sizes);
    gpu::GpuRunResult cupy = gpu::run_cupy(mod.functions[0], b1, sizes);

    auto sdfg = fe::compile_to_sdfg(k.source);
    xf::auto_optimize(*sdfg, ir::DeviceType::GPU);
    rt::Bindings b2 = k.init(sizes);
    gpu::GpuRunResult dace_res = gpu::run_gpu(*sdfg, b2, sizes);

    double sp = cupy.kernel_time_s / dace_res.kernel_time_s;
    speedups.push_back(sp);
    bench::JsonReport::global().record("fig8." + k.name + ".cupy",
                                       cupy.kernel_time_s * 1e9);
    bench::JsonReport::global().record("fig8." + k.name + ".dace",
                                       dace_res.kernel_time_s * 1e9);
    printf("%-12s %12s %12s %9.2fx %9lld %9lld%s\n", k.name.c_str(),
           bench::fmt_time(cupy.kernel_time_s).c_str(),
           bench::fmt_time(dace_res.kernel_time_s).c_str(), sp,
           (long long)cupy.kernels, (long long)dace_res.kernels,
           sp < 1.0 ? "  <- CuPy wins (WCR atomics)" : "");
    fflush(stdout);
  }
  printf("%-12s %12s %12s %9.2fx\n", "geomean", "-", "-",
         bench::geomean(speedups));
  printf("\npaper reference: DaCe 3.75x (geomean) over CuPy; stencils gain "
         "most\n(fusion removes intermediate global-memory round trips); "
         "resnet is the\nexception where CuPy wins due to WCR atomics.\n");
  return 0;
}
