// Ablation (Section 4.3): implicit global-view distribution of a
// time-stepped stencil -- BlockScatter/BlockGather collectives at every
// timestep -- versus the explicit local-view halo-exchange program. This
// is the motivating example for giving users direct control.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "distributed/dist_kernels.hpp"
#include "distributed/simmpi.hpp"
#include "kernels/suite.hpp"

using namespace dace;

int main() {
  printf("=== Ablation: implicit scatter/gather vs explicit local view "
         "(jacobi_2d) ===\n");
  printf("%5s | %14s | %14s | %7s\n", "procs", "implicit", "explicit",
         "ratio");
  const int64_t N = 512, T = 20;
  for (int p : {1, 2, 4, 8, 16, 32}) {
    sym::SymbolMap sz{{"N", N}, {"TSTEPS", T}};
    // Explicit local view: halo exchanges only (the Section 4.3 program).
    dist::World w(p, dist::NetModel::mpi_cray());
    double t_explicit =
        dist::run_dist_kernel("jacobi_2d", w, sz, dist::NodeModel(), nullptr)
            .time_s;
    // Implicit global view: every half-step scatters both arrays and
    // gathers the result (the naive composition of Section 4.1 ops).
    // Modeled analytically with the same network/node parameters.
    dist::NetModel net = dist::NetModel::mpi_cray();
    dist::NodeModel node;
    double bytes = (double)(N * N * 8);
    double coll = net.alpha_s * (p > 1 ? std::log2((double)p) : 1) +
                  (double)(p - 1) / p * bytes / net.bandwidth;
    int64_t cells = (N - 2) * (N - 2) / p;
    double halfstep = node.compute_time((uint64_t)(5 * cells),
                                        (uint64_t)(16 * cells));
    double t_implicit = 2.0 * (double)(T - 1) * (2 * coll + halfstep);
    std::string key = "localview.jacobi_2d.p" + std::to_string(p);
    bench::JsonReport::global().record(key + ".implicit", t_implicit * 1e9);
    bench::JsonReport::global().record(key + ".explicit", t_explicit * 1e9);
    printf("%5d | %14s | %14s | %6.2fx\n", p,
           bench::fmt_time(t_implicit).c_str(),
           bench::fmt_time(t_explicit).c_str(), t_implicit / t_explicit);
    fflush(stdout);
  }
  printf("\npaper reference: the implicit approach 'would yield unnecessary "
         "Scatter\nand Gather collectives at every timestep' (Section 4.3); "
         "explicit halo\nexchange avoids moving the global arrays.\n");
  return 0;
}
