// Ablation: contribution of the individual auto-optimizer passes
// (Section 3.1) -- greedy subgraph fusion, WCR tiling, transient
// allocation mitigation -- measured on the bytecode-VM executor so the
// effect of graph structure is isolated from host-compiler quality.
#include <cstdio>

#include "bench_common.hpp"
#include "frontend/lowering.hpp"
#include "kernels/suite.hpp"
#include "runtime/executor.hpp"
#include "transforms/auto_optimize.hpp"

using namespace dace;

namespace {

struct Variant {
  const char* name;
  xf::AutoOptOptions opts;
};

void run_kernel(const char* kname) {
  const auto& k = kernels::kernel(kname);
  const sym::SymbolMap& sizes = k.presets.at("paper");
  xf::AutoOptOptions full;
  xf::AutoOptOptions no_fusion = full;
  no_fusion.fusion = false;
  xf::AutoOptOptions no_tile = full;
  no_tile.tile_wcr = false;
  xf::AutoOptOptions no_transient = full;
  no_transient.transient_mitigation = false;
  const Variant variants[] = {{"full -O3", full},
                              {"- fusion", no_fusion},
                              {"- WCR tiling", no_tile},
                              {"- transient mitigation", no_transient}};
  printf("\n--- %s ---\n", kname);
  printf("%-24s %12s %10s %12s\n", "variant", "runtime", "launches",
         "wcr stores");
  for (const auto& v : variants) {
    auto sdfg = fe::compile_to_sdfg(k.source);
    xf::auto_optimize(*sdfg, ir::DeviceType::CPU, v.opts);
    rt::Executor ex(*sdfg);
    auto t = bench::time_median(
        std::string("ablation.") + kname + "." + v.name,
        [&] {
          rt::Bindings b = k.init(sizes);
          ex.run(b, sizes);
        },
        3);
    printf("%-24s %12s %10lld %12llu\n", v.name,
           bench::fmt_time(t.median_s).c_str(), (long long)ex.map_launches(),
           (unsigned long long)ex.stats().wcr_stores);
    fflush(stdout);
  }
}

}  // namespace

int main() {
  printf("=== Ablation: auto-optimizer passes (Section 3.1) ===\n");
  run_kernel("jacobi_2d");   // fusion dominates (stencil)
  run_kernel("gemver");      // fusion + transients
  run_kernel("go_fast");     // WCR tiling (scalar accumulation)
  run_kernel("nbody");       // WCR-heavy explicit map
  return 0;
}
