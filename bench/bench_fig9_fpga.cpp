// Figure 9: FPGA runtime on the simulated Intel Stratix 10 and Xilinx
// Alveo U250 shells, single precision (Section 3.4). No other framework
// compiles annotated Python to FPGAs, so there is no comparison column.
#include <cstdio>

#include "bench_common.hpp"
#include "fpga/fpga_executor.hpp"
#include "frontend/lowering.hpp"
#include "kernels/suite.hpp"
#include "transforms/auto_optimize.hpp"

using namespace dace;

int main() {
  printf("=== Figure 9: FPGA runtime (simulated shells, single precision) "
         "===\n");
  printf("%-12s %14s %14s %8s\n", "kernel", "Intel S10", "Xilinx U250",
         "ratio");
  for (const auto& k : kernels::suite()) {
    if (!k.fpga) continue;
    const sym::SymbolMap& sizes = k.presets.at("fpga");
    auto sdfg = fe::compile_to_sdfg(k.source);
    xf::auto_optimize(*sdfg, ir::DeviceType::FPGA);

    rt::Bindings b1 = k.init(sizes);
    double t_intel =
        fpga::run_fpga(*sdfg, b1, sizes, fpga::FpgaModel::intel()).time_s;
    rt::Bindings b2 = k.init(sizes);
    double t_xilinx =
        fpga::run_fpga(*sdfg, b2, sizes, fpga::FpgaModel::xilinx()).time_s;
    bench::JsonReport::global().record("fig9." + k.name + ".intel",
                                       t_intel * 1e9);
    bench::JsonReport::global().record("fig9." + k.name + ".xilinx",
                                       t_xilinx * 1e9);
    printf("%-12s %14s %14s %7.2fx%s\n", k.name.c_str(),
           bench::fmt_time(t_intel).c_str(),
           bench::fmt_time(t_xilinx).c_str(), t_xilinx / t_intel,
           t_xilinx / t_intel > 1.5 ? "  <- Intel advantage (stencil/reuse + clock)" : "");
    fflush(stdout);
  }
  printf("\npaper reference: both vendors synthesize from the same "
         "annotated\nPython; Intel wins stencil-like kernels (superior "
         "stencil pattern\ndetection / shift registers) and has hardened "
         "float32 accumulation,\nwhile Xilinx needs accumulation "
         "interleaving.\n");
  return 0;
}
