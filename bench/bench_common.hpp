// Shared benchmark utilities: median-of-N timing with a nonparametric
// confidence interval (the paper reports medians of 10 runs with 95%
// nonparametric CIs, Section 3.4.1) and table formatting.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace bench {

struct Timing {
  double median_s = 0;
  double ci_low = 0, ci_high = 0;  // nonparametric CI bounds
  int reps = 0;
};

inline Timing time_median(const std::function<void()>& fn, int reps = 5) {
  std::vector<double> ts;
  for (int i = 0; i < reps; ++i) {
    auto t0 = std::chrono::steady_clock::now();
    fn();
    auto t1 = std::chrono::steady_clock::now();
    ts.push_back(std::chrono::duration<double>(t1 - t0).count());
  }
  std::sort(ts.begin(), ts.end());
  Timing t;
  t.reps = reps;
  t.median_s = ts[ts.size() / 2];
  t.ci_low = ts.front();
  t.ci_high = ts.back();
  return t;
}

inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double acc = 0;
  for (double x : xs) acc += std::log(x);
  return std::exp(acc / (double)xs.size());
}

inline std::string fmt_time(double s) {
  char buf[64];
  if (s >= 1.0) {
    snprintf(buf, sizeof(buf), "%.3f s", s);
  } else if (s >= 1e-3) {
    snprintf(buf, sizeof(buf), "%.3f ms", s * 1e3);
  } else {
    snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  }
  return buf;
}

}  // namespace bench
