// Shared benchmark utilities: median-of-N timing with a nonparametric
// confidence interval (the paper reports medians of 10 runs with 95%
// nonparametric CIs, Section 3.4.1) and table formatting.
//
// Timing runs on the obs:: monotonic clock (common/obs.hpp), so bench
// spans land on the same timeline as runtime/JIT/pass spans when tracing
// is enabled (DACE_TRACE_FILE=...).  Every *named* timing additionally
// lands in a machine-readable JSON report written at process exit:
// BENCH_10.json in the working directory, or $BENCH_JSON when set.  Keys
// are the timing names, values are median nanoseconds.  Writes merge
// into an existing report (our keys win), so several bench binaries run
// in sequence accumulate one trajectory snapshot per PR.
#pragma once

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/diag.hpp"
#include "common/obs.hpp"

namespace bench {

struct Timing {
  double median_s = 0;
  double ci_low = 0, ci_high = 0;  // nonparametric CI bounds
  int reps = 0;
};

/// Accumulates named timings and writes them as JSON at exit
/// ({"name": median_ns, ...}); tools and CI diff these across runs.
class JsonReport {
 public:
  static JsonReport& global() {
    // Leaked so the atexit writer can run at any point in shutdown.
    static JsonReport* r = new JsonReport();
    return *r;
  }

  void record(const std::string& name, double median_ns) {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& e : entries_) {
      if (e.first == name) {
        e.second = median_ns;  // re-measured: last result wins
        return;
      }
    }
    entries_.emplace_back(name, median_ns);
  }

  void write() {
    const char* env = std::getenv("BENCH_JSON");
    std::string path = env && *env ? env : "BENCH_10.json";
    std::lock_guard<std::mutex> lk(mu_);
    if (entries_.empty()) return;
    // Merge-on-write: fold keys already in the file under ours, so
    // bench_serve + bench_fig7 (separate processes) share one snapshot.
    std::vector<std::pair<std::string, double>> merged;
    for (const auto& [k, v] : parse_flat(path)) {
      bool ours = false;
      for (const auto& e : entries_) {
        if (e.first == k) {
          ours = true;
          break;
        }
      }
      if (!ours) merged.emplace_back(k, v);
    }
    merged.insert(merged.end(), entries_.begin(), entries_.end());
    FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return;
    std::fprintf(f, "{\n");
    for (size_t i = 0; i < merged.size(); ++i) {
      std::fprintf(f, "  \"%s\": %.1f%s\n",
                   dace::diag::json_escape(merged[i].first).c_str(),
                   merged[i].second,
                   i + 1 < merged.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::fprintf(stderr, "bench: wrote %zu timings to %s\n", merged.size(),
                 path.c_str());
  }

 private:
  JsonReport() { std::atexit(&JsonReport::write_at_exit); }
  static void write_at_exit() { global().write(); }

  /// Best-effort read of an existing flat report ({"name": number, ...});
  /// anything unparseable yields an empty map (the write starts fresh).
  static std::vector<std::pair<std::string, double>> parse_flat(
      const std::string& path) {
    std::vector<std::pair<std::string, double>> out;
    FILE* f = std::fopen(path.c_str(), "r");
    if (!f) return out;
    std::string text;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
    std::fclose(f);
    size_t pos = 0;
    auto skip_ws = [&] {
      while (pos < text.size() && std::isspace((unsigned char)text[pos]))
        ++pos;
    };
    skip_ws();
    if (pos >= text.size() || text[pos] != '{') return out;
    ++pos;
    while (true) {
      skip_ws();
      if (pos >= text.size()) return {};
      if (text[pos] == '}') return out;
      if (text[pos] == ',') {
        ++pos;
        continue;
      }
      if (text[pos] != '"') return {};
      size_t end = text.find('"', pos + 1);
      if (end == std::string::npos) return {};
      std::string key = text.substr(pos + 1, end - pos - 1);
      pos = end + 1;
      skip_ws();
      if (pos >= text.size() || text[pos] != ':') return {};
      ++pos;
      skip_ws();
      char* numend = nullptr;
      double v = std::strtod(text.c_str() + pos, &numend);
      if (numend == text.c_str() + pos) return {};
      pos = (size_t)(numend - text.c_str());
      out.emplace_back(std::move(key), v);
    }
  }

  std::mutex mu_;
  std::vector<std::pair<std::string, double>> entries_;
};

inline Timing time_median(const std::function<void()>& fn, int reps = 5) {
  std::vector<double> ts;
  for (int i = 0; i < reps; ++i) {
    int64_t t0 = dace::obs::now_ns();
    fn();
    ts.push_back((double)(dace::obs::now_ns() - t0) / 1e9);
  }
  std::sort(ts.begin(), ts.end());
  Timing t;
  t.reps = reps;
  t.median_s = ts[ts.size() / 2];
  t.ci_low = ts.front();
  t.ci_high = ts.back();
  return t;
}

/// Named timing: recorded into the JSON report and, when tracing is on,
/// covered by a "bench" span on the host timeline.
inline Timing time_median(const std::string& name,
                          const std::function<void()>& fn, int reps = 5) {
  dace::obs::Span span("bench", name);
  Timing t = time_median(fn, reps);
  JsonReport::global().record(name, t.median_s * 1e9);
  return t;
}

inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double acc = 0;
  for (double x : xs) acc += std::log(x);
  return std::exp(acc / (double)xs.size());
}

inline std::string fmt_time(double s) {
  char buf[64];
  if (s >= 1.0) {
    snprintf(buf, sizeof(buf), "%.3f s", s);
  } else if (s >= 1e-3) {
    snprintf(buf, sizeof(buf), "%.3f ms", s * 1e3);
  } else {
    snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  }
  return buf;
}

}  // namespace bench
