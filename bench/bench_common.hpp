// Shared benchmark utilities: median-of-N timing with a nonparametric
// confidence interval (the paper reports medians of 10 runs with 95%
// nonparametric CIs, Section 3.4.1) and table formatting.
//
// Timing runs on the obs:: monotonic clock (common/obs.hpp), so bench
// spans land on the same timeline as runtime/JIT/pass spans when tracing
// is enabled (DACE_TRACE_FILE=...).  Every *named* timing additionally
// lands in a machine-readable JSON report written at process exit:
// BENCH_8.json in the working directory, or $BENCH_JSON when set.  Keys
// are the timing names, values are median nanoseconds.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/diag.hpp"
#include "common/obs.hpp"

namespace bench {

struct Timing {
  double median_s = 0;
  double ci_low = 0, ci_high = 0;  // nonparametric CI bounds
  int reps = 0;
};

/// Accumulates named timings and writes them as JSON at exit
/// ({"name": median_ns, ...}); tools and CI diff these across runs.
class JsonReport {
 public:
  static JsonReport& global() {
    // Leaked so the atexit writer can run at any point in shutdown.
    static JsonReport* r = new JsonReport();
    return *r;
  }

  void record(const std::string& name, double median_ns) {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto& e : entries_) {
      if (e.first == name) {
        e.second = median_ns;  // re-measured: last result wins
        return;
      }
    }
    entries_.emplace_back(name, median_ns);
  }

  void write() {
    const char* env = std::getenv("BENCH_JSON");
    std::string path = env && *env ? env : "BENCH_8.json";
    std::lock_guard<std::mutex> lk(mu_);
    if (entries_.empty()) return;
    FILE* f = std::fopen(path.c_str(), "w");
    if (!f) return;
    std::fprintf(f, "{\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %.1f%s\n",
                   dace::diag::json_escape(entries_[i].first).c_str(),
                   entries_[i].second,
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::fprintf(stderr, "bench: wrote %zu timings to %s\n", entries_.size(),
                 path.c_str());
  }

 private:
  JsonReport() { std::atexit(&JsonReport::write_at_exit); }
  static void write_at_exit() { global().write(); }

  std::mutex mu_;
  std::vector<std::pair<std::string, double>> entries_;
};

inline Timing time_median(const std::function<void()>& fn, int reps = 5) {
  std::vector<double> ts;
  for (int i = 0; i < reps; ++i) {
    int64_t t0 = dace::obs::now_ns();
    fn();
    ts.push_back((double)(dace::obs::now_ns() - t0) / 1e9);
  }
  std::sort(ts.begin(), ts.end());
  Timing t;
  t.reps = reps;
  t.median_s = ts[ts.size() / 2];
  t.ci_low = ts.front();
  t.ci_high = ts.back();
  return t;
}

/// Named timing: recorded into the JSON report and, when tracing is on,
/// covered by a "bench" span on the host timeline.
inline Timing time_median(const std::string& name,
                          const std::function<void()>& fn, int reps = 5) {
  dace::obs::Span span("bench", name);
  Timing t = time_median(fn, reps);
  JsonReport::global().record(name, t.median_s * 1e9);
  return t;
}

inline double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double acc = 0;
  for (double x : xs) acc += std::log(x);
  return std::exp(acc / (double)xs.size());
}

inline std::string fmt_time(double s) {
  char buf[64];
  if (s >= 1.0) {
    snprintf(buf, sizeof(buf), "%.3f s", s);
  } else if (s >= 1e-3) {
    snprintf(buf, sizeof(buf), "%.3f ms", s * 1e3);
  } else {
    snprintf(buf, sizeof(buf), "%.1f us", s * 1e6);
  }
  return buf;
}

}  // namespace bench
