// Figure 7: CPU runtime and speedup over NumPy.
//
// Columns (stand-ins documented in DESIGN.md):
//   numpy   -- eager AST interpreter over native per-op loops (NumPy/CPython)
//   -O0     -- direct SDFG translation, no coarsening (Numba/Pythran class)
//   DaCe    -- auto-optimized SDFG, AOT-compiled via the system compiler
//              when available (falls back to the bytecode VM)
//   C++ref  -- hand-written reference kernels (Polybench/C + GCC class)
//   VM(T0)  -- auto-optimized SDFG on the bytecode VM (DACEPP_JIT=0)
//   JIT(T1) -- same SDFG with every map promoted to the native tier
// Speedups are relative to the numpy column (green/up in the paper).
//
// The pgo column is a warm-profile A/B: a recording run flushes its
// tier-1 profile into the on-disk profile DB at teardown, then a fresh
// executor under DACE_PGO=1 with an unreachably high promotion
// threshold must pre-promote from the stored profile alone.  Reported
// as VM(T0) median over PGO median (fig7.<kernel>.pgo_speedup).
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "codegen/codegen.hpp"
#include "codegen/jit.hpp"
#include "common/profdb.hpp"
#include "frontend/lowering.hpp"
#include "frontend/parser.hpp"
#include "kernels/suite.hpp"
#include "runtime/eager_interpreter.hpp"
#include "runtime/executor.hpp"
#include "transforms/auto_optimize.hpp"

using namespace dace;

int main() {
  // A bench-local profile DB so the PGO column measures exactly the
  // profiles recorded here, not whatever an earlier run left behind.
  setenv("DACE_PROFILE_DB_DIR", "fig7-profdb", 1);
  prof::ProfileDB::reset_for_testing();
  prof::ProfileDB::instance().purge();
  printf("=== Figure 7: CPU runtime and speedup over NumPy ===\n");
  printf("%-12s %12s %9s %9s %9s %9s %9s %8s %8s %8s %8s\n", "kernel",
         "numpy", "-O0", "DaCe", "C++ref", "VM(T0)", "JIT(T1)", "T1/T0",
         "T1/ref", "plan", "pgo");
  std::vector<double> sp_o0, sp_dace, sp_ref, sp_t0, sp_t1, tier_ratio,
      ref_ratio, plan_sp, pgo_sp;
  int reps = 3;
  for (const auto& k : kernels::suite()) {
    const sym::SymbolMap& sizes = k.presets.at("paper");

    fe::Module mod = fe::parse(k.source);
    rt::EagerInterpreter eager(mod.functions[0]);
    auto t_numpy = bench::time_median(
        "fig7." + k.name + ".numpy",
        [&] {
          rt::Bindings b = k.init(sizes);
          eager.run(b, sizes);
        },
        reps);

    auto o0 = fe::compile_to_sdfg(k.source);
    rt::Executor ex0(*o0);
    auto t_o0 = bench::time_median(
        "fig7." + k.name + ".o0",
        [&] {
          rt::Bindings b = k.init(sizes);
          ex0.run(b, sizes);
        },
        reps);

    auto opt = fe::compile_to_sdfg(k.source);
    xf::auto_optimize(*opt, ir::DeviceType::CPU);
    cg::CompiledProgram prog = cg::compile(*opt);
    rt::Executor exo(*opt);
    auto t_dace = bench::time_median(
        "fig7." + k.name + ".dace",
        [&] {
          rt::Bindings b = k.init(sizes);
          if (prog.valid()) {
            std::vector<double*> args;
            for (const auto& an : opt->arg_names())
              args.push_back(b.at(an).data());
            std::vector<long long> syms;
            for (const auto& s : cg::symbol_order(*opt))
              syms.push_back(sizes.at(s));
            prog.fn()(args.data(), syms.data());
          } else {
            exo.run(b, sizes);
          }
        },
        reps);

    auto t_ref = bench::time_median(
        "fig7." + k.name + ".cppref",
        [&] {
          rt::Bindings b = k.init(sizes);
          k.reference(b, sizes);
        },
        reps);

    // Tiered executor, Tier 0 pinned (pure bytecode VM).
    setenv("DACEPP_JIT", "0", 1);
    rt::Executor ext0(*opt);
    unsetenv("DACEPP_JIT");
    auto t_t0 = bench::time_median(
        "fig7." + k.name + ".vm_t0",
        [&] {
          rt::Bindings b = k.init(sizes);
          ext0.run(b, sizes);
        },
        reps);

    // Tier 1: promote every map immediately, compile synchronously, and
    // warm up once so the timed runs measure steady-state native code.
    setenv("DACEPP_JIT_THRESHOLD", "1", 1);
    setenv("DACEPP_JIT_SYNC", "1", 1);
    rt::Executor ext1(*opt);
    unsetenv("DACEPP_JIT_THRESHOLD");
    unsetenv("DACEPP_JIT_SYNC");
    {
      rt::Bindings b = k.init(sizes);
      ext1.run(b, sizes);
    }
    bool native = ext1.native_launches() > 0;
    auto t_t1 = bench::time_median(
        "fig7." + k.name + ".jit_t1",
        [&] {
          rt::Bindings b = k.init(sizes);
          ext1.run(b, sizes);
        },
        reps);

    // Kernel-plan A/B: the same SDFG with the planner disabled is the
    // pre-plan Tier-1 pipeline (goto emission, -O2, static worker
    // split).  Measured in-process, back to back with the plan-on
    // timing, so machine-load drift between runs cancels out.
    // DACE_KERNEL_PLAN is read at map-compile time and keyed into
    // Program::hash, so both native variants coexist in the JIT cache.
    setenv("DACEPP_JIT_THRESHOLD", "1", 1);
    setenv("DACEPP_JIT_SYNC", "1", 1);
    setenv("DACE_KERNEL_PLAN", "0", 1);
    rt::Executor exoff(*opt);
    {
      rt::Bindings b = k.init(sizes);
      exoff.run(b, sizes);
    }
    unsetenv("DACE_KERNEL_PLAN");
    unsetenv("DACEPP_JIT_THRESHOLD");
    unsetenv("DACEPP_JIT_SYNC");
    auto t_off = bench::time_median(
        "fig7." + k.name + ".jit_t1_plan_off",
        [&] {
          rt::Bindings b = k.init(sizes);
          exoff.run(b, sizes);
        },
        reps);

    // Profile-guided A/B.  Recording run: threshold 1 promotes to the
    // native tier and the executor teardown flushes tier=1 plus the
    // measured ns/iter into the profile DB.  PGO run: a fresh executor
    // under DACE_PGO=1 with a threshold no warmup could ever reach --
    // any native launch can only come from DB-driven pre-promotion.
    setenv("DACEPP_JIT_THRESHOLD", "1", 1);
    setenv("DACEPP_JIT_SYNC", "1", 1);
    {
      rt::Executor exrec(*opt);
      rt::Bindings b = k.init(sizes);
      exrec.run(b, sizes);
    }  // teardown flushes the profile
    setenv("DACEPP_JIT_THRESHOLD", "1000000000000", 1);
    setenv("DACE_PGO", "1", 1);
    rt::Executor expgo(*opt);
    {
      rt::Bindings b = k.init(sizes);
      expgo.run(b, sizes);
    }
    bool pgo_native = expgo.native_launches() > 0;
    auto t_pgo = bench::time_median(
        "fig7." + k.name + ".jit_pgo",
        [&] {
          rt::Bindings b = k.init(sizes);
          expgo.run(b, sizes);
        },
        reps);
    unsetenv("DACE_PGO");
    unsetenv("DACEPP_JIT_THRESHOLD");
    unsetenv("DACEPP_JIT_SYNC");
    if (native && !pgo_native)
      printf("  (pgo run of %s stayed on the VM: pre-promotion missed)\n",
             k.name.c_str());

    double s0 = t_numpy.median_s / t_o0.median_s;
    double sd = t_numpy.median_s / t_dace.median_s;
    double sr = t_numpy.median_s / t_ref.median_s;
    double st0 = t_numpy.median_s / t_t0.median_s;
    double st1 = t_numpy.median_s / t_t1.median_s;
    double r = t_t0.median_s / t_t1.median_s;
    // Gap to the hand-written C++ reference: JIT median over reference
    // median (1.0 = parity, below 1.0 = the generated code wins).
    double rr = t_t1.median_s / t_ref.median_s;
    bench::JsonReport::global().record("fig7." + k.name + ".ref_ratio", rr);
    // Plan-on over plan-off, same process: the planner's own speedup.
    double ps = t_off.median_s / t_t1.median_s;
    bench::JsonReport::global().record("fig7." + k.name + ".plan_speedup",
                                       ps);
    // Warm-profile speedup: bytecode VM over the DB-pre-promoted run.
    double pg = t_t0.median_s / t_pgo.median_s;
    bench::JsonReport::global().record("fig7." + k.name + ".pgo_speedup",
                                       pg);
    sp_o0.push_back(s0);
    sp_dace.push_back(sd);
    sp_ref.push_back(sr);
    sp_t0.push_back(st0);
    sp_t1.push_back(st1);
    tier_ratio.push_back(r);
    ref_ratio.push_back(rr);
    plan_sp.push_back(ps);
    pgo_sp.push_back(pg);
    printf("%-12s %12s %8.2fx %8.2fx %8.2fx %8.2fx %8.2fx %7.2fx %7.2fx "
           "%7.2fx %7.2fx%s\n",
           k.name.c_str(), bench::fmt_time(t_numpy.median_s).c_str(), s0, sd,
           sr, st0, st1, r, rr, ps, pg,
           native ? "" : "  (no native tier)");
    fflush(stdout);
  }
  printf("%-12s %12s %8.2fx %8.2fx %8.2fx %8.2fx %8.2fx %7.2fx %7.2fx "
         "%7.2fx %7.2fx\n",
         "geomean", "-", bench::geomean(sp_o0), bench::geomean(sp_dace),
         bench::geomean(sp_ref), bench::geomean(sp_t0),
         bench::geomean(sp_t1), bench::geomean(tier_ratio),
         bench::geomean(ref_ratio), bench::geomean(plan_sp),
         bench::geomean(pgo_sp));
  printf("\npaper reference: DaCe geomean speedup over best prior "
         "framework 2.47x;\nstencils gain most from subgraph fusion; "
         "C compilers win short/control-heavy kernels.\n");
  return 0;
}
