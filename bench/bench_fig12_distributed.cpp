// Figure 12 + Table 2: distributed weak scaling of DaCe vs Dask-like vs
// Legate-like on the simulated cluster.
//
// Table 2 semantics are preserved at reduced scale (documented in
// EXPERIMENTS.md): per kernel, an initial problem size and a scaling
// factor as a function of the process count S; the Dask baseline runs
// half-sized problems (it runs out of memory / becomes unstable at the
// DaCe sizes in the paper). Efficiency is T(1)/T(S) per framework
// (weak scaling; ideal = 1.0). Times are virtual cluster clocks: real
// data moves through simMPI, and compute is charged by the node model.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "distributed/dasklike.hpp"
#include "distributed/dist_kernels.hpp"
#include "frontend/parser.hpp"
#include "kernels/suite.hpp"

using namespace dace;

namespace {

// Scaling factor kinds from Table 2.
enum class SF { Sqrt, Cbrt, Linear, None };

struct Entry {
  std::string kernel;
  sym::SymbolMap base;                  // initial problem size (P = 1)
  std::map<std::string, SF> factors;    // per-symbol scaling
  std::string sf_text;
};

int64_t scaled(int64_t v, SF f, int p) {
  switch (f) {
    case SF::Sqrt: return (int64_t)std::llround(v * std::sqrt((double)p));
    case SF::Cbrt: return (int64_t)std::llround(v * std::cbrt((double)p));
    case SF::Linear: return v * p;
    case SF::None: return v;
  }
  return v;
}

sym::SymbolMap sizes_for(const Entry& e, int p, bool halved) {
  sym::SymbolMap out;
  for (const auto& [k, v] : e.base) {
    SF f = e.factors.count(k) ? e.factors.at(k) : SF::None;
    int64_t base = v;
    if (halved && f != SF::None) base = std::max<int64_t>(4, v / 2);
    out[k] = scaled(base, f, p);
  }
  return out;
}

std::vector<Entry> table2() {
  return {
      {"atax", {{"M", 600}, {"N", 700}}, {{"M", SF::Sqrt}, {"N", SF::Sqrt}},
       "all sqrt(S)"},
      {"bicg", {{"M", 700}, {"N", 600}}, {{"M", SF::Sqrt}, {"N", SF::Sqrt}},
       "all sqrt(S)"},
      {"doitgen", {{"NR", 16}, {"NQ", 64}, {"NP", 64}},
       {{"NR", SF::Linear}}, "(S, -, -)"},
      {"gemm", {{"NI", 160}, {"NJ", 184}, {"NK", 104}},
       {{"NI", SF::Cbrt}, {"NJ", SF::Cbrt}, {"NK", SF::Cbrt}},
       "all cbrt(S)"},
      {"gemver", {{"N", 500}}, {{"N", SF::Sqrt}}, "sqrt(S)"},
      {"gesummv", {{"N", 560}}, {{"N", SF::Sqrt}}, "sqrt(S)"},
      {"jacobi_1d", {{"TSTEPS", 50}, {"N", 24000}}, {{"N", SF::Linear}},
       "(-, S)"},
      {"jacobi_2d", {{"TSTEPS", 20}, {"N", 200}}, {{"N", SF::Sqrt}},
       "(-, sqrt(S))"},
      {"k2mm", {{"NI", 128}, {"NJ", 144}, {"NK", 88}, {"NL", 96}},
       {{"NI", SF::Cbrt}, {"NJ", SF::Cbrt}, {"NK", SF::Cbrt},
        {"NL", SF::Cbrt}},
       "all cbrt(S)"},
      {"k3mm",
       {{"NI", 128}, {"NJ", 144}, {"NK", 80}, {"NL", 88}, {"NM", 96}},
       {{"NI", SF::Cbrt}, {"NJ", SF::Cbrt}, {"NK", SF::Cbrt},
        {"NL", SF::Cbrt}, {"NM", SF::Cbrt}},
       "all cbrt(S)"},
      {"mvt", {{"N", 550}}, {{"N", SF::Sqrt}}, "sqrt(S)"},
  };
}

}  // namespace

int main() {
  printf("=== Table 2: distributed benchmarks, initial sizes, scaling "
         "factors ===\n");
  printf("(reduced ~8x from the paper's Piz Daint sizes; Dask sizes "
         "halved as in the paper)\n");
  for (const auto& e : table2()) {
    printf("%-10s  S.F. %-14s base:", e.kernel.c_str(), e.sf_text.c_str());
    for (const auto& [k, v] : e.base) printf(" %s=%lld", k.c_str(),
                                             (long long)v);
    printf("\n");
  }

  const std::vector<int> procs = {1, 2, 4, 8, 16, 32};
  printf("\n=== Figure 12: weak scaling, runtime [simulated] and "
         "efficiency ===\n");
  for (const auto& e : table2()) {
    printf("\n--- %s ---\n", e.kernel.c_str());
    printf("%5s | %12s %6s | %12s %6s | %12s %6s\n", "procs", "DaCe", "eff",
           "Dask", "eff", "Legate", "eff");
    double t1_dace = 0, t1_dask = 0, t1_leg = 0;
    fe::Module mod = fe::parse(kernels::kernel(e.kernel).source);
    for (int p : procs) {
      // DaCe: real distributed execution over simMPI.
      dist::World w(p, dist::NetModel::mpi_cray());
      sym::SymbolMap sz = sizes_for(e, p, false);
      double t_dace =
          dist::run_dist_kernel(e.kernel, w, sz, dist::NodeModel(), nullptr)
              .time_s;
      // Dask-like: halved sizes, TCP + central scheduler.
      sym::SymbolMap szh = sizes_for(e, p, true);
      rt::Bindings ad = kernels::kernel(e.kernel).init(szh);
      double t_dask = dist::run_tasking(mod.functions[0], ad, szh, p,
                                        dist::TaskingModel::dask())
                          .time_s;
      // Legate-like: full sizes, GASNet, per-op index launches.
      rt::Bindings al = kernels::kernel(e.kernel).init(sz);
      double t_leg = dist::run_tasking(mod.functions[0], al, sz, p,
                                       dist::TaskingModel::legate())
                         .time_s;
      if (p == 1) {
        t1_dace = t_dace;
        t1_dask = t_dask;
        t1_leg = t_leg;
      }
      std::string key = "fig12." + e.kernel + ".p" + std::to_string(p);
      bench::JsonReport::global().record(key + ".dace", t_dace * 1e9);
      bench::JsonReport::global().record(key + ".dask", t_dask * 1e9);
      bench::JsonReport::global().record(key + ".legate", t_leg * 1e9);
      printf("%5d | %12s %5.1f%% | %12s %5.1f%% | %12s %5.1f%%\n", p,
             bench::fmt_time(t_dace).c_str(), 100 * t1_dace / t_dace,
             bench::fmt_time(t_dask).c_str(), 100 * t1_dask / t_dask,
             bench::fmt_time(t_leg).c_str(), 100 * t1_leg / t_leg);
      fflush(stdout);
    }
  }
  printf("\npaper reference: doitgen near-perfect; matvec kernels >60%%; "
         "matmul\nkernels lower (ScaLAPACK-like); stencils in between; "
         "Dask and Legate\ndrop sharply from the second process, Legate "
         "flat afterwards.\n");
  return 0;
}
