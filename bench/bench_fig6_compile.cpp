// Figure 6: distributions of DaCe's total compilation times per device.
//
// For each suite kernel and device target, measures the full pipeline:
// parse -> lower -> dataflow coarsening + auto-optimization -> backend
// code generation, plus (CPU) a real host-compiler invocation, mirroring
// the paper's "parsing + auto-optimizing + compiling" total.  FPGA
// synthesis/place-and-route is excluded exactly as in the paper (it
// dwarfs and hides the DaCe-side overhead being reported).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "codegen/codegen.hpp"
#include "codegen/jit.hpp"
#include "frontend/lowering.hpp"
#include "kernels/suite.hpp"
#include "transforms/auto_optimize.hpp"

using namespace dace;

int main() {
  // Fig. 6 reports *compiler* time; a warm artifact cache would replace
  // the host-compiler invocation with a dlopen and skew the distribution.
  setenv("DACE_CACHE", "0", 1);
  printf("=== Figure 6: total compilation time distributions ===\n");
  struct Sample {
    std::string kernel;
    double seconds;
  };
  std::map<std::string, std::vector<Sample>> dist;
  for (const auto& k : kernels::suite()) {
    for (auto dev : {ir::DeviceType::CPU, ir::DeviceType::GPU,
                     ir::DeviceType::FPGA}) {
      if (dev == ir::DeviceType::GPU && !k.gpu) continue;
      if (dev == ir::DeviceType::FPGA && !k.fpga) continue;
      int64_t t0 = obs::now_ns();
      auto sdfg = fe::compile_to_sdfg(k.source);
      xf::auto_optimize(*sdfg, dev);
      double host_compile = 0;
      switch (dev) {
        case ir::DeviceType::CPU: {
          cg::CompiledProgram p = cg::compile(*sdfg);
          host_compile = p.compile_seconds();
          break;
        }
        case ir::DeviceType::GPU:
          (void)cg::generate(*sdfg, cg::Flavor::CUDA);
          break;
        case ir::DeviceType::FPGA:
          (void)cg::generate(*sdfg, cg::Flavor::HLS);
          break;
      }
      double total = (double)(obs::now_ns() - t0) / 1e9;
      (void)host_compile;
      bench::JsonReport::global().record(
          "fig6." + k.name + "." + ir::device_name(dev), total * 1e9);
      dist[ir::device_name(dev)].push_back({k.name, total});
    }
  }
  for (auto& [dev, samples] : dist) {
    std::vector<double> ts;
    for (const auto& s : samples) ts.push_back(s.seconds);
    std::sort(ts.begin(), ts.end());
    auto q = [&](double f) { return ts[(size_t)(f * (ts.size() - 1))]; };
    double frac15 = 0;
    for (double t : ts) frac15 += (t < 15.0);
    frac15 /= (double)ts.size();
    printf("%-5s n=%2zu  min=%s  median=%s  p90=%s  max=%s  (<15s: %.0f%%)\n",
           dev.c_str(), ts.size(), bench::fmt_time(ts.front()).c_str(),
           bench::fmt_time(q(0.5)).c_str(), bench::fmt_time(q(0.9)).c_str(),
           bench::fmt_time(ts.back()).c_str(), 100 * frac15);
    auto worst = std::max_element(
        samples.begin(), samples.end(),
        [](const Sample& a, const Sample& b) { return a.seconds < b.seconds; });
    printf("      slowest kernel: %s\n", worst->kernel.c_str());
  }
  printf("\npaper reference: 90%% of CPU and GPU codes compile in under "
         "15 s\n(single outlier above one minute); DaCe overhead is "
         "negligible next to FPGA synthesis.\n");
  return 0;
}
