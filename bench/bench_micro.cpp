// google-benchmark microbenchmarks of the substrate hot paths: the
// bytecode VM, eager tensor ops, symbolic engine, and simMPI primitives.
#include <benchmark/benchmark.h>

#include "distributed/simmpi.hpp"
#include "frontend/lowering.hpp"
#include "kernels/suite.hpp"
#include "runtime/executor.hpp"
#include "runtime/tensor_ops.hpp"
#include "transforms/auto_optimize.hpp"

using namespace dace;

static void BM_TensorAdd(benchmark::State& state) {
  rt::Tensor a(ir::DType::f64, {state.range(0)});
  rt::Tensor b(ir::DType::f64, {state.range(0)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::ops::add(a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TensorAdd)->Arg(1024)->Arg(65536)->Arg(1 << 20);

static void BM_VmFusedAxpy(benchmark::State& state) {
  auto sdfg = fe::compile_to_sdfg(R"(
@dace.program
def axpy(alpha: dace.float64, x: dace.float64[N], y: dace.float64[N]):
    y[:] = alpha * x + y
)");
  xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
  rt::Executor ex(*sdfg);
  int64_t n = state.range(0);
  rt::Bindings args{{"alpha", rt::Tensor::scalar(2.0)},
                    {"x", rt::Tensor(ir::DType::f64, {n})},
                    {"y", rt::Tensor(ir::DType::f64, {n})}};
  for (auto _ : state) {
    ex.run(args, {{"N", n}});
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_VmFusedAxpy)->Arg(1024)->Arg(65536)->Arg(1 << 20);

static void BM_SymbolicSimplify(benchmark::State& state) {
  sym::Expr n = sym::S("N"), m = sym::S("M");
  for (auto _ : state) {
    benchmark::DoNotOptimize((n + m) * (n - m) + m * m - n * n);
  }
}
BENCHMARK(BM_SymbolicSimplify);

static void BM_ParseAndLowerGemm(benchmark::State& state) {
  const auto& k = kernels::kernel("gemm");
  for (auto _ : state) {
    benchmark::DoNotOptimize(fe::compile_to_sdfg(k.source));
  }
}
BENCHMARK(BM_ParseAndLowerGemm);

static void BM_SimMpiP2P(benchmark::State& state) {
  for (auto _ : state) {
    dist::World w(2);
    w.run([](dist::Comm& c) {
      double buf[64] = {0};
      if (c.rank() == 0) {
        c.send(buf, 64, 1, 0);
      } else {
        c.recv(buf, 64, 0, 0);
      }
    });
  }
}
BENCHMARK(BM_SimMpiP2P);

BENCHMARK_MAIN();
