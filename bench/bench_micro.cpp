// google-benchmark microbenchmarks of the substrate hot paths: the
// bytecode VM (with and without the Tier-0 optimizer), eager tensor ops,
// symbolic engine, and simMPI primitives.
#include <benchmark/benchmark.h>

#include <cstdlib>

#include "bench_common.hpp"
#include "distributed/simmpi.hpp"
#include "frontend/lowering.hpp"
#include "kernels/suite.hpp"
#include "runtime/bytecode_opt.hpp"
#include "runtime/executor.hpp"
#include "runtime/tensor_ops.hpp"
#include "transforms/auto_optimize.hpp"

using namespace dace;

namespace {

/// A map-scope bytecode program bound to fresh tensors, ready for vm_run.
struct MapBench {
  rt::Program prog;
  std::vector<rt::Tensor> store;
  std::vector<rt::ArrayRef> arrays;
  std::vector<int64_t> syms;
  int64_t begin = 0, end = 0;
};

MapBench make_map_bench(const std::string& source,
                        const sym::SymbolMap& sizes, bool optimize) {
  MapBench mb;
  auto sdfg = fe::compile_to_sdfg(source);
  xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
  for (int s = 0; s < sdfg->num_states(); ++s) {
    const ir::State& st = sdfg->state(s);
    for (int id : st.node_ids()) {
      if (st.node(id)->kind != ir::NodeKind::MapEntry ||
          st.scope_of(id) != -1)
        continue;
      mb.prog = rt::compile_map_scope(*sdfg, st, id);
      if (optimize) rt::optimize_program(mb.prog);
      unsigned seed = 11;
      for (const std::string& name : mb.prog.arrays) {
        const auto& desc = sdfg->arrays().at(name);
        std::vector<int64_t> shape;
        for (const auto& e : desc.shape) shape.push_back(e.eval(sizes));
        mb.store.emplace_back(desc.dtype, shape);
        kernels::fill_pattern(mb.store.back(), seed++);
      }
      for (size_t i = 0; i < mb.store.size(); ++i)
        mb.arrays.push_back(rt::ArrayRef{mb.store[i].data(),
                                         mb.store[i].dtype()});
      for (const std::string& sy : mb.prog.symbols)
        mb.syms.push_back(sizes.at(sy));
      const auto* me = st.node_as<const ir::MapEntry>(id);
      mb.begin = me->range.range(0).begin.eval(sizes);
      mb.end = me->range.range(0).end.eval(sizes);
      return mb;
    }
  }
  return mb;
}

constexpr const char* kStencilSrc = R"(
@dace.program
def stencil(A: dace.float64[N, N], B: dace.float64[N, N]):
    B[1:-1, 1:-1] = 0.2 * (A[1:-1, 1:-1] + A[1:-1, :-2] +
                           A[1:-1, 2:] + A[2:, 1:-1] + A[:-2, 1:-1])
)";

constexpr const char* kOffsetSrc = R"(
@dace.program
def scale2d(A: dace.float64[N, N], B: dace.float64[N, N]):
    B[:, :] = 2.0 * A[:, :]
)";

void run_map_bench(benchmark::State& state, const char* src,
                   int64_t items_per_sweep) {
  MapBench mb = make_map_bench(src, {{"N", state.range(1)}},
                               state.range(0) != 0);
  rt::VMStats per_sweep;
  rt::vm_run(mb.prog, mb.arrays, mb.syms, mb.begin, mb.end, &per_sweep);
  for (auto _ : state) {
    rt::vm_run(mb.prog, mb.arrays, mb.syms, mb.begin, mb.end, nullptr);
  }
  state.SetItemsProcessed(state.iterations() * items_per_sweep);
  state.counters["instrs/sweep"] = (double)per_sweep.instrs;
}

}  // namespace

// VM dispatch cost on a fused stencil body, Tier-0 optimizer off (arg 0)
// and on (arg 1).  instrs/sweep shows the executed-instruction reduction.
static void BM_VmStencilDispatch(benchmark::State& state) {
  int64_t n = state.range(1);
  run_map_bench(state, kStencilSrc, (n - 2) * (n - 2));
}
BENCHMARK(BM_VmStencilDispatch)->Args({0, 128})->Args({1, 128});

// Per-iteration offset polynomial (i*N + j) vs induction-variable
// increments after strength reduction.
static void BM_VmOffsetStrengthReduction(benchmark::State& state) {
  int64_t n = state.range(1);
  run_map_bench(state, kOffsetSrc, n * n);
}
BENCHMARK(BM_VmOffsetStrengthReduction)->Args({0, 256})->Args({1, 256});

// Bounds-guard elision on a clean copy: every access guarded
// (DACE_ABSINT=all, arg 0) vs the interval prover discharging all of
// them (default mode, arg 1).  instrs/sweep shows the elided checks.
static void BM_VmGuardElision(benchmark::State& state) {
  ::setenv("DACE_ABSINT", state.range(0) == 0 ? "all" : "1", 1);
  MapBench mb = make_map_bench(kOffsetSrc, {{"N", state.range(1)}}, true);
  ::unsetenv("DACE_ABSINT");
  rt::VMStats per_sweep;
  rt::vm_run(mb.prog, mb.arrays, mb.syms, mb.begin, mb.end, &per_sweep);
  for (auto _ : state) {
    rt::vm_run(mb.prog, mb.arrays, mb.syms, mb.begin, mb.end, nullptr);
  }
  int64_t n = state.range(1);
  state.SetItemsProcessed(state.iterations() * n * n);
  state.counters["instrs/sweep"] = (double)per_sweep.instrs;
}
BENCHMARK(BM_VmGuardElision)->Args({0, 256})->Args({1, 256});

static void BM_TensorAdd(benchmark::State& state) {
  rt::Tensor a(ir::DType::f64, {state.range(0)});
  rt::Tensor b(ir::DType::f64, {state.range(0)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt::ops::add(a, b));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TensorAdd)->Arg(1024)->Arg(65536)->Arg(1 << 20);

static void BM_VmFusedAxpy(benchmark::State& state) {
  auto sdfg = fe::compile_to_sdfg(R"(
@dace.program
def axpy(alpha: dace.float64, x: dace.float64[N], y: dace.float64[N]):
    y[:] = alpha * x + y
)");
  xf::auto_optimize(*sdfg, ir::DeviceType::CPU);
  rt::Executor ex(*sdfg);
  int64_t n = state.range(0);
  rt::Bindings args{{"alpha", rt::Tensor::scalar(2.0)},
                    {"x", rt::Tensor(ir::DType::f64, {n})},
                    {"y", rt::Tensor(ir::DType::f64, {n})}};
  for (auto _ : state) {
    ex.run(args, {{"N", n}});
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_VmFusedAxpy)->Arg(1024)->Arg(65536)->Arg(1 << 20);

static void BM_SymbolicSimplify(benchmark::State& state) {
  sym::Expr n = sym::S("N"), m = sym::S("M");
  for (auto _ : state) {
    benchmark::DoNotOptimize((n + m) * (n - m) + m * m - n * n);
  }
}
BENCHMARK(BM_SymbolicSimplify);

static void BM_ParseAndLowerGemm(benchmark::State& state) {
  const auto& k = kernels::kernel("gemm");
  for (auto _ : state) {
    benchmark::DoNotOptimize(fe::compile_to_sdfg(k.source));
  }
}
BENCHMARK(BM_ParseAndLowerGemm);

static void BM_SimMpiP2P(benchmark::State& state) {
  for (auto _ : state) {
    dist::World w(2);
    w.run([](dist::Comm& c) {
      double buf[64] = {0};
      if (c.rank() == 0) {
        c.send(buf, 64, 1, 0);
      } else {
        c.recv(buf, 64, 0, 0);
      }
    });
  }
}
BENCHMARK(BM_SimMpiP2P);

namespace {

/// Console output as usual, plus every per-iteration result captured
/// into the shared JSON report ("micro.<name>", adjusted real ns) so
/// bench_micro emits BENCH_5.json like the table benchmarks do.
class JsonCapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& r : reports) {
      if (r.error_occurred || r.run_type != Run::RT_Iteration) continue;
      bench::JsonReport::global().record("micro." + r.benchmark_name(),
                                         r.GetAdjustedRealTime());
    }
    ConsoleReporter::ReportRuns(reports);
  }
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
