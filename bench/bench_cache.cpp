// bench_cache: cold- vs warm-cache JIT latency (the artifact cache's
// reason to exist).  Three medians land in the JSON report
// (BENCH_8.json / $BENCH_JSON):
//
//   cache.jit_uncached  DACE_CACHE=0 path: full host-compiler run, the
//                       pre-cache status quo
//   cache.jit_cold      cache enabled, key never seen: compiler run +
//                       fsync/rename commit (the one-time publish cost)
//   cache.jit_warm      key committed: verified dlopen, no compiler
//
// The acceptance bar is cache.jit_warm << cache.jit_cold.  Warm reps
// re-verify the artifact checksum and re-dlopen each time, so the number
// includes the full read-side defense, not just a refcount bump.
//
// All work happens in a private temp cache dir; the user's store is
// never touched.
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "bench_common.hpp"
#include "codegen/artifact_cache.hpp"
#include "codegen/jit.hpp"

namespace fs = std::filesystem;
using dace::cg::cache::ArtifactCache;

namespace {

int g_uniq = 0;

// A tiny but non-trivial translation unit; unique per call when `uniq`
// so every cold rep pays the full compiler price on a fresh key.
std::string make_source(bool uniq) {
  int tag = uniq ? ++g_uniq : 0;
  char buf[256];
  snprintf(buf, sizeof(buf),
           "extern \"C\" double dacepp_bench_fn(double x) {\n"
           "  double acc = %d;\n"
           "  for (int i = 0; i < 64; ++i) acc += x * i;\n"
           "  return acc;\n"
           "}\n",
           tag);
  return buf;
}

void build_once(bool uniq) {
  auto obj = dace::cg::detail::build_and_load(
      make_source(uniq), "dacepp_bench", "dacepp_bench_fn", "c++", "-O2");
  if (!obj.sym) {
    fprintf(stderr, "bench_cache: build failed (no host compiler?)\n");
    exit(1);
  }
}

void row(const char* name, const bench::Timing& t) {
  printf("%-22s %12s  [%s, %s]  reps=%d\n", name,
         bench::fmt_time(t.median_s).c_str(), bench::fmt_time(t.ci_low).c_str(),
         bench::fmt_time(t.ci_high).c_str(), t.reps);
}

}  // namespace

int main() {
  char tmpl[] = "/tmp/bench-cache-XXXXXX";
  if (!mkdtemp(tmpl)) return 1;
  std::string dir = tmpl;

  // Uncached baseline: the pre-cache pipeline (scratch build every time).
  setenv("DACE_CACHE", "0", 1);
  setenv("DACE_CACHE_DIR", dir.c_str(), 1);
  ArtifactCache::reset_for_testing();
  auto uncached = bench::time_median("cache.jit_uncached",
                                     [] { build_once(/*uniq=*/true); }, 5);

  // Cold: enabled cache, fresh key per rep -> compile + commit.
  setenv("DACE_CACHE", "1", 1);
  ArtifactCache::reset_for_testing();
  auto cold =
      bench::time_median("cache.jit_cold", [] { build_once(/*uniq=*/true); }, 5);

  // Warm: fixed key, committed on the priming call.
  build_once(/*uniq=*/false);
  auto warm =
      bench::time_median("cache.jit_warm", [] { build_once(/*uniq=*/false); },
                         10);

  printf("JIT build latency (artifact cache, dir=%s)\n", dir.c_str());
  row("uncached (DACE_CACHE=0)", uncached);
  row("cold (compile+commit)", cold);
  row("warm (verified dlopen)", warm);
  double speedup = warm.median_s > 0 ? cold.median_s / warm.median_s : 0;
  printf("warm speedup over cold: %.1fx\n", speedup);
  bench::JsonReport::global().record("cache.warm_speedup", speedup);

  fs::remove_all(dir);
  // The acceptance criterion: a warm start must beat a cold start.
  return warm.median_s < cold.median_s ? 0 : 1;
}
