// bench_serve: request latency of the sdfg-serve daemon (src/serve/*).
// Five medians land in the shared trajectory report (BENCH_10.json /
// $BENCH_JSON; writes merge, so this coexists with bench_fig7's keys):
//
//   serve.ping          frame round-trip over the unix socket: protocol
//                       + scheduling floor, no compile or execution
//   serve.request_cold  full compile-and-run of a fresh program (parse,
//                       lower, auto-opt, VM run, output checksums)
//   serve.request_warm  the same request repeated on one connection --
//                       today this re-runs the pipeline, so warm ~ cold
//                       is expected and the delta tracks any future
//                       daemon-side SDFG caching
//   serve.hammer_8      8 concurrent identical requests; in-flight dedup
//                       collapses them to one compile, so the batch
//                       should cost ~1 request, not 8
//   serve.hammer_32     the dedup acceptance shape (32 clients)
//
// The daemon runs in-process on a private socket; jobs stay on the VM
// tier (no host compiler involved), so the numbers isolate serve-layer
// overhead from JIT cost (bench_cache covers the latter).
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"

using namespace dace::serve;

namespace {

int g_uniq = 0;

RunRequest make_request(bool uniq) {
  int tag = uniq ? ++g_uniq : 0;
  RunRequest r;
  r.source = "@dace.program\ndef bench_axpy(A: dace.float64[N], "
             "B: dace.float64[N]):\n    for i in dace.map[0:N]:\n"
             "        B[i] = " + std::to_string(tag) + ".5 * A[i] + B[i]\n";
  r.symbols["N"] = 256;
  return r;
}

void row(const char* name, const bench::Timing& t) {
  printf("%-22s %12s  [%s, %s]  reps=%d\n", name,
         bench::fmt_time(t.median_s).c_str(), bench::fmt_time(t.ci_low).c_str(),
         bench::fmt_time(t.ci_high).c_str(), t.reps);
}

void hammer(const std::string& sock, int n) {
  RunRequest req = make_request(/*uniq=*/false);
  std::vector<std::thread> threads;
  threads.reserve((size_t)n);
  for (int t = 0; t < n; ++t) {
    threads.emplace_back([&, t] {
      ClientOptions o;
      o.socket_path = sock;
      Client cli(o);
      RunRequest r = req;
      r.id = "h" + std::to_string(t);
      Reply rep = cli.run(r);
      if (!rep.ok) {
        fprintf(stderr, "bench_serve: hammer job failed: %s\n",
                rep.message.c_str());
        exit(1);
      }
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace

int main() {
  std::string sock =
      "/tmp/dacepp-bench-serve-" + std::to_string((long)getpid()) + ".sock";
  ServeConfig cfg;
  cfg.socket_path = sock;
  cfg.workers = 4;
  cfg.queue_max = 64;
  Server srv(cfg);
  std::string why;
  if (!srv.start(&why)) {
    fprintf(stderr, "bench_serve: daemon failed to start: %s\n", why.c_str());
    return 1;
  }

  ClientOptions copts;
  copts.socket_path = sock;
  Client cli(copts);
  if (!cli.ping().ok) {
    fprintf(stderr, "bench_serve: daemon not answering\n");
    return 1;
  }

  auto ping = bench::time_median("serve.ping", [&] {
    if (!cli.ping().ok) exit(1);
  }, 20);

  auto cold = bench::time_median("serve.request_cold", [&] {
    Reply r = cli.run(make_request(/*uniq=*/true));
    if (!r.ok) {
      fprintf(stderr, "bench_serve: cold job failed: %s\n", r.message.c_str());
      exit(1);
    }
  }, 10);

  RunRequest warm_req = make_request(/*uniq=*/false);
  (void)cli.run(warm_req);  // prime
  auto warm = bench::time_median("serve.request_warm", [&] {
    Reply r = cli.run(warm_req);
    if (!r.ok) exit(1);
  }, 10);

  auto h8 = bench::time_median("serve.hammer_8", [&] { hammer(sock, 8); }, 5);
  auto h32 =
      bench::time_median("serve.hammer_32", [&] { hammer(sock, 32); }, 5);

  printf("serve request latency (socket=%s)\n", sock.c_str());
  row("ping", ping);
  row("cold request", cold);
  row("warm request", warm);
  row("hammer 8 (dedup)", h8);
  row("hammer 32 (dedup)", h32);
  ServeStats st = srv.stats();
  printf("daemon stats: accepted=%llu deduped=%llu completed=%llu shed=%llu\n",
         (unsigned long long)st.accepted, (unsigned long long)st.deduped,
         (unsigned long long)st.completed, (unsigned long long)st.shed);

  bool clean = srv.drain();
  if (!clean) {
    fprintf(stderr, "bench_serve: drain left orphans\n");
    return 1;
  }
  // Acceptance: a ping must be far cheaper than a compile-and-run, and
  // the deduped 32-way batch must not cost 32 cold requests.
  if (ping.median_s >= cold.median_s) return 1;
  if (h32.median_s >= 32 * cold.median_s) return 1;
  return 0;
}
