// FIFO stream channels for spatial (FPGA) dataflow.
//
// StreamingComposition (Section 3.1) restructures FPGA programs into
// pipelined processing elements connected by FIFO streams; burst memory
// readers/writers move DRAM data through these channels.  This class is
// the runtime realization: a bounded single-producer single-consumer
// queue.  The FPGA executor's cost model treats each pipeline stage's
// push/pop rate as its initiation interval.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>

#include "common/common.hpp"

namespace dace::fpga {

class Stream {
 public:
  explicit Stream(int64_t depth) : depth_(depth) {
    DACE_CHECK(depth > 0, "stream: non-positive depth");
  }

  /// Blocking push (backpressure when the FIFO is full).
  void push(double v) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_pop_.wait(lk, [&] { return (int64_t)q_.size() < depth_; });
    q_.push_back(v);
    ++pushes_;
    cv_push_.notify_one();
  }

  /// Blocking pop (stalls when the FIFO is empty).
  double pop() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_push_.wait(lk, [&] { return !q_.empty(); });
    double v = q_.front();
    q_.pop_front();
    cv_pop_.notify_one();
    return v;
  }

  bool try_pop(double* out) {
    std::lock_guard<std::mutex> lk(mu_);
    if (q_.empty()) return false;
    *out = q_.front();
    q_.pop_front();
    cv_pop_.notify_one();
    return true;
  }

  int64_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return (int64_t)q_.size();
  }
  int64_t depth() const { return depth_; }
  int64_t total_pushes() const {
    std::lock_guard<std::mutex> lk(mu_);
    return pushes_;
  }

 private:
  int64_t depth_;
  mutable std::mutex mu_;
  std::condition_variable cv_push_, cv_pop_;
  std::deque<double> q_;
  int64_t pushes_ = 0;
};

}  // namespace dace::fpga
