// Simulated FPGA shells (stand-ins for the paper's Bittware 520N /
// Intel Stratix 10 and Xilinx Alveo U250 boards).
//
// Fig. 9's effects are architectural: both vendors synthesize the same
// FPGA-transformed SDFG; Intel's toolchain detects stencil patterns
// (shift-register reuse of neighboring loads) and provides hardened
// single-precision accumulation (II=1 floating-point accumulate), while
// Xilinx needs accumulation interleaving across registers (Section 3.4.2,
// [24]).  The shell parameters below encode exactly these differences.
#pragma once

#include <cstdint>
#include <string>

#include "runtime/bytecode.hpp"

namespace dace::fpga {

struct FpgaModel {
  std::string name;
  double clock_hz;
  double dram_bandwidth;     // bytes/s across all banks
  int64_t pipeline_fill;     // cycles to fill a pipeline
  bool stencil_reuse;        // toolchain converts neighbor loads into a
                             // shift register (Intel)
  bool hardened_accum;       // native float accumulation at II=1 (Intel)
  int64_t accum_latency;     // FP add latency (Xilinx interleaving factor)
  double elem_bytes = 4.0;   // single precision on FPGA (Section 3.4)

  /// Intel Stratix 10 (p520_max_sg280h-like shell).
  static FpgaModel intel() {
    return FpgaModel{"sim-stratix10", 420e6, 68e9, 200, true, true, 8};
  }
  /// Xilinx Alveo U250 (xdma shell).
  static FpgaModel xilinx() {
    return FpgaModel{"sim-u250", 300e6, 60e9, 150, false, false, 8};
  }

  /// Modeled time of one pipelined unit execution.
  double unit_time(const rt::VMStats& d) const {
    // One result element per initiation interval.
    double iters = (double)(d.stores + d.wcr_stores);
    double ii = 1.0;
    int64_t flush = 0;
    if (d.wcr_stores > 0) {
      if (hardened_accum) {
        ii = 1.0;  // hardened accumulator
      } else {
        // Accumulation interleaving: II back to 1, one flush per unit.
        ii = 1.0;
        flush = accum_latency * accum_latency;
      }
    }
    double cycles = iters * ii + (double)pipeline_fill + (double)flush;
    // DRAM streaming: effective loads shrink when the toolchain builds
    // shift registers for stencil reuse.
    double loads = (double)d.loads;
    double stores = (double)(d.stores + d.wcr_stores);
    if (stencil_reuse && loads > 2.0 * stores) {
      loads = stores + (loads - stores) / 8.0;
    }
    double bytes = elem_bytes * (loads + stores);
    double t_mem = bytes / dram_bandwidth;
    double t_pipe = cycles / clock_hz;
    return t_mem > t_pipe ? t_mem : t_pipe;
  }
};

struct FpgaRunResult {
  double time_s = 0;
  int64_t units = 0;  // pipelined units executed
  rt::VMStats stats;
};

}  // namespace dace::fpga
