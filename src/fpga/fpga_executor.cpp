#include "fpga/fpga_executor.hpp"

namespace dace::fpga {

FpgaRunResult run_fpga(const ir::SDFG& sdfg, rt::Bindings& args,
                       const sym::SymbolMap& symbols,
                       const FpgaModel& model) {
  FpgaRunResult res;
  rt::ExecutorOptions opts;
  opts.parallel = false;  // spatial pipelines, not thread parallelism
  opts.launch_hook = [&](const std::string& kind, const rt::VMStats& d) {
    (void)kind;
    res.time_s += model.unit_time(d);
    ++res.units;
  };
  rt::Executor ex(sdfg, opts);
  ex.run(args, symbols);
  res.stats = ex.stats();
  return res;
}

}  // namespace dace::fpga
