// Executes an FPGA-optimized SDFG on a simulated shell.
#pragma once

#include "fpga/fpga_model.hpp"
#include "ir/sdfg.hpp"
#include "runtime/executor.hpp"

namespace dace::fpga {

/// Run `sdfg` (auto-optimized for DeviceType::FPGA) with real results and
/// the shell's cycle model. Data containers use single precision (the
/// frontend casts on store when declared float32); timing assumes
/// 4-byte elements regardless, matching the paper's FPGA configuration.
FpgaRunResult run_fpga(const ir::SDFG& sdfg, rt::Bindings& args,
                       const sym::SymbolMap& symbols, const FpgaModel& model);

}  // namespace dace::fpga
