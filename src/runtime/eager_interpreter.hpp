// Eager AST interpreter: the "NumPy over CPython" baseline.
//
// Executes a DaCeLang function directly, NumPy-style: every operation
// dispatches eagerly to the tensor_ops library, allocates a fresh
// temporary, and control flow runs in the interpreter.  This reproduces
// the performance profile the paper benchmarks against in Fig. 7 (fast
// native per-op loops, no fusion, one temporary per op, per-op dispatch).
//
// An optional observer receives one callback per operation with its data
// volumes; the simulated-GPU CuPy baseline (gpu/cupy_like.hpp) uses it to
// charge kernel-launch and memory-traffic costs per eager op.
#pragma once

#include <functional>

#include "frontend/ast.hpp"
#include "runtime/executor.hpp"
#include "runtime/tensor.hpp"

namespace dace::rt {

/// Per-operation notification for device cost models.
struct EagerObserver {
  virtual ~EagerObserver() = default;
  /// An eager operation executed: `kind` is "ew" (elementwise), "matmul",
  /// "reduce", "copy" or "alloc".
  virtual void on_op(const std::string& kind, int64_t out_elems,
                     int64_t in_elems, int64_t flops) = 0;
};

class EagerInterpreter {
 public:
  explicit EagerInterpreter(const fe::Function& f,
                            EagerObserver* observer = nullptr);

  /// Execute with argument tensors (shared views; outputs written in
  /// place) and values for the size symbols.
  void run(Bindings& args, const sym::SymbolMap& symbols);

  /// Number of eager operations dispatched in the last run.
  int64_t op_count() const { return op_count_; }
  /// Number of temporaries allocated in the last run.
  int64_t temporaries() const { return temporaries_; }

 private:
  friend class EagerImpl;
  const fe::Function& func_;
  EagerObserver* observer_;
  int64_t op_count_ = 0;
  int64_t temporaries_ = 0;
};

}  // namespace dace::rt
