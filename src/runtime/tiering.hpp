// Tier-1 promotion machinery for the tiered map executor.
//
// The Executor counts iterations per compiled map program; once a program
// crosses the promotion threshold it requests a native handle here.  The
// request kicks off an asynchronous host-compiler build (synchronous when
// DACEPP_JIT_SYNC=1, for tests and benchmarks) and returns immediately;
// the executor keeps interpreting until the handle flips to ready, then
// atomically switches dispatch.  Handles are cached process-wide, keyed by
// the program's instruction-stream hash plus the bound array dtypes, so
// re-runs and structurally identical scopes share one compilation.
//
// Missing or broken host compilers degrade silently: the handle reports
// failed and the executor pins the program to Tier 0.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "codegen/jit.hpp"
#include "runtime/bytecode.hpp"

namespace dace::rt {

/// One native compilation, possibly still in flight on a worker thread.
struct NativeProgram {
  enum State { kCompiling = 0, kReady = 1, kFailed = 2 };
  std::atomic<int> state{kCompiling};
  cg::MapNativeFn fn = nullptr;  // valid once state == kReady
  double compile_seconds = 0;
};

/// Tier-1 policy, read from the environment once per Executor:
///   DACEPP_JIT=0            disable the native tier entirely
///   DACEPP_JIT_THRESHOLD=N  promote after N cumulative map iterations
///   DACEPP_JIT_SYNC=1       compile on the calling thread (deterministic)
///   DACEPP_JIT_CC=path      host compiler override (also used by tests to
///                           simulate a missing compiler)
struct TierConfig {
  bool enabled = true;
  int64_t threshold = 2000000;
  bool sync = false;
  std::string compiler = "c++";

  static TierConfig from_env();
};

/// Look up or start a native compilation for `prog` bound to `dtypes`.
/// Never blocks on the build unless cfg.sync is set.  The returned handle
/// is shared: poll state and use fn only after seeing kReady.
std::shared_ptr<NativeProgram> request_native(
    const Program& prog, const std::vector<ir::DType>& dtypes,
    const TierConfig& cfg);

}  // namespace dace::rt
