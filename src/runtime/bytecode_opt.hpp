// Tier-0 bytecode optimizer.
//
// Runs after compile_map_scope and rewrites the register program in
// place: constant folding and copy propagation, loop-invariant code
// motion, strength reduction of per-iteration memlet offset polynomials
// into induction-variable increments, and dead-register elimination.
// The passes rely on two structural properties of compiled map scopes --
// every register is defined before it is used on all executed paths, and
// the only control flow is properly nested counted loops (a JGe header
// whose exit target is the instruction after the backward Jmp) -- and are
// conservative everywhere else.  Loads and stores are never moved or
// removed, so VMStats load/store/WCR counts are identical before and
// after optimization.
#pragma once

#include "runtime/bytecode.hpp"

namespace dace::rt {

struct OptStats {
  int folded = 0;        // instructions turned into constants/moves
  int hoisted = 0;       // instructions moved to a loop preheader
  int strength_reduced = 0;  // offset chains turned into IV increments
  int eliminated = 0;    // dead instructions removed
};

/// Optimize `prog` in place. Returns per-pass counters (for tests and
/// the microbenchmarks). Idempotent: a second call is a no-op.
OptStats optimize_program(Program& prog);

/// False when DACEPP_BC_OPT=0 is set in the environment (Tier 0 then
/// runs the unoptimized bytecode exactly as compiled).
bool bytecode_opt_enabled();

}  // namespace dace::rt
