// SDFG node-level instrumentation (the paper's per-node instrumentation
// providers, SC'19 style): per-node self/total time, iteration counts and
// VMStats deltas for every map, tasklet, library node and state the
// executor runs, regardless of which tier dispatched it.
//
// The Instrumenter is a *non-intrusive observer*: it never installs the
// executor launch_hook (which disables Tier-1 promotion so the device
// cost models keep their VMStats), so an instrumented run tiers exactly
// like an uninstrumented one.  Measurements flow two ways:
//   - accumulated NodeProfile records, queryable in-process (tests,
//     Instrumenter::summary())
//   - obs:: span/counter events ("node" category) when tracing is on,
//     which tools/sdfg-prof aggregates into the hot-map report
//
// What gets measured is the per-node Instrument attribute; nodes left at
// Off inherit the process default from DACE_INSTRUMENT=timer|counter|1
// (launch-granularity nodes only -- states are measured only when their
// attribute is set explicitly).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "ir/sdfg.hpp"
#include "runtime/bytecode.hpp"

namespace dace::rt {

/// Accumulated measurements of one instrumented node (or state).
struct NodeProfile {
  std::string label;           // node label (map name, op, tasklet name)
  std::string kind;            // "map", "tasklet", "library", "state", ...
  int state = -1;              // owning state id (== node id for states)
  int node = -1;               // node id within the state (-1 for states)
  int64_t invocations = 0;     // executions observed
  int64_t iterations = 0;      // summed outer-loop iterations (maps)
  int64_t total_ns = 0;        // summed wall time
  int tier = 0;                // highest tier that dispatched it (0 or 1)
  VMStats vm;                  // summed Tier-0 VMStats deltas
};

class Instrumenter {
 public:
  /// Process default from DACE_INSTRUMENT: "timer"/"1" -> Timer,
  /// "counter" -> Counter, anything else -> Off.
  static ir::Instrument env_default();

  explicit Instrumenter(const ir::SDFG& sdfg);

  /// False when nothing in this SDFG can ever be instrumented (no env
  /// default and no node attribute set): the executor's fast path.
  bool active() const { return active_; }

  /// Effective mode of a launch-granularity node: its attribute, or the
  /// process default when the attribute is Off.
  ir::Instrument effective(const ir::Node& n) const {
    return n.instrument != ir::Instrument::Off ? n.instrument : default_;
  }

  /// Record one execution.  `delta` is the Tier-0 VMStats delta (null for
  /// native/Tier-1 runs, which produce none).  Emits the obs event (span
  /// for Timer, cumulative-iteration counter for Counter) and accumulates
  /// the NodeProfile.
  void record(const char* kind, int state_id, int node_id,
              const std::string& label, ir::Instrument mode, int64_t t0_ns,
              int64_t dur_ns, int tier, int64_t iters, const VMStats* delta);

  /// (state, node) -> accumulated profile; states use (state, -1).
  const std::map<std::pair<int, int>, NodeProfile>& profiles() const {
    return profiles_;
  }

  /// Human-readable per-node table, hottest first.
  std::string summary() const;

 private:
  std::string sdfg_name_;
  ir::Instrument default_ = ir::Instrument::Off;
  bool active_ = false;
  std::map<std::pair<int, int>, NodeProfile> profiles_;
};

/// One map program's teardown snapshot, handed from the executor to the
/// persistent profile DB (common/profdb.*) when the executor dies.
struct MapFlush {
  uint64_t program_hash = 0;
  std::string label;       // map name
  int state = -1;          // (state, node) locate the NodeProfile, if any
  int node = -1;
  int64_t launches = 0;    // dispatches of this program
  int64_t iterations = 0;  // summed outer iterations across all tiers
  int tier = 0;            // highest tier that dispatched it
  double ns_per_iter[2] = {0.0, 0.0};  // measured per-tier cost EMA
};

/// Merge the executor's per-map snapshots into the profile DB, enriched
/// with the Instrumenter's Tier-0 VMStats (when the run was instrumented)
/// and the last committed rewriting pass.  Every failure is swallowed:
/// this runs from ~Executor and must never throw.
void flush_profiles_to_db(const Instrumenter& inst,
                          const std::vector<MapFlush>& maps);

}  // namespace dace::rt
