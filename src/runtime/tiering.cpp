#include "runtime/tiering.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <tuple>

#include "codegen/artifact_cache.hpp"
#include "common/metrics.hpp"
#include "common/obs.hpp"

namespace dace::rt {

namespace {

/// Cache key: program fingerprint, the dtypes baked into the store casts,
/// and the compiler (so a failed build under one toolchain never shadows a
/// working one).
using CacheKey =
    std::tuple<uint64_t, std::vector<ir::DType>, std::string>;

struct Cache {
  std::mutex mu;
  std::map<CacheKey, std::shared_ptr<NativeProgram>> entries;
  // Negative cache on (program hash, compiler): once a build of a program
  // fails, no dtype specialization of it probes the compiler again -- a
  // broken toolchain is detected once and the program pinned to Tier 0,
  // instead of a retry storm of doomed builds.
  std::set<std::pair<uint64_t, std::string>> failed;
};

Cache& cache() {
  // Leaked: detached compile threads may still publish into it at exit.
  static Cache* c = new Cache();
  return *c;
}

void compile_into(std::shared_ptr<NativeProgram> native, Program prog,
                  std::vector<ir::DType> dtypes, std::string compiler) {
  char name[32];
  snprintf(name, sizeof(name), "dacepp_map_%016llx",
           (unsigned long long)prog.hash());
  obs::Span span("jit", "compile");
  cg::CompiledMapNative built =
      cg::compile_map_native(prog, dtypes, name, compiler);
  if (span.active()) {
    std::ostringstream a;
    a << "{\"program\":\"" << name
      << "\",\"ok\":" << (built.valid() ? "true" : "false") << "}";
    span.set_args(a.str());
  }
  METRIC_INC("dacepp_jit_compiles_total");
  if (built.valid()) {
    native->fn = built.fn();
    native->compile_seconds = built.compile_seconds();
    // The dlopen handle must outlive any thread that may still call fn;
    // native code is immortal by design (cache entries are never evicted).
    new cg::CompiledMapNative(std::move(built));
    native->state.store(NativeProgram::kReady, std::memory_order_release);
  } else {
    {
      Cache& c = cache();
      std::lock_guard<std::mutex> lock(c.mu);
      c.failed.insert({prog.hash(), compiler});
    }
    // Persist the verdict so the next process skips the doomed probe too
    // (TTL-bounded; a repaired toolchain is re-probed after expiry).
    cg::cache::ArtifactCache::instance().negative_store(
        prog.hash(), compiler, "tier1 build failed");
    native->state.store(NativeProgram::kFailed, std::memory_order_release);
    METRIC_INC("dacepp_jit_failures_total");
  }
}

}  // namespace

TierConfig TierConfig::from_env() {
  TierConfig cfg;
  if (const char* e = std::getenv("DACEPP_JIT")) {
    cfg.enabled = std::string(e) != "0";
  }
  if (const char* e = std::getenv("DACEPP_JIT_THRESHOLD")) {
    cfg.threshold = std::atoll(e);
  }
  if (const char* e = std::getenv("DACEPP_JIT_SYNC")) {
    cfg.sync = std::string(e) == "1";
  }
  if (const char* e = std::getenv("DACEPP_JIT_CC")) {
    cfg.compiler = e;
  }
  return cfg;
}

std::shared_ptr<NativeProgram> request_native(
    const Program& prog, const std::vector<ir::DType>& dtypes,
    const TierConfig& cfg) {
  CacheKey key{prog.hash(), dtypes, cfg.compiler};
  Cache& c = cache();
  {
    std::lock_guard<std::mutex> lock(c.mu);
    auto it = c.entries.find(key);
    if (it != c.entries.end()) {
      OBS_INSTANT("jit", "cache-hit");
      METRIC_INC("dacepp_jit_cache_hits_total");
      return it->second;
    }
    if (c.failed.count({prog.hash(), cfg.compiler})) {
      // Negative-cache hit: a build of this program already failed under
      // this compiler.  Hand back an immediately-failed handle without
      // spawning another doomed build.
      auto dead = std::make_shared<NativeProgram>();
      dead->state.store(NativeProgram::kFailed, std::memory_order_release);
      c.entries.emplace(key, dead);
      OBS_INSTANT("jit", "negative-cache-hit");
      METRIC_INC("dacepp_jit_negative_hits_total");
      return dead;
    }
  }
  // In-memory miss: consult the persistent negative cache before paying
  // for a build -- a compiler known bad on this machine (within the TTL)
  // fails the request without forking the toolchain.
  if (cg::cache::ArtifactCache::instance().negative_lookup(prog.hash(),
                                                           cfg.compiler)) {
    std::lock_guard<std::mutex> lock(c.mu);
    c.failed.insert({prog.hash(), cfg.compiler});
    auto dead = std::make_shared<NativeProgram>();
    dead->state.store(NativeProgram::kFailed, std::memory_order_release);
    auto [it, inserted] = c.entries.emplace(key, dead);
    OBS_INSTANT("jit", "negative-cache-hit");
    METRIC_INC("dacepp_jit_negative_hits_total");
    return it->second;  // a racing compile may have won the slot; honor it
  }
  auto native = std::make_shared<NativeProgram>();
  {
    std::lock_guard<std::mutex> lock(c.mu);
    auto [it, inserted] = c.entries.emplace(key, native);
    if (!inserted) return it->second;  // lost the race; use the winner
  }
  if (cfg.sync) {
    compile_into(native, prog, dtypes, cfg.compiler);
  } else {
    std::thread(compile_into, native, prog, dtypes, cfg.compiler).detach();
  }
  return native;
}

}  // namespace dace::rt
