// Eager NumPy-style operation library on Tensor.
//
// Every operation allocates and returns a fresh result tensor (one
// temporary per operation), exactly like NumPy's eager evaluation model.
// This library is both (a) the "NumPy over CPython" baseline of the
// paper's Figure 7 -- the eager AST interpreter dispatches here -- and
// (b) the host-side reference path for library-node kernels.
//
// Binary operations follow NumPy trailing-dimension broadcasting.
#pragma once

#include <string>

#include "runtime/tensor.hpp"

namespace dace::rt::ops {

// -- elementwise binary (broadcasting) --------------------------------------
Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor div(const Tensor& a, const Tensor& b);
Tensor pow(const Tensor& a, const Tensor& b);
Tensor minimum(const Tensor& a, const Tensor& b);
Tensor maximum(const Tensor& a, const Tensor& b);

// -- elementwise unary -------------------------------------------------------
Tensor neg(const Tensor& a);
Tensor exp(const Tensor& a);
Tensor log(const Tensor& a);
Tensor sqrt(const Tensor& a);
Tensor abs(const Tensor& a);
Tensor sin(const Tensor& a);
Tensor cos(const Tensor& a);
Tensor tanh(const Tensor& a);

// -- linear algebra ----------------------------------------------------------
/// Matrix product: 2Dx2D, 2Dx1D, 1Dx2D or 1Dx1D (dot).
Tensor matmul(const Tensor& a, const Tensor& b);
/// Outer product of two vectors.
Tensor outer(const Tensor& a, const Tensor& b);
/// Dot product of two vectors.
double dot(const Tensor& a, const Tensor& b);

// -- reductions --------------------------------------------------------------
/// Sum of all elements.
double sum_all(const Tensor& a);
/// Sum along one axis (result rank = rank-1).
Tensor sum_axis(const Tensor& a, int axis);
double max_all(const Tensor& a);
double min_all(const Tensor& a);

/// Broadcast two shapes (throws on incompatibility).
std::vector<int64_t> broadcast_shapes(const std::vector<int64_t>& a,
                                      const std::vector<int64_t>& b);

/// Result dtype of combining two operands (f64 wins over f32; floats win
/// over ints), mirroring NumPy promotion for the types we support.
DType promote(DType a, DType b);

}  // namespace dace::rt::ops
