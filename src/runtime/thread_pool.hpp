// Shared-memory worker pool with OpenMP-style static worksharing.
//
// CPU-parallel map scopes execute through parallel_for, which splits the
// iteration domain into one contiguous chunk per worker (static schedule,
// like `#pragma omp parallel for schedule(static)`).  A process-global
// pool is shared by all executors; the worker count defaults to the
// hardware concurrency and can be overridden with DACEPP_NUM_THREADS.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dace::rt {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Run body(begin, end) over [0, n) split statically across workers.
  /// The calling thread participates. Nested calls run inline.
  void parallel_for(int64_t n,
                    const std::function<void(int64_t, int64_t)>& body);

  /// Run body(worker_index) once on every worker (SPMD-style).
  void run_on_all(const std::function<void(int)>& body);

  /// Process-global pool (DACEPP_NUM_THREADS or hardware concurrency).
  static ThreadPool& global();

 private:
  void worker_loop(int index);

  int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  std::function<void(int)> job_;  // worker index -> work
  uint64_t generation_ = 0;
  int pending_ = 0;
  bool stop_ = false;
  static thread_local bool in_parallel_region_;
};

}  // namespace dace::rt
