// Shared-memory worker pool with OpenMP-style static worksharing.
//
// CPU-parallel map scopes execute through parallel_for, which splits the
// iteration domain into one contiguous chunk per worker (static schedule,
// like `#pragma omp parallel for schedule(static)`).  A process-global
// pool is shared by all executors; the worker count defaults to the
// hardware concurrency and can be overridden with DACEPP_NUM_THREADS.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace dace::rt {

/// Non-owning reference to a callable: a data pointer plus a trampoline.
/// Trivially copyable and never allocates, unlike std::function -- the
/// per-launch dispatch path uses it so a parallel map adds no heap
/// traffic.  The referenced callable must outlive every call (satisfied
/// here: parallel_for/run_on_all block until all workers finish).
template <typename Sig>
class function_ref;

template <typename R, typename... Args>
class function_ref<R(Args...)> {
 public:
  function_ref() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, function_ref> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  function_ref(F&& f)  // NOLINT: implicit by design, mirrors std::function
      : obj_(const_cast<void*>(
            static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return call_ != nullptr; }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Run body(begin, end) over [0, n) split statically across workers.
  /// The calling thread participates. Nested calls run inline.
  void parallel_for(int64_t n, function_ref<void(int64_t, int64_t)> body);

  /// Run body over [0, n) split into `chunks` contiguous ranges handed
  /// to distinct workers.  The chunk count is clamped to [1, min(n,
  /// num_threads())], so no worker is ever woken for an empty range --
  /// callers pass a cost-derived count and the pool never oversubscribes.
  /// chunks <= 1 (and nested calls) run body(0, n) inline.
  void parallel_for(int64_t n, int chunks,
                    function_ref<void(int64_t, int64_t)> body);

  /// Run body(worker_index) once on every worker (SPMD-style).
  void run_on_all(function_ref<void(int)> body);

  /// Process-global pool (DACEPP_NUM_THREADS or hardware concurrency).
  static ThreadPool& global();

 private:
  void worker_loop(int index);
  /// Dispatch job_ to workers [0, k); workers >= k skip the generation
  /// without touching the job.  Caller runs index 0 and blocks for the
  /// rest.  Precondition: k >= 2, not nested, num_threads_ > 1.
  void run_on(int k, function_ref<void(int)> body);

  int num_threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_start_, cv_done_;
  function_ref<void(int)> job_;  // worker index -> work
  uint64_t generation_ = 0;
  int active_ = 0;  // workers participating in the current generation
  int pending_ = 0;
  bool stop_ = false;
  static thread_local bool in_parallel_region_;
};

}  // namespace dace::rt
