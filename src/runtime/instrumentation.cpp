#include "runtime/instrumentation.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "common/diag.hpp"
#include "common/metrics.hpp"
#include "common/obs.hpp"
#include "common/profdb.hpp"

namespace dace::rt {

ir::Instrument Instrumenter::env_default() {
  const char* e = std::getenv("DACE_INSTRUMENT");
  if (!e || !*e) return ir::Instrument::Off;
  std::string v(e);
  if (v == "timer" || v == "1") return ir::Instrument::Timer;
  if (v == "counter") return ir::Instrument::Counter;
  return ir::Instrument::Off;
}

Instrumenter::Instrumenter(const ir::SDFG& sdfg)
    : sdfg_name_(sdfg.name()), default_(env_default()) {
  if (default_ != ir::Instrument::Off) {
    active_ = true;
    return;
  }
  // No process default: scan once for explicit attributes so the
  // per-execution check stays a single bool on uninstrumented graphs.
  for (int sid : sdfg.state_ids()) {
    const ir::State& st = sdfg.state(sid);
    if (st.instrument != ir::Instrument::Off) {
      active_ = true;
      return;
    }
    for (int id : st.node_ids()) {
      if (st.node(id)->instrument != ir::Instrument::Off) {
        active_ = true;
        return;
      }
    }
  }
}

void Instrumenter::record(const char* kind, int state_id, int node_id,
                          const std::string& label, ir::Instrument mode,
                          int64_t t0_ns, int64_t dur_ns, int tier,
                          int64_t iters, const VMStats* delta) {
  if (mode == ir::Instrument::Off) return;
  NodeProfile& p = profiles_[{state_id, node_id}];
  if (p.invocations == 0) {
    p.label = label;
    p.kind = kind;
    p.state = state_id;
    p.node = node_id;
  }
  ++p.invocations;
  p.iterations += iters;
  p.total_ns += dur_ns;
  p.tier = std::max(p.tier, tier);
  if (delta) p.vm += *delta;

  if (!obs::enabled()) return;
  if (mode == ir::Instrument::Counter) {
    obs::counter("node", label, (double)p.iterations);
    return;
  }
  std::ostringstream a;
  a << "{\"sdfg\":\"" << diag::json_escape(sdfg_name_) << "\",\"kind\":\""
    << kind << "\",\"state\":" << state_id << ",\"node\":" << node_id
    << ",\"tier\":" << tier << ",\"iters\":" << iters;
  if (delta) {
    a << ",\"instrs\":" << delta->instrs << ",\"flops\":" << delta->flops
      << ",\"loads\":" << delta->loads << ",\"stores\":" << delta->stores;
  }
  a << "}";
  obs::complete("node", label, t0_ns, dur_ns, a.str());
}

std::string Instrumenter::summary() const {
  std::vector<const NodeProfile*> rows;
  rows.reserve(profiles_.size());
  for (const auto& [k, p] : profiles_) rows.push_back(&p);
  std::sort(rows.begin(), rows.end(),
            [](const NodeProfile* a, const NodeProfile* b) {
              return a->total_ns > b->total_ns;
            });
  std::ostringstream os;
  os << "instrumentation report for '" << sdfg_name_ << "':\n";
  char line[256];
  snprintf(line, sizeof(line), "  %-24s %-8s %10s %8s %12s %11s %5s\n",
           "node", "kind", "total ms", "calls", "iters", "instrs/iter",
           "tier");
  os << line;
  for (const NodeProfile* p : rows) {
    double ipi = p->iterations > 0
                     ? (double)p->vm.instrs / (double)p->iterations
                     : 0.0;
    snprintf(line, sizeof(line),
             "  %-24s %-8s %10.3f %8lld %12lld %11.1f %5d\n",
             p->label.c_str(), p->kind.c_str(), (double)p->total_ns / 1e6,
             (long long)p->invocations, (long long)p->iterations, ipi,
             p->tier);
    os << line;
  }
  return os.str();
}

void flush_profiles_to_db(const Instrumenter& inst,
                          const std::vector<MapFlush>& maps) {
  try {
    prof::ProfileDB& db = prof::ProfileDB::instance();
    if (!db.enabled()) return;
    const std::string pass = prof::last_rewrite();
    for (const MapFlush& m : maps) {
      if (m.launches <= 0 || m.program_hash == 0) continue;
      prof::MapProfile delta;
      delta.program_hash = m.program_hash;
      delta.label = m.label;
      delta.runs = 1;
      delta.launches = m.launches;
      delta.iterations = m.iterations;
      delta.tier = m.tier;
      delta.ns_per_iter[0] = m.ns_per_iter[0];
      delta.ns_per_iter[1] = m.ns_per_iter[1];
      delta.last_pass = pass;
      // Tier-0 VMStats only exist when the run was instrumented; an
      // uninstrumented flush stores zeros (counters sum, so a later
      // instrumented run fills them in).
      auto it = inst.profiles().find({m.state, m.node});
      if (it != inst.profiles().end()) {
        delta.instrs = it->second.vm.instrs;
        delta.flops = it->second.vm.flops;
        delta.loads = it->second.vm.loads;
        delta.stores = it->second.vm.stores;
      }
      if (db.merge_map(delta)) {
        METRIC_INC("dacepp_profdb_flushes_total");
        if (obs::enabled()) {
          std::ostringstream a;
          a << "{\"map\":\"" << diag::json_escape(m.label)
            << "\",\"tier\":" << m.tier
            << ",\"iterations\":" << m.iterations << "}";
          obs::instant("profdb", "flush", a.str());
        }
      }
    }
  } catch (...) {
    // Profile persistence must never take down a teardown path.
  }
}

}  // namespace dace::rt
