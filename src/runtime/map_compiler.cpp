// Compiles SDFG map scopes into VM bytecode.
//
// The whole scope -- loop nest, symbolic memlet offsets, tasklet DAG,
// inner scalar transients, nested sequential maps -- becomes one register
// program.  Loop-invariant subexpressions (strides, symbol loads) are
// hoisted into a preamble; per-iteration offsets are emitted as canonical
// symbolic polynomials, so fused stencil bodies compile to tight code.
#include <algorithm>
#include <map>

#include "analysis/absint.hpp"
#include "codegen/kernel_plan.hpp"
#include "runtime/executor.hpp"

namespace dace::rt {

namespace {

namespace absint = dace::analysis::absint;

using ir::CodeExpr;
using ir::CodeOp;
using sym::Expr;
using sym::ExprKind;

class MapCompiler {
 public:
  MapCompiler(const ir::SDFG& sdfg, const ir::State& st, int entry)
      : sdfg_(sdfg), st_(st), top_entry_(entry) {}

  Program compile() {
    const auto* me = st_.node_as<const ir::MapEntry>(top_entry_);
    DACE_CHECK(me != nullptr, "map compiler: node is not a map entry");
    prog_.splittable = me->schedule == ir::Schedule::CPUParallel ||
                       me->schedule == ir::Schedule::GPUDevice ||
                       me->schedule == ir::Schedule::FPGAPipeline;
    // Interval-analysis facts drive guard insertion and the Tier-1
    // vectorization flags.  Off restores the unchecked seed behavior;
    // All guards every access regardless of proof (the differential
    // fuzzer uses it to cross-validate the prover).
    absint_mode_ = absint::mode();
    if (absint_mode_ != absint::Mode::Off) {
      auto ranges = absint::SymbolRanges::compute(sdfg_);
      facts_ = absint::analyze_map(sdfg_, st_, top_entry_,
                                   ranges.at(sdfg_.state_id(&st_)));
      prog_.use_restrict = facts_.innermost_contiguous;
      prog_.vec_innermost = facts_.vectorizable;
    }
    prog_.kernel_plan = cg::kernel_plan_enabled();
    // Scalar transients with an access node inside this scope live in
    // (thread-private) registers; scalars produced outside the scope are
    // memory-resident and loaded/stored like rank-0 arrays.
    for (int id : st_.scope_nodes(top_entry_)) {
      if (const auto* a = st_.node_as<const ir::AccessNode>(id)) {
        const ir::DataDesc& d = sdfg_.array(a->data);
        if (d.is_scalar() && d.transient) register_scalars_.insert(a->data);
      }
    }
    // i0/i1 reserved for the split outer bounds.
    next_ireg_ = 2;
    emit_scope(top_entry_, /*outermost=*/true);
    emit(Op::Halt);
    // Loop-invariant expressions were collected into a preamble that runs
    // once; splice it in front and retarget the body's jumps.
    if (!preamble_.empty()) {
      int64_t shift = (int64_t)preamble_.size();
      for (Instr& in : prog_.code) {
        if (in.op == Op::Jmp || in.op == Op::JGe) in.imm += shift;
      }
      prog_.code.insert(prog_.code.begin(), preamble_.begin(),
                        preamble_.end());
    }
    prog_.n_iregs = next_ireg_;
    prog_.n_fregs = std::max(next_freg_, 1);
    return std::move(prog_);
  }

 private:
  const ir::SDFG& sdfg_;
  const ir::State& st_;
  int top_entry_;
  Program prog_;
  int next_ireg_ = 2;
  int next_freg_ = 0;
  std::map<std::string, int> param_reg_;       // map param -> ireg
  std::map<std::string, int> invariant_reg_;   // hoisted expr -> ireg
  std::map<std::string, int> scalar_reg_;      // scalar transient -> freg
  std::set<std::string> register_scalars_;     // in-scope scalar transients
  std::map<int, int> tasklet_out_freg_;        // tasklet node -> freg
  std::vector<Instr> preamble_;                // runs once, before the body
  bool in_loop_ = false;
  bool to_preamble_ = false;
  absint::Mode absint_mode_ = absint::Mode::Off;
  absint::MapFacts facts_;

  /// Whether the memlet access of `e` needs a runtime bounds guard:
  /// never in Off mode, always in All mode, and only when the interval
  /// analysis failed to prove it in range otherwise.
  bool needs_guard(const ir::Edge* e) const {
    if (absint_mode_ == absint::Mode::Off) return false;
    if (absint_mode_ == absint::Mode::All) return true;
    size_t ei = static_cast<size_t>(e - st_.edges().data());
    return facts_.inrange_edges.count(ei) == 0;
  }

  /// Emit a Guard trapping unless the flat offset lies in [0, numel).
  void emit_guard(const ir::Memlet& m, int off_reg) {
    const ir::DataDesc& d = sdfg_.array(m.data);
    Expr numel(int64_t{1});
    for (const Expr& s : d.shape) numel = numel * s;
    int limit = emit_expr(numel);  // invariant: hoisted to the preamble
    emit(Op::Guard, (uint16_t)off_reg, (uint16_t)limit, 0,
         prog_.array_slot(m.data));
  }

  size_t emit(Op op, uint16_t a = 0, uint16_t b = 0, uint16_t c = 0,
              int64_t imm = 0, double fimm = 0, uint8_t flag = 0) {
    std::vector<Instr>& out = to_preamble_ ? preamble_ : prog_.code;
    out.push_back(Instr{op, a, b, c, flag, imm, fimm});
    return out.size() - 1;
  }

  int ireg() {
    DACE_CHECK(next_ireg_ < 60000, "map compiler: integer register overflow");
    return next_ireg_++;
  }
  int freg() {
    DACE_CHECK(next_freg_ < 60000, "map compiler: float register overflow");
    return next_freg_++;
  }

  bool expr_is_invariant(const Expr& e) const {
    for (const auto& s : e.free_symbols()) {
      if (param_reg_.count(s)) return false;
    }
    return true;
  }

  /// Emit integer expression into a register.  Expressions with no map
  /// parameters (strides, symbolic bounds like an inner loop's `N`) are
  /// emitted into the once-run preamble and cached, even when requested
  /// from inside a loop -- nested scopes then reuse the same register
  /// instead of re-evaluating per outer iteration.
  int emit_expr(const Expr& e) {
    std::string key = e.to_string();
    if (auto it = invariant_reg_.find(key); it != invariant_reg_.end())
      return it->second;
    if (expr_is_invariant(e)) {
      bool saved = to_preamble_;
      to_preamble_ = true;
      int r = emit_expr_inner(e);
      to_preamble_ = saved;
      invariant_reg_[key] = r;
      return r;
    }
    return emit_expr_inner(e);
  }

  int emit_expr_inner(const Expr& e) {
    switch (e.kind()) {
      case ExprKind::Const: {
        int r = ireg();
        emit(Op::IConst, (uint16_t)r, 0, 0, e.constant());
        return r;
      }
      case ExprKind::Symbol: {
        const std::string& n = e.symbol_name();
        if (auto it = param_reg_.find(n); it != param_reg_.end())
          return it->second;
        int r = ireg();
        emit(Op::ISym, (uint16_t)r, 0, 0, prog_.symbol_slot(n));
        return r;
      }
      case ExprKind::Add:
      case ExprKind::Mul: {
        Op op = e.kind() == ExprKind::Add ? Op::IAdd : Op::IMul;
        auto ops = e.operands();
        int acc = emit_expr(ops[0]);
        for (size_t i = 1; i < ops.size(); ++i) {
          int rhs = emit_expr(ops[i]);
          int r = ireg();
          emit(op, (uint16_t)r, (uint16_t)acc, (uint16_t)rhs);
          acc = r;
        }
        return acc;
      }
      default: {
        auto ops = e.operands();
        int a = emit_expr(ops[0]);
        int b = emit_expr(ops[1]);
        int r = ireg();
        Op op;
        switch (e.kind()) {
          case ExprKind::FloorDiv: op = Op::IFloorDiv; break;
          case ExprKind::Mod: op = Op::IMod; break;
          case ExprKind::Min: op = Op::IMin; break;
          default: op = Op::IMax; break;
        }
        emit(op, (uint16_t)r, (uint16_t)a, (uint16_t)b);
        return r;
      }
    }
  }

  /// Flat-offset expression for an element memlet.
  Expr offset_expr(const ir::Memlet& m) const {
    const ir::DataDesc& d = sdfg_.array(m.data);
    std::vector<Expr> strides = d.strides();
    Expr off(int64_t{0});
    for (size_t dim = 0; dim < m.subset.dims(); ++dim) {
      off = off + m.subset.range(dim).begin * strides[dim];
    }
    return off;
  }

  /// Emit tasklet code expression into a float register.
  int emit_code(const CodeExpr& e, const std::map<std::string, int>& inputs) {
    switch (e.op()) {
      case CodeOp::Const: {
        int r = freg();
        emit(Op::FConst, (uint16_t)r, 0, 0, 0, e.value());
        return r;
      }
      case CodeOp::Input: {
        auto it = inputs.find(e.name());
        DACE_CHECK(it != inputs.end(), "map compiler: unbound input ",
                   e.name());
        return it->second;
      }
      case CodeOp::Sym: {
        int r = freg();
        if (auto it = param_reg_.find(e.name()); it != param_reg_.end()) {
          emit(Op::FFromI, (uint16_t)r, (uint16_t)it->second);
        } else {
          emit(Op::FSym, (uint16_t)r, 0, 0, prog_.symbol_slot(e.name()));
        }
        return r;
      }
      case CodeOp::Select: {
        int c = emit_code(e.args()[0], inputs);
        int t = emit_code(e.args()[1], inputs);
        int f = emit_code(e.args()[2], inputs);
        int r = freg();
        emit(Op::FSelect, (uint16_t)r, (uint16_t)c, (uint16_t)t, f);
        return r;
      }
      default:
        break;
    }
    static const std::map<CodeOp, Op> binmap = {
        {CodeOp::Add, Op::FAdd}, {CodeOp::Sub, Op::FSub},
        {CodeOp::Mul, Op::FMul}, {CodeOp::Div, Op::FDiv},
        {CodeOp::Pow, Op::FPow}, {CodeOp::Mod, Op::FMod},
        {CodeOp::Min, Op::FMin}, {CodeOp::Max, Op::FMax},
        {CodeOp::Lt, Op::FLt},   {CodeOp::Le, Op::FLe},
        {CodeOp::Gt, Op::FGt},   {CodeOp::Ge, Op::FGe},
        {CodeOp::Eq, Op::FEq},   {CodeOp::Ne, Op::FNe},
        {CodeOp::And, Op::FAnd}, {CodeOp::Or, Op::FOr}};
    static const std::map<CodeOp, Op> unmap = {
        {CodeOp::Neg, Op::FNeg},     {CodeOp::Abs, Op::FAbs},
        {CodeOp::Exp, Op::FExp},     {CodeOp::Log, Op::FLog},
        {CodeOp::Sqrt, Op::FSqrt},   {CodeOp::Sin, Op::FSin},
        {CodeOp::Cos, Op::FCos},     {CodeOp::Tanh, Op::FTanh},
        {CodeOp::Floor, Op::FFloor}, {CodeOp::Not, Op::FNot}};
    if (auto it = binmap.find(e.op()); it != binmap.end()) {
      int a = emit_code(e.args()[0], inputs);
      int b = emit_code(e.args()[1], inputs);
      int r = freg();
      emit(it->second, (uint16_t)r, (uint16_t)a, (uint16_t)b);
      return r;
    }
    auto it = unmap.find(e.op());
    DACE_CHECK(it != unmap.end(), "map compiler: unsupported code op");
    int a = emit_code(e.args()[0], inputs);
    int r = freg();
    emit(it->second, (uint16_t)r, (uint16_t)a);
    return r;
  }

  /// Direct children of a map scope: nodes whose innermost scope is it.
  std::vector<int> direct_children(int entry) const {
    std::vector<int> scope = st_.scope_nodes(entry);
    std::vector<int> order = st_.topological_order();
    std::vector<int> out;
    for (int id : order) {
      if (std::find(scope.begin(), scope.end(), id) == scope.end()) continue;
      if (st_.scope_of(id) == entry) out.push_back(id);
    }
    return out;
  }

  void emit_scope(int entry, bool outermost) {
    const auto* me = st_.node_as<const ir::MapEntry>(entry);
    int exit = me->exit_node;
    bool atomic = prog_.splittable && outermost;

    // Loop headers.
    struct LoopInfo {
      int var;
      size_t cond_pos;
      int end_reg;
      int step_reg;
    };
    std::vector<LoopInfo> loops;
    for (size_t d = 0; d < me->params.size(); ++d) {
      const sym::Range& r = me->range.range(d);
      int begin_reg, end_reg;
      if (outermost && d == 0 && prog_.splittable) {
        begin_reg = 0;  // chunk lo
        end_reg = 1;    // chunk hi
      } else {
        begin_reg = emit_expr(r.begin);
        end_reg = emit_expr(r.end);
      }
      int step_reg = emit_expr(r.step);
      int var = ireg();
      emit(Op::IMov, (uint16_t)var, (uint16_t)begin_reg);
      size_t cond = emit(Op::JGe, (uint16_t)var, (uint16_t)end_reg, 0,
                         /*imm target patched later*/ 0);
      param_reg_[me->params[d]] = var;
      loops.push_back(LoopInfo{var, cond, end_reg, step_reg});
      in_loop_ = true;
    }

    // Body.
    for (int id : direct_children(entry)) {
      const ir::Node* n = st_.node(id);
      switch (n->kind) {
        case ir::NodeKind::Tasklet:
          emit_tasklet(entry, exit, id, atomic);
          break;
        case ir::NodeKind::MapEntry:
          emit_scope(id, /*outermost=*/false);
          break;
        case ir::NodeKind::Access: {
          const auto* a = static_cast<const ir::AccessNode*>(n);
          const ir::DataDesc& d = sdfg_.array(a->data);
          DACE_CHECK(d.is_scalar() && d.transient,
                     "map compiler: only scalar transients are supported "
                     "inside map scopes (found '", a->data, "')");
          break;  // handled through access_freg_ when written
        }
        case ir::NodeKind::MapExit:
          break;
        default:
          throw err("map compiler: unsupported node inside map scope");
      }
    }

    // Close loops innermost-first: a single in-place increment per
    // back-edge (the canonical latch pattern the bytecode optimizer's
    // strength reduction keys on).
    for (size_t d = loops.size(); d-- > 0;) {
      const LoopInfo& li = loops[d];
      emit(Op::IAdd, (uint16_t)li.var, (uint16_t)li.var,
           (uint16_t)li.step_reg);
      emit(Op::Jmp, 0, 0, 0, (int64_t)li.cond_pos);
      prog_.code[li.cond_pos].imm = (int64_t)prog_.code.size();
      param_reg_.erase(me->params[d]);
    }
    if (loops.empty()) in_loop_ = false;
  }

  bool is_register_scalar(const std::string& data) const {
    return register_scalars_.count(data) > 0;
  }

  /// Accumulate `val` into a scalar register per the WCR operator.
  void emit_reg_wcr(int reg, int val, ir::WCR wcr) {
    Op op;
    switch (wcr) {
      case ir::WCR::Sum: op = Op::FAdd; break;
      case ir::WCR::Prod: op = Op::FMul; break;
      case ir::WCR::Min: op = Op::FMin; break;
      case ir::WCR::Max: op = Op::FMax; break;
      default: throw err("map compiler: bad register WCR");
    }
    emit(op, (uint16_t)reg, (uint16_t)reg, (uint16_t)val);
  }

  void emit_tasklet(int entry, int exit, int id, bool atomic) {
    (void)entry;
    const auto* t = st_.node_as<const ir::Tasklet>(id);
    std::map<std::string, int> inputs;
    for (const auto* e : st_.in_edges(id)) {
      if (e->dst_conn.empty()) continue;  // ordering edge
      const ir::Node* src = st_.node(e->src);
      if (src->kind == ir::NodeKind::Tasklet) {
        auto it = tasklet_out_freg_.find(e->src);
        DACE_CHECK(it != tasklet_out_freg_.end(),
                   "map compiler: tasklet dependency not yet computed");
        inputs[e->dst_conn] = it->second;
        continue;
      }
      DACE_CHECK(!e->memlet.empty(), "map compiler: dataless input edge");
      if (is_register_scalar(e->memlet.data)) {
        auto it = scalar_reg_.find(e->memlet.data);
        DACE_CHECK(it != scalar_reg_.end(),
                   "map compiler: scalar transient '", e->memlet.data,
                   "' read before write");
        inputs[e->dst_conn] = it->second;
        continue;
      }
      if (src->kind == ir::NodeKind::MapEntry ||
          src->kind == ir::NodeKind::Access) {
        int off = emit_expr(offset_expr(e->memlet));
        if (needs_guard(e)) emit_guard(e->memlet, off);
        int r = freg();
        emit(Op::Load, (uint16_t)r, (uint16_t)off, 0,
             prog_.array_slot(e->memlet.data));
        inputs[e->dst_conn] = r;
        continue;
      }
      throw err("map compiler: unsupported tasklet input edge");
    }
    int out = emit_code(t->code, inputs);
    tasklet_out_freg_[id] = out;
    for (const auto* e : st_.out_edges(id)) {
      const ir::Node* dst = st_.node(e->dst);
      if (dst->kind == ir::NodeKind::Tasklet) continue;  // value edge
      if (e->memlet.empty()) continue;                   // ordering edge
      if (is_register_scalar(e->memlet.data)) {
        if (e->memlet.wcr == ir::WCR::None) {
          scalar_reg_[e->memlet.data] = out;
        } else {
          auto it = scalar_reg_.find(e->memlet.data);
          DACE_CHECK(it != scalar_reg_.end(),
                     "map compiler: WCR into uninitialized scalar '",
                     e->memlet.data, "'");
          emit_reg_wcr(it->second, out, e->memlet.wcr);
        }
        continue;
      }
      if (e->dst == exit || dst->kind == ir::NodeKind::MapExit ||
          dst->kind == ir::NodeKind::Access) {
        int off = emit_expr(offset_expr(e->memlet));
        if (needs_guard(e)) emit_guard(e->memlet, off);
        if (e->memlet.wcr == ir::WCR::None) {
          emit(Op::Store, (uint16_t)out, (uint16_t)off, 0,
               prog_.array_slot(e->memlet.data));
        } else {
          int kind = 1;
          switch (e->memlet.wcr) {
            case ir::WCR::Sum: kind = 1; break;
            case ir::WCR::Prod: kind = 2; break;
            case ir::WCR::Min: kind = 3; break;
            case ir::WCR::Max: kind = 4; break;
            default: break;
          }
          emit(Op::StoreWcr, (uint16_t)out, (uint16_t)off, (uint16_t)kind,
               prog_.array_slot(e->memlet.data), 0, atomic ? 1 : 0);
        }
        continue;
      }
      throw err("map compiler: unsupported tasklet output edge");
    }
  }
};

}  // namespace

Program compile_map_scope(const ir::SDFG& sdfg, const ir::State& st,
                          int entry) {
  return MapCompiler(sdfg, st, entry).compile();
}

}  // namespace dace::rt
