#include "runtime/bytecode_opt.hpp"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/common.hpp"

namespace dace::rt {

namespace {

// Register banks: integer and float registers are separate namespaces.
enum class Bank { I, F };

struct RegRef {
  Bank bank;
  int reg;
  bool operator<(const RegRef& o) const {
    return bank != o.bank ? bank < o.bank : reg < o.reg;
  }
  bool operator==(const RegRef& o) const {
    return bank == o.bank && reg == o.reg;
  }
};

bool is_ibin(Op op) {
  return op == Op::IAdd || op == Op::ISub || op == Op::IMul ||
         op == Op::IFloorDiv || op == Op::IMod || op == Op::IMin ||
         op == Op::IMax;
}

bool is_fbin(Op op) {
  switch (op) {
    case Op::FAdd: case Op::FSub: case Op::FMul: case Op::FDiv:
    case Op::FPow: case Op::FMod: case Op::FMin: case Op::FMax:
    case Op::FLt: case Op::FLe: case Op::FGt: case Op::FGe:
    case Op::FEq: case Op::FNe: case Op::FAnd: case Op::FOr:
      return true;
    default:
      return false;
  }
}

bool is_fun(Op op) {
  switch (op) {
    case Op::FNeg: case Op::FAbs: case Op::FExp: case Op::FLog:
    case Op::FSqrt: case Op::FSin: case Op::FCos: case Op::FTanh:
    case Op::FFloor: case Op::FNot:
      return true;
    default:
      return false;
  }
}

/// Destination register, if the instruction writes one.
std::optional<RegRef> dest_of(const Instr& in) {
  switch (in.op) {
    case Op::IConst: case Op::ISym: case Op::IMov:
      return RegRef{Bank::I, in.a};
    case Op::FConst: case Op::FSym: case Op::FFromI: case Op::Load:
    case Op::FSelect:
      return RegRef{Bank::F, in.a};
    default:
      if (is_ibin(in.op)) return RegRef{Bank::I, in.a};
      if (is_fbin(in.op) || is_fun(in.op)) return RegRef{Bank::F, in.a};
      return std::nullopt;
  }
}

/// Registers the instruction reads.
std::vector<RegRef> reads_of(const Instr& in) {
  switch (in.op) {
    case Op::IMov: return {{Bank::I, in.b}};
    case Op::JGe: return {{Bank::I, in.a}, {Bank::I, in.b}};
    case Op::FFromI: return {{Bank::I, in.b}};
    case Op::Load: return {{Bank::I, in.b}};
    case Op::Store: return {{Bank::F, in.a}, {Bank::I, in.b}};
    case Op::StoreWcr: return {{Bank::F, in.a}, {Bank::I, in.b}};
    case Op::Guard: return {{Bank::I, in.a}, {Bank::I, in.b}};
    case Op::FSelect:
      return {{Bank::F, in.b}, {Bank::F, in.c}, {Bank::F, (int)in.imm}};
    default:
      if (is_ibin(in.op)) return {{Bank::I, in.b}, {Bank::I, in.c}};
      if (is_fbin(in.op)) return {{Bank::F, in.b}, {Bank::F, in.c}};
      if (is_fun(in.op)) return {{Bank::F, in.b}};
      return {};
  }
}

/// Safe to execute speculatively (hoist before a possibly-zero-trip
/// loop): pure integer arithmetic except the faulting division ops, plus
/// the float constant/symbol/convert loads.  Deliberately excludes float
/// arithmetic and Load so the VMStats flop/load counts stay identical to
/// the unoptimized program.
bool is_hoistable(Op op) {
  switch (op) {
    case Op::IConst: case Op::ISym: case Op::IMov: case Op::IAdd:
    case Op::ISub: case Op::IMul: case Op::IMin: case Op::IMax:
    case Op::FConst: case Op::FSym: case Op::FFromI:
      return true;
    default:
      return false;
  }
}

/// Safe to delete when the destination is never read.  Float flop-counted
/// arithmetic and Load stay (stats parity); everything side-effecting
/// (stores, control flow) stays.
bool is_removable(Op op) {
  switch (op) {
    case Op::IConst: case Op::ISym: case Op::IMov: case Op::IAdd:
    case Op::ISub: case Op::IMul: case Op::IFloorDiv: case Op::IMod:
    case Op::IMin: case Op::IMax: case Op::FConst: case Op::FSym:
    case Op::FFromI: case Op::FLt: case Op::FLe: case Op::FGt:
    case Op::FGe: case Op::FEq: case Op::FNe: case Op::FAnd: case Op::FOr:
    case Op::FNot: case Op::FSelect:
      return true;
    default:
      return false;
  }
}

/// A counted loop compiled by the map compiler:
///   header:  JGe var, end -> exit
///   body ...
///   latch-1: IAdd var, var, step   (in-place increment)
///   latch:   Jmp header
struct Loop {
  size_t header = 0;  // pc of the JGe
  size_t latch = 0;   // pc of the backward Jmp
  int var = -1;       // loop variable (JGe.a)
};

class Optimizer {
 public:
  explicit Optimizer(Program& p) : p_(p), code_(p.code) {}

  OptStats run() {
    // Fixpoint over the pass pipeline; each pass restarts its own scan
    // after a mutation, so a bounded round count suffices.
    for (int round = 0; round < 16; ++round) {
      bool changed = false;
      changed |= fold();
      changed |= licm();
      changed |= strength_reduce();
      changed |= dce();
      if (!changed) break;
    }
    return stats_;
  }

 private:
  Program& p_;
  std::vector<Instr>& code_;
  OptStats stats_;

  // ---- code editing with jump-target remapping ----------------------------

  /// Insert `ins` before `pos`. Targets beyond `pos` shift; a target at
  /// exactly `pos` shifts only when `shift_at_pos` (used for preheader
  /// insertion, where the loop back-edge must keep pointing at the JGe).
  void insert(size_t pos, const std::vector<Instr>& ins, bool shift_at_pos) {
    int64_t k = (int64_t)ins.size();
    for (Instr& in : code_) {
      if (in.op != Op::Jmp && in.op != Op::JGe) continue;
      if (in.imm > (int64_t)pos || (shift_at_pos && in.imm == (int64_t)pos))
        in.imm += k;
    }
    code_.insert(code_.begin() + (long)pos, ins.begin(), ins.end());
  }

  /// Remove the instruction at `pos`. A target at exactly `pos` stays in
  /// place (now addressing the instruction that followed).
  void erase(size_t pos) {
    for (Instr& in : code_) {
      if (in.op != Op::Jmp && in.op != Op::JGe) continue;
      if (in.imm > (int64_t)pos) in.imm -= 1;
    }
    code_.erase(code_.begin() + (long)pos);
  }

  // ---- analysis helpers ----------------------------------------------------

  /// Definition pcs per register.  The splittable chunk-bound registers
  /// i0/i1 get a sentinel external definition: they are preset by the
  /// caller and must never be treated as single-def constants.
  std::map<RegRef, std::vector<size_t>> def_sites() const {
    std::map<RegRef, std::vector<size_t>> defs;
    defs[{Bank::I, 0}].push_back(SIZE_MAX);
    defs[{Bank::I, 1}].push_back(SIZE_MAX);
    for (size_t pc = 0; pc < code_.size(); ++pc) {
      if (auto d = dest_of(code_[pc])) defs[*d].push_back(pc);
    }
    return defs;
  }

  std::map<RegRef, int> read_counts() const {
    std::map<RegRef, int> uses;
    for (const Instr& in : code_) {
      for (const RegRef& r : reads_of(in)) ++uses[r];
    }
    return uses;
  }

  std::vector<Loop> find_loops() const {
    std::vector<Loop> loops;
    for (size_t pc = 0; pc < code_.size(); ++pc) {
      const Instr& in = code_[pc];
      if (in.op != Op::Jmp || in.imm > (int64_t)pc) continue;
      size_t h = (size_t)in.imm;
      if (h >= code_.size() || code_[h].op != Op::JGe) continue;
      loops.push_back(Loop{h, pc, code_[h].a});
    }
    // Innermost (smallest interval) first.
    std::sort(loops.begin(), loops.end(), [](const Loop& a, const Loop& b) {
      return a.latch - a.header < b.latch - b.header;
    });
    return loops;
  }

  /// Body pcs of `L` that are not inside a nested loop (these execute
  /// exactly once per iteration of `L`).
  std::vector<size_t> direct_body(const Loop& L,
                                  const std::vector<Loop>& all) const {
    std::vector<size_t> out;
    for (size_t pc = L.header + 1; pc < L.latch; ++pc) {
      bool nested = false;
      for (const Loop& o : all) {
        if (o.header > L.header && o.latch < L.latch && pc >= o.header &&
            pc <= o.latch) {
          nested = true;
          break;
        }
      }
      if (!nested) out.push_back(pc);
    }
    return out;
  }

  int defs_in(const std::vector<size_t>& pcs, const RegRef& r,
              const std::map<RegRef, std::vector<size_t>>& defs) const {
    auto it = defs.find(r);
    if (it == defs.end()) return 0;
    int n = 0;
    for (size_t d : it->second) {
      if (d == SIZE_MAX) continue;
      if (std::binary_search(pcs.begin(), pcs.end(), d)) ++n;
    }
    return n;
  }

  static std::vector<size_t> range_pcs(size_t lo, size_t hi) {
    std::vector<size_t> out;
    for (size_t pc = lo; pc <= hi; ++pc) out.push_back(pc);
    return out;
  }

  // ---- pass 1: constant folding + identities + copy propagation ------------

  bool fold() {
    bool any = false;
    for (bool changed = true; changed;) {
      changed = false;
      auto defs = def_sites();
      // Known constants: integer registers with exactly one definition,
      // which is an IConst.  Compiled map scopes define every register
      // before its first use on all executed paths, so a single
      // definition's value holds at every read site.
      std::map<int, int64_t> known;
      for (const auto& [r, sites] : defs) {
        if (r.bank != Bank::I || sites.size() != 1) continue;
        if (sites[0] == SIZE_MAX) continue;
        const Instr& in = code_[sites[0]];
        if (in.op == Op::IConst) known[r.reg] = in.imm;
      }
      auto get = [&](uint16_t reg) -> std::optional<int64_t> {
        auto it = known.find(reg);
        if (it == known.end()) return std::nullopt;
        return it->second;
      };
      for (size_t pc = 0; pc < code_.size() && !changed; ++pc) {
        Instr& in = code_[pc];
        if (!is_ibin(in.op)) continue;
        auto d = dest_of(in);
        if (defs[*d].size() != 1) continue;  // recurrences stay untouched
        auto vb = get(in.b), vc = get(in.c);
        if (vb && vc) {
          int64_t b = *vb, c = *vc, r;
          switch (in.op) {
            case Op::IAdd: r = b + c; break;
            case Op::ISub: r = b - c; break;
            case Op::IMul: r = b * c; break;
            case Op::IMin: r = std::min(b, c); break;
            case Op::IMax: r = std::max(b, c); break;
            case Op::IFloorDiv:
            case Op::IMod: {
              if (c == 0) continue;  // keep the runtime fault
              int64_t q = b / c;
              if ((b % c != 0) && ((b < 0) != (c < 0))) --q;
              r = in.op == Op::IFloorDiv ? q : b - q * c;
              break;
            }
            default: continue;
          }
          in = Instr{Op::IConst, in.a, 0, 0, 0, r, 0};
          ++stats_.folded;
          changed = any = true;
        } else if (in.op == Op::IAdd && ((vb && *vb == 0) || (vc && *vc == 0))) {
          in = Instr{Op::IMov, in.a, (vb && *vb == 0) ? in.c : in.b, 0, 0, 0, 0};
          ++stats_.folded;
          changed = any = true;
        } else if (in.op == Op::ISub && vc && *vc == 0) {
          in = Instr{Op::IMov, in.a, in.b, 0, 0, 0, 0};
          ++stats_.folded;
          changed = any = true;
        } else if (in.op == Op::IMul && ((vb && *vb == 1) || (vc && *vc == 1))) {
          in = Instr{Op::IMov, in.a, (vb && *vb == 1) ? in.c : in.b, 0, 0, 0, 0};
          ++stats_.folded;
          changed = any = true;
        } else if (in.op == Op::IMul && ((vb && *vb == 0) || (vc && *vc == 0))) {
          in = Instr{Op::IConst, in.a, 0, 0, 0, 0, 0};
          ++stats_.folded;
          changed = any = true;
        }
      }
      if (changed) continue;
      // Copy propagation: single-def IMov whose source is also single-def
      // can forward its source into every read.
      for (size_t pc = 0; pc < code_.size() && !changed; ++pc) {
        const Instr& in = code_[pc];
        if (in.op != Op::IMov || in.a == in.b) continue;
        RegRef dst{Bank::I, in.a}, src{Bank::I, in.b};
        if (defs[dst].size() != 1 || defs[src].size() != 1) continue;
        for (Instr& u : code_) {
          switch (u.op) {
            case Op::IMov:
              if (&u != &in && u.b == in.a) { u.b = in.b; changed = true; }
              break;
            case Op::JGe:
              if (u.a == in.a) { u.a = in.b; changed = true; }
              if (u.b == in.a) { u.b = in.b; changed = true; }
              break;
            case Op::FFromI: case Op::Load:
              if (u.b == in.a) { u.b = in.b; changed = true; }
              break;
            case Op::Store: case Op::StoreWcr:
              if (u.b == in.a) { u.b = in.b; changed = true; }
              break;
            case Op::Guard:
              if (u.a == in.a) { u.a = in.b; changed = true; }
              if (u.b == in.a) { u.b = in.b; changed = true; }
              break;
            default:
              if (is_ibin(u.op)) {
                if (u.b == in.a) { u.b = in.b; changed = true; }
                if (u.c == in.a) { u.c = in.b; changed = true; }
              }
          }
        }
        if (changed) any = true;  // the IMov itself dies in DCE
      }
    }
    return any;
  }

  // ---- pass 2: loop-invariant code motion ----------------------------------

  bool licm() {
    bool any = false;
    for (bool changed = true; changed;) {
      changed = false;
      auto loops = find_loops();
      auto defs = def_sites();
      for (const Loop& L : loops) {
        auto body = range_pcs(L.header, L.latch);
        for (size_t pc : direct_body(L, loops)) {
          const Instr& in = code_[pc];
          if (!is_hoistable(in.op)) continue;
          auto d = dest_of(in);
          if (!d || (d->bank == Bank::I && d->reg < 2)) continue;
          if (defs_in(body, *d, defs) != 1) continue;
          bool invariant_ops = true;
          for (const RegRef& r : reads_of(in)) {
            if (defs_in(body, r, defs) != 0) {
              invariant_ops = false;
              break;
            }
          }
          if (!invariant_ops) continue;
          Instr moved = in;
          erase(pc);
          insert(L.header, {moved}, /*shift_at_pos=*/true);
          ++stats_.hoisted;
          changed = any = true;
          break;  // structures moved; rescan
        }
        if (changed) break;
      }
    }
    return any;
  }

  // ---- pass 3: strength reduction of affine offset chains ------------------

  // Coefficient of an affine value a + coef*var, as a tiny expression
  // tree over literals and loop-invariant registers.
  struct Coef {
    enum K { Lit, Reg, Add, Sub, Mul } k = Lit;
    int64_t lit = 0;
    int reg = -1;
    int a = -1, b = -1;  // children (pool indices)
  };

  std::vector<Coef> pool_;

  int c_lit(int64_t v) {
    pool_.push_back(Coef{Coef::Lit, v, -1, -1, -1});
    return (int)pool_.size() - 1;
  }
  int c_reg(int r) {
    pool_.push_back(Coef{Coef::Reg, 0, r, -1, -1});
    return (int)pool_.size() - 1;
  }
  int c_bin(Coef::K k, int a, int b) {
    const Coef& ca = pool_[(size_t)a];
    const Coef& cb = pool_[(size_t)b];
    if (ca.k == Coef::Lit && cb.k == Coef::Lit) {
      switch (k) {
        case Coef::Add: return c_lit(ca.lit + cb.lit);
        case Coef::Sub: return c_lit(ca.lit - cb.lit);
        case Coef::Mul: return c_lit(ca.lit * cb.lit);
        default: break;
      }
    }
    if (k == Coef::Mul) {
      if (ca.k == Coef::Lit && ca.lit == 0) return a;
      if (cb.k == Coef::Lit && cb.lit == 0) return b;
      if (ca.k == Coef::Lit && ca.lit == 1) return b;
      if (cb.k == Coef::Lit && cb.lit == 1) return a;
    }
    if (k == Coef::Add || k == Coef::Sub) {
      if (cb.k == Coef::Lit && cb.lit == 0) return a;
      if (k == Coef::Add && ca.k == Coef::Lit && ca.lit == 0) return b;
    }
    pool_.push_back(Coef{k, 0, -1, a, b});
    return (int)pool_.size() - 1;
  }
  bool c_is_lit(int id, int64_t v) const {
    return pool_[(size_t)id].k == Coef::Lit && pool_[(size_t)id].lit == v;
  }

  int fresh_ireg() {
    DACE_CHECK(p_.n_iregs < 60000, "bytecode opt: integer register overflow");
    return p_.n_iregs++;
  }

  /// Materialize the coefficient value into instructions appended to
  /// `out`; returns the register holding it (emitting an IConst for
  /// literals).
  int materialize(int id, std::vector<Instr>& out) {
    const Coef c = pool_[(size_t)id];
    switch (c.k) {
      case Coef::Lit: {
        int r = fresh_ireg();
        out.push_back(Instr{Op::IConst, (uint16_t)r, 0, 0, 0, c.lit, 0});
        return r;
      }
      case Coef::Reg:
        return c.reg;
      default: {
        int a = materialize(c.a, out);
        int b = materialize(c.b, out);
        int r = fresh_ireg();
        Op op = c.k == Coef::Add ? Op::IAdd
                                 : c.k == Coef::Sub ? Op::ISub : Op::IMul;
        out.push_back(Instr{op, (uint16_t)r, (uint16_t)a, (uint16_t)b, 0, 0, 0});
        return r;
      }
    }
  }

  bool strength_reduce() {
    bool any = false;
    for (bool changed = true; changed;) {
      changed = false;
      auto loops = find_loops();
      for (const Loop& L : loops) {
        if (reduce_loop(L, loops)) {
          changed = any = true;
          break;  // indices moved; recompute loop structure
        }
      }
    }
    return any;
  }

  bool reduce_loop(const Loop& L, const std::vector<Loop>& loops) {
    if (L.latch == 0) return false;
    const Instr& inc = code_[L.latch - 1];
    // Require the canonical in-place latch increment IAdd var, var, step.
    if (inc.op != Op::IAdd || inc.a != L.var || inc.b != L.var) return false;
    int step = inc.c;
    auto defs = def_sites();
    auto body = range_pcs(L.header, L.latch);
    if (defs_in(body, {Bank::I, step}, defs) != 0) return false;

    auto invariant = [&](int reg) {
      return defs_in(body, {Bank::I, reg}, defs) == 0;
    };

    // Collect affine chains over the direct body, in program order.
    struct Node {
      size_t pc;
      int dest;
      int coef;           // pool id; syntactically nonzero
      bool external = false;  // read by a surviving (non-chain) instruction
    };
    std::vector<Node> chain;
    std::map<int, int> dest_node;  // reg -> chain index
    auto aff_of = [&](int reg) -> std::optional<int> {
      if (reg == L.var) return c_lit(1);
      if (auto it = dest_node.find(reg); it != dest_node.end())
        return chain[(size_t)it->second].coef;
      if (invariant(reg)) return c_lit(0);
      return std::nullopt;
    };
    auto direct = direct_body(L, loops);
    for (size_t pc : direct) {
      if (pc == L.latch - 1) continue;  // the loop-variable increment
      const Instr& in = code_[pc];
      if (in.op != Op::IAdd && in.op != Op::ISub && in.op != Op::IMul)
        continue;
      if (in.a == L.var || in.a < 2) continue;
      if (defs_in(body, {Bank::I, in.a}, defs) != 1) continue;
      auto cb = aff_of(in.b), cc = aff_of(in.c);
      if (!cb || !cc) continue;
      int coef;
      if (in.op == Op::IAdd) {
        coef = c_bin(Coef::Add, *cb, *cc);
      } else if (in.op == Op::ISub) {
        coef = c_bin(Coef::Sub, *cb, *cc);
      } else {
        // Products stay affine only when one side is invariant.
        if (c_is_lit(*cb, 0)) {
          coef = c_bin(Coef::Mul, c_reg(in.b), *cc);
        } else if (c_is_lit(*cc, 0)) {
          coef = c_bin(Coef::Mul, *cb, c_reg(in.c));
        } else {
          continue;
        }
      }
      if (c_is_lit(coef, 0)) continue;  // invariant value; LICM's job
      dest_node[in.a] = (int)chain.size();
      chain.push_back(Node{pc, in.a, coef});
    }
    if (chain.empty()) return false;

    // Reject chain members whose value escapes the loop (the final
    // increment would overshoot the last in-loop value by one step), and
    // cascade the rejection through dependent members.
    std::vector<bool> rejected(chain.size(), false);
    std::set<size_t> chain_pcs;
    for (const Node& n : chain) chain_pcs.insert(n.pc);
    for (bool cascade = true; cascade;) {
      cascade = false;
      for (size_t ci = 0; ci < chain.size(); ++ci) {
        if (rejected[ci]) continue;
        for (size_t pc = 0; pc < code_.size(); ++pc) {
          bool in_loop = pc >= L.header && pc <= L.latch;
          bool reader = false;
          for (const RegRef& r : reads_of(code_[pc])) {
            if (r.bank == Bank::I && r.reg == chain[ci].dest) reader = true;
          }
          if (!reader) continue;
          // Chain members only read earlier-defined chain values, so any
          // in-loop read at a pc before this member's definition (the
          // header JGe included) would observe the previous iteration's
          // value in the original program -- not transformable.
          bool member_read = chain_pcs.count(pc) > 0;
          if (!in_loop || (pc < chain[ci].pc && !member_read)) {
            rejected[ci] = true;
            cascade = true;
            break;
          }
        }
        if (rejected[ci]) continue;
        // A member reading a rejected member is no longer affine.
        const Instr& in = code_[chain[ci].pc];
        for (uint16_t src : {in.b, in.c}) {
          auto it = dest_node.find(src);
          if (it != dest_node.end() && rejected[(size_t)it->second]) {
            rejected[ci] = true;
            cascade = true;
          }
        }
      }
    }
    std::vector<Node> kept;
    std::set<size_t> kept_pcs;
    for (size_t ci = 0; ci < chain.size(); ++ci) {
      if (!rejected[ci]) {
        kept.push_back(chain[ci]);
        kept_pcs.insert(chain[ci].pc);
      }
    }
    if (kept.empty()) return false;

    // A kept member is external when any read comes from outside the
    // kept set (loads/stores, nested loops, surviving instructions); only
    // externals need a latch increment.
    for (Node& n : kept) {
      for (size_t pc = 0; pc < code_.size(); ++pc) {
        if (kept_pcs.count(pc)) continue;
        for (const RegRef& r : reads_of(code_[pc])) {
          if (r.bank == Bank::I && r.reg == n.dest) n.external = true;
        }
      }
    }

    // Preheader: per-external delta registers (coef * step), then clones
    // of the whole chain seeding the iteration-0 values.
    std::vector<Instr> pre;
    std::vector<std::pair<int, int>> increments;  // (dest, delta reg)
    for (const Node& n : kept) {
      if (!n.external) continue;
      int delta = c_is_lit(n.coef, 1)
                      ? step
                      : materialize(c_bin(Coef::Mul, n.coef, c_reg(step)), pre);
      increments.emplace_back(n.dest, delta);
    }
    for (const Node& n : kept) pre.push_back(code_[n.pc]);

    std::vector<Instr> latch_incs;
    for (auto [dest, delta] : increments) {
      latch_incs.push_back(Instr{Op::IAdd, (uint16_t)dest, (uint16_t)dest,
                                 (uint16_t)delta, 0, 0, 0});
    }

    // Apply: preheader first (shifts everything in the loop), then the
    // latch increments, then delete the chain bodies back-to-front.
    size_t k1 = pre.size();
    insert(L.header, pre, /*shift_at_pos=*/true);
    insert(L.latch + k1, latch_incs, /*shift_at_pos=*/false);
    std::vector<size_t> doomed(kept_pcs.begin(), kept_pcs.end());
    std::sort(doomed.rbegin(), doomed.rend());
    for (size_t pc : doomed) erase(pc + k1);
    stats_.strength_reduced += (int)doomed.size();
    return true;
  }

  // ---- pass 4: dead register elimination -----------------------------------

  bool dce() {
    bool any = false;
    for (bool changed = true; changed;) {
      changed = false;
      auto uses = read_counts();
      for (size_t pc = code_.size(); pc-- > 0;) {
        const Instr& in = code_[pc];
        if (!is_removable(in.op)) continue;
        auto d = dest_of(in);
        if (!d) continue;
        auto it = uses.find(*d);
        if (it != uses.end() && it->second > 0) continue;
        erase(pc);
        ++stats_.eliminated;
        changed = any = true;
      }
    }
    return any;
  }
};

}  // namespace

OptStats optimize_program(Program& prog) {
  Optimizer opt(prog);
  return opt.run();
}

bool bytecode_opt_enabled() {
  const char* env = std::getenv("DACEPP_BC_OPT");
  return env == nullptr || std::string(env) != "0";
}

}  // namespace dace::rt
