#include "runtime/executor.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <sstream>

#include "analysis/analysis.hpp"
#include "codegen/kernel_plan.hpp"
#include "common/diag.hpp"
#include "common/metrics.hpp"
#include "common/obs.hpp"
#include "common/profdb.hpp"
#include "runtime/bytecode_opt.hpp"
#include "runtime/tensor_ops.hpp"
#include "runtime/thread_pool.hpp"

namespace dace::rt {

// ---------------------------------------------------------------------------
// Library registry
// ---------------------------------------------------------------------------

namespace detail {
void register_builtin_kernels(LibraryRegistry&);  // library_kernels.cpp
}

LibraryRegistry& LibraryRegistry::global() {
  static LibraryRegistry reg = [] {
    LibraryRegistry r;
    detail::register_builtin_kernels(r);
    return r;
  }();
  return reg;
}

void LibraryRegistry::register_op(const std::string& op, LibraryHandler h) {
  handlers_[op] = std::move(h);
}

const LibraryHandler* LibraryRegistry::find(const std::string& op) const {
  auto it = handlers_.find(op);
  return it == handlers_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

Executor::Executor(const ir::SDFG& sdfg, ExecutorOptions opts)
    : sdfg_(sdfg),
      opts_(opts),
      inst_(std::make_unique<Instrumenter>(sdfg)),
      tier_cfg_(TierConfig::from_env()),
      bc_opt_(bytecode_opt_enabled()) {}

Executor::~Executor() {
  // Close the measurement loop: merge what this executor learned about
  // its map programs into the persistent profile DB.  Best-effort only;
  // nothing here may throw out of a destructor.
  try {
    std::vector<MapFlush> maps;
    maps.reserve(programs_.size());
    for (const auto& [key, tp] : programs_) {
      if (tp.launches <= 0) continue;
      MapFlush f;
      f.program_hash = tp.prog.hash();
      f.state = key.first;
      f.node = key.second;
      const ir::State& st = sdfg_.state(key.first);
      if (const auto* me = st.node_as<const ir::MapEntry>(key.second))
        f.label = me->name;
      f.launches = tp.launches;
      f.iterations = tp.total_iters;
      f.tier = tp.tier_reached;
      f.ns_per_iter[0] = tp.ns_per_iter[0];
      f.ns_per_iter[1] = tp.ns_per_iter[1];
      maps.push_back(std::move(f));
    }
    if (!maps.empty()) flush_profiles_to_db(*inst_, maps);
  } catch (...) {
  }
}

Tensor& Executor::tensor(const std::string& container) {
  auto it = env_.find(container);
  DACE_CHECK(it != env_.end(), "executor: container '", container,
             "' is not bound");
  return it->second;
}

int64_t Executor::eval(const sym::Expr& e) const { return e.eval(syms_); }

Tensor Executor::view(const ir::Memlet& m) {
  Tensor& t = tensor(m.data);
  if (m.subset.dims() == 0) return t;
  std::vector<int64_t> b, e, s;
  for (size_t d = 0; d < m.subset.dims(); ++d) {
    b.push_back(eval(m.subset.range(d).begin));
    e.push_back(eval(m.subset.range(d).end));
    s.push_back(eval(m.subset.range(d).step));
  }
  return t.slice(b, e, s);
}

Tensor Executor::view(const ir::Memlet& m, const std::string& viewdims) {
  Tensor& t = tensor(m.data);
  if (m.subset.dims() == 0) return t;
  std::set<int> keep;
  size_t pos = 0;
  while (pos < viewdims.size()) {
    size_t comma = viewdims.find(',', pos);
    if (comma == std::string::npos) comma = viewdims.size();
    keep.insert(std::stoi(viewdims.substr(pos, comma - pos)));
    pos = comma + 1;
  }
  std::vector<int64_t> b, e, s;
  std::vector<bool> drop;
  for (size_t d = 0; d < m.subset.dims(); ++d) {
    b.push_back(eval(m.subset.range(d).begin));
    e.push_back(eval(m.subset.range(d).end));
    s.push_back(eval(m.subset.range(d).step));
    drop.push_back(!keep.count((int)d));
  }
  return t.slice(b, e, s, drop);
}

void Executor::allocate_transients() {
  for (const auto& [name, d] : sdfg_.arrays()) {
    if (!d.transient || d.is_stream) continue;
    if (env_.count(name)) continue;
    std::vector<int64_t> shape;
    shape.reserve(d.shape.size());
    for (const auto& s : d.shape) shape.push_back(eval(s));
    if (d.lifetime == ir::Lifetime::Persistent) {
      auto it = persistent_.find(name);
      if (it != persistent_.end() &&
          it->second.shape() == shape) {
        env_.emplace(name, it->second);
        continue;
      }
      Tensor t(d.dtype, shape);
      persistent_[name] = t;
      env_.emplace(name, t);
    } else {
      env_.emplace(name, Tensor(d.dtype, shape));
    }
  }
}

void Executor::run(Bindings& args, const sym::SymbolMap& symbols) {
  if (!validated_) {
    if (opts_.validate) sdfg_.validate();
    if (opts_.analyze || analysis::verify_env()) {
      analysis::AnalysisReport report = analysis::analyze(sdfg_);
      if (report.has_errors())
        throw err("executor: refusing to run '", sdfg_.name(),
                  "', static analysis found errors:\n", report.to_string());
    }
    validated_ = true;
  }
  syms_ = symbols;
  // Check all free symbols are provided.
  for (const auto& s : sdfg_.free_symbols()) {
    DACE_CHECK(syms_.count(s), "executor: missing symbol '", s, "'");
  }
  env_.clear();
  for (const auto& an : sdfg_.arg_names()) {
    auto it = args.find(an);
    DACE_CHECK(it != args.end(), "executor: missing argument '", an, "'");
    env_.emplace(an, it->second);  // shallow view, shared buffer
  }
  allocate_transients();

  int cur = sdfg_.start_state();
  int64_t steps = 0;
  const int64_t kMaxSteps = 100000000;
  while (cur >= 0) {
    if (opts_.cancel_check && opts_.cancel_check()) {
      throw err("cancelled: run aborted at state boundary");
    }
    const ir::State& st = sdfg_.state(cur);
    // States are instrumented only via their explicit attribute; the
    // DACE_INSTRUMENT default applies at launch granularity.
    if (st.instrument != ir::Instrument::Off) {
      VMStats before = stats_;
      int64_t t0 = obs::now_ns();
      execute_state(st);
      VMStats d = stats_delta(before);
      inst_->record("state", cur, -1, st.label(), st.instrument, t0,
                    obs::now_ns() - t0, 0, 1, &d);
    } else {
      execute_state(st);
    }
    if (opts_.post_state_hook) opts_.post_state_hook(st, syms_);
    DACE_CHECK(++steps < kMaxSteps, "executor: state machine did not halt");
    int next = -1;
    for (size_t ei : sdfg_.out_interstate(cur)) {
      const ir::InterstateEdge& e = sdfg_.interstate_edges()[ei];
      bool taken = true;
      if (e.condition.valid()) {
        taken = e.condition.eval({}, syms_) != 0;
      }
      if (!taken) continue;
      // Evaluate all assignments against the pre-transition symbol values.
      std::vector<std::pair<std::string, int64_t>> vals;
      for (const auto& [k, v] : e.assignments) vals.emplace_back(k, eval(v));
      for (const auto& [k, v] : vals) syms_[k] = v;
      next = e.dst;
      break;
    }
    cur = next;
  }
}

void Executor::notify_launch(const std::string& kind, const VMStats& before) {
  if (!opts_.launch_hook) return;
  opts_.launch_hook(kind, stats_delta(before));
}

VMStats Executor::stats_delta(const VMStats& before) const {
  VMStats d;
  d.flops = stats_.flops - before.flops;
  d.loads = stats_.loads - before.loads;
  d.stores = stats_.stores - before.stores;
  d.wcr_stores = stats_.wcr_stores - before.wcr_stores;
  d.instrs = stats_.instrs - before.instrs;
  return d;
}

void Executor::execute_state(const ir::State& st) {
  // Top-level nodes only; nodes inside map scopes execute via the VM.
  std::set<int> inner;
  for (int id : st.node_ids()) {
    if (st.node(id)->kind == ir::NodeKind::MapEntry &&
        st.scope_of(id) == -1) {
      for (int s : st.scope_nodes(id)) inner.insert(s);
    }
  }
  for (int id : st.topological_order()) {
    if (inner.count(id)) continue;
    const ir::Node* n = st.node(id);
    switch (n->kind) {
      case ir::NodeKind::Access:
        break;
      case ir::NodeKind::Tasklet: {
        VMStats before = stats_;
        ir::Instrument im =
            inst_->active() ? inst_->effective(*n) : ir::Instrument::Off;
        int64_t t0 = im != ir::Instrument::Off ? obs::now_ns() : 0;
        execute_tasklet(st, id);
        notify_launch("tasklet", before);
        if (im != ir::Instrument::Off) {
          VMStats d = stats_delta(before);
          inst_->record("tasklet", sdfg_.state_id(&st), id,
                        static_cast<const ir::Tasklet*>(n)->name, im, t0,
                        obs::now_ns() - t0, 0, 1, &d);
        }
        break;
      }
      case ir::NodeKind::MapEntry: {
        VMStats before = stats_;
        ir::Instrument im =
            inst_->active() ? inst_->effective(*n) : ir::Instrument::Off;
        int64_t t0 = im != ir::Instrument::Off ? obs::now_ns() : 0;
        int tier = 0;
        int64_t iters = 0;
        execute_map(st, id, &tier, &iters);
        notify_launch("map", before);
        if (im != ir::Instrument::Off) {
          // Tier-1 runs produce no VMStats; only attach the delta when the
          // VM interpreted the map, so instrs/iter stays meaningful.
          VMStats d = stats_delta(before);
          inst_->record("map", sdfg_.state_id(&st), id,
                        static_cast<const ir::MapEntry*>(n)->name, im, t0,
                        obs::now_ns() - t0, tier, iters,
                        tier == 0 ? &d : nullptr);
        }
        break;
      }
      case ir::NodeKind::MapExit:
        break;
      case ir::NodeKind::Library: {
        VMStats before = stats_;
        ir::Instrument im =
            inst_->active() ? inst_->effective(*n) : ir::Instrument::Off;
        int64_t t0 = im != ir::Instrument::Off ? obs::now_ns() : 0;
        execute_library(st, id);
        notify_launch("library", before);
        if (im != ir::Instrument::Off) {
          VMStats d = stats_delta(before);
          inst_->record("library", sdfg_.state_id(&st), id, n->label(), im,
                        t0, obs::now_ns() - t0, 0, 1, &d);
        }
        break;
      }
      case ir::NodeKind::NestedSDFG:
        execute_nested(st, id);
        break;
    }
  }
}

void Executor::execute_tasklet(const ir::State& st, int node) {
  const auto* t = st.node_as<const ir::Tasklet>(node);
  std::map<std::string, double> inputs;
  for (const auto* e : st.in_edges(node)) {
    if (e->memlet.empty()) continue;
    Tensor v = view(e->memlet);
    inputs[e->dst_conn] = v.get_flat(0);
  }
  double out = t->code.eval(inputs, syms_);
  for (const auto* e : st.out_edges(node)) {
    if (e->memlet.empty()) continue;
    Tensor v = view(e->memlet);
    switch (e->memlet.wcr) {
      case ir::WCR::None: v.set_flat(0, out); break;
      case ir::WCR::Sum: v.set_flat(0, v.get_flat(0) + out); break;
      case ir::WCR::Prod: v.set_flat(0, v.get_flat(0) * out); break;
      case ir::WCR::Min: v.set_flat(0, std::min(v.get_flat(0), out)); break;
      case ir::WCR::Max: v.set_flat(0, std::max(v.get_flat(0), out)); break;
    }
  }
}

namespace {

int64_t env_ns(const char* name, int64_t dflt) {
  if (const char* v = std::getenv(name)) {
    long long x = std::atoll(v);
    if (x > 0) return x;
  }
  return dflt;
}

// Chunk-grain knobs: a chunk should carry about CHUNK_TARGET_NS of work,
// and a map cheaper than CHUNK_MIN_NS in total is not worth a dispatch.
int64_t chunk_target_ns() {
  static int64_t v = env_ns("DACE_CHUNK_TARGET_NS", 100000);
  return v;
}
int64_t chunk_min_ns() {
  static int64_t v = env_ns("DACE_CHUNK_MIN_NS", 20000);
  return v;
}

}  // namespace

int Executor::plan_chunks(const TieredProgram& tp, int tier, int64_t iters) {
  int nt = ThreadPool::global().num_threads();
  if (!tp.prog.kernel_plan) return nt;  // legacy static split
  double nspi = tp.ns_per_iter[tier];
  if (nspi <= 0.0) {
    // Pre-measurement heuristic: cost scales with bytecode length;
    // native code retires an "instruction" far faster than the VM.
    nspi = (double)tp.prog.code.size() * (tier == 1 ? 0.4 : 2.5);
  }
  double total = nspi * (double)iters;
  if (total < (double)chunk_min_ns()) return 1;
  double per_chunk = (double)chunk_target_ns();
  int chunks = (int)((total + per_chunk - 1.0) / per_chunk);
  chunks = std::max(chunks, 1);
  chunks = (int)std::min<int64_t>(chunks, iters);
  return std::min(chunks, nt);
}

void Executor::update_cost(TieredProgram& tp, int tier, int64_t iters,
                           int64_t dur_ns) {
  if (iters <= 0 || dur_ns <= 0) return;
  double nspi = (double)dur_ns / (double)iters;
  double& ema = tp.ns_per_iter[tier];
  ema = ema <= 0.0 ? nspi : 0.5 * ema + 0.5 * nspi;
}

void Executor::execute_map(const ir::State& st, int node, int* tier_used,
                           int64_t* iters_out) {
  *tier_used = 0;
  *iters_out = 0;
  const auto* me = st.node_as<const ir::MapEntry>(node);
  int sid = sdfg_.state_id(&st);
  auto key = std::make_pair(sid, node);
  auto it = programs_.find(key);
  if (it == programs_.end()) {
    int64_t c0 = obs::enabled() ? obs::now_ns() : 0;
    TieredProgram tp;
    tp.prog = compile_map_scope(sdfg_, st, node);
    if (bc_opt_) optimize_program(tp.prog);
    // Profile-guided seeding (DACE_PGO=1, common/profdb.*): a stored
    // profile marks programs that reached Tier-1 before as hot -- they
    // promote at first launch, skipping the warmup threshold -- and
    // seeds the chunk scheduler's cost EMA with measured ns/iter in
    // place of the bytecode-length heuristic.  With DACE_PGO unset this
    // block never reads anything, keeping the default path untouched.
    if (prof::pgo_enabled()) {
      prof::MapProfile mp;
      if (prof::ProfileDB::instance().load_map(tp.prog.hash(), &mp)) {
        if (mp.tier >= 1 && tier_cfg_.enabled) tp.pgo_hot = true;
        for (int t = 0; t < 2; ++t)
          if (mp.ns_per_iter[t] > 0.0) tp.ns_per_iter[t] = mp.ns_per_iter[t];
        METRIC_INC("dacepp_pgo_seeded_total");
        if (obs::enabled()) {
          std::ostringstream a;
          a << "{\"map\":\"" << diag::json_escape(me->name)
            << "\",\"hot\":" << (tp.pgo_hot ? "true" : "false")
            << ",\"ns0\":" << mp.ns_per_iter[0]
            << ",\"ns1\":" << mp.ns_per_iter[1] << "}";
          obs::instant("tier", "pgo-seed", a.str());
        }
      }
    }
    it = programs_.emplace(key, std::move(tp)).first;
    if (obs::enabled()) {
      std::ostringstream a;
      a << "{\"map\":\"" << diag::json_escape(me->name)
        << "\",\"instructions\":" << it->second.prog.code.size() << "}";
      obs::complete("executor", "compile-map", c0, obs::now_ns() - c0,
                    a.str());
    }
  }
  TieredProgram& tp = it->second;
  const Program& prog = tp.prog;

  // Bind array slots and symbol slots.
  std::vector<ArrayRef> arrays(prog.arrays.size());
  for (size_t i = 0; i < prog.arrays.size(); ++i) {
    Tensor& t = tensor(prog.arrays[i]);
    DACE_CHECK(t.contiguous(),
               "executor: map operand '", prog.arrays[i],
               "' must be contiguous");
    arrays[i] = ArrayRef{t.data(), t.dtype()};
  }
  std::vector<int64_t> symvals(prog.symbols.size());
  for (size_t i = 0; i < prog.symbols.size(); ++i) {
    auto sit = syms_.find(prog.symbols[i]);
    DACE_CHECK(sit != syms_.end(), "executor: unbound symbol '",
               prog.symbols[i], "' in map");
    symvals[i] = sit->second;
  }

  ++map_launches_;
  if (opts_.cancel_check && opts_.cancel_check()) {
    throw err("cancelled: map '", me->name, "' not dispatched");
  }
  const sym::Range& r0 = me->range.range(0);
  int64_t begin = eval(r0.begin), end = eval(r0.end), step = eval(r0.step);
  int64_t iters = step > 0 ? (end - begin + step - 1) / step : 0;
  if (iters <= 0) return;
  *iters_out = iters;
  ++tp.launches;
  tp.total_iters += iters;

  bool parallel = opts_.parallel &&
                  (me->schedule == ir::Schedule::CPUParallel ||
                   me->schedule == ir::Schedule::GPUDevice) &&
                  prog.splittable;

  // Tier-1 promotion.  Disabled whenever a launch hook is installed: the
  // device simulators charge their cost models from per-launch VMStats
  // deltas, and native execution produces none.
  bool jit_ok = tier_cfg_.enabled && !opts_.launch_hook && !tp.native_failed;
  if (jit_ok && !tp.native) {
    tp.iterations += iters;
    // pgo_hot (a prior run's profile says this program earned Tier-1)
    // skips the warmup threshold and promotes at the first launch.
    if (tp.iterations >= tier_cfg_.threshold || tp.pgo_hot) {
      std::vector<ir::DType> dtypes(arrays.size());
      for (size_t i = 0; i < arrays.size(); ++i) dtypes[i] = arrays[i].dtype;
      tp.native = request_native(prog, dtypes, tier_cfg_);
      ++native_promotions_;
      METRIC_INC("dacepp_tier_promotions_total");
      if (tp.pgo_hot) METRIC_INC("dacepp_pgo_prepromotions_total");
      if (obs::enabled()) {
        std::ostringstream a;
        a << "{\"map\":\"" << diag::json_escape(me->name)
          << "\",\"iterations\":" << tp.iterations
          << ",\"pgo\":" << (tp.pgo_hot ? "true" : "false") << "}";
        obs::instant("tier", "promote", a.str());
      }
    }
  }
  // Generated Tier-1 code declares its array pointers __restrict__ when
  // interval analysis proved the scope contiguous; that assertion only
  // holds if the bound buffers really are disjoint (a caller may alias
  // two arguments, or pass overlapping views).  Re-check per launch and
  // fall back to the VM on overlap.
  bool restrict_ok = true;
  if (prog.use_restrict) {
    std::vector<std::pair<uintptr_t, uintptr_t>> spans(arrays.size());
    for (size_t i = 0; i < arrays.size(); ++i) {
      uintptr_t b = reinterpret_cast<uintptr_t>(arrays[i].base);
      spans[i] = {b, b + sizeof(double) *
                          (size_t)tensor(prog.arrays[i]).size()};
    }
    for (size_t i = 0; i < spans.size() && restrict_ok; ++i)
      for (size_t j = i + 1; j < spans.size() && restrict_ok; ++j)
        if (spans[i].first < spans[j].second &&
            spans[j].first < spans[i].second)
          restrict_ok = false;
  }

  if (jit_ok && tp.native) {
    int state = tp.native->state.load(std::memory_order_acquire);
    if (state == NativeProgram::kFailed) {
      // No host compiler (or a build error): pin this program to Tier 0.
      tp.native_failed = true;
      tp.native.reset();
    } else if (state == NativeProgram::kReady && restrict_ok) {
      cg::MapNativeFn fn = tp.native->fn;
      std::vector<double*> bases(arrays.size());
      for (size_t i = 0; i < arrays.size(); ++i) bases[i] = arrays[i].base;
      ++native_launches_;
      *tier_used = 1;
      tp.tier_reached = 1;
      std::atomic<int64_t> guard_err{0};
      std::atomic<bool> cancelled{false};
      int chunks = parallel ? plan_chunks(tp, 1, iters) : 1;
      int64_t t0 = obs::now_ns();
      if (!parallel || chunks <= 1) {
        int64_t e = 0;
        if (prog.splittable) {
          fn(bases.data(), symvals.data(), begin, end, &e);
        } else {
          fn(bases.data(), symvals.data(), 0, 0, &e);
        }
        if (e) guard_err.store(e, std::memory_order_relaxed);
      } else {
        ThreadPool::global().parallel_for(
            iters, chunks, [&](int64_t lo, int64_t hi) {
              // Cooperative cancellation between chunks: skip remaining
              // work, leave buffers intact, report after the barrier.
              if (opts_.cancel_check &&
                  (cancelled.load(std::memory_order_relaxed) ||
                   opts_.cancel_check())) {
                cancelled.store(true, std::memory_order_relaxed);
                return;
              }
              int64_t e = 0;
              fn(bases.data(), symvals.data(), begin + lo * step,
                 begin + hi * step, &e);
              if (e) guard_err.store(e, std::memory_order_relaxed);
            });
      }
      update_cost(tp, 1, iters, obs::now_ns() - t0);
      if (cancelled.load(std::memory_order_relaxed)) {
        throw err("cancelled: map '", me->name, "' abandoned mid-dispatch");
      }
      if (!tp.plan_reported && obs::enabled()) {
        tp.plan_reported = true;
        cg::KernelPlan plan;
        if (prog.kernel_plan) plan = cg::plan_kernel(prog);
        int jam = 1, unroll = 1;
        size_t sinks = 0;
        for (const auto& l : plan.loops) {
          jam = std::max(jam, l.jam);
          unroll = std::max(unroll, l.unroll);
          sinks += l.sinks.size();
        }
        std::ostringstream a;
        a << "{\"map\":\"" << diag::json_escape(me->name) << "\",\"plan\":\""
          << plan.describe() << "\",\"jam\":" << jam
          << ",\"unroll\":" << unroll << ",\"sinks\":" << sinks
          << ",\"chunks\":" << chunks << ",\"ns_per_iter\":"
          << tp.ns_per_iter[1] << "}";
        obs::instant("tier", "kernel-plan", a.str());
      }
      if (int64_t e = guard_err.load(std::memory_order_relaxed)) {
        throw err("map guard: out-of-range access on array '",
                  prog.arrays[(size_t)(e - 1)], "' in map '", me->name, "'");
      }
      return;
    }
    // Still compiling (or aliased buffers this launch): interpret below.
  }

  VMStats* stats = opts_.collect_stats ? &stats_ : nullptr;
  int64_t t0 = obs::now_ns();
  if (!parallel) {
    if (prog.splittable) {
      vm_run(prog, arrays, symvals, begin, end, stats);
    } else {
      vm_run(prog, arrays, symvals, 0, 0, stats);
    }
    update_cost(tp, 0, iters, obs::now_ns() - t0);
    return;
  }
  // Guard traps inside worker threads must not unwind through the pool;
  // capture the first error and rethrow on the calling thread.
  std::mutex stats_mu;
  std::string guard_msg;
  std::atomic<bool> cancelled{false};
  int chunks = plan_chunks(tp, 0, iters);
  ThreadPool::global().parallel_for(
      iters, chunks, [&](int64_t lo, int64_t hi) {
        if (opts_.cancel_check &&
            (cancelled.load(std::memory_order_relaxed) ||
             opts_.cancel_check())) {
          cancelled.store(true, std::memory_order_relaxed);
          return;
        }
        VMStats local;
        try {
          vm_run(prog, arrays, symvals, begin + lo * step, begin + hi * step,
                 stats ? &local : nullptr);
        } catch (const std::exception& ex) {
          std::lock_guard<std::mutex> lk(stats_mu);
          if (guard_msg.empty()) guard_msg = ex.what();
        }
        if (stats) {
          std::lock_guard<std::mutex> lk(stats_mu);
          *stats += local;
        }
      });
  update_cost(tp, 0, iters, obs::now_ns() - t0);
  if (!guard_msg.empty()) throw err(guard_msg);
  if (cancelled.load(std::memory_order_relaxed)) {
    throw err("cancelled: map '", me->name, "' abandoned mid-dispatch");
  }
}

void Executor::execute_library(const ir::State& st, int node) {
  const auto* l = st.node_as<const ir::LibraryNode>(node);
  const LibraryHandler* h = LibraryRegistry::global().find(l->op);
  DACE_CHECK(h != nullptr, "executor: no implementation for library node '",
             l->op, "'");
  ++library_calls_;
  (*h)(*this, st, node);
}

void Executor::execute_nested(const ir::State& st, int node) {
  const auto* nn = st.node_as<const ir::NestedSDFGNode>(node);
  int sid = sdfg_.state_id(&st);
  auto key = std::make_pair(sid, node);
  auto it = children_.find(key);
  if (it == children_.end()) {
    auto child = std::make_unique<Executor>(*nn->sdfg, opts_);
    child->comm_context = comm_context;
    it = children_.emplace(key, std::move(child)).first;
  }
  Executor& child = *it->second;
  child.comm_context = comm_context;

  Bindings child_args;
  for (const auto* e : st.in_edges(node)) {
    if (e->memlet.empty()) continue;
    child_args.emplace(e->dst_conn, view(e->memlet));
  }
  for (const auto* e : st.out_edges(node)) {
    if (e->memlet.empty()) continue;
    if (!child_args.count(e->src_conn))
      child_args.emplace(e->src_conn, view(e->memlet));
  }
  sym::SymbolMap child_syms = syms_;
  for (const auto& [k, v] : nn->symbol_mapping) child_syms[k] = eval(v);
  child.run(child_args, child_syms);
  stats_ += child.stats();
}

void execute(const ir::SDFG& sdfg, Bindings& args,
             const sym::SymbolMap& symbols, ExecutorOptions opts) {
  Executor ex(sdfg, opts);
  ex.run(args, symbols);
}

}  // namespace dace::rt
