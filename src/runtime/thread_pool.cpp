#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace dace::rt {

thread_local bool ThreadPool::in_parallel_region_ = false;

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(std::max(1, num_threads)) {
  // Worker 0 is the calling thread; spawn the rest.
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop(int index) {
  uint64_t seen = 0;
  for (;;) {
    function_ref<void(int)> job;
    {
      std::unique_lock<std::mutex> lk(mu_);
      // Generations dispatched to fewer workers than the pool holds are
      // acknowledged (seen advances) without running the job or touching
      // pending_ -- spectator workers go straight back to sleep.
      cv_start_.wait(lk, [&] {
        while (!stop_ && generation_ != seen && index >= active_)
          seen = generation_;
        return stop_ || generation_ != seen;
      });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    in_parallel_region_ = true;
    job(index);
    in_parallel_region_ = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--pending_ == 0) cv_done_.notify_all();
    }
  }
}

void ThreadPool::run_on(int k, function_ref<void(int)> body) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = body;
    active_ = k;
    pending_ = k - 1;
    ++generation_;
  }
  cv_start_.notify_all();
  in_parallel_region_ = true;
  body(0);
  in_parallel_region_ = false;
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] { return pending_ == 0; });
}

void ThreadPool::run_on_all(function_ref<void(int)> body) {
  if (num_threads_ == 1 || in_parallel_region_) {
    for (int i = 0; i < num_threads_; ++i) body(i);
    return;
  }
  run_on(num_threads_, body);
}

void ThreadPool::parallel_for(int64_t n, int chunks,
                              function_ref<void(int64_t, int64_t)> body) {
  if (n <= 0) return;
  chunks = (int)std::min<int64_t>(chunks, n);  // never an empty range
  chunks = std::min(chunks, num_threads_);
  if (chunks <= 1 || num_threads_ == 1 || in_parallel_region_) {
    body(0, n);
    return;
  }
  // Balanced split: the first n % chunks ranges get one extra iteration,
  // so range sizes differ by at most one and none is empty.
  int64_t q = n / chunks, r = n % chunks;
  run_on(chunks, [&](int w) {
    int64_t b = w * q + std::min<int64_t>(w, r);
    int64_t e = b + q + (w < r ? 1 : 0);
    body(b, e);
  });
}

void ThreadPool::parallel_for(int64_t n,
                              function_ref<void(int64_t, int64_t)> body) {
  if (n <= 0) return;
  if (n < 2 * num_threads_) {  // historical inline threshold
    body(0, n);
    return;
  }
  parallel_for(n, num_threads_, body);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("DACEPP_NUM_THREADS")) {
      int v = std::atoi(env);
      if (v > 0) return v;
    }
    unsigned hc = std::thread::hardware_concurrency();
    return hc > 0 ? static_cast<int>(hc) : 1;
  }());
  return pool;
}

}  // namespace dace::rt
