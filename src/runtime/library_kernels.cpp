// Built-in library node implementations (Section 3.2).
//
// These are the "fast library call" expansions of the specialization
// priority list: MatMul dispatches to the blocked native GEMM of
// tensor_ops (standing in for MKL), Reduce to the native reductions.
// Additional expansions (PBLAS, comm::*, device-specific) are registered
// by their modules.
#include "runtime/executor.hpp"
#include "runtime/tensor_ops.hpp"

namespace dace::rt {

namespace {

const ir::Edge* edge_by_dst_conn(const ir::State& st, int node,
                                 const std::string& conn) {
  for (const auto* e : st.in_edges(node)) {
    if (e->dst_conn == conn) return e;
  }
  throw err("library: missing input connector '", conn, "'");
}

const ir::Edge* edge_by_src_conn(const ir::State& st, int node,
                                 const std::string& conn) {
  for (const auto* e : st.out_edges(node)) {
    if (e->src_conn == conn) return e;
  }
  throw err("library: missing output connector '", conn, "'");
}

std::string attr_or(const ir::LibraryNode& l, const std::string& key,
                    const std::string& fallback) {
  auto it = l.attrs.find(key);
  return it == l.attrs.end() ? fallback : it->second;
}

void matmul_handler(Executor& ex, const ir::State& st, int node) {
  const auto* l = st.node_as<const ir::LibraryNode>(node);
  const ir::Edge* ea = edge_by_dst_conn(st, node, "_a");
  const ir::Edge* eb = edge_by_dst_conn(st, node, "_b");
  const ir::Edge* ec = edge_by_src_conn(st, node, "_c");
  Tensor a = ex.view(ea->memlet, attr_or(*l, "viewdims_a", ""));
  Tensor b = ex.view(eb->memlet, attr_or(*l, "viewdims_b", ""));
  Tensor out = ex.view(ec->memlet);
  Tensor res = ops::matmul(a, b);
  out.assign_from(res);
  // Account FLOPs in the executor statistics (2mnk).
  int64_t m = a.rank() == 2 ? a.shape()[0] : 1;
  int64_t k = a.rank() == 2 ? a.shape()[1] : a.shape()[0];
  int64_t n = b.rank() == 2 ? b.shape()[1] : 1;
  ex.stats().flops += 2 * m * n * k;
  ex.stats().loads += m * k + k * n;
  ex.stats().stores += m * n;
}

void reduce_handler(Executor& ex, const ir::State& st, int node) {
  const auto* l = st.node_as<const ir::LibraryNode>(node);
  const ir::Edge* ein = edge_by_dst_conn(st, node, "_in");
  const ir::Edge* eout = edge_by_src_conn(st, node, "_out");
  Tensor in = ex.view(ein->memlet, attr_or(*l, "viewdims_in", ""));
  Tensor out = ex.view(eout->memlet);
  std::string op = attr_or(*l, "op", "sum");
  auto axis_it = l->attrs.find("axis");
  if (axis_it != l->attrs.end()) {
    int axis = std::stoi(axis_it->second);
    if (axis < 0) axis += (int)in.rank();
    DACE_CHECK(op == "sum", "library: axis reduction supports sum only");
    out.assign_from(ops::sum_axis(in, axis));
  } else {
    double v;
    if (op == "sum") {
      v = ops::sum_all(in);
    } else if (op == "max") {
      v = ops::max_all(in);
    } else if (op == "min") {
      v = ops::min_all(in);
    } else {
      throw err("library: unknown reduction '", op, "'");
    }
    out.set_flat(0, v);
  }
  ex.stats().flops += in.size();
  ex.stats().loads += in.size();
  ex.stats().stores += out.size();
}

}  // namespace

namespace detail {
void register_builtin_kernels(LibraryRegistry& reg) {
  reg.register_op("MatMul", matmul_handler);
  reg.register_op("Reduce", reduce_handler);
}
}  // namespace detail

}  // namespace dace::rt
