#include "runtime/bytecode.hpp"

#include <atomic>
#include <cmath>
#include <sstream>

#include "common/common.hpp"
#include "runtime/tensor.hpp"

namespace dace::rt {

namespace {

int64_t floordiv_i64(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

double fmod_py(double a, double b) {
  double r = std::fmod(a, b);
  if (r != 0 && ((r < 0) != (b < 0))) r += b;
  return r;
}

void atomic_wcr(double* addr, double v, int kind) {
  std::atomic_ref<double> ref(*addr);
  double cur = ref.load(std::memory_order_relaxed);
  for (;;) {
    double next;
    switch (kind) {
      case 1: next = cur + v; break;
      case 2: next = cur * v; break;
      case 3: next = std::min(cur, v); break;
      default: next = std::max(cur, v); break;
    }
    if (ref.compare_exchange_weak(cur, next, std::memory_order_relaxed))
      return;
  }
}

}  // namespace

void vm_run(const Program& prog, const std::vector<ArrayRef>& arrays,
            const std::vector<int64_t>& syms, int64_t lo, int64_t hi,
            VMStats* stats) {
  std::vector<int64_t> ir(static_cast<size_t>(prog.n_iregs), 0);
  std::vector<double> fr(static_cast<size_t>(prog.n_fregs), 0.0);
  if (prog.splittable && prog.n_iregs >= 2) {
    ir[0] = lo;
    ir[1] = hi;
  }
  VMStats local;
  const Instr* code = prog.code.data();
  size_t pc = 0;
  for (;;) {
    const Instr& in = code[pc];
    ++local.instrs;
    switch (in.op) {
      case Op::IConst: ir[in.a] = in.imm; break;
      case Op::ISym: ir[in.a] = syms[static_cast<size_t>(in.imm)]; break;
      case Op::IMov: ir[in.a] = ir[in.b]; break;
      case Op::IAdd: ir[in.a] = ir[in.b] + ir[in.c]; break;
      case Op::ISub: ir[in.a] = ir[in.b] - ir[in.c]; break;
      case Op::IMul: ir[in.a] = ir[in.b] * ir[in.c]; break;
      case Op::IFloorDiv: ir[in.a] = floordiv_i64(ir[in.b], ir[in.c]); break;
      case Op::IMod:
        ir[in.a] = ir[in.b] - floordiv_i64(ir[in.b], ir[in.c]) * ir[in.c];
        break;
      case Op::IMin: ir[in.a] = std::min(ir[in.b], ir[in.c]); break;
      case Op::IMax: ir[in.a] = std::max(ir[in.b], ir[in.c]); break;
      case Op::Jmp: pc = static_cast<size_t>(in.imm); continue;
      case Op::JGe:
        if (ir[in.a] >= ir[in.b]) {
          pc = static_cast<size_t>(in.imm);
          continue;
        }
        break;
      case Op::FConst: fr[in.a] = in.fimm; break;
      case Op::FSym:
        fr[in.a] = static_cast<double>(syms[static_cast<size_t>(in.imm)]);
        break;
      case Op::FFromI: fr[in.a] = static_cast<double>(ir[in.b]); break;
      case Op::Load:
        fr[in.a] = arrays[static_cast<size_t>(in.imm)].base[ir[in.b]];
        ++local.loads;
        break;
      case Op::Store: {
        const ArrayRef& ar = arrays[static_cast<size_t>(in.imm)];
        ar.base[ir[in.b]] = cast_to(ar.dtype, fr[in.a]);
        ++local.stores;
        break;
      }
      case Op::StoreWcr: {
        const ArrayRef& ar = arrays[static_cast<size_t>(in.imm)];
        double* addr = ar.base + ir[in.b];
        double v = fr[in.a];
        if (in.flag) {
          atomic_wcr(addr, v, in.c);
        } else {
          switch (in.c) {
            case 1: *addr += v; break;
            case 2: *addr *= v; break;
            case 3: *addr = std::min(*addr, v); break;
            default: *addr = std::max(*addr, v); break;
          }
        }
        ++local.wcr_stores;
        break;
      }
      case Op::FAdd: fr[in.a] = fr[in.b] + fr[in.c]; ++local.flops; break;
      case Op::FSub: fr[in.a] = fr[in.b] - fr[in.c]; ++local.flops; break;
      case Op::FMul: fr[in.a] = fr[in.b] * fr[in.c]; ++local.flops; break;
      case Op::FDiv: fr[in.a] = fr[in.b] / fr[in.c]; ++local.flops; break;
      case Op::FPow:
        fr[in.a] = std::pow(fr[in.b], fr[in.c]);
        ++local.flops;
        break;
      case Op::FMod:
        fr[in.a] = fmod_py(fr[in.b], fr[in.c]);
        ++local.flops;
        break;
      case Op::FMin: fr[in.a] = std::min(fr[in.b], fr[in.c]); ++local.flops; break;
      case Op::FMax: fr[in.a] = std::max(fr[in.b], fr[in.c]); ++local.flops; break;
      case Op::FLt: fr[in.a] = fr[in.b] < fr[in.c] ? 1.0 : 0.0; break;
      case Op::FLe: fr[in.a] = fr[in.b] <= fr[in.c] ? 1.0 : 0.0; break;
      case Op::FGt: fr[in.a] = fr[in.b] > fr[in.c] ? 1.0 : 0.0; break;
      case Op::FGe: fr[in.a] = fr[in.b] >= fr[in.c] ? 1.0 : 0.0; break;
      case Op::FEq: fr[in.a] = fr[in.b] == fr[in.c] ? 1.0 : 0.0; break;
      case Op::FNe: fr[in.a] = fr[in.b] != fr[in.c] ? 1.0 : 0.0; break;
      case Op::FAnd:
        fr[in.a] = (fr[in.b] != 0 && fr[in.c] != 0) ? 1.0 : 0.0;
        break;
      case Op::FOr:
        fr[in.a] = (fr[in.b] != 0 || fr[in.c] != 0) ? 1.0 : 0.0;
        break;
      case Op::FNeg: fr[in.a] = -fr[in.b]; ++local.flops; break;
      case Op::FAbs: fr[in.a] = std::abs(fr[in.b]); ++local.flops; break;
      case Op::FExp: fr[in.a] = std::exp(fr[in.b]); ++local.flops; break;
      case Op::FLog: fr[in.a] = std::log(fr[in.b]); ++local.flops; break;
      case Op::FSqrt: fr[in.a] = std::sqrt(fr[in.b]); ++local.flops; break;
      case Op::FSin: fr[in.a] = std::sin(fr[in.b]); ++local.flops; break;
      case Op::FCos: fr[in.a] = std::cos(fr[in.b]); ++local.flops; break;
      case Op::FTanh: fr[in.a] = std::tanh(fr[in.b]); ++local.flops; break;
      case Op::FFloor: fr[in.a] = std::floor(fr[in.b]); ++local.flops; break;
      case Op::FNot: fr[in.a] = fr[in.b] == 0 ? 1.0 : 0.0; break;
      case Op::FSelect:
        fr[in.a] = fr[in.b] != 0 ? fr[in.c] : fr[static_cast<size_t>(in.imm)];
        break;
      case Op::Guard:
        if (ir[in.a] < 0 || ir[in.a] >= ir[in.b]) {
          throw err("map guard: flat index ", ir[in.a],
                    " outside [0, ", ir[in.b], ") for array '",
                    prog.arrays[static_cast<size_t>(in.imm)], "'");
        }
        break;
      case Op::Halt:
        if (stats) *stats += local;
        return;
    }
    ++pc;
  }
}

std::string Program::disassemble() const {
  static const char* names[] = {
      "iconst", "isym", "imov", "iadd", "isub", "imul", "ifloordiv", "imod",
      "imin", "imax", "jmp", "jge", "fconst", "fsym", "ffromi", "load",
      "store", "storewcr", "fadd", "fsub", "fmul", "fdiv", "fpow", "fmod",
      "fmin", "fmax", "flt", "fle", "fgt", "fge", "feq", "fne", "fand",
      "for", "fneg", "fabs", "fexp", "flog", "fsqrt", "fsin", "fcos",
      "ftanh", "ffloor", "fnot", "fselect", "guard", "halt"};
  std::ostringstream os;
  for (size_t i = 0; i < code.size(); ++i) {
    const Instr& in = code[i];
    os << i << ": " << names[static_cast<int>(in.op)] << " a=" << in.a
       << " b=" << in.b << " c=" << in.c << " imm=" << in.imm;
    if (in.op == Op::FConst) os << " f=" << in.fimm;
    os << "\n";
  }
  return os.str();
}

uint64_t Program::hash() const {
  // FNV-1a over the semantically meaningful fields (never the raw struct
  // bytes -- padding would leak indeterminate values into the key).
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<uint64_t>(code.size()));
  for (const Instr& in : code) {
    mix(static_cast<uint64_t>(in.op) | (uint64_t)in.a << 8 |
        (uint64_t)in.b << 24 | (uint64_t)in.c << 40 | (uint64_t)in.flag << 56);
    mix(static_cast<uint64_t>(in.imm));
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(in.fimm));
    __builtin_memcpy(&bits, &in.fimm, sizeof(bits));
    mix(bits);
  }
  mix(static_cast<uint64_t>(n_iregs));
  mix(static_cast<uint64_t>(n_fregs));
  mix(static_cast<uint64_t>(arrays.size()));
  mix(static_cast<uint64_t>(symbols.size()));
  mix(splittable ? 1 : 0);
  // The absint-derived codegen flags change the generated Tier-1 source,
  // so they must key the native cache too.
  mix((use_restrict ? 1 : 0) | (vec_innermost ? 2 : 0) |
      (kernel_plan ? 4 : 0));
  return h;
}

}  // namespace dace::rt
