// Stack-free register bytecode for map scopes.
//
// The SDFG executor compiles each top-level map scope (tasklets, inner
// scalar transients, nested sequential maps, symbolic memlet indices) into
// a small register program executed by a switch-dispatch VM.  Loops are
// real instructions, so a whole fused stencil body is one program invoked
// once per state execution.  The outermost loop's bounds live in reserved
// integer registers so CPU-parallel schedules can split the domain across
// worker threads (OpenMP-style static worksharing).
//
// Integer registers hold indices/symbols; floating registers hold values
// (all arithmetic in double; stores cast to the container dtype).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/types.hpp"

namespace dace::rt {

enum class Op : uint8_t {
  // integer
  IConst,   // i[a] = imm
  ISym,     // i[a] = symbol_slot[imm]
  IMov,     // i[a] = i[b]
  IAdd, ISub, IMul, IFloorDiv, IMod, IMin, IMax,  // i[a] = i[b] . i[c]
  // control flow
  Jmp,      // goto imm
  JGe,      // if i[a] >= i[b] goto imm
  // float
  FConst,   // f[a] = fimm
  FSym,     // f[a] = (double)symbol_slot[imm]
  FFromI,   // f[a] = (double)i[b]
  Load,     // f[a] = array[imm][i[b]]
  Store,    // array[imm][i[b]] = cast(f[a])
  StoreWcr, // array[imm][i[b]] .wcr= f[a]; c = wcr kind; flag = atomic
  FAdd, FSub, FMul, FDiv, FPow, FMod, FMin, FMax,        // f[a] = f[b] . f[c]
  FLt, FLe, FGt, FGe, FEq, FNe, FAnd, FOr,
  FNeg, FAbs, FExp, FLog, FSqrt, FSin, FCos, FTanh, FFloor, FNot,  // f[a]=.f[b]
  FSelect,  // f[a] = f[b] != 0 ? f[c] : f[imm]
  Guard,    // trap unless 0 <= i[a] < i[b]; imm = array slot (diagnostics)
  Halt,
};

struct Instr {
  Op op = Op::Halt;
  uint16_t a = 0, b = 0, c = 0;
  uint8_t flag = 0;
  int64_t imm = 0;
  double fimm = 0;
};

/// Runtime binding of one array slot.
struct ArrayRef {
  double* base = nullptr;
  ir::DType dtype = ir::DType::f64;
};

/// Execution statistics used by the device cost models.
struct VMStats {
  uint64_t flops = 0;       // arithmetic float instructions
  uint64_t loads = 0;
  uint64_t stores = 0;
  uint64_t wcr_stores = 0;
  uint64_t instrs = 0;      // dispatched VM instructions

  VMStats& operator+=(const VMStats& o) {
    flops += o.flops;
    loads += o.loads;
    stores += o.stores;
    wcr_stores += o.wcr_stores;
    instrs += o.instrs;
    return *this;
  }
};

struct Program {
  std::vector<Instr> code;
  int n_iregs = 0;
  int n_fregs = 0;
  std::vector<std::string> arrays;   // slot -> container name
  std::vector<std::string> symbols;  // slot -> symbol name
  // When splittable, i[0]/i[1] are the outer loop's begin/end, set by the
  // caller per chunk; the compiled code reads rather than computes them.
  bool splittable = false;
  // Set by the map compiler from interval-analysis facts (absint):
  // use_restrict asserts the array slots bind non-overlapping buffers in
  // Tier-1 code (the executor verifies at dispatch time and falls back to
  // the VM on overlap); vec_innermost marks the innermost loop free of
  // loop-carried dependences, letting codegen emit a structured
  // vectorizable loop.
  bool use_restrict = false;
  bool vec_innermost = false;
  // Kernel planning (cg::plan_kernel) is applied to this program's Tier-1
  // emission: structured loops, WCR register sinking, unroll-and-jam.
  // Mirrors DACE_KERNEL_PLAN at compile time and keys the native cache so
  // plan-on and plan-off builds coexist.
  bool kernel_plan = false;

  int array_slot(const std::string& name) {
    for (size_t i = 0; i < arrays.size(); ++i) {
      if (arrays[i] == name) return (int)i;
    }
    arrays.push_back(name);
    return (int)arrays.size() - 1;
  }
  int symbol_slot(const std::string& name) {
    for (size_t i = 0; i < symbols.size(); ++i) {
      if (symbols[i] == name) return (int)i;
    }
    symbols.push_back(name);
    return (int)symbols.size() - 1;
  }
  std::string disassemble() const;

  /// Stable fingerprint of the instruction stream and register/slot
  /// layout.  Two programs with equal hashes execute identically for the
  /// same runtime bindings; the native tier keys its code cache on this
  /// (combined with the bound array dtypes).
  uint64_t hash() const;
};

/// Execute `prog`. `arrays`/`syms` are indexed by the program's slots.
/// For splittable programs the caller presets i0/i1 via lo/hi.
void vm_run(const Program& prog, const std::vector<ArrayRef>& arrays,
            const std::vector<int64_t>& syms, int64_t lo, int64_t hi,
            VMStats* stats);

}  // namespace dace::rt
