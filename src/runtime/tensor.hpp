// NumPy-like dense tensor container.
//
// The runtime value type of DaCe++: an N-dimensional strided view over a
// shared element buffer, supporting zero-copy slicing like NumPy arrays.
// Elements are stored as doubles regardless of the declared dtype; dtypes
// narrower than f64 round on store (f32) or truncate (integers), emulating
// NumPy casting behaviour while keeping a single fast arithmetic path.
// This is the data container of every backend, including the simulated
// GPU/FPGA devices and the per-rank heaps of the distributed runtime.
#pragma once

#include <cmath>
#include <memory>
#include <vector>

#include "common/common.hpp"
#include "ir/types.hpp"

namespace dace::rt {

using ir::DType;

/// Round a double to the representable value of a dtype.
inline double cast_to(DType t, double v) {
  switch (t) {
    case DType::f64: return v;
    case DType::f32: return static_cast<double>(static_cast<float>(v));
    case DType::i64: return static_cast<double>(static_cast<int64_t>(v));
    case DType::i32: return static_cast<double>(static_cast<int32_t>(v));
    case DType::b8: return v != 0.0 ? 1.0 : 0.0;
  }
  return v;
}

class Tensor {
 public:
  /// Empty scalar (rank 0) of f64, value 0.
  Tensor() : Tensor(DType::f64, {}) {}

  /// Allocate a zero-initialized tensor.
  Tensor(DType dtype, std::vector<int64_t> shape);

  static Tensor scalar(double v, DType dtype = DType::f64) {
    Tensor t(dtype, {});
    t.at({}) = cast_to(dtype, v);
    return t;
  }

  static Tensor from_values(std::vector<int64_t> shape,
                            std::vector<double> values,
                            DType dtype = DType::f64);

  DType dtype() const { return dtype_; }
  const std::vector<int64_t>& shape() const { return shape_; }
  const std::vector<int64_t>& strides() const { return strides_; }
  size_t rank() const { return shape_.size(); }
  int64_t size() const;  // number of elements
  bool is_scalar() const { return shape_.empty(); }

  /// True if laid out contiguously in row-major order.
  bool contiguous() const;

  /// Raw element pointer at the view offset. Valid for direct indexing
  /// only when contiguous().
  double* data() { return buffer_->data() + offset_; }
  const double* data() const { return buffer_->data() + offset_; }

  /// Element access with multi-dimensional index (bounds-checked).
  double& at(const std::vector<int64_t>& idx);
  double at(const std::vector<int64_t>& idx) const;

  /// Flat element access honoring strides (index in logical order).
  double get_flat(int64_t i) const;
  void set_flat(int64_t i, double v);

  /// Scalar value of a rank-0 or single-element tensor.
  double value() const;

  /// Zero-copy slice: per-dimension [begin, end) with step.
  /// Dimensions listed in `drop` (single-index dims) are removed.
  Tensor slice(const std::vector<int64_t>& begin,
               const std::vector<int64_t>& end,
               const std::vector<int64_t>& step,
               const std::vector<bool>& drop = {}) const;

  /// Zero-copy transpose (reverses dims, or applies permutation).
  Tensor transpose() const;
  Tensor transpose(const std::vector<size_t>& perm) const;

  /// Zero-copy reshape; requires contiguity.
  Tensor reshape(std::vector<int64_t> new_shape) const;

  /// Deep copy into a fresh contiguous buffer (keeps dtype).
  Tensor copy() const;
  /// Deep copy with a different dtype (values re-cast).
  Tensor astype(DType t) const;

  /// Copy all elements from `src` (same shape) into this view.
  void assign_from(const Tensor& src);
  /// Fill with a constant (cast to dtype).
  void fill(double v);

  /// True if this view aliases the same buffer as `other`.
  bool same_buffer(const Tensor& other) const {
    return buffer_ == other.buffer_;
  }

  std::string to_string(int64_t max_elems = 32) const;

 private:
  DType dtype_ = DType::f64;
  std::vector<int64_t> shape_;
  std::vector<int64_t> strides_;  // in elements
  int64_t offset_ = 0;
  std::shared_ptr<std::vector<double>> buffer_;
};

/// Max |a-b| over all elements (shape must match); for test assertions.
double max_abs_diff(const Tensor& a, const Tensor& b);
/// Relative error with absolute floor; for test assertions.
bool allclose(const Tensor& a, const Tensor& b, double rtol = 1e-9,
              double atol = 1e-9);

}  // namespace dace::rt
