#include "runtime/tensor_ops.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/thread_pool.hpp"

namespace dace::rt::ops {

DType promote(DType a, DType b) {
  auto rank = [](DType t) {
    switch (t) {
      case DType::b8: return 0;
      case DType::i32: return 1;
      case DType::i64: return 2;
      case DType::f32: return 3;
      case DType::f64: return 4;
    }
    return 4;
  };
  return rank(a) >= rank(b) ? a : b;
}

std::vector<int64_t> broadcast_shapes(const std::vector<int64_t>& a,
                                      const std::vector<int64_t>& b) {
  size_t r = std::max(a.size(), b.size());
  std::vector<int64_t> out(r, 1);
  for (size_t i = 0; i < r; ++i) {
    int64_t da = i < a.size() ? a[a.size() - 1 - i] : 1;
    int64_t db = i < b.size() ? b[b.size() - 1 - i] : 1;
    DACE_CHECK(da == db || da == 1 || db == 1,
               "broadcast: incompatible dims ", da, " vs ", db);
    out[r - 1 - i] = std::max(da, db);
  }
  return out;
}

namespace {

// Iterate a broadcast binary op. Fast path when both operands are
// contiguous and shapes match exactly.
template <typename F>
Tensor apply_binary(const Tensor& a, const Tensor& b, F&& f) {
  std::vector<int64_t> shape = broadcast_shapes(a.shape(), b.shape());
  Tensor out(promote(a.dtype(), b.dtype()), shape);
  int64_t n = out.size();
  if (a.shape() == shape && b.shape() == shape && a.contiguous() &&
      b.contiguous()) {
    const double* pa = a.data();
    const double* pb = b.data();
    double* po = out.data();
    DType dt = out.dtype();
    if (dt == DType::f64) {
      ThreadPool::global().parallel_for(n, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) po[i] = f(pa[i], pb[i]);
      });
    } else {
      ThreadPool::global().parallel_for(n, [&](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) po[i] = cast_to(dt, f(pa[i], pb[i]));
      });
    }
    return out;
  }
  // General broadcast path.
  size_t r = shape.size();
  std::vector<int64_t> sa(r, 0), sb(r, 0);
  for (size_t i = 0; i < r; ++i) {
    size_t ia = a.rank() + i, ib = b.rank() + i;
    if (ia >= r) {
      size_t d = ia - r;
      sa[i] = (a.shape()[d] == 1) ? 0 : a.strides()[d];
    }
    if (ib >= r) {
      size_t d = ib - r;
      sb[i] = (b.shape()[d] == 1) ? 0 : b.strides()[d];
    }
  }
  const double* pa = a.data();
  const double* pb = b.data();
  DType dt = out.dtype();
  std::vector<int64_t> idx(r, 0);
  for (int64_t i = 0; i < n; ++i) {
    int64_t oa = 0, ob = 0;
    int64_t rem = i;
    for (size_t d = r; d-- > 0;) {
      int64_t id = rem % shape[d];
      rem /= shape[d];
      oa += id * sa[d];
      ob += id * sb[d];
    }
    out.set_flat(i, cast_to(dt, f(pa[oa], pb[ob])));
  }
  return out;
}

template <typename F>
Tensor apply_unary(const Tensor& a, F&& f) {
  Tensor out(a.dtype(), a.shape());
  int64_t n = out.size();
  if (a.contiguous()) {
    const double* pa = a.data();
    double* po = out.data();
    DType dt = out.dtype();
    ThreadPool::global().parallel_for(n, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = cast_to(dt, f(pa[i]));
    });
    return out;
  }
  for (int64_t i = 0; i < n; ++i) out.set_flat(i, f(a.get_flat(i)));
  return out;
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return apply_binary(a, b, [](double x, double y) { return x + y; });
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return apply_binary(a, b, [](double x, double y) { return x - y; });
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return apply_binary(a, b, [](double x, double y) { return x * y; });
}
Tensor div(const Tensor& a, const Tensor& b) {
  return apply_binary(a, b, [](double x, double y) { return x / y; });
}
Tensor pow(const Tensor& a, const Tensor& b) {
  return apply_binary(a, b, [](double x, double y) { return std::pow(x, y); });
}
Tensor minimum(const Tensor& a, const Tensor& b) {
  return apply_binary(a, b, [](double x, double y) { return std::min(x, y); });
}
Tensor maximum(const Tensor& a, const Tensor& b) {
  return apply_binary(a, b, [](double x, double y) { return std::max(x, y); });
}

Tensor neg(const Tensor& a) {
  return apply_unary(a, [](double x) { return -x; });
}
Tensor exp(const Tensor& a) {
  return apply_unary(a, [](double x) { return std::exp(x); });
}
Tensor log(const Tensor& a) {
  return apply_unary(a, [](double x) { return std::log(x); });
}
Tensor sqrt(const Tensor& a) {
  return apply_unary(a, [](double x) { return std::sqrt(x); });
}
Tensor abs(const Tensor& a) {
  return apply_unary(a, [](double x) { return std::abs(x); });
}
Tensor sin(const Tensor& a) {
  return apply_unary(a, [](double x) { return std::sin(x); });
}
Tensor cos(const Tensor& a) {
  return apply_unary(a, [](double x) { return std::cos(x); });
}
Tensor tanh(const Tensor& a) {
  return apply_unary(a, [](double x) { return std::tanh(x); });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  DType dt = promote(a.dtype(), b.dtype());
  if (a.rank() == 1 && b.rank() == 1) return Tensor::scalar(dot(a, b), dt);
  if (a.rank() == 2 && b.rank() == 1) {
    DACE_CHECK(a.shape()[1] == b.shape()[0], "matmul: shape mismatch");
    int64_t m = a.shape()[0], k = a.shape()[1];
    Tensor out(dt, {m});
    Tensor ac = a.contiguous() ? a : a.copy();
    Tensor bc = b.contiguous() ? b : b.copy();
    const double* pa = ac.data();
    const double* pb = bc.data();
    double* po = out.data();
    ThreadPool::global().parallel_for(m, [&](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        double acc = 0;
        for (int64_t j = 0; j < k; ++j) acc += pa[i * k + j] * pb[j];
        po[i] = cast_to(dt, acc);
      }
    });
    return out;
  }
  if (a.rank() == 1 && b.rank() == 2) {
    DACE_CHECK(a.shape()[0] == b.shape()[0], "matmul: shape mismatch");
    return matmul(b.transpose(), a);
  }
  DACE_CHECK(a.rank() == 2 && b.rank() == 2, "matmul: unsupported ranks ",
             a.rank(), "x", b.rank());
  DACE_CHECK(a.shape()[1] == b.shape()[0], "matmul: inner dim mismatch ",
             a.shape()[1], " vs ", b.shape()[0]);
  int64_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  Tensor out(dt, {m, n});
  Tensor ac = a.contiguous() ? a : a.copy();
  Tensor bc = b.contiguous() ? b : b.copy();
  const double* pa = ac.data();
  const double* pb = bc.data();
  double* po = out.data();
  // Blocked i-k-j loop ordering: streaming access on B and C.
  constexpr int64_t BK = 64;
  ThreadPool::global().parallel_for(m, [&](int64_t lo, int64_t hi) {
    for (int64_t kk = 0; kk < k; kk += BK) {
      int64_t kend = std::min(k, kk + BK);
      for (int64_t i = lo; i < hi; ++i) {
        double* ci = po + i * n;
        for (int64_t l = kk; l < kend; ++l) {
          double av = pa[i * k + l];
          const double* bl = pb + l * n;
          for (int64_t j = 0; j < n; ++j) ci[j] += av * bl[j];
        }
      }
    }
  });
  if (dt != DType::f64) {
    for (int64_t i = 0; i < out.size(); ++i)
      out.set_flat(i, out.get_flat(i));
  }
  return out;
}

Tensor outer(const Tensor& a, const Tensor& b) {
  DACE_CHECK(a.rank() == 1 && b.rank() == 1, "outer: vectors required");
  int64_t m = a.shape()[0], n = b.shape()[0];
  Tensor out(promote(a.dtype(), b.dtype()), {m, n});
  double* po = out.data();
  for (int64_t i = 0; i < m; ++i) {
    double av = a.get_flat(i);
    for (int64_t j = 0; j < n; ++j) po[i * n + j] = av * b.get_flat(j);
  }
  return out;
}

double dot(const Tensor& a, const Tensor& b) {
  DACE_CHECK(a.rank() == 1 && b.rank() == 1 && a.shape() == b.shape(),
             "dot: shape mismatch");
  double acc = 0;
  for (int64_t i = 0; i < a.size(); ++i) acc += a.get_flat(i) * b.get_flat(i);
  return acc;
}

double sum_all(const Tensor& a) {
  double acc = 0;
  if (a.contiguous()) {
    const double* p = a.data();
    for (int64_t i = 0, n = a.size(); i < n; ++i) acc += p[i];
    return acc;
  }
  for (int64_t i = 0, n = a.size(); i < n; ++i) acc += a.get_flat(i);
  return acc;
}

Tensor sum_axis(const Tensor& a, int axis) {
  DACE_CHECK(axis >= 0 && axis < (int)a.rank(), "sum_axis: bad axis");
  std::vector<int64_t> oshape;
  for (size_t d = 0; d < a.rank(); ++d) {
    if ((int)d != axis) oshape.push_back(a.shape()[d]);
  }
  Tensor out(a.dtype(), oshape);
  int64_t n = out.size();
  int64_t red = a.shape()[axis];
  for (int64_t i = 0; i < n; ++i) {
    // Reconstruct multi-index of the output, insert the reduced axis.
    std::vector<int64_t> idx(a.rank(), 0);
    int64_t rem = i;
    for (size_t d = a.rank(); d-- > 0;) {
      if ((int)d == axis) continue;
      size_t od = d > (size_t)axis ? d - 1 : d;
      (void)od;
    }
    // Simpler: decode against output shape.
    rem = i;
    std::vector<int64_t> oidx(oshape.size(), 0);
    for (size_t d = oshape.size(); d-- > 0;) {
      oidx[d] = rem % oshape[d];
      rem /= oshape[d];
    }
    size_t oi = 0;
    for (size_t d = 0; d < a.rank(); ++d) {
      if ((int)d == axis) continue;
      idx[d] = oidx[oi++];
    }
    double acc = 0;
    for (int64_t r = 0; r < red; ++r) {
      idx[axis] = r;
      acc += a.at(idx);
    }
    out.set_flat(i, acc);
  }
  return out;
}

double max_all(const Tensor& a) {
  DACE_CHECK(a.size() > 0, "max_all: empty tensor");
  double m = a.get_flat(0);
  for (int64_t i = 1; i < a.size(); ++i) m = std::max(m, a.get_flat(i));
  return m;
}

double min_all(const Tensor& a) {
  DACE_CHECK(a.size() > 0, "min_all: empty tensor");
  double m = a.get_flat(0);
  for (int64_t i = 1; i < a.size(); ++i) m = std::min(m, a.get_flat(i));
  return m;
}

}  // namespace dace::rt::ops
