// SDFG executor (CPU backend).
//
// Interprets an SDFG as a state machine over interstate edges; inside each
// state, dataflow executes in topological order.  Map scopes are compiled
// once to bytecode (runtime/bytecode.hpp) and run through the VM --
// CPU-parallel schedules split the outermost dimension across the global
// thread pool.  Library nodes dispatch through an extensible registry
// (Section 3.2: library specialization); the distributed and device
// modules register additional handlers (comm::*, PBLAS, ...).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "ir/sdfg.hpp"
#include "runtime/bytecode.hpp"
#include "runtime/instrumentation.hpp"
#include "runtime/tensor.hpp"
#include "runtime/tiering.hpp"

namespace dace::rt {

class Executor;

/// Named tensor arguments of an SDFG invocation.
using Bindings = std::map<std::string, Tensor>;

/// Handler executing one library node occurrence.
using LibraryHandler =
    std::function<void(Executor&, const ir::State&, int node_id)>;

/// Registry of library-node implementations, keyed by op name.
class LibraryRegistry {
 public:
  static LibraryRegistry& global();
  void register_op(const std::string& op, LibraryHandler h);
  const LibraryHandler* find(const std::string& op) const;

 private:
  std::map<std::string, LibraryHandler> handlers_;
};

struct ExecutorOptions {
  bool parallel = true;    // honor CPU_Multicore schedules
  bool validate = true;    // validate the SDFG before first run
  bool analyze = false;    // run the static analyzer before first run and
                           // refuse to execute on error-severity findings
                           // (also enabled by DACE_VERIFY_PASSES=1)
  bool collect_stats = true;
  /// Called after each top-level map execution ("map"), library call
  /// ("library") or top-level tasklet ("tasklet") with the statistics
  /// delta it produced. Device simulators charge launch costs here.
  std::function<void(const std::string& kind, const VMStats& delta)>
      launch_hook;
  /// Called after each state finishes executing, with the state and the
  /// symbol values in effect.  The differential fuzzer uses it to check
  /// sentinel invariants (e.g. that statically-dead writes stay dead).
  std::function<void(const ir::State& st, const sym::SymbolMap& syms)>
      post_state_hook;
  /// Cooperative cancellation: polled at state boundaries, before each
  /// map dispatch, and between parallel map chunks (so it runs on pool
  /// worker threads and must be thread-safe).  Returning true aborts the
  /// run with dace::Error("cancelled: ...").  Tensors and the thread
  /// pool stay reusable after a cancelled run (sdfg-serve deadlines).
  std::function<bool()> cancel_check;
};

/// Compile a map scope into a VM program (exposed for the device
/// simulators, which reuse the compiler with their own execution policy).
Program compile_map_scope(const ir::SDFG& sdfg, const ir::State& st,
                          int entry);

class Executor {
 public:
  explicit Executor(const ir::SDFG& sdfg, ExecutorOptions opts = {});
  ~Executor();

  /// Execute with the given argument tensors and symbol values.
  /// Tensors are shared views: outputs are written in place.
  void run(Bindings& args, const sym::SymbolMap& symbols);

  // -- services for library handlers ----------------------------------------
  const ir::SDFG& sdfg() const { return sdfg_; }
  sym::SymbolMap& symbols() { return syms_; }
  /// Tensor bound to a container (argument or transient).
  Tensor& tensor(const std::string& container);
  /// Tensor view selected by a memlet (all dims kept).
  Tensor view(const ir::Memlet& m);
  /// View with dims outside `viewdims` (comma-separated container dims)
  /// dropped; those dims must have unit extent.
  Tensor view(const ir::Memlet& m, const std::string& viewdims);
  int64_t eval(const sym::Expr& e) const;

  VMStats& stats() { return stats_; }
  /// Number of top-level map executions ("kernel launches").
  int64_t map_launches() const { return map_launches_; }
  int64_t library_calls() const { return library_calls_; }
  /// Map executions dispatched to Tier-1 native code (subset of
  /// map_launches; native runs do not accumulate VMStats).
  int64_t native_launches() const { return native_launches_; }
  /// Programs promoted to Tier 1 (native compilations requested).
  int64_t native_promotions() const { return native_promotions_; }

  const ExecutorOptions& options() const { return opts_; }

  /// Per-node instrumentation observer (paper-style InstrumentationType).
  /// Non-intrusive: measuring never affects tiering decisions, unlike
  /// launch_hook (which pins maps to Tier 0 for the device cost models).
  const Instrumenter& instrumentation() const { return *inst_; }

  /// Opaque per-rank communication context used by distributed handlers.
  void* comm_context = nullptr;

 private:
  void allocate_transients();
  void notify_launch(const std::string& kind, const VMStats& before);
  VMStats stats_delta(const VMStats& before) const;
  void execute_state(const ir::State& st);
  void execute_tasklet(const ir::State& st, int node);
  /// `tier_used`/`iters_out` report which tier dispatched the map and how
  /// many outer iterations it ran (instrumentation bookkeeping).
  void execute_map(const ir::State& st, int node, int* tier_used,
                   int64_t* iters_out);
  void execute_library(const ir::State& st, int node);
  void execute_nested(const ir::State& st, int node);

  /// Per-map tiered execution state: the (optimized) Tier-0 bytecode plus
  /// promotion bookkeeping and, once hot, the shared native handle.
  struct TieredProgram {
    Program prog;
    int64_t iterations = 0;      // cumulative, drives promotion
    bool native_failed = false;  // pinned to Tier 0 after a failed build
    std::shared_ptr<NativeProgram> native;
    // Measured per-iteration cost (EMA over launches, ns), indexed by
    // tier (0 = VM, 1 = native); 0 = not yet measured.  Feeds the
    // cost-driven chunk scheduler.
    double ns_per_iter[2] = {0.0, 0.0};
    bool plan_reported = false;  // kernel-plan obs instant emitted once
    // Profile-DB bookkeeping (flushed at teardown, common/profdb.*):
    // the promotion counter above freezes once a native handle exists,
    // so launches/iterations are tracked separately for the flush.
    int64_t launches = 0;
    int64_t total_iters = 0;
    int tier_reached = 0;      // highest tier that actually dispatched
    bool pgo_hot = false;      // DACE_PGO=1 and the DB marked it Tier-1:
                               // promote at first launch, skip warmup
  };

  /// Cost-driven chunk count for a parallel dispatch at `tier`: sized so
  /// each chunk runs ~DACE_CHUNK_TARGET_NS of measured (or estimated)
  /// work, 1 when the whole map is cheaper than DACE_CHUNK_MIN_NS (the
  /// pool is then skipped entirely).  Plan-off programs keep the
  /// historical one-chunk-per-worker split.
  static int plan_chunks(const TieredProgram& tp, int tier, int64_t iters);
  /// Fold a measured launch into the per-iteration cost EMA.
  static void update_cost(TieredProgram& tp, int tier, int64_t iters,
                          int64_t dur_ns);

  const ir::SDFG& sdfg_;
  ExecutorOptions opts_;
  sym::SymbolMap syms_;
  Bindings env_;
  Bindings persistent_;  // persistent transients survive across run()
  // Compiled map programs, keyed by (state id, entry node id).
  std::map<std::pair<int, int>, TieredProgram> programs_;
  // Child executors for nested SDFG nodes.
  std::map<std::pair<int, int>, std::unique_ptr<Executor>> children_;
  VMStats stats_;
  std::unique_ptr<Instrumenter> inst_;
  TierConfig tier_cfg_;
  bool bc_opt_ = true;
  int64_t map_launches_ = 0;
  int64_t library_calls_ = 0;
  int64_t native_launches_ = 0;
  int64_t native_promotions_ = 0;
  bool validated_ = false;
};

/// One-call convenience: execute an SDFG.
void execute(const ir::SDFG& sdfg, Bindings& args,
             const sym::SymbolMap& symbols, ExecutorOptions opts = {});

}  // namespace dace::rt
