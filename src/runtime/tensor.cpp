#include "runtime/tensor.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace dace::rt {

namespace {
std::vector<int64_t> row_major_strides(const std::vector<int64_t>& shape) {
  std::vector<int64_t> st(shape.size(), 1);
  for (size_t d = shape.size(); d-- > 1;) st[d - 1] = st[d] * shape[d];
  return st;
}

int64_t shape_size(const std::vector<int64_t>& shape) {
  int64_t n = 1;
  for (int64_t s : shape) n *= s;
  return n;
}
}  // namespace

Tensor::Tensor(DType dtype, std::vector<int64_t> shape)
    : dtype_(dtype), shape_(std::move(shape)) {
  for (int64_t s : shape_)
    DACE_CHECK(s >= 0, "tensor: negative dimension ", s);
  strides_ = row_major_strides(shape_);
  buffer_ = std::make_shared<std::vector<double>>(
      static_cast<size_t>(shape_size(shape_)), 0.0);
}

Tensor Tensor::from_values(std::vector<int64_t> shape,
                           std::vector<double> values, DType dtype) {
  Tensor t(dtype, std::move(shape));
  DACE_CHECK((int64_t)values.size() == t.size(),
             "tensor: value count mismatch");
  for (size_t i = 0; i < values.size(); ++i)
    (*t.buffer_)[i] = cast_to(dtype, values[i]);
  return t;
}

int64_t Tensor::size() const { return shape_size(shape_); }

bool Tensor::contiguous() const {
  return strides_ == row_major_strides(shape_);
}

double& Tensor::at(const std::vector<int64_t>& idx) {
  DACE_CHECK(idx.size() == shape_.size(), "tensor: index rank mismatch");
  int64_t off = offset_;
  for (size_t d = 0; d < idx.size(); ++d) {
    DACE_CHECK(idx[d] >= 0 && idx[d] < shape_[d], "tensor: index ", idx[d],
               " out of bounds for dim ", d, " (size ", shape_[d], ")");
    off += idx[d] * strides_[d];
  }
  return (*buffer_)[off];
}

double Tensor::at(const std::vector<int64_t>& idx) const {
  return const_cast<Tensor*>(this)->at(idx);
}

double Tensor::get_flat(int64_t i) const {
  if (contiguous()) return (*buffer_)[offset_ + i];
  int64_t off = offset_;
  for (size_t d = shape_.size(); d-- > 0;) {
    off += (i % shape_[d]) * strides_[d];
    i /= shape_[d];
  }
  return (*buffer_)[off];
}

void Tensor::set_flat(int64_t i, double v) {
  v = cast_to(dtype_, v);
  if (contiguous()) {
    (*buffer_)[offset_ + i] = v;
    return;
  }
  int64_t off = offset_;
  for (size_t d = shape_.size(); d-- > 0;) {
    off += (i % shape_[d]) * strides_[d];
    i /= shape_[d];
  }
  (*buffer_)[off] = v;
}

double Tensor::value() const {
  DACE_CHECK(size() == 1, "tensor: value() on non-scalar of size ", size());
  return (*buffer_)[offset_];
}

Tensor Tensor::slice(const std::vector<int64_t>& begin,
                     const std::vector<int64_t>& end,
                     const std::vector<int64_t>& step,
                     const std::vector<bool>& drop) const {
  DACE_CHECK(begin.size() == rank() && end.size() == rank() &&
                 step.size() == rank(),
             "tensor: slice rank mismatch");
  Tensor out = *this;
  out.shape_.clear();
  out.strides_.clear();
  out.offset_ = offset_;
  for (size_t d = 0; d < rank(); ++d) {
    DACE_CHECK(step[d] > 0, "tensor: non-positive slice step");
    DACE_CHECK(begin[d] >= 0 && begin[d] <= shape_[d] && end[d] >= begin[d] &&
                   end[d] <= shape_[d],
               "tensor: slice [", begin[d], ":", end[d], "] out of bounds ",
               "for dim ", d, " (size ", shape_[d], ")");
    out.offset_ += begin[d] * strides_[d];
    bool dropped = d < drop.size() && drop[d];
    if (!dropped) {
      int64_t extent = (end[d] - begin[d] + step[d] - 1) / step[d];
      out.shape_.push_back(extent);
      out.strides_.push_back(strides_[d] * step[d]);
    } else {
      DACE_CHECK(end[d] - begin[d] == 1, "tensor: dropping non-unit dim");
    }
  }
  return out;
}

Tensor Tensor::transpose() const {
  std::vector<size_t> perm(rank());
  std::iota(perm.rbegin(), perm.rend(), 0);
  return transpose(perm);
}

Tensor Tensor::transpose(const std::vector<size_t>& perm) const {
  DACE_CHECK(perm.size() == rank(), "tensor: transpose rank mismatch");
  Tensor out = *this;
  for (size_t d = 0; d < rank(); ++d) {
    out.shape_[d] = shape_[perm[d]];
    out.strides_[d] = strides_[perm[d]];
  }
  return out;
}

Tensor Tensor::reshape(std::vector<int64_t> new_shape) const {
  DACE_CHECK(contiguous(), "tensor: reshape of non-contiguous view");
  DACE_CHECK(shape_size(new_shape) == size(),
             "tensor: reshape element count mismatch");
  Tensor out = *this;
  out.shape_ = std::move(new_shape);
  out.strides_ = row_major_strides(out.shape_);
  return out;
}

Tensor Tensor::copy() const {
  Tensor out(dtype_, shape_);
  out.assign_from(*this);
  return out;
}

Tensor Tensor::astype(DType t) const {
  Tensor out(t, shape_);
  out.assign_from(*this);
  return out;
}

void Tensor::assign_from(const Tensor& src) {
  DACE_CHECK(src.shape_ == shape_, "tensor: assign shape mismatch");
  int64_t n = size();
  if (contiguous() && src.contiguous() && dtype_ == src.dtype_) {
    std::copy(src.buffer_->data() + src.offset_,
              src.buffer_->data() + src.offset_ + n,
              buffer_->data() + offset_);
    return;
  }
  // Aliasing-safe: if the views may overlap, stage through a buffer.
  if (same_buffer(src)) {
    std::vector<double> tmp(static_cast<size_t>(n));
    for (int64_t i = 0; i < n; ++i) tmp[static_cast<size_t>(i)] = src.get_flat(i);
    for (int64_t i = 0; i < n; ++i) set_flat(i, tmp[static_cast<size_t>(i)]);
    return;
  }
  for (int64_t i = 0; i < n; ++i) set_flat(i, src.get_flat(i));
}

void Tensor::fill(double v) {
  v = cast_to(dtype_, v);
  int64_t n = size();
  if (contiguous()) {
    std::fill(buffer_->data() + offset_, buffer_->data() + offset_ + n, v);
    return;
  }
  for (int64_t i = 0; i < n; ++i) set_flat(i, v);
}

std::string Tensor::to_string(int64_t max_elems) const {
  std::ostringstream os;
  os << dtype_name(dtype_) << "[";
  for (size_t d = 0; d < shape_.size(); ++d) {
    if (d) os << ", ";
    os << shape_[d];
  }
  os << "] {";
  int64_t n = std::min<int64_t>(size(), max_elems);
  for (int64_t i = 0; i < n; ++i) {
    if (i) os << ", ";
    os << get_flat(i);
  }
  if (size() > n) os << ", ...";
  os << "}";
  return os.str();
}

double max_abs_diff(const Tensor& a, const Tensor& b) {
  DACE_CHECK(a.shape() == b.shape(), "max_abs_diff: shape mismatch");
  double m = 0;
  for (int64_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a.get_flat(i) - b.get_flat(i)));
  return m;
}

bool allclose(const Tensor& a, const Tensor& b, double rtol, double atol) {
  if (a.shape() != b.shape()) return false;
  for (int64_t i = 0; i < a.size(); ++i) {
    double x = a.get_flat(i), y = b.get_flat(i);
    if (std::isnan(x) != std::isnan(y)) return false;
    if (std::isnan(x)) continue;
    if (std::abs(x - y) > atol + rtol * std::max(std::abs(x), std::abs(y)))
      return false;
  }
  return true;
}

}  // namespace dace::rt
