#include "runtime/eager_interpreter.hpp"

#include <cmath>

#include "runtime/tensor_ops.hpp"

namespace dace::rt {

namespace {

using fe::ExKind;
using fe::ExprPtr;
using fe::SliceItem;
using fe::StKind;
using fe::StmtNode;

/// Runtime value: a tensor view or an integer (symbol / loop index).
struct Value {
  enum class K { Tensor, Int } k = K::Int;
  Tensor t;
  int64_t i = 0;

  static Value of(Tensor t) {
    Value v;
    v.k = K::Tensor;
    v.t = std::move(t);
    return v;
  }
  static Value of(int64_t i) {
    Value v;
    v.k = K::Int;
    v.i = i;
    return v;
  }
  bool is_tensor() const { return k == K::Tensor; }
  double scalar() const {
    return is_tensor() ? t.value() : static_cast<double>(i);
  }
  Tensor as_tensor() const {
    return is_tensor() ? t : Tensor::scalar(static_cast<double>(i));
  }
};

}  // namespace

class EagerImpl {
 public:
  EagerImpl(EagerInterpreter& owner, const fe::Function& f,
            EagerObserver* obs)
      : owner_(owner), func_(f), obs_(obs) {}

  void run(Bindings& args, const sym::SymbolMap& symbols) {
    syms_ = symbols;
    for (const auto& p : func_.params) {
      if (p.shape.empty() && ir::dtype_is_integer(p.dtype)) {
        auto it = syms_.find(p.name);
        DACE_CHECK(it != syms_.end(), "eager: missing integer argument ",
                   p.name);
        env_[p.name] = Value::of(it->second);
        continue;
      }
      auto it = args.find(p.name);
      DACE_CHECK(it != args.end(), "eager: missing argument ", p.name);
      env_[p.name] = Value::of(it->second);
    }
    exec_block(func_.body);
  }

 private:
  EagerInterpreter& owner_;
  const fe::Function& func_;
  EagerObserver* obs_;
  sym::SymbolMap syms_;
  std::map<std::string, Value> env_;

  [[noreturn]] void fail(int line, const std::string& msg) {
    throw err("eager: ", msg, " (", func_.name, ":", line, ")");
  }

  void note(const std::string& kind, int64_t out, int64_t in, int64_t flops) {
    ++owner_.op_count_;
    if (obs_) obs_->on_op(kind, out, in, flops);
  }

  // -- expressions -----------------------------------------------------------
  int64_t eval_int(const ExprPtr& e) {
    Value v = eval(e);
    if (v.is_tensor()) return static_cast<int64_t>(v.t.value());
    return v.i;
  }

  Value eval(const ExprPtr& e) {
    switch (e->kind) {
      case ExKind::Num:
        if (e->num_is_int) return Value::of(e->inum);
        return Value::of(Tensor::scalar(e->num));
      case ExKind::Name: {
        auto it = env_.find(e->name);
        if (it != env_.end()) return it->second;
        auto st = syms_.find(e->name);
        if (st != syms_.end()) return Value::of(st->second);
        fail(e->line, "unknown name '" + e->name + "'");
      }
      case ExKind::Subscript:
        return subscript(e);
      case ExKind::UnOp: {
        Value a = eval(e->args[0]);
        if (e->name == "-") {
          if (!a.is_tensor()) return Value::of(-a.i);
          Tensor r = ops::neg(a.t);
          note("ew", r.size(), a.t.size(), r.size());
          return Value::of(r);
        }
        if (e->name == "not") return Value::of((int64_t)(a.scalar() == 0));
        fail(e->line, "unsupported unary operator");
      }
      case ExKind::BinOp:
        return binop(e);
      case ExKind::Call:
        return call(e);
      case ExKind::Tuple:
        fail(e->line, "tuple in expression position");
    }
    fail(e->line, "unsupported expression");
  }

  Value binop(const ExprPtr& e) {
    const std::string& op = e->name;
    Value a = eval(e->args[0]);
    Value b = eval(e->args[1]);
    // Pure integer arithmetic (loop indices).
    if (!a.is_tensor() && !b.is_tensor()) {
      int64_t x = a.i, y = b.i;
      if (op == "+") return Value::of(x + y);
      if (op == "-") return Value::of(x - y);
      if (op == "*") return Value::of(x * y);
      if (op == "//") return Value::of((int64_t)std::floor((double)x / y));
      if (op == "%") return Value::of(((x % y) + y) % y);
      if (op == "<") return Value::of((int64_t)(x < y));
      if (op == "<=") return Value::of((int64_t)(x <= y));
      if (op == ">") return Value::of((int64_t)(x > y));
      if (op == ">=") return Value::of((int64_t)(x >= y));
      if (op == "==") return Value::of((int64_t)(x == y));
      if (op == "!=") return Value::of((int64_t)(x != y));
      if (op == "and") return Value::of((int64_t)(x && y));
      if (op == "or") return Value::of((int64_t)(x || y));
      if (op == "/") return Value::of(Tensor::scalar((double)x / y));
    }
    if (op == "@") {
      Tensor r = ops::matmul(a.as_tensor(), b.as_tensor());
      int64_t m = a.t.rank() >= 1 ? a.t.shape()[0] : 1;
      int64_t k = a.t.rank() == 2 ? a.t.shape()[1] : 1;
      note("matmul", r.size(), a.t.size() + b.t.size(), 2 * r.size() * k);
      (void)m;
      ++owner_.temporaries_;
      return Value::of(r);
    }
    Tensor ta = a.as_tensor(), tb = b.as_tensor();
    Tensor r;
    if (op == "+") r = ops::add(ta, tb);
    else if (op == "-") r = ops::sub(ta, tb);
    else if (op == "*") r = ops::mul(ta, tb);
    else if (op == "/") r = ops::div(ta, tb);
    else if (op == "**") r = ops::pow(ta, tb);
    else fail(e->line, "unsupported operator '" + op + "'");
    note("ew", r.size(), ta.size() + tb.size(), r.size());
    ++owner_.temporaries_;
    return Value::of(r);
  }

  Value call(const ExprPtr& e) {
    const std::string& fn = e->base->name;
    using Unary = Tensor (*)(const Tensor&);
    static const std::map<std::string, Unary> unary = {
        {"np.exp", ops::exp},   {"np.sqrt", ops::sqrt}, {"np.log", ops::log},
        {"np.abs", ops::abs},   {"np.sin", ops::sin},   {"np.cos", ops::cos},
        {"np.tanh", ops::tanh}, {"abs", ops::abs}};
    if (auto it = unary.find(fn); it != unary.end()) {
      Tensor a = eval(e->args[0]).as_tensor();
      Tensor r = it->second(a);
      note("ew", r.size(), a.size(), r.size());
      ++owner_.temporaries_;
      return Value::of(r);
    }
    if (fn == "np.minimum" || fn == "np.maximum" || fn == "np.power") {
      Tensor a = eval(e->args[0]).as_tensor();
      Tensor b = eval(e->args[1]).as_tensor();
      Tensor r = fn == "np.minimum" ? ops::minimum(a, b)
                 : fn == "np.maximum" ? ops::maximum(a, b)
                                      : ops::pow(a, b);
      note("ew", r.size(), a.size() + b.size(), r.size());
      ++owner_.temporaries_;
      return Value::of(r);
    }
    if (fn == "np.sum" || fn == "np.max" || fn == "np.min") {
      Tensor a = eval(e->args[0]).as_tensor();
      std::optional<int> axis;
      for (const auto& [k, v] : e->kwargs) {
        if (k == "axis") axis = (int)eval_int(v);
      }
      Tensor r;
      if (axis) {
        int ax = *axis < 0 ? *axis + (int)a.rank() : *axis;
        DACE_CHECK(fn == "np.sum", "eager: axis reduction supports sum only");
        r = ops::sum_axis(a, ax);
      } else if (fn == "np.sum") {
        r = Tensor::scalar(ops::sum_all(a));
      } else if (fn == "np.max") {
        r = Tensor::scalar(ops::max_all(a));
      } else {
        r = Tensor::scalar(ops::min_all(a));
      }
      note("reduce", r.size(), a.size(), a.size());
      ++owner_.temporaries_;
      return Value::of(r);
    }
    if (fn == "np.dot") {
      Tensor a = eval(e->args[0]).as_tensor();
      Tensor b = eval(e->args[1]).as_tensor();
      Tensor r = ops::matmul(a, b);
      note("matmul", r.size(), a.size() + b.size(), 2 * a.size());
      ++owner_.temporaries_;
      return Value::of(r);
    }
    if (fn == "np.outer") {
      Tensor a = eval(e->args[0]).as_tensor();
      Tensor b = eval(e->args[1]).as_tensor();
      Tensor r = ops::outer(a, b);
      note("ew", r.size(), a.size() + b.size(), r.size());
      ++owner_.temporaries_;
      return Value::of(r);
    }
    if (fn == "np.transpose") {
      // Zero-copy view, exactly like NumPy.
      return Value::of(eval(e->args[0]).as_tensor().transpose());
    }
    if (fn == "np.copy") {
      Tensor a = eval(e->args[0]).as_tensor();
      Tensor r = a.copy();
      note("copy", r.size(), a.size(), 0);
      ++owner_.temporaries_;
      return Value::of(r);
    }
    if (fn == "np.float64" || fn == "np.float32" || fn == "float") {
      return eval(e->args[0]);
    }
    if (fn == "np.empty" || fn == "np.zeros" || fn == "np.ones" ||
        fn == "np.full" || fn == "np.empty_like" || fn == "np.zeros_like" ||
        fn == "np.ones_like") {
      return allocate(e, fn);
    }
    if (fn == "range" || fn.rfind("dace.", 0) == 0) {
      fail(e->line, "'" + fn + "' is only valid as a loop iterator");
    }
    fail(e->line, "unsupported function '" + fn + "'");
  }

  Value allocate(const ExprPtr& e, const std::string& which) {
    std::vector<int64_t> shape;
    ir::DType dtype = ir::DType::f64;
    if (which.find("_like") != std::string::npos) {
      Tensor src = eval(e->args[0]).as_tensor();
      shape = src.shape();
      dtype = src.dtype();
    } else {
      const ExprPtr& sh = e->args[0];
      if (sh->kind == ExKind::Tuple) {
        for (const auto& d : sh->args) shape.push_back(eval_int(d));
      } else {
        shape.push_back(eval_int(sh));
      }
    }
    for (const auto& [k, v] : e->kwargs) {
      if (k != "dtype") continue;
      const std::string& n = v->name;
      if (n == "np.float32") dtype = ir::DType::f32;
      else if (n == "np.int64" || n == "MPI_Request") dtype = ir::DType::i64;
      else if (n == "np.int32") dtype = ir::DType::i32;
      else if (n.size() > 6 && n.substr(n.size() - 6) == ".dtype") {
        auto it = env_.find(n.substr(0, n.size() - 6));
        if (it != env_.end() && it->second.is_tensor())
          dtype = it->second.t.dtype();
      }
    }
    Tensor t(dtype, shape);
    if (which == "np.ones" || which == "np.ones_like") t.fill(1.0);
    if (which == "np.full") t.fill(eval(e->args[1]).scalar());
    note("alloc", t.size(), 0, 0);
    ++owner_.temporaries_;
    return Value::of(t);
  }

  Tensor subscript_view(const ExprPtr& e) {
    Value base = eval(e->base);
    if (!base.is_tensor()) fail(e->line, "subscript of non-array");
    Tensor t = base.t;
    std::vector<int64_t> b, en, st;
    std::vector<bool> drop;
    for (size_t d = 0; d < t.rank(); ++d) {
      int64_t size = t.shape()[d];
      if (d < e->slices.size()) {
        const SliceItem& s = e->slices[d];
        if (s.is_index) {
          int64_t i = eval_int(s.index);
          if (i < 0) i += size;
          b.push_back(i);
          en.push_back(i + 1);
          st.push_back(1);
          drop.push_back(true);
          continue;
        }
        int64_t bb = s.begin ? eval_int(s.begin) : 0;
        int64_t ee = s.end ? eval_int(s.end) : size;
        if (bb < 0) bb += size;
        if (ee < 0) ee += size;
        b.push_back(bb);
        en.push_back(ee);
        st.push_back(s.step ? eval_int(s.step) : 1);
        drop.push_back(false);
      } else {
        b.push_back(0);
        en.push_back(size);
        st.push_back(1);
        drop.push_back(false);
      }
    }
    return t.slice(b, en, st, drop);
  }

  Value subscript(const ExprPtr& e) {
    Tensor v = subscript_view(e);
    return Value::of(v);
  }

  // -- statements --------------------------------------------------------------
  void exec_block(const std::vector<fe::StmtPtr>& body) {
    for (const auto& st : body) exec(*st);
  }

  void exec(const StmtNode& st) {
    switch (st.kind) {
      case StKind::Pass:
        return;
      case StKind::Assign: {
        if (st.target->kind == ExKind::Name) {
          env_[st.target->name] = eval(st.value);
          return;
        }
        if (st.target->kind == ExKind::Subscript) {
          Tensor dst = subscript_view(st.target);
          Value v = eval(st.value);
          if (v.is_tensor() && v.t.rank() == dst.rank() &&
              v.t.shape() == dst.shape()) {
            dst.assign_from(v.t);
          } else if (!v.is_tensor() || v.t.size() == 1) {
            dst.fill(v.scalar());
          } else {
            // Broadcast assignment.
            Tensor bcast = ops::add(v.t, Tensor(dst.dtype(), dst.shape()));
            dst.assign_from(bcast);
          }
          note("copy", dst.size(), dst.size(), 0);
          return;
        }
        fail(st.line, "unsupported assignment target");
      }
      case StKind::AugAssign: {
        Tensor dst = st.target->kind == ExKind::Subscript
                         ? subscript_view(st.target)
                         : env_.at(st.target->name).t;
        Tensor v = eval(st.value).as_tensor();
        Tensor r;
        if (st.aug_op == "+") r = ops::add(dst, v);
        else if (st.aug_op == "-") r = ops::sub(dst, v);
        else if (st.aug_op == "*") r = ops::mul(dst, v);
        else r = ops::div(dst, v);
        // NumPy result may broadcast; reduce back not supported.
        Tensor rr = r;
        if (r.shape() != dst.shape()) fail(st.line, "augassign broadcast");
        dst.assign_from(rr);
        note("ew", dst.size(), dst.size() + v.size(), dst.size());
        ++owner_.temporaries_;
        return;
      }
      case StKind::For:
        exec_for(st);
        return;
      case StKind::If:
        if (eval(st.cond).scalar() != 0) {
          exec_block(st.body);
        } else {
          exec_block(st.orelse);
        }
        return;
      case StKind::While:
        while (eval(st.cond).scalar() != 0) exec_block(st.body);
        return;
      case StKind::ExprStmt:
        fail(st.line, "bare expression statements are not supported");
    }
  }

  void exec_for(const StmtNode& st) {
    // dace.map iterates like nested Python loops here (the baseline pays
    // full interpreter cost for explicit loops, as CPython would).
    if (st.iter->kind == ExKind::Subscript && st.iter->base &&
        st.iter->base->name == "dace.map") {
      std::vector<int64_t> begins, ends, steps;
      for (const auto& s : st.iter->slices) {
        begins.push_back(s.begin ? eval_int(s.begin) : 0);
        ends.push_back(eval_int(s.end));
        steps.push_back(s.step ? eval_int(s.step) : 1);
      }
      std::vector<int64_t> idx = begins;
      size_t rank = begins.size();
      if (rank == 0) return;
      for (;;) {
        for (size_t d = 0; d < rank; ++d)
          env_[st.loop_vars[d]] = Value::of(idx[d]);
        exec_block(st.body);
        size_t d = rank;
        while (d-- > 0) {
          idx[d] += steps[d];
          if (idx[d] < ends[d]) break;
          if (d == 0) return;
          idx[d] = begins[d];
        }
      }
    }
    DACE_CHECK(st.iter->kind == ExKind::Call && st.iter->base &&
                   st.iter->base->name == "range",
               "eager: for iterator must be range or dace.map");
    int64_t begin = 0, end = 0, step = 1;
    const auto& a = st.iter->args;
    if (a.size() == 1) {
      end = eval_int(a[0]);
    } else {
      begin = eval_int(a[0]);
      end = eval_int(a[1]);
      if (a.size() == 3) step = eval_int(a[2]);
    }
    for (int64_t i = begin; i < end; i += step) {
      env_[st.loop_vars[0]] = Value::of(i);
      exec_block(st.body);
    }
  }
};

EagerInterpreter::EagerInterpreter(const fe::Function& f,
                                   EagerObserver* observer)
    : func_(f), observer_(observer) {}

void EagerInterpreter::run(Bindings& args, const sym::SymbolMap& symbols) {
  op_count_ = 0;
  temporaries_ = 0;
  EagerImpl impl(*this, func_, observer_);
  impl.run(args, symbols);
}

}  // namespace dace::rt
