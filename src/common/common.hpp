// Common utilities shared across all DaCe++ modules.
#pragma once

#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dace {

/// Error type for all user-facing failures (parse errors, validation
/// errors, execution errors). Carries a plain message.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& msg) : std::runtime_error(msg) {}
};

/// Build an Error from streamable parts: throw err("bad value ", x).
template <typename... Args>
Error err(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return Error(os.str());
}

#define DACE_CHECK(cond, ...)        \
  do {                               \
    if (!(cond)) throw ::dace::err(__VA_ARGS__); \
  } while (0)

using std::int64_t;

}  // namespace dace
