// Structured diagnostics: every frontend / lowering / loader error becomes a
// Diagnostic{code, severity, line, col, span, message, notes} collected into a
// DiagSink.  Sinks render human-readable reports with source-line carets and
// machine-readable JSON.  See docs/DIAGNOSTICS.md for the error-code
// catalogue and the recovery model.
#pragma once

#include <string>
#include <vector>

#include "common/common.hpp"

namespace dace::diag {

enum class Severity { Note, Warning, Error };

const char* severity_name(Severity s);

/// One located finding. Lines and columns are 1-based; 0 means "unknown".
/// `span` is the length in source columns the diagnostic covers (>= 1 when
/// the column is known), used to extend the caret under the offending text.
struct Diagnostic {
  std::string code;      // stable machine code, e.g. "E201" (see catalogue)
  Severity severity = Severity::Error;
  int line = 0;          // 1-based; 0 = no location
  int col = 0;           // 1-based; 0 = no column
  int span = 1;          // caret width in columns
  std::string message;   // human-readable, no location prefix
  std::vector<std::string> notes;  // follow-up hints, rendered indented

  /// "file:line:col: error: [E201] message" (omitting unknown parts).
  std::string format(const std::string& file = "") const;
  /// Single JSON object (stable key order, escaped strings).
  std::string to_json() const;
};

/// Collects diagnostics for one compilation unit. Attach the source text to
/// get caret rendering; errors accumulate so one run reports *all* findings.
class DiagSink {
 public:
  DiagSink() = default;

  /// Attach the source being compiled; enables `line | caret` rendering.
  void set_source(std::string name, std::string text);
  const std::string& source_name() const { return source_name_; }

  Diagnostic& report(Diagnostic d);
  Diagnostic& error(std::string code, int line, int col, std::string message,
                    int span = 1);
  Diagnostic& warning(std::string code, int line, int col, std::string message,
                      int span = 1);
  Diagnostic& note(std::string code, int line, int col, std::string message,
                   int span = 1);

  bool has_errors() const;
  size_t error_count() const;
  bool empty() const { return diags_.empty(); }
  size_t size() const { return diags_.size(); }
  const std::vector<Diagnostic>& diagnostics() const { return diags_; }
  void clear() { diags_.clear(); }

  /// Human-readable report: one block per diagnostic with the offending
  /// source line and a caret under the column (tabs preserved for
  /// alignment), notes indented beneath.
  std::string render() const;
  /// `{"source": ..., "diagnostics": [...]}` for --json consumers.
  std::string to_json() const;

 private:
  std::string source_name_;
  std::vector<std::string> source_lines_;
  bool have_source_ = false;
  std::vector<Diagnostic> diags_;
};

/// Error subtype that carries its structured diagnostic, so call sites that
/// `catch (const dace::Error&)` keep working while richer consumers can
/// recover the code/line/col.
class DiagError : public dace::Error {
 public:
  DiagError(Diagnostic d, std::string rendered)
      : dace::Error(std::move(rendered)), diagnostic_(std::move(d)) {}
  const Diagnostic& diagnostic() const { return diagnostic_; }

 private:
  Diagnostic diagnostic_;
};

/// Build a DiagError from a sink: message is the full rendered report,
/// the carried diagnostic is the sink's first error (or first entry).
DiagError diag_error(const DiagSink& sink);

/// Escape a string for embedding in a JSON document.
std::string json_escape(const std::string& s);

}  // namespace dace::diag
