#include "common/obs.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <sstream>

#include "common/diag.hpp"

namespace dace::obs {

namespace {

/// One thread's ring buffer.  Only the owning thread appends; snapshot()
/// and clear() take the same mutex, so flushing while detached JIT worker
/// threads are still emitting is safe.
struct Buffer {
  std::mutex mu;
  std::vector<TraceEvent> ring;
  size_t cap = 0;
  size_t next = 0;        // overwrite cursor once the ring is full
  uint64_t dropped = 0;   // events that displaced an older one
  int tid = 0;
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<Buffer>> buffers;
  int next_tid = 0;
  size_t buffer_cap = 1 << 16;
  std::string trace_file;
  bool have_rank_filter = false;
  std::vector<int> rank_filter;
};

// Leaked: detached compile threads and atexit handlers may still touch it
// during shutdown.
Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

// -1 = env not yet consulted, 0 = off, 1 = on.
std::atomic<int> g_enabled{-1};

void write_trace_at_exit() {
  Registry& r = registry();
  std::string path;
  {
    std::lock_guard<std::mutex> lk(r.mu);
    path = r.trace_file;
  }
  if (!path.empty() && g_enabled.load(std::memory_order_relaxed) > 0)
    write_trace(path);
}

/// First-use configuration from the environment; returns the enabled state.
int init_slow() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  int cur = g_enabled.load(std::memory_order_relaxed);
  if (cur >= 0) return cur;
  int on = 0;
  if (const char* f = std::getenv("DACE_TRACE_FILE"); f && *f) {
    r.trace_file = f;
    on = 1;
    std::atexit(write_trace_at_exit);
  }
  if (const char* ranks = std::getenv("DACE_TRACE_RANKS"); ranks && *ranks) {
    r.have_rank_filter = true;
    std::istringstream is(ranks);
    std::string tok;
    while (std::getline(is, tok, ',')) {
      if (!tok.empty()) r.rank_filter.push_back(std::atoi(tok.c_str()));
    }
  }
  if (const char* cap = std::getenv("DACE_TRACE_BUFFER"); cap && *cap) {
    long long v = std::atoll(cap);
    if (v > 0) r.buffer_cap = (size_t)v;
  }
  g_enabled.store(on, std::memory_order_relaxed);
  return on;
}

thread_local std::shared_ptr<Buffer> t_buf;

Buffer& local_buffer() {
  if (!t_buf) {
    auto b = std::make_shared<Buffer>();
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    b->cap = r.buffer_cap;
    b->tid = r.next_tid++;
    r.buffers.push_back(b);
    t_buf = b;
  }
  return *t_buf;
}

void push(TraceEvent e) {
  Buffer& b = local_buffer();
  std::lock_guard<std::mutex> lk(b.mu);
  if (b.ring.size() < b.cap) {
    b.ring.push_back(std::move(e));
  } else {
    b.ring[b.next] = std::move(e);
    b.next = (b.next + 1) % b.cap;
    ++b.dropped;
  }
}

void json_escape_into(std::ostringstream& os, const std::string& s) {
  os << '"' << diag::json_escape(s) << '"';
}

void emit_event_json(std::ostringstream& os, const TraceEvent& e) {
  char num[64];
  os << "{\"ph\":\"" << (char)e.phase << "\",\"name\":";
  json_escape_into(os, e.name);
  os << ",\"cat\":";
  json_escape_into(os, e.cat);
  snprintf(num, sizeof(num), "%.3f", e.ts_us);
  os << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid << ",\"ts\":" << num;
  if (e.phase == Phase::Complete) {
    snprintf(num, sizeof(num), "%.3f", e.dur_us);
    os << ",\"dur\":" << num;
  }
  if (e.phase == Phase::Instant) os << ",\"s\":\"t\"";
  if (e.phase == Phase::Counter) {
    snprintf(num, sizeof(num), "%g", e.value);
    os << ",\"args\":{\"value\":" << num << "}";
  } else if (!e.args.empty()) {
    os << ",\"args\":" << e.args;
  }
  os << "}";
}

}  // namespace

bool enabled() {
  int s = g_enabled.load(std::memory_order_relaxed);
  if (s >= 0) return s > 0;
  return init_slow() > 0;
}

void set_enabled(bool on) {
  init_slow();  // consume env config (rank filter, trace file) first
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

int64_t now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                              t0)
      .count();
}

void complete(const char* cat, std::string name, int64_t start_ns,
              int64_t dur_ns, std::string args) {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = Phase::Complete;
  e.name = std::move(name);
  e.cat = cat;
  e.ts_us = (double)start_ns / 1e3;
  e.dur_us = (double)dur_ns / 1e3;
  e.tid = local_buffer().tid;
  e.args = std::move(args);
  push(std::move(e));
}

void complete_at(const char* cat, std::string name, double ts_us,
                 double dur_us, int pid, int tid, std::string args) {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = Phase::Complete;
  e.name = std::move(name);
  e.cat = cat;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.pid = pid;
  e.tid = tid;
  e.args = std::move(args);
  push(std::move(e));
}

void instant(const char* cat, std::string name, std::string args) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.cat = cat;
  e.ts_us = (double)now_ns() / 1e3;
  e.tid = local_buffer().tid;
  e.args = std::move(args);
  push(std::move(e));
}

void instant_at(const char* cat, std::string name, double ts_us, int pid,
                int tid, std::string args) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.cat = cat;
  e.ts_us = ts_us;
  e.pid = pid;
  e.tid = tid;
  e.args = std::move(args);
  push(std::move(e));
}

void counter(const char* cat, std::string name, double value) {
  if (!enabled()) return;
  TraceEvent e;
  e.phase = Phase::Counter;
  e.name = std::move(name);
  e.cat = cat;
  e.ts_us = (double)now_ns() / 1e3;
  e.tid = local_buffer().tid;
  e.value = value;
  push(std::move(e));
}

Span::Span(const char* cat, std::string name)
    : cat_(cat), name_(std::move(name)) {
  if (!enabled()) return;
  t0_ = now_ns();
  active_ = true;
}

Span::~Span() {
  if (!active_ || !enabled()) return;
  complete(cat_, std::move(name_), t0_, now_ns() - t0_, std::move(args_));
}

std::vector<TraceEvent> snapshot() {
  Registry& r = registry();
  std::vector<std::shared_ptr<Buffer>> bufs;
  {
    std::lock_guard<std::mutex> lk(r.mu);
    bufs = r.buffers;
  }
  std::vector<TraceEvent> out;
  for (const auto& b : bufs) {
    std::lock_guard<std::mutex> lk(b->mu);
    // Chronological per buffer: [next, end) is the older half once full.
    for (size_t i = 0; i < b->ring.size(); ++i) {
      size_t idx = b->ring.size() == b->cap ? (b->next + i) % b->cap : i;
      out.push_back(b->ring[idx]);
    }
  }
  // Deterministic global order: per-(pid, tid) timeline, per-thread
  // emission order preserved by the stable sort within equal timestamps.
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.pid != b.pid) return a.pid < b.pid;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

uint64_t dropped() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  uint64_t n = 0;
  for (const auto& b : r.buffers) {
    std::lock_guard<std::mutex> blk(b->mu);
    n += b->dropped;
  }
  return n;
}

size_t event_count() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  size_t n = 0;
  for (const auto& b : r.buffers) {
    std::lock_guard<std::mutex> blk(b->mu);
    n += b->ring.size();
  }
  return n;
}

void clear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (const auto& b : r.buffers) {
    std::lock_guard<std::mutex> blk(b->mu);
    b->ring.clear();
    b->next = 0;
    b->dropped = 0;
  }
}

std::string to_chrome_json() {
  std::vector<TraceEvent> evs = snapshot();
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  // Process/thread naming metadata so Perfetto labels the two timelines.
  os << "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"dacepp host\"}}";
  bool have_virtual = false;
  std::vector<int> vranks;
  for (const auto& e : evs) {
    if (e.pid == 1) {
      have_virtual = true;
      if (std::find(vranks.begin(), vranks.end(), e.tid) == vranks.end())
        vranks.push_back(e.tid);
    }
  }
  if (have_virtual) {
    os << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
          "\"args\":{\"name\":\"simMPI virtual time\"}}";
    std::sort(vranks.begin(), vranks.end());
    for (int rk : vranks) {
      os << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << rk
         << ",\"name\":\"thread_name\",\"args\":{\"name\":\"rank " << rk
         << "\"}}";
    }
  }
  for (const auto& e : evs) {
    os << ",\n";
    emit_event_json(os, e);
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

bool write_trace(const std::string& path) {
  std::string doc = to_chrome_json();
  FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  return written == doc.size();
}

const std::string& trace_file() {
  init_slow();
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  return r.trace_file;
}

bool rank_traced(int rank) {
  init_slow();
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  if (!r.have_rank_filter) return true;
  return std::find(r.rank_filter.begin(), r.rank_filter.end(), rank) !=
         r.rank_filter.end();
}

}  // namespace dace::obs
