// Persistent profile database (ROADMAP item 3: close the loop from
// measurement back into the pipeline).
//
// An on-disk, crash-safe store of per-program execution profiles keyed
// by Program::hash (runtime/bytecode.hpp): per-map EMA ns/iter for both
// tiers, cumulative iterations and launches, the highest tier reached,
// Tier-0 VMStats deltas (when the run was instrumented) and the last
// rewriting pass that shaped the program.  Pipeline entries (keyed by a
// fingerprint of the serialized SDFG) record per-pass win/loss history
// from transactional auto_optimize runs.
//
// Writes use the PR-8 artifact-cache protocol (codegen/artifact_cache.*):
//   - one file per entry, written to a per-process temp name, fsync'd,
//     then atomically rename(2)-committed
//   - a versioned header plus an FNV-1a whole-record checksum, verified
//     on every load; corrupt or truncated entries are *deleted on sight*
//     and degrade to a miss, never to loading garbage
//   - cross-process writers (two executors tearing down at once)
//     serialize on a per-key flock(2) lock file with a bounded wait;
//     locks die with their owner
//   - every filesystem failure is contained: a broken DB costs history,
//     never correctness
//
// Merging is EMA across runs: ns/iter folds 50/50 into the stored value,
// monotonic counters sum, tier takes the max -- so the DB converges on
// the steady-state cost of each program instead of echoing one run.
//
// The read side (profile-guided optimization) is a separate opt-in:
// DACE_PGO=1 lets tiering pre-promote known-hot maps, seeds the chunk
// scheduler's cost EMA, and lets auto_optimize skip historically-doomed
// passes.  With DACE_PGO unset (default) nothing ever reads the DB, so
// the off path is byte-identical in behavior.
//
// Env knobs (docs/OBSERVABILITY.md):
//   DACE_PROFILE_DB=0        disable the store entirely (no writes, no reads)
//   DACE_PROFILE_DB_DIR=path store root (default <cache root>/profdb, same
//                            XDG resolution as DACE_CACHE_DIR)
//   DACE_PGO=0|1             profile-guided consumers (default 0 = off)
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dace::prof {

/// FNV-1a 64 (local copy; common/ must not depend on codegen/).
uint64_t fnv1a(const void* data, size_t n,
               uint64_t h = 1469598103934665603ull);

/// One map program's accumulated profile (a DB entry, and the unit a
/// teardown flush merges in).
struct MapProfile {
  uint64_t program_hash = 0;
  std::string label;             // map name (latest flush wins)
  int64_t runs = 0;              // executor teardowns merged in
  int64_t launches = 0;          // map dispatches
  int64_t iterations = 0;        // summed outer iterations
  int tier = 0;                  // highest tier ever reached (0 or 1)
  double ns_per_iter[2] = {0.0, 0.0};  // EMA across runs, per tier
  // Tier-0 VMStats deltas (summed; zero unless the run was instrumented).
  int64_t instrs = 0;
  int64_t flops = 0;
  int64_t loads = 0;
  int64_t stores = 0;
  std::string last_pass;         // last committed rewriting pass
};

/// Per-pass outcome history of one program's auto_optimize pipeline.
struct PassStat {
  std::string name;
  int64_t runs = 0;
  int64_t applied = 0;
  int64_t committed = 0;
  int64_t rolled_back = 0;
};

struct PipelineProfile {
  uint64_t sdfg_hash = 0;
  int64_t runs = 0;
  std::vector<PassStat> passes;
};

struct DbConfig {
  bool enabled = true;      // DACE_PROFILE_DB != "0"
  std::string dir;          // resolved store root
  int lock_timeout_ms = 5000;  // writer-lock wait bound

  static DbConfig from_env();
};

/// Process-local activity counters (mirrored into the metrics registry).
struct DbStats {
  uint64_t loads = 0;             // verified entry reads
  uint64_t misses = 0;            // key not present
  uint64_t merges = 0;            // entries committed
  uint64_t corrupt_rejected = 0;  // checksum/header mismatches deleted
  uint64_t errors = 0;            // lock timeouts, write failures
};

class ProfileDB {
 public:
  explicit ProfileDB(DbConfig cfg);

  /// Env-configured process singleton (leaked, artifact-cache style).
  static ProfileDB& instance();
  /// Rebuild the singleton from the current environment (tests flip
  /// DACE_PROFILE_DB* between cases).  The old instance leaks by design.
  static void reset_for_testing();

  bool enabled() const { return cfg_.enabled && !dir_failed_; }
  const DbConfig& config() const { return cfg_; }
  const std::string& dir() const { return cfg_.dir; }
  DbStats stats() const;

  /// Load the verified entry for `program_hash`; false on miss (corrupt
  /// entries are deleted and reported as misses).
  bool load_map(uint64_t program_hash, MapProfile* out);
  /// Merge one process's teardown snapshot into the stored entry under
  /// the key lock (EMA for ns/iter, sum for counters, max for tier).
  /// False when the DB could not take the update (disabled, lock
  /// timeout, write failure) -- never throws.
  bool merge_map(const MapProfile& delta);

  bool load_pipeline(uint64_t sdfg_hash, PipelineProfile* out);
  bool merge_pipeline(uint64_t sdfg_hash,
                      const std::vector<PassStat>& delta);

  /// All verified map entries (sdfg-prof/tests; corrupt ones deleted).
  std::vector<MapProfile> list_maps();
  /// Remove every entry.  Returns the number of files removed.
  int purge();

  /// Entry file path for a map program (tests corrupt it in place).
  std::string map_path(uint64_t program_hash) const;
  std::string pipeline_path(uint64_t sdfg_hash) const;

 private:
  bool load_file(const std::string& path, const char* kind,
                 std::string* body);
  bool commit_file(const std::string& path, const std::string& body);

  DbConfig cfg_;
  bool dir_failed_ = false;  // store root could not be created: disabled
  mutable std::mutex mu_;    // guards stats_
  mutable DbStats stats_;
};

/// True when DACE_PGO=1: the profile-guided consumers are armed.  Read
/// from the environment on every call (tests and benches flip it
/// between executors); one getenv, only consulted at program-compile
/// and pipeline-build time.
bool pgo_enabled();

/// Last committed rewriting pass of the most recent auto_optimize run in
/// this process ("" when none ran).  Executor teardown stamps it into
/// the map profiles it flushes -- the same coarse attribution sdfg-prof
/// derives from a trace.
void note_last_rewrite(const std::string& pass);
std::string last_rewrite();

}  // namespace dace::prof
