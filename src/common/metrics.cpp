#include "common/metrics.hpp"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

namespace dace::metrics {

namespace {

std::atomic<bool> g_enabled{true};
std::atomic<bool> g_env_read{false};

/// Registration tables.  Leaked (instruments must outlive detached
/// threads); node-based maps keep instrument addresses stable forever.
struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

void read_env_once() {
  if (g_env_read.load(std::memory_order_acquire)) return;
  const char* e = std::getenv("DACE_METRICS");
  if (e && std::string(e) == "0") {
    g_enabled.store(false, std::memory_order_relaxed);
  }
  g_env_read.store(true, std::memory_order_release);
}

}  // namespace

bool enabled() {
  read_env_once();
  return g_enabled.load(std::memory_order_relaxed);
}

void set_enabled(bool on) {
  read_env_once();
  g_enabled.store(on, std::memory_order_relaxed);
}

Counter& counter(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  auto& slot = r.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& gauge(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  auto& slot = r.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& histogram(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  auto& slot = r.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string expose_text() {
  // Snapshot the instrument pointers under the lock, render outside it:
  // rendering a histogram reads 65 atomics and must not hold up
  // registration on hot paths.
  std::vector<std::pair<std::string, const Counter*>> cs;
  std::vector<std::pair<std::string, const Gauge*>> gs;
  std::vector<std::pair<std::string, const Histogram*>> hs;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lk(r.mu);
    for (const auto& [n, c] : r.counters) cs.emplace_back(n, c.get());
    for (const auto& [n, g] : r.gauges) gs.emplace_back(n, g.get());
    for (const auto& [n, h] : r.histograms) hs.emplace_back(n, h.get());
  }
  std::ostringstream os;
  for (const auto& [n, c] : cs) {
    os << "# TYPE " << n << " counter\n"
       << n << " " << c->value() << "\n";
  }
  for (const auto& [n, g] : gs) {
    os << "# TYPE " << n << " gauge\n"
       << n << " " << g->value() << "\n";
  }
  char bound[32];
  for (const auto& [n, h] : hs) {
    os << "# TYPE " << n << " histogram\n";
    // Cumulative buckets, emitted up to the highest occupied one; the
    // +Inf bucket always closes the series (Prometheus requires it).
    int hi = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (h->bucket(i)) hi = i;
    }
    uint64_t cum = 0;
    for (int i = 0; i <= hi && i < Histogram::kBuckets - 1; ++i) {
      cum += h->bucket(i);
      snprintf(bound, sizeof(bound), "%llu",
               (unsigned long long)Histogram::bucket_bound(i));
      os << n << "_bucket{le=\"" << bound << "\"} " << cum << "\n";
    }
    os << n << "_bucket{le=\"+Inf\"} " << h->count() << "\n"
       << n << "_sum " << h->sum() << "\n"
       << n << "_count " << h->count() << "\n";
  }
  return os.str();
}

void reset_for_testing() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lk(r.mu);
  for (auto& [n, c] : r.counters) c->reset();
  for (auto& [n, g] : r.gauges) g->reset();
  for (auto& [n, h] : r.histograms) h->reset();
}

}  // namespace dace::metrics
