#include "common/profdb.hpp"

#include <fcntl.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <thread>

#include "common/metrics.hpp"
#include "common/obs.hpp"

namespace fs = std::filesystem;

namespace dace::prof {

uint64_t fnv1a(const void* data, size_t n, uint64_t h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

/// On-disk format generation: written into every header, so a layout
/// change invalidates old entries instead of misreading them.
constexpr int kFormatVersion = 1;
constexpr const char* kMagic = "daceppprof";

std::string hex64(uint64_t v) {
  char buf[17];
  snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)v);
  return buf;
}

bool parse_hex64(const std::string& s, uint64_t* out) {
  if (s.size() != 16) return false;
  char* end = nullptr;
  errno = 0;
  *out = std::strtoull(s.c_str(), &end, 16);
  return errno == 0 && end == s.c_str() + 16;
}

bool write_file_sync(const std::string& path, const std::string& data,
                     std::string* why) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    *why = std::string("open failed: ") + std::strerror(errno);
    return false;
  }
  size_t off = 0;
  while (off < data.size()) {
    ssize_t w = ::write(fd, data.data() + off, data.size() - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      *why = std::string("write failed: ") + std::strerror(errno);
      ::close(fd);
      ::unlink(path.c_str());
      return false;
    }
    off += (size_t)w;
  }
  ::fsync(fd);
  ::close(fd);
  return true;
}

bool read_file(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  out->clear();
  char buf[1 << 16];
  ssize_t r;
  while ((r = ::read(fd, buf, sizeof(buf))) > 0) out->append(buf, (size_t)r);
  ::close(fd);
  return r == 0;
}

/// flock(2)-based per-key writer lock (the artifact-cache pattern):
/// locks die with their owner, so a crashed writer leaves only a
/// harmless lock file behind.
class KeyLock {
 public:
  bool acquire(const std::string& path, int timeout_ms) {
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0) return false;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
      if (errno != EWOULDBLOCK && errno != EINTR) {
        ::close(fd_);
        fd_ = -1;
        return false;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        ::close(fd_);
        fd_ = -1;
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return true;
  }
  ~KeyLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }

 private:
  int fd_ = -1;
};

/// One "tag value..." line; the value may contain spaces (labels do).
bool take_line(std::istringstream& is, const char* tag, std::string* val) {
  std::string line;
  if (!std::getline(is, line)) return false;
  size_t sp = line.find(' ');
  if (sp == std::string::npos || line.substr(0, sp) != tag) return false;
  *val = line.substr(sp + 1);
  return true;
}

std::string fmt_double(double v) {
  char buf[64];
  snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string render_map(const MapProfile& p) {
  std::ostringstream os;
  os << "program " << hex64(p.program_hash) << '\n'
     << "label " << p.label << '\n'
     << "runs " << p.runs << '\n'
     << "launches " << p.launches << '\n'
     << "iterations " << p.iterations << '\n'
     << "tier " << p.tier << '\n'
     << "ns0 " << fmt_double(p.ns_per_iter[0]) << '\n'
     << "ns1 " << fmt_double(p.ns_per_iter[1]) << '\n'
     << "instrs " << p.instrs << '\n'
     << "flops " << p.flops << '\n'
     << "loads " << p.loads << '\n'
     << "stores " << p.stores << '\n'
     << "last_pass " << p.last_pass << '\n';
  return os.str();
}

bool parse_map(const std::string& body, MapProfile* out) {
  std::istringstream is(body);
  std::string v;
  if (!take_line(is, "program", &v) || !parse_hex64(v, &out->program_hash))
    return false;
  if (!take_line(is, "label", &v)) return false;
  out->label = v;
  if (!take_line(is, "runs", &v)) return false;
  out->runs = std::atoll(v.c_str());
  if (!take_line(is, "launches", &v)) return false;
  out->launches = std::atoll(v.c_str());
  if (!take_line(is, "iterations", &v)) return false;
  out->iterations = std::atoll(v.c_str());
  if (!take_line(is, "tier", &v)) return false;
  out->tier = std::atoi(v.c_str());
  if (!take_line(is, "ns0", &v)) return false;
  out->ns_per_iter[0] = std::strtod(v.c_str(), nullptr);
  if (!take_line(is, "ns1", &v)) return false;
  out->ns_per_iter[1] = std::strtod(v.c_str(), nullptr);
  if (!take_line(is, "instrs", &v)) return false;
  out->instrs = std::atoll(v.c_str());
  if (!take_line(is, "flops", &v)) return false;
  out->flops = std::atoll(v.c_str());
  if (!take_line(is, "loads", &v)) return false;
  out->loads = std::atoll(v.c_str());
  if (!take_line(is, "stores", &v)) return false;
  out->stores = std::atoll(v.c_str());
  if (!take_line(is, "last_pass", &v)) return false;
  out->last_pass = v;
  return true;
}

std::string render_pipeline(const PipelineProfile& p) {
  std::ostringstream os;
  os << "program " << hex64(p.sdfg_hash) << '\n'
     << "runs " << p.runs << '\n';
  for (const PassStat& s : p.passes) {
    os << "pass " << s.runs << ' ' << s.applied << ' ' << s.committed << ' '
       << s.rolled_back << ' ' << s.name << '\n';
  }
  return os.str();
}

bool parse_pipeline(const std::string& body, PipelineProfile* out) {
  std::istringstream is(body);
  std::string v;
  if (!take_line(is, "program", &v) || !parse_hex64(v, &out->sdfg_hash))
    return false;
  if (!take_line(is, "runs", &v)) return false;
  out->runs = std::atoll(v.c_str());
  out->passes.clear();
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tag;
    PassStat s;
    if (!(ls >> tag >> s.runs >> s.applied >> s.committed >>
          s.rolled_back) ||
        tag != "pass")
      return false;
    std::getline(ls, s.name);
    if (!s.name.empty() && s.name[0] == ' ') s.name.erase(0, 1);
    if (s.name.empty()) return false;
    out->passes.push_back(std::move(s));
  }
  return true;
}

/// Fold `delta` into `into` (the EMA-merge contract in the header).
void merge_into(MapProfile* into, const MapProfile& delta) {
  if (!delta.label.empty()) into->label = delta.label;
  into->runs += delta.runs > 0 ? delta.runs : 1;
  into->launches += delta.launches;
  into->iterations += delta.iterations;
  into->tier = std::max(into->tier, delta.tier);
  for (int t = 0; t < 2; ++t) {
    double d = delta.ns_per_iter[t];
    if (d <= 0) continue;
    double& e = into->ns_per_iter[t];
    e = e <= 0 ? d : 0.5 * e + 0.5 * d;
  }
  into->instrs += delta.instrs;
  into->flops += delta.flops;
  into->loads += delta.loads;
  into->stores += delta.stores;
  if (!delta.last_pass.empty()) into->last_pass = delta.last_pass;
}

void merge_pipeline_into(PipelineProfile* into,
                         const std::vector<PassStat>& delta) {
  ++into->runs;
  for (const PassStat& d : delta) {
    PassStat* slot = nullptr;
    for (PassStat& s : into->passes) {
      if (s.name == d.name) {
        slot = &s;
        break;
      }
    }
    if (!slot) {
      into->passes.push_back(PassStat{d.name, 0, 0, 0, 0});
      slot = &into->passes.back();
    }
    slot->runs += d.runs > 0 ? d.runs : 1;
    slot->applied += d.applied;
    slot->committed += d.committed;
    slot->rolled_back += d.rolled_back;
  }
}

// -- process-global last-rewrite note ----------------------------------------

std::mutex g_rewrite_mu;
std::string& rewrite_slot() {
  static std::string* s = new std::string();
  return *s;
}

}  // namespace

void note_last_rewrite(const std::string& pass) {
  std::lock_guard<std::mutex> lk(g_rewrite_mu);
  rewrite_slot() = pass;
}

std::string last_rewrite() {
  std::lock_guard<std::mutex> lk(g_rewrite_mu);
  return rewrite_slot();
}

bool pgo_enabled() {
  const char* e = std::getenv("DACE_PGO");
  return e && std::string(e) == "1";
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

DbConfig DbConfig::from_env() {
  DbConfig cfg;
  if (const char* e = std::getenv("DACE_PROFILE_DB")) {
    cfg.enabled = std::string(e) != "0";
  }
  if (const char* e = std::getenv("DACE_PROFILE_DB_DIR"); e && *e) {
    cfg.dir = e;
  } else if (const char* c = std::getenv("DACE_CACHE_DIR"); c && *c) {
    // Ride along with an explicitly-relocated artifact cache so tests
    // that isolate DACE_CACHE_DIR isolate the profile DB for free.
    cfg.dir = std::string(c) + "/profdb";
  } else if (const char* x = std::getenv("XDG_CACHE_HOME"); x && *x) {
    cfg.dir = std::string(x) + "/dacepp/profdb";
  } else if (const char* h = std::getenv("HOME"); h && *h) {
    cfg.dir = std::string(h) + "/.cache/dacepp/profdb";
  } else {
    cfg.dir = "/tmp/dacepp-profdb-" + std::to_string((long)getuid());
  }
  if (const char* e = std::getenv("DACE_CACHE_LOCK_TIMEOUT_MS")) {
    int v = std::atoi(e);
    if (v >= 0) cfg.lock_timeout_ms = v;
  }
  return cfg;
}

// ---------------------------------------------------------------------------
// The DB
// ---------------------------------------------------------------------------

ProfileDB::ProfileDB(DbConfig cfg) : cfg_(std::move(cfg)) {
  if (!cfg_.enabled) return;
  std::error_code ec;
  fs::create_directories(cfg_.dir, ec);
  if (ec || !fs::is_directory(cfg_.dir)) dir_failed_ = true;
}

namespace {
// Single shared slot: instance() lazily fills it, reset_for_testing()
// replaces it.  Leaked by design -- executor destructors may flush at
// any point in shutdown, and a detached thread may still hold the old
// instance after a reset.
ProfileDB** instance_slot() {
  static ProfileDB* db = nullptr;
  return &db;
}
}  // namespace

ProfileDB& ProfileDB::instance() {
  ProfileDB** slot = instance_slot();
  if (!*slot) *slot = new ProfileDB(DbConfig::from_env());
  return **slot;
}

void ProfileDB::reset_for_testing() {
  *instance_slot() = new ProfileDB(DbConfig::from_env());
}

DbStats ProfileDB::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

std::string ProfileDB::map_path(uint64_t program_hash) const {
  return cfg_.dir + "/map-" + hex64(program_hash) + ".prof";
}

std::string ProfileDB::pipeline_path(uint64_t sdfg_hash) const {
  return cfg_.dir + "/pipe-" + hex64(sdfg_hash) + ".prof";
}

bool ProfileDB::load_file(const std::string& path, const char* kind,
                          std::string* body) {
  std::string text;
  if (!read_file(path, &text)) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.misses;
    return false;
  }
  // Record layout: "<magic> <version>\nkind <kind>\n<body>checksum <hex>\n".
  // The checksum covers everything before its own line.
  auto reject = [&]() {
    ::unlink(path.c_str());
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.corrupt_rejected;
    }
    METRIC_INC("dacepp_profdb_corrupt_total");
    OBS_INSTANT("profdb", "corrupt-reject");
    return false;
  };
  size_t tail = text.rfind("checksum ");
  if (tail == std::string::npos || tail == 0 || text[tail - 1] != '\n')
    return reject();
  std::string csline = text.substr(tail + 9);
  while (!csline.empty() && (csline.back() == '\n' || csline.back() == '\r'))
    csline.pop_back();
  uint64_t want = 0;
  if (!parse_hex64(csline, &want)) return reject();
  if (fnv1a(text.data(), tail) != want) return reject();
  std::istringstream is(text.substr(0, tail));
  std::string line;
  if (!std::getline(is, line) ||
      line != std::string(kMagic) + " " + std::to_string(kFormatVersion))
    return reject();
  std::string v;
  if (!take_line(is, "kind", &v) || v != kind) return reject();
  body->assign(text.begin() + (long)is.tellg(), text.begin() + (long)tail);
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.loads;
  }
  METRIC_INC("dacepp_profdb_loads_total");
  return true;
}

bool ProfileDB::commit_file(const std::string& path,
                            const std::string& body) {
  std::string rec = body + "checksum " + hex64(fnv1a(body.data(), body.size())) + "\n";
  std::string tmp = path + ".tmp." + std::to_string((long)getpid());
  std::string why;
  if (!write_file_sync(tmp, rec, &why)) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.errors;
    return false;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.errors;
    return false;
  }
  // No parent-dir fsync here, unlike the artifact cache: the temp-file
  // fsync plus atomic rename already rule out torn entries (the
  // corruption vector the checksum guards against), and losing the
  // rename itself to a power cut merely reverts to the previous
  // profile.  Profiles are flushed on every executor teardown -- the
  // serve daemon's request path -- so the extra fsync is latency paid
  // per request for durability the data does not need.
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.merges;
  }
  METRIC_INC("dacepp_profdb_merges_total");
  return true;
}

bool ProfileDB::load_map(uint64_t program_hash, MapProfile* out) {
  if (!enabled()) return false;
  std::string body;
  if (!load_file(map_path(program_hash), "map", &body)) return false;
  MapProfile p;
  if (!parse_map(body, &p) || p.program_hash != program_hash) {
    ::unlink(map_path(program_hash).c_str());
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.corrupt_rejected;
    return false;
  }
  *out = std::move(p);
  return true;
}

bool ProfileDB::merge_map(const MapProfile& delta) {
  if (!enabled()) return false;
  std::string path = map_path(delta.program_hash);
  KeyLock lock;
  if (!lock.acquire(path + ".lock", cfg_.lock_timeout_ms)) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.errors;
    return false;
  }
  MapProfile merged;
  merged.program_hash = delta.program_hash;
  {
    // Re-read under the lock so concurrent flushes serialize their
    // read-merge-write cycles instead of losing updates.
    std::string body;
    MapProfile prev;
    if (load_file(path, "map", &body) && parse_map(body, &prev) &&
        prev.program_hash == delta.program_hash) {
      merged = std::move(prev);
    }
  }
  merge_into(&merged, delta);
  std::ostringstream os;
  os << kMagic << ' ' << kFormatVersion << "\nkind map\n" << render_map(merged);
  return commit_file(path, os.str());
}

bool ProfileDB::load_pipeline(uint64_t sdfg_hash, PipelineProfile* out) {
  if (!enabled()) return false;
  std::string body;
  if (!load_file(pipeline_path(sdfg_hash), "pipeline", &body)) return false;
  PipelineProfile p;
  if (!parse_pipeline(body, &p) || p.sdfg_hash != sdfg_hash) {
    ::unlink(pipeline_path(sdfg_hash).c_str());
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.corrupt_rejected;
    return false;
  }
  *out = std::move(p);
  return true;
}

bool ProfileDB::merge_pipeline(uint64_t sdfg_hash,
                               const std::vector<PassStat>& delta) {
  if (!enabled()) return false;
  std::string path = pipeline_path(sdfg_hash);
  KeyLock lock;
  if (!lock.acquire(path + ".lock", cfg_.lock_timeout_ms)) {
    std::lock_guard<std::mutex> lk(mu_);
    ++stats_.errors;
    return false;
  }
  PipelineProfile merged;
  merged.sdfg_hash = sdfg_hash;
  {
    std::string body;
    PipelineProfile prev;
    if (load_file(path, "pipeline", &body) && parse_pipeline(body, &prev) &&
        prev.sdfg_hash == sdfg_hash) {
      merged = std::move(prev);
    }
  }
  merge_pipeline_into(&merged, delta);
  std::ostringstream os;
  os << kMagic << ' ' << kFormatVersion << "\nkind pipeline\n"
     << render_pipeline(merged);
  return commit_file(path, os.str());
}

std::vector<MapProfile> ProfileDB::list_maps() {
  std::vector<MapProfile> out;
  if (!enabled()) return out;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(cfg_.dir, ec)) {
    std::string name = e.path().filename().string();
    if (name.rfind("map-", 0) != 0 || name.size() != 4 + 16 + 5) continue;
    uint64_t h = 0;
    if (!parse_hex64(name.substr(4, 16), &h)) continue;
    MapProfile p;
    if (load_map(h, &p)) out.push_back(std::move(p));
  }
  return out;
}

int ProfileDB::purge() {
  if (cfg_.dir.empty()) return 0;
  int n = 0;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(cfg_.dir, ec)) {
    std::string name = e.path().filename().string();
    if (name.rfind("map-", 0) != 0 && name.rfind("pipe-", 0) != 0) continue;
    std::error_code rec;
    if (fs::remove(e.path(), rec)) ++n;
  }
  return n;
}

}  // namespace dace::prof
