#include "common/diag.hpp"

#include <algorithm>
#include <sstream>

namespace dace::diag {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::Note: return "note";
    case Severity::Warning: return "warning";
    case Severity::Error: return "error";
  }
  return "error";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Diagnostic::format(const std::string& file) const {
  std::ostringstream os;
  if (!file.empty()) os << file << ":";
  if (line > 0) {
    os << line << ":";
    if (col > 0) os << col << ":";
    os << " ";
  } else if (!file.empty()) {
    os << " ";
  }
  os << severity_name(severity) << ": ";
  if (!code.empty()) os << "[" << code << "] ";
  os << message;
  return os.str();
}

std::string Diagnostic::to_json() const {
  std::ostringstream os;
  os << "{\"code\": \"" << json_escape(code) << "\", \"severity\": \""
     << severity_name(severity) << "\", \"line\": " << line
     << ", \"col\": " << col << ", \"span\": " << span << ", \"message\": \""
     << json_escape(message) << "\", \"notes\": [";
  for (size_t i = 0; i < notes.size(); ++i) {
    if (i) os << ", ";
    os << "\"" << json_escape(notes[i]) << "\"";
  }
  os << "]}";
  return os.str();
}

void DiagSink::set_source(std::string name, std::string text) {
  source_name_ = std::move(name);
  source_lines_.clear();
  std::string line;
  for (char c : text) {
    if (c == '\n') {
      source_lines_.push_back(line);
      line.clear();
    } else {
      line += c;
    }
  }
  source_lines_.push_back(line);
  have_source_ = true;
}

Diagnostic& DiagSink::report(Diagnostic d) {
  if (d.span < 1) d.span = 1;
  diags_.push_back(std::move(d));
  return diags_.back();
}

Diagnostic& DiagSink::error(std::string code, int line, int col,
                            std::string message, int span) {
  return report({std::move(code), Severity::Error, line, col, span,
                 std::move(message), {}});
}

Diagnostic& DiagSink::warning(std::string code, int line, int col,
                              std::string message, int span) {
  return report({std::move(code), Severity::Warning, line, col, span,
                 std::move(message), {}});
}

Diagnostic& DiagSink::note(std::string code, int line, int col,
                           std::string message, int span) {
  return report({std::move(code), Severity::Note, line, col, span,
                 std::move(message), {}});
}

bool DiagSink::has_errors() const {
  return std::any_of(diags_.begin(), diags_.end(), [](const Diagnostic& d) {
    return d.severity == Severity::Error;
  });
}

size_t DiagSink::error_count() const {
  return static_cast<size_t>(
      std::count_if(diags_.begin(), diags_.end(), [](const Diagnostic& d) {
        return d.severity == Severity::Error;
      }));
}

std::string DiagSink::render() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) {
    os << d.format(source_name_) << "\n";
    if (have_source_ && d.line >= 1 &&
        d.line <= static_cast<int>(source_lines_.size())) {
      const std::string& src = source_lines_[d.line - 1];
      os << "    " << src << "\n";
      if (d.col >= 1) {
        // Reuse the line's own whitespace (tabs included) up to the column so
        // the caret lands under the offending character in any terminal.
        std::string pad = "    ";
        for (int i = 0; i + 1 < d.col && i < static_cast<int>(src.size());
             ++i) {
          pad += (src[i] == '\t') ? '\t' : ' ';
        }
        os << pad;
        int width = std::max(1, d.span);
        for (int i = 0; i < width; ++i) os << '^';
        os << "\n";
      }
    }
    for (const std::string& note : d.notes) os << "    note: " << note << "\n";
  }
  size_t errors = error_count();
  size_t warnings = diags_.size() - errors;
  warnings -= static_cast<size_t>(
      std::count_if(diags_.begin(), diags_.end(), [](const Diagnostic& d) {
        return d.severity == Severity::Note;
      }));
  if (errors > 0) {
    os << errors << " error" << (errors == 1 ? "" : "s");
    if (warnings > 0)
      os << ", " << warnings << " warning" << (warnings == 1 ? "" : "s");
    os << " generated\n";
  } else if (warnings > 0) {
    os << warnings << " warning" << (warnings == 1 ? "" : "s")
       << " generated\n";
  }
  return os.str();
}

std::string DiagSink::to_json() const {
  std::ostringstream os;
  os << "{\"source\": \"" << json_escape(source_name_)
     << "\", \"errors\": " << error_count() << ", \"diagnostics\": [";
  for (size_t i = 0; i < diags_.size(); ++i) {
    if (i) os << ", ";
    os << diags_[i].to_json();
  }
  os << "]}";
  return os.str();
}

DiagError diag_error(const DiagSink& sink) {
  Diagnostic first;
  for (const Diagnostic& d : sink.diagnostics()) {
    if (d.severity == Severity::Error) {
      first = d;
      break;
    }
  }
  if (first.message.empty() && !sink.diagnostics().empty())
    first = sink.diagnostics().front();
  return DiagError(std::move(first), sink.render());
}

}  // namespace dace::diag
