// Live metrics registry: always-on, lock-free counters, gauges and
// log2-bucket histograms unifying the ad-hoc counters scattered across
// tiering (JIT compiles / cache hits), the artifact cache (CacheStats),
// the fault shims, the profile DB and the serve daemon (ServeStats).
//
// Design mirrors the obs:: substrate's cost contract: the *disabled*
// path (DACE_METRICS=0) is a single relaxed atomic load per call, and
// the enabled hot path is one relaxed fetch_add -- no locks, no
// allocation.  Instruments are interned by name on first use (the only
// mutex in the layer guards registration); call sites cache the returned
// reference in a function-local static via the METRIC_* macros, so the
// registry lookup happens once per site, not once per event.
//
// Exposition is Prometheus text format (expose_text()), served three
// ways: the DSRV `Metrics` verb on sdfg-serve (`sdfg-client --metrics`),
// `sdfg-cache stat --json` (cache counters), and `sdfg-prof --metrics`
// (offline, derived from a trace).  Unlike obs:: tracing, metrics are on
// by default: they are cheap enough to leave running in production.
//
// Env knobs: DACE_METRICS=0 disables collection (values freeze at their
// last state; exposition still works).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace dace::metrics {

/// True when collection is on (default).  One relaxed atomic load; the
/// first call reads DACE_METRICS.
bool enabled();
/// Programmatic switch (tests).
void set_enabled(bool on);

/// Monotonic event counter.
class Counter {
 public:
  void inc(uint64_t n = 1) {
    if (!enabled()) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-write-wins instantaneous value (queue depths, sizes).
class Gauge {
 public:
  void set(int64_t v) {
    if (!enabled()) return;
    v_.store(v, std::memory_order_relaxed);
  }
  void add(int64_t d) {
    if (!enabled()) return;
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log2-bucket histogram: observe(v) lands in bucket bit_width(v), so
/// bucket i counts values in [2^(i-1), 2^i).  64 buckets cover the full
/// uint64 range with zero configuration -- the right trade for latency
/// distributions where only the order of magnitude matters.
class Histogram {
 public:
  static constexpr int kBuckets = 65;  // bucket i: values < 2^i; [64]=rest

  void observe(uint64_t v) {
    if (!enabled()) return;
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Bucket index of a value: number of significant bits (0 for v==0).
  static int bucket_of(uint64_t v) {
    int b = 0;
    while (v) {
      ++b;
      v >>= 1;
    }
    return b < kBuckets ? b : kBuckets - 1;
  }
  /// Upper bound of bucket i (inclusive): 2^i - 1.
  static uint64_t bucket_bound(int i) {
    return i >= 64 ? ~0ull : (1ull << i) - 1;
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t bucket(int i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kBuckets] = {};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

// -- registry ----------------------------------------------------------------
// Instruments live for the process lifetime (the registry leaks by
// design, like the obs:: buffers: detached JIT threads may bump counters
// during shutdown).  Names follow Prometheus conventions:
// dacepp_<subsystem>_<what>_total for counters.

Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

/// Prometheus text exposition of every registered instrument, sorted by
/// name: "# TYPE name kind" then "name value" (histograms expand into
/// cumulative _bucket{le="..."} series plus _sum and _count).
std::string expose_text();

/// Zero every registered instrument (tests).  Registration survives.
void reset_for_testing();

}  // namespace dace::metrics

// -- macro API ---------------------------------------------------------------
// The registry lookup is cached in a function-local static, so each call
// site pays one mutex acquisition ever; after that an event costs one
// enabled() load plus one relaxed fetch_add.
#define METRIC_INC(name)                                              \
  do {                                                                \
    static ::dace::metrics::Counter& dace_metric_c_ =                 \
        ::dace::metrics::counter(name);                               \
    dace_metric_c_.inc();                                             \
  } while (0)
#define METRIC_ADD(name, n)                                           \
  do {                                                                \
    static ::dace::metrics::Counter& dace_metric_c_ =                 \
        ::dace::metrics::counter(name);                               \
    dace_metric_c_.inc((uint64_t)(n));                                \
  } while (0)
#define METRIC_GAUGE_SET(name, v)                                     \
  do {                                                                \
    static ::dace::metrics::Gauge& dace_metric_g_ =                   \
        ::dace::metrics::gauge(name);                                 \
    dace_metric_g_.set((int64_t)(v));                                 \
  } while (0)
#define METRIC_OBSERVE(name, v)                                       \
  do {                                                                \
    static ::dace::metrics::Histogram& dace_metric_h_ =               \
        ::dace::metrics::histogram(name);                             \
    dace_metric_h_.observe((uint64_t)(v));                            \
  } while (0)
