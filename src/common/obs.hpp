// Unified tracing & instrumentation substrate (the observability layer
// every other measurement island feeds into).
//
// Events are collected into per-thread ring buffers: a thread only ever
// locks its own buffer, so tracing never serializes the traced code.  The
// *disabled* path -- the common case -- is a single relaxed atomic load,
// and the macro API below can be compiled out entirely with
// -DDACEPP_OBS_OFF (CMake: -DDACE_OBS=OFF).
//
// Three event shapes, matching the Chrome trace-event / Perfetto JSON
// format the exporter emits (load the file at ui.perfetto.dev or
// chrome://tracing):
//   span     -- a Complete event ("X"): name, start, duration
//   instant  -- a point event ("i"): something happened now
//   counter  -- a sampled value ("C") rendered as a track
//
// Two timelines coexist in one trace:
//   pid 0 -- host wall-clock (obs::now_ns(), monotonic ns since start);
//            tid is a small per-thread id assigned at first use
//   pid 1 -- simMPI *virtual* time; tid is the rank, timestamps are the
//            rank's modeled clock (distributed/simmpi.cpp stamps these)
//
// Env knobs:
//   DACE_TRACE_FILE=out.json   enable tracing; write the trace at exit
//   DACE_TRACE_RANKS=0,3       restrict virtual-rank events to these ranks
//   DACE_TRACE_BUFFER=N        per-thread ring capacity (default 65536)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace dace::obs {

enum class Phase : char { Complete = 'X', Instant = 'i', Counter = 'C' };

/// One recorded event.  Timestamps are microseconds (Chrome trace unit):
/// host events use now_ns()/1e3, virtual-time events use vtime * 1e6.
struct TraceEvent {
  Phase phase = Phase::Instant;
  std::string name;
  const char* cat = "";
  double ts_us = 0;
  double dur_us = 0;    // Complete only
  int pid = 0;          // 0 = host wall-clock, 1 = virtual rank time
  int tid = 0;
  double value = 0;     // Counter only
  std::string args;     // preformatted JSON object ("{...}") or empty
};

/// True if tracing is on.  The fast path is one relaxed atomic load; the
/// first call reads DACE_TRACE_FILE / DACE_TRACE_RANKS / DACE_TRACE_BUFFER.
bool enabled();
/// Programmatic switch (tests, tools).  Parses the env config first so a
/// later write_trace/rank_traced sees DACE_TRACE_* settings.
void set_enabled(bool on);

/// Monotonic nanoseconds since process start: the shared timer every
/// subsystem (executor, JIT, passes, bench) measures with.
int64_t now_ns();

// -- emission (all no-ops when disabled) -------------------------------------

/// Host-timeline span: start/duration in now_ns() nanoseconds.
void complete(const char* cat, std::string name, int64_t start_ns,
              int64_t dur_ns, std::string args = "");
/// Explicitly stamped span (virtual timelines; ts/dur in microseconds).
void complete_at(const char* cat, std::string name, double ts_us,
                 double dur_us, int pid, int tid, std::string args = "");
/// Host-timeline instant at now.
void instant(const char* cat, std::string name, std::string args = "");
/// Explicitly stamped instant (virtual timelines).
void instant_at(const char* cat, std::string name, double ts_us, int pid,
                int tid, std::string args = "");
/// Host-timeline counter sample.
void counter(const char* cat, std::string name, double value);

/// RAII span: records a Complete event from construction to destruction.
/// Costs one enabled() check when tracing is off.
class Span {
 public:
  Span(const char* cat, std::string name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  /// Attach a preformatted JSON args object, emitted on close.
  void set_args(std::string args) { args_ = std::move(args); }
  bool active() const { return active_; }

 private:
  const char* cat_;
  std::string name_;
  std::string args_;
  int64_t t0_ = 0;
  bool active_ = false;
};

// -- registry / export -------------------------------------------------------

/// All recorded events in a deterministic order: sorted by (pid, tid, ts),
/// stable on per-thread emission order.  Two runs of the same deterministic
/// workload produce the same sequence modulo timestamps.
std::vector<TraceEvent> snapshot();
/// Events lost to ring-buffer overflow across all threads.
uint64_t dropped();
/// Total events currently buffered.
size_t event_count();
/// Discard all buffered events (buffers stay registered).
void clear();

/// Full Chrome trace-event JSON document ({"traceEvents": [...]}).
std::string to_chrome_json();
/// Write to_chrome_json() to `path`; false if the file cannot be written.
bool write_trace(const std::string& path);

/// DACE_TRACE_FILE value ("" when unset).
const std::string& trace_file();
/// True if virtual-rank events for `rank` pass the DACE_TRACE_RANKS filter
/// (no filter = all ranks).
bool rank_traced(int rank);

}  // namespace dace::obs

// -- macro API ---------------------------------------------------------------
// OBS_SPAN places an RAII span covering the rest of the scope.  All macros
// compile to ((void)0) under DACEPP_OBS_OFF.
#ifndef DACEPP_OBS_OFF
#define DACE_OBS_CONCAT_(a, b) a##b
#define DACE_OBS_CONCAT(a, b) DACE_OBS_CONCAT_(a, b)
#define OBS_SPAN(cat, ...) \
  ::dace::obs::Span DACE_OBS_CONCAT(obs_span_, __LINE__)(cat, __VA_ARGS__)
#define OBS_COUNTER(cat, name, val)                              \
  do {                                                           \
    if (::dace::obs::enabled())                                  \
      ::dace::obs::counter(cat, name, (double)(val));            \
  } while (0)
#define OBS_INSTANT(cat, ...)                                    \
  do {                                                           \
    if (::dace::obs::enabled()) ::dace::obs::instant(cat, __VA_ARGS__); \
  } while (0)
#else
#define OBS_SPAN(cat, ...) ((void)0)
#define OBS_COUNTER(cat, name, val) ((void)0)
#define OBS_INSTANT(cat, ...) ((void)0)
#endif
