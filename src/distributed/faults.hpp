// Fault injection and resilience primitives for the simMPI substrate.
//
// A FaultPlan is a *seeded, deterministic* chaos schedule: given the same
// seed and the same communication schedule, the same messages are dropped,
// delayed, duplicated or reordered, and the same ranks stall or crash at
// the same operation index.  Determinism is what makes chaos findings
// actionable -- any failure discovered by a randomized sweep is
// reproducible from its seed alone (tools/dist-replay).
//
// The typed error hierarchy turns the two classic distributed failure
// modes -- silent hangs and context-free aborts -- into structured
// diagnoses: CommTimeout and PeerFailed name the rank, peer, tag and byte
// count involved, and World::run aggregates all per-rank failures into a
// single DistError instead of rethrowing whichever surfaced first.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/common.hpp"

namespace dace::dist {

enum class FaultKind {
  None = 0,
  Drop,       // message transmission lost; sender retransmits with backoff
  Delay,      // message arrival pushed back by delay_s (virtual time)
  Duplicate,  // a second copy of the message is enqueued
  Reorder,    // message overtakes the previously queued one on its channel
  Stall,      // rank goes silent for stall_s wall seconds at the Nth op
  Crash,      // rank dies at the Nth comm op (throws RankCrashed)
};

const char* fault_kind_name(FaultKind k);

/// One injected fault, recorded on the World's event log.
struct FaultEvent {
  FaultKind kind = FaultKind::None;
  int rank = -1;      // rank on which the fault was injected
  int peer = -1;      // message destination (p2p faults), -1 otherwise
  int tag = -1;
  int64_t bytes = 0;
  uint64_t seq = 0;   // channel sequence (p2p) or rank op index
  int attempt = 0;    // transmission attempt the fault hit
  double vtime = 0;   // injecting rank's virtual clock at injection

  std::string to_string() const;
};

/// Seeded deterministic fault schedule, installed on a World.
struct FaultPlan {
  uint64_t seed = 0;
  double drop_prob = 0;
  double delay_prob = 0;
  double delay_s = 500e-6;     // virtual seconds added by a Delay fault
  double dup_prob = 0;
  double reorder_prob = 0;
  int stall_rank = -1;         // rank to stall (-1: none)
  int64_t stall_at_op = -1;    // ...at this per-rank comm-op index
  double stall_s = 0.25;       // wall seconds the rank goes silent
  int crash_rank = -1;         // rank to crash (-1: none)
  int64_t crash_at_op = -1;

  /// True if any fault can ever fire.
  bool active() const;

  /// Decision for transmission `attempt` of message `seq` on channel
  /// (src, dst, tag).  Pure function of the plan and its arguments.
  FaultKind decide_message(int src, int dst, int tag, uint64_t seq,
                           int attempt) const;
  /// Rank-level decision at the rank's `op_index`-th communication op.
  FaultKind decide_rank_op(int rank, int64_t op_index) const;

  /// Canonical "key=value,..." spec (inverse of parse); "" when inactive.
  std::string to_string() const;
  /// Parse a spec like "seed=42,drop=0.01,stall_rank=2,stall_at=5".
  static FaultPlan parse(const std::string& spec);
  /// DACE_FAULT_PLAN (spec) with DACE_FAULT_SEED overriding the seed.
  static FaultPlan from_env();
};

/// Transport policy: wall-clock watchdog for silent hangs plus the
/// sender-side retransmit budget for dropped messages.  Backoff is
/// charged to the *virtual* clock, so retries degrade Fig.-12-style
/// efficiency numbers exactly as they would on a real machine.
struct CommConfig {
  double timeout_s = 30.0;     // wall seconds before an op times out
  int max_retries = 4;         // retransmissions after the first attempt
  double backoff_s = 100e-6;   // virtual backoff base, doubled per retry

  /// DACE_COMM_TIMEOUT (seconds), DACE_COMM_RETRIES.
  static CommConfig from_env();
};

// ---------------------------------------------------------------------------
// Typed failures
// ---------------------------------------------------------------------------

/// Base for per-rank communication failures: carries the structured
/// context (who, with whom, which tag, how many bytes, during which op).
class CommError : public Error {
 public:
  CommError(std::string msg, int rank, int peer, int tag, int64_t bytes,
            std::string op)
      : Error(std::move(msg)),
        rank(rank),
        peer(peer),
        tag(tag),
        bytes(bytes),
        op(std::move(op)) {}
  int rank, peer, tag;
  int64_t bytes;
  std::string op;
};

/// A communication op exceeded its deadline (peer stalled or message lost).
class CommTimeout : public CommError {
 public:
  using CommError::CommError;
};

/// The peer this op depends on has already failed.
class PeerFailed : public CommError {
 public:
  using CommError::CommError;
};

/// Injected rank crash (FaultKind::Crash).
class RankCrashed : public CommError {
 public:
  using CommError::CommError;
};

struct RankFailure {
  int rank = -1;
  std::string what;
};

/// Aggregate of every rank's failure in one World::run.
class DistError : public Error {
 public:
  explicit DistError(std::vector<RankFailure> fails);
  const std::vector<RankFailure>& failures() const { return failures_; }

 private:
  std::vector<RankFailure> failures_;
};

}  // namespace dace::dist
