#include "distributed/dist_executor.hpp"

#include "distributed/process_grid.hpp"

namespace dace::dist {

DistRunResult run_distributed_sdfg(
    World& world, const ir::SDFG& sdfg, rt::Bindings& shared_args,
    const std::function<sym::SymbolMap(int rank, int P)>& rank_symbols,
    const NodeModel& node, const FaultPlan* faults) {
  ensure_comm_handlers();
  if (faults) world.set_fault_plan(*faults);
  int P = world.size();
  Grid2D grid = Grid2D::square(P);
  world.run([&](Comm& comm) {
    RankCtx ctx;
    ctx.comm = &comm;
    ctx.px = grid.row_of(comm.rank());
    ctx.py = grid.col_of(comm.rank());

    sym::SymbolMap syms = rank_symbols(comm.rank(), P);
    syms["__rank"] = comm.rank();
    syms["__px"] = ctx.px;
    syms["__py"] = ctx.py;

    rt::ExecutorOptions opts;
    opts.parallel = false;  // one rank = one core in the model
    opts.launch_hook = [&](const std::string&, const rt::VMStats& d) {
      comm.add_time(node.compute_time(
          d.flops, 8 * (d.loads + d.stores + d.wcr_stores)));
    };
    rt::Executor ex(sdfg, opts);
    ex.comm_context = &ctx;
    // Every rank binds the same shared global tensors; local views are
    // SDFG transients private to the rank's executor.
    rt::Bindings args = shared_args;
    ex.run(args, syms);
  });
  DistRunResult r;
  r.time_s = world.max_clock();
  r.bytes = world.total_bytes();
  r.messages = world.total_messages();
  r.retries = world.total_retries();
  r.faults = (int64_t)world.fault_events().size();
  return r;
}

}  // namespace dace::dist
