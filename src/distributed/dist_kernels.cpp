#include "distributed/dist_kernels.hpp"

#include <algorithm>
#include <cmath>

#include "distributed/pblas.hpp"
#include "distributed/process_grid.hpp"
#include "runtime/tensor_ops.hpp"

namespace dace::dist {

namespace {

using rt::Bindings;
using rt::Tensor;
using Sym = sym::SymbolMap;

int64_t S(const Sym& s, const std::string& k) { return s.at(k); }

/// Replicate a global vector on this rank (charging the broadcast).
Tensor replicated(Comm& comm, const Tensor& global) {
  Tensor local = global.copy();
  comm.bcast(local.data(), local.size(), 0);
  return local;
}

/// Padded row-block of C for the ring pgemm: (mb, nb*p).
Tensor padded_c_rows(Comm& comm, const Tensor& c_global, int64_t mb,
                     int64_t nb) {
  int p = comm.size();
  Tensor out(c_global.dtype(), {mb, nb * p});
  int64_t m = c_global.shape()[0], n = c_global.shape()[1];
  for (int64_t i = 0; i < mb; ++i) {
    int64_t gi = comm.rank() * mb + i;
    if (gi >= m) break;
    for (int64_t j = 0; j < n; ++j) out.at({i, j}) = c_global.at({gi, j});
  }
  return out;
}

void store_c_rows(Comm& comm, const Tensor& c_rows, Tensor& c_global) {
  int64_t m = c_global.shape()[0], n = c_global.shape()[1];
  int64_t mb = c_rows.shape()[0];
  for (int64_t i = 0; i < mb; ++i) {
    int64_t gi = comm.rank() * mb + i;
    if (gi >= m) break;
    for (int64_t j = 0; j < n; ++j) c_global.at({gi, j}) = c_rows.at({i, j});
  }
}

/// Padded column block (k x nb) of a global (k x n) matrix.
Tensor col_block(Comm& comm, const Tensor& global, int64_t nb) {
  int64_t k = global.shape()[0], n = global.shape()[1];
  Tensor out(global.dtype(), {k, nb});
  for (int64_t i = 0; i < k; ++i) {
    for (int64_t j = 0; j < nb; ++j) {
      int64_t gj = comm.rank() * nb + j;
      if (gj < n) out.at({i, j}) = global.at({i, gj});
    }
  }
  return out;
}

/// Gather-style charge for distributing blocks at kernel start. The
/// paper excludes initial distribution time from measurements, so this
/// only synchronizes clocks.
void initial_distribution(Comm& comm) { comm.barrier(); }

// ---------------------------------------------------------------------------
// GEMM family
// ---------------------------------------------------------------------------

void dist_gemm(Comm& comm, const NodeModel& node, const Sym& sizes,
               Bindings& g, Bindings* out) {
  int p = comm.size();
  int64_t ni = S(sizes, "NI"), nj = S(sizes, "NJ");
  double alpha = g.at("alpha").value(), beta = g.at("beta").value();
  int64_t mb = block_size(ni, p), nb = block_size(nj, p);
  Tensor a_rows = local_rows(g.at("A"), p, comm.rank());
  Tensor b_col = col_block(comm, g.at("B"), nb);
  Tensor c_rows = padded_c_rows(comm, g.at("C"), mb, nb);
  initial_distribution(comm);
  // C = alpha*A@B + beta*C  ->  scale C by beta, A by alpha, accumulate.
  for (int64_t i = 0; i < c_rows.size(); ++i)
    c_rows.set_flat(i, beta * c_rows.get_flat(i));
  for (int64_t i = 0; i < a_rows.size(); ++i)
    a_rows.set_flat(i, alpha * a_rows.get_flat(i));
  comm.add_time(node.compute_time(
      (uint64_t)(c_rows.size() + a_rows.size()),
      (uint64_t)(8 * (c_rows.size() + a_rows.size()))));
  Grid2D grid = Grid2D::square(p);
  pgemm(comm, grid, node, a_rows, b_col, c_rows);
  if (out) store_c_rows(comm, c_rows, out->at("C"));
}

void dist_k2mm(Comm& comm, const NodeModel& node, const Sym& sizes,
               Bindings& g, Bindings* out) {
  int p = comm.size();
  int64_t ni = S(sizes, "NI"), nj = S(sizes, "NJ"), nl = S(sizes, "NL");
  double alpha = g.at("alpha").value(), beta = g.at("beta").value();
  Grid2D grid = Grid2D::square(p);
  int64_t mb = block_size(ni, p), njb = block_size(nj, p),
          nlb = block_size(nl, p);
  Tensor a_rows = local_rows(g.at("A"), p, comm.rank());
  Tensor b_col = col_block(comm, g.at("B"), njb);
  initial_distribution(comm);
  for (int64_t i = 0; i < a_rows.size(); ++i)
    a_rows.set_flat(i, alpha * a_rows.get_flat(i));
  Tensor tmp_rows(ir::DType::f64, {mb, njb * p});
  pgemm(comm, grid, node, a_rows, b_col, tmp_rows);
  // Second product: tmp (rows) x C (cols), trimming tmp to NJ columns.
  Tensor tmp_trim = tmp_rows.slice({0, 0}, {mb, nj}, {1, 1}).copy();
  Tensor c_col = col_block(comm, g.at("C"), nlb);
  Tensor d_rows = padded_c_rows(comm, g.at("D"), mb, nlb);
  for (int64_t i = 0; i < d_rows.size(); ++i)
    d_rows.set_flat(i, beta * d_rows.get_flat(i));
  pgemm(comm, grid, node, tmp_trim, c_col, d_rows);
  if (out) store_c_rows(comm, d_rows, out->at("D"));
}

/// Redistribute a row-block (mb x n) into a column block (m x nb): the
/// p?gemr2d analogue (all-to-all of sub-blocks).
Tensor rows_to_cols(Comm& comm, const Tensor& rows, int64_t m, int64_t n,
                    int tag_base) {
  OpContext oc(comm, "pgemr2d.rows_to_cols");
  int p = comm.size();
  int rank = comm.rank();
  int64_t mb = rows.shape()[0], nb = block_size(n, p);
  Tensor cols(rows.dtype(), {m, nb});
  // Send stripe j of my rows to rank j; receive stripes from everyone.
  for (int j = 0; j < p; ++j) {
    if (j == rank) continue;
    std::vector<double> buf;
    buf.reserve((size_t)(mb * nb));
    for (int64_t i = 0; i < mb; ++i) {
      for (int64_t c = 0; c < nb; ++c) {
        int64_t gc = j * nb + c;
        buf.push_back(gc < (int64_t)rows.shape()[1] ? rows.at({i, gc}) : 0.0);
      }
    }
    comm.send(buf.data(), (int64_t)buf.size(), j, tag_base + rank);
  }
  // Own stripe.
  for (int64_t i = 0; i < mb; ++i) {
    int64_t gi = rank * mb + i;
    if (gi >= m) break;
    for (int64_t c = 0; c < nb; ++c) {
      int64_t gc = rank * nb + c;
      cols.at({gi, c}) =
          gc < (int64_t)rows.shape()[1] ? rows.at({i, gc}) : 0.0;
    }
  }
  std::vector<double> rbuf((size_t)(mb * nb));
  for (int j = 0; j < p; ++j) {
    if (j == rank) continue;
    comm.recv(rbuf.data(), (int64_t)rbuf.size(), j, tag_base + j);
    for (int64_t i = 0; i < mb; ++i) {
      int64_t gi = j * mb + i;
      if (gi >= m) break;
      for (int64_t c = 0; c < nb; ++c)
        cols.at({gi, c}) = rbuf[(size_t)(i * nb + c)];
    }
  }
  return cols;
}

void dist_k3mm(Comm& comm, const NodeModel& node, const Sym& sizes,
               Bindings& g, Bindings* out) {
  int p = comm.size();
  int64_t ni = S(sizes, "NI"), nj = S(sizes, "NJ"), nl = S(sizes, "NL");
  Grid2D grid = Grid2D::square(p);
  int64_t mb_i = block_size(ni, p), nb_j = block_size(nj, p),
          mb_j = block_size(nj, p), nb_l = block_size(nl, p);
  Tensor a_rows = local_rows(g.at("A"), p, comm.rank());
  Tensor b_col = col_block(comm, g.at("B"), nb_j);
  Tensor c_rows = local_rows(g.at("C"), p, comm.rank());
  Tensor d_col = col_block(comm, g.at("D"), nb_l);
  initial_distribution(comm);
  // E = A @ B (rows of NI).
  Tensor e_rows(ir::DType::f64, {mb_i, nb_j * p});
  pgemm(comm, grid, node, a_rows, b_col, e_rows);
  Tensor e_trim = e_rows.slice({0, 0}, {mb_i, nj}, {1, 1}).copy();
  // F = C @ D (rows of NJ).
  Tensor f_rows(ir::DType::f64, {mb_j, nb_l * p});
  pgemm(comm, grid, node, c_rows, d_col, f_rows);
  Tensor f_trim = f_rows.slice({0, 0}, {mb_j, nl}, {1, 1}).copy();
  // Redistribute F to column blocks (p?gemr2d) for G = E @ F.
  Tensor f_col = rows_to_cols(comm, f_trim, nj, nl, 700);
  Tensor g_rows(ir::DType::f64, {mb_i, nb_l * p});
  pgemm(comm, grid, node, e_trim, f_col, g_rows);
  if (out) store_c_rows(comm, g_rows, out->at("G"));
}

// ---------------------------------------------------------------------------
// Matrix-vector family (1-D row distribution + allreduce)
// ---------------------------------------------------------------------------

void dist_atax(Comm& comm, const NodeModel& node, const Sym& sizes,
               Bindings& g, Bindings* out) {
  int p = comm.size();
  Tensor a_rows = local_rows(g.at("A"), p, comm.rank());
  Tensor x = replicated(comm, g.at("x"));
  initial_distribution(comm);
  Tensor tmp = pgemv_rows(comm, node, a_rows, x);
  Tensor y = pgemv_trans_allreduce(comm, node, a_rows, tmp,
                                   S(sizes, "N"));
  if (out && comm.rank() == 0) out->at("y").assign_from(y);
}

void dist_bicg(Comm& comm, const NodeModel& node, const Sym& sizes,
               Bindings& g, Bindings* out) {
  int p = comm.size();
  Tensor a_rows = local_rows(g.at("A"), p, comm.rank());  // (N x M) rows
  Tensor pv = replicated(comm, g.at("p"));
  Tensor r_rows = local_rows(g.at("r"), p, comm.rank());
  initial_distribution(comm);
  Tensor q_rows = pgemv_rows(comm, node, a_rows, pv);
  Tensor s = pgemv_trans_allreduce(comm, node, a_rows, r_rows,
                                   S(sizes, "M"));
  if (out) {
    store_rows(q_rows, out->at("q"), p, comm.rank());
    if (comm.rank() == 0) out->at("s").assign_from(s);
  }
}

void dist_mvt(Comm& comm, const NodeModel& node, const Sym& sizes,
              Bindings& g, Bindings* out) {
  int p = comm.size();
  int64_t n = S(sizes, "N");
  Tensor a_rows = local_rows(g.at("A"), p, comm.rank());
  Tensor y1 = replicated(comm, g.at("y1"));
  Tensor y2_rows = local_rows(g.at("y2"), p, comm.rank());
  Tensor x1_rows = local_rows(g.at("x1"), p, comm.rank());
  initial_distribution(comm);
  Tensor ay1 = pgemv_rows(comm, node, a_rows, y1);
  for (int64_t i = 0; i < x1_rows.size(); ++i)
    x1_rows.set_flat(i, x1_rows.get_flat(i) + ay1.get_flat(i));
  Tensor aty2 = pgemv_trans_allreduce(comm, node, a_rows, y2_rows, n);
  if (out) {
    store_rows(x1_rows, out->at("x1"), p, comm.rank());
    if (comm.rank() == 0) {
      Tensor x2 = rt::ops::add(g.at("x2"), aty2);
      out->at("x2").assign_from(x2);
    }
  }
}

void dist_gemver(Comm& comm, const NodeModel& node, const Sym& sizes,
                 Bindings& g, Bindings* out) {
  int p = comm.size();
  int64_t n = S(sizes, "N");
  double alpha = g.at("alpha").value(), beta = g.at("beta").value();
  Tensor a_rows = local_rows(g.at("A"), p, comm.rank());
  Tensor u1_rows = local_rows(g.at("u1"), p, comm.rank());
  Tensor u2_rows = local_rows(g.at("u2"), p, comm.rank());
  Tensor v1 = replicated(comm, g.at("v1"));
  Tensor v2 = replicated(comm, g.at("v2"));
  Tensor y_rows = local_rows(g.at("y"), p, comm.rank());
  Tensor z = replicated(comm, g.at("z"));
  Tensor w_rows = local_rows(g.at("w"), p, comm.rank());
  initial_distribution(comm);
  // A += u1 v1^T + u2 v2^T (element-wise on local rows).
  int64_t mb = a_rows.shape()[0];
  for (int64_t i = 0; i < mb; ++i) {
    double u1v = u1_rows.get_flat(i), u2v = u2_rows.get_flat(i);
    for (int64_t j = 0; j < n; ++j) {
      a_rows.at({i, j}) += u1v * v1.get_flat(j) + u2v * v2.get_flat(j);
    }
  }
  comm.add_time(
      node.compute_time((uint64_t)(2 * a_rows.size()),
                        (uint64_t)(8 * a_rows.size())));
  // x = x + beta * A^T y + z.
  Tensor aty = pgemv_trans_allreduce(comm, node, a_rows, y_rows, n);
  Tensor x = replicated(comm, g.at("x"));
  for (int64_t i = 0; i < n; ++i)
    x.set_flat(i, x.get_flat(i) + beta * aty.get_flat(i) + z.get_flat(i));
  comm.add_time(node.compute_time((uint64_t)(2 * n), (uint64_t)(24 * n)));
  // w = w + alpha * A x.
  Tensor ax = pgemv_rows(comm, node, a_rows, x);
  for (int64_t i = 0; i < w_rows.size(); ++i)
    w_rows.set_flat(i, w_rows.get_flat(i) + alpha * ax.get_flat(i));
  if (out) {
    store_rows(a_rows, out->at("A"), p, comm.rank());
    store_rows(w_rows, out->at("w"), p, comm.rank());
    if (comm.rank() == 0) out->at("x").assign_from(x);
  }
}

void dist_gesummv(Comm& comm, const NodeModel& node, const Sym& sizes,
                  Bindings& g, Bindings* out) {
  (void)sizes;
  int p = comm.size();
  double alpha = g.at("alpha").value(), beta = g.at("beta").value();
  Tensor a_rows = local_rows(g.at("A"), p, comm.rank());
  Tensor b_rows = local_rows(g.at("B"), p, comm.rank());
  Tensor x = replicated(comm, g.at("x"));
  initial_distribution(comm);
  Tensor ax = pgemv_rows(comm, node, a_rows, x);
  Tensor bx = pgemv_rows(comm, node, b_rows, x);
  Tensor y_rows(ir::DType::f64, ax.shape());
  for (int64_t i = 0; i < y_rows.size(); ++i)
    y_rows.set_flat(i, alpha * ax.get_flat(i) + beta * bx.get_flat(i));
  if (out) store_rows(y_rows, out->at("y"), p, comm.rank());
}

// ---------------------------------------------------------------------------
// doitgen (embarrassingly parallel over NR)
// ---------------------------------------------------------------------------

void dist_doitgen(Comm& comm, const NodeModel& node, const Sym& sizes,
                  Bindings& g, Bindings* out) {
  int p = comm.size();
  int64_t nr = S(sizes, "NR"), nq = S(sizes, "NQ"), np = S(sizes, "NP");
  int64_t rb = block_size(nr, p);
  int64_t r0 = comm.rank() * rb, r1 = std::min(nr, r0 + rb);
  Tensor c4 = replicated(comm, g.at("C4"));
  Tensor a_loc = local_rows(g.at("A"), p, comm.rank());
  initial_distribution(comm);
  std::vector<double> sum((size_t)np);
  for (int64_t r = 0; r < r1 - r0; ++r) {
    for (int64_t q = 0; q < nq; ++q) {
      for (int64_t k = 0; k < np; ++k) {
        sum[(size_t)k] = 0;
        for (int64_t l = 0; l < np; ++l)
          sum[(size_t)k] += a_loc.at({r, q, l}) * c4.at({l, k});
      }
      for (int64_t k = 0; k < np; ++k) a_loc.at({r, q, k}) = sum[(size_t)k];
    }
  }
  comm.add_time(node.compute_time(
      (uint64_t)(2 * (r1 - r0) * nq * np * np),
      (uint64_t)(8 * (r1 - r0) * nq * np)));
  if (out) store_rows(a_loc, out->at("A"), p, comm.rank());
}

// ---------------------------------------------------------------------------
// Stencils (halo exchange, Section 4.3 local view)
// ---------------------------------------------------------------------------

void dist_jacobi_1d(Comm& comm, const NodeModel& node, const Sym& sizes,
                    Bindings& g, Bindings* out) {
  int p = comm.size();
  int rank = comm.rank();
  int64_t n = S(sizes, "N"), tsteps = S(sizes, "TSTEPS");
  // Interior cells 1..n-2 split into blocks; halo of 1 on each side.
  int64_t interior = n - 2;
  int64_t lb = block_size(interior, p);
  int64_t i0 = 1 + rank * lb;
  int64_t cells = std::max<int64_t>(0, std::min(interior - rank * lb, lb));
  std::vector<double> A((size_t)(cells + 2)), B((size_t)(cells + 2));
  for (int64_t i = 0; i < cells + 2; ++i) {
    int64_t gi = i0 - 1 + i;
    A[(size_t)i] = gi < n ? g.at("A").get_flat(gi) : 0.0;
    B[(size_t)i] = gi < n ? g.at("B").get_flat(gi) : 0.0;
  }
  initial_distribution(comm);
  int left = rank > 0 ? rank - 1 : -1;
  int right = rank + 1 < p ? rank + 1 : -1;
  auto halo = [&](std::vector<double>& buf, int tag) {
    OpContext oc(comm, "jacobi_1d.halo");
    if (left >= 0) comm.send(&buf[1], 1, left, tag);
    if (right >= 0) comm.send(&buf[(size_t)cells], 1, right, tag + 1);
    if (left >= 0) comm.recv(&buf[0], 1, left, tag + 1);
    if (right >= 0) comm.recv(&buf[(size_t)cells + 1], 1, right, tag);
  };
  auto sweep = [&](const std::vector<double>& src, std::vector<double>& dst) {
    for (int64_t i = 1; i <= cells; ++i)
      dst[(size_t)i] =
          0.33333 * (src[(size_t)i - 1] + src[(size_t)i] + src[(size_t)i + 1]);
    comm.add_time(node.compute_time((uint64_t)(3 * cells),
                                    (uint64_t)(16 * cells)));
  };
  for (int64_t t = 1; t < tsteps; ++t) {
    halo(A, 10);
    sweep(A, B);
    halo(B, 20);
    sweep(B, A);
  }
  if (out) {
    for (int64_t i = 1; i <= cells; ++i) {
      out->at("A").set_flat(i0 + i - 1, A[(size_t)i]);
      out->at("B").set_flat(i0 + i - 1, B[(size_t)i]);
    }
  }
}

void dist_jacobi_2d(Comm& comm, const NodeModel& node, const Sym& sizes,
                    Bindings& g, Bindings* out) {
  int p = comm.size();
  int rank = comm.rank();
  int64_t n = S(sizes, "N"), tsteps = S(sizes, "TSTEPS");
  Grid2D grid = Grid2D::square(p);
  int pr = grid.row_of(rank), pc = grid.col_of(rank);
  int64_t interior = n - 2;
  int64_t lbx = block_size(interior, grid.Pr);
  int64_t lby = block_size(interior, grid.Pc);
  int64_t x0 = 1 + pr * lbx, y0 = 1 + pc * lby;
  int64_t cx = std::max<int64_t>(0, std::min(interior - pr * lbx, lbx));
  int64_t cy = std::max<int64_t>(0, std::min(interior - pc * lby, lby));
  int64_t w = cy + 2;  // local row width
  auto idx = [&](int64_t i, int64_t j) { return (size_t)(i * w + j); };
  std::vector<double> A((size_t)((cx + 2) * w)), B(A.size());
  for (int64_t i = 0; i < cx + 2; ++i) {
    for (int64_t j = 0; j < cy + 2; ++j) {
      int64_t gi = x0 - 1 + i, gj = y0 - 1 + j;
      bool valid = gi < n && gj < n;
      A[idx(i, j)] = valid ? g.at("A").at({gi, gj}) : 0.0;
      B[idx(i, j)] = valid ? g.at("B").at({gi, gj}) : 0.0;
    }
  }
  initial_distribution(comm);
  int north = pr > 0 ? grid.rank_of(pr - 1, pc) : -1;
  int south = pr + 1 < grid.Pr ? grid.rank_of(pr + 1, pc) : -1;
  int west = pc > 0 ? grid.rank_of(pr, pc - 1) : -1;
  int east = pc + 1 < grid.Pc ? grid.rank_of(pr, pc + 1) : -1;
  auto halo = [&](std::vector<double>& buf, int tag) {
    OpContext oc(comm, "jacobi_2d.halo");
    std::vector<Comm::Request> reqs;
    // Rows are contiguous; columns use the vector datatype.
    if (north >= 0)
      reqs.push_back(comm.isend(&buf[idx(1, 1)], 1, cy, cy, north, tag));
    if (south >= 0)
      reqs.push_back(comm.isend(&buf[idx(cx, 1)], 1, cy, cy, south, tag + 1));
    if (west >= 0)
      reqs.push_back(
          comm.isend(&buf[idx(1, 1)], cx, 1, w, west, tag + 2));
    if (east >= 0)
      reqs.push_back(
          comm.isend(&buf[idx(1, cy)], cx, 1, w, east, tag + 3));
    if (north >= 0)
      reqs.push_back(comm.irecv(&buf[idx(0, 1)], 1, cy, cy, north, tag + 1));
    if (south >= 0)
      reqs.push_back(
          comm.irecv(&buf[idx(cx + 1, 1)], 1, cy, cy, south, tag));
    if (west >= 0)
      reqs.push_back(
          comm.irecv(&buf[idx(1, 0)], cx, 1, w, west, tag + 3));
    if (east >= 0)
      reqs.push_back(
          comm.irecv(&buf[idx(1, cy + 1)], cx, 1, w, east, tag + 2));
    comm.waitall(reqs);
  };
  auto sweep = [&](const std::vector<double>& src, std::vector<double>& dst) {
    for (int64_t i = 1; i <= cx; ++i) {
      for (int64_t j = 1; j <= cy; ++j) {
        dst[idx(i, j)] = 0.2 * (src[idx(i, j)] + src[idx(i, j - 1)] +
                                src[idx(i, j + 1)] + src[idx(i + 1, j)] +
                                src[idx(i - 1, j)]);
      }
    }
    comm.add_time(node.compute_time((uint64_t)(5 * cx * cy),
                                    (uint64_t)(16 * cx * cy)));
  };
  for (int64_t t = 1; t < tsteps; ++t) {
    halo(A, 10);
    sweep(A, B);
    halo(B, 30);
    sweep(B, A);
  }
  if (out) {
    for (int64_t i = 1; i <= cx; ++i) {
      for (int64_t j = 1; j <= cy; ++j) {
        out->at("A").at({x0 + i - 1, y0 + j - 1}) = A[idx(i, j)];
        out->at("B").at({x0 + i - 1, y0 + j - 1}) = B[idx(i, j)];
      }
    }
  }
}

}  // namespace

const std::vector<std::string>& distributed_kernels() {
  static const std::vector<std::string> names = {
      "atax", "bicg", "doitgen", "gemm", "gemver", "gesummv",
      "jacobi_1d", "jacobi_2d", "k2mm", "k3mm", "mvt"};
  return names;
}

DistResult run_dist_kernel(const std::string& name, World& world,
                           const sym::SymbolMap& sizes, const NodeModel& node,
                           rt::Bindings* validate_out) {
  const kernels::Kernel& k = kernels::kernel(name);
  rt::Bindings globals = k.init(sizes);
  if (validate_out) {
    // Outputs start from the same initial contents.
    for (const auto& [n2, t] : globals) validate_out->emplace(n2, t.copy());
  }
  using Fn = void (*)(Comm&, const NodeModel&, const Sym&, Bindings&,
                      Bindings*);
  static const std::map<std::string, Fn> dispatch = {
      {"gemm", dist_gemm},       {"k2mm", dist_k2mm},
      {"k3mm", dist_k3mm},       {"atax", dist_atax},
      {"bicg", dist_bicg},       {"mvt", dist_mvt},
      {"gemver", dist_gemver},   {"gesummv", dist_gesummv},
      {"doitgen", dist_doitgen}, {"jacobi_1d", dist_jacobi_1d},
      {"jacobi_2d", dist_jacobi_2d}};
  auto it = dispatch.find(name);
  DACE_CHECK(it != dispatch.end(), "dist: kernel '", name,
             "' has no distributed schedule");
  world.run([&](Comm& comm) {
    it->second(comm, node, sizes, globals, validate_out);
  });
  DistResult res;
  res.time_s = world.max_clock();
  res.bytes = world.total_bytes();
  res.messages = world.total_messages();
  return res;
}

}  // namespace dace::dist
