#include "distributed/pblas.hpp"

#include "runtime/tensor_ops.hpp"

namespace dace::dist {

void pgemm(Comm& comm, const Grid2D& g, const NodeModel& node,
           const rt::Tensor& a_rows, const rt::Tensor& b_col,
           rt::Tensor& c_rows) {
  (void)g;
  // Ring algorithm over a 1-D decomposition:
  //   A: row block    (mb x K)   per rank
  //   B: column block (K x nb)   per rank (rotated around the ring)
  //   C: row block    (mb x N)   per rank
  // Per-rank communication volume grows with the problem size, giving the
  // characteristic lower weak-scaling efficiency of distributed GEMM
  // (consistent with MKL-ScaLAPACK behavior cited in the paper).
  int p = comm.size();
  int rank = comm.rank();
  int64_t mb = a_rows.shape()[0], k = a_rows.shape()[1];
  int64_t nb = b_col.shape()[1];
  DACE_CHECK(b_col.shape()[0] == k, "pgemm: inner dimension mismatch");
  DACE_CHECK(c_rows.shape()[0] == mb && c_rows.shape()[1] == nb * p,
             "pgemm: C block shape mismatch");

  rt::Tensor cur = b_col.copy();
  rt::Tensor nxt(b_col.dtype(), {k, nb});
  for (int round = 0; round < p; ++round) {
    int col_owner = (rank + round) % p;
    // Local GEMM into the owner's column stripe of C.
    rt::Tensor prod = rt::ops::matmul(a_rows, cur);
    rt::Tensor stripe = c_rows.slice({0, col_owner * nb},
                                     {mb, (col_owner + 1) * nb}, {1, 1});
    stripe.assign_from(rt::ops::add(stripe, prod));
    comm.add_time(node.compute_time((uint64_t)(2 * mb * nb * k),
                                    (uint64_t)((mb * k + k * nb) * 8)));
    if (round + 1 == p) break;
    // Rotate B blocks around the ring.
    OpContext oc(comm, "pgemm.ring round " + std::to_string(round));
    int to = (rank + p - 1) % p;
    int from = (rank + 1) % p;
    comm.send(cur.data(), cur.size(), to, 300 + round);
    comm.recv(nxt.data(), nxt.size(), from, 300 + round);
    std::swap(cur, nxt);
  }
}

rt::Tensor pgemv_rows(Comm& comm, const NodeModel& node,
                      const rt::Tensor& a_rows, const rt::Tensor& x_full) {
  rt::Tensor y = rt::ops::matmul(a_rows, x_full);
  comm.add_time(node.compute_time((uint64_t)(2 * a_rows.size()),
                                  (uint64_t)(a_rows.size() * 8)));
  return y;
}

rt::Tensor pgemv_trans_allreduce(Comm& comm, const NodeModel& node,
                                 const rt::Tensor& a_rows,
                                 const rt::Tensor& x_rows, int64_t n_full) {
  // partial = x_rows^T A_rows (a vector of length n_full), then allreduce.
  rt::Tensor partial = rt::ops::matmul(x_rows, a_rows);
  DACE_CHECK(partial.size() == n_full, "pgemv_trans: partial result has ",
             partial.size(), " elements, expected ", n_full, " on rank ",
             comm.rank());
  comm.add_time(node.compute_time((uint64_t)(2 * a_rows.size()),
                                  (uint64_t)(a_rows.size() * 8)));
  OpContext oc(comm, "pgemv_trans.allreduce");
  comm.allreduce_sum(partial.data(), partial.size());
  return partial;
}

}  // namespace dace::dist
