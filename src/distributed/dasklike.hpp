// Distributed-tasking baselines (the Fig. 12 comparison points).
//
// Both Dask and Legate execute NumPy programs *eagerly, one array
// operation at a time*, partitioning each operation into per-chunk tasks
// over the workers.  This module models that execution: the eager
// interpreter computes real values while an observer charges, per
// operation, (a) task scheduling/launch overheads, (b) chunked local
// compute on the worker node model, and (c) the inter-worker
// communication the operation's data access pattern requires.
//
// The two framework profiles differ exactly where the paper attributes
// their behavior: Dask has a *centralized scheduler* that dispatches one
// task at a time over TCP (efficiency cliff from the second process;
// eventually out-of-memory at scale -- Table 2 halves its problem
// sizes), whereas Legate (Legion/GASNet) launches per-operation index
// tasks with lower latency and no serial scheduler, giving a flat
// efficiency curve after the initial drop.
#pragma once

#include "distributed/simmpi.hpp"
#include "frontend/ast.hpp"
#include "runtime/eager_interpreter.hpp"

namespace dace::dist {

struct TaskingModel {
  std::string name;
  NetModel net;
  NodeModel node;
  double scheduler_task_s;   // serialized central-scheduler cost per task
  double worker_launch_s;    // per-task launch overhead on a worker
  double per_op_runtime_s;   // per-operation runtime/bookkeeping overhead

  static TaskingModel dask() {
    return TaskingModel{"dask", NetModel::tcp(), NodeModel(),
                        200e-6, 50e-6, 500e-6};
  }
  static TaskingModel legate() {
    return TaskingModel{"legate", NetModel::gasnet(), NodeModel(),
                        0.0, 15e-6, 100e-6};
  }
};

struct TaskingResult {
  double time_s = 0;
  int64_t tasks = 0;
  int64_t ops = 0;
};

/// Execute the DaCeLang function eagerly with the tasking cost model over
/// `workers` workers. Results are computed for real into `args`.
TaskingResult run_tasking(const fe::Function& f, rt::Bindings& args,
                          const sym::SymbolMap& symbols, int workers,
                          const TaskingModel& model);

}  // namespace dace::dist
