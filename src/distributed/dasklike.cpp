#include "distributed/dasklike.hpp"

#include <algorithm>
#include <cmath>

namespace dace::dist {

namespace {

class TaskingObserver final : public rt::EagerObserver {
 public:
  TaskingObserver(int workers, const TaskingModel& m)
      : p_(workers), m_(m) {}

  void on_op(const std::string& kind, int64_t out_elems, int64_t in_elems,
             int64_t flops) override {
    ++result.ops;
    if (kind == "alloc") {
      result.time_s += m_.per_op_runtime_s;
      return;
    }
    // One task per worker chunk.
    int64_t tasks = p_;
    result.tasks += tasks;
    // Central scheduler: tasks dispatch serially (Dask); zero for Legate.
    double t_sched = (double)tasks * m_.scheduler_task_s;
    // Workers execute their chunks in parallel.
    int64_t chunk_out = (out_elems + p_ - 1) / p_;
    int64_t chunk_in = (in_elems + p_ - 1) / p_;
    int64_t chunk_flops = (flops + p_ - 1) / p_;
    double t_work = m_.worker_launch_s +
                    m_.node.compute_time((uint64_t)chunk_flops,
                                         (uint64_t)(8 * (chunk_in + chunk_out)));
    // Communication per operation kind.
    double t_comm = 0;
    if (kind == "matmul") {
      // Inter-chunk panel movement: every worker pulls roughly its input
      // volume from (p-1)/p remote chunks.
      int64_t remote_bytes =
          (int64_t)((double)(chunk_in * 8) * (double)(p_ - 1) / p_);
      t_comm = (p_ > 1) ? m_.net.p2p(remote_bytes) * std::log2((double)p_ + 1)
                        : 0;
    } else if (kind == "reduce") {
      t_comm = (p_ > 1) ? std::log2((double)p_) *
                              m_.net.p2p(8 * std::max<int64_t>(1, chunk_out))
                        : 0;
    } else if (kind == "ew" || kind == "copy") {
      // Aligned chunks need no data movement, but slice-shifted operands
      // (stencils) move chunk boundaries; charge one boundary message.
      t_comm = (p_ > 1) ? m_.net.p2p(8 * std::max<int64_t>(1, chunk_out / 64))
                        : 0;
    }
    result.time_s += t_sched + t_work + t_comm + m_.per_op_runtime_s;
  }

  int p_;
  TaskingModel m_;
  TaskingResult result;
};

}  // namespace

TaskingResult run_tasking(const fe::Function& f, rt::Bindings& args,
                          const sym::SymbolMap& symbols, int workers,
                          const TaskingModel& model) {
  TaskingObserver obs(std::max(1, workers), model);
  rt::EagerInterpreter interp(f, &obs);
  interp.run(args, symbols);
  return obs.result;
}

}  // namespace dace::dist
