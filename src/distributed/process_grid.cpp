#include "distributed/process_grid.hpp"

#include <algorithm>

namespace dace::dist {

rt::Tensor local_block_2d(const rt::Tensor& global, const Grid2D& g,
                          int rank) {
  DACE_CHECK(global.rank() == 2, "grid: local_block_2d needs a matrix");
  int64_t m = global.shape()[0], n = global.shape()[1];
  int64_t mb = block_size(m, g.Pr), nb = block_size(n, g.Pc);
  int r = g.row_of(rank), c = g.col_of(rank);
  rt::Tensor out(global.dtype(), {mb, nb});
  for (int64_t i = 0; i < mb; ++i) {
    int64_t gi = r * mb + i;
    if (gi >= m) break;
    for (int64_t j = 0; j < nb; ++j) {
      int64_t gj = c * nb + j;
      if (gj >= n) break;
      out.at({i, j}) = global.at({gi, gj});
    }
  }
  return out;
}

void store_block_2d(const rt::Tensor& block, rt::Tensor& global,
                    const Grid2D& g, int rank) {
  int64_t m = global.shape()[0], n = global.shape()[1];
  int64_t mb = block.shape()[0], nb = block.shape()[1];
  int r = g.row_of(rank), c = g.col_of(rank);
  for (int64_t i = 0; i < mb; ++i) {
    int64_t gi = r * mb + i;
    if (gi >= m) break;
    for (int64_t j = 0; j < nb; ++j) {
      int64_t gj = c * nb + j;
      if (gj >= n) break;
      global.at({gi, gj}) = block.at({i, j});
    }
  }
}

rt::Tensor local_rows(const rt::Tensor& global, int p, int rank) {
  int64_t m = global.shape()[0];
  int64_t mb = block_size(m, p);
  std::vector<int64_t> shape = global.shape();
  shape[0] = mb;
  rt::Tensor out(global.dtype(), shape);
  int64_t row_elems = global.size() / m;
  for (int64_t i = 0; i < mb; ++i) {
    int64_t gi = rank * mb + i;
    if (gi >= m) break;
    for (int64_t j = 0; j < row_elems; ++j)
      out.set_flat(i * row_elems + j, global.get_flat(gi * row_elems + j));
  }
  return out;
}

void store_rows(const rt::Tensor& block, rt::Tensor& global, int p,
                int rank) {
  (void)p;
  int64_t m = global.shape()[0];
  int64_t mb = block.shape()[0];
  int64_t row_elems = global.size() / m;
  for (int64_t i = 0; i < mb; ++i) {
    int64_t gi = rank * mb + i;
    if (gi >= m) break;
    for (int64_t j = 0; j < row_elems; ++j)
      global.set_flat(gi * row_elems + j, block.get_flat(i * row_elems + j));
  }
}

}  // namespace dace::dist
