// Handlers for the comm::* library nodes (dace.comm.* in DaCeLang).
#include "distributed/dist_executor.hpp"
#include <cmath>

#include "distributed/process_grid.hpp"

namespace dace::dist {

namespace {

RankCtx& ctx_of(rt::Executor& ex) {
  DACE_CHECK(ex.comm_context != nullptr,
             "comm: SDFG uses dace.comm.* but is not running under "
             "run_distributed_sdfg");
  return *static_cast<RankCtx*>(ex.comm_context);
}

const ir::Edge* in_edge(const ir::State& st, int node,
                        const std::string& conn) {
  for (const auto* e : st.in_edges(node)) {
    if (e->dst_conn == conn) return e;
  }
  throw err("comm: missing input connector ", conn);
}

const ir::Edge* out_edge(const ir::State& st, int node,
                         const std::string& conn) {
  for (const auto* e : st.out_edges(node)) {
    if (e->src_conn == conn) return e;
  }
  throw err("comm: missing output connector ", conn);
}

int64_t sym_attr(rt::Executor& ex, const ir::LibraryNode& l,
                 const std::string& key) {
  auto it = l.sym_attrs.find(key);
  DACE_CHECK(it != l.sym_attrs.end(), "comm: missing attribute ", key);
  return ex.eval(it->second);
}

void isend_handler(rt::Executor& ex, const ir::State& st, int node) {
  RankCtx& ctx = ctx_of(ex);
  const auto* l = st.node_as<const ir::LibraryNode>(node);
  int64_t peer = sym_attr(ex, *l, "peer");
  int64_t tag = sym_attr(ex, *l, "tag");
  rt::Tensor buf = ex.view(in_edge(st, node, "_buf")->memlet);
  rt::Tensor req = ex.view(out_edge(st, node, "_req_out")->memlet);
  if (peer < 0) {  // boundary neighbor: no-op
    req.set_flat(0, -1);
    return;
  }
  // Contiguous staging (the generated MPI vector datatype's payload).
  OpContext oc(*ctx.comm, "comm::Isend");
  RankCtx::Pending p;
  p.staging.resize((size_t)buf.size());
  for (int64_t i = 0; i < buf.size(); ++i) p.staging[(size_t)i] = buf.get_flat(i);
  ctx.comm->send(p.staging.data(), buf.size(), (int)peer, (int)tag);
  p.active = false;  // eager send completes immediately
  ctx.requests.push_back(std::move(p));
  req.set_flat(0, (double)(ctx.requests.size() - 1));
}

void irecv_handler(rt::Executor& ex, const ir::State& st, int node) {
  RankCtx& ctx = ctx_of(ex);
  const auto* l = st.node_as<const ir::LibraryNode>(node);
  int64_t peer = sym_attr(ex, *l, "peer");
  int64_t tag = sym_attr(ex, *l, "tag");
  rt::Tensor buf = ex.view(out_edge(st, node, "_buf")->memlet);
  rt::Tensor req = ex.view(out_edge(st, node, "_req_out")->memlet);
  if (peer < 0) {
    req.set_flat(0, -1);
    return;
  }
  RankCtx::Pending p;
  p.view = buf;
  p.staging.resize((size_t)buf.size());
  p.req.peer = (int)peer;
  p.req.tag = (int)tag;
  p.active = true;
  p.is_recv = true;
  ctx.requests.push_back(std::move(p));
  req.set_flat(0, (double)(ctx.requests.size() - 1));
}

void waitall_handler(rt::Executor& ex, const ir::State& st, int node) {
  RankCtx& ctx = ctx_of(ex);
  OpContext oc(*ctx.comm, "comm::Waitall");
  rt::Tensor req = ex.view(in_edge(st, node, "_req_in")->memlet);
  for (int64_t i = 0; i < req.size(); ++i) {
    int64_t h = (int64_t)req.get_flat(i);
    if (h < 0 || h >= (int64_t)ctx.requests.size()) continue;
    RankCtx::Pending& p = ctx.requests[(size_t)h];
    if (!p.active) continue;
    if (p.is_recv) {
      ctx.comm->recv(p.staging.data(), (int64_t)p.staging.size(), p.req.peer,
                     p.req.tag);
      for (int64_t j = 0; j < (int64_t)p.staging.size(); ++j)
        p.view.set_flat(j, p.staging[(size_t)j]);
    }
    p.active = false;
  }
}

void barrier_handler(rt::Executor& ex, const ir::State&, int) {
  RankCtx& ctx = ctx_of(ex);
  OpContext oc(*ctx.comm, "comm::Barrier");
  ctx.comm->barrier();
}

/// Grid block offsets of this rank for a local view shape.
std::pair<int64_t, int64_t> block_offsets(rt::Executor& ex,
                                          const rt::Tensor& local) {
  RankCtx& ctx = ctx_of(ex);
  if (local.rank() == 2)
    return {ctx.px * local.shape()[0], ctx.py * local.shape()[1]};
  return {ctx.comm->rank() * local.shape()[0], 0};
}

void block_scatter_handler(rt::Executor& ex, const ir::State& st, int node) {
  RankCtx& ctx = ctx_of(ex);
  rt::Tensor global = ex.view(in_edge(st, node, "_in")->memlet);
  rt::Tensor local = ex.view(out_edge(st, node, "_out")->memlet);
  auto [ox, oy] = block_offsets(ex, local);
  if (local.rank() == 2) {
    for (int64_t i = 0; i < local.shape()[0]; ++i) {
      for (int64_t j = 0; j < local.shape()[1]; ++j)
        local.at({i, j}) = global.at({ox + i, oy + j});
    }
  } else {
    for (int64_t i = 0; i < local.size(); ++i)
      local.set_flat(i, global.get_flat(ox + i));
  }
  int p = ctx.comm->size();
  double cost = ctx.comm->world_net().alpha_s * (p > 1 ? std::log2((double)p) : 1) +
                (double)(p - 1) / p * (double)(global.size() * 8) /
                    ctx.comm->world_net().bandwidth;
  ctx.comm->charge_sync(cost);
}

void block_gather_handler(rt::Executor& ex, const ir::State& st, int node) {
  RankCtx& ctx = ctx_of(ex);
  rt::Tensor local = ex.view(in_edge(st, node, "_in")->memlet);
  rt::Tensor global = ex.view(out_edge(st, node, "_out")->memlet);
  auto [ox, oy] = block_offsets(ex, local);
  if (local.rank() == 2) {
    for (int64_t i = 0; i < local.shape()[0]; ++i) {
      for (int64_t j = 0; j < local.shape()[1]; ++j)
        global.at({ox + i, oy + j}) = local.at({i, j});
    }
  } else {
    for (int64_t i = 0; i < local.size(); ++i)
      global.set_flat(ox + i, local.get_flat(i));
  }
  int p = ctx.comm->size();
  double cost = ctx.comm->world_net().alpha_s * (p > 1 ? std::log2((double)p) : 1) +
                (double)(p - 1) / p * (double)(global.size() * 8) /
                    ctx.comm->world_net().bandwidth;
  ctx.comm->charge_sync(cost);
}

void allreduce_handler(rt::Executor& ex, const ir::State& st, int node) {
  RankCtx& ctx = ctx_of(ex);
  OpContext oc(*ctx.comm, "comm::Allreduce");
  rt::Tensor in = ex.view(in_edge(st, node, "_in")->memlet);
  rt::Tensor out = ex.view(out_edge(st, node, "_out")->memlet);
  std::vector<double> buf((size_t)in.size());
  for (int64_t i = 0; i < in.size(); ++i) buf[(size_t)i] = in.get_flat(i);
  ctx.comm->allreduce_sum(buf.data(), (int64_t)buf.size());
  for (int64_t i = 0; i < out.size(); ++i) out.set_flat(i, buf[(size_t)i]);
}

void bcast_handler(rt::Executor& ex, const ir::State& st, int node) {
  RankCtx& ctx = ctx_of(ex);
  OpContext oc(*ctx.comm, "comm::Bcast");
  rt::Tensor in = ex.view(in_edge(st, node, "_in")->memlet);
  rt::Tensor out = ex.view(out_edge(st, node, "_out")->memlet);
  std::vector<double> buf((size_t)in.size());
  for (int64_t i = 0; i < in.size(); ++i) buf[(size_t)i] = in.get_flat(i);
  ctx.comm->bcast(buf.data(), (int64_t)buf.size(), 0);
  for (int64_t i = 0; i < out.size(); ++i) out.set_flat(i, buf[(size_t)i]);
}

void scatter1d_handler(rt::Executor& ex, const ir::State& st, int node) {
  RankCtx& ctx = ctx_of(ex);
  rt::Tensor global = ex.view(in_edge(st, node, "_in")->memlet);
  rt::Tensor local = ex.view(out_edge(st, node, "_out")->memlet);
  int64_t lsz = local.size();
  int64_t g = global.size();
  int64_t o = ctx.comm->rank() * lsz;
  for (int64_t i = 0; i < lsz; ++i)
    local.set_flat(i, o + i < g ? global.get_flat(o + i) : 0.0);
  int p = ctx.comm->size();
  double cost = ctx.comm->world_net().alpha_s *
                    (p > 1 ? std::log2((double)p) : 1) +
                (double)(p - 1) / p * (double)(g * 8) /
                    ctx.comm->world_net().bandwidth;
  ctx.comm->charge_sync(cost);
}

void gather1d_handler(rt::Executor& ex, const ir::State& st, int node) {
  RankCtx& ctx = ctx_of(ex);
  rt::Tensor local = ex.view(in_edge(st, node, "_in")->memlet);
  rt::Tensor global = ex.view(out_edge(st, node, "_out")->memlet);
  int64_t lsz = local.size();
  int64_t g = global.size();
  int64_t o = ctx.comm->rank() * lsz;
  for (int64_t i = 0; i < lsz && o + i < g; ++i)
    global.set_flat(o + i, local.get_flat(i));
  int p = ctx.comm->size();
  double cost = ctx.comm->world_net().alpha_s *
                    (p > 1 ? std::log2((double)p) : 1) +
                (double)(p - 1) / p * (double)(g * 8) /
                    ctx.comm->world_net().bandwidth;
  ctx.comm->charge_sync(cost);
}

}  // namespace

void ensure_comm_handlers() {
  static bool done = [] {
    auto& reg = rt::LibraryRegistry::global();
    reg.register_op("comm::Isend", isend_handler);
    reg.register_op("comm::Irecv", irecv_handler);
    reg.register_op("comm::Waitall", waitall_handler);
    reg.register_op("comm::Barrier", barrier_handler);
    reg.register_op("comm::BlockScatter", block_scatter_handler);
    reg.register_op("comm::BlockGather", block_gather_handler);
    reg.register_op("comm::Allreduce", allreduce_handler);
    reg.register_op("comm::Bcast", bcast_handler);
    reg.register_op("comm::Scatter1D", scatter1d_handler);
    reg.register_op("comm::Gather1D", gather1d_handler);
    return true;
  }();
  (void)done;
}

}  // namespace dace::dist
