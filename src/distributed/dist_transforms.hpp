// Implicit distribution transformations (Sections 4.1 and 4.2).
//
// DistributeElementWiseArrayOp converts shared-memory element-wise map
// scopes to distributed memory following the paper's scatter-gather
// pattern: scatter the inputs as 1-D blocks (the most efficient
// distribution for contiguous arrays), compute locally on
// ceil(total/__P)-sized blocks, and gather the outputs.  Applying it to
// each operation separately is correct but redundant -- the
// RemoveRedundantComm transformation then tracks access sets through the
// memlets and elides matching gather/scatter pairs on transients
// (Fig. 11), leaving data resident in its local view across operations.
//
// Execution: the comm::Scatter1D / comm::Gather1D library nodes dispatch
// to simMPI under run_distributed_sdfg; __P is the world size.
#pragma once

#include "transforms/pass.hpp"

namespace dace::dist {

/// Distribute one element-wise map scope (scatter -> local map -> gather).
/// Matches top-level maps whose memlets are all exactly the map-parameter
/// element over full container ranges and whose tasklets do not read the
/// parameters. Returns true if applied.
bool distribute_elementwise(ir::SDFG& sdfg);

/// Remove one redundant gather/scatter pair over a transient whose
/// distributions match (both 1-D block of the same container).
bool remove_redundant_comm(ir::SDFG& sdfg);

}  // namespace dace::dist
