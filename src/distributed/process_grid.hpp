// BLACS-like process grids and block distributions (Section 4.1).
#pragma once

#include <cstdint>

#include "common/common.hpp"
#include "runtime/tensor.hpp"

namespace dace::dist {

/// 2-D process grid: P ranks arranged as Pr x Pc (near-square by
/// default, like the paper's default block distributions).
struct Grid2D {
  int P = 1, Pr = 1, Pc = 1;

  static Grid2D square(int p) {
    Grid2D g;
    g.P = p;
    int pr = 1;
    for (int d = 1; (int64_t)d * d <= p; ++d) {
      if (p % d == 0) pr = d;
    }
    g.Pr = pr;
    g.Pc = p / pr;
    return g;
  }

  int row_of(int rank) const { return rank / Pc; }
  int col_of(int rank) const { return rank % Pc; }
  int rank_of(int row, int col) const { return row * Pc + col; }
};

/// Padded block size: every rank holds ceil(n / p) elements per dim; the
/// trailing rank's block is zero-padded. Zero padding is neutral for the
/// linear-algebra kernels distributed here.
inline int64_t block_size(int64_t n, int p) { return (n + p - 1) / p; }

/// Extract this rank's padded 2-D block of a global row-major tensor.
rt::Tensor local_block_2d(const rt::Tensor& global, const Grid2D& g,
                          int rank);
/// Write this rank's block back into the global tensor (unpadded part).
void store_block_2d(const rt::Tensor& block, rt::Tensor& global,
                    const Grid2D& g, int rank);

/// 1-D row-block of a 2-D tensor (or of a vector when rank()==1).
rt::Tensor local_rows(const rt::Tensor& global, int p, int rank);
void store_rows(const rt::Tensor& block, rt::Tensor& global, int p, int rank);

}  // namespace dace::dist
