#include "distributed/faults.hpp"

#include <cstdlib>
#include <sstream>

namespace dace::dist {

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::None: return "none";
    case FaultKind::Drop: return "drop";
    case FaultKind::Delay: return "delay";
    case FaultKind::Duplicate: return "duplicate";
    case FaultKind::Reorder: return "reorder";
    case FaultKind::Stall: return "stall";
    case FaultKind::Crash: return "crash";
  }
  return "?";
}

std::string FaultEvent::to_string() const {
  std::ostringstream os;
  os << fault_kind_name(kind) << " rank=" << rank;
  if (peer >= 0) os << " peer=" << peer;
  if (tag >= 0) os << " tag=" << tag;
  if (bytes > 0) os << " bytes=" << bytes;
  os << " seq=" << seq;
  if (attempt > 0) os << " attempt=" << attempt;
  return os.str();
}

namespace {

/// splitmix64: the standard cheap mixer; good enough for Bernoulli draws.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform draw in [0,1) from the plan seed and the op coordinates.
double draw(uint64_t seed, uint64_t a, uint64_t b, uint64_t c, uint64_t d,
            uint64_t e) {
  uint64_t h = mix64(seed ^ mix64(a ^ mix64(b ^ mix64(c ^ mix64(d ^ e)))));
  return (double)(h >> 11) * (1.0 / 9007199254740992.0);  // 53-bit mantissa
}

}  // namespace

bool FaultPlan::active() const {
  return drop_prob > 0 || delay_prob > 0 || dup_prob > 0 ||
         reorder_prob > 0 || (stall_rank >= 0 && stall_at_op >= 0) ||
         (crash_rank >= 0 && crash_at_op >= 0);
}

FaultKind FaultPlan::decide_message(int src, int dst, int tag, uint64_t seq,
                                    int attempt) const {
  double u = draw(seed, (uint64_t)src, (uint64_t)dst, (uint64_t)(tag + 1),
                  seq, (uint64_t)(attempt + 1));
  double t = drop_prob;
  if (u < t) return FaultKind::Drop;
  // Non-drop faults fire only on the first transmission: retransmissions
  // model a careful sender, and re-duplicating a retry would double-count.
  if (attempt > 0) return FaultKind::None;
  if (u < (t += dup_prob)) return FaultKind::Duplicate;
  if (u < (t += reorder_prob)) return FaultKind::Reorder;
  if (u < (t += delay_prob)) return FaultKind::Delay;
  return FaultKind::None;
}

FaultKind FaultPlan::decide_rank_op(int rank, int64_t op_index) const {
  if (rank == crash_rank && op_index == crash_at_op) return FaultKind::Crash;
  if (rank == stall_rank && op_index == stall_at_op) return FaultKind::Stall;
  return FaultKind::None;
}

std::string FaultPlan::to_string() const {
  if (!active() && seed == 0) return "";
  std::ostringstream os;
  os << "seed=" << seed;
  if (drop_prob > 0) os << ",drop=" << drop_prob;
  if (delay_prob > 0) os << ",delay=" << delay_prob << ",delay_s=" << delay_s;
  if (dup_prob > 0) os << ",dup=" << dup_prob;
  if (reorder_prob > 0) os << ",reorder=" << reorder_prob;
  if (stall_rank >= 0 && stall_at_op >= 0)
    os << ",stall_rank=" << stall_rank << ",stall_at=" << stall_at_op
       << ",stall_s=" << stall_s;
  if (crash_rank >= 0 && crash_at_op >= 0)
    os << ",crash_rank=" << crash_rank << ",crash_at=" << crash_at_op;
  return os.str();
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan p;
  std::istringstream is(spec);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (item.empty()) continue;
    auto eq = item.find('=');
    DACE_CHECK(eq != std::string::npos, "fault plan: expected key=value, got '",
               item, "' in '", spec, "'");
    std::string key = item.substr(0, eq);
    std::string val = item.substr(eq + 1);
    try {
      if (key == "seed") p.seed = (uint64_t)std::stoull(val);
      else if (key == "drop") p.drop_prob = std::stod(val);
      else if (key == "delay") p.delay_prob = std::stod(val);
      else if (key == "delay_s") p.delay_s = std::stod(val);
      else if (key == "dup") p.dup_prob = std::stod(val);
      else if (key == "reorder") p.reorder_prob = std::stod(val);
      else if (key == "stall_rank") p.stall_rank = std::stoi(val);
      else if (key == "stall_at") p.stall_at_op = std::stoll(val);
      else if (key == "stall_s") p.stall_s = std::stod(val);
      else if (key == "crash_rank") p.crash_rank = std::stoi(val);
      else if (key == "crash_at") p.crash_at_op = std::stoll(val);
      else throw err("fault plan: unknown key '", key, "'");
    } catch (const std::invalid_argument&) {
      throw err("fault plan: bad value '", val, "' for key '", key, "'");
    }
  }
  return p;
}

FaultPlan FaultPlan::from_env() {
  FaultPlan p;
  if (const char* spec = std::getenv("DACE_FAULT_PLAN")) p = parse(spec);
  if (const char* s = std::getenv("DACE_FAULT_SEED")) {
    p.seed = (uint64_t)std::strtoull(s, nullptr, 10);
  }
  return p;
}

CommConfig CommConfig::from_env() {
  CommConfig c;
  if (const char* e = std::getenv("DACE_COMM_TIMEOUT")) c.timeout_s = std::atof(e);
  if (const char* e = std::getenv("DACE_COMM_RETRIES")) c.max_retries = std::atoi(e);
  return c;
}

namespace {
std::string join_failures(const std::vector<RankFailure>& fails) {
  std::ostringstream os;
  os << "distributed run failed on " << fails.size() << " rank"
     << (fails.size() == 1 ? "" : "s") << ":";
  for (const auto& f : fails) os << "\n  [rank " << f.rank << "] " << f.what;
  return os.str();
}
}  // namespace

DistError::DistError(std::vector<RankFailure> fails)
    : Error(join_failures(fails)), failures_(std::move(fails)) {}

}  // namespace dace::dist
