#include "distributed/simmpi.hpp"

#include <algorithm>
#include <cmath>

namespace dace::dist {

World::World(int nranks, NetModel net)
    : nranks_(nranks), net_(net), clocks_((size_t)nranks, 0.0) {
  DACE_CHECK(nranks >= 1, "simmpi: need at least one rank");
}

World::~World() = default;

void World::run(const std::function<void(Comm&)>& fn) {
  std::fill(clocks_.begin(), clocks_.end(), 0.0);
  mailboxes_.clear();
  total_bytes_ = 0;
  total_messages_ = 0;
  coll_arrived_ = 0;
  coll_phase_ = 0;

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors((size_t)nranks_);
  for (int r = 1; r < nranks_; ++r) {
    threads.emplace_back([&, r] {
      try {
        Comm c(*this, r);
        fn(c);
      } catch (...) {
        errors[(size_t)r] = std::current_exception();
      }
    });
  }
  try {
    Comm c(*this, 0);
    fn(c);
  } catch (...) {
    errors[0] = std::current_exception();
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
}

double World::max_clock() const {
  double m = 0;
  for (double c : clocks_) m = std::max(m, c);
  return m;
}

// ---------------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------------

double Comm::clock() const {
  std::lock_guard<std::mutex> lk(world_.mu_);
  return world_.clocks_[(size_t)rank_];
}

void Comm::add_time(double seconds) {
  std::lock_guard<std::mutex> lk(world_.mu_);
  world_.clocks_[(size_t)rank_] += seconds;
}

void Comm::send_vector(const double* buf, int64_t count, int64_t block,
                       int64_t stride, int dst, int tag) {
  DACE_CHECK(dst >= 0 && dst < size(), "simmpi: send to invalid rank ", dst);
  World::Message msg;
  msg.data.reserve((size_t)(count * block));
  for (int64_t c = 0; c < count; ++c) {
    for (int64_t b = 0; b < block; ++b)
      msg.data.push_back(buf[c * stride + b]);
  }
  int64_t bytes = (int64_t)msg.data.size() * 8;
  {
    std::lock_guard<std::mutex> lk(world_.mu_);
    double& my_clock = world_.clocks_[(size_t)rank_];
    msg.arrival = my_clock + world_.net_.p2p(bytes);
    my_clock += world_.net_.alpha_s;  // sender-side overhead
    world_.mailboxes_[World::MailboxKey{rank_, dst, tag}].push_back(
        std::move(msg));
    world_.total_bytes_ += bytes;
    ++world_.total_messages_;
  }
  world_.cv_.notify_all();
}

void Comm::send(const double* buf, int64_t n, int dst, int tag) {
  send_vector(buf, 1, n, n, dst, tag);
}

void Comm::recv_vector(double* buf, int64_t count, int64_t block,
                       int64_t stride, int src, int tag) {
  DACE_CHECK(src >= 0 && src < size(), "simmpi: recv from invalid rank ", src);
  std::unique_lock<std::mutex> lk(world_.mu_);
  auto key = World::MailboxKey{src, rank_, tag};
  world_.cv_.wait(lk, [&] {
    auto it = world_.mailboxes_.find(key);
    return it != world_.mailboxes_.end() && !it->second.empty();
  });
  World::Message msg = std::move(world_.mailboxes_[key].front());
  world_.mailboxes_[key].pop_front();
  DACE_CHECK((int64_t)msg.data.size() == count * block,
             "simmpi: message size mismatch (tag ", tag, "): got ",
             msg.data.size(), " want ", count * block);
  double& my_clock = world_.clocks_[(size_t)rank_];
  my_clock = std::max(my_clock, msg.arrival);
  lk.unlock();
  for (int64_t c = 0; c < count; ++c) {
    for (int64_t b = 0; b < block; ++b) buf[c * stride + b] = msg.data[(size_t)(c * block + b)];
  }
}

void Comm::recv(double* buf, int64_t n, int src, int tag) {
  recv_vector(buf, 1, n, n, src, tag);
}

Comm::Request Comm::isend(const double* buf, int64_t count, int64_t block,
                          int64_t stride, int dst, int tag) {
  // Buffered eager send: completes immediately.
  send_vector(buf, count, block, stride, dst, tag);
  Request r;
  r.is_send = true;
  r.done = true;
  r.peer = dst;
  r.tag = tag;
  return r;
}

Comm::Request Comm::irecv(double* buf, int64_t count, int64_t block,
                          int64_t stride, int src, int tag) {
  Request r;
  r.is_send = false;
  r.buf = buf;
  r.count = count;
  r.block = block;
  r.stride = stride;
  r.peer = src;
  r.tag = tag;
  r.done = false;
  return r;
}

void Comm::wait(Request& r) {
  if (r.done) return;
  recv_vector(r.buf, r.count, r.block, r.stride, r.peer, r.tag);
  r.done = true;
}

void Comm::waitall(std::vector<Request>& rs) {
  for (auto& r : rs) wait(r);
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

void Comm::rendezvous(const void* root_data, int root, double cost,
                      const std::function<void(const void*)>& exchange) {
  std::unique_lock<std::mutex> lk(world_.coll_mu_);
  uint64_t phase = world_.coll_phase_;
  if (rank_ == root) world_.coll_root_data_ = root_data;
  {
    std::lock_guard<std::mutex> clk(world_.mu_);
    world_.coll_max_clock_ = std::max(world_.coll_max_clock_,
                                      world_.clocks_[(size_t)rank_]);
  }
  if (++world_.coll_arrived_ == world_.nranks_) {
    // Last arriver publishes the synchronized clock and wakes everyone.
    double synced = world_.coll_max_clock_ + cost;
    {
      std::lock_guard<std::mutex> clk(world_.mu_);
      for (auto& c : world_.clocks_) c = std::max(c, synced);
    }
    world_.coll_arrived_ = 0;
    world_.coll_max_clock_ = 0;
    ++world_.coll_phase_;
    // Exchange happens while everyone is still parked, using root's data.
    exchange(world_.coll_root_data_);
    world_.coll_cv_.notify_all();
  } else {
    world_.coll_cv_.wait(lk, [&] { return world_.coll_phase_ != phase; });
    exchange(world_.coll_root_data_);
  }
  // Second phase: wait for all exchanges before anyone may reuse buffers.
  if (++world_.coll_arrived_ == world_.nranks_) {
    world_.coll_arrived_ = 0;
    ++world_.coll_phase_;
    world_.coll_cv_.notify_all();
  } else {
    uint64_t phase2 = world_.coll_phase_;
    world_.coll_cv_.wait(lk, [&] { return world_.coll_phase_ != phase2; });
  }
}

namespace {
double log2p(int p) { return p > 1 ? std::log2((double)p) : 1.0; }
}  // namespace

void Comm::charge_sync(double cost) {
  rendezvous(nullptr, 0, cost, [](const void*) {});
}

void Comm::barrier() {
  double cost = world_.net().alpha_s * log2p(size());
  rendezvous(nullptr, 0, cost, [](const void*) {});
}

void Comm::bcast(double* buf, int64_t n, int root) {
  double cost = log2p(size()) * world_.net().p2p(n * 8);
  rendezvous(buf, root, cost, [&](const void* root_data) {
    if (rank_ != root) {
      const double* src = static_cast<const double*>(root_data);
      std::copy(src, src + n, buf);
    }
  });
  std::lock_guard<std::mutex> lk(world_.mu_);
  world_.total_bytes_ += (rank_ == root) ? n * 8 * (size() - 1) : 0;
}

void Comm::scatter(const double* sendbuf, double* recvbuf, int64_t n_per_rank,
                   int root) {
  int p = size();
  double cost = world_.net().alpha_s * log2p(p) +
                (double)(p - 1) / p * (double)(n_per_rank * p * 8) /
                    world_.net().bandwidth;
  rendezvous(sendbuf, root, cost, [&](const void* root_data) {
    const double* src = static_cast<const double*>(root_data);
    std::copy(src + rank_ * n_per_rank, src + (rank_ + 1) * n_per_rank,
              recvbuf);
  });
  std::lock_guard<std::mutex> lk(world_.mu_);
  if (rank_ == root) world_.total_bytes_ += n_per_rank * 8 * (p - 1);
}

void Comm::gather(const double* sendbuf, double* recvbuf, int64_t n_per_rank,
                  int root) {
  int p = size();
  double cost = world_.net().alpha_s * log2p(p) +
                (double)(p - 1) / p * (double)(n_per_rank * p * 8) /
                    world_.net().bandwidth;
  // Root's recvbuf is the shared destination.
  rendezvous(recvbuf, root, cost, [&](const void* root_data) {
    double* dst = static_cast<double*>(const_cast<void*>(root_data));
    std::copy(sendbuf, sendbuf + n_per_rank, dst + rank_ * n_per_rank);
  });
  std::lock_guard<std::mutex> lk(world_.mu_);
  if (rank_ == root) world_.total_bytes_ += n_per_rank * 8 * (p - 1);
}

void Comm::allgather(const double* sendbuf, double* recvbuf,
                     int64_t n_per_rank) {
  int p = size();
  // Ring allgather: (p-1) rounds.
  double cost = (p - 1) * world_.net().alpha_s +
                (double)(p - 1) * (double)(n_per_rank * 8) /
                    world_.net().bandwidth;
  // Shared staging area: use rank 0's recvbuf as the root data.
  rendezvous(recvbuf, 0, cost, [&](const void* root_data) {
    double* dst = static_cast<double*>(const_cast<void*>(root_data));
    std::copy(sendbuf, sendbuf + n_per_rank, dst + rank_ * n_per_rank);
  });
  // Second rendezvous distributes the assembled buffer to all ranks.
  rendezvous(recvbuf, 0, 0.0, [&](const void* root_data) {
    const double* src = static_cast<const double*>(root_data);
    if (src != recvbuf) std::copy(src, src + n_per_rank * p, recvbuf);
  });
  std::lock_guard<std::mutex> lk(world_.mu_);
  if (rank_ == 0) world_.total_bytes_ += n_per_rank * 8 * (p - 1) * 2;
}

void Comm::allreduce_sum(double* buf, int64_t n) {
  int p = size();
  double cost = 2 * world_.net().alpha_s * log2p(p) +
                2.0 * (double)(n * 8) / world_.net().bandwidth;
  // Rank 0's buffer accumulates all contributions, then is re-broadcast.
  rendezvous(buf, 0, cost, [&](const void* root_data) {
    double* acc = static_cast<double*>(const_cast<void*>(root_data));
    if (rank_ != 0) {
      // Serialized accumulation under the collective lock (we are inside
      // the rendezvous critical section).
      for (int64_t i = 0; i < n; ++i) acc[i] += buf[i];
    }
  });
  rendezvous(buf, 0, 0.0, [&](const void* root_data) {
    const double* src = static_cast<const double*>(root_data);
    if (src != buf) std::copy(src, src + n, buf);
  });
  std::lock_guard<std::mutex> lk(world_.mu_);
  if (rank_ == 0) world_.total_bytes_ += n * 8 * (p - 1) * 2;
}

void Comm::reduce_sum(const double* sendbuf, double* recvbuf, int64_t n,
                      int root) {
  int p = size();
  double cost = world_.net().alpha_s * log2p(p) +
                (double)(n * 8) / world_.net().bandwidth;
  if (rank_ == root) std::copy(sendbuf, sendbuf + n, recvbuf);
  rendezvous(recvbuf, root, cost, [&](const void* root_data) {
    double* acc = static_cast<double*>(const_cast<void*>(root_data));
    if (rank_ != root) {
      for (int64_t i = 0; i < n; ++i) acc[i] += sendbuf[i];
    }
  });
  std::lock_guard<std::mutex> lk(world_.mu_);
  if (rank_ == root) world_.total_bytes_ += n * 8 * (p - 1);
}

}  // namespace dace::dist
