#include "distributed/simmpi.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/metrics.hpp"
#include "common/obs.hpp"

namespace dace::dist {

namespace {

using SteadyClock = std::chrono::steady_clock;

SteadyClock::time_point deadline_from(double seconds) {
  return SteadyClock::now() +
         std::chrono::duration_cast<SteadyClock::duration>(
             std::chrono::duration<double>(seconds));
}

// Injected fault as an instant on the rank's virtual timeline (pid 1,
// tid = rank, ts = modeled clock).  Emission order per rank follows the
// rank thread's program order, so traces of a seeded chaos run are
// deterministic.
void obs_fault(const FaultEvent& e) {
  if (!obs::enabled() || !obs::rank_traced(e.rank)) return;
  std::ostringstream a;
  a << "{\"peer\":" << e.peer << ",\"tag\":" << e.tag
    << ",\"bytes\":" << e.bytes << ",\"seq\":" << e.seq
    << ",\"attempt\":" << e.attempt << "}";
  obs::instant_at("fault", fault_kind_name(e.kind), e.vtime * 1e6, 1, e.rank,
                  a.str());
}

}  // namespace

World::World(int nranks, NetModel net)
    : nranks_(nranks),
      net_(net),
      clocks_((size_t)nranks, 0.0),
      dead_((size_t)nranks, 0),
      fault_plan_(FaultPlan::from_env()),
      comm_cfg_(CommConfig::from_env()) {
  DACE_CHECK(nranks >= 1, "simmpi: need at least one rank");
  if (const char* t = std::getenv("DACE_COMM_TRACE")) enable_trace(t);
}

World::~World() = default;

void World::enable_trace(const std::string& path) {
  tracing_ = true;
  trace_path_ = path;
}

std::vector<FaultEvent> World::fault_events() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_;
}

std::vector<int> World::failed_ranks() const {
  std::vector<int> out;
  for (const auto& f : last_failures_) out.push_back(f.rank);
  return out;
}

void World::mark_dead(int rank) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    dead_[(size_t)rank] = 1;
  }
  cv_.notify_all();
  {
    std::lock_guard<std::mutex> lk(coll_mu_);
    ++coll_dead_count_;
  }
  coll_cv_.notify_all();
}

void World::record_event(const FaultEvent& e) {
  METRIC_INC("dacepp_dist_faults_injected_total");
  std::lock_guard<std::mutex> lk(mu_);
  events_.push_back(e);
}

void World::trace_line(const std::string& s) {
  std::lock_guard<std::mutex> lk(mu_);
  trace_.push_back(s);
}

void World::run(const std::function<void(Comm&)>& fn) {
  std::fill(clocks_.begin(), clocks_.end(), 0.0);
  std::fill(dead_.begin(), dead_.end(), 0);
  mailboxes_.clear();
  send_seq_.clear();
  recv_seq_.clear();
  events_.clear();
  trace_.clear();
  last_failures_.clear();
  total_bytes_ = 0;
  total_messages_ = 0;
  total_retries_ = 0;
  coll_arrived_ = 0;
  coll_phase_ = 0;
  coll_root_data_ = nullptr;
  coll_root_set_ = false;
  coll_max_clock_ = 0;
  coll_dead_count_ = 0;
  if (tracing_) {
    std::ostringstream hdr;
    hdr << "# dacepp-comm-trace v1 nranks=" << nranks_ << " net=" << net_.name;
    trace_.push_back(hdr.str());
  }

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors((size_t)nranks_);
  auto rank_body = [&](int r) {
    try {
      Comm c(*this, r);
      fn(c);
    } catch (...) {
      errors[(size_t)r] = std::current_exception();
      // Mark this rank dead *before* peers block on it forever: recvs
      // from it fail fast and tolerant collectives re-form without it.
      mark_dead(r);
    }
  };
  for (int r = 1; r < nranks_; ++r) {
    threads.emplace_back(rank_body, r);
  }
  rank_body(0);
  for (auto& t : threads) t.join();

  if (tracing_ && !trace_path_.empty()) {
    if (FILE* f = std::fopen(trace_path_.c_str(), "w")) {
      for (const auto& line : trace_) std::fprintf(f, "%s\n", line.c_str());
      std::fclose(f);
    }
  }

  for (int r = 0; r < nranks_; ++r) {
    if (!errors[(size_t)r]) continue;
    try {
      std::rethrow_exception(errors[(size_t)r]);
    } catch (const std::exception& e) {
      last_failures_.push_back(RankFailure{r, e.what()});
    } catch (...) {
      last_failures_.push_back(RankFailure{r, "unknown exception"});
    }
  }
  if (!last_failures_.empty()) throw DistError(last_failures_);
}

double World::max_clock() const {
  double m = 0;
  for (double c : clocks_) m = std::max(m, c);
  return m;
}

// ---------------------------------------------------------------------------
// Per-op bookkeeping: tracing, fault injection, diagnoses
// ---------------------------------------------------------------------------

double Comm::clock() const {
  std::lock_guard<std::mutex> lk(world_.mu_);
  return world_.clocks_[(size_t)rank_];
}

void Comm::add_time(double seconds) {
  std::lock_guard<std::mutex> lk(world_.mu_);
  world_.clocks_[(size_t)rank_] += seconds;
}

std::string Comm::where() const {
  return ctx_.empty() ? std::string() : " during " + ctx_;
}

void Comm::throw_timeout(const char* op, int peer, int tag, int64_t bytes) {
  std::ostringstream os;
  os << "simmpi: " << op << " timed out on rank " << rank_;
  if (peer >= 0) os << " waiting on peer " << peer;
  if (tag >= 0) os << " (tag " << tag << ")";
  if (bytes > 0) os << ", " << bytes << " bytes expected";
  os << "; deadline " << world_.comm_cfg_.timeout_s << "s wall, virtual clock "
     << clock() << "s" << where();
  throw CommTimeout(os.str(), rank_, peer, tag, bytes, op);
}

void Comm::throw_peer_failed(const char* op, int peer, int tag,
                             int64_t bytes) {
  std::vector<int> dead;
  {
    std::lock_guard<std::mutex> lk(world_.mu_);
    for (int r = 0; r < world_.nranks_; ++r) {
      if (world_.dead_[(size_t)r]) dead.push_back(r);
    }
  }
  std::ostringstream os;
  os << "simmpi: " << op << " on rank " << rank_ << " cannot complete: ";
  if (peer >= 0 && std::find(dead.begin(), dead.end(), peer) != dead.end()) {
    os << "peer " << peer << " has failed";
  } else {
    os << "rank(s)";
    for (int r : dead) os << " " << r;
    os << " have failed";
  }
  if (tag >= 0) os << " (tag " << tag << ")";
  if (bytes > 0) os << ", " << bytes << " bytes expected";
  os << where();
  throw PeerFailed(os.str(), rank_, peer, tag, bytes, op);
}

void Comm::on_comm_op(const char* op, int peer, int tag, int64_t n,
                      int64_t block, int64_t stride, int root, double cost) {
  if (world_.tracing_) {
    std::ostringstream os;
    if (peer >= 0) {
      os << op << " " << rank_ << " " << peer << " " << tag << " " << n << " "
         << block << " " << stride;
    } else {
      os << "coll " << rank_ << " " << op << " " << n << " " << root << " "
         << cost;
    }
    world_.trace_line(os.str());
  }
  if (obs::enabled() && obs::rank_traced(rank_)) {
    std::ostringstream a;
    if (peer >= 0) {
      a << "{\"peer\":" << peer << ",\"tag\":" << tag << ",\"n\":" << n
        << "}";
    } else {
      a << "{\"n\":" << n << ",\"root\":" << root << "}";
    }
    obs::instant_at("comm", op, clock() * 1e6, 1, rank_, a.str());
  }
  int64_t idx = op_index_++;
  const FaultPlan& fp = world_.fault_plan_;
  if (!fp.active()) return;
  FaultKind k = fp.decide_rank_op(rank_, idx);
  if (k == FaultKind::None) return;
  FaultEvent e;
  e.kind = k;
  e.rank = rank_;
  e.peer = peer;
  e.tag = tag;
  e.seq = (uint64_t)idx;
  e.vtime = clock();
  world_.record_event(e);
  obs_fault(e);
  if (k == FaultKind::Stall) {
    // The rank goes silent for stall_s wall seconds: peers whose deadline
    // is shorter observe a CommTimeout naming this rank.
    std::this_thread::sleep_for(std::chrono::duration<double>(fp.stall_s));
    return;
  }
  // Crash: the rank dies at this op; World::run marks it dead so peers
  // fail fast (PeerFailed) or re-form tolerant collectives without it.
  std::ostringstream os;
  os << "simmpi: injected crash on rank " << rank_ << " at comm op " << idx
     << " (" << op << ")" << where();
  throw RankCrashed(os.str(), rank_, peer, tag, n * 8, op);
}

// ---------------------------------------------------------------------------
// Point-to-point
// ---------------------------------------------------------------------------

void Comm::send_vector(const double* buf, int64_t count, int64_t block,
                       int64_t stride, int dst, int tag) {
  DACE_CHECK(dst >= 0 && dst < size(), "simmpi: send on rank ", rank_,
             " to invalid rank ", dst, " (world size ", size(), ", tag ", tag,
             ", ", count * block * 8, " bytes)", where());
  on_comm_op("send", dst, tag, count, block, stride);
  std::vector<double> payload;
  payload.reserve((size_t)(count * block));
  for (int64_t c = 0; c < count; ++c) {
    for (int64_t b = 0; b < block; ++b) payload.push_back(buf[c * stride + b]);
  }
  int64_t bytes = (int64_t)payload.size() * 8;
  const FaultPlan& fp = world_.fault_plan_;
  const CommConfig& cc = world_.comm_cfg_;
  {
    std::lock_guard<std::mutex> lk(world_.mu_);
    auto key = World::MailboxKey{rank_, dst, tag};
    uint64_t seq = world_.send_seq_[key]++;
    auto& q = world_.mailboxes_[key];
    double& my_clock = world_.clocks_[(size_t)rank_];
    // Reliable transport: a dropped transmission is retransmitted with
    // exponential backoff charged to the *virtual* clock, so chaos runs
    // stay bit-identical while retries degrade the modeled efficiency.
    double backoff = 0;
    bool delivered = false;
    for (int attempt = 0; attempt <= cc.max_retries; ++attempt) {
      FaultKind k = fp.active()
                        ? fp.decide_message(rank_, dst, tag, seq, attempt)
                        : FaultKind::None;
      if (k == FaultKind::Drop) {
        FaultEvent ev{FaultKind::Drop, rank_, dst, tag,
                      bytes, seq, attempt, my_clock};
        world_.events_.push_back(ev);
        obs_fault(ev);
        if (attempt < cc.max_retries) {
          ++world_.total_retries_;
          backoff += cc.backoff_s * (double)(1LL << attempt);
          if (obs::enabled() && obs::rank_traced(rank_)) {
            std::ostringstream a;
            a << "{\"peer\":" << dst << ",\"tag\":" << tag
              << ",\"attempt\":" << attempt << ",\"backoff_s\":" << backoff
              << "}";
            obs::instant_at("comm", "retransmit", (my_clock + backoff) * 1e6,
                            1, rank_, a.str());
          }
        }
        continue;
      }
      World::Message msg;
      msg.seq = seq;
      msg.arrival = my_clock + backoff + world_.net_.p2p(bytes);
      if (k == FaultKind::Delay) {
        msg.arrival += fp.delay_s;
        FaultEvent ev{FaultKind::Delay, rank_, dst, tag,
                      bytes, seq, attempt, my_clock};
        world_.events_.push_back(ev);
        obs_fault(ev);
      }
      if (k == FaultKind::Duplicate) {
        World::Message dup;
        dup.seq = seq;
        dup.arrival = msg.arrival + world_.net_.alpha_s;
        dup.data = payload;  // copy; the original moves below
        msg.data = std::move(payload);
        q.push_back(std::move(msg));
        q.push_back(std::move(dup));
        FaultEvent ev{FaultKind::Duplicate, rank_, dst,
                      tag, bytes, seq, attempt, my_clock};
        world_.events_.push_back(ev);
        obs_fault(ev);
      } else {
        msg.data = std::move(payload);
        q.push_back(std::move(msg));
      }
      if (k == FaultKind::Reorder && q.size() >= 2) {
        std::swap(q[q.size() - 1], q[q.size() - 2]);
        FaultEvent ev{FaultKind::Reorder, rank_, dst,
                      tag, bytes, seq, attempt, my_clock};
        world_.events_.push_back(ev);
        obs_fault(ev);
      }
      delivered = true;
      break;
    }
    my_clock += world_.net_.alpha_s + backoff;  // sender-side overhead
    world_.total_bytes_ += bytes;
    ++world_.total_messages_;
    (void)delivered;  // a fully-dropped message surfaces as the peer's
                      // CommTimeout naming this channel
  }
  world_.cv_.notify_all();
}

void Comm::send(const double* buf, int64_t n, int dst, int tag) {
  send_vector(buf, 1, n, n, dst, tag);
}

void Comm::recv_vector(double* buf, int64_t count, int64_t block,
                       int64_t stride, int src, int tag) {
  DACE_CHECK(src >= 0 && src < size(), "simmpi: recv on rank ", rank_,
             " from invalid rank ", src, " (world size ", size(), ", tag ",
             tag, ", ", count * block * 8, " bytes expected)", where());
  on_comm_op("recv", src, tag, count, block, stride);
  auto deadline = deadline_from(world_.comm_cfg_.timeout_s);
  std::unique_lock<std::mutex> lk(world_.mu_);
  auto key = World::MailboxKey{src, rank_, tag};
  // Channels are sequence-numbered: take exactly message `expect`,
  // discarding duplicates (seq already consumed) and looking past
  // reordered later messages.
  uint64_t expect = world_.recv_seq_[key]++;
  World::Message msg;
  bool got = false;
  while (!got) {
    auto& q = world_.mailboxes_[key];
    for (auto it = q.begin(); it != q.end();) {
      if (it->seq < expect) {
        it = q.erase(it);  // stale duplicate
      } else if (it->seq == expect) {
        msg = std::move(*it);
        q.erase(it);
        got = true;
        break;
      } else {
        ++it;
      }
    }
    if (got) break;
    if (world_.dead_[(size_t)src]) {
      lk.unlock();
      throw_peer_failed("recv", src, tag, count * block * 8);
    }
    if (SteadyClock::now() >= deadline) {
      lk.unlock();
      throw_timeout("recv", src, tag, count * block * 8);
    }
    world_.cv_.wait_until(lk, deadline);
  }
  DACE_CHECK(
      (int64_t)msg.data.size() == count * block,
      "simmpi: message size mismatch from sender ", src, " to receiver ",
      rank_, " (tag ", tag, "): got ", msg.data.size() * 8, " bytes (",
      msg.data.size(), " elems), expected ", count * block * 8, " bytes (",
      count * block, " elems)", where());
  double& my_clock = world_.clocks_[(size_t)rank_];
  my_clock = std::max(my_clock, msg.arrival);
  lk.unlock();
  for (int64_t c = 0; c < count; ++c) {
    for (int64_t b = 0; b < block; ++b) buf[c * stride + b] = msg.data[(size_t)(c * block + b)];
  }
}

void Comm::recv(double* buf, int64_t n, int src, int tag) {
  recv_vector(buf, 1, n, n, src, tag);
}

Comm::Request Comm::isend(const double* buf, int64_t count, int64_t block,
                          int64_t stride, int dst, int tag) {
  // Buffered eager send: completes immediately.
  send_vector(buf, count, block, stride, dst, tag);
  Request r;
  r.is_send = true;
  r.done = true;
  r.peer = dst;
  r.tag = tag;
  return r;
}

Comm::Request Comm::irecv(double* buf, int64_t count, int64_t block,
                          int64_t stride, int src, int tag) {
  Request r;
  r.is_send = false;
  r.buf = buf;
  r.count = count;
  r.block = block;
  r.stride = stride;
  r.peer = src;
  r.tag = tag;
  r.done = false;
  return r;
}

void Comm::wait(Request& r) {
  if (r.done) return;
  recv_vector(r.buf, r.count, r.block, r.stride, r.peer, r.tag);
  r.done = true;
}

void Comm::waitall(std::vector<Request>& rs) {
  for (auto& r : rs) wait(r);
}

// ---------------------------------------------------------------------------
// Collectives
// ---------------------------------------------------------------------------

const void* Comm::rendezvous(
    const char* opname, const void* root_data, int root, double cost,
    bool tolerant, const std::function<void(const void*)>& exchange) {
  auto deadline = deadline_from(world_.comm_cfg_.timeout_s);
  std::unique_lock<std::mutex> lk(world_.coll_mu_);
  if (!tolerant && world_.coll_dead_count_ > 0) {
    lk.unlock();
    throw_peer_failed(opname, root >= 0 ? root : -1, -1, 0);
  }
  uint64_t phase = world_.coll_phase_;
  if (root == kRootFirstArriver) {
    if (!world_.coll_root_set_) {
      world_.coll_root_data_ = root_data;
      world_.coll_root_set_ = true;
    }
  } else if (rank_ == root) {
    world_.coll_root_data_ = root_data;
    world_.coll_root_set_ = true;
  }
  {
    std::lock_guard<std::mutex> clk(world_.mu_);
    world_.coll_max_clock_ = std::max(world_.coll_max_clock_,
                                      world_.clocks_[(size_t)rank_]);
  }
  ++world_.coll_arrived_;
  auto complete_first = [&] {
    // Completer publishes the synchronized clock and advances the phase.
    double synced = world_.coll_max_clock_ + cost;
    {
      std::lock_guard<std::mutex> clk(world_.mu_);
      for (auto& c : world_.clocks_) c = std::max(c, synced);
    }
    world_.coll_arrived_ = 0;
    world_.coll_max_clock_ = 0;
    ++world_.coll_phase_;
  };
  // For an intolerant op whose peers died before the staging buffer was
  // published, `staged` may be null or stale: skip the exchange and let
  // the dead-rank check below raise PeerFailed instead of dereferencing.
  auto exchange_if_complete = [&](const void* data) {
    if (tolerant || world_.coll_dead_count_ == 0) exchange(data);
  };
  const void* staged = nullptr;
  if (world_.coll_arrived_ >= world_.alive_locked()) {
    complete_first();
    staged = world_.coll_root_data_;
    // Exchange happens while everyone is still parked, using the staging
    // buffer; all exchanges are serialized under coll_mu_.
    exchange_if_complete(staged);
    world_.coll_cv_.notify_all();
  } else {
    // Park until the phase advances.  If ranks die while we wait, the
    // arrived count may already cover every survivor -- whichever waiter
    // notices promotes itself to completer so the collective re-forms.
    while (world_.coll_phase_ == phase &&
           world_.coll_arrived_ < world_.alive_locked()) {
      if (world_.coll_cv_.wait_until(lk, deadline) ==
              std::cv_status::timeout &&
          world_.coll_phase_ == phase &&
          world_.coll_arrived_ < world_.alive_locked()) {
        --world_.coll_arrived_;  // withdraw before unwinding
        lk.unlock();
        world_.coll_cv_.notify_all();
        throw_timeout(opname, root >= 0 ? root : -1, -1, 0);
      }
    }
    if (world_.coll_phase_ == phase) {
      complete_first();  // promoted completer (a rank died mid-collective)
      staged = world_.coll_root_data_;
      exchange_if_complete(staged);
      world_.coll_cv_.notify_all();
    } else {
      staged = world_.coll_root_data_;
      exchange_if_complete(staged);
    }
  }
  if (!tolerant && world_.coll_dead_count_ > 0) {
    // A rank died mid-collective: the exchanged data is incomplete.
    lk.unlock();
    throw_peer_failed(opname, root >= 0 ? root : -1, -1, 0);
  }
  // Second phase: wait for all exchanges before anyone may reuse buffers.
  uint64_t phase2 = world_.coll_phase_;
  ++world_.coll_arrived_;
  auto complete_second = [&] {
    world_.coll_arrived_ = 0;
    world_.coll_root_set_ = false;  // staging released for the next op
    ++world_.coll_phase_;
  };
  if (world_.coll_arrived_ >= world_.alive_locked()) {
    complete_second();
    world_.coll_cv_.notify_all();
  } else {
    while (world_.coll_phase_ == phase2 &&
           world_.coll_arrived_ < world_.alive_locked()) {
      if (world_.coll_cv_.wait_until(lk, deadline) ==
              std::cv_status::timeout &&
          world_.coll_phase_ == phase2 &&
          world_.coll_arrived_ < world_.alive_locked()) {
        --world_.coll_arrived_;
        lk.unlock();
        world_.coll_cv_.notify_all();
        throw_timeout(opname, root >= 0 ? root : -1, -1, 0);
      }
    }
    if (world_.coll_phase_ == phase2) {
      complete_second();
      world_.coll_cv_.notify_all();
    }
  }
  return staged;
}

namespace {
double log2p(int p) { return p > 1 ? std::log2((double)p) : 1.0; }
}  // namespace

void Comm::charge_sync(double cost) {
  on_comm_op("sync", -1, -1, 0, 0, 0, -1, cost);
  rendezvous("sync", nullptr, kRootFirstArriver, cost, true,
             [](const void*) {});
}

void Comm::barrier() {
  on_comm_op("barrier", -1, -1, 0);
  double cost = world_.net().alpha_s * log2p(size());
  rendezvous("barrier", nullptr, kRootFirstArriver, cost, true,
             [](const void*) {});
}

void Comm::bcast(double* buf, int64_t n, int root) {
  on_comm_op("bcast", -1, -1, n, 0, 0, root);
  double cost = log2p(size()) * world_.net().p2p(n * 8);
  rendezvous("bcast", buf, root, cost, false, [&](const void* root_data) {
    if (rank_ != root) {
      const double* src = static_cast<const double*>(root_data);
      std::copy(src, src + n, buf);
    }
  });
  std::lock_guard<std::mutex> lk(world_.mu_);
  world_.total_bytes_ += (rank_ == root) ? n * 8 * (size() - 1) : 0;
}

void Comm::scatter(const double* sendbuf, double* recvbuf, int64_t n_per_rank,
                   int root) {
  on_comm_op("scatter", -1, -1, n_per_rank, 0, 0, root);
  int p = size();
  double cost = world_.net().alpha_s * log2p(p) +
                (double)(p - 1) / p * (double)(n_per_rank * p * 8) /
                    world_.net().bandwidth;
  rendezvous("scatter", sendbuf, root, cost, false,
             [&](const void* root_data) {
               const double* src = static_cast<const double*>(root_data);
               std::copy(src + rank_ * n_per_rank,
                         src + (rank_ + 1) * n_per_rank, recvbuf);
             });
  std::lock_guard<std::mutex> lk(world_.mu_);
  if (rank_ == root) world_.total_bytes_ += n_per_rank * 8 * (p - 1);
}

void Comm::gather(const double* sendbuf, double* recvbuf, int64_t n_per_rank,
                  int root) {
  on_comm_op("gather", -1, -1, n_per_rank, 0, 0, root);
  int p = size();
  double cost = world_.net().alpha_s * log2p(p) +
                (double)(p - 1) / p * (double)(n_per_rank * p * 8) /
                    world_.net().bandwidth;
  // Root's recvbuf is the shared destination.
  rendezvous("gather", recvbuf, root, cost, false,
             [&](const void* root_data) {
               double* dst = static_cast<double*>(const_cast<void*>(root_data));
               std::copy(sendbuf, sendbuf + n_per_rank,
                         dst + rank_ * n_per_rank);
             });
  std::lock_guard<std::mutex> lk(world_.mu_);
  if (rank_ == root) world_.total_bytes_ += n_per_rank * 8 * (p - 1);
}

void Comm::allgather(const double* sendbuf, double* recvbuf,
                     int64_t n_per_rank) {
  on_comm_op("allgather", -1, -1, n_per_rank);
  int p = size();
  // Ring allgather: (p-1) rounds.
  double cost = (p - 1) * world_.net().alpha_s +
                (double)(p - 1) * (double)(n_per_rank * 8) /
                    world_.net().bandwidth;
  // Staging area: the first arriver's recvbuf assembles all stripes.
  const void* staged = rendezvous(
      "allgather", recvbuf, kRootFirstArriver, cost, false,
      [&](const void* root_data) {
        double* dst = static_cast<double*>(const_cast<void*>(root_data));
        std::copy(sendbuf, sendbuf + n_per_rank, dst + rank_ * n_per_rank);
      });
  // Second rendezvous distributes the assembled buffer to all ranks.
  rendezvous("allgather.bcast", staged, kRootFirstArriver, 0.0, false,
             [&](const void* root_data) {
               const double* src = static_cast<const double*>(root_data);
               if (src != recvbuf)
                 std::copy(src, src + n_per_rank * p, recvbuf);
             });
  std::lock_guard<std::mutex> lk(world_.mu_);
  if (staged == recvbuf) world_.total_bytes_ += n_per_rank * 8 * (p - 1) * 2;
}

void Comm::allreduce_sum(double* buf, int64_t n) {
  on_comm_op("allreduce", -1, -1, n);
  int p = size();
  double cost = 2 * world_.net().alpha_s * log2p(p) +
                2.0 * (double)(n * 8) / world_.net().bandwidth;
  // Crash-tolerant: the first arriver's buffer accumulates every
  // *surviving* contribution, then is re-broadcast (degraded allreduce:
  // the sum re-forms over the ranks that reached the collective).
  const void* staged = rendezvous(
      "allreduce", buf, kRootFirstArriver, cost, true,
      [&](const void* root_data) {
        double* acc = static_cast<double*>(const_cast<void*>(root_data));
        if (acc != buf) {
          // Serialized accumulation under the collective lock (we are
          // inside the rendezvous critical section).
          for (int64_t i = 0; i < n; ++i) acc[i] += buf[i];
        }
      });
  rendezvous("allreduce.bcast", staged, kRootFirstArriver, 0.0, true,
             [&](const void* root_data) {
               const double* src = static_cast<const double*>(root_data);
               if (src != buf) std::copy(src, src + n, buf);
             });
  std::lock_guard<std::mutex> lk(world_.mu_);
  if (staged == buf) world_.total_bytes_ += n * 8 * (p - 1) * 2;
}

void Comm::reduce_sum(const double* sendbuf, double* recvbuf, int64_t n,
                      int root) {
  on_comm_op("reduce", -1, -1, n, 0, 0, root);
  int p = size();
  double cost = world_.net().alpha_s * log2p(p) +
                (double)(n * 8) / world_.net().bandwidth;
  if (rank_ == root) std::copy(sendbuf, sendbuf + n, recvbuf);
  rendezvous("reduce", recvbuf, root, cost, false,
             [&](const void* root_data) {
               double* acc = static_cast<double*>(const_cast<void*>(root_data));
               if (rank_ != root) {
                 for (int64_t i = 0; i < n; ++i) acc[i] += sendbuf[i];
               }
             });
  std::lock_guard<std::mutex> lk(world_.mu_);
  if (rank_ == root) world_.total_bytes_ += n * 8 * (p - 1);
}

}  // namespace dace::dist
