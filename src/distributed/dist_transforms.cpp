#include "distributed/dist_transforms.hpp"

#include <algorithm>

namespace dace::dist {

using ir::AccessNode;
using ir::Edge;
using ir::LibraryNode;
using ir::MapEntry;
using ir::MapExit;
using ir::Memlet;
using ir::SDFG;
using ir::State;
using ir::Tasklet;
using sym::Expr;
using sym::Subset;

namespace {

/// The local-view container of X: 1-D block of ceil(numel/__P) elements.
std::string local_name(const std::string& x) { return "__loc_" + x; }

ir::DataDesc& ensure_local(SDFG& sdfg, const std::string& x) {
  std::string ln = local_name(x);
  if (sdfg.has_array(ln)) return sdfg.array(ln);
  const ir::DataDesc& d = sdfg.array(x);
  Expr lsz = sym::ceildiv(d.num_elements(), Expr::symbol("__P"));
  auto& nd = sdfg.add_array(ln, d.dtype, {lsz}, /*transient=*/true);
  return nd;
}

/// Check that a subset is exactly [p0, p1, ..., pk] for the map params.
bool is_param_element(const Subset& s, const std::vector<std::string>& ps) {
  if (s.dims() != ps.size()) return false;
  for (size_t d = 0; d < ps.size(); ++d) {
    if (!s.range(d).is_index()) return false;
    if (!s.range(d).begin.equals(Expr::symbol(ps[d]))) return false;
  }
  return true;
}

}  // namespace

bool distribute_elementwise(SDFG& sdfg) {
  for (int sid : sdfg.state_ids()) {
    State& st = sdfg.state(sid);
    // Exactly one top-level map; only access nodes besides it.
    int entry = -1;
    bool clean = true;
    for (int id : st.node_ids()) {
      const ir::Node* n = st.node(id);
      if (n->kind == ir::NodeKind::MapEntry && st.scope_of(id) == -1) {
        if (entry != -1) clean = false;
        entry = id;
      } else if (n->kind == ir::NodeKind::Library ||
                 n->kind == ir::NodeKind::NestedSDFG ||
                 (n->kind == ir::NodeKind::Tasklet && st.scope_of(id) == -1)) {
        clean = false;
      }
    }
    if (!clean || entry < 0) continue;
    auto* me = st.node_as<MapEntry>(entry);
    int exit = me->exit_node;
    // Already distributed?
    if (me->params.size() == 1 && me->params[0] == "__di") continue;

    // The map must cover each container fully and access pure
    // [p0..pk] elements; tasklets must not read the parameters.
    bool match = true;
    std::set<std::string> containers;
    for (const auto& e : st.edges()) {
      if (e.memlet.empty()) continue;
      bool inner_in = e.src == entry;
      bool inner_out = e.dst == exit;
      if (inner_in || inner_out) {
        if (!is_param_element(e.memlet.subset, me->params)) match = false;
        if (e.memlet.wcr != ir::WCR::None) match = false;
      }
      if (e.src == entry || e.dst == entry || e.src == exit || e.dst == exit)
        containers.insert(e.memlet.data);
    }
    for (const auto& c : containers) {
      const auto& d = sdfg.array(c);
      // Full-range coverage: map range equals the container shape.
      if (d.shape.size() != me->params.size()) {
        match = false;
        break;
      }
      for (size_t k = 0; k < d.shape.size(); ++k) {
        if (!me->range.range(k).begin.is_zero() ||
            !me->range.range(k).end.equals(d.shape[k]) ||
            !me->range.range(k).step.is_one())
          match = false;
      }
    }
    for (int id : st.scope_nodes(entry)) {
      if (auto* t = st.node_as<Tasklet>(id)) {
        std::set<std::string> fs;
        t->code.free_symbols(fs);
        for (const auto& p : me->params) match &= !fs.count(p);
      } else if (st.node(id)->kind != ir::NodeKind::MapExit) {
        match = false;
      }
    }
    if (!match || containers.empty()) continue;

    // ---- Apply ----
    sdfg.add_symbol("__P");
    Expr lsz;
    // Collect and rewire the outer edges.
    struct OuterIn {
      int access;
      std::string container;
    };
    std::vector<OuterIn> ins, outs;
    for (const auto& e : st.edges()) {
      if (e.dst == entry && st.node(e.src)->kind == ir::NodeKind::Access)
        ins.push_back({e.src, e.memlet.data});
      if (e.src == exit && st.node(e.dst)->kind == ir::NodeKind::Access)
        outs.push_back({e.dst, e.memlet.data});
    }
    // New 1-D map over the local block.
    const ir::DataDesc& any = sdfg.array(*containers.begin());
    lsz = sym::ceildiv(any.num_elements(), Expr::symbol("__P"));
    sym::SubstMap flat;  // old params -> flattened local index
    // Elementwise with identical [p...] subsets: all memlets inside
    // become l_X[__di]; parameter substitution is uniform.
    me->params = {"__di"};
    me->range = Subset({sym::Range(Expr(0), lsz)});

    std::set<int> scope_set;
    {
      auto sn = st.scope_nodes(entry);
      scope_set.insert(sn.begin(), sn.end());
      scope_set.insert(entry);
      scope_set.insert(exit);
    }
    for (auto& e : st.edges()) {
      bool inner = scope_set.count(e.src) && scope_set.count(e.dst);
      if (!inner || e.memlet.empty()) continue;
      e.memlet = Memlet(local_name(e.memlet.data),
                        Subset::element({Expr::symbol("__di")}),
                        e.memlet.wcr);
    }
    // Connector renames on entry/exit.
    for (auto& e : st.edges()) {
      auto fix = [&](std::string& conn) {
        if (conn.rfind("IN_", 0) == 0)
          conn = "IN_" + local_name(conn.substr(3));
        else if (conn.rfind("OUT_", 0) == 0)
          conn = "OUT_" + local_name(conn.substr(4));
      };
      if (e.src == entry || e.src == exit) fix(e.src_conn);
      if (e.dst == entry || e.dst == exit) fix(e.dst_conn);
    }
    // Scatter inputs / gather outputs.
    st.remove_edges_if([&](const Edge& e) {
      return (e.dst == entry &&
              st.node(e.src)->kind == ir::NodeKind::Access) ||
             (e.src == exit && st.node(e.dst)->kind == ir::NodeKind::Access);
    });
    for (const auto& in : ins) {
      ir::DataDesc& ld = ensure_local(sdfg, in.container);
      int lib = st.add_library("comm::Scatter1D");
      int lacc = st.add_access(ld.name);
      const auto& gd = sdfg.array(in.container);
      st.add_edge(in.access, "", lib, "_in",
                  Memlet(in.container, Subset::full(gd.shape)));
      st.add_edge(lib, "_out", lacc, "",
                  Memlet(ld.name, Subset::full(ld.shape)));
      st.add_edge(lacc, "", entry, "IN_" + ld.name,
                  Memlet(ld.name, Subset::full(ld.shape)));
    }
    for (const auto& out : outs) {
      ir::DataDesc& ld = ensure_local(sdfg, out.container);
      int lib = st.add_library("comm::Gather1D");
      int lacc = st.add_access(ld.name);
      const auto& gd = sdfg.array(out.container);
      st.add_edge(exit, "OUT_" + ld.name, lacc, "",
                  Memlet(ld.name, Subset::full(ld.shape)));
      st.add_edge(lacc, "", lib, "_in",
                  Memlet(ld.name, Subset::full(ld.shape)));
      st.add_edge(lib, "_out", out.access, "",
                  Memlet(out.container, Subset::full(gd.shape)));
    }
    return true;
  }
  return false;
}

bool remove_redundant_comm(SDFG& sdfg) {
  // Pattern: Gather1D writes transient T (T's only write), and a
  // Scatter1D elsewhere reads T into the same local container; T has no
  // other uses. Both ops are 1-D block over __P: distributions match.
  for (int s1 : sdfg.state_ids()) {
    State& st1 = sdfg.state(s1);
    for (int g : st1.node_ids()) {
      const auto* lg = st1.node_as<const LibraryNode>(g);
      if (!lg || lg->op != "comm::Gather1D") continue;
      auto gouts = st1.out_edges(g);
      if (gouts.size() != 1) continue;
      const std::string T = gouts[0]->memlet.data;
      if (!sdfg.array(T).transient) continue;
      int t_access = gouts[0]->dst;
      // Find the matching scatter.
      int s2 = -1, sc = -1;
      int uses = 0;
      bool other_use = false;
      for (int sid : sdfg.state_ids()) {
        State& st2 = sdfg.state(sid);
        for (int nid : st2.node_ids()) {
          const auto* a = st2.node_as<const AccessNode>(nid);
          if (a && a->data == T) {
            ++uses;
            // Writers other than the gather or readers other than a
            // scatter disqualify.
            for (const auto* e : st2.out_edges(nid)) {
              const auto* l2 = st2.node_as<const LibraryNode>(e->dst);
              if (l2 && l2->op == "comm::Scatter1D") {
                s2 = sid;
                sc = e->dst;
              } else {
                other_use = true;
              }
            }
            for (const auto* e : st2.in_edges(nid)) {
              if (e->src != g) other_use = true;
            }
          }
        }
      }
      if (other_use || sc < 0 || uses != 2) continue;
      State& st2 = sdfg.state(s2);
      // Local containers on both sides must match (same 1-D block dist).
      auto gin = st1.in_edges(g);
      auto scouts = st2.out_edges(sc);
      if (gin.size() != 1 || scouts.size() != 1) continue;
      if (gin[0]->memlet.data != scouts[0]->memlet.data) continue;

      // Elide: local data stays resident in its local container.
      int sc_out_access = scouts[0]->dst;
      int sc_in_access = -1;
      for (const auto* e : st2.in_edges(sc)) sc_in_access = e->src;
      // st1: producer local access keeps its data; drop gather + T.
      st1.remove_edges_if(
          [&](const Edge& e) { return e.src == g || e.dst == g; });
      st1.remove_node(g);
      if (st1.in_degree(t_access) == 0 && st1.out_degree(t_access) == 0)
        st1.remove_node(t_access);
      // st2: consumers read the resident local container directly.
      st2.remove_edges_if(
          [&](const Edge& e) { return e.src == sc || e.dst == sc; });
      st2.remove_node(sc);
      if (sc_in_access >= 0 && st2.in_degree(sc_in_access) == 0 &&
          st2.out_degree(sc_in_access) == 0)
        st2.remove_node(sc_in_access);
      // The scatter's output access node stays: it is now a source read
      // of the resident local data.
      (void)sc_out_access;
      if (!xf::container_referenced(sdfg, T)) sdfg.remove_array(T);
      return true;
    }
  }
  return false;
}

}  // namespace dace::dist
