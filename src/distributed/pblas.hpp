// PBLAS-like distributed linear algebra over simMPI (Section 4.1).
//
// Implements the operations the paper's library-node expansions use:
// pgemm (SUMMA-style matrix-matrix product over a 2-D block-distributed
// grid, the expansion of MatMul to p?gemm) and the 1-D row-distributed
// matrix-vector products backing atax/bicg/mvt/gemver/gesummv.  The
// process grid is managed like BLACS: ranks are arranged row-major on a
// near-square grid.
#pragma once

#include "distributed/process_grid.hpp"
#include "distributed/simmpi.hpp"
#include "runtime/tensor.hpp"

namespace dace::dist {

/// C_loc += A_loc x B_loc over the grid (SUMMA; all blocks padded to
/// (mb,kb),(kb,nb),(mb,nb)). Charges both communication (panel
/// broadcasts) and local compute time.
void pgemm(Comm& comm, const Grid2D& g, const NodeModel& node,
           const rt::Tensor& a_loc, const rt::Tensor& b_loc,
           rt::Tensor& c_loc);

/// y_partial = A_rows x x_full, A distributed by rows over all ranks.
/// Result is this rank's row block of y; x must be replicated.
rt::Tensor pgemv_rows(Comm& comm, const NodeModel& node,
                      const rt::Tensor& a_rows, const rt::Tensor& x_full);

/// y_full = A_rows^T x x_rows summed over ranks (allreduce), where both
/// A and x are row-distributed. Returns the replicated full result.
rt::Tensor pgemv_trans_allreduce(Comm& comm, const NodeModel& node,
                                 const rt::Tensor& a_rows,
                                 const rt::Tensor& x_rows, int64_t n_full);

}  // namespace dace::dist
