// Distributed schedules of the Table-2 kernels (Section 4 / Fig. 12).
//
// Each function is the executable form of the automatically distributed
// SDFG for one benchmark: scatter/gather-style block distributions for
// element-wise operations, PBLAS expansions for the products (pgemm ring,
// row-distributed matvec with allreduce), and halo exchanges with MPI
// vector datatypes for the stencils (the explicit local-view scheme of
// Section 4.3).  All data movement is real (results validate against the
// shared-memory reference at small rank counts); time comes from the
// simMPI clocks plus the per-rank node model.
#pragma once

#include "distributed/simmpi.hpp"
#include "kernels/suite.hpp"

namespace dace::dist {

struct DistResult {
  double time_s = 0;       // max virtual clock over ranks
  int64_t bytes = 0;       // total bytes moved
  int64_t messages = 0;
};

/// Run the named Table-2 kernel distributed over `world`.
/// When `validate_out` is non-null, global outputs are written into it
/// (same containers as kernels::kernel(name).init) for correctness
/// checks.
DistResult run_dist_kernel(const std::string& name, World& world,
                           const sym::SymbolMap& sizes,
                           const NodeModel& node = NodeModel(),
                           rt::Bindings* validate_out = nullptr);

/// Kernel names available for distribution (the Table 2 set).
const std::vector<std::string>& distributed_kernels();

}  // namespace dace::dist
