// Distributed SDFG execution (Section 4.3: explicit local-view programs).
//
// Runs one SDFG instance per rank over a simMPI world.  The `comm::*`
// library nodes the frontend generates for `dace.comm.*` calls dispatch
// to handlers registered here; grid position and neighbor ranks are
// provided to the program as symbols.  Local compute charges the node
// model onto the rank's virtual clock through the executor launch hook.
//
// Resilience: the executor inherits the transport's retry policy
// (DACE_COMM_RETRIES exponential-backoff retransmits, charged to the
// virtual clock) and per-op deadlines (DACE_COMM_TIMEOUT); a FaultPlan
// installed on the World (or via DACE_FAULT_PLAN/DACE_FAULT_SEED) chaos-
// tests the run deterministically.  Rank crashes degrade gracefully:
// tolerant collectives (allreduce, barrier) re-form over the survivors,
// everything else fails fast with a PeerFailed diagnosis, and World::run
// aggregates all per-rank failures into one DistError.
#pragma once

#include <functional>

#include "distributed/simmpi.hpp"
#include "ir/sdfg.hpp"
#include "runtime/executor.hpp"

namespace dace::dist {

/// Per-rank communication context (executor.comm_context points here).
struct RankCtx {
  Comm* comm = nullptr;
  int px = 0, py = 0;        // grid coordinates
  struct Pending {
    Comm::Request req;
    rt::Tensor view;               // target view for receives
    std::vector<double> staging;   // contiguous buffer
    bool active = false;
    bool is_recv = false;
  };
  std::vector<Pending> requests;
};

/// Register the comm::* library handlers (idempotent).
void ensure_comm_handlers();

struct DistRunResult {
  double time_s = 0;
  int64_t bytes = 0;
  int64_t messages = 0;
  int64_t retries = 0;   // transport retransmissions (chaos runs)
  int64_t faults = 0;    // injected fault events (chaos runs)
};

/// Execute `sdfg` on every rank.  `shared_args` are global containers
/// (scatter sources / gather destinations) shared across ranks;
/// `rank_symbols` provides per-rank symbol values (local sizes, neighbor
/// ranks, offsets).  The symbols __rank, __px, __py (2-D grid position,
/// row-major near-square grid) are added automatically.
///
/// If `faults` is non-null it is installed on the world before the run
/// (chaos testing); per-rank failures surface as one DistError.
DistRunResult run_distributed_sdfg(
    World& world, const ir::SDFG& sdfg, rt::Bindings& shared_args,
    const std::function<sym::SymbolMap(int rank, int P)>& rank_symbols,
    const NodeModel& node = NodeModel(), const FaultPlan* faults = nullptr);

}  // namespace dace::dist
