// simMPI: an in-process message-passing substrate.
//
// Stands in for MPI on the Cray Aries network of Piz Daint (Section 4):
// ranks run as threads over private heaps, point-to-point messages and
// collectives move real data, and every operation advances per-rank
// *virtual clocks* through an alpha-beta (latency/bandwidth) network
// model with log-P collective trees.  Weak-scaling efficiency (Fig. 12)
// is therefore determined -- as on the real machine -- by the
// communication volume and structure of the executed schedule relative to
// modeled local compute, while results remain bit-identical to the
// shared-memory execution.
//
// The interface follows the MPI subset the paper uses: Isend/Irecv/
// Waitall, Scatter(v)/Gather(v)/Bcast/Allreduce/Reduce/Barrier, and
// Cartesian grid helpers.
//
// Resilience (distributed/faults.hpp): channels are sequence-numbered and
// reliable -- a seeded FaultPlan may drop, delay, duplicate or reorder
// transmissions, and the transport retransmits dropped messages with
// exponential backoff charged to the virtual clock, so results stay
// bit-identical while retries show up in the modeled time.  Every op
// carries a wall-clock deadline turning silent hangs into CommTimeout;
// crashed ranks are detected by their peers (PeerFailed), tolerant
// collectives (barrier, allreduce) re-form over the survivors, and
// World::run aggregates all per-rank failures into one DistError.
// DACE_COMM_TRACE=file records the full message schedule for
// deterministic replay (tools/dist-replay).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/common.hpp"
#include "distributed/faults.hpp"

namespace dace::dist {

/// Alpha-beta network model.
struct NetModel {
  std::string name = "aries";
  double alpha_s = 1.5e-6;      // per-message latency
  double bandwidth = 10e9;      // bytes/s per link
  double p2p(int64_t bytes) const {
    return alpha_s + (double)bytes / bandwidth;
  }
  /// Cray-MPI-like defaults; dasklike/legatelike substitute TCP/GASNet
  /// parameters.
  static NetModel mpi_cray() { return NetModel{"cray-mpi", 1.5e-6, 10e9}; }
  static NetModel gasnet() { return NetModel{"gasnet", 4e-6, 8e9}; }
  static NetModel tcp() { return NetModel{"tcp", 150e-6, 1.2e9}; }
};

/// Modeled per-rank compute node (one Piz Daint socket).
struct NodeModel {
  double flop_rate = 8e9;      // sustained FLOP/s per rank
  double mem_bandwidth = 30e9; // bytes/s per rank
  double compute_time(uint64_t flops, uint64_t bytes) const {
    double tf = (double)flops / flop_rate;
    double tm = (double)bytes / mem_bandwidth;
    return tf > tm ? tf : tm;
  }
};

class Comm;

/// A set of ranks executing a function in parallel (threads).
class World {
 public:
  World(int nranks, NetModel net = NetModel::mpi_cray());
  ~World();

  int size() const { return nranks_; }
  const NetModel& net() const { return net_; }

  /// Run fn on every rank concurrently; returns when all complete.
  /// Per-rank failures are aggregated into one DistError; surviving
  /// ranks keep running (tolerant collectives re-form over them).
  void run(const std::function<void(Comm&)>& fn);

  /// Max of the per-rank virtual clocks after the last run.
  double max_clock() const;
  /// Total bytes moved / messages sent during the last run.
  int64_t total_bytes() const { return total_bytes_; }
  int64_t total_messages() const { return total_messages_; }
  /// Retransmissions the reliable transport performed during the last run.
  int64_t total_retries() const { return total_retries_; }

  // -- chaos / resilience configuration --------------------------------------
  /// Install a seeded fault schedule (overrides DACE_FAULT_PLAN/SEED).
  void set_fault_plan(const FaultPlan& p) { fault_plan_ = p; }
  const FaultPlan& fault_plan() const { return fault_plan_; }
  /// Override timeouts/retries (defaults come from DACE_COMM_TIMEOUT /
  /// DACE_COMM_RETRIES).
  void set_comm_config(const CommConfig& c) { comm_cfg_ = c; }
  const CommConfig& comm_config() const { return comm_cfg_; }

  /// Every fault injected during the last run, in injection order.
  std::vector<FaultEvent> fault_events() const;
  /// Ranks that failed (crashed, stalled out, or threw) in the last run.
  std::vector<int> failed_ranks() const;

  // -- trace / replay ---------------------------------------------------------
  /// Record the message schedule; written to `path` ("" = in-memory only)
  /// when the run ends.  Also enabled by DACE_COMM_TRACE=file.
  void enable_trace(const std::string& path = "");
  const std::vector<std::string>& trace_lines() const { return trace_; }

 private:
  friend class Comm;

  struct Message {
    std::vector<double> data;
    double arrival = 0;  // virtual time the payload is available
    uint64_t seq = 0;    // per-channel sequence number (dedup/reorder)
  };
  struct MailboxKey {
    int src, dst, tag;
    bool operator<(const MailboxKey& o) const {
      if (src != o.src) return src < o.src;
      if (dst != o.dst) return dst < o.dst;
      return tag < o.tag;
    }
  };

  void mark_dead(int rank);
  void record_event(const FaultEvent& e);  // acquires mu_
  void trace_line(const std::string& s);   // acquires mu_
  int alive_locked() const { return nranks_ - coll_dead_count_; }

  int nranks_;
  NetModel net_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<MailboxKey, std::deque<Message>> mailboxes_;
  std::map<MailboxKey, uint64_t> send_seq_;
  std::map<MailboxKey, uint64_t> recv_seq_;
  std::vector<double> clocks_;
  std::vector<char> dead_;     // guarded by mu_
  int64_t total_bytes_ = 0;
  int64_t total_messages_ = 0;
  int64_t total_retries_ = 0;
  std::vector<FaultEvent> events_;  // guarded by mu_
  bool tracing_ = false;
  std::string trace_path_;
  std::vector<std::string> trace_;  // guarded by mu_
  std::vector<RankFailure> last_failures_;  // stable after run() returns

  FaultPlan fault_plan_;
  CommConfig comm_cfg_;

  // Collective rendezvous (two-phase).
  std::mutex coll_mu_;
  std::condition_variable coll_cv_;
  int coll_arrived_ = 0;
  uint64_t coll_phase_ = 0;
  const void* coll_root_data_ = nullptr;
  bool coll_root_set_ = false;
  double coll_max_clock_ = 0;
  int coll_dead_count_ = 0;  // guarded by coll_mu_
};

/// One rank's endpoint.
class Comm {
 public:
  Comm(World& world, int rank) : world_(world), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return world_.nranks_; }

  // -- virtual time -----------------------------------------------------------
  double clock() const;
  /// Charge local compute (from the node model) to this rank's clock.
  void add_time(double seconds);
  /// Synchronize all ranks and charge `cost` (a modeled collective whose
  /// data movement happened through shared memory). Crash-tolerant.
  void charge_sync(double cost);
  const NetModel& world_net() const { return world_.net_; }

  /// Label included in failure diagnoses (e.g. "pgemm.ring round 3").
  void set_context(std::string ctx) { ctx_ = std::move(ctx); }
  const std::string& context() const { return ctx_; }

  // -- point-to-point -----------------------------------------------------------
  void send(const double* buf, int64_t n, int dst, int tag);
  /// Strided send (MPI vector datatype): `count` blocks of `block` elems
  /// with `stride` elems between block starts.
  void send_vector(const double* buf, int64_t count, int64_t block,
                   int64_t stride, int dst, int tag);
  void recv(double* buf, int64_t n, int src, int tag);
  void recv_vector(double* buf, int64_t count, int64_t block, int64_t stride,
                   int src, int tag);

  struct Request {
    bool is_send = false;
    double* buf = nullptr;
    int64_t count = 0, block = 0, stride = 0;
    int peer = -1, tag = 0;
    bool done = true;
  };
  Request isend(const double* buf, int64_t count, int64_t block,
                int64_t stride, int dst, int tag);
  Request irecv(double* buf, int64_t count, int64_t block, int64_t stride,
                int src, int tag);
  void wait(Request& r);
  void waitall(std::vector<Request>& rs);

  // -- collectives ---------------------------------------------------------------
  // barrier and allreduce_sum are algebraically tolerant of crashed ranks
  // (they re-form over the survivors); the rooted/data-complete ops fail
  // fast with a PeerFailed diagnosis naming the dead ranks.
  void barrier();
  void bcast(double* buf, int64_t n, int root);
  /// Contiguous equal-block scatter/gather (1-D block distribution).
  void scatter(const double* sendbuf, double* recvbuf, int64_t n_per_rank,
               int root);
  void gather(const double* sendbuf, double* recvbuf, int64_t n_per_rank,
              int root);
  void allgather(const double* sendbuf, double* recvbuf, int64_t n_per_rank);
  void allreduce_sum(double* buf, int64_t n);
  void reduce_sum(const double* sendbuf, double* recvbuf, int64_t n, int root);

 private:
  /// Root sentinel: the first rank to arrive publishes its buffer as the
  /// shared staging area (used by the crash-tolerant collectives, whose
  /// fixed root may be dead).
  static constexpr int kRootFirstArriver = -2;

  /// Two-phase rendezvous: every *live* rank reaches this point;
  /// `root_data` of `root` is visible to all during the exchange
  /// callback; clocks jump to max(clocks) + cost.  `tolerant` collectives
  /// complete over surviving ranks; intolerant ones throw PeerFailed when
  /// any rank has died.  Returns the shared staging pointer.
  const void* rendezvous(const char* opname, const void* root_data, int root,
                         double cost, bool tolerant,
                         const std::function<void(const void*)>& exchange);

  /// Per-op bookkeeping: trace recording plus stall/crash injection.
  /// `peer`/`tag` are -1 for collectives; `cost` is recorded for ops whose
  /// charge cannot be recomputed from the trace (charge_sync).
  void on_comm_op(const char* op, int peer, int tag, int64_t n,
                  int64_t block = 0, int64_t stride = 0, int root = -1,
                  double cost = 0);

  [[noreturn]] void throw_timeout(const char* op, int peer, int tag,
                                  int64_t bytes);
  [[noreturn]] void throw_peer_failed(const char* op, int peer, int tag,
                                      int64_t bytes);
  std::string where() const;  // " during <ctx>" suffix, "" if unset

  World& world_;
  int rank_;
  int64_t op_index_ = 0;  // per-rank comm-op counter (fault plan domain)
  std::string ctx_;
};

/// RAII op-context label for failure diagnoses.
struct OpContext {
  OpContext(Comm& c, std::string ctx) : c_(c) { c_.set_context(std::move(ctx)); }
  ~OpContext() { c_.set_context(""); }
  Comm& c_;
};

}  // namespace dace::dist
