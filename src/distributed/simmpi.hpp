// simMPI: an in-process message-passing substrate.
//
// Stands in for MPI on the Cray Aries network of Piz Daint (Section 4):
// ranks run as threads over private heaps, point-to-point messages and
// collectives move real data, and every operation advances per-rank
// *virtual clocks* through an alpha-beta (latency/bandwidth) network
// model with log-P collective trees.  Weak-scaling efficiency (Fig. 12)
// is therefore determined -- as on the real machine -- by the
// communication volume and structure of the executed schedule relative to
// modeled local compute, while results remain bit-identical to the
// shared-memory execution.
//
// The interface follows the MPI subset the paper uses: Isend/Irecv/
// Waitall, Scatter(v)/Gather(v)/Bcast/Allreduce/Reduce/Barrier, and
// Cartesian grid helpers.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "common/common.hpp"

namespace dace::dist {

/// Alpha-beta network model.
struct NetModel {
  std::string name = "aries";
  double alpha_s = 1.5e-6;      // per-message latency
  double bandwidth = 10e9;      // bytes/s per link
  double p2p(int64_t bytes) const {
    return alpha_s + (double)bytes / bandwidth;
  }
  /// Cray-MPI-like defaults; dasklike/legatelike substitute TCP/GASNet
  /// parameters.
  static NetModel mpi_cray() { return NetModel{"cray-mpi", 1.5e-6, 10e9}; }
  static NetModel gasnet() { return NetModel{"gasnet", 4e-6, 8e9}; }
  static NetModel tcp() { return NetModel{"tcp", 150e-6, 1.2e9}; }
};

/// Modeled per-rank compute node (one Piz Daint socket).
struct NodeModel {
  double flop_rate = 8e9;      // sustained FLOP/s per rank
  double mem_bandwidth = 30e9; // bytes/s per rank
  double compute_time(uint64_t flops, uint64_t bytes) const {
    double tf = (double)flops / flop_rate;
    double tm = (double)bytes / mem_bandwidth;
    return tf > tm ? tf : tm;
  }
};

class Comm;

/// A set of ranks executing a function in parallel (threads).
class World {
 public:
  World(int nranks, NetModel net = NetModel::mpi_cray());
  ~World();

  int size() const { return nranks_; }
  const NetModel& net() const { return net_; }

  /// Run fn on every rank concurrently; returns when all complete.
  /// Exceptions on any rank are collected and rethrown.
  void run(const std::function<void(Comm&)>& fn);

  /// Max of the per-rank virtual clocks after the last run.
  double max_clock() const;
  /// Total bytes moved / messages sent during the last run.
  int64_t total_bytes() const { return total_bytes_; }
  int64_t total_messages() const { return total_messages_; }

 private:
  friend class Comm;

  struct Message {
    std::vector<double> data;
    double arrival = 0;  // virtual time the payload is available
  };
  struct MailboxKey {
    int src, dst, tag;
    bool operator<(const MailboxKey& o) const {
      if (src != o.src) return src < o.src;
      if (dst != o.dst) return dst < o.dst;
      return tag < o.tag;
    }
  };

  int nranks_;
  NetModel net_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<MailboxKey, std::deque<Message>> mailboxes_;
  std::vector<double> clocks_;
  int64_t total_bytes_ = 0;
  int64_t total_messages_ = 0;

  // Collective rendezvous (two-phase).
  std::mutex coll_mu_;
  std::condition_variable coll_cv_;
  int coll_arrived_ = 0;
  uint64_t coll_phase_ = 0;
  const void* coll_root_data_ = nullptr;
  double coll_max_clock_ = 0;
};

/// One rank's endpoint.
class Comm {
 public:
  Comm(World& world, int rank) : world_(world), rank_(rank) {}

  int rank() const { return rank_; }
  int size() const { return world_.nranks_; }

  // -- virtual time -----------------------------------------------------------
  double clock() const;
  /// Charge local compute (from the node model) to this rank's clock.
  void add_time(double seconds);
  /// Synchronize all ranks and charge `cost` (a modeled collective whose
  /// data movement happened through shared memory).
  void charge_sync(double cost);
  const NetModel& world_net() const { return world_.net_; }

  // -- point-to-point -----------------------------------------------------------
  void send(const double* buf, int64_t n, int dst, int tag);
  /// Strided send (MPI vector datatype): `count` blocks of `block` elems
  /// with `stride` elems between block starts.
  void send_vector(const double* buf, int64_t count, int64_t block,
                   int64_t stride, int dst, int tag);
  void recv(double* buf, int64_t n, int src, int tag);
  void recv_vector(double* buf, int64_t count, int64_t block, int64_t stride,
                   int src, int tag);

  struct Request {
    bool is_send = false;
    double* buf = nullptr;
    int64_t count = 0, block = 0, stride = 0;
    int peer = -1, tag = 0;
    bool done = true;
  };
  Request isend(const double* buf, int64_t count, int64_t block,
                int64_t stride, int dst, int tag);
  Request irecv(double* buf, int64_t count, int64_t block, int64_t stride,
                int src, int tag);
  void wait(Request& r);
  void waitall(std::vector<Request>& rs);

  // -- collectives ---------------------------------------------------------------
  void barrier();
  void bcast(double* buf, int64_t n, int root);
  /// Contiguous equal-block scatter/gather (1-D block distribution).
  void scatter(const double* sendbuf, double* recvbuf, int64_t n_per_rank,
               int root);
  void gather(const double* sendbuf, double* recvbuf, int64_t n_per_rank,
              int root);
  void allgather(const double* sendbuf, double* recvbuf, int64_t n_per_rank);
  void allreduce_sum(double* buf, int64_t n);
  void reduce_sum(const double* sendbuf, double* recvbuf, int64_t n, int root);

 private:
  /// Two-phase rendezvous: every rank reaches this point; `root_data` of
  /// `root` is visible to all during the exchange callback; clocks jump
  /// to max(clocks) + cost.
  void rendezvous(const void* root_data, int root, double cost,
                  const std::function<void(const void*)>& exchange);

  World& world_;
  int rank_;
};

}  // namespace dace::dist
