#include "codegen/kernel_plan.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>

namespace dace::cg {

namespace {

using rt::Instr;
using rt::Op;

// Register read/write sets, bank-aware ('i' = integer, 'f' = float).
using Reg = std::pair<char, int>;

void defs_of(const Instr& in, std::vector<Reg>& out) {
  out.clear();
  switch (in.op) {
    case Op::IConst:
    case Op::ISym:
    case Op::IMov:
    case Op::IAdd:
    case Op::ISub:
    case Op::IMul:
    case Op::IFloorDiv:
    case Op::IMod:
    case Op::IMin:
    case Op::IMax:
      out.push_back({'i', in.a});
      break;
    case Op::Jmp:
    case Op::JGe:
    case Op::Store:
    case Op::StoreWcr:
    case Op::Guard:
    case Op::Halt:
      break;
    default:
      // Every remaining opcode writes float register a.
      out.push_back({'f', in.a});
      break;
  }
}

void reads_of(const Instr& in, std::vector<Reg>& out) {
  out.clear();
  switch (in.op) {
    case Op::IConst:
    case Op::ISym:
    case Op::FConst:
    case Op::FSym:
    case Op::Jmp:
    case Op::Halt:
      break;
    case Op::IMov:
    case Op::FFromI:
      out.push_back({'i', in.b});
      break;
    case Op::IAdd:
    case Op::ISub:
    case Op::IMul:
    case Op::IFloorDiv:
    case Op::IMod:
    case Op::IMin:
    case Op::IMax:
      out.push_back({'i', in.b});
      out.push_back({'i', in.c});
      break;
    case Op::JGe:
    case Op::Guard:
      out.push_back({'i', in.a});
      out.push_back({'i', in.b});
      break;
    case Op::Load:
      out.push_back({'i', in.b});
      break;
    case Op::Store:
    case Op::StoreWcr:
      out.push_back({'f', in.a});
      out.push_back({'i', in.b});
      break;
    case Op::FSelect:
      out.push_back({'f', in.b});
      out.push_back({'f', in.c});
      out.push_back({'f', (int)in.imm});
      break;
    case Op::FNeg:
    case Op::FAbs:
    case Op::FExp:
    case Op::FLog:
    case Op::FSqrt:
    case Op::FSin:
    case Op::FCos:
    case Op::FTanh:
    case Op::FFloor:
    case Op::FNot:
      out.push_back({'f', in.b});
      break;
    default:
      // Float binaries.
      out.push_back({'f', in.b});
      out.push_back({'f', in.c});
      break;
  }
}

bool is_induction_inc(const Instr& in) {
  return in.op == Op::IAdd && in.a == in.b;
}

class Planner {
 public:
  explicit Planner(const rt::Program& prog) : prog_(prog) {}

  KernelPlan run() {
    if (!reconstruct()) return {};
    plan_.valid = true;
    decide_sinks_and_unroll();
    decide_jam();
    return std::move(plan_);
  }

 private:
  const rt::Program& prog_;
  KernelPlan plan_;
  std::vector<Reg> scratch_;

  /// True when (bank, reg) has a def at some pc in [lo, hi).
  bool defined_in(char bank, int reg, size_t lo, size_t hi) {
    for (size_t pc = lo; pc < hi; ++pc) {
      defs_of(prog_.code[pc], scratch_);
      for (const Reg& d : scratch_)
        if (d.first == bank && d.second == reg) return true;
    }
    return false;
  }

  bool read_in(char bank, int reg, size_t lo, size_t hi) {
    for (size_t pc = lo; pc < hi; ++pc) {
      reads_of(prog_.code[pc], scratch_);
      for (const Reg& r : scratch_)
        if (r.first == bank && r.second == reg) return true;
    }
    return false;
  }

  /// Rebuild the loop forest.  Every Jmp must be a backward latch to a
  /// JGe header whose exit lands at latch+1, every JGe must be such a
  /// header, and loops must nest properly -- otherwise no plan.
  bool reconstruct() {
    const auto& code = prog_.code;
    std::vector<bool> jge_claimed(code.size(), false);
    for (size_t pc = 0; pc < code.size(); ++pc) {
      const Instr& in = code[pc];
      if (in.op != Op::Jmp) continue;
      if (in.imm < 0 || (size_t)in.imm >= pc) return false;  // forward jump
      size_t h = (size_t)in.imm;
      const Instr& jge = code[h];
      if (jge.op != Op::JGe || jge.imm != (int64_t)(pc + 1)) return false;
      if (jge_claimed[h]) return false;  // two latches, one header
      jge_claimed[h] = true;

      PlanLoop L;
      L.header = h;
      L.latch = pc;
      L.var = jge.a;
      L.end_reg = jge.b;
      // The latch is a trailing run of in-place IAdd increments; the
      // loop-variable step may sit anywhere in the run (strength
      // reduction appends offset increments after it).
      size_t lb = pc;
      while (lb > h + 1 && is_induction_inc(code[lb - 1])) --lb;
      L.latch_begin = lb;
      int var_incs = 0;
      for (size_t q = lb; q < pc; ++q)
        if (code[q].a == L.var) ++var_incs;
      if (var_incs != 1) return false;  // no (or ambiguous) canonical step
      plan_.loops.push_back(L);
    }
    // Stray JGe (no latch) means irreducible flow for our purposes.
    for (size_t pc = 0; pc < code.size(); ++pc)
      if (code[pc].op == Op::JGe && !jge_claimed[pc]) return false;

    std::sort(plan_.loops.begin(), plan_.loops.end(),
              [](const PlanLoop& a, const PlanLoop& b) {
                return a.header < b.header;
              });
    // Proper nesting: intervals [header, latch] are disjoint or nested.
    for (size_t i = 0; i < plan_.loops.size(); ++i) {
      PlanLoop& L = plan_.loops[i];
      for (size_t j = 0; j < i; ++j) {
        PlanLoop& O = plan_.loops[j];
        if (L.header > O.latch) continue;  // disjoint, O before L
        if (L.latch > O.latch) return false;  // overlap without nesting
        // L inside O; keep the innermost enclosing loop as parent.
        if (L.parent < 0 || plan_.loops[L.parent].header < O.header)
          L.parent = (int)j;
      }
    }
    for (size_t i = 0; i < plan_.loops.size(); ++i)
      if (plan_.loops[i].parent >= 0)
        plan_.loops[plan_.loops[i].parent].children.push_back((int)i);

    for (PlanLoop& L : plan_.loops) {
      for (size_t pc = L.header + 1; pc < L.latch && !L.has_guard; ++pc)
        L.has_guard = code[pc].op == Op::Guard;
      L.const_step = find_const_step(L);
    }
    return true;
  }

  /// Constant step of the loop variable: its latch increment's source
  /// must have exactly one static def, an IConst executed outside every
  /// loop (the preamble), with a positive value.
  int64_t find_const_step(const PlanLoop& L) {
    int step_reg = -1;
    for (size_t pc = L.latch_begin; pc < L.latch; ++pc)
      if (prog_.code[pc].a == L.var) step_reg = prog_.code[pc].c;
    if (step_reg < 0) return 0;
    int64_t val = 0;
    int defs = 0;
    for (size_t pc = 0; pc < prog_.code.size(); ++pc) {
      defs_of(prog_.code[pc], scratch_);
      for (const Reg& d : scratch_) {
        if (d.first != 'i' || d.second != step_reg) continue;
        ++defs;
        if (prog_.code[pc].op != Op::IConst) return 0;
        bool in_loop = false;
        for (const PlanLoop& O : plan_.loops)
          in_loop |= pc > O.header && pc < O.latch;
        if (in_loop) return 0;
        val = prog_.code[pc].imm;
      }
    }
    return (defs == 1 && val > 0) ? val : 0;
  }

  void decide_sinks_and_unroll() {
    for (PlanLoop& L : plan_.loops) {
      if (!L.innermost()) continue;
      decide_sinks(L);
      // Innermost unrolling by the f64 vector width, scalar epilogue for
      // the remainder.  Sequential body replication preserves the exact
      // VM order, so guards stay sound; requirements are a known
      // positive constant step, an invariant bound, and a loop variable
      // only written by its latch increment.  Loops the dependence
      // analysis already proved vectorizable (and without sunk
      // accumulators) stay plain: the host vectorizer cannot re-roll a
      // replicated body, so unrolling there would trade SIMD for scalar
      // ILP -- the ivdep'd plain loop is the better main loop.
      size_t body_len = L.latch_begin - L.header - 1;
      bool vectorizable =
          prog_.vec_innermost && !L.has_guard && L.sinks.empty();
      if (!vectorizable && L.const_step > 0 && body_len <= 48 &&
          !defined_in('i', L.var, L.header + 1, L.latch_begin) &&
          !defined_in('i', L.end_reg, L.header + 1, L.latch + 1)) {
        L.unroll = 4;
      }
    }
  }

  /// An innermost StoreWcr sinks to a register accumulator when its
  /// address is invariant in the loop and no other memory op anywhere in
  /// the program touches the same array slot (a Load elsewhere could
  /// observe the not-yet-combined partial value).  A Guard in the loop
  /// blocks sinking: the VM applies WCR updates for iterations preceding
  /// a trap, and the sunk combine would lose them.
  void decide_sinks(PlanLoop& L) {
    if (L.has_guard) return;
    const auto& code = prog_.code;
    for (size_t pc = L.header + 1; pc < L.latch_begin; ++pc) {
      const Instr& in = code[pc];
      if (in.op != Op::StoreWcr || in.c < 1 || in.c > 4) continue;
      if (defined_in('i', in.b, L.header + 1, L.latch + 1)) continue;
      bool slot_clean = true;
      for (size_t q = 0; q < code.size() && slot_clean; ++q) {
        if (q == pc) continue;
        const Instr& o = code[q];
        if ((o.op == Op::Load || o.op == Op::Store ||
             o.op == Op::StoreWcr) &&
            o.imm == in.imm)
          slot_clean = false;
      }
      if (slot_clean) L.sinks.push_back(pc);
    }
  }

  void decide_jam() {
    for (size_t li = 0; li < plan_.loops.size(); ++li) {
      PlanLoop& J = plan_.loops[li];
      if (J.children.size() != 1) continue;
      PlanLoop& K = plan_.loops[(size_t)J.children[0]];
      if (!K.innermost() || K.sinks.empty()) continue;
      if (J.const_step <= 0 || J.has_guard) continue;
      if (J.latch - J.header > 120) continue;  // bound the code bloat

      // The jam interleaves four J iterations lane by lane.  Per-lane
      // register renaming makes that sound provided the lanes cannot
      // communicate: the J latch must be simple inductions, the inner
      // loop's trip count must be identical across lanes, and no
      // register may carry a (non-induction) value between J iterations
      // or out of the loop.
      std::vector<int> latch_targets;
      bool ok = true;
      for (size_t pc = J.latch_begin; pc < J.latch && ok; ++pc) {
        const Instr& in = prog_.code[pc];
        ok = is_induction_inc(in) &&
             !defined_in('i', in.c, J.header + 1, J.latch + 1) &&
             std::find(latch_targets.begin(), latch_targets.end(),
                       (int)in.a) == latch_targets.end();
        latch_targets.push_back(in.a);
      }
      if (!ok) continue;

      // Inner trip count invariant across lanes: K's bound, its initial
      // value and its own step may not depend on anything written inside
      // J's body.
      auto body_def = [&](char bank, int reg) {
        return defined_in(bank, reg, J.header + 1, J.latch + 1);
      };
      if (body_def('i', K.end_reg)) continue;
      int init_pc = -1;
      for (size_t pc = J.header + 1; pc < K.header; ++pc) {
        defs_of(prog_.code[pc], scratch_);
        for (const Reg& d : scratch_)
          if (d.first == 'i' && d.second == K.var) init_pc = (int)pc;
      }
      if (init_pc < 0) continue;
      const Instr& init = prog_.code[(size_t)init_pc];
      if (init.op == Op::IMov) {
        if (body_def('i', init.b)) continue;
      } else if (init.op != Op::IConst) {
        continue;
      }
      int kvar_step = -1;
      for (size_t pc = K.latch_begin; pc < K.latch; ++pc)
        if (prog_.code[pc].a == K.var) kvar_step = prog_.code[pc].c;
      if (kvar_step < 0 || body_def('i', kvar_step)) continue;

      // Lane privacy: every register written in J's direct body must be
      // neither live-in (read before its first write -> J-loop-carried)
      // nor live-out (read after the latch -> the epilogue cannot
      // reproduce a jammed final value).  Induction registers are exempt
      // -- lanes derive them as base + lane*delta and the combined latch
      // advance keeps them canonical.
      std::vector<Reg> body_defs;
      for (size_t pc = J.header + 1; pc < J.latch_begin && ok; ++pc) {
        defs_of(prog_.code[pc], scratch_);
        for (const Reg& d : scratch_) {
          if (d.first == 'i' &&
              std::find(latch_targets.begin(), latch_targets.end(),
                        d.second) != latch_targets.end()) {
            ok = false;  // induction reg also written in the body
            break;
          }
          if (std::find(body_defs.begin(), body_defs.end(), d) ==
              body_defs.end())
            body_defs.push_back(d);
        }
      }
      if (!ok) continue;
      for (const Reg& r : body_defs) {
        size_t first_def = J.latch;
        for (size_t pc = J.header + 1; pc < J.latch_begin; ++pc) {
          defs_of(prog_.code[pc], scratch_);
          bool hit = false;
          for (const Reg& d : scratch_) hit |= d == r;
          if (hit) {
            first_def = pc;
            break;
          }
        }
        // Read-before-first-write scans include the defining instruction
        // itself (x = x + ... is a carried dependence).
        if (read_in(r.first, r.second, J.header + 1, first_def) ||
            [&] {
              reads_of(prog_.code[first_def], scratch_);
              for (const Reg& rd : scratch_)
                if (rd == r) return true;
              return false;
            }() ||
            read_in(r.first, r.second, J.latch + 1, prog_.code.size())) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;

      J.jam = 4;
      J.renames = body_defs;
      K.unroll = 1;  // the lanes already provide the inner-loop ILP
    }
  }
};

}  // namespace

std::string KernelPlan::describe() const {
  if (!valid) return "goto-fallback";
  std::ostringstream os;
  os << "loops=" << loops.size();
  int jam = 1, unroll = 1;
  size_t sinks = 0;
  for (const PlanLoop& l : loops) {
    jam = std::max(jam, l.jam);
    unroll = std::max(unroll, l.unroll);
    sinks += l.sinks.size();
  }
  os << " jam=" << jam << " unroll=" << unroll << " sink=" << sinks;
  return os.str();
}

bool kernel_plan_enabled() {
  const char* env = std::getenv("DACE_KERNEL_PLAN");
  return !(env && env[0] == '0' && env[1] == '\0');
}

KernelPlan plan_kernel(const rt::Program& prog) {
  return Planner(prog).run();
}

}  // namespace dace::cg
