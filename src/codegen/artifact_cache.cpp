#include "codegen/artifact_cache.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <sstream>
#include <thread>

#include "common/common.hpp"
#include "common/metrics.hpp"
#include "common/obs.hpp"

namespace fs = std::filesystem;

namespace dace::cg::cache {

uint64_t fnv1a(const void* data, size_t n, uint64_t h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

namespace {

/// On-disk format generation: folded into every key and written into
/// every metadata header, so a layout change invalidates old entries
/// instead of misreading them.
constexpr int kFormatVersion = 1;
constexpr const char* kMetaMagic = "daceppcache";
constexpr const char* kNegMagic = "daceppneg";

uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Uniform draw in [0,1) from the plan seed and the op index.
double draw(uint64_t seed, uint64_t op) {
  uint64_t h = mix64(seed ^ mix64(op ^ 0xcafef00dd15ea5e5ULL));
  return (double)(h >> 11) * (1.0 / 9007199254740992.0);  // 53-bit mantissa
}

std::string hex64(uint64_t v) {
  char buf[17];
  snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)v);
  return buf;
}

bool parse_hex64(const std::string& s, uint64_t* out) {
  if (s.size() != 16) return false;
  char* end = nullptr;
  errno = 0;
  *out = std::strtoull(s.c_str(), &end, 16);
  return errno == 0 && end == s.c_str() + 16;
}

int64_t unix_now() {
  return (int64_t)std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// -- fault shim state --------------------------------------------------------

std::mutex g_fault_mu;
FsFaultPlan g_fault_plan;
std::atomic<uint64_t> g_fault_op{0};
std::atomic<uint64_t> g_faults_injected{0};

/// Draw the next fault decision and record an injection if one fired.
FsFault next_fault() {
  FsFaultPlan plan;
  {
    std::lock_guard<std::mutex> lk(g_fault_mu);
    plan = g_fault_plan;
  }
  FsFault f = plan.decide(g_fault_op.fetch_add(1, std::memory_order_relaxed));
  if (f != FsFault::None) {
    g_faults_injected.fetch_add(1, std::memory_order_relaxed);
    METRIC_INC("dacepp_cache_faults_injected_total");
    OBS_INSTANT("cache", "fault",
                std::string("{\"kind\":\"") + fs_fault_name(f) + "\"}");
  }
  return f;
}

// -- low-level file ops (every write-path call consults the shim) ------------

void fsync_parent_dir(const std::string& path) {
  std::string dir = fs::path(path).parent_path().string();
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

/// Write + fsync `data` to `path`.  Injected TornWrite persists only a
/// prefix while *reporting success* (the crash-after-publish case the
/// read-side checksum exists for); injected NoSpace fails like ENOSPC.
bool fi_write_file(const std::string& path, const std::string& data,
                   std::string* why) {
  FsFault f = next_fault();
  if (f == FsFault::NoSpace) {
    *why = "write failed: No space left on device (injected)";
    return false;
  }
  size_t n = data.size();
  if (f == FsFault::TornWrite) n = n / 2;  // silent partial persist
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    *why = std::string("open failed: ") + std::strerror(errno);
    return false;
  }
  size_t off = 0;
  while (off < n) {
    ssize_t w = ::write(fd, data.data() + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      *why = std::string("write failed: ") + std::strerror(errno);
      ::close(fd);
      ::unlink(path.c_str());
      return false;
    }
    off += (size_t)w;
  }
  ::fsync(fd);
  ::close(fd);
  return true;
}

bool fi_rename(const std::string& from, const std::string& to,
               std::string* why) {
  if (next_fault() == FsFault::RenameFail) {
    *why = "rename failed: Input/output error (injected)";
    return false;
  }
  if (::rename(from.c_str(), to.c_str()) != 0) {
    *why = std::string("rename failed: ") + std::strerror(errno);
    return false;
  }
  fsync_parent_dir(to);
  return true;
}

bool read_file(const std::string& path, std::string* out) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;
  out->clear();
  char buf[1 << 16];
  ssize_t r;
  while ((r = ::read(fd, buf, sizeof(buf))) > 0) out->append(buf, (size_t)r);
  ::close(fd);
  return r == 0;
}

/// flock(2)-based per-key writer lock.  Locks die with their owner, so a
/// crashed writer leaves only a harmless lock *file* behind.
class KeyLock {
 public:
  bool acquire(const std::string& path, int timeout_ms) {
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
    if (fd_ < 0) return false;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(timeout_ms);
    while (::flock(fd_, LOCK_EX | LOCK_NB) != 0) {
      if (errno != EWOULDBLOCK && errno != EINTR) {
        ::close(fd_);
        fd_ = -1;
        return false;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        ::close(fd_);
        fd_ = -1;
        return false;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return true;
  }
  ~KeyLock() {
    if (fd_ >= 0) {
      ::flock(fd_, LOCK_UN);
      ::close(fd_);
    }
  }

 private:
  int fd_ = -1;
};

// -- build scratch registry (shared across reset_for_testing instances) ------

std::mutex g_scratch_mu;
std::vector<std::string>& scratch_dirs() {
  static std::vector<std::string>* v = new std::vector<std::string>();
  return *v;
}

void cleanup_scratch_at_exit() {
  std::lock_guard<std::mutex> lk(g_scratch_mu);
  std::error_code ec;
  for (const std::string& d : scratch_dirs()) fs::remove_all(d, ec);
  scratch_dirs().clear();
}

void register_scratch(const std::string& dir) {
  std::lock_guard<std::mutex> lk(g_scratch_mu);
  static bool registered = [] {
    std::atexit(cleanup_scratch_at_exit);
    return true;
  }();
  (void)registered;
  scratch_dirs().push_back(dir);
}

void unregister_scratch(const std::string& dir) {
  std::lock_guard<std::mutex> lk(g_scratch_mu);
  auto& v = scratch_dirs();
  v.erase(std::remove(v.begin(), v.end(), dir), v.end());
}

}  // namespace

// ---------------------------------------------------------------------------
// Fault plan
// ---------------------------------------------------------------------------

const char* fs_fault_name(FsFault k) {
  switch (k) {
    case FsFault::None: return "none";
    case FsFault::TornWrite: return "torn";
    case FsFault::RenameFail: return "rename";
    case FsFault::Corrupt: return "corrupt";
    case FsFault::NoSpace: return "enospc";
    case FsFault::CrashCommit: return "crash";
  }
  return "?";
}

bool FsFaultPlan::active() const {
  return torn_prob > 0 || rename_prob > 0 || corrupt_prob > 0 ||
         enospc_prob > 0 || crash_prob > 0;
}

FsFault FsFaultPlan::decide(uint64_t op_index) const {
  if (!active()) return FsFault::None;
  double u = draw(seed, op_index);
  double t = torn_prob;
  if (u < t) return FsFault::TornWrite;
  if (u < (t += rename_prob)) return FsFault::RenameFail;
  if (u < (t += corrupt_prob)) return FsFault::Corrupt;
  if (u < (t += enospc_prob)) return FsFault::NoSpace;
  if (u < (t += crash_prob)) return FsFault::CrashCommit;
  return FsFault::None;
}

std::string FsFaultPlan::to_string() const {
  if (!active() && seed == 0) return "";
  std::ostringstream os;
  os << "seed=" << seed;
  if (torn_prob > 0) os << ",torn=" << torn_prob;
  if (rename_prob > 0) os << ",rename=" << rename_prob;
  if (corrupt_prob > 0) os << ",corrupt=" << corrupt_prob;
  if (enospc_prob > 0) os << ",enospc=" << enospc_prob;
  if (crash_prob > 0) os << ",crash=" << crash_prob;
  return os.str();
}

FsFaultPlan FsFaultPlan::parse(const std::string& spec) {
  FsFaultPlan p;
  std::istringstream is(spec);
  std::string item;
  while (std::getline(is, item, ',')) {
    if (item.empty()) continue;
    auto eq = item.find('=');
    DACE_CHECK(eq != std::string::npos,
               "cache fault plan: expected key=value, got '", item, "' in '",
               spec, "'");
    std::string key = item.substr(0, eq);
    std::string val = item.substr(eq + 1);
    try {
      if (key == "seed") p.seed = (uint64_t)std::stoull(val);
      else if (key == "torn") p.torn_prob = std::stod(val);
      else if (key == "rename") p.rename_prob = std::stod(val);
      else if (key == "corrupt") p.corrupt_prob = std::stod(val);
      else if (key == "enospc") p.enospc_prob = std::stod(val);
      else if (key == "crash") p.crash_prob = std::stod(val);
      else throw err("cache fault plan: unknown key '", key, "'");
    } catch (const std::invalid_argument&) {
      throw err("cache fault plan: bad value '", val, "' for key '", key, "'");
    }
  }
  return p;
}

FsFaultPlan FsFaultPlan::from_env() {
  FsFaultPlan p;
  if (const char* spec = std::getenv("DACE_CACHE_FAULTS")) p = parse(spec);
  if (const char* s = std::getenv("DACE_CACHE_FAULT_SEED")) {
    p.seed = (uint64_t)std::strtoull(s, nullptr, 10);
  }
  return p;
}

void set_fault_plan(const FsFaultPlan& plan) {
  std::lock_guard<std::mutex> lk(g_fault_mu);
  g_fault_plan = plan;
}

const FsFaultPlan& fault_plan() {
  // Returned by reference for inspection; installs race only in tests.
  return g_fault_plan;
}

uint64_t faults_injected() {
  return g_faults_injected.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

CacheConfig CacheConfig::from_env() {
  CacheConfig cfg;
  if (const char* e = std::getenv("DACE_CACHE")) {
    cfg.enabled = std::string(e) != "0";
  }
  if (const char* e = std::getenv("DACE_CACHE_DIR"); e && *e) {
    cfg.dir = e;
  } else if (const char* x = std::getenv("XDG_CACHE_HOME"); x && *x) {
    cfg.dir = std::string(x) + "/dacepp";
  } else if (const char* h = std::getenv("HOME"); h && *h) {
    cfg.dir = std::string(h) + "/.cache/dacepp";
  } else {
    cfg.dir = "/tmp/dacepp-cache-" + std::to_string((long)getuid());
  }
  if (const char* e = std::getenv("DACE_CACHE_SIZE_MB")) {
    char* end = nullptr;
    double mb = std::strtod(e, &end);
    if (end != e && mb >= 0) cfg.size_limit_bytes = (int64_t)(mb * 1048576.0);
  }
  if (const char* e = std::getenv("DACE_CACHE_NEG_TTL_S")) {
    long long v = std::atoll(e);
    if (v >= 0) cfg.negative_ttl_s = v;
  }
  if (const char* e = std::getenv("DACE_CACHE_LOCK_TIMEOUT_MS")) {
    int v = std::atoi(e);
    if (v >= 0) cfg.lock_timeout_ms = v;
  }
  return cfg;
}

// ---------------------------------------------------------------------------
// Metadata records
// ---------------------------------------------------------------------------

struct ArtifactCache::Meta {
  std::string key;
  uint64_t program_hash = 0;
  std::string compiler;
  std::string flags;
  std::string dtypes;
  int64_t size = 0;
  uint64_t checksum = 0;
  int64_t created = 0;
};

namespace {

std::string render_meta(const ArtifactCache::Meta& m);

/// One "tag value..." line; the value may contain spaces (flags do).
bool take_line(std::istringstream& is, const char* tag, std::string* val) {
  std::string line;
  if (!std::getline(is, line)) return false;
  size_t sp = line.find(' ');
  if (sp == std::string::npos || line.substr(0, sp) != tag) return false;
  *val = line.substr(sp + 1);
  return true;
}

}  // namespace

bool ArtifactCache::read_meta(const std::string& path, Meta* out,
                              std::string* why) const {
  std::string text;
  if (!read_file(path, &text)) {
    *why = "metadata unreadable";
    return false;
  }
  std::istringstream is(text);
  std::string v;
  if (!take_line(is, kMetaMagic, &v) ||
      v != std::to_string(kFormatVersion)) {
    *why = "bad header/version";
    return false;
  }
  if (!take_line(is, "key", &out->key)) { *why = "missing key"; return false; }
  uint64_t ph = 0;
  if (!take_line(is, "program", &v) || !parse_hex64(v, &ph)) {
    *why = "bad program hash";
    return false;
  }
  out->program_hash = ph;
  if (!take_line(is, "compiler", &out->compiler) ||
      !take_line(is, "flags", &out->flags) ||
      !take_line(is, "dtypes", &out->dtypes)) {
    *why = "missing build identity";
    return false;
  }
  if (!take_line(is, "size", &v)) { *why = "missing size"; return false; }
  out->size = std::atoll(v.c_str());
  if (!take_line(is, "checksum", &v) || !parse_hex64(v, &out->checksum)) {
    *why = "bad checksum field";
    return false;
  }
  if (!take_line(is, "created", &v)) { *why = "missing created"; return false; }
  out->created = std::atoll(v.c_str());
  return true;
}

namespace {

std::string render_meta(const ArtifactCache::Meta& m) {
  std::ostringstream os;
  os << kMetaMagic << ' ' << kFormatVersion << '\n'
     << "key " << m.key << '\n'
     << "program " << hex64(m.program_hash) << '\n'
     << "compiler " << m.compiler << '\n'
     << "flags " << m.flags << '\n'
     << "dtypes " << m.dtypes << '\n'
     << "size " << m.size << '\n'
     << "checksum " << hex64(m.checksum) << '\n'
     << "created " << m.created << '\n';
  return os.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// ArtifactCache
// ---------------------------------------------------------------------------

ArtifactCache::ArtifactCache(CacheConfig cfg) : cfg_(std::move(cfg)) {
  if (!cfg_.enabled) return;
  std::error_code ec;
  fs::create_directories(cfg_.dir + "/objects", ec);
  if (!ec) fs::create_directories(cfg_.dir + "/negative", ec);
  if (!ec) fs::create_directories(cfg_.dir + "/build", ec);
  if (ec) {
    // An unusable cache root disables the cache; execution falls back to
    // the in-memory JIT path (never fatal).
    dir_failed_ = true;
    OBS_INSTANT("cache", "init-error",
                "{\"dir\":\"" + cfg_.dir + "\"}");
    return;
  }
  if (std::getenv("DACE_CACHE_FAULTS") || std::getenv("DACE_CACHE_FAULT_SEED"))
    set_fault_plan(FsFaultPlan::from_env());
  collect_stale_build_dirs();
}

namespace {
std::mutex g_inst_mu;
std::atomic<ArtifactCache*> g_inst{nullptr};
}  // namespace

ArtifactCache& ArtifactCache::instance() {
  ArtifactCache* p = g_inst.load(std::memory_order_acquire);
  if (!p) {
    std::lock_guard<std::mutex> lk(g_inst_mu);
    p = g_inst.load(std::memory_order_relaxed);
    if (!p) {
      // Leaked: detached Tier-1 compile threads may commit at exit.
      p = new ArtifactCache(CacheConfig::from_env());
      g_inst.store(p, std::memory_order_release);
    }
  }
  return *p;
}

void ArtifactCache::reset_for_testing() {
  std::lock_guard<std::mutex> lk(g_inst_mu);
  // The old instance leaks by design: in-flight builds may still touch it.
  g_inst.store(new ArtifactCache(CacheConfig::from_env()),
               std::memory_order_release);
}

CacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void ArtifactCache::count(uint64_t CacheStats::*field) const {
  {
    std::lock_guard<std::mutex> lk(mu_);
    ++(stats_.*field);
  }
  // Mirror into the process-wide metrics registry (common/metrics.hpp):
  // this is the single choke point every CacheStats bump flows through,
  // so `sdfg-cache stat --json` and the serve Metrics verb see live
  // cache health without a trace file.
  if (field == &CacheStats::hits) {
    METRIC_INC("dacepp_cache_hits_total");
  } else if (field == &CacheStats::misses) {
    METRIC_INC("dacepp_cache_misses_total");
  } else if (field == &CacheStats::commits) {
    METRIC_INC("dacepp_cache_commits_total");
  } else if (field == &CacheStats::corrupt_rejected) {
    METRIC_INC("dacepp_cache_corrupt_total");
  } else if (field == &CacheStats::evictions) {
    METRIC_INC("dacepp_cache_evictions_total");
  } else if (field == &CacheStats::neg_hits) {
    METRIC_INC("dacepp_cache_negative_hits_total");
  } else if (field == &CacheStats::neg_stores) {
    METRIC_INC("dacepp_cache_negative_stores_total");
  } else if (field == &CacheStats::fallbacks) {
    METRIC_INC("dacepp_cache_fallbacks_total");
  }
}

std::string ArtifactCache::key_for(const std::string& source,
                                   const KeyInfo& ki) {
  uint64_t h = fnv1a(kMetaMagic, std::strlen(kMetaMagic));
  h = fnv1a(&kFormatVersion, sizeof(kFormatVersion), h);
  h = fnv1a(source.data(), source.size(), h);
  h = fnv1a(&ki.program_hash, sizeof(ki.program_hash), h);
  h = fnv1a(ki.compiler.data(), ki.compiler.size(), h);
  h = fnv1a(ki.flags.data(), ki.flags.size(), h);
  h = fnv1a(ki.dtypes.data(), ki.dtypes.size(), h);
  return hex64(mix64(h));
}

std::string ArtifactCache::object_path(const std::string& key) const {
  return cfg_.dir + "/objects/" + key + ".so";
}
std::string ArtifactCache::meta_path(const std::string& key) const {
  return cfg_.dir + "/objects/" + key + ".meta";
}
std::string ArtifactCache::lock_path(const std::string& key) const {
  return cfg_.dir + "/objects/" + key + ".lock";
}
std::string ArtifactCache::negative_path(uint64_t program_hash,
                                         const std::string& compiler) const {
  uint64_t h = fnv1a(&program_hash, sizeof(program_hash));
  h = fnv1a(compiler.data(), compiler.size(), h);
  return cfg_.dir + "/negative/" + hex64(mix64(h)) + ".neg";
}

bool ArtifactCache::verify_entry(const std::string& key,
                                 std::string* why) const {
  Meta m;
  if (!read_meta(meta_path(key), &m, why)) return false;
  if (m.key != key) {
    *why = "key mismatch";
    return false;
  }
  std::string bytes;
  if (!read_file(object_path(key), &bytes)) {
    *why = "artifact unreadable";
    return false;
  }
  if ((int64_t)bytes.size() != m.size) {
    *why = "size mismatch (torn write?)";
    return false;
  }
  if (fnv1a(bytes.data(), bytes.size()) != m.checksum) {
    *why = "checksum mismatch";
    return false;
  }
  return true;
}

std::string ArtifactCache::lookup(const std::string& key) {
  if (!enabled() || key.empty()) return "";
  OBS_SPAN("cache", "lookup");
  std::error_code ec;
  if (!fs::exists(meta_path(key), ec)) {
    count(&CacheStats::misses);
    OBS_INSTANT("cache", "miss", "{\"key\":\"" + key + "\"}");
    return "";
  }
  std::string why;
  if (!verify_entry(key, &why)) {
    // Self-defense: a committed entry that no longer checks out is
    // deleted on sight, so one bad sector can't poison every run.
    fs::remove(object_path(key), ec);
    fs::remove(meta_path(key), ec);
    count(&CacheStats::corrupt_rejected);
    OBS_INSTANT("cache", "corrupt-reject",
                "{\"key\":\"" + key + "\",\"why\":\"" + why + "\"}");
    return "";
  }
  // Touch the metadata mtime: it is the LRU clock.
  ::utimensat(AT_FDCWD, meta_path(key).c_str(), nullptr, 0);
  count(&CacheStats::hits);
  OBS_INSTANT("cache", "hit", "{\"key\":\"" + key + "\"}");
  return object_path(key);
}

std::string ArtifactCache::commit(const std::string& key,
                                  const std::string& built_so,
                                  const KeyInfo& ki) {
  if (!enabled() || key.empty()) return "";
  OBS_SPAN("cache", "commit");
  std::string data;
  if (!read_file(built_so, &data) || data.empty()) return "";

  KeyLock lock;
  if (!lock.acquire(lock_path(key), cfg_.lock_timeout_ms)) {
    count(&CacheStats::fallbacks);
    OBS_INSTANT("cache", "lock-timeout", "{\"key\":\"" + key + "\"}");
    return "";
  }
  // Another writer may have published while we were building.
  {
    std::string why;
    std::error_code ec;
    if (fs::exists(meta_path(key), ec) && verify_entry(key, &why))
      return object_path(key);
  }

  std::string tmp =
      object_path(key) + ".tmp." + std::to_string((long)getpid());
  std::string why;
  std::error_code ec;
  if (!fi_write_file(tmp, data, &why)) {
    fs::remove(tmp, ec);
    count(&CacheStats::fallbacks);
    OBS_INSTANT("cache", "write-error",
                "{\"key\":\"" + key + "\",\"why\":\"" + why + "\"}");
    return "";
  }
  if (!fi_rename(tmp, object_path(key), &why)) {
    fs::remove(tmp, ec);
    count(&CacheStats::fallbacks);
    OBS_INSTANT("cache", "write-error",
                "{\"key\":\"" + key + "\",\"why\":\"" + why + "\"}");
    return "";
  }

  // The object is published but not yet valid: readers ignore it until
  // the metadata record commits.  A crash in this window leaves debris
  // that purge/evict collect.
  FsFault publish = next_fault();
  if (publish == FsFault::CrashCommit) {
    count(&CacheStats::fallbacks);
    return "";
  }

  Meta m;
  m.key = key;
  m.program_hash = ki.program_hash;
  m.compiler = ki.compiler;
  m.flags = ki.flags;
  m.dtypes = ki.dtypes;
  m.size = (int64_t)data.size();
  m.checksum = fnv1a(data.data(), data.size());
  m.created = unix_now();
  std::string mtmp = meta_path(key) + ".tmp." + std::to_string((long)getpid());
  if (!fi_write_file(mtmp, render_meta(m), &why) ||
      !fi_rename(mtmp, meta_path(key), &why)) {
    fs::remove(mtmp, ec);
    fs::remove(object_path(key), ec);
    count(&CacheStats::fallbacks);
    OBS_INSTANT("cache", "write-error",
                "{\"key\":\"" + key + "\",\"why\":\"" + why + "\"}");
    return "";
  }
  count(&CacheStats::commits);
  OBS_INSTANT("cache", "commit",
              "{\"key\":\"" + key + "\",\"bytes\":" +
                  std::to_string(data.size()) + "}");

  if (publish == FsFault::Corrupt) {
    // Simulated bit rot: flip one byte of the committed artifact.  The
    // current process keeps its scratch object; the next lookup must
    // checksum-reject and rebuild.
    int fd = ::open(object_path(key).c_str(), O_RDWR);
    if (fd >= 0) {
      char b = 0;
      if (::pread(fd, &b, 1, 42 % (off_t)data.size()) == 1) {
        b ^= 0x5a;
        ::pwrite(fd, &b, 1, 42 % (off_t)data.size());
      }
      ::close(fd);
    }
    return "";
  }

  if (cfg_.size_limit_bytes > 0) evict(cfg_.size_limit_bytes);
  return object_path(key);
}

bool ArtifactCache::invalidate(const std::string& key) {
  if (key.empty() || cfg_.dir.empty()) return false;
  std::error_code ec;
  bool any = fs::remove(object_path(key), ec);
  any = fs::remove(meta_path(key), ec) || any;
  fs::remove(lock_path(key), ec);
  return any;
}

// ---------------------------------------------------------------------------
// Negative cache
// ---------------------------------------------------------------------------

bool ArtifactCache::negative_lookup(uint64_t program_hash,
                                    const std::string& compiler) {
  if (!enabled()) return false;
  std::string text;
  std::string path = negative_path(program_hash, compiler);
  if (!read_file(path, &text)) return false;
  std::istringstream is(text);
  std::string v;
  std::error_code ec;
  uint64_t ph = 0;
  int64_t created = 0;
  bool ok = take_line(is, kNegMagic, &v) &&
            v == std::to_string(kFormatVersion) &&
            take_line(is, "program", &v) && parse_hex64(v, &ph) &&
            ph == program_hash && take_line(is, "compiler", &v) &&
            v == compiler && take_line(is, "created", &v) &&
            (created = std::atoll(v.c_str())) > 0;
  if (!ok) {
    fs::remove(path, ec);
    return false;
  }
  if (unix_now() - created > cfg_.negative_ttl_s) {
    // Expired: the toolchain gets another probe.
    fs::remove(path, ec);
    return false;
  }
  count(&CacheStats::neg_hits);
  OBS_INSTANT("cache", "negative-hit",
              "{\"program\":\"" + hex64(program_hash) + "\"}");
  return true;
}

void ArtifactCache::negative_store(uint64_t program_hash,
                                   const std::string& compiler,
                                   const std::string& detail) {
  if (!enabled()) return;
  std::ostringstream os;
  os << kNegMagic << ' ' << kFormatVersion << '\n'
     << "program " << hex64(program_hash) << '\n'
     << "compiler " << compiler << '\n'
     << "created " << unix_now() << '\n'
     << "detail " << (detail.empty() ? "-" : detail) << '\n';
  std::string path = negative_path(program_hash, compiler);
  std::string tmp = path + ".tmp." + std::to_string((long)getpid());
  std::string why;
  std::error_code ec;
  if (!fi_write_file(tmp, os.str(), &why) || !fi_rename(tmp, path, &why)) {
    fs::remove(tmp, ec);  // best-effort: losing a negative entry is harmless
    return;
  }
  count(&CacheStats::neg_stores);
  OBS_INSTANT("cache", "negative-store",
              "{\"program\":\"" + hex64(program_hash) + "\"}");
}

// ---------------------------------------------------------------------------
// Build scratch space
// ---------------------------------------------------------------------------

std::string ArtifactCache::make_build_dir() {
  static std::atomic<int> counter{0};
  std::string base;
  std::error_code ec;
  if (enabled()) {
    base = cfg_.dir + "/build";
  } else {
    base = fs::temp_directory_path(ec).string() + "/dacepp-scratch";
  }
  fs::create_directories(base, ec);
  std::string dir = base + "/" + std::to_string((long)getpid()) + "." +
                    std::to_string(counter.fetch_add(1));
  fs::create_directories(dir, ec);
  if (ec) return "";
  register_scratch(dir);
  return dir;
}

void ArtifactCache::release_build_dir(const std::string& path) {
  if (path.empty()) return;
  std::error_code ec;
  fs::remove_all(path, ec);
  unregister_scratch(path);
}

int ArtifactCache::collect_stale_build_dirs() {
  if (!enabled()) return 0;
  int collected = 0;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(cfg_.dir + "/build", ec)) {
    std::string name = e.path().filename().string();
    size_t dot = name.find('.');
    if (dot == std::string::npos) continue;
    long pid = std::atol(name.substr(0, dot).c_str());
    if (pid <= 0 || pid == (long)getpid()) continue;
    if (::kill((pid_t)pid, 0) != 0 && errno == ESRCH) {
      fs::remove_all(e.path(), ec);
      ++collected;
    }
  }
  return collected;
}

// ---------------------------------------------------------------------------
// Maintenance
// ---------------------------------------------------------------------------

std::vector<EntryInfo> ArtifactCache::list(bool verify) {
  std::vector<EntryInfo> out;
  if (cfg_.dir.empty()) return out;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(cfg_.dir + "/objects", ec)) {
    if (e.path().extension() != ".meta") continue;
    std::string key = e.path().stem().string();
    EntryInfo info;
    info.key = key;
    Meta m;
    std::string why;
    if (read_meta(e.path().string(), &m, &why)) {
      info.program_hash = m.program_hash;
      info.compiler = m.compiler;
      info.flags = m.flags;
      info.dtypes = m.dtypes;
      info.size = m.size;
      info.created = m.created;
      auto st = fs::last_write_time(e.path(), ec);
      info.last_used = (int64_t)std::chrono::duration_cast<
                           std::chrono::seconds>(st.time_since_epoch())
                           .count();
      if (verify && !verify_entry(key, &why)) {
        info.valid = false;
        info.detail = why;
      }
    } else {
      info.valid = false;
      info.detail = why;
    }
    out.push_back(std::move(info));
  }
  std::sort(out.begin(), out.end(),
            [](const EntryInfo& a, const EntryInfo& b) {
              return a.last_used != b.last_used ? a.last_used > b.last_used
                                                : a.key < b.key;
            });
  return out;
}

std::vector<ArtifactCache::NegativeInfo> ArtifactCache::list_negative() {
  std::vector<NegativeInfo> out;
  if (cfg_.dir.empty()) return out;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(cfg_.dir + "/negative", ec)) {
    if (e.path().extension() != ".neg") continue;
    std::string text;
    if (!read_file(e.path().string(), &text)) continue;
    std::istringstream is(text);
    NegativeInfo ni;
    ni.key = e.path().stem().string();
    std::string v;
    if (!take_line(is, kNegMagic, &v)) continue;
    take_line(is, "program", &v);
    take_line(is, "compiler", &ni.compiler);
    if (take_line(is, "created", &v)) {
      ni.age_s = unix_now() - std::atoll(v.c_str());
      ni.expired = ni.age_s > cfg_.negative_ttl_s;
    }
    take_line(is, "detail", &ni.detail);
    out.push_back(std::move(ni));
  }
  return out;
}

int64_t ArtifactCache::total_bytes() {
  int64_t total = 0;
  std::error_code ec;
  for (const auto& e : fs::directory_iterator(cfg_.dir + "/objects", ec)) {
    if (e.is_regular_file(ec)) total += (int64_t)e.file_size(ec);
  }
  return total;
}

int64_t ArtifactCache::evict(int64_t target_bytes) {
  if (cfg_.dir.empty()) return 0;
  if (target_bytes < 0) target_bytes = cfg_.size_limit_bytes;
  std::error_code ec;

  // Pass 1: collect entries by LRU clock, and sweep crash debris (tmp
  // files and meta-less objects) older than an hour -- a live writer's
  // in-flight commit is never that old.
  struct Candidate {
    int64_t last_used;
    std::string key;
    int64_t bytes;
  };
  std::vector<Candidate> entries;
  int64_t total = 0;
  // Ages must be computed within the file clock: its epoch differs from
  // the unix epoch (libstdc++ uses 2174), so mixing in unix_now() would
  // make every file look ancient and sweep live writers' debris.
  int64_t fnow_ns =
      (int64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
          fs::file_time_type::clock::now().time_since_epoch())
          .count();
  for (const auto& e : fs::directory_iterator(cfg_.dir + "/objects", ec)) {
    std::string name = e.path().filename().string();
    if (!e.is_regular_file(ec)) continue;
    int64_t sz = (int64_t)e.file_size(ec);
    // Nanosecond mtimes: second granularity would tie every entry
    // committed in one burst and make the LRU order arbitrary.
    auto mt_ns =
        (int64_t)std::chrono::duration_cast<std::chrono::nanoseconds>(
            fs::last_write_time(e.path(), ec).time_since_epoch())
            .count();
    int64_t age_s = (fnow_ns - mt_ns) / 1000000000;
    bool is_tmp = name.find(".tmp.") != std::string::npos;
    bool is_orphan_so = !is_tmp && e.path().extension() == ".so" &&
                        !fs::exists(e.path().string().substr(
                                        0, e.path().string().size() - 3) +
                                        ".meta",
                                    ec);
    // Object-less metas can't come from a crashed commit (object lands
    // first) but can from a kill mid-eviction; without the sweep they
    // would linger forever, since lookup never probes their key again.
    bool is_orphan_meta =
        !is_tmp && e.path().extension() == ".meta" &&
        !fs::exists(object_path(e.path().stem().string()), ec);
    if ((is_tmp || is_orphan_so || is_orphan_meta) && age_s > 3600) {
      fs::remove(e.path(), ec);
      continue;
    }
    total += sz;
    if (e.path().extension() == ".meta") {
      Candidate c;
      c.last_used = mt_ns;
      c.key = e.path().stem().string();
      c.bytes = sz;
      std::string so = object_path(c.key);
      if (fs::exists(so, ec)) c.bytes += (int64_t)fs::file_size(so, ec);
      entries.push_back(std::move(c));
    }
  }
  if (total <= target_bytes) return 0;

  std::sort(entries.begin(), entries.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.last_used != b.last_used ? a.last_used < b.last_used
                                                : a.key < b.key;
            });
  int64_t freed = 0;
  for (const Candidate& c : entries) {
    if (total - freed <= target_bytes) break;
    // Skip keys another process is writing right now.
    KeyLock lock;
    if (!lock.acquire(lock_path(c.key), 0)) continue;
    fs::remove(meta_path(c.key), ec);
    fs::remove(object_path(c.key), ec);
    fs::remove(lock_path(c.key), ec);
    freed += c.bytes;
    count(&CacheStats::evictions);
    OBS_INSTANT("cache", "evict",
                "{\"key\":\"" + c.key + "\",\"bytes\":" +
                    std::to_string(c.bytes) + "}");
  }
  return freed;
}

void ArtifactCache::purge() {
  if (cfg_.dir.empty()) return;
  std::error_code ec;
  for (const char* sub : {"/objects", "/negative", "/build"}) {
    fs::remove_all(cfg_.dir + sub, ec);
    fs::create_directories(cfg_.dir + sub, ec);
  }
}

}  // namespace dace::cg::cache
