#include "codegen/codegen.hpp"

#include <sstream>

namespace dace::cg {

namespace {

using ir::CodeExpr;
using ir::CodeOp;
using ir::SDFG;
using ir::State;
using sym::Expr;
using sym::ExprKind;

// -- symbolic expression printing -------------------------------------------

std::string sym_c(const Expr& e) {
  switch (e.kind()) {
    case ExprKind::Const:
      return std::to_string(e.constant()) + "LL";
    case ExprKind::Symbol:
      return e.symbol_name();
    case ExprKind::Add: {
      std::string s = "(";
      auto ops = e.operands();
      for (size_t i = 0; i < ops.size(); ++i) {
        if (i) s += " + ";
        s += sym_c(ops[i]);
      }
      return s + ")";
    }
    case ExprKind::Mul: {
      std::string s = "(";
      auto ops = e.operands();
      for (size_t i = 0; i < ops.size(); ++i) {
        if (i) s += " * ";
        s += sym_c(ops[i]);
      }
      return s + ")";
    }
    case ExprKind::FloorDiv:
      return "dace_floordiv(" + sym_c(e.operands()[0]) + ", " +
             sym_c(e.operands()[1]) + ")";
    case ExprKind::Mod:
      return "dace_mod(" + sym_c(e.operands()[0]) + ", " +
             sym_c(e.operands()[1]) + ")";
    case ExprKind::Min:
      return "std::min<long long>(" + sym_c(e.operands()[0]) + ", " +
             sym_c(e.operands()[1]) + ")";
    case ExprKind::Max:
      return "std::max<long long>(" + sym_c(e.operands()[0]) + ", " +
             sym_c(e.operands()[1]) + ")";
  }
  throw err("codegen: unreachable symbolic kind");
}

// -- tasklet code printing ---------------------------------------------------

std::string code_c(const CodeExpr& e,
                   const std::map<std::string, std::string>& inputs) {
  auto arg = [&](size_t i) { return code_c(e.args()[i], inputs); };
  switch (e.op()) {
    case CodeOp::Const: {
      std::ostringstream os;
      os.precision(17);
      os << e.value();
      std::string s = os.str();
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos)
        s += ".0";
      return s;
    }
    case CodeOp::Input: {
      auto it = inputs.find(e.name());
      DACE_CHECK(it != inputs.end(), "codegen: unbound input ", e.name());
      return it->second;
    }
    case CodeOp::Sym:
      return "(double)" + e.name();
    case CodeOp::Add: return "(" + arg(0) + " + " + arg(1) + ")";
    case CodeOp::Sub: return "(" + arg(0) + " - " + arg(1) + ")";
    case CodeOp::Mul: return "(" + arg(0) + " * " + arg(1) + ")";
    case CodeOp::Div: return "(" + arg(0) + " / " + arg(1) + ")";
    case CodeOp::Pow: return "std::pow(" + arg(0) + ", " + arg(1) + ")";
    case CodeOp::Mod: return "dace_fmod(" + arg(0) + ", " + arg(1) + ")";
    case CodeOp::Min: return "std::min(" + arg(0) + ", " + arg(1) + ")";
    case CodeOp::Max: return "std::max(" + arg(0) + ", " + arg(1) + ")";
    case CodeOp::Neg: return "(-" + arg(0) + ")";
    case CodeOp::Abs: return "std::abs(" + arg(0) + ")";
    case CodeOp::Exp: return "std::exp(" + arg(0) + ")";
    case CodeOp::Log: return "std::log(" + arg(0) + ")";
    case CodeOp::Sqrt: return "std::sqrt(" + arg(0) + ")";
    case CodeOp::Sin: return "std::sin(" + arg(0) + ")";
    case CodeOp::Cos: return "std::cos(" + arg(0) + ")";
    case CodeOp::Tanh: return "std::tanh(" + arg(0) + ")";
    case CodeOp::Floor: return "std::floor(" + arg(0) + ")";
    case CodeOp::Lt: return "((" + arg(0) + " < " + arg(1) + ") ? 1.0 : 0.0)";
    case CodeOp::Le: return "((" + arg(0) + " <= " + arg(1) + ") ? 1.0 : 0.0)";
    case CodeOp::Gt: return "((" + arg(0) + " > " + arg(1) + ") ? 1.0 : 0.0)";
    case CodeOp::Ge: return "((" + arg(0) + " >= " + arg(1) + ") ? 1.0 : 0.0)";
    case CodeOp::Eq: return "((" + arg(0) + " == " + arg(1) + ") ? 1.0 : 0.0)";
    case CodeOp::Ne: return "((" + arg(0) + " != " + arg(1) + ") ? 1.0 : 0.0)";
    case CodeOp::And:
      return "(((" + arg(0) + " != 0.0) && (" + arg(1) +
             " != 0.0)) ? 1.0 : 0.0)";
    case CodeOp::Or:
      return "(((" + arg(0) + " != 0.0) || (" + arg(1) +
             " != 0.0)) ? 1.0 : 0.0)";
    case CodeOp::Not: return "((" + arg(0) + " == 0.0) ? 1.0 : 0.0)";
    case CodeOp::Select:
      return "((" + arg(0) + " != 0.0) ? " + arg(1) + " : " + arg(2) + ")";
  }
  throw err("codegen: unreachable code op");
}

std::string cond_c(const CodeExpr& e) { return code_c(e, {}) + " != 0.0"; }

// ---------------------------------------------------------------------------

class Emitter {
 public:
  Emitter(const SDFG& sdfg, Flavor flavor) : sdfg_(sdfg), flavor_(flavor) {}

  std::string run() {
    prelude();
    signature();
    declarations();
    control_flow();
    os_ << "__dace_end: return;\n}\n";
    return os_.str();
  }

 private:
  const SDFG& sdfg_;
  Flavor flavor_;
  std::ostringstream os_;
  int indent_ = 1;
  int tmp_counter_ = 0;

  void line(const std::string& s) {
    for (int i = 0; i < indent_; ++i) os_ << "  ";
    os_ << s << "\n";
  }

  void prelude() {
    os_ << "// Generated by DaCe++ (" <<
        (flavor_ == Flavor::CPU ? "CPU backend"
         : flavor_ == Flavor::CUDA ? "CUDA backend" : "HLS backend")
        << ") from SDFG '" << sdfg_.name() << "'.\n";
    os_ << "#include <algorithm>\n#include <cmath>\n#include <cstdint>\n"
           "#include <vector>\n\n";
    if (flavor_ == Flavor::CUDA) {
      os_ << "// NOTE: device kernels are emitted inline below as "
             "annotated\n// parallel regions; nvcc splits them into "
             "__global__ functions.\n";
    }
    os_ << "static inline long long dace_floordiv(long long a, long long b) "
           "{\n  long long q = a / b;\n  if ((a % b != 0) && ((a < 0) != (b "
           "< 0))) --q;\n  return q;\n}\n";
    os_ << "static inline long long dace_mod(long long a, long long b) {\n"
           "  return a - dace_floordiv(a, b) * b;\n}\n";
    os_ << "static inline double dace_fmod(double a, double b) {\n"
           "  double r = std::fmod(a, b);\n"
           "  if (r != 0 && ((r < 0) != (b < 0))) r += b;\n  return r;\n}\n\n";
  }

  void signature() {
    os_ << "extern \"C\" void " << sdfg_.name()
        << "(double** __args, long long* __syms) {\n";
  }

  void declarations() {
    size_t i = 0;
    for (const auto& an : sdfg_.arg_names()) {
      line("double* " + an + " = __args[" + std::to_string(i++) + "];");
    }
    i = 0;
    for (const auto& s : symbol_order(sdfg_)) {
      line("long long " + s + " = __syms[" + std::to_string(i++) + "];");
    }
    // Symbols assigned on interstate edges (loop variables).
    std::set<std::string> free = sdfg_.free_symbols();
    for (const auto& s : sdfg_.symbols()) {
      if (!free.count(s) && !is_map_param(s))
        line("long long " + s + " = 0;");
    }
    // Transients.
    for (const auto& [name, d] : sdfg_.arrays()) {
      if (!d.transient) continue;
      DACE_CHECK(!d.is_stream, "codegen: streams are FPGA-executor only");
      if (d.is_scalar()) {
        line("double " + name + "_v = 0.0; double* " + name + " = &" + name +
             "_v;");
        continue;
      }
      std::string n = sym_c(d.num_elements());
      if (d.lifetime == ir::Lifetime::Persistent) {
        line("static std::vector<double> __buf_" + name + ";");
        line("__buf_" + name + ".resize((size_t)" + n + ");");
      } else if (d.storage == ir::Storage::CPUStack &&
                 d.num_elements().is_constant()) {
        line("double __stack_" + name + "[" +
             std::to_string(d.num_elements().constant()) + "] = {};");
        line("double* " + name + " = __stack_" + name + ";");
        continue;
      } else {
        line("std::vector<double> __buf_" + name + "((size_t)" + n + ");");
      }
      line("double* " + name + " = __buf_" + name + ".data();");
    }
  }

  bool is_map_param(const std::string& s) const {
    for (int sid : sdfg_.state_ids()) {
      const State& st = sdfg_.state(sid);
      for (int nid : st.node_ids()) {
        if (const auto* m = st.node_as<const ir::MapEntry>(nid)) {
          for (const auto& p : m->params) {
            if (p == s) return true;
          }
        }
      }
    }
    return false;
  }

  void control_flow() {
    line("goto __dace_state_" + std::to_string(sdfg_.start_state()) + ";");
    for (int sid : sdfg_.state_order()) {
      os_ << "__dace_state_" << sid << ": {\n";
      emit_state(sdfg_.state(sid));
      // Transitions.
      bool has_unconditional = false;
      for (size_t ei : sdfg_.out_interstate(sid)) {
        const auto& e = sdfg_.interstate_edges()[ei];
        std::string assigns;
        for (const auto& [k, v] : e.assignments)
          assigns += k + " = " + sym_c(v) + "; ";
        if (e.condition.valid()) {
          line("if (" + cond_c(e.condition) + ") { " + assigns +
               "goto __dace_state_" + std::to_string(e.dst) + "; }");
        } else {
          line(assigns + "goto __dace_state_" + std::to_string(e.dst) + ";");
          has_unconditional = true;
          break;
        }
      }
      if (!has_unconditional) line("goto __dace_end;");
      os_ << "}\n";
    }
  }

  std::string offset_c(const ir::Memlet& m) const {
    const ir::DataDesc& d = sdfg_.array(m.data);
    std::vector<Expr> strides = d.strides();
    Expr off(int64_t{0});
    for (size_t dim = 0; dim < m.subset.dims(); ++dim)
      off = off + m.subset.range(dim).begin * strides[dim];
    return sym_c(off);
  }

  void emit_state(const State& st) {
    std::set<int> inner;
    for (int id : st.node_ids()) {
      if (st.node(id)->kind == ir::NodeKind::MapEntry && st.scope_of(id) == -1) {
        for (int s : st.scope_nodes(id)) inner.insert(s);
      }
    }
    for (int id : st.topological_order()) {
      if (inner.count(id)) continue;
      switch (st.node(id)->kind) {
        case ir::NodeKind::MapEntry:
          emit_map(st, id, /*top=*/true);
          break;
        case ir::NodeKind::Tasklet:
          emit_tasklet(st, id, -1, false);
          break;
        case ir::NodeKind::Library:
          emit_library(st, id);
          break;
        case ir::NodeKind::Access:
        case ir::NodeKind::MapExit:
          break;
        default:
          throw err("codegen: unsupported top-level node");
      }
    }
  }

  void emit_map(const State& st, int entry, bool top) {
    const auto* me = st.node_as<const ir::MapEntry>(entry);
    bool parallel = top && (me->schedule == ir::Schedule::CPUParallel ||
                            me->schedule == ir::Schedule::GPUDevice);
    if (parallel) {
      if (flavor_ == Flavor::CPU) {
        std::string clause =
            me->omp_collapse && me->params.size() > 1
                ? " collapse(" + std::to_string(me->params.size()) + ")"
                : "";
        line("#pragma omp parallel for" + clause);
      } else if (flavor_ == Flavor::CUDA) {
        line("// CUDA kernel: one thread per '" + me->params[0] +
             "' iteration, grid-stride over " +
             sym_c(me->range.range(0).size()));
        line("#pragma dace cuda_kernel");
      }
    }
    if (flavor_ == Flavor::HLS && me->schedule == ir::Schedule::FPGAPipeline)
      line("// FPGA pipelined unit (StreamingComposition)");
    for (size_t d = 0; d < me->params.size(); ++d) {
      const sym::Range& r = me->range.range(d);
      const std::string& p = me->params[d];
      line("for (long long " + p + " = " + sym_c(r.begin) + "; " + p + " < " +
           sym_c(r.end) + "; " + p + " += " + sym_c(r.step) + ") {");
      ++indent_;
      if (flavor_ == Flavor::HLS && d + 1 == me->params.size())
        line("#pragma HLS PIPELINE II=1");
    }
    for (int id : direct_children(st, entry)) {
      switch (st.node(id)->kind) {
        case ir::NodeKind::Tasklet:
          emit_tasklet(st, id, me->exit_node, parallel);
          break;
        case ir::NodeKind::MapEntry:
          emit_map(st, id, /*top=*/false);
          break;
        case ir::NodeKind::Access:
        case ir::NodeKind::MapExit:
          break;
        default:
          throw err("codegen: unsupported node inside map scope");
      }
    }
    for (size_t d = 0; d < me->params.size(); ++d) {
      --indent_;
      line("}");
    }
  }

  std::vector<int> direct_children(const State& st, int entry) const {
    std::vector<int> scope = st.scope_nodes(entry);
    std::vector<int> out;
    for (int id : st.topological_order()) {
      if (std::find(scope.begin(), scope.end(), id) == scope.end()) continue;
      if (st.scope_of(id) == entry) out.push_back(id);
    }
    return out;
  }

  bool is_scalar_transient(const std::string& data) const {
    if (data.empty() || !sdfg_.has_array(data)) return false;
    const auto& d = sdfg_.array(data);
    return d.is_scalar() && d.transient;
  }

  void emit_tasklet(const State& st, int id, int exit, bool atomic) {
    const auto* t = st.node_as<const ir::Tasklet>(id);
    std::map<std::string, std::string> inputs;
    for (const auto* e : st.in_edges(id)) {
      if (e->dst_conn.empty()) continue;
      if (st.node(e->src)->kind == ir::NodeKind::Tasklet) {
        inputs[e->dst_conn] = "__tv" + std::to_string(e->src);
        continue;
      }
      DACE_CHECK(!e->memlet.empty(), "codegen: dataless input edge");
      inputs[e->dst_conn] =
          e->memlet.data + "[" + offset_c(e->memlet) + "]";
    }
    std::string expr = code_c(t->code, inputs);
    std::string val = "__tv" + std::to_string(id);
    line("const double " + val + " = " + expr + ";");
    for (const auto* e : st.out_edges(id)) {
      if (st.node(e->dst)->kind == ir::NodeKind::Tasklet) continue;
      if (e->memlet.empty()) continue;
      std::string lhs = e->memlet.data + "[" + offset_c(e->memlet) + "]";
      switch (e->memlet.wcr) {
        case ir::WCR::None:
          line(lhs + " = " + val + ";");
          break;
        case ir::WCR::Sum:
          if (atomic && flavor_ == Flavor::CPU) line("#pragma omp atomic");
          if (atomic && flavor_ == Flavor::CUDA)
            line("// atomicAdd on device");
          line(lhs + " += " + val + ";");
          break;
        case ir::WCR::Prod:
          if (atomic && flavor_ == Flavor::CPU) line("#pragma omp atomic");
          line(lhs + " *= " + val + ";");
          break;
        case ir::WCR::Min:
          line(lhs + " = std::min(" + lhs + ", " + val + ");");
          break;
        case ir::WCR::Max:
          line(lhs + " = std::max(" + lhs + ", " + val + ");");
          break;
      }
    }
    (void)exit;
  }

  struct ViewInfo {
    std::vector<Expr> extents;
    std::vector<Expr> strides;
    Expr base = Expr(int64_t{0});
  };

  ViewInfo view_of(const ir::Memlet& m, const std::string& viewdims) const {
    const ir::DataDesc& d = sdfg_.array(m.data);
    std::vector<Expr> strides = d.strides();
    std::set<int> keep;
    size_t pos = 0;
    while (pos < viewdims.size()) {
      size_t comma = viewdims.find(',', pos);
      if (comma == std::string::npos) comma = viewdims.size();
      keep.insert(std::stoi(viewdims.substr(pos, comma - pos)));
      pos = comma + 1;
    }
    ViewInfo v;
    for (size_t dim = 0; dim < m.subset.dims(); ++dim) {
      v.base = v.base + m.subset.range(dim).begin * strides[dim];
      if (viewdims.empty() ? true : keep.count((int)dim)) {
        if (viewdims.empty() && m.subset.range(dim).size().is_one()) continue;
        v.extents.push_back(m.subset.range(dim).size());
        v.strides.push_back(strides[dim] * m.subset.range(dim).step);
      }
    }
    return v;
  }

  std::string attr_or(const ir::LibraryNode& l, const std::string& k,
                      const std::string& fb) const {
    auto it = l.attrs.find(k);
    return it == l.attrs.end() ? fb : it->second;
  }

  void emit_library(const State& st, int id) {
    const auto* l = st.node_as<const ir::LibraryNode>(id);
    auto in = [&](const std::string& c) -> const ir::Edge* {
      for (const auto* e : st.in_edges(id)) {
        if (e->dst_conn == c) return e;
      }
      throw err("codegen: missing connector ", c);
    };
    auto out = [&](const std::string& c) -> const ir::Edge* {
      for (const auto* e : st.out_edges(id)) {
        if (e->src_conn == c) return e;
      }
      throw err("codegen: missing connector ", c);
    };
    int u = tmp_counter_++;
    std::string ACC = "__acc" + std::to_string(u);
    std::string RED = "__red" + std::to_string(u);
    auto at = [&](const std::string& name, const ViewInfo& v,
                  std::vector<std::string> idx) {
      std::string s = name + "[" + sym_c(v.base);
      for (size_t i = 0; i < idx.size(); ++i)
        s += " + (" + idx[i] + ") * " + sym_c(v.strides[i]);
      return s + "]";
    };
    if (l->op == "MatMul") {
      ViewInfo a = view_of(in("_a")->memlet, attr_or(*l, "viewdims_a", ""));
      ViewInfo b = view_of(in("_b")->memlet, attr_or(*l, "viewdims_b", ""));
      ViewInfo c = view_of(out("_c")->memlet, "");
      const std::string& an = in("_a")->memlet.data;
      const std::string& bn = in("_b")->memlet.data;
      const std::string& cn = out("_c")->memlet.data;
      std::string I = "__li" + std::to_string(u), J = "__lj" + std::to_string(u),
                  K = "__lk" + std::to_string(u);
      if (a.extents.size() == 2 && b.extents.size() == 2) {
        line("// MatMul library node (expansion: native)");
        if (flavor_ == Flavor::CPU) line("#pragma omp parallel for");
        line("for (long long " + I + " = 0; " + I + " < " +
             sym_c(a.extents[0]) + "; ++" + I + ") {");
        ++indent_;
        line("for (long long " + J + " = 0; " + J + " < " +
             sym_c(b.extents[1]) + "; ++" + J + ") {");
        ++indent_;
        line(("double " + ACC + " = 0.0;"));
        line("for (long long " + K + " = 0; " + K + " < " +
             sym_c(a.extents[1]) + "; ++" + K + ") " + ACC + " += " +
             at(an, a, {I, K}) + " * " + at(bn, b, {K, J}) + ";");
        line(at(cn, c, {I, J}) + " = " + ACC + ";");
        --indent_;
        line("}");
        --indent_;
        line("}");
      } else if (a.extents.size() == 1 && b.extents.size() == 2) {
        line("for (long long " + J + " = 0; " + J + " < " +
             sym_c(b.extents[1]) + "; ++" + J + ") {");
        ++indent_;
        line(("double " + ACC + " = 0.0;"));
        line("for (long long " + K + " = 0; " + K + " < " +
             sym_c(a.extents[0]) + "; ++" + K + ") " + ACC + " += " +
             at(an, a, {K}) + " * " + at(bn, b, {K, J}) + ";");
        line(at(cn, c, {J}) + " = " + ACC + ";");
        --indent_;
        line("}");
      } else if (a.extents.size() == 2 && b.extents.size() == 1) {
        line("for (long long " + I + " = 0; " + I + " < " +
             sym_c(a.extents[0]) + "; ++" + I + ") {");
        ++indent_;
        line(("double " + ACC + " = 0.0;"));
        line("for (long long " + K + " = 0; " + K + " < " +
             sym_c(a.extents[1]) + "; ++" + K + ") " + ACC + " += " +
             at(an, a, {I, K}) + " * " + at(bn, b, {K}) + ";");
        line(at(cn, c, {I}) + " = " + ACC + ";");
        --indent_;
        line("}");
      } else {
        throw err("codegen: unsupported MatMul ranks");
      }
      return;
    }
    if (l->op == "Reduce") {
      ViewInfo v = view_of(in("_in")->memlet, attr_or(*l, "viewdims_in", ""));
      ViewInfo o = view_of(out("_out")->memlet, "");
      const std::string& inn = in("_in")->memlet.data;
      const std::string& on = out("_out")->memlet.data;
      std::string op = attr_or(*l, "op", "sum");
      auto axis_it = l->attrs.find("axis");
      if (axis_it == l->attrs.end()) {
        std::string init = op == "sum" ? "0.0"
                           : op == "max" ? "-1e300" : "1e300";
        line("double " + RED + " = " + init + ";");
        std::vector<std::string> idx;
        for (size_t d2 = 0; d2 < v.extents.size(); ++d2) {
          std::string iv = "__r" + std::to_string(u) + "_" + std::to_string(d2);
          line("for (long long " + iv + " = 0; " + iv + " < " +
               sym_c(v.extents[d2]) + "; ++" + iv + ") {");
          ++indent_;
          idx.push_back(iv);
        }
        std::string elem = at(inn, v, idx);
        if (op == "sum") line(RED + " += " + elem + ";");
        if (op == "max") line(RED + " = std::max(" + RED + ", " + elem + ");");
        if (op == "min") line(RED + " = std::min(" + RED + ", " + elem + ");");
        for (size_t d2 = 0; d2 < v.extents.size(); ++d2) {
          --indent_;
          line("}");
        }
        line(on + "[" + sym_c(o.base) + "] = " + RED + ";");
      } else {
        int axis = std::stoi(axis_it->second);
        if (axis < 0) axis += (int)v.extents.size();
        DACE_CHECK(v.extents.size() == 2 && op == "sum",
                   "codegen: axis reduce supports 2-D sum");
        int keep = 1 - axis;
        std::string I = "__ra" + std::to_string(u), K = "__rb" + std::to_string(u);
        line("for (long long " + I + " = 0; " + I + " < " +
             sym_c(v.extents[(size_t)keep]) + "; ++" + I + ") {");
        ++indent_;
        line(("double " + ACC + " = 0.0;"));
        std::vector<std::string> idx(2);
        idx[(size_t)keep] = I;
        idx[(size_t)axis] = K;
        line("for (long long " + K + " = 0; " + K + " < " +
             sym_c(v.extents[(size_t)axis]) + "; ++" + K + ") " + ACC + " += " +
             at(inn, v, idx) + ";");
        line(at(on, o, {I}) + " = " + ACC + ";");
        --indent_;
        line("}");
      }
      return;
    }
    throw err("codegen: library node '", l->op, "' has no expansion");
  }
};

}  // namespace

std::vector<std::string> symbol_order(const SDFG& sdfg) {
  auto fs = sdfg.free_symbols();
  return {fs.begin(), fs.end()};
}

std::string generate(const SDFG& sdfg, Flavor flavor) {
  return Emitter(sdfg, flavor).run();
}

}  // namespace dace::cg
