// Kernel planning for Tier-1 map codegen (the shape-specialization layer
// between the bytecode program and C++ emission).
//
// The map compiler emits every scope as a canonical goto loop nest:
//
//     IMov  v, begin
//   h: JGe  v, end -> l+1
//     ... body ...
//     IAdd  v, v, step        <- one of a trailing run of induction
//     IAdd  off, off, delta      increments (strength reduction adds
//   l: Jmp  h                    offset updates after the var step)
//
// plan_kernel() reconstructs that nest from the *optimized* instruction
// stream -- crucially accepting multi-increment latches, which the older
// innermost-`for` detector in program_codegen could not -- and decides a
// KernelPlan the emitter executes:
//
//   - structured `for` emission for the whole nest (gotos stay the
//     fallback when reconstruction fails),
//   - WCR sinking: an innermost StoreWcr whose address is loop-invariant
//     accumulates into a scalar register and combines once after the
//     loop (one atomic per output element instead of one per iteration),
//   - unroll-and-jam register tiling of the loop enclosing a sunk
//     accumulator (matmul-shaped nests get `jam` parallel accumulators
//     in registers; map semantics make iterations reorderable),
//   - innermost unrolling by the vector width with a scalar epilogue for
//     non-divisible trip counts.
//
// The plan is a pure function of the Program, so it is keyed into
// Program::hash via the `kernel_plan` flag (DACE_KERNEL_PLAN=0 restores
// the scalar goto pipeline and distinct native-cache entries).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "runtime/bytecode.hpp"

namespace dace::cg {

/// One reconstructed loop of the nest, plus the decisions made for it.
struct PlanLoop {
  size_t header = 0;       // pc of the JGe exit test
  size_t latch = 0;        // pc of the backward Jmp
  size_t latch_begin = 0;  // first pc of the trailing induction-inc run
  int var = -1;            // loop variable register (JGe.a)
  int end_reg = -1;        // exclusive bound register (JGe.b)
  int64_t const_step = 0;  // > 0 when the step is a known constant
  int parent = -1;         // index into KernelPlan::loops, -1 = top level
  std::vector<int> children;
  bool has_guard = false;  // a Guard op exists inside (header, latch)

  // Decisions ---------------------------------------------------------------
  int unroll = 1;              // innermost sequential unroll factor
  int jam = 1;                 // unroll-and-jam factor (this = jam loop)
  std::vector<size_t> sinks;   // pcs of StoreWcr ops sunk to accumulators
  // Registers private to one jam lane: everything written in the direct
  // body (bank 'i' or 'f', register index).  Lanes >= 1 get fresh names.
  std::vector<std::pair<char, int>> renames;

  bool innermost() const { return children.empty(); }
};

struct KernelPlan {
  bool valid = false;           // nest reconstructed; structured emission ok
  std::vector<PlanLoop> loops;  // sorted by header pc

  /// Index of the loop whose header is at `pc`, or -1.
  int loop_at(size_t pc) const {
    for (size_t i = 0; i < loops.size(); ++i)
      if (loops[i].header == pc) return (int)i;
    return -1;
  }

  /// True when the plan goes beyond plain structured emission.
  bool any_transform() const {
    for (const PlanLoop& l : loops)
      if (l.unroll > 1 || l.jam > 1 || !l.sinks.empty()) return true;
    return false;
  }

  /// Compact human-readable summary, e.g. "loops=3 jam=4 unroll=4 sink=1".
  std::string describe() const;
};

/// DACE_KERNEL_PLAN gate: unset or any value but "0" enables planning.
bool kernel_plan_enabled();

/// Reconstruct the loop nest of a map-scope program and plan its Tier-1
/// emission.  Returns an invalid plan (valid == false) when the control
/// flow is not a properly nested canonical loop forest; codegen then
/// falls back to the goto form.
KernelPlan plan_kernel(const rt::Program& prog);

}  // namespace dace::cg
