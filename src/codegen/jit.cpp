#include "codegen/jit.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "codegen/codegen.hpp"

namespace dace::cg {

CompiledProgram::~CompiledProgram() {
  if (handle_) dlclose(handle_);
}

CompiledProgram::CompiledProgram(CompiledProgram&& o) noexcept
    : handle_(o.handle_), fn_(o.fn_), compile_seconds_(o.compile_seconds_) {
  o.handle_ = nullptr;
  o.fn_ = nullptr;
}

CompiledProgram& CompiledProgram::operator=(CompiledProgram&& o) noexcept {
  if (this != &o) {
    if (handle_) dlclose(handle_);
    handle_ = o.handle_;
    fn_ = o.fn_;
    compile_seconds_ = o.compile_seconds_;
    o.handle_ = nullptr;
    o.fn_ = nullptr;
  }
  return *this;
}

CompiledProgram compile(const ir::SDFG& sdfg, const std::string& compiler) {
  CompiledProgram out;
  std::string src = generate(sdfg, Flavor::CPU);
  char dir[] = "/tmp/daceppXXXXXX";
  if (!mkdtemp(dir)) return out;
  std::string base = std::string(dir) + "/" + sdfg.name();
  std::string cpp = base + ".cpp";
  std::string so = base + ".so";
  {
    std::ofstream f(cpp);
    f << src;
  }
  std::string cmd = compiler + " -O2 -fPIC -shared -std=c++17 -o " + so +
                    " " + cpp + " 2>" + base + ".log";
  auto t0 = std::chrono::steady_clock::now();
  int rc = std::system(cmd.c_str());
  auto t1 = std::chrono::steady_clock::now();
  out.compile_seconds_ = std::chrono::duration<double>(t1 - t0).count();
  if (rc != 0) return out;
  out.handle_ = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!out.handle_) return out;
  out.fn_ = reinterpret_cast<CompiledFn>(dlsym(out.handle_,
                                               sdfg.name().c_str()));
  return out;
}

}  // namespace dace::cg
