#include "codegen/jit.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "codegen/codegen.hpp"

namespace dace::cg {

namespace detail {

LoadedObject build_and_load(const std::string& source,
                            const std::string& name,
                            const std::string& symbol,
                            const std::string& compiler,
                            const std::string& opt) {
  LoadedObject out;
  char dir[] = "/tmp/daceppXXXXXX";
  if (!mkdtemp(dir)) return out;
  std::string base = std::string(dir) + "/" + name;
  std::string cpp = base + ".cpp";
  std::string so = base + ".so";
  {
    std::ofstream f(cpp);
    f << source;
  }
  std::string cmd = compiler + " " + opt + " -fPIC -shared -std=c++17 -o " +
                    so + " " + cpp + " 2>" + base + ".log";
  auto t0 = std::chrono::steady_clock::now();
  int rc = std::system(cmd.c_str());
  auto t1 = std::chrono::steady_clock::now();
  out.compile_seconds = std::chrono::duration<double>(t1 - t0).count();
  if (rc != 0) return out;
  out.handle = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!out.handle) return out;
  out.sym = dlsym(out.handle, symbol.c_str());
  if (!out.sym) {
    dlclose(out.handle);
    out.handle = nullptr;
  }
  return out;
}

}  // namespace detail

CompiledProgram::~CompiledProgram() {
  if (handle_) dlclose(handle_);
}

CompiledProgram::CompiledProgram(CompiledProgram&& o) noexcept
    : handle_(o.handle_), fn_(o.fn_), compile_seconds_(o.compile_seconds_) {
  o.handle_ = nullptr;
  o.fn_ = nullptr;
}

CompiledProgram& CompiledProgram::operator=(CompiledProgram&& o) noexcept {
  if (this != &o) {
    if (handle_) dlclose(handle_);
    handle_ = o.handle_;
    fn_ = o.fn_;
    compile_seconds_ = o.compile_seconds_;
    o.handle_ = nullptr;
    o.fn_ = nullptr;
  }
  return *this;
}

CompiledProgram compile(const ir::SDFG& sdfg, const std::string& compiler) {
  CompiledProgram out;
  std::string src = generate(sdfg, Flavor::CPU);
  detail::LoadedObject obj =
      detail::build_and_load(src, sdfg.name(), sdfg.name(), compiler);
  out.compile_seconds_ = obj.compile_seconds;
  out.handle_ = obj.handle;
  out.fn_ = reinterpret_cast<CompiledFn>(obj.sym);
  return out;
}

CompiledMapNative::~CompiledMapNative() {
  if (handle_) dlclose(handle_);
}

CompiledMapNative::CompiledMapNative(CompiledMapNative&& o) noexcept
    : handle_(o.handle_), fn_(o.fn_), compile_seconds_(o.compile_seconds_) {
  o.handle_ = nullptr;
  o.fn_ = nullptr;
}

CompiledMapNative& CompiledMapNative::operator=(
    CompiledMapNative&& o) noexcept {
  if (this != &o) {
    if (handle_) dlclose(handle_);
    handle_ = o.handle_;
    fn_ = o.fn_;
    compile_seconds_ = o.compile_seconds_;
    o.handle_ = nullptr;
    o.fn_ = nullptr;
  }
  return *this;
}

CompiledMapNative compile_map_native(const rt::Program& prog,
                                     const std::vector<ir::DType>& dtypes,
                                     const std::string& fn_name,
                                     const std::string& compiler) {
  CompiledMapNative out;
  std::string src = generate_map_source(prog, dtypes, fn_name);
  // Planned kernels carry structured loops, __restrict__ and ivdep
  // annotations the vectorizer can act on -- compile them at -O3 with
  // the host ISA (the same level as hand-written reference kernels).
  // -ffp-contract=off forbids FMA contraction so native results stay
  // bit-identical to the VM's separate multiply/add.  Plan-off keeps
  // the original -O2 goto pipeline; Program::hash separates the cache
  // entries, and a compiler that rejects the flags just pins the
  // program to Tier 0 (failure is never fatal).
  detail::LoadedObject obj = detail::build_and_load(
      src, fn_name, fn_name, compiler,
      prog.kernel_plan ? "-O3 -march=native -ffp-contract=off" : "-O2");
  out.compile_seconds_ = obj.compile_seconds;
  out.handle_ = obj.handle;
  out.fn_ = reinterpret_cast<MapNativeFn>(obj.sym);
  return out;
}

}  // namespace dace::cg
