#include "codegen/jit.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "codegen/artifact_cache.hpp"
#include "codegen/codegen.hpp"

namespace dace::cg {

namespace {
std::atomic<uint64_t> g_jit_compiles{0};
}  // namespace

uint64_t jit_compile_count() {
  return g_jit_compiles.load(std::memory_order_relaxed);
}

namespace detail {

namespace {

// dlopen `so` and resolve `symbol` into `out`.  True when both succeed.
bool load_object(const std::string& so, const std::string& symbol,
                 LoadedObject* out) {
  out->handle = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!out->handle) return false;
  out->sym = dlsym(out->handle, symbol.c_str());
  if (!out->sym) {
    dlclose(out->handle);
    out->handle = nullptr;
    return false;
  }
  return true;
}

}  // namespace

LoadedObject build_and_load(const std::string& source,
                            const std::string& name,
                            const std::string& symbol,
                            const std::string& compiler,
                            const std::string& opt,
                            uint64_t program_hash,
                            const std::string& dtypes) {
  LoadedObject out;
  auto& cache = cache::ArtifactCache::instance();
  cache::ArtifactCache::KeyInfo ki;
  ki.program_hash = program_hash;
  ki.compiler = compiler;
  ki.flags = opt;
  ki.dtypes = dtypes;
  std::string key;
  if (cache.enabled()) {
    key = cache::ArtifactCache::key_for(source, ki);
    auto h0 = std::chrono::steady_clock::now();
    std::string hit = cache.lookup(key);
    if (!hit.empty()) {
      if (load_object(hit, symbol, &out)) {
        out.cache_hit = true;
        // On a hit, "compile time" is the verify+dlopen latency -- the
        // real cost of making the entry point callable.
        out.compile_seconds = std::chrono::duration<double>(
                                  std::chrono::steady_clock::now() - h0)
                                  .count();
        return out;
      }
      // Verified bytes that still fail to dlopen/dlsym (e.g. built by an
      // incompatible toolchain, or a renamed entry symbol): drop the
      // entry and rebuild from source.
      cache.invalidate(key);
    }
  }

  // Miss: build in cache-managed scratch space.  make_build_dir() falls
  // back to /tmp when the cache is disabled, and every scratch dir is
  // registered for removal at process exit -- nothing leaks either way.
  std::string dir = cache.make_build_dir();
  if (dir.empty()) return out;
  std::string base = dir + "/" + name;
  std::string cpp = base + ".cpp";
  std::string so = base + ".so";
  {
    std::ofstream f(cpp);
    f << source;
  }
  std::string cmd = compiler + " " + opt + " -fPIC -shared -std=c++17 -o " +
                    so + " " + cpp + " 2>" + base + ".log";
  auto t0 = std::chrono::steady_clock::now();
  g_jit_compiles.fetch_add(1, std::memory_order_relaxed);
  int rc = std::system(cmd.c_str());
  auto t1 = std::chrono::steady_clock::now();
  out.compile_seconds = std::chrono::duration<double>(t1 - t0).count();
  if (rc != 0) {
    cache.release_build_dir(dir);
    return out;
  }

  if (cache.enabled()) {
    // Publish for future processes; failure (ENOSPC, lock timeout,
    // injected fault) only means the cache stays cold.  This process
    // always dlopens the scratch object it just built: the committed
    // copy is *not* trusted here -- a torn write can leave a truncated
    // artifact whose commit looked successful, and mapping it would
    // SIGBUS.  Readers that start from the store (lookup) verify the
    // checksum first; we already hold verified bytes.
    cache.commit(key, so, ki);
  }
  load_object(so, symbol, &out);
  // Linux keeps the mapping alive after unlink, so the scratch dir can
  // go as soon as dlopen returned.
  cache.release_build_dir(dir);
  return out;
}

}  // namespace detail

CompiledProgram::~CompiledProgram() {
  if (handle_) dlclose(handle_);
}

CompiledProgram::CompiledProgram(CompiledProgram&& o) noexcept
    : handle_(o.handle_), fn_(o.fn_), compile_seconds_(o.compile_seconds_) {
  o.handle_ = nullptr;
  o.fn_ = nullptr;
}

CompiledProgram& CompiledProgram::operator=(CompiledProgram&& o) noexcept {
  if (this != &o) {
    if (handle_) dlclose(handle_);
    handle_ = o.handle_;
    fn_ = o.fn_;
    compile_seconds_ = o.compile_seconds_;
    o.handle_ = nullptr;
    o.fn_ = nullptr;
  }
  return *this;
}

CompiledProgram compile(const ir::SDFG& sdfg, const std::string& compiler) {
  CompiledProgram out;
  std::string src = generate(sdfg, Flavor::CPU);
  // Whole-SDFG programs have no bytecode Program; fingerprint the
  // generated source so cache metadata still identifies the build.
  detail::LoadedObject obj =
      detail::build_and_load(src, sdfg.name(), sdfg.name(), compiler, "-O2",
                             cache::fnv1a(src.data(), src.size()));
  out.compile_seconds_ = obj.compile_seconds;
  out.handle_ = obj.handle;
  out.fn_ = reinterpret_cast<CompiledFn>(obj.sym);
  return out;
}

CompiledMapNative::~CompiledMapNative() {
  if (handle_) dlclose(handle_);
}

CompiledMapNative::CompiledMapNative(CompiledMapNative&& o) noexcept
    : handle_(o.handle_), fn_(o.fn_), compile_seconds_(o.compile_seconds_) {
  o.handle_ = nullptr;
  o.fn_ = nullptr;
}

CompiledMapNative& CompiledMapNative::operator=(
    CompiledMapNative&& o) noexcept {
  if (this != &o) {
    if (handle_) dlclose(handle_);
    handle_ = o.handle_;
    fn_ = o.fn_;
    compile_seconds_ = o.compile_seconds_;
    o.handle_ = nullptr;
    o.fn_ = nullptr;
  }
  return *this;
}

CompiledMapNative compile_map_native(const rt::Program& prog,
                                     const std::vector<ir::DType>& dtypes,
                                     const std::string& fn_name,
                                     const std::string& compiler) {
  CompiledMapNative out;
  std::string src = generate_map_source(prog, dtypes, fn_name);
  // Planned kernels carry structured loops, __restrict__ and ivdep
  // annotations the vectorizer can act on -- compile them at -O3 with
  // the host ISA (the same level as hand-written reference kernels).
  // -ffp-contract=off forbids FMA contraction so native results stay
  // bit-identical to the VM's separate multiply/add.  Plan-off keeps
  // the original -O2 goto pipeline; Program::hash separates the cache
  // entries, and a compiler that rejects the flags just pins the
  // program to Tier 0 (failure is never fatal).
  std::string dtype_list;
  for (size_t i = 0; i < dtypes.size(); ++i) {
    if (i) dtype_list += ',';
    dtype_list += ir::dtype_name(dtypes[i]);
  }
  detail::LoadedObject obj = detail::build_and_load(
      src, fn_name, fn_name, compiler,
      prog.kernel_plan ? "-O3 -march=native -ffp-contract=off" : "-O2",
      prog.hash(), dtype_list);
  out.compile_seconds_ = obj.compile_seconds;
  out.handle_ = obj.handle;
  out.fn_ = reinterpret_cast<MapNativeFn>(obj.sym);
  return out;
}

}  // namespace dace::cg
