// JIT-through-the-system-compiler (the AOT pipeline of Section 3.3,
// exercised at runtime): write generated C++ to a temporary file, build a
// shared object with the host compiler, dlopen it, and return the entry
// point.  Two front doors share the machinery:
//   - compile():           whole-SDFG programs (aot_codegen example, the
//                          generated-code tests, the Fig. 6 benchmark)
//   - compile_map_native(): single map-scope bytecode programs, used by
//                          the executor's Tier-1 promotion (runtime/
//                          tiering.cpp)
// Callers must handle absence of a compiler (valid() is false).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/sdfg.hpp"
#include "runtime/bytecode.hpp"

namespace dace::cg {

/// Entry point signature of generated whole-SDFG programs.
using CompiledFn = void (*)(double** args, long long* syms);

/// Entry point signature of generated map-scope programs.  `arrays` and
/// `syms` are indexed by the bytecode Program's slots; for splittable
/// programs lo/hi carry the outer chunk bounds (the i0/i1 protocol of
/// vm_run), so ThreadPool worksharing drives native code and the VM
/// identically.  A failing Guard writes its array slot + 1 into `*err`
/// and returns early; the executor converts that into the same error the
/// VM throws.
using MapNativeFn = void (*)(double* const* arrays, const int64_t* syms,
                             int64_t lo, int64_t hi, int64_t* err);

namespace detail {
/// Shared build pipeline: probe the persistent artifact cache
/// (codegen/artifact_cache.*), and on a miss write `source`, compile a
/// shared object in cache-managed scratch space, commit it, dlopen, and
/// dlsym `symbol`. On any failure the handle is null.  A broken or
/// disabled cache degrades to a plain build -- never to a failure.
struct LoadedObject {
  void* handle = nullptr;
  void* sym = nullptr;
  double compile_seconds = 0;
  bool cache_hit = false;  // loaded from the persistent artifact cache
};
LoadedObject build_and_load(const std::string& source,
                            const std::string& name,
                            const std::string& symbol,
                            const std::string& compiler,
                            const std::string& opt = "-O2",
                            uint64_t program_hash = 0,
                            const std::string& dtypes = "");
}  // namespace detail

/// Host-compiler invocations since process start (cache hits do not
/// count).  sdfg-serve's dedup tests assert on deltas of this.
uint64_t jit_compile_count();

class CompiledProgram {
 public:
  CompiledProgram() = default;
  ~CompiledProgram();
  CompiledProgram(CompiledProgram&& o) noexcept;
  CompiledProgram& operator=(CompiledProgram&& o) noexcept;
  CompiledProgram(const CompiledProgram&) = delete;
  CompiledProgram& operator=(const CompiledProgram&) = delete;

  bool valid() const { return fn_ != nullptr; }
  CompiledFn fn() const { return fn_; }
  /// Wall-clock seconds the host compiler took.
  double compile_seconds() const { return compile_seconds_; }

 private:
  friend CompiledProgram compile(const ir::SDFG&, const std::string&);
  void* handle_ = nullptr;
  CompiledFn fn_ = nullptr;
  double compile_seconds_ = 0;
};

/// Generate CPU code for `sdfg`, compile it with `compiler` (default:
/// c++), and load the entry point. Returns an invalid handle when no
/// compiler is available.
CompiledProgram compile(const ir::SDFG& sdfg,
                        const std::string& compiler = "c++");

/// Natively compiled map-scope program (Tier 1 of the tiered executor).
class CompiledMapNative {
 public:
  CompiledMapNative() = default;
  ~CompiledMapNative();
  CompiledMapNative(CompiledMapNative&& o) noexcept;
  CompiledMapNative& operator=(CompiledMapNative&& o) noexcept;
  CompiledMapNative(const CompiledMapNative&) = delete;
  CompiledMapNative& operator=(const CompiledMapNative&) = delete;

  bool valid() const { return fn_ != nullptr; }
  MapNativeFn fn() const { return fn_; }
  double compile_seconds() const { return compile_seconds_; }

 private:
  friend CompiledMapNative compile_map_native(const rt::Program&,
                                              const std::vector<ir::DType>&,
                                              const std::string&,
                                              const std::string&);
  void* handle_ = nullptr;
  MapNativeFn fn_ = nullptr;
  double compile_seconds_ = 0;
};

/// Lower a Tier-0 bytecode program to standalone C++ (goto-structured;
/// the host compiler rediscovers the loop nest and vectorizes).
/// `dtypes[slot]` is the container dtype of each array slot, baked into
/// the generated store casts.  Implemented in program_codegen.cpp.
std::string generate_map_source(const rt::Program& prog,
                                const std::vector<ir::DType>& dtypes,
                                const std::string& fn_name);

/// Build generate_map_source output with the host compiler and load it.
CompiledMapNative compile_map_native(const rt::Program& prog,
                                     const std::vector<ir::DType>& dtypes,
                                     const std::string& fn_name,
                                     const std::string& compiler = "c++");

}  // namespace dace::cg
