// JIT-through-the-system-compiler (the AOT pipeline of Section 3.3,
// exercised at runtime): write generated C++ to a temporary file, build a
// shared object with the host compiler, dlopen it, and return the entry
// point.  Used by the aot_codegen example, the generated-code tests and
// the Fig. 6 compile-time benchmark; callers must handle absence of a
// compiler (compile() returns an empty handle).
#pragma once

#include <string>

#include "ir/sdfg.hpp"

namespace dace::cg {

/// Entry point signature of generated programs.
using CompiledFn = void (*)(double** args, long long* syms);

class CompiledProgram {
 public:
  CompiledProgram() = default;
  ~CompiledProgram();
  CompiledProgram(CompiledProgram&& o) noexcept;
  CompiledProgram& operator=(CompiledProgram&& o) noexcept;
  CompiledProgram(const CompiledProgram&) = delete;
  CompiledProgram& operator=(const CompiledProgram&) = delete;

  bool valid() const { return fn_ != nullptr; }
  CompiledFn fn() const { return fn_; }
  /// Wall-clock seconds the host compiler took.
  double compile_seconds() const { return compile_seconds_; }

 private:
  friend CompiledProgram compile(const ir::SDFG&, const std::string&);
  void* handle_ = nullptr;
  CompiledFn fn_ = nullptr;
  double compile_seconds_ = 0;
};

/// Generate CPU code for `sdfg`, compile it with `compiler` (default:
/// c++), and load the entry point. Returns an invalid handle when no
/// compiler is available.
CompiledProgram compile(const ir::SDFG& sdfg,
                        const std::string& compiler = "c++");

}  // namespace dace::cg
