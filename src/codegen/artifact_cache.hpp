// Persistent, content-addressed JIT artifact cache (ROADMAP item 2: the
// on-disk half of the sdfg-serve architecture).
//
// Every shared object the JIT pipeline builds (codegen/jit.cpp) is keyed
// by the *content* that produced it -- generated source text, Program
// fingerprint, compiler identity and flag set, all folded into one
// 64-bit address -- and committed to an on-disk store that survives
// process restarts.  A warm process dlopens a verified artifact instead
// of re-running the host compiler, turning multi-hundred-millisecond
// Tier-1 promotions into sub-millisecond loads.
//
// Crash-safety protocol (docs/CACHE.md):
//   - artifacts are written to a per-process temp name, fsync'd, then
//     atomically rename(2)-committed; readers never observe a partial
//     object file
//   - each artifact carries a sidecar metadata record with a versioned
//     header, its byte size and an FNV-1a content checksum; loads verify
//     all three and *reject-and-delete* on any mismatch, so a torn
//     write, bit rot, or a format change degrades to a cache miss, never
//     to loading garbage
//   - cross-process writers serialize on a per-key flock(2) lock file;
//     locks die with their owner, so a crashed writer never wedges the
//     key (stale lock files are plain debris)
//   - ENOSPC/EIO and every other filesystem failure is contained: the
//     caller falls back to the freshly built in-memory object, so a
//     broken cache only ever costs speed, never correctness
//
// The negative cache (a known-bad compiler, tiering.cpp) persists here
// too, with a TTL, so a broken toolchain is probed once per machine
// rather than once per process.
//
// The fault-injection shim at the bottom mirrors distributed/faults.*:
// a seeded, deterministic schedule of filesystem faults (torn writes,
// rename failure, post-commit corruption, ENOSPC, crash-before-publish)
// driven through the `ctest -L chaos` cache sweep.  Determinism makes
// every chaos finding reproducible from its seed alone.
//
// Env knobs (numba-dpex-style config surface, docs/CACHE.md):
//   DACE_CACHE=0                 disable entirely (escape hatch)
//   DACE_CACHE_DIR=path          cache root (default $XDG_CACHE_HOME/dacepp,
//                                $HOME/.cache/dacepp, /tmp/dacepp-cache-UID)
//   DACE_CACHE_SIZE_MB=N         LRU size bound (default 512; fractional ok)
//   DACE_CACHE_NEG_TTL_S=N       negative-entry lifetime (default 86400)
//   DACE_CACHE_LOCK_TIMEOUT_MS=N writer-lock wait bound (default 5000)
//   DACE_CACHE_FAULTS=spec       fault plan, e.g. "seed=3,torn=0.5"
//   DACE_CACHE_FAULT_SEED=N      seed override (chaos sweeps)
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace dace::cg::cache {

// ---------------------------------------------------------------------------
// Fault injection (the chaos shim; style of distributed/faults.*)
// ---------------------------------------------------------------------------

enum class FsFault {
  None = 0,
  TornWrite,   // a file write persists only a prefix (simulated crash mid-write)
  RenameFail,  // the commit rename fails with EIO
  Corrupt,     // a committed artifact's bytes are flipped (bit rot)
  NoSpace,     // a file write fails with ENOSPC
  CrashCommit, // writer "dies" after publishing the object but before its
               // metadata: leaves debris + a stale lock file behind
};

const char* fs_fault_name(FsFault k);

/// Seeded deterministic filesystem fault schedule.  decide() is a pure
/// function of (seed, op index): the same plan over the same operation
/// sequence injects the same faults.
struct FsFaultPlan {
  uint64_t seed = 0;
  double torn_prob = 0;
  double rename_prob = 0;
  double corrupt_prob = 0;
  double enospc_prob = 0;
  double crash_prob = 0;

  bool active() const;
  FsFault decide(uint64_t op_index) const;

  /// Canonical "key=value,..." spec (inverse of parse); "" when inactive.
  std::string to_string() const;
  /// Parse "seed=3,torn=0.5,rename=0.1,corrupt=1,enospc=0.2,crash=0.1".
  static FsFaultPlan parse(const std::string& spec);
  /// DACE_CACHE_FAULTS (spec) with DACE_CACHE_FAULT_SEED overriding seed.
  static FsFaultPlan from_env();
};

/// Install a plan process-wide (tests; from_env() is installed at cache
/// construction).  Passing a default-constructed plan disarms the shim.
void set_fault_plan(const FsFaultPlan& plan);
const FsFaultPlan& fault_plan();
/// Faults injected since process start (monotonic; test assertions).
uint64_t faults_injected();

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

struct CacheConfig {
  bool enabled = true;
  std::string dir;                         // resolved cache root
  int64_t size_limit_bytes = 512ll << 20;  // LRU budget for objects/
  int64_t negative_ttl_s = 86400;          // negative-entry lifetime
  int lock_timeout_ms = 5000;              // writer-lock wait bound

  static CacheConfig from_env();
};

/// Process-local cache activity counters (obs:: mirrors these as trace
/// instants under cat "cache" for sdfg-prof).
struct CacheStats {
  uint64_t hits = 0;            // verified artifact loads
  uint64_t misses = 0;          // key not present
  uint64_t commits = 0;         // artifacts published
  uint64_t corrupt_rejected = 0;  // checksum/header mismatches deleted
  uint64_t evictions = 0;       // LRU entries removed
  uint64_t neg_hits = 0;        // persistent negative-cache hits
  uint64_t neg_stores = 0;      // negative entries written
  uint64_t fallbacks = 0;       // cache errors degraded to in-memory path
};

/// One on-disk entry, as reported by list()/the sdfg-cache CLI.
struct EntryInfo {
  std::string key;        // 16-hex content address
  uint64_t program_hash = 0;
  std::string compiler;
  std::string flags;
  std::string dtypes;     // comma-joined dtype names ("" for whole-SDFG)
  int64_t size = 0;       // artifact bytes
  int64_t created = 0;    // unix seconds at commit
  int64_t last_used = 0;  // unix seconds at last verified load (LRU clock)
  bool valid = true;      // verify result (list(verify=true) / CLI verify)
  std::string detail;     // reason when !valid
};

// ---------------------------------------------------------------------------
// The cache
// ---------------------------------------------------------------------------

class ArtifactCache {
 public:
  explicit ArtifactCache(CacheConfig cfg);

  /// Env-configured process singleton (leaked; detached JIT threads may
  /// publish during shutdown).
  static ArtifactCache& instance();
  /// Rebuild the singleton from the current environment (tests flip
  /// DACE_CACHE_* between cases).  The old instance leaks by design.
  static void reset_for_testing();

  bool enabled() const { return cfg_.enabled && !dir_failed_; }
  const CacheConfig& config() const { return cfg_; }
  const std::string& dir() const { return cfg_.dir; }
  CacheStats stats() const;

  /// Everything that distinguishes one build product from another.
  /// dtypes/kernel-plan/absint decisions are already baked into `source`
  /// (and program_hash); they ride along as self-describing metadata.
  struct KeyInfo {
    uint64_t program_hash = 0;
    std::string compiler;
    std::string flags;
    std::string dtypes;
  };

  /// Content address: 16-hex digest of (format version, source text,
  /// program hash, compiler, flags).
  static std::string key_for(const std::string& source, const KeyInfo& ki);

  /// Probe for a committed artifact.  Returns the path of a *verified*
  /// shared object (header + size + checksum checked this call), or ""
  /// on miss.  Corrupt entries are deleted and reported as misses.
  std::string lookup(const std::string& key);

  /// Publish `built_so` (a finished object file) under `key` using the
  /// write-temp + fsync + rename-commit protocol, holding the key lock.
  /// Returns the committed artifact path, the already-committed path if
  /// another writer won the race, or "" when the cache could not take
  /// the artifact (lock timeout, ENOSPC, injected fault); the caller
  /// keeps using `built_so`.
  std::string commit(const std::string& key, const std::string& built_so,
                     const KeyInfo& ki);

  /// Drop one entry (artifact + metadata).  True if anything was removed.
  bool invalidate(const std::string& key);

  // -- persistent negative cache -------------------------------------------
  /// True if (program_hash, compiler) failed to build within the TTL.
  bool negative_lookup(uint64_t program_hash, const std::string& compiler);
  /// Record a failed build; `detail` is kept for sdfg-cache ls --json.
  void negative_store(uint64_t program_hash, const std::string& compiler,
                      const std::string& detail);

  // -- build scratch space ---------------------------------------------------
  /// Fresh scratch dir under <dir>/build (falls back to /tmp when the
  /// cache is disabled).  Every dir is tracked and removed at process
  /// exit; callers should release_build_dir() as soon as the artifact is
  /// loaded so crash debris is the exception, not the rule.
  std::string make_build_dir();
  /// Remove one scratch dir now (no-op if already gone).
  void release_build_dir(const std::string& path);
  /// Remove scratch dirs left by processes that no longer exist.
  /// Returns the number of dirs collected (sdfg-cache purge / cache init).
  int collect_stale_build_dirs();

  // -- maintenance (sdfg-cache CLI) ----------------------------------------
  std::vector<EntryInfo> list(bool verify = false);
  /// Negative entries: (key-hex, compiler, age seconds, expired).
  struct NegativeInfo {
    std::string key;
    std::string compiler;
    std::string detail;
    int64_t age_s = 0;
    bool expired = false;
  };
  std::vector<NegativeInfo> list_negative();
  int64_t total_bytes();
  /// Evict least-recently-used artifacts until the store fits in
  /// `target_bytes` (<0: the configured budget).  Returns bytes freed.
  int64_t evict(int64_t target_bytes = -1);
  /// Remove all artifacts, negative entries and build debris.
  void purge();

  /// Parsed sidecar metadata record (implementation + CLI use).
  struct Meta;

 private:
  bool read_meta(const std::string& path, Meta* out, std::string* why) const;
  bool verify_entry(const std::string& key, std::string* why) const;
  std::string object_path(const std::string& key) const;
  std::string meta_path(const std::string& key) const;
  std::string lock_path(const std::string& key) const;
  std::string negative_path(uint64_t program_hash,
                            const std::string& compiler) const;
  void count(uint64_t CacheStats::*field) const;

  CacheConfig cfg_;
  bool dir_failed_ = false;  // cache root could not be created: disabled
  mutable std::mutex mu_;    // guards stats_
  mutable CacheStats stats_;
};

/// FNV-1a 64 over a byte range (the artifact checksum; also reused for
/// key derivation).
uint64_t fnv1a(const void* data, size_t n, uint64_t h = 1469598103934665603ull);

}  // namespace dace::cg::cache
