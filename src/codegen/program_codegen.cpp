// Lowers a Tier-0 bytecode program to standalone C++ (Tier 1 of the
// tiered map executor).
//
// Two emission strategies share one per-instruction translator:
//
//  - Plan-driven (default, DACE_KERNEL_PLAN=1): cg::plan_kernel
//    reconstructs the canonical loop nest and the emitter prints
//    structured `for` loops, sinks invariant-address WCR stores into
//    register accumulators, unroll-and-jams the accumulator-carrying
//    loop with per-lane register renaming, and unrolls innermost loops
//    by the vector width with a scalar epilogue.  The host compiler sees
//    countable loops over __restrict__ arrays and auto-vectorizes.
//
//  - Goto fallback (plan invalid or DACE_KERNEL_PLAN=0): one statement
//    per instruction, labels on jump targets, gotos for Jmp/JGe -- the
//    original deliberately-direct translation.
//
// Both keep the vm_run chunk protocol -- splittable programs read their
// outer bounds from lo/hi -- so ThreadPool worksharing and the atomic
// WCR path are shared with the interpreter verbatim.
#include <functional>
#include <map>
#include <set>
#include <sstream>

#include "codegen/jit.hpp"
#include "codegen/kernel_plan.hpp"
#include "common/common.hpp"

namespace dace::cg {

namespace {

using rt::Instr;
using rt::Op;

/// Register spelling hook: maps (bank, index) to a C identifier.  The
/// base spelling is i<r>/f<r>; jam lanes substitute lane-private names.
using Ren = std::function<std::string(char, int)>;

std::string base_name(char bank, int reg) {
  return std::string(1, bank) + std::to_string(reg);
}

const char* fbin_expr(Op op) {
  switch (op) {
    case Op::FAdd: return "%a = %b + %c;";
    case Op::FSub: return "%a = %b - %c;";
    case Op::FMul: return "%a = %b * %c;";
    case Op::FDiv: return "%a = %b / %c;";
    case Op::FPow: return "%a = pow(%b, %c);";
    case Op::FMod: return "%a = dacepp_fmod(%b, %c);";
    case Op::FMin: return "%a = %b < %c ? %b : %c;";
    case Op::FMax: return "%a = %b > %c ? %b : %c;";
    case Op::FLt: return "%a = %b < %c ? 1.0 : 0.0;";
    case Op::FLe: return "%a = %b <= %c ? 1.0 : 0.0;";
    case Op::FGt: return "%a = %b > %c ? 1.0 : 0.0;";
    case Op::FGe: return "%a = %b >= %c ? 1.0 : 0.0;";
    case Op::FEq: return "%a = %b == %c ? 1.0 : 0.0;";
    case Op::FNe: return "%a = %b != %c ? 1.0 : 0.0;";
    case Op::FAnd: return "%a = (%b != 0.0 && %c != 0.0) ? 1.0 : 0.0;";
    case Op::FOr: return "%a = (%b != 0.0 || %c != 0.0) ? 1.0 : 0.0;";
    default: return nullptr;
  }
}

const char* fun_expr(Op op) {
  switch (op) {
    case Op::FNeg: return "%a = -%b;";
    case Op::FAbs: return "%a = fabs(%b);";
    case Op::FExp: return "%a = exp(%b);";
    case Op::FLog: return "%a = log(%b);";
    case Op::FSqrt: return "%a = sqrt(%b);";
    case Op::FSin: return "%a = sin(%b);";
    case Op::FCos: return "%a = cos(%b);";
    case Op::FTanh: return "%a = tanh(%b);";
    case Op::FFloor: return "%a = floor(%b);";
    case Op::FNot: return "%a = %b == 0.0 ? 1.0 : 0.0;";
    default: return nullptr;
  }
}

/// Expand the %a/%b/%c placeholders (all float registers) of a template.
std::string expand(const char* tpl, const Instr& in, const Ren& ren) {
  std::string out;
  for (const char* p = tpl; *p; ++p) {
    if (*p != '%') {
      out.push_back(*p);
      continue;
    }
    ++p;
    switch (*p) {
      case 'a': out += ren('f', in.a); break;
      case 'b': out += ren('f', in.b); break;
      case 'c': out += ren('f', in.c); break;
      default: out.push_back(*p); break;
    }
  }
  return out;
}

/// Store-side cast mirroring rt::cast_to for the container dtype.
std::string store_cast(ir::DType dt, const std::string& v) {
  switch (dt) {
    case ir::DType::f64: return v;
    case ir::DType::f32: return "(double)(float)(" + v + ")";
    case ir::DType::i64: return "(double)(long long)(" + v + ")";
    case ir::DType::i32: return "(double)(int)(" + v + ")";
    case ir::DType::b8: return "((" + v + ") != 0.0 ? 1.0 : 0.0)";
  }
  return v;
}

const char* wcr_identity(int kind) {
  switch (kind) {
    case 1: return "0.0";
    case 2: return "1.0";
    case 3: return "HUGE_VAL";
    default: return "-HUGE_VAL";
  }
}

/// Shared per-instruction translator.  `sunk` maps StoreWcr pcs to the
/// accumulator variable currently standing in for their array slot.
class InstrPrinter {
 public:
  InstrPrinter(const rt::Program& prog, const std::vector<ir::DType>& dtypes)
      : prog_(prog), dtypes_(dtypes) {}

  std::map<size_t, std::string> sunk;

  std::string stmt(size_t pc, const Ren& ren) const {
    const Instr& in = prog_.code[pc];
    std::ostringstream os;
    auto I = [&](int r) { return ren('i', r); };
    auto F = [&](int r) { return ren('f', r); };
    switch (in.op) {
      case Op::IConst:
        os << I(in.a) << " = " << in.imm << "LL;";
        break;
      case Op::ISym:
        os << I(in.a) << " = s[" << in.imm << "];";
        break;
      case Op::IMov:
        os << I(in.a) << " = " << I(in.b) << ";";
        break;
      case Op::IAdd:
        os << I(in.a) << " = " << I(in.b) << " + " << I(in.c) << ";";
        break;
      case Op::ISub:
        os << I(in.a) << " = " << I(in.b) << " - " << I(in.c) << ";";
        break;
      case Op::IMul:
        os << I(in.a) << " = " << I(in.b) << " * " << I(in.c) << ";";
        break;
      case Op::IFloorDiv:
        os << I(in.a) << " = dacepp_floordiv(" << I(in.b) << ", " << I(in.c)
           << ");";
        break;
      case Op::IMod:
        os << I(in.a) << " = " << I(in.b) << " - dacepp_floordiv(" << I(in.b)
           << ", " << I(in.c) << ") * " << I(in.c) << ";";
        break;
      case Op::IMin:
        os << I(in.a) << " = " << I(in.b) << " < " << I(in.c) << " ? "
           << I(in.b) << " : " << I(in.c) << ";";
        break;
      case Op::IMax:
        os << I(in.a) << " = " << I(in.b) << " > " << I(in.c) << " ? "
           << I(in.b) << " : " << I(in.c) << ";";
        break;
      case Op::FConst: {
        char buf[64];
        snprintf(buf, sizeof(buf), "%.17g", in.fimm);
        os << F(in.a) << " = " << buf << ";";
        break;
      }
      case Op::FSym:
        os << F(in.a) << " = (double)s[" << in.imm << "];";
        break;
      case Op::FFromI:
        os << F(in.a) << " = (double)" << I(in.b) << ";";
        break;
      case Op::Load:
        os << F(in.a) << " = A" << in.imm << "[" << I(in.b) << "];";
        break;
      case Op::Store:
        os << "A" << in.imm << "[" << I(in.b)
           << "] = " << store_cast(dtypes_[(size_t)in.imm], F(in.a)) << ";";
        break;
      case Op::StoreWcr: {
        std::string v = F(in.a);
        if (auto it = sunk.find(pc); it != sunk.end()) {
          const std::string& acc = it->second;
          switch (in.c) {
            case 1: os << acc << " += " << v << ";"; break;
            case 2: os << acc << " *= " << v << ";"; break;
            case 3:
              os << "if (" << v << " < " << acc << ") " << acc << " = " << v
                 << ";";
              break;
            default:
              os << "if (" << v << " > " << acc << ") " << acc << " = " << v
                 << ";";
              break;
          }
          break;
        }
        os << wcr_apply(in, v, ren);
        break;
      }
      case Op::FSelect:
        os << F(in.a) << " = " << F(in.b) << " != 0.0 ? " << F(in.c) << " : "
           << F((int)in.imm) << ";";
        break;
      case Op::Guard:
        os << "if (" << I(in.a) << " < 0 || " << I(in.a) << " >= " << I(in.b)
           << ") { if (err) *err = " << in.imm << "LL + 1; return; }";
        break;
      case Op::Halt:
        os << "return;";
        break;
      case Op::Jmp:
      case Op::JGe:
        DACE_CHECK(false, "map codegen: stray jump in structured emission");
        break;
      default: {
        const char* tpl = fbin_expr(in.op);
        if (!tpl) tpl = fun_expr(in.op);
        DACE_CHECK(tpl != nullptr, "map codegen: unsupported opcode");
        os << expand(tpl, in, ren);
        break;
      }
    }
    return os.str();
  }

  /// The memory-side WCR application (also used for sunk combines).
  std::string wcr_apply(const Instr& in, const std::string& v,
                        const Ren& ren) const {
    std::string addr =
        "A" + std::to_string(in.imm) + " + " + ren('i', in.b);
    std::ostringstream os;
    if (in.flag) {
      os << "dacepp_wcr_atomic(" << addr << ", " << v << ", " << (int)in.c
         << ");";
      return os.str();
    }
    switch (in.c) {
      case 1: os << "*(" << addr << ") += " << v << ";"; break;
      case 2: os << "*(" << addr << ") *= " << v << ";"; break;
      case 3:
        os << "{ double* p = " << addr << "; if (" << v << " < *p) *p = " << v
           << "; }";
        break;
      default:
        os << "{ double* p = " << addr << "; if (" << v << " > *p) *p = " << v
           << "; }";
        break;
    }
    return os.str();
  }

 private:
  const rt::Program& prog_;
  const std::vector<ir::DType>& dtypes_;
};

/// Structured emitter executing a KernelPlan.
class PlanEmitter {
 public:
  PlanEmitter(const rt::Program& prog, const std::vector<ir::DType>& dtypes,
              const KernelPlan& plan, std::ostream& os)
      : prog_(prog), plan_(plan), os_(os), pr_(prog, dtypes) {}

  /// Function-top declarations for jam-lane private registers (lane 0
  /// reuses the base registers; lanes >= 1 get _l<lane> copies).
  void emit_lane_decls() {
    std::set<std::string> seen;
    for (const PlanLoop& J : plan_.loops) {
      if (J.jam <= 1) continue;
      for (int lane = 1; lane < J.jam; ++lane) {
        for (auto [bank, reg] : J.renames) {
          std::string n = base_name(bank, reg) + "_l" + std::to_string(lane);
          if (!seen.insert(n).second) continue;
          if (bank == 'i')
            os_ << "  long long " << n << " = 0; (void)" << n << ";\n";
          else
            os_ << "  double " << n << " = 0.0; (void)" << n << ";\n";
        }
      }
    }
  }

  void emit() {
    emit_range(0, prog_.code.size());
  }

 private:
  const rt::Program& prog_;
  const KernelPlan& plan_;
  std::ostream& os_;
  InstrPrinter pr_;
  int decl_id_ = 0;

  Ren base_ren() const {
    return [](char bank, int reg) { return base_name(bank, reg); };
  }

  /// Lane rename for a jam loop: lane-private registers (body defs and
  /// latch induction targets) get the _l<lane> suffix; lane 0 and shared
  /// registers keep base names.
  Ren lane_ren(const PlanLoop& J, const std::vector<int>& latch_targets,
               int lane) const {
    if (lane == 0) return base_ren();
    auto renames = J.renames;  // by value: the Ren outlives this frame
    return [renames, latch_targets, lane](char bank, int reg) {
      bool priv = false;
      for (auto [b, r] : renames) priv |= b == bank && r == reg;
      if (bank == 'i')
        for (int t : latch_targets) priv |= t == reg;
      std::string n = base_name(bank, reg);
      return priv ? n + "_l" + std::to_string(lane) : n;
    };
  }

  void emit_range(size_t lo, size_t hi) {
    Ren ren = base_ren();
    size_t pc = lo;
    while (pc < hi) {
      int li = plan_.loop_at(pc);
      if (li >= 0) {
        emit_loop(li);
        pc = plan_.loops[(size_t)li].latch + 1;
        continue;
      }
      os_ << "  " << pr_.stmt(pc, ren) << "\n";
      ++pc;
    }
  }

  void emit_loop(int li) {
    const PlanLoop& L = plan_.loops[(size_t)li];
    if (L.jam > 1)
      emit_jam(li);
    else
      emit_plain(li);
  }

  /// Body statements then latch increments, with nested loops dispatched
  /// recursively.  `only_straight` asserts the range holds no loops (jam
  /// pre/post ranges).
  void emit_body_and_latch(const PlanLoop& L, const Ren& ren) {
    size_t pc = L.header + 1;
    while (pc < L.latch_begin) {
      int ci = plan_.loop_at(pc);
      if (ci >= 0) {
        emit_loop(ci);
        pc = plan_.loops[(size_t)ci].latch + 1;
        continue;
      }
      os_ << "  " << pr_.stmt(pc, ren) << "\n";
      ++pc;
    }
    for (pc = L.latch_begin; pc < L.latch; ++pc)
      os_ << "  " << pr_.stmt(pc, ren) << "\n";
  }

  void emit_straight(size_t lo, size_t hi, const Ren& ren) {
    for (size_t pc = lo; pc < hi; ++pc)
      os_ << "  " << pr_.stmt(pc, ren) << "\n";
  }

  void emit_sink_decls(const PlanLoop& L, const Ren& ren, int id,
                       const std::string& lane_tag) {
    for (size_t spc : L.sinks) {
      const Instr& in = prog_.code[spc];
      std::string acc = "acc" + std::to_string(spc) + "_" +
                        std::to_string(id) + lane_tag;
      os_ << "  double " << acc << " = " << wcr_identity(in.c) << ";\n";
      pr_.sunk[spc] = acc;
      (void)ren;
    }
  }

  /// Apply each sunk accumulator to memory once.  Guarded by the caller
  /// on "the loop ran at least once" so zero-trip nests touch nothing.
  void emit_combines(const PlanLoop& L, const Ren& ren, int id,
                     const std::string& lane_tag) {
    for (size_t spc : L.sinks) {
      const Instr& in = prog_.code[spc];
      std::string acc = "acc" + std::to_string(spc) + "_" +
                        std::to_string(id) + lane_tag;
      os_ << "    " << pr_.wcr_apply(in, acc, ren) << "\n";
    }
  }

  void emit_plain(int li) {
    const PlanLoop& L = plan_.loops[(size_t)li];
    Ren ren = base_ren();
    std::string v = ren('i', L.var);
    std::string e = ren('i', L.end_reg);
    int id = -1;
    if (!L.sinks.empty()) {
      id = decl_id_++;
      emit_sink_decls(L, ren, id, "");
      os_ << "  long long vst" << id << " = " << v << ";\n";
    }
    if (L.unroll > 1) {
      os_ << "  for (; " << v << " + " << (L.unroll - 1) * L.const_step
          << " < " << e << "; ) {\n";
      for (int u = 0; u < L.unroll; ++u) emit_body_and_latch(L, ren);
      os_ << "  }\n";
    }
    if (L.innermost() && prog_.vec_innermost && !L.has_guard)
      os_ << "  #pragma GCC ivdep\n";
    os_ << "  for (; " << v << " < " << e << "; ) {\n";
    emit_body_and_latch(L, ren);
    os_ << "  }\n";
    if (id >= 0) {
      os_ << "  if (" << v << " != vst" << id << ") {\n";
      emit_combines(L, ren, id, "");
      os_ << "  }\n";
      for (size_t spc : L.sinks) pr_.sunk.erase(spc);
    }
  }

  /// Unroll-and-jam: interleave `jam` iterations of J lane by lane.  Each
  /// lane runs on private copies of J's body registers; induction
  /// registers are rematerialized per fused iteration as base + lane *
  /// delta, and the shared latch advances every induction register by
  /// jam * delta.  The inner loop K is fused across lanes on lane 0's
  /// counter (the planner proved identical trip counts), giving the host
  /// compiler `jam` independent accumulator chains.  The remainder
  /// (< jam iterations) runs through the plain emitter.
  void emit_jam(int ji) {
    const PlanLoop& J = plan_.loops[(size_t)ji];
    const PlanLoop& K = plan_.loops[(size_t)J.children[0]];
    int U = J.jam;

    std::vector<std::pair<int, int>> incs;  // (target reg, delta reg)
    std::vector<int> latch_targets;
    for (size_t pc = J.latch_begin; pc < J.latch; ++pc) {
      incs.push_back({prog_.code[pc].a, prog_.code[pc].c});
      latch_targets.push_back(prog_.code[pc].a);
    }

    std::vector<Ren> lanes;
    for (int l = 0; l < U; ++l)
      lanes.push_back(lane_ren(J, latch_targets, l));
    Ren base = base_ren();
    std::string vJ = base('i', J.var);

    os_ << "  for (; " << vJ << " + " << (int64_t)(U - 1) * J.const_step
        << " < " << base('i', J.end_reg) << "; ) {\n";
    for (int l = 1; l < U; ++l)
      for (auto [r, d] : incs)
        os_ << "  long long " << lanes[(size_t)l]('i', r) << " = "
            << base('i', r) << " + " << l << " * " << base('i', d) << ";\n";
    // Pre-range: everything in J's body before the inner loop, per lane.
    for (int l = 0; l < U; ++l)
      emit_straight(J.header + 1, K.header, lanes[(size_t)l]);
    int id = decl_id_++;
    for (int l = 0; l < U; ++l)
      emit_sink_decls(K, lanes[(size_t)l], id, "_j" + std::to_string(l));
    std::string vK = lanes[0]('i', K.var);
    os_ << "  long long vst" << id << " = " << vK << ";\n";
    os_ << "  for (; " << vK << " < " << base('i', K.end_reg) << "; ) {\n";
    for (int l = 0; l < U; ++l) {
      // Lane acc names were installed per lane; re-point the sunk map.
      for (size_t spc : K.sinks)
        pr_.sunk[spc] = "acc" + std::to_string(spc) + "_" +
                        std::to_string(id) + "_j" + std::to_string(l);
      emit_straight(K.header + 1, K.latch, lanes[(size_t)l]);
    }
    os_ << "  }\n";
    os_ << "  if (" << vK << " != vst" << id << ") {\n";
    for (int l = 0; l < U; ++l)
      emit_combines(K, lanes[(size_t)l], id, "_j" + std::to_string(l));
    os_ << "  }\n";
    for (size_t spc : K.sinks) pr_.sunk.erase(spc);
    // Post-range: the rest of J's body after the inner loop, per lane.
    for (int l = 0; l < U; ++l)
      emit_straight(K.latch + 1, J.latch_begin, lanes[(size_t)l]);
    for (auto [r, d] : incs)
      os_ << "  " << base('i', r) << " += " << U << " * " << base('i', d)
          << ";\n";
    os_ << "  }\n";

    emit_plain(ji);
  }
};

}  // namespace

std::string generate_map_source(const rt::Program& prog,
                                const std::vector<ir::DType>& dtypes,
                                const std::string& fn_name) {
  DACE_CHECK(dtypes.size() == prog.arrays.size(),
             "map codegen: dtype count does not match array slots");
  std::ostringstream os;
  os << "// Generated by the DaCe++ tiered map executor (Tier 1).\n"
     << "#include <math.h>\n\n"
     << "static inline long long dacepp_floordiv(long long a, long long b) "
        "{\n"
     << "  long long q = a / b;\n"
     << "  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;\n"
     << "  return q;\n"
     << "}\n"
     << "static inline double dacepp_fmod(double a, double b) {\n"
     << "  double r = fmod(a, b);\n"
     << "  if (r != 0 && ((r < 0) != (b < 0))) r += b;\n"
     << "  return r;\n"
     << "}\n"
     << "static inline void dacepp_wcr_atomic(double* p, double v, int kind) "
        "{\n"
     << "  unsigned long long* u = (unsigned long long*)p;\n"
     << "  unsigned long long expected = __atomic_load_n(u, "
        "__ATOMIC_RELAXED);\n"
     << "  for (;;) {\n"
     << "    double cur;\n"
     << "    __builtin_memcpy(&cur, &expected, 8);\n"
     << "    double nxt = kind == 1   ? cur + v\n"
     << "                 : kind == 2 ? cur * v\n"
     << "                 : kind == 3 ? (cur < v ? cur : v)\n"
     << "                             : (cur > v ? cur : v);\n"
     << "    unsigned long long desired;\n"
     << "    __builtin_memcpy(&desired, &nxt, 8);\n"
     << "    if (__atomic_compare_exchange_n(u, &expected, desired, 1,\n"
     << "                                    __ATOMIC_RELAXED, "
        "__ATOMIC_RELAXED))\n"
     << "      return;\n"
     << "  }\n"
     << "}\n\n"
     << "extern \"C\" void " << fn_name
     << "(double* const* a, const long long* s, long long lo, long long hi, "
        "long long* err) {\n"
     << "  (void)a; (void)s; (void)lo; (void)hi; (void)err;\n";
  // use_restrict is asserted by interval analysis and re-checked by the
  // executor against the bound buffers before every native dispatch.
  const char* qual = prog.use_restrict ? "* __restrict__ " : "* ";
  for (size_t i = 0; i < prog.arrays.size(); ++i) {
    os << "  double" << qual << "A" << i << " = a[" << i << "];\n";
  }
  for (int r = 0; r < prog.n_iregs; ++r) {
    const char* init = "0";
    if (prog.splittable && r == 0) init = "lo";
    if (prog.splittable && r == 1) init = "hi";
    os << "  long long i" << r << " = " << init << "; (void)i" << r << ";\n";
  }
  for (int r = 0; r < prog.n_fregs; ++r) {
    os << "  double f" << r << " = 0.0; (void)f" << r << ";\n";
  }

  // Plan-driven structured emission; the goto translation below stays
  // the fallback for irreducible shapes and DACE_KERNEL_PLAN=0.
  if (prog.kernel_plan) {
    KernelPlan plan = plan_kernel(prog);
    if (plan.valid) {
      PlanEmitter em(prog, dtypes, plan, os);
      em.emit_lane_decls();
      em.emit();
      os << "  return;\n}\n";
      return os.str();
    }
  }

  // Structured innermost loops: when interval analysis proved the
  // innermost loop free of loop-carried dependences (vec_innermost), the
  // canonical counted-loop shape
  //   h:   JGe v, end -> l+1
  //        ... straight-line body ...
  //   l-1: IAdd v, v, step
  //   l:   Jmp h
  // is re-emitted as a `for` statement under `#pragma GCC ivdep`, giving
  // the host vectorizer a dependence-free loop instead of gotos.
  std::map<size_t, size_t> structured;  // header pc -> latch pc
  if (prog.vec_innermost) {
    for (size_t l = 2; l < prog.code.size(); ++l) {
      const Instr& jmp = prog.code[l];
      if (jmp.op != Op::Jmp || jmp.imm < 0 || (size_t)jmp.imm + 2 > l)
        continue;
      size_t h = (size_t)jmp.imm;
      const Instr& jge = prog.code[h];
      const Instr& inc = prog.code[l - 1];
      if (jge.op != Op::JGe || jge.imm != (int64_t)(l + 1)) continue;
      if (inc.op != Op::IAdd || inc.a != jge.a || inc.b != jge.a) continue;
      bool straight = true;
      for (size_t pc = h + 1; pc < l - 1 && straight; ++pc) {
        Op op = prog.code[pc].op;
        if (op == Op::Jmp || op == Op::JGe || op == Op::Guard ||
            op == Op::Halt)
          straight = false;
      }
      // No jump from outside the pattern may land in [h, l].
      for (size_t pc = 0; pc < prog.code.size() && straight; ++pc) {
        if (pc == h || pc == l) continue;
        const Instr& in = prog.code[pc];
        if ((in.op == Op::Jmp || in.op == Op::JGe) && in.imm >= (int64_t)h &&
            in.imm <= (int64_t)l)
          straight = false;
      }
      if (straight) structured[h] = l;
    }
  }
  std::map<size_t, size_t> latch_of;  // latch pc -> header pc
  for (auto [h, l] : structured) latch_of[l] = h;

  // Labels only where a jump lands (structured jumps emit no gotos).
  std::vector<bool> is_target(prog.code.size() + 1, false);
  for (size_t pc = 0; pc < prog.code.size(); ++pc) {
    const Instr& in = prog.code[pc];
    if (structured.count(pc) || latch_of.count(pc)) continue;
    if (in.op == Op::Jmp || in.op == Op::JGe)
      is_target[(size_t)in.imm] = true;
  }

  InstrPrinter printer(prog, dtypes);
  Ren base = [](char bank, int reg) { return base_name(bank, reg); };
  size_t open_latch = SIZE_MAX;  // latch pc of the currently open `for`
  for (size_t pc = 0; pc < prog.code.size(); ++pc) {
    const Instr& in = prog.code[pc];
    if (is_target[pc]) os << "L" << pc << ":\n";
    if (auto it = structured.find(pc); it != structured.end()) {
      const Instr& inc = prog.code[it->second - 1];
      os << "  #pragma GCC ivdep\n"
         << "  for (; i" << in.a << " < i" << in.b << "; i" << in.a
         << " += i" << inc.c << ") {\n";
      open_latch = it->second;
      continue;
    }
    if (pc + 1 == open_latch) continue;  // the IAdd, now the for-increment
    if (pc == open_latch) {
      os << "  }\n";
      open_latch = SIZE_MAX;
      continue;
    }
    os << "  ";
    switch (in.op) {
      case Op::Jmp:
        os << "goto L" << in.imm << ";";
        break;
      case Op::JGe:
        os << "if (i" << in.a << " >= i" << in.b << ") goto L" << in.imm
           << ";";
        break;
      default:
        os << printer.stmt(pc, base);
        break;
    }
    os << "\n";
  }
  if (is_target[prog.code.size()]) os << "L" << prog.code.size() << ":\n";
  os << "  return;\n}\n";
  return os.str();
}

}  // namespace dace::cg
