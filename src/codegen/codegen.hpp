// Ahead-of-time code generation (Section 3.3).
//
// Lowers an optimized SDFG to backend source code: standalone C++ with
// OpenMP worksharing pragmas for the CPU (compilable with any C++17
// compiler -- the generated-code test builds it with the system
// compiler), CUDA-flavored source for the GPU backend, and HLS-flavored
// (Vitis-style pragma) source for the FPGA backend.  The entry point is
//
//   extern "C" void <name>(double** args, long long* syms);
//
// with `args` ordered like SDFG::arg_names() and `syms` ordered by the
// sorted free-symbol names.  Transients are allocated inside (persistent
// ones as function-local statics, Section 3.1 pass 4).
#pragma once

#include <string>

#include "ir/sdfg.hpp"

namespace dace::cg {

enum class Flavor { CPU, CUDA, HLS };

/// Generate backend source for the SDFG. Throws on constructs the
/// backend cannot express (streams, comm::* nodes).
std::string generate(const ir::SDFG& sdfg, Flavor flavor = Flavor::CPU);

/// Ordered symbol names matching the `syms` argument of the generated
/// entry point.
std::vector<std::string> symbol_order(const ir::SDFG& sdfg);

}  // namespace dace::cg
