#include "kernels/suite.hpp"

#include "kernels/reference.hpp"

namespace dace::kernels {

using rt::Bindings;
using rt::Tensor;
using Sym = sym::SymbolMap;

void fill_pattern(Tensor& t, unsigned seed) {
  const int64_t mod = 1021;
  for (int64_t i = 0; i < t.size(); ++i) {
    int64_t v = (i * 7 + (int64_t)seed * 131 + 3) % mod;
    t.set_flat(i, (double)v / (double)mod - 0.5);
  }
}

namespace {

Tensor pat(std::vector<int64_t> shape, unsigned seed) {
  Tensor t(ir::DType::f64, std::move(shape));
  fill_pattern(t, seed);
  return t;
}

std::vector<Kernel> build_suite() {
  std::vector<Kernel> ks;

  // ------------------------------------------------------------------ gemm
  ks.push_back(Kernel{
      "gemm",
      R"(
@dace.program
def gemm(alpha: dace.float64, beta: dace.float64, C: dace.float64[NI, NJ],
         A: dace.float64[NI, NK], B: dace.float64[NK, NJ]):
    C[:] = alpha * A @ B + beta * C
)",
      {"C"},
      {{"test", {{"NI", 18}, {"NJ", 22}, {"NK", 14}}},
       {"paper", {{"NI", 384}, {"NJ", 384}, {"NK", 384}}},
       {"fpga", {{"NI", 96}, {"NJ", 96}, {"NK", 96}}}},
      [](const Sym& s) {
        Bindings b;
        b.emplace("alpha", Tensor::scalar(1.5));
        b.emplace("beta", Tensor::scalar(1.2));
        b.emplace("C", pat({s.at("NI"), s.at("NJ")}, 1));
        b.emplace("A", pat({s.at("NI"), s.at("NK")}, 2));
        b.emplace("B", pat({s.at("NK"), s.at("NJ")}, 3));
        return b;
      },
      ref::gemm,
      /*gpu=*/true, /*fpga=*/true, /*distributed=*/true});

  // ------------------------------------------------------------------ k2mm
  ks.push_back(Kernel{
      "k2mm",
      R"(
@dace.program
def k2mm(alpha: dace.float64, beta: dace.float64, A: dace.float64[NI, NK],
         B: dace.float64[NK, NJ], C: dace.float64[NJ, NL],
         D: dace.float64[NI, NL]):
    D[:] = (alpha * A @ B) @ C + beta * D
)",
      {"D"},
      {{"test", {{"NI", 12}, {"NJ", 14}, {"NK", 10}, {"NL", 16}}},
       {"paper", {{"NI", 256}, {"NJ", 288}, {"NK", 224}, {"NL", 256}}},
       {"fpga", {{"NI", 64}, {"NJ", 72}, {"NK", 56}, {"NL", 64}}}},
      [](const Sym& s) {
        Bindings b;
        b.emplace("alpha", Tensor::scalar(1.5));
        b.emplace("beta", Tensor::scalar(1.2));
        b.emplace("A", pat({s.at("NI"), s.at("NK")}, 4));
        b.emplace("B", pat({s.at("NK"), s.at("NJ")}, 5));
        b.emplace("C", pat({s.at("NJ"), s.at("NL")}, 6));
        b.emplace("D", pat({s.at("NI"), s.at("NL")}, 7));
        return b;
      },
      ref::k2mm, true, true, true});

  // ------------------------------------------------------------------ k3mm
  ks.push_back(Kernel{
      "k3mm",
      R"(
@dace.program
def k3mm(A: dace.float64[NI, NK], B: dace.float64[NK, NJ],
         C: dace.float64[NJ, NM], D: dace.float64[NM, NL],
         G: dace.float64[NI, NL]):
    G[:] = (A @ B) @ (C @ D)
)",
      {"G"},
      {{"test", {{"NI", 10}, {"NJ", 12}, {"NK", 8}, {"NL", 14}, {"NM", 9}}},
       {"paper",
        {{"NI", 256}, {"NJ", 288}, {"NK", 160}, {"NL", 176}, {"NM", 192}}},
       {"fpga",
        {{"NI", 64}, {"NJ", 72}, {"NK", 40}, {"NL", 44}, {"NM", 48}}}},
      [](const Sym& s) {
        Bindings b;
        b.emplace("A", pat({s.at("NI"), s.at("NK")}, 8));
        b.emplace("B", pat({s.at("NK"), s.at("NJ")}, 9));
        b.emplace("C", pat({s.at("NJ"), s.at("NM")}, 10));
        b.emplace("D", pat({s.at("NM"), s.at("NL")}, 11));
        b.emplace("G", Tensor(ir::DType::f64, {s.at("NI"), s.at("NL")}));
        return b;
      },
      ref::k3mm, true, true, true});

  // ------------------------------------------------------------------ atax
  ks.push_back(Kernel{
      "atax",
      R"(
@dace.program
def atax(A: dace.float64[M, N], x: dace.float64[N], y: dace.float64[N]):
    y[:] = (A @ x) @ A
)",
      {"y"},
      {{"test", {{"M", 20}, {"N", 24}}},
       {"paper", {{"M", 1200}, {"N", 1400}}},
       {"fpga", {{"M", 320}, {"N", 384}}}},
      [](const Sym& s) {
        Bindings b;
        b.emplace("A", pat({s.at("M"), s.at("N")}, 12));
        b.emplace("x", pat({s.at("N")}, 13));
        b.emplace("y", Tensor(ir::DType::f64, {s.at("N")}));
        return b;
      },
      ref::atax, true, true, true});

  // ------------------------------------------------------------------ bicg
  ks.push_back(Kernel{
      "bicg",
      R"(
@dace.program
def bicg(A: dace.float64[N, M], p: dace.float64[M], r: dace.float64[N],
         q: dace.float64[N], s: dace.float64[M]):
    q[:] = A @ p
    s[:] = r @ A
)",
      {"q", "s"},
      {{"test", {{"M", 18}, {"N", 22}}},
       {"paper", {{"M", 1400}, {"N", 1200}}},
       {"fpga", {{"M", 384}, {"N", 320}}}},
      [](const Sym& s) {
        Bindings b;
        b.emplace("A", pat({s.at("N"), s.at("M")}, 14));
        b.emplace("p", pat({s.at("M")}, 15));
        b.emplace("r", pat({s.at("N")}, 16));
        b.emplace("q", Tensor(ir::DType::f64, {s.at("N")}));
        b.emplace("s", Tensor(ir::DType::f64, {s.at("M")}));
        return b;
      },
      ref::bicg, true, true, true});

  // ------------------------------------------------------------------- mvt
  ks.push_back(Kernel{
      "mvt",
      R"(
@dace.program
def mvt(A: dace.float64[N, N], x1: dace.float64[N], x2: dace.float64[N],
        y1: dace.float64[N], y2: dace.float64[N]):
    x1[:] = x1 + A @ y1
    x2[:] = x2 + y2 @ A
)",
      {"x1", "x2"},
      {{"test", {{"N", 26}}},
       {"paper", {{"N", 1300}}},
       {"fpga", {{"N", 384}}}},
      [](const Sym& s) {
        Bindings b;
        b.emplace("A", pat({s.at("N"), s.at("N")}, 17));
        b.emplace("x1", pat({s.at("N")}, 18));
        b.emplace("x2", pat({s.at("N")}, 19));
        b.emplace("y1", pat({s.at("N")}, 20));
        b.emplace("y2", pat({s.at("N")}, 21));
        return b;
      },
      ref::mvt, true, true, true});

  // ---------------------------------------------------------------- gemver
  ks.push_back(Kernel{
      "gemver",
      R"(
@dace.program
def gemver(alpha: dace.float64, beta: dace.float64, A: dace.float64[N, N],
           u1: dace.float64[N], v1: dace.float64[N], u2: dace.float64[N],
           v2: dace.float64[N], w: dace.float64[N], x: dace.float64[N],
           y: dace.float64[N], z: dace.float64[N]):
    A[:] = A + np.outer(u1, v1) + np.outer(u2, v2)
    x[:] = x + beta * (y @ A) + z
    w[:] = w + alpha * (A @ x)
)",
      {"A", "w", "x"},
      {{"test", {{"N", 24}}},
       {"paper", {{"N", 1000}}},
       {"fpga", {{"N", 320}}}},
      [](const Sym& s) {
        Bindings b;
        b.emplace("alpha", Tensor::scalar(1.5));
        b.emplace("beta", Tensor::scalar(1.2));
        b.emplace("A", pat({s.at("N"), s.at("N")}, 22));
        for (unsigned i = 0; i < 8; ++i) {
          static const char* names[] = {"u1", "v1", "u2", "v2",
                                        "w",  "x",  "y",  "z"};
          b.emplace(names[i], pat({s.at("N")}, 23 + i));
        }
        return b;
      },
      ref::gemver, true, true, true});

  // --------------------------------------------------------------- gesummv
  ks.push_back(Kernel{
      "gesummv",
      R"(
@dace.program
def gesummv(alpha: dace.float64, beta: dace.float64, A: dace.float64[N, N],
            B: dace.float64[N, N], x: dace.float64[N], y: dace.float64[N]):
    y[:] = alpha * (A @ x) + beta * (B @ x)
)",
      {"y"},
      {{"test", {{"N", 30}}},
       {"paper", {{"N", 1120}}},
       {"fpga", {{"N", 320}}}},
      [](const Sym& s) {
        Bindings b;
        b.emplace("alpha", Tensor::scalar(1.5));
        b.emplace("beta", Tensor::scalar(1.2));
        b.emplace("A", pat({s.at("N"), s.at("N")}, 31));
        b.emplace("B", pat({s.at("N"), s.at("N")}, 32));
        b.emplace("x", pat({s.at("N")}, 33));
        b.emplace("y", Tensor(ir::DType::f64, {s.at("N")}));
        return b;
      },
      ref::gesummv, true, true, true});

  // --------------------------------------------------------------- doitgen
  ks.push_back(Kernel{
      "doitgen",
      R"(
@dace.program
def doitgen(A: dace.float64[NR, NQ, NP], C4: dace.float64[NP, NP]):
    for r in range(NR):
        for q in range(NQ):
            tmp = np.zeros((NP,), dtype=A.dtype)
            tmp[:] = A[r, q, :] @ C4
            A[r, q, :] = tmp
)",
      {"A"},
      {{"test", {{"NR", 5}, {"NQ", 6}, {"NP", 10}}},
       {"paper", {{"NR", 32}, {"NQ", 32}, {"NP", 64}}},
       {"fpga", {{"NR", 12}, {"NQ", 12}, {"NP", 32}}}},
      [](const Sym& s) {
        Bindings b;
        b.emplace("A", pat({s.at("NR"), s.at("NQ"), s.at("NP")}, 34));
        b.emplace("C4", pat({s.at("NP"), s.at("NP")}, 35));
        return b;
      },
      ref::doitgen, true, true, true});

  // ------------------------------------------------------------- jacobi_1d
  ks.push_back(Kernel{
      "jacobi_1d",
      R"(
@dace.program
def jacobi_1d(TSTEPS: dace.int32, A: dace.float64[N], B: dace.float64[N]):
    for t in range(1, TSTEPS):
        B[1:-1] = 0.33333 * (A[:-2] + A[1:-1] + A[2:])
        A[1:-1] = 0.33333 * (B[:-2] + B[1:-1] + B[2:])
)",
      {"A", "B"},
      {{"test", {{"N", 40}, {"TSTEPS", 6}}},
       {"paper", {{"N", 4000}, {"TSTEPS", 500}}},
       {"fpga", {{"N", 1000}, {"TSTEPS", 100}}}},
      [](const Sym& s) {
        Bindings b;
        b.emplace("A", pat({s.at("N")}, 36));
        b.emplace("B", pat({s.at("N")}, 37));
        return b;
      },
      ref::jacobi_1d, true, true, true});

  // ------------------------------------------------------------- jacobi_2d
  ks.push_back(Kernel{
      "jacobi_2d",
      R"(
@dace.program
def jacobi_2d(TSTEPS: dace.int32, A: dace.float64[N, N],
              B: dace.float64[N, N]):
    for t in range(1, TSTEPS):
        B[1:-1, 1:-1] = 0.2 * (A[1:-1, 1:-1] + A[1:-1, :-2] +
                               A[1:-1, 2:] + A[2:, 1:-1] + A[:-2, 1:-1])
        A[1:-1, 1:-1] = 0.2 * (B[1:-1, 1:-1] + B[1:-1, :-2] +
                               B[1:-1, 2:] + B[2:, 1:-1] + B[:-2, 1:-1])
)",
      {"A", "B"},
      {{"test", {{"N", 16}, {"TSTEPS", 5}}},
       {"paper", {{"N", 250}, {"TSTEPS", 50}}},
       {"fpga", {{"N", 96}, {"TSTEPS", 20}}}},
      [](const Sym& s) {
        Bindings b;
        b.emplace("A", pat({s.at("N"), s.at("N")}, 38));
        b.emplace("B", pat({s.at("N"), s.at("N")}, 39));
        return b;
      },
      ref::jacobi_2d, true, true, true});

  // --------------------------------------------------------------- heat_3d
  ks.push_back(Kernel{
      "heat_3d",
      R"(
@dace.program
def heat_3d(TSTEPS: dace.int32, A: dace.float64[N, N, N],
            B: dace.float64[N, N, N]):
    for t in range(1, TSTEPS):
        B[1:-1, 1:-1, 1:-1] = (
            0.125 * (A[2:, 1:-1, 1:-1] - 2.0 * A[1:-1, 1:-1, 1:-1]
                     + A[:-2, 1:-1, 1:-1])
            + 0.125 * (A[1:-1, 2:, 1:-1] - 2.0 * A[1:-1, 1:-1, 1:-1]
                       + A[1:-1, :-2, 1:-1])
            + 0.125 * (A[1:-1, 1:-1, 2:] - 2.0 * A[1:-1, 1:-1, 1:-1]
                       + A[1:-1, 1:-1, :-2])
            + A[1:-1, 1:-1, 1:-1])
        A[1:-1, 1:-1, 1:-1] = (
            0.125 * (B[2:, 1:-1, 1:-1] - 2.0 * B[1:-1, 1:-1, 1:-1]
                     + B[:-2, 1:-1, 1:-1])
            + 0.125 * (B[1:-1, 2:, 1:-1] - 2.0 * B[1:-1, 1:-1, 1:-1]
                       + B[1:-1, :-2, 1:-1])
            + 0.125 * (B[1:-1, 1:-1, 2:] - 2.0 * B[1:-1, 1:-1, 1:-1]
                       + B[1:-1, 1:-1, :-2])
            + B[1:-1, 1:-1, 1:-1])
)",
      {"A", "B"},
      {{"test", {{"N", 8}, {"TSTEPS", 4}}},
       {"paper", {{"N", 36}, {"TSTEPS", 25}}},
       {"fpga", {{"N", 20}, {"TSTEPS", 10}}}},
      [](const Sym& s) {
        Bindings b;
        b.emplace("A", pat({s.at("N"), s.at("N"), s.at("N")}, 40));
        b.emplace("B", pat({s.at("N"), s.at("N"), s.at("N")}, 41));
        return b;
      },
      ref::heat_3d, true, true, false});

  // --------------------------------------------------------------- fdtd_2d
  ks.push_back(Kernel{
      "fdtd_2d",
      R"(
@dace.program
def fdtd_2d(TMAX: dace.int32, ex: dace.float64[NX, NY],
            ey: dace.float64[NX, NY], hz: dace.float64[NX, NY],
            fict: dace.float64[TMAX]):
    for t in range(TMAX):
        ey[0, :] = fict[t]
        ey[1:, :] = ey[1:, :] - 0.5 * (hz[1:, :] - hz[:-1, :])
        ex[:, 1:] = ex[:, 1:] - 0.5 * (hz[:, 1:] - hz[:, :-1])
        hz[:-1, :-1] = hz[:-1, :-1] - 0.7 * (ex[:-1, 1:] - ex[:-1, :-1] +
                                             ey[1:, :-1] - ey[:-1, :-1])
)",
      {"ex", "ey", "hz"},
      {{"test", {{"NX", 12}, {"NY", 14}, {"TMAX", 5}}},
       {"paper", {{"NX", 200}, {"NY", 240}, {"TMAX", 50}}},
       {"fpga", {{"NX", 80}, {"NY", 96}, {"TMAX", 20}}}},
      [](const Sym& s) {
        Bindings b;
        b.emplace("ex", pat({s.at("NX"), s.at("NY")}, 42));
        b.emplace("ey", pat({s.at("NX"), s.at("NY")}, 43));
        b.emplace("hz", pat({s.at("NX"), s.at("NY")}, 44));
        b.emplace("fict", pat({s.at("TMAX")}, 45));
        return b;
      },
      ref::fdtd_2d, true, true, false});

  // ------------------------------------------------------------------ syrk
  ks.push_back(Kernel{
      "syrk",
      R"(
@dace.program
def syrk(alpha: dace.float64, beta: dace.float64, C: dace.float64[N, N],
         A: dace.float64[N, M]):
    C[:] = alpha * (A @ np.transpose(A)) + beta * C
)",
      {"C"},
      {{"test", {{"N", 20}, {"M", 14}}},
       {"paper", {{"N", 320}, {"M", 256}}},
       {"fpga", {{"N", 96}, {"M", 64}}}},
      [](const Sym& s) {
        Bindings b;
        b.emplace("alpha", Tensor::scalar(1.5));
        b.emplace("beta", Tensor::scalar(1.2));
        b.emplace("C", pat({s.at("N"), s.at("N")}, 46));
        b.emplace("A", pat({s.at("N"), s.at("M")}, 47));
        return b;
      },
      ref::syrk, true, false, false});

  // ----------------------------------------------------------------- syr2k
  ks.push_back(Kernel{
      "syr2k",
      R"(
@dace.program
def syr2k(alpha: dace.float64, beta: dace.float64, C: dace.float64[N, N],
          A: dace.float64[N, M], B: dace.float64[N, M]):
    C[:] = alpha * (A @ np.transpose(B)) + alpha * (B @ np.transpose(A)) + beta * C
)",
      {"C"},
      {{"test", {{"N", 18}, {"M", 12}}},
       {"paper", {{"N", 288}, {"M", 224}}},
       {"fpga", {{"N", 80}, {"M", 56}}}},
      [](const Sym& s) {
        Bindings b;
        b.emplace("alpha", Tensor::scalar(1.5));
        b.emplace("beta", Tensor::scalar(1.2));
        b.emplace("C", pat({s.at("N"), s.at("N")}, 48));
        b.emplace("A", pat({s.at("N"), s.at("M")}, 49));
        b.emplace("B", pat({s.at("N"), s.at("M")}, 50));
        return b;
      },
      ref::syr2k, true, false, false});

  // ------------------------------------------------------------ covariance
  ks.push_back(Kernel{
      "covariance",
      R"(
@dace.program
def covariance(data: dace.float64[N, M], cov: dace.float64[M, M]):
    mean = np.sum(data, axis=0) / N
    data[:] = data - mean
    cov[:] = (np.transpose(data) @ data) / (N - 1.0)
)",
      {"cov"},
      {{"test", {{"N", 24}, {"M", 10}}},
       {"paper", {{"N", 500}, {"M", 120}}},
       {"fpga", {{"N", 160}, {"M", 48}}}},
      [](const Sym& s) {
        Bindings b;
        b.emplace("data", pat({s.at("N"), s.at("M")}, 51));
        b.emplace("cov", Tensor(ir::DType::f64, {s.at("M"), s.at("M")}));
        return b;
      },
      ref::covariance, true, false, false});

  // --------------------------------------------------------------- softmax
  ks.push_back(Kernel{
      "softmax",
      R"(
@dace.program
def softmax(x: dace.float64[N, M], out: dace.float64[N, M]):
    for i in range(N):
        mx = np.max(x[i, :])
        e = np.exp(x[i, :] - mx)
        out[i, :] = e / np.sum(e)
)",
      {"out"},
      {{"test", {{"N", 10}, {"M", 16}}},
       {"paper", {{"N", 400}, {"M", 400}}},
       {"fpga", {{"N", 64}, {"M", 64}}}},
      [](const Sym& s) {
        Bindings b;
        b.emplace("x", pat({s.at("N"), s.at("M")}, 52));
        b.emplace("out", Tensor(ir::DType::f64, {s.at("N"), s.at("M")}));
        return b;
      },
      ref::softmax, true, false, false});

  // ------------------------------------------------------- resnet (conv2d)
  // The paper's resnet anomaly: a convolution written as a loop of
  // summations; LoopToMap turns the accumulation into WCR, which costs
  // atomics on the GPU (Section 3.4.2).
  ks.push_back(Kernel{
      "resnet",
      R"(
@dace.program
def resnet(out: dace.float64[HO, WO],
           inp: dace.float64[HO + KH - 1, WO + KW - 1],
           w: dace.float64[KH, KW]):
    for di in range(KH):
        for dj in range(KW):
            out[:, :] += inp[di:HO+di, dj:WO+dj] * w[di, dj]
)",
      {"out"},
      {{"test", {{"HO", 10}, {"WO", 12}, {"KH", 3}, {"KW", 3}}},
       {"paper", {{"HO", 64}, {"WO", 64}, {"KH", 5}, {"KW", 5}}},
       {"fpga", {{"HO", 32}, {"WO", 32}, {"KH", 3}, {"KW", 3}}}},
      [](const Sym& s) {
        Bindings b;
        b.emplace("out", pat({s.at("HO"), s.at("WO")}, 53));
        b.emplace("inp", pat({s.at("HO") + s.at("KH") - 1,
                              s.at("WO") + s.at("KW") - 1},
                             54));
        b.emplace("w", pat({s.at("KH"), s.at("KW")}, 55));
        return b;
      },
      ref::resnet_conv, true, false, false});

  // ----------------------------------------------------------------- nbody
  ks.push_back(Kernel{
      "nbody",
      R"(
@dace.program
def nbody(x: dace.float64[N], y: dace.float64[N], m: dace.float64[N],
          fx: dace.float64[N], fy: dace.float64[N]):
    for i, j in dace.map[0:N, 0:N]:
        dx = x[j] - x[i]
        dy = y[j] - y[i]
        inv = 1.0 / np.sqrt(dx * dx + dy * dy + 0.1)
        fx[i] += dx * inv * inv * inv * m[j]
        fy[i] += dy * inv * inv * inv * m[j]
)",
      {"fx", "fy"},
      {{"test", {{"N", 24}}},
       {"paper", {{"N", 1200}}},
       {"fpga", {{"N", 256}}}},
      [](const Sym& s) {
        Bindings b;
        b.emplace("x", pat({s.at("N")}, 56));
        b.emplace("y", pat({s.at("N")}, 57));
        b.emplace("m", pat({s.at("N")}, 58));
        b.emplace("fx", Tensor(ir::DType::f64, {s.at("N")}));
        b.emplace("fy", Tensor(ir::DType::f64, {s.at("N")}));
        return b;
      },
      ref::nbody, /*gpu=*/false, /*fpga=*/false, /*distributed=*/false});

  // ---------------------------------------------------------------- matmul
  // Explicit-map matrix multiply with a WCR accumulation over k: the
  // canonical register-tiling target for the Tier-1 kernel planner
  // (gemm above goes through the MatMul library node instead).  C is
  // accumulated into, not overwritten.
  ks.push_back(Kernel{
      "matmul",
      R"(
@dace.program
def matmul(A: dace.float64[NI, NK], B: dace.float64[NK, NJ],
           C: dace.float64[NI, NJ]):
    for i, j, k in dace.map[0:NI, 0:NJ, 0:NK]:
        C[i, j] += A[i, k] * B[k, j]
)",
      {"C"},
      {{"test", {{"NI", 12}, {"NJ", 14}, {"NK", 10}}},
       {"paper", {{"NI", 192}, {"NJ", 192}, {"NK", 192}}},
       {"fpga", {{"NI", 32}, {"NJ", 32}, {"NK", 32}}}},
      [](const Sym& s) {
        Bindings b;
        b.emplace("A", pat({s.at("NI"), s.at("NK")}, 60));
        b.emplace("B", pat({s.at("NK"), s.at("NJ")}, 61));
        b.emplace("C", pat({s.at("NI"), s.at("NJ")}, 62));
        return b;
      },
      ref::matmul, /*gpu=*/false, /*fpga=*/false, /*distributed=*/false});

  // --------------------------------------------------------------- go_fast
  // The Numba five-minute-guide example [3].
  ks.push_back(Kernel{
      "go_fast",
      R"(
@dace.program
def go_fast(a: dace.float64[N, N], out: dace.float64[N, N]):
    trace = 0.0
    for i in range(N):
        trace += np.tanh(a[i, i])
    out[:] = a + trace
)",
      {"out"},
      {{"test", {{"N", 20}}},
       {"paper", {{"N", 800}}},
       {"fpga", {{"N", 128}}}},
      [](const Sym& s) {
        Bindings b;
        b.emplace("a", pat({s.at("N"), s.at("N")}, 59));
        b.emplace("out", Tensor(ir::DType::f64, {s.at("N"), s.at("N")}));
        return b;
      },
      ref::go_fast, true, false, false});

  return ks;
}

}  // namespace

const std::vector<Kernel>& suite() {
  static const std::vector<Kernel> ks = build_suite();
  return ks;
}

const Kernel& kernel(const std::string& name) {
  for (const auto& k : suite()) {
    if (k.name == name) return k;
  }
  throw err("kernels: unknown kernel '", name, "'");
}

}  // namespace dace::kernels
