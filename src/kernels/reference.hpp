// Hand-written C++ reference implementations of the kernel suite
// (the "Polybench/C" analogue of Fig. 7 and the correctness oracle).
#pragma once

#include "runtime/executor.hpp"
#include "symbolic/symbolic.hpp"

namespace dace::kernels::ref {

using rt::Bindings;
using Sym = sym::SymbolMap;

void gemm(Bindings& b, const Sym& s);
void k2mm(Bindings& b, const Sym& s);
void k3mm(Bindings& b, const Sym& s);
void atax(Bindings& b, const Sym& s);
void bicg(Bindings& b, const Sym& s);
void mvt(Bindings& b, const Sym& s);
void gemver(Bindings& b, const Sym& s);
void gesummv(Bindings& b, const Sym& s);
void doitgen(Bindings& b, const Sym& s);
void jacobi_1d(Bindings& b, const Sym& s);
void jacobi_2d(Bindings& b, const Sym& s);
void heat_3d(Bindings& b, const Sym& s);
void fdtd_2d(Bindings& b, const Sym& s);
void syrk(Bindings& b, const Sym& s);
void syr2k(Bindings& b, const Sym& s);
void covariance(Bindings& b, const Sym& s);
void softmax(Bindings& b, const Sym& s);
void resnet_conv(Bindings& b, const Sym& s);
void nbody(Bindings& b, const Sym& s);
void matmul(Bindings& b, const Sym& s);
void go_fast(Bindings& b, const Sym& s);

}  // namespace dace::kernels::ref
