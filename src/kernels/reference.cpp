#include "kernels/reference.hpp"

#include <cmath>
#include <vector>

namespace dace::kernels::ref {

namespace {
double* P(Bindings& b, const std::string& name) {
  return b.at(name).data();
}
int64_t S(const Sym& s, const std::string& name) { return s.at(name); }
}  // namespace

void gemm(Bindings& b, const Sym& s) {
  int64_t ni = S(s, "NI"), nj = S(s, "NJ"), nk = S(s, "NK");
  double alpha = b.at("alpha").value(), beta = b.at("beta").value();
  double* A = P(b, "A");
  double* B = P(b, "B");
  double* C = P(b, "C");
  for (int64_t i = 0; i < ni; ++i) {
    for (int64_t j = 0; j < nj; ++j) C[i * nj + j] *= beta;
    for (int64_t k = 0; k < nk; ++k) {
      double av = alpha * A[i * nk + k];
      for (int64_t j = 0; j < nj; ++j) C[i * nj + j] += av * B[k * nj + j];
    }
  }
}

namespace {
// out(m,n) = A(m,k) * B(k,n), accumulating into zeroed out.
void mm(const double* A, const double* B, double* out, int64_t m, int64_t k,
        int64_t n) {
  for (int64_t i = 0; i < m * n; ++i) out[i] = 0;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t l = 0; l < k; ++l) {
      double av = A[i * k + l];
      for (int64_t j = 0; j < n; ++j) out[i * n + j] += av * B[l * n + j];
    }
  }
}
}  // namespace

void k2mm(Bindings& b, const Sym& s) {
  int64_t ni = S(s, "NI"), nj = S(s, "NJ"), nk = S(s, "NK"), nl = S(s, "NL");
  double alpha = b.at("alpha").value(), beta = b.at("beta").value();
  std::vector<double> tmp((size_t)(ni * nj));
  mm(P(b, "A"), P(b, "B"), tmp.data(), ni, nk, nj);
  for (auto& v : tmp) v *= alpha;
  double* C = P(b, "C");
  double* D = P(b, "D");
  for (int64_t i = 0; i < ni; ++i) {
    for (int64_t j = 0; j < nl; ++j) {
      double acc = beta * D[i * nl + j];
      for (int64_t k = 0; k < nj; ++k)
        acc += tmp[(size_t)(i * nj + k)] * C[k * nl + j];
      D[i * nl + j] = acc;
    }
  }
}

void k3mm(Bindings& b, const Sym& s) {
  int64_t ni = S(s, "NI"), nj = S(s, "NJ"), nk = S(s, "NK"), nl = S(s, "NL"),
          nm = S(s, "NM");
  std::vector<double> E((size_t)(ni * nj)), F((size_t)(nj * nl));
  mm(P(b, "A"), P(b, "B"), E.data(), ni, nk, nj);
  mm(P(b, "C"), P(b, "D"), F.data(), nj, nm, nl);
  mm(E.data(), F.data(), P(b, "G"), ni, nj, nl);
}

void atax(Bindings& b, const Sym& s) {
  int64_t m = S(s, "M"), n = S(s, "N");
  double* A = P(b, "A");
  double* x = P(b, "x");
  double* y = P(b, "y");
  std::vector<double> tmp((size_t)m, 0.0);
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) tmp[(size_t)i] += A[i * n + j] * x[j];
  }
  for (int64_t j = 0; j < n; ++j) y[j] = 0;
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) y[j] += A[i * n + j] * tmp[(size_t)i];
  }
}

void bicg(Bindings& b, const Sym& s) {
  int64_t m = S(s, "M"), n = S(s, "N");
  double* A = P(b, "A");  // (n, m)
  double* p = P(b, "p");  // (m)
  double* r = P(b, "r");  // (n)
  double* q = P(b, "q");  // (n)
  double* out_s = P(b, "s");  // (m)
  for (int64_t j = 0; j < m; ++j) out_s[j] = 0;
  for (int64_t i = 0; i < n; ++i) {
    q[i] = 0;
    for (int64_t j = 0; j < m; ++j) {
      out_s[j] += r[i] * A[i * m + j];
      q[i] += A[i * m + j] * p[j];
    }
  }
}

void mvt(Bindings& b, const Sym& s) {
  int64_t n = S(s, "N");
  double* A = P(b, "A");
  double* x1 = P(b, "x1");
  double* x2 = P(b, "x2");
  double* y1 = P(b, "y1");
  double* y2 = P(b, "y2");
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) x1[i] += A[i * n + j] * y1[j];
  }
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) x2[i] += A[j * n + i] * y2[j];
  }
}

void gemver(Bindings& b, const Sym& s) {
  int64_t n = S(s, "N");
  double alpha = b.at("alpha").value(), beta = b.at("beta").value();
  double* A = P(b, "A");
  double* u1 = P(b, "u1");
  double* v1 = P(b, "v1");
  double* u2 = P(b, "u2");
  double* v2 = P(b, "v2");
  double* w = P(b, "w");
  double* x = P(b, "x");
  double* y = P(b, "y");
  double* z = P(b, "z");
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j)
      A[i * n + j] += u1[i] * v1[j] + u2[i] * v2[j];
  }
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) x[i] += beta * A[j * n + i] * y[j];
  }
  for (int64_t i = 0; i < n; ++i) x[i] += z[i];
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) w[i] += alpha * A[i * n + j] * x[j];
  }
}

void gesummv(Bindings& b, const Sym& s) {
  int64_t n = S(s, "N");
  double alpha = b.at("alpha").value(), beta = b.at("beta").value();
  double* A = P(b, "A");
  double* B = P(b, "B");
  double* x = P(b, "x");
  double* y = P(b, "y");
  for (int64_t i = 0; i < n; ++i) {
    double t = 0, u = 0;
    for (int64_t j = 0; j < n; ++j) {
      t += A[i * n + j] * x[j];
      u += B[i * n + j] * x[j];
    }
    y[i] = alpha * t + beta * u;
  }
}

void doitgen(Bindings& b, const Sym& s) {
  int64_t nr = S(s, "NR"), nq = S(s, "NQ"), np = S(s, "NP");
  double* A = P(b, "A");
  double* C4 = P(b, "C4");
  std::vector<double> sum((size_t)np);
  for (int64_t r = 0; r < nr; ++r) {
    for (int64_t q = 0; q < nq; ++q) {
      double* row = A + (r * nq + q) * np;
      for (int64_t p = 0; p < np; ++p) {
        sum[(size_t)p] = 0;
        for (int64_t k = 0; k < np; ++k)
          sum[(size_t)p] += row[k] * C4[k * np + p];
      }
      for (int64_t p = 0; p < np; ++p) row[p] = sum[(size_t)p];
    }
  }
}

void jacobi_1d(Bindings& b, const Sym& s) {
  int64_t n = S(s, "N"), tsteps = S(s, "TSTEPS");
  double* A = P(b, "A");
  double* B = P(b, "B");
  for (int64_t t = 1; t < tsteps; ++t) {
    for (int64_t i = 1; i < n - 1; ++i)
      B[i] = 0.33333 * (A[i - 1] + A[i] + A[i + 1]);
    for (int64_t i = 1; i < n - 1; ++i)
      A[i] = 0.33333 * (B[i - 1] + B[i] + B[i + 1]);
  }
}

void jacobi_2d(Bindings& b, const Sym& s) {
  int64_t n = S(s, "N"), tsteps = S(s, "TSTEPS");
  double* A = P(b, "A");
  double* B = P(b, "B");
  auto step = [&](double* src, double* dst) {
    for (int64_t i = 1; i < n - 1; ++i) {
      for (int64_t j = 1; j < n - 1; ++j) {
        dst[i * n + j] = 0.2 * (src[i * n + j] + src[i * n + j - 1] +
                                src[i * n + j + 1] + src[(i + 1) * n + j] +
                                src[(i - 1) * n + j]);
      }
    }
  };
  for (int64_t t = 1; t < tsteps; ++t) {
    step(A, B);
    step(B, A);
  }
}

void heat_3d(Bindings& b, const Sym& s) {
  int64_t n = S(s, "N"), tsteps = S(s, "TSTEPS");
  double* A = P(b, "A");
  double* B = P(b, "B");
  auto at = [&](double* X, int64_t i, int64_t j, int64_t k) -> double& {
    return X[(i * n + j) * n + k];
  };
  auto step = [&](double* src, double* dst) {
    for (int64_t i = 1; i < n - 1; ++i) {
      for (int64_t j = 1; j < n - 1; ++j) {
        for (int64_t k = 1; k < n - 1; ++k) {
          at(dst, i, j, k) =
              0.125 * (at(src, i + 1, j, k) - 2.0 * at(src, i, j, k) +
                       at(src, i - 1, j, k)) +
              0.125 * (at(src, i, j + 1, k) - 2.0 * at(src, i, j, k) +
                       at(src, i, j - 1, k)) +
              0.125 * (at(src, i, j, k + 1) - 2.0 * at(src, i, j, k) +
                       at(src, i, j, k - 1)) +
              at(src, i, j, k);
        }
      }
    }
  };
  for (int64_t t = 1; t < tsteps; ++t) {
    step(A, B);
    step(B, A);
  }
}

void fdtd_2d(Bindings& b, const Sym& s) {
  int64_t nx = S(s, "NX"), ny = S(s, "NY"), tmax = S(s, "TMAX");
  double* ex = P(b, "ex");
  double* ey = P(b, "ey");
  double* hz = P(b, "hz");
  double* fict = P(b, "fict");
  for (int64_t t = 0; t < tmax; ++t) {
    for (int64_t j = 0; j < ny; ++j) ey[j] = fict[t];
    for (int64_t i = 1; i < nx; ++i) {
      for (int64_t j = 0; j < ny; ++j)
        ey[i * ny + j] -= 0.5 * (hz[i * ny + j] - hz[(i - 1) * ny + j]);
    }
    for (int64_t i = 0; i < nx; ++i) {
      for (int64_t j = 1; j < ny; ++j)
        ex[i * ny + j] -= 0.5 * (hz[i * ny + j] - hz[i * ny + j - 1]);
    }
    for (int64_t i = 0; i < nx - 1; ++i) {
      for (int64_t j = 0; j < ny - 1; ++j) {
        hz[i * ny + j] -= 0.7 * (ex[i * ny + j + 1] - ex[i * ny + j] +
                                 ey[(i + 1) * ny + j] - ey[i * ny + j]);
      }
    }
  }
}

void syrk(Bindings& b, const Sym& s) {
  int64_t n = S(s, "N"), m = S(s, "M");
  double alpha = b.at("alpha").value(), beta = b.at("beta").value();
  double* A = P(b, "A");
  double* C = P(b, "C");
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = beta * C[i * n + j];
      for (int64_t k = 0; k < m; ++k)
        acc += alpha * A[i * m + k] * A[j * m + k];
      C[i * n + j] = acc;
    }
  }
}

void syr2k(Bindings& b, const Sym& s) {
  int64_t n = S(s, "N"), m = S(s, "M");
  double alpha = b.at("alpha").value(), beta = b.at("beta").value();
  double* A = P(b, "A");
  double* B = P(b, "B");
  double* C = P(b, "C");
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double acc = beta * C[i * n + j];
      for (int64_t k = 0; k < m; ++k) {
        acc += alpha * (A[i * m + k] * B[j * m + k] +
                        B[i * m + k] * A[j * m + k]);
      }
      C[i * n + j] = acc;
    }
  }
}

void covariance(Bindings& b, const Sym& s) {
  int64_t n = S(s, "N"), m = S(s, "M");
  double* data = P(b, "data");  // (N, M), mutated like the kernel does
  double* cov = P(b, "cov");    // (M, M)
  std::vector<double> mean((size_t)m, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) mean[(size_t)j] += data[i * m + j];
  }
  for (int64_t j = 0; j < m; ++j) mean[(size_t)j] /= (double)n;
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < m; ++j) data[i * m + j] -= mean[(size_t)j];
  }
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < m; ++j) {
      double acc = 0;
      for (int64_t k = 0; k < n; ++k) acc += data[k * m + i] * data[k * m + j];
      cov[i * m + j] = acc / (double)(n - 1);
    }
  }
}

void softmax(Bindings& b, const Sym& s) {
  int64_t n = S(s, "N"), m = S(s, "M");
  double* x = P(b, "x");
  double* out = P(b, "out");
  for (int64_t i = 0; i < n; ++i) {
    double mx = x[i * m];
    for (int64_t j = 1; j < m; ++j) mx = std::max(mx, x[i * m + j]);
    double sum = 0;
    for (int64_t j = 0; j < m; ++j) {
      out[i * m + j] = std::exp(x[i * m + j] - mx);
      sum += out[i * m + j];
    }
    for (int64_t j = 0; j < m; ++j) out[i * m + j] /= sum;
  }
}

void resnet_conv(Bindings& b, const Sym& s) {
  int64_t ho = S(s, "HO"), wo = S(s, "WO"), kh = S(s, "KH"), kw = S(s, "KW");
  int64_t w_in = wo + kw - 1;
  double* out = P(b, "out");
  double* inp = P(b, "inp");
  double* w = P(b, "w");
  for (int64_t di = 0; di < kh; ++di) {
    for (int64_t dj = 0; dj < kw; ++dj) {
      double wv = w[di * kw + dj];
      for (int64_t i = 0; i < ho; ++i) {
        for (int64_t j = 0; j < wo; ++j)
          out[i * wo + j] += inp[(i + di) * w_in + (j + dj)] * wv;
      }
    }
  }
}

void nbody(Bindings& b, const Sym& s) {
  int64_t n = S(s, "N");
  double* x = P(b, "x");
  double* y = P(b, "y");
  double* m = P(b, "m");
  double* fx = P(b, "fx");
  double* fy = P(b, "fy");
  for (int64_t i = 0; i < n; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      double dx = x[j] - x[i];
      double dy = y[j] - y[i];
      double inv = 1.0 / std::sqrt(dx * dx + dy * dy + 0.1);
      fx[i] += dx * inv * inv * inv * m[j];
      fy[i] += dy * inv * inv * inv * m[j];
    }
  }
}

void matmul(Bindings& b, const Sym& s) {
  int64_t ni = S(s, "NI"), nj = S(s, "NJ"), nk = S(s, "NK");
  double* A = P(b, "A");
  double* B = P(b, "B");
  double* C = P(b, "C");
  // i-k-j order; C accumulates into its initial contents (the kernel is
  // a pure WCR map, there is no C = 0 phase).
  for (int64_t i = 0; i < ni; ++i) {
    for (int64_t k = 0; k < nk; ++k) {
      double av = A[i * nk + k];
      for (int64_t j = 0; j < nj; ++j) C[i * nj + j] += av * B[k * nj + j];
    }
  }
}

void go_fast(Bindings& b, const Sym& s) {
  int64_t n = S(s, "N");
  double* a = P(b, "a");
  double* out = P(b, "out");
  double trace = 0;
  for (int64_t i = 0; i < n; ++i) trace += std::tanh(a[i * n + i]);
  for (int64_t i = 0; i < n * n; ++i) out[i] = a[i] + trace;
}

}  // namespace dace::kernels::ref
