// The benchmark kernel suite (Section 3.4): a NumPy-style port of
// Polybench plus domain applications, each written once in DaCeLang and
// executed through every backend (eager baseline, -O0 SDFG, auto-optimized
// CPU/GPU/FPGA, distributed).  Each kernel carries deterministic input
// initialization, a hand-written C++ reference (the correctness oracle and
// the "Polybench/C" comparison point of Fig. 7), and named size presets.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "runtime/executor.hpp"
#include "symbolic/symbolic.hpp"

namespace dace::kernels {

struct Kernel {
  std::string name;
  std::string source;                  // DaCeLang program text
  std::vector<std::string> outputs;    // containers checked for correctness
  std::map<std::string, sym::SymbolMap> presets;  // "test", "paper", ...
  std::function<rt::Bindings(const sym::SymbolMap&)> init;
  std::function<void(rt::Bindings&, const sym::SymbolMap&)> reference;
  bool gpu = true;          // part of the GPU figure
  bool fpga = true;         // part of the FPGA figure
  bool distributed = false; // part of the distributed figure (Table 2)
};

/// All kernels, in presentation order.
const std::vector<Kernel>& suite();

/// Lookup by name; throws on unknown kernels.
const Kernel& kernel(const std::string& name);

/// Deterministic dense initializer: value depends on flat index and seed.
void fill_pattern(rt::Tensor& t, unsigned seed);

}  // namespace dace::kernels
