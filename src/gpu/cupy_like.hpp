// CuPy-like baseline: eager per-operation execution on the simulated GPU.
//
// Each NumPy-level operation becomes one device kernel launch with full
// global-memory traffic for its operands and a fresh device temporary for
// its result, plus host-side dispatch overhead -- the execution model of
// CuPy (Fig. 8's comparison point).  Results are computed for real by the
// eager interpreter; the device model charges simulated time.
#pragma once

#include "frontend/ast.hpp"
#include "gpu/gpu_model.hpp"
#include "runtime/eager_interpreter.hpp"

namespace dace::gpu {

/// Run a DaCeLang function CuPy-style on the simulated device.
GpuRunResult run_cupy(const fe::Function& f, rt::Bindings& args,
                      const sym::SymbolMap& symbols,
                      const GpuModel& model = GpuModel());

}  // namespace dace::gpu
